// Push-vs-polling benchmark (-sse): the quantitative case for the live-update
// subsystem. Three phases run against identical freshly-built simulated
// stacks, all traffic from the same user so the upstream source set is held
// constant and the only variable is client count and delivery mode:
//
//  1. baseline: ONE polling browser reloading every round;
//  2. polling:  N polling browsers reloading every round;
//  3. sse:      N browsers holding event streams, pages painting from the
//     push-fed client cache.
//
// Each phase counts actual slurmctld/slurmdbd commands beneath the server's
// resilience layer (a counting Runner installed under the workload env), so
// the report shows what the paper's scale concern is really about: upstream
// RPCs per connected client. The SSE phase also records wall-clock event
// delivery latency from scheduler tick to client cache application.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ooddash/internal/browser"
	"ooddash/internal/core"
	"ooddash/internal/push"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// Each round submits the same deterministic batch of jobs in every phase, so
// widget payloads actually change round over round (otherwise the hub's
// content-hash suppression — correctly — publishes nothing) and all three
// phases see identical churn.
const (
	benchChurnSeed = 7
	benchChurnJobs = 5
)

// countingRunner counts upstream commands by daemon. It sits beneath the
// server's own metered runner, so it sees exactly the commands that reached
// the simulated slurmctld/slurmdbd — cache hits and degraded fallbacks never
// get here.
type countingRunner struct {
	next slurmcli.Runner
	mu   sync.Mutex
	byD  map[string]int64
}

func newCountingRunner(next slurmcli.Runner) *countingRunner {
	return &countingRunner{next: next, byD: make(map[string]int64)}
}

func (c *countingRunner) Run(name string, args ...string) (string, error) {
	c.mu.Lock()
	c.byD[slurmcli.DaemonFor(name)]++
	c.mu.Unlock()
	return c.next.Run(name, args...)
}

func (c *countingRunner) snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byD))
	for k, v := range c.byD {
		out[k] = v
	}
	return out
}

// pushStack is one phase's isolated dashboard: fresh workload (same seed, so
// phases are comparable), counting runner, news and dashboard listeners.
type pushStack struct {
	env     *workload.Env
	server  *core.Server
	rpcs    *countingRunner
	baseURL string
	close   func()
}

func buildPushStack() (*pushStack, error) {
	return buildPushStackConfig(core.Config{})
}

// buildPushStackConfig is buildPushStack with full control of the core
// configuration (the rollup bench raises the per-attempt resilience timeout
// so its raw-ablation scans are measured rather than clipped to 503s).
func buildPushStackConfig(cfg core.Config) (*pushStack, error) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	rpcs := newCountingRunner(env.Runner)
	env.Runner = rpcs

	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("news listener: %w", err)
	}
	go func() { _ = http.Serve(newsLn, env.Feed) }()
	server, err := env.NewServerConfig(fmt.Sprintf("http://%s/", newsLn.Addr()), cfg)
	if err != nil {
		newsLn.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	dashLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		server.Close()
		newsLn.Close()
		return nil, fmt.Errorf("dashboard listener: %w", err)
	}
	go func() { _ = http.Serve(dashLn, server) }()
	return &pushStack{
		env:     env,
		server:  server,
		rpcs:    rpcs,
		baseURL: fmt.Sprintf("http://%s", dashLn.Addr()),
		close: func() {
			server.Close()
			dashLn.Close()
			newsLn.Close()
		},
	}, nil
}

// pushPhase is one phase's row in BENCH_push.json.
type pushPhase struct {
	Mode            string           `json:"mode"` // "poll" or "sse"
	Clients         int              `json:"clients"`
	PageLoads       int              `json:"page_loads"`
	InstantRate     float64          `json:"instant_paint_rate"`
	UpstreamRPCs    map[string]int64 `json:"upstream_rpcs"` // by daemon
	RPCTotal        int64            `json:"upstream_rpc_total"`
	RPCsPerClient   float64          `json:"upstream_rpcs_per_client"`
	DegradedPaints  int              `json:"degraded_paints"`
	FailedWidgets   int              `json:"failed_widgets"`
	DeliveredEvents int64            `json:"delivered_events,omitempty"` // sse only
	DroppedEvents   int64            `json:"dropped_events,omitempty"`   // sse only
}

// pushReport is the BENCH_push.json snapshot.
type pushReport struct {
	Kind        string    `json:"kind"` // "push"
	Scenario    string    `json:"scenario"`
	GeneratedAt time.Time `json:"generated_at"`
	Rounds      int       `json:"rounds"`
	Interval    string    `json:"interval"`
	Baseline    pushPhase `json:"baseline_poll_1"`
	Polling     pushPhase `json:"polling_fleet"`
	SSE         pushPhase `json:"sse_fleet"`
	// DeliveryP*Ms are wall-clock milliseconds from scheduler tick to the
	// event being applied in a client's cache.
	DeliveryP50Ms float64 `json:"sse_delivery_p50_ms"`
	DeliveryP95Ms float64 `json:"sse_delivery_p95_ms"`
	DeliveryP99Ms float64 `json:"sse_delivery_p99_ms"`
	// RPCRatio compares the SSE fleet's upstream load to the single-client
	// polling baseline; the push design's promise is that this stays near 1
	// no matter how many clients connect.
	RPCRatio float64 `json:"sse_rpcs_vs_single_poll_baseline"`
}

func phaseFromCollector(mode string, clients int, col *collector, delta map[string]int64) pushPhase {
	col.mu.Lock()
	defer col.mu.Unlock()
	var instant, painted, degraded, failed int
	for _, s := range col.samples {
		instant += s.instant
		painted += s.instant + s.fetches
		degraded += s.degraded
		failed += s.failed
	}
	var total int64
	for _, n := range delta {
		total += n
	}
	p := pushPhase{
		Mode:           mode,
		Clients:        clients,
		PageLoads:      len(col.samples),
		UpstreamRPCs:   delta,
		RPCTotal:       total,
		RPCsPerClient:  float64(total) / float64(clients),
		DegradedPaints: degraded,
		FailedWidgets:  failed,
	}
	if painted > 0 {
		p.InstantRate = float64(instant) / float64(painted)
	}
	return p
}

func rpcDelta(after, before map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// pollPhase runs one polling phase: clients browsers (all the same user, so
// the upstream source set matches the SSE phase) reloading once per round.
func pollPhase(clients, rounds int, interval time.Duration) (pushPhase, error) {
	st, err := buildPushStack()
	if err != nil {
		return pushPhase{}, err
	}
	defer st.close()
	httpc := &http.Client{Timeout: 10 * time.Second}
	user := st.env.UserNames[0]
	browsers := make([]*browser.Browser, clients)
	for i := range browsers {
		browsers[i] = browser.New(user, st.baseURL, httpc, st.env.Clock)
	}
	col := newCollector()
	rng := rand.New(rand.NewSource(benchChurnSeed))
	before := st.rpcs.snapshot()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for _, b := range browsers {
			wg.Add(1)
			go func(b *browser.Browser) {
				defer wg.Done()
				col.record(b.LoadHomepage())
			}(b)
		}
		wg.Wait()
		st.env.SubmitRandom(rng, benchChurnJobs)
		st.env.Clock.Advance(interval)
		st.env.Cluster.Ctl.Tick()
	}
	return phaseFromCollector("poll", clients, col, rpcDelta(st.rpcs.snapshot(), before)), nil
}

// ssePhase runs the push phase: clients browsers hold event streams while the
// scheduler refreshes sources on the simulated clock; each round the page is
// "viewed" (LoadHomepage) after events settle, painting from the pushed
// cache.
func ssePhase(clients, rounds int, interval time.Duration) (pushPhase, []time.Duration, error) {
	st, err := buildPushStack()
	if err != nil {
		return pushPhase{}, nil, err
	}
	defer st.close()
	httpc := &http.Client{Timeout: 10 * time.Second}
	user := st.env.UserNames[0]

	var (
		tickAt  atomic.Int64 // unixnano of the last scheduler tick; 0 during replay
		latMu   sync.Mutex
		latency []time.Duration
	)
	browsers := make([]*browser.Browser, clients)
	streams := make([]*browser.EventStream, clients)
	before := st.rpcs.snapshot()
	for i := range browsers {
		browsers[i] = browser.New(user, st.baseURL, httpc, st.env.Clock)
		stream, err := browsers[i].OpenEventStream(browser.HomepageWidgets(), func(push.Event) {
			if t := tickAt.Load(); t != 0 {
				d := time.Since(time.Unix(0, t))
				latMu.Lock()
				latency = append(latency, d)
				latMu.Unlock()
			}
		})
		if err != nil {
			return pushPhase{}, nil, fmt.Errorf("stream %d: %w", i, err)
		}
		defer stream.Close()
		streams[i] = stream
	}
	settleStreams(streams)

	col := newCollector()
	rng := rand.New(rand.NewSource(benchChurnSeed))
	for round := 0; round < rounds; round++ {
		st.env.SubmitRandom(rng, benchChurnJobs)
		st.env.Clock.Advance(interval)
		st.env.Cluster.Ctl.Tick()
		tickAt.Store(time.Now().UnixNano())
		st.server.TickPush()
		settleStreams(streams)
		tickAt.Store(0)
		var wg sync.WaitGroup
		for _, b := range browsers {
			wg.Add(1)
			go func(b *browser.Browser) {
				defer wg.Done()
				col.record(b.LoadHomepage())
			}(b)
		}
		wg.Wait()
	}
	delta := rpcDelta(st.rpcs.snapshot(), before)
	phase := phaseFromCollector("sse", clients, col, delta)
	hub := st.server.PushHub().Stats()
	phase.DeliveredEvents = hub.Delivered
	phase.DroppedEvents = hub.Dropped
	latMu.Lock()
	defer latMu.Unlock()
	return phase, latency, nil
}

// settleStreams waits (wall clock) until no stream has applied a new event
// for a few polls — delivery is asynchronous, so measurements take their
// sample only once the fan-out has drained.
func settleStreams(streams []*browser.EventStream) {
	var prev int64 = -1
	stable := 0
	for i := 0; i < 400 && stable < 4; i++ {
		var sum int64
		for _, st := range streams {
			sum += st.Stats().Events
		}
		if sum == prev {
			stable++
		} else {
			stable = 0
			prev = sum
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runPushBench drives the three phases and writes BENCH_push.json.
func runPushBench(users, rounds int, interval time.Duration, benchOut string, maxRatio float64) {
	log.Printf("push bench: %d rounds, %v simulated apart, %d clients", rounds, interval, users)

	log.Printf("phase 1/3: single polling client (baseline)")
	baseline, err := pollPhase(1, rounds, interval)
	if err != nil {
		log.Fatalf("baseline phase: %v", err)
	}
	log.Printf("phase 2/3: %d polling clients", users)
	polling, err := pollPhase(users, rounds, interval)
	if err != nil {
		log.Fatalf("polling phase: %v", err)
	}
	log.Printf("phase 3/3: %d SSE clients", users)
	sse, lats, err := ssePhase(users, rounds, interval)
	if err != nil {
		log.Fatalf("sse phase: %v", err)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ratio := 0.0
	if baseline.RPCTotal > 0 {
		ratio = float64(sse.RPCTotal) / float64(baseline.RPCTotal)
	}

	fmt.Printf("\n%-18s %8s %10s %12s %14s %13s\n",
		"phase", "clients", "pageloads", "upstreamRPC", "RPC/client", "instant%")
	for _, row := range []struct {
		name string
		p    pushPhase
	}{{"baseline poll×1", baseline}, {"polling fleet", polling}, {"sse fleet", sse}} {
		fmt.Printf("%-18s %8d %10d %12d %14.1f %12.1f%%\n",
			row.name, row.p.Clients, row.p.PageLoads, row.p.RPCTotal,
			row.p.RPCsPerClient, 100*row.p.InstantRate)
	}
	fmt.Printf("\nsse upstream RPCs vs single-client polling baseline: %.2fx\n", ratio)
	fmt.Printf("sse events delivered: %d (dropped %d), delivery p50=%v p95=%v p99=%v\n",
		sse.DeliveredEvents, sse.DroppedEvents,
		percentile(lats, 0.50).Round(time.Microsecond),
		percentile(lats, 0.95).Round(time.Microsecond),
		percentile(lats, 0.99).Round(time.Microsecond))

	if benchOut != "" {
		rep := pushReport{
			Kind:          "push",
			Scenario:      "smoke",
			GeneratedAt:   time.Now().UTC(),
			Rounds:        rounds,
			Interval:      interval.String(),
			Baseline:      baseline,
			Polling:       polling,
			SSE:           sse,
			DeliveryP50Ms: ms(percentile(lats, 0.50)),
			DeliveryP95Ms: ms(percentile(lats, 0.95)),
			DeliveryP99Ms: ms(percentile(lats, 0.99)),
			RPCRatio:      ratio,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding push snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("push bench snapshot written to %s", benchOut)
	}
	if maxRatio >= 0 && ratio > maxRatio {
		log.Printf("FAIL: sse/baseline RPC ratio %.2f exceeds -max-sse-rpc-ratio %.2f", ratio, maxRatio)
		os.Exit(1)
	}
}
