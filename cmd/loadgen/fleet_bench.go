// Fleet benchmark (-fleet): the quantitative case for the scale-out tier.
// Scaling a dashboard from 1 replica × 50 clients to 4 replicas × 500
// clients must NOT scale the upstream Slurm load: partitioned refresh
// ownership keeps it O(sources), and snapshot propagation lets every replica
// serve owner-rendered bytes. Four phases, each over a freshly built
// simulated stack (same seed, so upstream source sets are identical); in
// every phase round 0 is warm-up — upstream RPCs are counted from round 1,
// so the gate measures steady-state refresh load, not the one-time
// cold-start fill burst:
//
//  1. baseline:      1 replica,  N clients, coherence on;
//  2. scaled:        R replicas, 10N clients, coherence on — the gate
//     compares its upstream RPC total to baseline (-max-fleet-rpc-ratio);
//  3. no_coherence:  R replicas, 10N clients, coherence OFF — the ablation:
//     every replica refreshes everything, showing the ~R× blowup the
//     fleet tier exists to avoid;
//  4. kill:          R replicas, N clients, the chaos arm: the replica
//     owning system_status is killed mid-traffic. Gates: zero page-level
//     5xx, zero failed widget fetches, re-election within one round, and
//     no source polled by two replicas in the same round.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ooddash/internal/browser"
	"ooddash/internal/core"
	"ooddash/internal/fleet"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// fleetStack is one phase's isolated stack: fresh workload, a fleet of
// replicas over it, and an HTTP listener wrapping the LB that counts
// page-level 5xx responses.
type fleetStack struct {
	env     *workload.Env
	fl      *fleet.Fleet
	baseURL string
	c5xx    atomic.Int64
	close   func()
}

func buildFleetStack(replicas int, policy fleet.Policy, interval time.Duration, noCoherence bool) (*fleetStack, error) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("news listener: %w", err)
	}
	go func() { _ = http.Serve(newsLn, env.Feed) }()
	newsURL := fmt.Sprintf("http://%s/", newsLn.Addr())

	fl, err := fleet.New(fleet.Options{
		Replicas:         replicas,
		Policy:           policy,
		Clock:            env.Clock,
		Runner:           env.Runner,
		NoCoherence:      noCoherence,
		HeartbeatTimeout: interval / 2,
		Build: func(id string, r slurmcli.Runner) (*core.Server, error) {
			return env.NewServerRunner(newsURL, core.Config{
				Push: core.PushConfig{DisableIdlePause: true, Jitter: -1},
			}, r)
		},
	})
	if err != nil {
		newsLn.Close()
		return nil, fmt.Errorf("fleet: %w", err)
	}
	st := &fleetStack{env: env, fl: fl}
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &fleetStatusWriter{ResponseWriter: w, code: http.StatusOK}
		fl.ServeHTTP(sw, r)
		if sw.code >= 500 {
			st.c5xx.Add(1)
		}
	})
	dashLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fl.Close()
		newsLn.Close()
		return nil, fmt.Errorf("dashboard listener: %w", err)
	}
	go func() { _ = http.Serve(dashLn, mux) }()
	st.baseURL = fmt.Sprintf("http://%s", dashLn.Addr())
	st.close = func() {
		fl.Close()
		dashLn.Close()
		newsLn.Close()
	}
	return st, nil
}

type fleetStatusWriter struct {
	http.ResponseWriter
	code int
}

func (w *fleetStatusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// fleetPhase is one phase's row in BENCH_fleet.json.
type fleetPhase struct {
	Name           string           `json:"name"`
	Replicas       int              `json:"replicas"`
	Clients        int              `json:"clients"`
	PageLoads      int              `json:"page_loads"`
	InstantRate    float64          `json:"instant_paint_rate"`
	UpstreamRPCs   map[string]int64 `json:"upstream_rpcs"` // by daemon: calls reaching the daemons, after memo collapsing
	RPCTotal       int64            `json:"upstream_rpc_total"`
	DegradedPaints int              `json:"degraded_paints"`
	FailedWidgets  int              `json:"failed_widgets"`
	Page5xx        int64            `json:"page_5xx"`
	DupPolls       int              `json:"duplicate_polls"` // keys polled by >1 replica in one round
	OwnerChanges   int64            `json:"owner_changes"`
	// ReelectionRounds is how many rounds after the kill the dead replica
	// still owned system_status (kill phase only; gate requires <= 1).
	ReelectionRounds int `json:"reelection_rounds,omitempty"`
}

// fleetReport is the BENCH_fleet.json snapshot.
type fleetReport struct {
	Kind        string     `json:"kind"` // "fleet"
	Scenario    string     `json:"scenario"`
	GeneratedAt time.Time  `json:"generated_at"`
	Rounds      int        `json:"rounds"`
	Interval    string     `json:"interval"`
	Policy      string     `json:"policy"`
	Baseline    fleetPhase `json:"baseline_1_replica"`
	Scaled      fleetPhase `json:"scaled_coherent"`
	NoCoherence fleetPhase `json:"scaled_no_coherence"`
	Kill        fleetPhase `json:"replica_kill"`
	// RPCRatio is scaled/baseline upstream RPCs: the scale-out promise is
	// that 4× replicas and 10× clients leave upstream load ~flat.
	RPCRatio float64 `json:"scaled_rpcs_vs_baseline"`
	// NoCoherenceRatio is the ablation's blowup over baseline.
	NoCoherenceRatio float64 `json:"no_coherence_rpcs_vs_baseline"`
}

// dupPollsSince compares two SourceRefreshes snapshots and counts keys whose
// count rose on more than one replica — the single-poller invariant.
func dupPollsSince(prev, cur map[string]map[string]int64) int {
	polled := map[string]int{}
	for id, counts := range cur {
		for key, n := range counts {
			if n > prev[id][key] {
				polled[key]++
			}
		}
	}
	dups := 0
	for _, n := range polled {
		if n > 1 {
			dups++
		}
	}
	return dups
}

// runFleetPhase drives one phase. killRound >= 0 kills the owner of
// system_status immediately before that round's page loads.
func runFleetPhase(name string, replicas, clients, rounds int, interval time.Duration, policy fleet.Policy, noCoherence bool, killRound int) (fleetPhase, error) {
	st, err := buildFleetStack(replicas, policy, interval, noCoherence)
	if err != nil {
		return fleetPhase{}, err
	}
	defer st.close()
	httpc := &http.Client{Timeout: 30 * time.Second}
	browsers := make([]*browser.Browser, clients)
	for i := range browsers {
		user := st.env.UserNames[i%len(st.env.UserNames)]
		browsers[i] = browser.New(user, st.baseURL, httpc, st.env.Clock)
	}

	col := newCollector()
	rng := rand.New(rand.NewSource(benchChurnSeed))
	prevRefreshes := st.fl.SourceRefreshes()
	dupPolls := 0
	victim, reelected := "", -1
	var rpcBase map[string]int64
	for round := 0; round < rounds; round++ {
		if round == killRound {
			victim = st.fl.Owner("system_status")
			if victim == "" {
				return fleetPhase{}, fmt.Errorf("kill round %d: system_status has no owner yet", round)
			}
			if err := st.fl.Kill(victim); err != nil {
				return fleetPhase{}, err
			}
		}
		var wg sync.WaitGroup
		for _, b := range browsers {
			wg.Add(1)
			go func(b *browser.Browser) {
				defer wg.Done()
				col.record(b.LoadHomepage())
			}(b)
		}
		wg.Wait()
		st.env.SubmitRandom(rng, benchChurnJobs)
		st.env.Clock.Advance(interval)
		st.env.Cluster.Ctl.Tick()
		st.fl.Tick()
		cur := st.fl.SourceRefreshes()
		dupPolls += dupPollsSince(prevRefreshes, cur)
		prevRefreshes = cur
		if victim != "" && reelected < 0 && st.fl.Owner("system_status") != victim {
			reelected = round - killRound
		}
		if round == 0 {
			// Round 0 is warm-up: its cost is the cold-start fill burst
			// (bounded by the per-source fill cap, and amplified by raw
			// client concurrency in every phase alike), not the steady-state
			// refresh load the flatness gate is about. RPCs are measured
			// from here on.
			rpcBase = st.fl.UpstreamCalls()
		}
	}

	delta := rpcDelta(st.fl.UpstreamCalls(), rpcBase)
	var total int64
	for _, n := range delta {
		total += n
	}
	col.mu.Lock()
	var instant, painted, degraded, failed int
	for _, s := range col.samples {
		instant += s.instant
		painted += s.instant + s.fetches
		degraded += s.degraded
		failed += s.failed
	}
	loads := len(col.samples)
	col.mu.Unlock()
	p := fleetPhase{
		Name:           name,
		Replicas:       replicas,
		Clients:        clients,
		PageLoads:      loads,
		UpstreamRPCs:   delta,
		RPCTotal:       total,
		DegradedPaints: degraded,
		FailedWidgets:  failed,
		Page5xx:        st.c5xx.Load(),
		DupPolls:       dupPolls,
		OwnerChanges:   st.fl.OwnerChanges(),
	}
	if painted > 0 {
		p.InstantRate = float64(instant) / float64(painted)
	}
	if killRound >= 0 {
		if reelected < 0 {
			return fleetPhase{}, fmt.Errorf("kill phase: system_status never re-elected off %s", victim)
		}
		p.ReelectionRounds = reelected
	}
	return p, nil
}

// runFleetBench drives the four phases, writes BENCH_fleet.json, and gates.
func runFleetBench(users, replicas, rounds int, interval time.Duration, lbPolicy, benchOut string, maxRatio float64) {
	policy, err := fleet.ParsePolicy(lbPolicy)
	if err != nil {
		log.Fatalf("-lb-policy: %v", err)
	}
	scaledClients := users * 10
	log.Printf("fleet bench: %d rounds, %v simulated apart, policy %s", rounds, interval, policy)

	log.Printf("phase 1/4: baseline — 1 replica, %d clients", users)
	baseline, err := runFleetPhase("baseline", 1, users, rounds, interval, policy, false, -1)
	if err != nil {
		log.Fatalf("baseline phase: %v", err)
	}
	log.Printf("phase 2/4: scaled — %d replicas, %d clients, coherence on", replicas, scaledClients)
	scaled, err := runFleetPhase("scaled", replicas, scaledClients, rounds, interval, policy, false, -1)
	if err != nil {
		log.Fatalf("scaled phase: %v", err)
	}
	log.Printf("phase 3/4: ablation — %d replicas, %d clients, coherence OFF", replicas, scaledClients)
	noCoh, err := runFleetPhase("no_coherence", replicas, scaledClients, rounds, interval, policy, true, -1)
	if err != nil {
		log.Fatalf("no-coherence phase: %v", err)
	}
	killRound := rounds / 2
	log.Printf("phase 4/4: kill drill — %d replicas, %d clients, killing system_status owner at round %d", replicas, users, killRound)
	kill, err := runFleetPhase("kill", replicas, users, rounds, interval, policy, false, killRound)
	if err != nil {
		log.Fatalf("kill phase: %v", err)
	}

	ratio, ncRatio := 0.0, 0.0
	if baseline.RPCTotal > 0 {
		ratio = float64(scaled.RPCTotal) / float64(baseline.RPCTotal)
		ncRatio = float64(noCoh.RPCTotal) / float64(baseline.RPCTotal)
	}

	fmt.Printf("\n%-14s %9s %8s %10s %12s %10s %6s %9s\n",
		"phase", "replicas", "clients", "pageloads", "upstreamRPC", "instant%", "5xx", "dupPolls")
	for _, p := range []fleetPhase{baseline, scaled, noCoh, kill} {
		fmt.Printf("%-14s %9d %8d %10d %12d %9.1f%% %6d %9d\n",
			p.Name, p.Replicas, p.Clients, p.PageLoads, p.RPCTotal,
			100*p.InstantRate, p.Page5xx, p.DupPolls)
	}
	fmt.Printf("\nscaled (%d replicas, %d clients) upstream RPCs vs baseline: %.2fx\n",
		replicas, scaledClients, ratio)
	fmt.Printf("no-coherence ablation vs baseline: %.2fx\n", ncRatio)
	fmt.Printf("kill drill: re-elected after %d round(s), %d owner changes, %d page 5xx, %d failed widgets\n",
		kill.ReelectionRounds, kill.OwnerChanges, kill.Page5xx, kill.FailedWidgets)

	if benchOut != "" {
		rep := fleetReport{
			Kind:             "fleet",
			Scenario:         "smoke",
			GeneratedAt:      time.Now().UTC(),
			Rounds:           rounds,
			Interval:         interval.String(),
			Policy:           string(policy),
			Baseline:         baseline,
			Scaled:           scaled,
			NoCoherence:      noCoh,
			Kill:             kill,
			RPCRatio:         ratio,
			NoCoherenceRatio: ncRatio,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding fleet snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("fleet bench snapshot written to %s", benchOut)
	}

	failed := false
	if maxRatio >= 0 && ratio > maxRatio {
		log.Printf("FAIL: scaled/baseline RPC ratio %.2f exceeds -max-fleet-rpc-ratio %.2f", ratio, maxRatio)
		failed = true
	}
	for _, p := range []fleetPhase{baseline, scaled, kill} {
		if p.Page5xx > 0 {
			log.Printf("FAIL: phase %s served %d page-level 5xx", p.Name, p.Page5xx)
			failed = true
		}
		if p.DupPolls > 0 {
			log.Printf("FAIL: phase %s polled %d sources on >1 replica in one round", p.Name, p.DupPolls)
			failed = true
		}
	}
	if kill.FailedWidgets > 0 {
		log.Printf("FAIL: kill phase had %d failed widget fetches", kill.FailedWidgets)
		failed = true
	}
	if kill.ReelectionRounds > 1 {
		log.Printf("FAIL: re-election took %d rounds, want <= 1", kill.ReelectionRounds)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
