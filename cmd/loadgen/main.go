// Command loadgen load-tests a dashboard the way the paper's scale concern
// frames it: N users with their own browser-side caches reloading the
// homepage on an interval. It reports per-reload latency percentiles,
// per-widget p50/p95/p99 network latency, how many widget paints were
// served instantly from the client cache, and each widget's error and
// degraded-response rates — the live counterpart of the §2.4 cache-load
// experiment.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-users 50] [-duration 30s]
//	        [-interval 5s] [-userprefix user] [-usercount 40]
//	        [-max-error-rate 0.01] [-max-degraded-rate 0.2]
//	        [-bench-out BENCH_latency.json]
//	loadgen -smoke [-users 25] [-rounds 8] [-interval 5s] [-bench-out ...]
//	loadgen -sse [-users 50] [-rounds 6] [-interval 75s] [-bench-out BENCH_push.json]
//	        [-max-sse-rpc-ratio 2]
//	loadgen -fleet [-users 50] [-fleet-replicas 4] [-rounds 6] [-interval 75s]
//	        [-lb-policy round_robin] [-max-fleet-rpc-ratio 1.3]
//	        [-bench-out BENCH_fleet.json]
//	loadgen -chaos all [-arrival-rate 400] [-seed 7] [-chaos-wall 250ms]
//	        [-fill-cap 24] [-bench-out BENCH_chaos.json]
//	loadgen -backend-ab [-ab-requests 300] [-max-rest-p95-ratio 1.5]
//	        [-bench-out BENCH_rest.json]
//	loadgen -rollup [-rollup-requests 60] [-max-rollup-p95-ratio 1.5]
//	        [-bench-out BENCH_rollup.json]
//
// With -backend-ab, loadgen times the same Slurm query mix through both
// dashboard backends — the CLI parse-text path and the slurmrestd-style
// decode-JSON path — after verifying they return identical rows, and probes
// the REST token-scope matrix (redaction, 403s, 401) with real provisioned
// tokens. Scope violations always fail the run.
//
// With -chaos, loadgen replays the internal/chaos scenario catalog
// (maintenance drain, node-failure storm, power cycle, job-array storm,
// accounting backfill, login rush) against an in-process dashboard under an
// open-loop Poisson request storm: arrivals are pre-scheduled at
// -arrival-rate and latency is measured from each request's INTENDED
// arrival instant, so coordinated omission cannot hide a stall. Each
// scenario gates on its own p99 / degraded-rate / rejected-rate SLO and any
// page-level 5xx fails the run.
//
// With -smoke, loadgen needs no running dashboard: it builds the small
// simulated cluster in-process, serves the dashboard on an ephemeral port,
// and drives the reload loop on the simulated clock — each round advances
// simulated time by -interval instead of sleeping, so cache TTLs expire
// realistically while the whole run finishes in wall-clock seconds. That is
// the `make bench` scenario that seeds the repo's latency trajectory.
//
// -bench-out writes a BENCH_*.json snapshot (per-widget percentiles and
// health rates) so successive runs are comparable; the -max-*-rate gates
// turn a failure drill into a scriptable check exactly as before.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ooddash/internal/browser"
	"ooddash/internal/workload"
)

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// widgetAgg tracks one widget's health and latency across the run.
type widgetAgg struct {
	requests int
	fetches  int
	errors   int
	degraded int
	lats     []time.Duration // network-fetch latencies only
}

// sample is one homepage reload.
type sample struct {
	netTime  time.Duration
	instant  int
	fetches  int
	degraded int
	failed   int
}

// collector aggregates page loads across all simulated browsers.
type collector struct {
	mu        sync.Mutex
	samples   []sample
	perWidget map[string]*widgetAgg
}

func newCollector() *collector {
	return &collector{perWidget: make(map[string]*widgetAgg)}
}

func (c *collector) record(load browser.PageLoad) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, sample{
		netTime:  load.NetworkTime,
		instant:  load.InstantPaints,
		fetches:  load.NetworkFetches,
		degraded: load.DegradedPaints,
		failed:   load.Failed,
	})
	for _, wr := range load.Widgets {
		agg := c.perWidget[wr.Name]
		if agg == nil {
			agg = &widgetAgg{}
			c.perWidget[wr.Name] = agg
		}
		agg.requests++
		if wr.NetworkTime > 0 {
			agg.fetches++
			agg.lats = append(agg.lats, wr.NetworkTime)
		}
		if wr.Err != nil {
			agg.errors++
		}
		if wr.Degraded {
			agg.degraded++
		}
	}
}

// percentile reads the p-quantile from a sorted latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// benchWidget is one widget's row in the BENCH_*.json snapshot.
type benchWidget struct {
	Requests       int     `json:"requests"`
	NetworkFetches int     `json:"network_fetches"`
	Errors         int     `json:"errors"`
	Degraded       int     `json:"degraded"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
}

// benchReport is the snapshot the perf trajectory tracks run over run.
type benchReport struct {
	Kind        string                 `json:"kind"` // "loadgen_latency"
	Scenario    string                 `json:"scenario"`
	GeneratedAt time.Time              `json:"generated_at"`
	Users       int                    `json:"users"`
	PageLoads   int                    `json:"page_loads"`
	PageP50Ms   float64                `json:"page_network_p50_ms"`
	PageP90Ms   float64                `json:"page_network_p90_ms"`
	PageP99Ms   float64                `json:"page_network_p99_ms"`
	ErrorRate   float64                `json:"error_rate"`
	DegRate     float64                `json:"degraded_rate"`
	Widgets     map[string]benchWidget `json:"widgets"`
}

// report prints the run summary, optionally writes the bench snapshot, and
// returns the overall error and degraded rates for the exit gates.
func (c *collector) report(scenario string, users int, benchOut string) (errRate, degRate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.samples) == 0 {
		log.Fatal("no samples collected — is the dashboard running?")
	}
	var (
		lats           []time.Duration
		totalInstant   int
		totalFetches   int
		totalDegraded  int
		totalFailed    int
		widgetsPainted int
	)
	for _, s := range c.samples {
		lats = append(lats, s.netTime)
		totalInstant += s.instant
		totalFetches += s.fetches
		totalDegraded += s.degraded
		totalFailed += s.failed
		widgetsPainted += s.instant + s.fetches
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Printf("\npage loads:              %d\n", len(c.samples))
	fmt.Printf("widget paints:           %d\n", widgetsPainted)
	fmt.Printf("  instant (client cache): %d (%.1f%%)\n",
		totalInstant, 100*float64(totalInstant)/float64(widgetsPainted))
	fmt.Printf("  network fetches:        %d\n", totalFetches)
	fmt.Printf("  degraded (stale) :      %d (%.1f%%)\n",
		totalDegraded, 100*float64(totalDegraded)/float64(widgetsPainted))
	fmt.Printf("  failed widgets:         %d\n", totalFailed)
	fmt.Printf("network time per reload: p50=%v p90=%v p99=%v max=%v\n",
		percentile(lats, 0.50).Round(time.Microsecond), percentile(lats, 0.90).Round(time.Microsecond),
		percentile(lats, 0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))

	// Per-widget health and latency percentiles: error rate, degraded rate,
	// and the p50/p95/p99 a fault drill or perf regression moves first.
	names := make([]string, 0, len(c.perWidget))
	for name := range c.perWidget {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-16s %9s %8s %7s %9s %7s %10s %10s %10s\n",
		"widget", "requests", "errors", "err%", "degraded", "degr%", "p50", "p95", "p99")
	var totalReq, totalErr, totalDeg int
	widgets := make(map[string]benchWidget, len(names))
	for _, name := range names {
		agg := c.perWidget[name]
		totalReq += agg.requests
		totalErr += agg.errors
		totalDeg += agg.degraded
		sort.Slice(agg.lats, func(i, j int) bool { return agg.lats[i] < agg.lats[j] })
		p50 := percentile(agg.lats, 0.50)
		p95 := percentile(agg.lats, 0.95)
		p99 := percentile(agg.lats, 0.99)
		fmt.Printf("%-16s %9d %8d %6.1f%% %9d %6.1f%% %10v %10v %10v\n",
			name, agg.requests,
			agg.errors, 100*float64(agg.errors)/float64(agg.requests),
			agg.degraded, 100*float64(agg.degraded)/float64(agg.requests),
			p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
		bw := benchWidget{
			Requests:       agg.requests,
			NetworkFetches: agg.fetches,
			Errors:         agg.errors,
			Degraded:       agg.degraded,
			P50Ms:          ms(p50),
			P95Ms:          ms(p95),
			P99Ms:          ms(p99),
		}
		if n := len(agg.lats); n > 0 {
			bw.MaxMs = ms(agg.lats[n-1])
		}
		widgets[name] = bw
	}
	errRate = float64(totalErr) / float64(totalReq)
	degRate = float64(totalDeg) / float64(totalReq)

	if benchOut != "" {
		rep := benchReport{
			Kind:        "loadgen_latency",
			Scenario:    scenario,
			GeneratedAt: time.Now().UTC(),
			Users:       users,
			PageLoads:   len(c.samples),
			PageP50Ms:   ms(percentile(lats, 0.50)),
			PageP90Ms:   ms(percentile(lats, 0.90)),
			PageP99Ms:   ms(percentile(lats, 0.99)),
			ErrorRate:   errRate,
			DegRate:     degRate,
			Widgets:     widgets,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding bench snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("bench snapshot written to %s", benchOut)
	}
	return errRate, degRate
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "dashboard base URL")
		users     = flag.Int("users", 50, "concurrent simulated browsers")
		duration  = flag.Duration("duration", 30*time.Second, "test duration")
		interval  = flag.Duration("interval", 5*time.Second, "per-user reload interval")
		prefix    = flag.String("userprefix", "user", "username prefix (userNNN)")
		userCount = flag.Int("usercount", 40, "distinct usernames to rotate through")

		smoke  = flag.Bool("smoke", false, "self-contained run: in-process dashboard over the small simulated cluster, reload rounds on the simulated clock")
		rounds = flag.Int("rounds", 8, "reload rounds in -smoke mode (each advances simulated time by -interval)")

		sse         = flag.Bool("sse", false, "push benchmark: compare polling vs SSE upstream RPC cost in-process (implies -smoke-style stack; see -rounds/-interval/-users)")
		maxRPCRatio = flag.Float64("max-sse-rpc-ratio", -1, "exit 1 if the SSE fleet's upstream RPCs exceed this multiple of the single-client polling baseline (negative disables)")

		fleetMode     = flag.Bool("fleet", false, "fleet benchmark: scale replicas×clients 10x with coherent caches and partitioned refresh ownership, plus a no-coherence ablation and a replica-kill drill")
		fleetReplicas = flag.Int("fleet-replicas", 4, "replica count for the scaled -fleet phases")
		lbPolicyFlag  = flag.String("lb-policy", "round_robin", "-fleet load-balancing policy: round_robin, least_conn, or sticky")
		maxFleetRatio = flag.Float64("max-fleet-rpc-ratio", -1, "exit 1 if the scaled fleet's upstream RPCs exceed this multiple of the 1-replica baseline (negative disables)")

		hotpath          = flag.Bool("hotpath", false, "hot-path benchmark: re-encode baseline vs encode-once vs 304 revalidation vs sampled-out tracing against an in-process stack (see -hotpath-requests)")
		hotpathRequests  = flag.Int("hotpath-requests", 28000, "requests per phase in -hotpath mode (rounded down to the request-mix size)")
		minHotAllocRatio = flag.Float64("min-hotpath-alloc-ratio", -1, "exit 1 if encode-once allocs/op are not at least this many times below the re-encode baseline (negative disables)")
		maxTraceAllocs   = flag.Float64("max-trace-allocs", 3, "exit 1 if sampled-out tracing adds more than this many allocs/op over the untraced encode-once hit path (negative disables)")

		backendAB    = flag.Bool("backend-ab", false, "A/B benchmark: CLI parse-text vs REST decode-JSON fill path over one in-process cluster, plus token-scope probes (see -ab-requests)")
		abRequests   = flag.Int("ab-requests", 300, "rounds per op per backend in -backend-ab mode")
		maxRESTRatio = flag.Float64("max-rest-p95-ratio", -1, "exit 1 if the revalidating REST side's pooled p95 exceeds this multiple of the CLI side's (negative disables; scope violations always fail)")
		maxColdRatio = flag.Float64("max-rest-cold-p95-ratio", -1, "exit 1 if the cold (non-revalidating) REST side's pooled p95 exceeds this multiple of the CLI side's (negative disables)")

		rollupMode     = flag.Bool("rollup", false, "rollup benchmark: O(buckets) pre-aggregated reads vs the raw accounting-scan ablation at 1x/100x/1000x synthesized history, with a byte-equality golden check at each scale")
		rollupRequests = flag.Int("rollup-requests", 60, "timed rollup-path requests per scale in -rollup mode")
		maxRollupP95   = flag.Float64("max-rollup-p95-ratio", -1, "exit 1 if rollup-path p95 at 1000x history exceeds this multiple of the 1x p95 (negative disables; golden mismatches always fail)")

		sloMode      = flag.Bool("slo", false, "SLO benchmark: hit-path allocation cost of SLI recording (off vs on) plus the chaos-catalog alert truth table (see -slo-requests, -max-slo-allocs)")
		sloRequests  = flag.Int("slo-requests", 21000, "requests per overhead phase in -slo mode (rounded down to the request-mix size)")
		maxSLOAllocs = flag.Float64("max-slo-allocs", 1, "exit 1 if SLI recording adds more than this many allocs/op over the recording-off hit path (negative disables)")

		chaosName   = flag.String("chaos", "", "chaos mode: run this internal/chaos scenario (or \"all\") under open-loop load with per-scenario SLO gates")
		arrivalRate = flag.Float64("arrival-rate", 400, "chaos mode: open-loop Poisson arrival rate, requests/second (latency measured from intended arrival)")
		seed        = flag.Int64("seed", 7, "chaos mode: seed for the workload, fault injector, and arrival schedule (recorded in BENCH_chaos.json)")
		chaosWall   = flag.Duration("chaos-wall", 250*time.Millisecond, "chaos mode: wall time per scripted scenario step")
		fillCap     = flag.Int("fill-cap", 24, "chaos mode: per-source concurrent upstream fill cap (0 = server default, negative = unlimited)")

		benchOut   = flag.String("bench-out", "", "write a BENCH_*.json latency snapshot to this path")
		maxErrRate = flag.Float64("max-error-rate", -1, "exit 1 if the overall widget error rate exceeds this (0..1; negative disables)")
		maxDegRate = flag.Float64("max-degraded-rate", -1, "exit 1 if the overall degraded-response rate exceeds this (0..1; negative disables)")
	)
	flag.Parse()

	if *chaosName != "" {
		runChaosBench(*chaosName, *arrivalRate, *seed, *chaosWall, *fillCap, *benchOut)
		return
	}
	if *sse {
		runPushBench(*users, *rounds, *interval, *benchOut, *maxRPCRatio)
		return
	}
	if *fleetMode {
		runFleetBench(*users, *fleetReplicas, *rounds, *interval, *lbPolicyFlag, *benchOut, *maxFleetRatio)
		return
	}
	if *hotpath {
		runHotpathBench(*hotpathRequests, *benchOut, *minHotAllocRatio, *maxTraceAllocs)
		return
	}
	if *backendAB {
		runRESTBench(*abRequests, *benchOut, *maxRESTRatio, *maxColdRatio)
		return
	}
	if *rollupMode {
		runRollupBench(*rollupRequests, *benchOut, *maxRollupP95)
		return
	}
	if *sloMode {
		runSLOBench(*sloRequests, *seed, *benchOut, *maxSLOAllocs)
		return
	}

	var (
		col      *collector
		scenario string
	)
	if *smoke {
		scenario = "smoke"
		col = runSmoke(*users, *rounds, *interval)
	} else {
		scenario = "live"
		col = runLive(*url, *users, *duration, *interval, *prefix, *userCount)
	}

	errRate, degRate := col.report(scenario, *users, *benchOut)
	if *maxErrRate >= 0 && errRate > *maxErrRate {
		log.Printf("FAIL: error rate %.3f exceeds -max-error-rate %.3f", errRate, *maxErrRate)
		os.Exit(1)
	}
	if *maxDegRate >= 0 && degRate > *maxDegRate {
		log.Printf("FAIL: degraded rate %.3f exceeds -max-degraded-rate %.3f", degRate, *maxDegRate)
		os.Exit(1)
	}
}

// runLive drives a running dashboard over the wall clock.
func runLive(url string, users int, duration, interval time.Duration, prefix string, userCount int) *collector {
	client := &http.Client{Timeout: 10 * time.Second}
	col := newCollector()
	deadline := time.Now().Add(duration)
	log.Printf("load: %d browsers against %s for %v (reload every %v)",
		users, url, duration, interval)

	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("%s%03d", prefix, i%userCount+1)
			b := browser.New(name, url, client, realClock{})
			for time.Now().Before(deadline) {
				col.record(b.LoadHomepage())
				time.Sleep(interval)
			}
		}(i)
	}
	wg.Wait()
	return col
}

// runSmoke builds the whole stack in-process and drives reload rounds on
// the simulated clock: no wall-clock sleeping, but cache TTLs expire as
// they would over minutes of real traffic, because each round advances the
// shared simulated clock by interval.
func runSmoke(users, rounds int, interval time.Duration) *collector {
	spec := workload.SmallSpec()
	log.Printf("smoke: building small workload (seed %d)...", spec.Seed)
	env, err := workload.Build(spec)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("news listener: %v", err)
	}
	defer newsLn.Close()
	go func() { _ = http.Serve(newsLn, env.Feed) }()

	server, err := env.NewServer(fmt.Sprintf("http://%s/", newsLn.Addr()))
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	dashLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("dashboard listener: %v", err)
	}
	defer dashLn.Close()
	go func() { _ = http.Serve(dashLn, server) }()
	baseURL := fmt.Sprintf("http://%s", dashLn.Addr())
	log.Printf("smoke: dashboard at %s, %d browsers, %d rounds (simulated %v apart)",
		baseURL, users, rounds, interval)

	client := &http.Client{Timeout: 10 * time.Second}
	col := newCollector()
	browsers := make([]*browser.Browser, users)
	for i := range browsers {
		// Browsers share the simulated clock, so their client caches age in
		// simulated time together with the server cache.
		name := env.UserNames[i%len(env.UserNames)]
		browsers[i] = browser.New(name, baseURL, client, env.Clock)
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for _, b := range browsers {
			wg.Add(1)
			go func(b *browser.Browser) {
				defer wg.Done()
				col.record(b.LoadHomepage())
			}(b)
		}
		wg.Wait()
		env.Clock.Advance(interval)
		env.Cluster.Ctl.Tick()
	}
	return col
}
