// Command loadgen load-tests a running dashboard (cmd/dashboard or a real
// deployment) the way the paper's scale concern frames it: N users with
// their own browser-side caches reloading the homepage on an interval. It
// reports per-reload latency percentiles and how many widget paints were
// served instantly from the client cache — the live counterpart of the
// §2.4 cache-load experiment.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-users 50] [-duration 30s]
//	        [-interval 5s] [-userprefix user] [-usercount 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"ooddash/internal/browser"
)

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "dashboard base URL")
		users     = flag.Int("users", 50, "concurrent simulated browsers")
		duration  = flag.Duration("duration", 30*time.Second, "test duration")
		interval  = flag.Duration("interval", 5*time.Second, "per-user reload interval")
		prefix    = flag.String("userprefix", "user", "username prefix (userNNN)")
		userCount = flag.Int("usercount", 40, "distinct usernames to rotate through")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	type sample struct {
		netTime time.Duration
		instant int
		fetches int
		failed  int
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	log.Printf("load: %d browsers against %s for %v (reload every %v)",
		*users, *url, *duration, *interval)

	for i := 0; i < *users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("%s%03d", *prefix, i%*userCount+1)
			b := browser.New(name, *url, client, realClock{})
			for time.Now().Before(deadline) {
				load := b.LoadHomepage()
				mu.Lock()
				samples = append(samples, sample{
					netTime: load.NetworkTime,
					instant: load.InstantPaints,
					fetches: load.NetworkFetches,
					failed:  load.Failed,
				})
				mu.Unlock()
				time.Sleep(*interval)
			}
		}(i)
	}
	wg.Wait()

	if len(samples) == 0 {
		log.Fatal("no samples collected — is the dashboard running?")
	}
	var (
		lats           []time.Duration
		totalInstant   int
		totalFetches   int
		totalFailed    int
		widgetsPainted int
	)
	for _, s := range samples {
		lats = append(lats, s.netTime)
		totalInstant += s.instant
		totalFetches += s.fetches
		totalFailed += s.failed
		widgetsPainted += s.instant + s.fetches
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}

	fmt.Printf("\npage loads:              %d\n", len(samples))
	fmt.Printf("widget paints:           %d\n", widgetsPainted)
	fmt.Printf("  instant (client cache): %d (%.1f%%)\n",
		totalInstant, 100*float64(totalInstant)/float64(widgetsPainted))
	fmt.Printf("  network fetches:        %d\n", totalFetches)
	fmt.Printf("  failed widgets:         %d\n", totalFailed)
	fmt.Printf("network time per reload: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
}
