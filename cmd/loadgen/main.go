// Command loadgen load-tests a running dashboard (cmd/dashboard or a real
// deployment) the way the paper's scale concern frames it: N users with
// their own browser-side caches reloading the homepage on an interval. It
// reports per-reload latency percentiles and how many widget paints were
// served instantly from the client cache — the live counterpart of the
// §2.4 cache-load experiment.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-users 50] [-duration 30s]
//	        [-interval 5s] [-userprefix user] [-usercount 40]
//	        [-max-error-rate 0.01] [-max-degraded-rate 0.2]
//
// Besides latency, loadgen reports each widget's error rate and
// degraded-response rate (responses carrying the X-OODDash-Degraded header,
// i.e. stale last-known-good data served during a source outage). The
// -max-*-rate gates turn a failure drill into a scriptable check: run
// cmd/dashboard with -fault-* flags, point loadgen at it, and the exit
// status says whether the degraded-mode budget held.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ooddash/internal/browser"
)

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "dashboard base URL")
		users     = flag.Int("users", 50, "concurrent simulated browsers")
		duration  = flag.Duration("duration", 30*time.Second, "test duration")
		interval  = flag.Duration("interval", 5*time.Second, "per-user reload interval")
		prefix    = flag.String("userprefix", "user", "username prefix (userNNN)")
		userCount = flag.Int("usercount", 40, "distinct usernames to rotate through")

		maxErrRate = flag.Float64("max-error-rate", -1, "exit 1 if the overall widget error rate exceeds this (0..1; negative disables)")
		maxDegRate = flag.Float64("max-degraded-rate", -1, "exit 1 if the overall degraded-response rate exceeds this (0..1; negative disables)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	type sample struct {
		netTime  time.Duration
		instant  int
		fetches  int
		degraded int
		failed   int
	}
	// widgetAgg tracks one widget's health across the run: how often it was
	// requested, errored outright, or was served in degraded (stale) mode.
	type widgetAgg struct {
		requests int
		errors   int
		degraded int
	}
	var (
		mu        sync.Mutex
		samples   []sample
		perWidget = make(map[string]*widgetAgg)
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	log.Printf("load: %d browsers against %s for %v (reload every %v)",
		*users, *url, *duration, *interval)

	for i := 0; i < *users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("%s%03d", *prefix, i%*userCount+1)
			b := browser.New(name, *url, client, realClock{})
			for time.Now().Before(deadline) {
				load := b.LoadHomepage()
				mu.Lock()
				samples = append(samples, sample{
					netTime:  load.NetworkTime,
					instant:  load.InstantPaints,
					fetches:  load.NetworkFetches,
					degraded: load.DegradedPaints,
					failed:   load.Failed,
				})
				for _, wr := range load.Widgets {
					agg := perWidget[wr.Name]
					if agg == nil {
						agg = &widgetAgg{}
						perWidget[wr.Name] = agg
					}
					agg.requests++
					if wr.Err != nil {
						agg.errors++
					}
					if wr.Degraded {
						agg.degraded++
					}
				}
				mu.Unlock()
				time.Sleep(*interval)
			}
		}(i)
	}
	wg.Wait()

	if len(samples) == 0 {
		log.Fatal("no samples collected — is the dashboard running?")
	}
	var (
		lats           []time.Duration
		totalInstant   int
		totalFetches   int
		totalDegraded  int
		totalFailed    int
		widgetsPainted int
	)
	for _, s := range samples {
		lats = append(lats, s.netTime)
		totalInstant += s.instant
		totalFetches += s.fetches
		totalDegraded += s.degraded
		totalFailed += s.failed
		widgetsPainted += s.instant + s.fetches
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}

	fmt.Printf("\npage loads:              %d\n", len(samples))
	fmt.Printf("widget paints:           %d\n", widgetsPainted)
	fmt.Printf("  instant (client cache): %d (%.1f%%)\n",
		totalInstant, 100*float64(totalInstant)/float64(widgetsPainted))
	fmt.Printf("  network fetches:        %d\n", totalFetches)
	fmt.Printf("  degraded (stale) :      %d (%.1f%%)\n",
		totalDegraded, 100*float64(totalDegraded)/float64(widgetsPainted))
	fmt.Printf("  failed widgets:         %d\n", totalFailed)
	fmt.Printf("network time per reload: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))

	// Per-widget health: error rate and degraded-response rate, the numbers
	// a failure drill (EXPERIMENTS.md) is run to observe.
	names := make([]string, 0, len(perWidget))
	for name := range perWidget {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-16s %9s %8s %7s %9s %7s\n",
		"widget", "requests", "errors", "err%", "degraded", "degr%")
	var totalReq, totalErr, totalDeg int
	for _, name := range names {
		agg := perWidget[name]
		totalReq += agg.requests
		totalErr += agg.errors
		totalDeg += agg.degraded
		fmt.Printf("%-16s %9d %8d %6.1f%% %9d %6.1f%%\n",
			name, agg.requests,
			agg.errors, 100*float64(agg.errors)/float64(agg.requests),
			agg.degraded, 100*float64(agg.degraded)/float64(agg.requests))
	}

	errRate := float64(totalErr) / float64(totalReq)
	degRate := float64(totalDeg) / float64(totalReq)
	if *maxErrRate >= 0 && errRate > *maxErrRate {
		log.Printf("FAIL: error rate %.3f exceeds -max-error-rate %.3f", errRate, *maxErrRate)
		os.Exit(1)
	}
	if *maxDegRate >= 0 && degRate > *maxDegRate {
		log.Printf("FAIL: degraded rate %.3f exceeds -max-degraded-rate %.3f", degRate, *maxDegRate)
		os.Exit(1)
	}
}
