// Rollup benchmark (-rollup): the scaling harness for the historical
// analytics pipeline. The claim under test is O(buckets) queries: a
// rollup-backed widget's latency depends on the window's bucket count, not
// on how many jobs accounting holds. The harness grows the accounting store
// 1x -> 100x -> 1000x with synthesized multi-year history (Backfill feeds
// the same ingest path live completions use) and at each scale measures two
// request populations over identical sliding windows:
//
//   - rollup:  the production path — pre-aggregated buckets from the store;
//   - raw:     the SetRollupDisabled ablation — the same windows recomputed
//     by scanning raw accounting rows, i.e. the pre-optimization cost.
//
// Every timed window is shifted by whole days so its aligned bounds — and
// therefore its cache key — are unique: each request is a cold read of the
// store, never a cache hit. At each scale the harness also byte-compares
// rollup and raw responses over a fixed wide window (the golden check the
// core tests run on seed history, re-run here against synthetic bulk); any
// mismatch fails the run regardless of gates.
//
// The report lands in BENCH_rollup.json. The -max-rollup-p95-ratio gate
// fails the run if the rollup path's p95 at 1000x exceeds that multiple of
// its 1x p95 — the flat-latency property the pipeline exists to provide.
// The raw ablation's degradation is reported alongside as the baseline the
// rollups beat.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
)

// rollupScaleRow is one history scale's measurements in BENCH_rollup.json.
type rollupScaleRow struct {
	Scale          int     `json:"scale"` // 1, 100, 1000
	JobsInStore    int     `json:"jobs_in_store"`
	RollupRequests int     `json:"rollup_requests"`
	RollupP50Ms    float64 `json:"rollup_p50_ms"`
	RollupP95Ms    float64 `json:"rollup_p95_ms"`
	RollupMaxMs    float64 `json:"rollup_max_ms"`
	RawRequests    int     `json:"raw_requests"`
	RawP50Ms       float64 `json:"raw_p50_ms"`
	RawP95Ms       float64 `json:"raw_p95_ms"`
	GoldenPaths    int     `json:"golden_paths_checked"`
	GoldenOK       bool    `json:"golden_byte_identical"`
}

// rollupReport is the BENCH_rollup.json snapshot.
type rollupReport struct {
	Kind        string           `json:"kind"` // "rollup"
	GeneratedAt time.Time        `json:"generated_at"`
	BaseJobs    int              `json:"base_jobs"`
	Scales      []rollupScaleRow `json:"scales"`
	// RollupP95Ratio is rollup p95 at the top scale over the 1x p95 (with a
	// small absolute floor on the baseline so sub-millisecond noise cannot
	// fail the gate) — the number -max-rollup-p95-ratio is about.
	RollupP95Ratio float64 `json:"rollup_p95_ratio_top_vs_1x"`
	// RawP95Ratio is the ablation's degradation over the same growth — the
	// super-linear baseline the rollups replace.
	RawP95Ratio  float64 `json:"raw_p95_ratio_top_vs_1x"`
	MinuteBucket int     `json:"store_minute_buckets"`
	HourBuckets  int     `json:"store_hour_buckets"`
	DayBuckets   int     `json:"store_day_buckets"`
}

// rollupBenchPaths builds n requests over day-aligned 180-day windows, each
// shifted one day further back so every aligned window (and cache key) in
// the run is unique. The mix cycles the four rollup-backed read shapes:
// total-scope chart, account ranking, per-user aggregate, per-user series.
func rollupBenchPaths(now time.Time, shiftBase int64, n int, user string) []hotpathRequest {
	day := now.Unix() - now.Unix()%86400
	stamp := func(sec int64) string {
		return time.Unix(sec, 0).UTC().Format(time.RFC3339)
	}
	reqs := make([]hotpathRequest, 0, n)
	for i := 0; i < n; i++ {
		to := day - (shiftBase+int64(i))*86400
		from := to - 180*86400
		window := fmt.Sprintf("range=custom&from=%s&to=%s", stamp(from), stamp(to))
		var path string
		switch i % 4 {
		case 0:
			path = "/api/usage/cluster?" + window + "&bucket=day"
		case 1:
			path = "/api/usage/accounts?" + window
		case 2:
			path = "/api/jobperf?" + window
		case 3:
			path = "/api/jobperf/timeseries?" + window + "&bucket=day"
		}
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			log.Fatalf("rollup bench: building %s: %v", path, err)
		}
		req.Header.Set(auth.UserHeader, user)
		reqs = append(reqs, hotpathRequest{req: req, path: path})
	}
	return reqs
}

// timeRollupRequests serves each request once and returns sorted latencies.
func timeRollupRequests(server *core.Server, reqs []hotpathRequest) []time.Duration {
	rec := &nullRecorder{header: make(http.Header)}
	lats := make([]time.Duration, 0, len(reqs))
	for _, r := range reqs {
		rec.reset()
		t0 := time.Now()
		server.ServeHTTP(rec, r.req)
		lats = append(lats, time.Since(t0))
		if rec.status != http.StatusOK {
			body := httptest.NewRecorder()
			server.ServeHTTP(body, r.req)
			log.Fatalf("rollup bench: GET %s: status %d: %s", r.path, rec.status, body.Body)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}

// rollupGoldenCheck byte-compares rollup and raw-recompute responses over a
// fixed wide window. The window's `to` edge is shifted by scaleIdx days so
// each scale reads fresh cache entries. Returns paths checked and whether
// all matched.
func rollupGoldenCheck(server *core.Server, now time.Time, scaleIdx int, user string) (int, bool) {
	day := now.Unix() - now.Unix()%86400
	to := day - int64(scaleIdx)*86400
	from := to - 600*86400
	stamp := func(sec int64) string {
		return time.Unix(sec, 0).UTC().Format(time.RFC3339)
	}
	window := fmt.Sprintf("range=custom&from=%s&to=%s", stamp(from), stamp(to))
	paths := []string{
		"/api/usage/cluster?" + window + "&bucket=day",
		"/api/usage/accounts?" + window,
		"/api/usage/efficiency?" + window,
		"/api/jobperf?" + window,
		"/api/jobperf/timeseries?" + window + "&bucket=day",
	}
	get := func(path string) []byte {
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			log.Fatalf("rollup bench: building %s: %v", path, err)
		}
		req.Header.Set(auth.UserHeader, user)
		rec := httptest.NewRecorder()
		server.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			log.Fatalf("rollup bench: golden GET %s: status %d: %s", path, rec.Code, rec.Body)
		}
		return rec.Body.Bytes()
	}
	ok := true
	for _, path := range paths {
		server.SetRollupDisabled(false)
		rolled := get(path)
		server.SetRollupDisabled(true)
		raw := get(path)
		server.SetRollupDisabled(false)
		if string(rolled) != string(raw) {
			ok = false
			log.Printf("GOLDEN MISMATCH: %s\nrollup: %.200s\nraw:    %.200s", path, rolled, raw)
		}
	}
	return len(paths), ok
}

// runRollupBench grows the store through the scales, measures both paths,
// writes the snapshot, and applies the flat-p95 gate.
func runRollupBench(requests int, benchOut string, maxRatio float64) {
	if requests < 4 {
		requests = 4
	}
	// The raw ablation at 1000x scans hundreds of thousands of accounting
	// rows per window — slower than the production 2s per-attempt resilience
	// timeout by design (that cost is the measurement). Raise the timeout so
	// the ablation is timed rather than clipped into 503s; the rollup path
	// never comes near either limit.
	cfg := core.Config{}
	cfg.Resilience.Policy.Timeout = 60 * time.Second
	st, err := buildPushStackConfig(cfg)
	if err != nil {
		log.Fatalf("rollup bench: %v", err)
	}
	defer st.close()
	server := st.server
	env := st.env
	user := env.UserNames[0]
	now := env.Clock.Now()

	const baseJobs = 300
	scales := []int{1, 100, 1000}
	// The raw ablation is O(jobs): fewer iterations at high scale keep the
	// run short without losing the trend.
	rawCounts := []int{20, 8, 4}

	var rows []rollupScaleRow
	synthesized := 0
	for si, scale := range scales {
		target := baseJobs * scale
		added := env.SynthesizeHistory(synthesized, target-synthesized)
		synthesized = target
		jobsInStore := env.Cluster.DBD.JobCount()
		log.Printf("rollup bench: scale %dx — %d synthesized jobs added (%d in store)",
			scale, added, jobsInStore)

		// Unique day shifts per scale and phase so no window repeats
		// anywhere in the run.
		shiftBase := int64(si) * int64(2*requests+64)
		rollupLats := timeRollupRequests(server,
			rollupBenchPaths(now, shiftBase, requests, user))

		server.SetRollupDisabled(true)
		rawLats := timeRollupRequests(server,
			rollupBenchPaths(now, shiftBase+int64(requests+17), rawCounts[si], user))
		server.SetRollupDisabled(false)

		checked, goldenOK := rollupGoldenCheck(server, now, si, user)

		row := rollupScaleRow{
			Scale:          scale,
			JobsInStore:    jobsInStore,
			RollupRequests: len(rollupLats),
			RollupP50Ms:    ms100(percentile(rollupLats, 0.50)),
			RollupP95Ms:    ms100(percentile(rollupLats, 0.95)),
			RollupMaxMs:    ms100(rollupLats[len(rollupLats)-1]),
			RawRequests:    len(rawLats),
			RawP50Ms:       ms100(percentile(rawLats, 0.50)),
			RawP95Ms:       ms100(percentile(rawLats, 0.95)),
			GoldenPaths:    checked,
			GoldenOK:       goldenOK,
		}
		rows = append(rows, row)
		log.Printf("rollup bench: scale %dx — rollup p95 %.3fms, raw p95 %.3fms, golden %v",
			scale, row.RollupP95Ms, row.RawP95Ms, goldenOK)
	}

	// Floor the baseline at 5ms. At 1x the windows are mostly empty, so the
	// measured p95 is fixed per-request overhead in the hundreds of
	// microseconds; ratios over such a baseline amplify noise and bucket
	// density, not algorithmic growth. With the floor, the gate trips at a
	// p95 above maxRatio*5ms — far above anything the O(buckets) path
	// produces and far below the hundreds of milliseconds an O(jobs)
	// regression produces (compare the raw ablation's p95 at 1000x).
	const p95FloorMs = 5.0
	base := rows[0].RollupP95Ms
	if base < p95FloorMs {
		base = p95FloorMs
	}
	top := rows[len(rows)-1]
	rollupRatio := top.RollupP95Ms / base
	rawBase := rows[0].RawP95Ms
	if rawBase < p95FloorMs {
		rawBase = p95FloorMs
	}
	rawRatio := top.RawP95Ms / rawBase
	stats := env.Cluster.DBD.RollupStats()
	log.Printf("rollup bench: p95 ratio %dx vs 1x — rollup %.2f, raw ablation %.2f",
		top.Scale, rollupRatio, rawRatio)

	if benchOut != "" {
		rep := rollupReport{
			Kind:           "rollup",
			GeneratedAt:    time.Now().UTC(),
			BaseJobs:       baseJobs,
			Scales:         rows,
			RollupP95Ratio: rollupRatio,
			RawP95Ratio:    rawRatio,
			MinuteBucket:   stats.MinuteBuckets,
			HourBuckets:    stats.HourBuckets,
			DayBuckets:     stats.DayBuckets,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding rollup snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("rollup bench snapshot written to %s", benchOut)
	}

	failed := false
	for _, row := range rows {
		if !row.GoldenOK {
			log.Printf("FAIL: rollup and raw responses diverged at scale %dx", row.Scale)
			failed = true
		}
	}
	if maxRatio >= 0 && rollupRatio > maxRatio {
		log.Printf("FAIL: rollup p95 ratio %.2f at %dx exceeds -max-rollup-p95-ratio %.2f",
			rollupRatio, top.Scale, maxRatio)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
