// SLO benchmark (-slo): the regression harness for the live SLO engine,
// with two independent gates.
//
// Overhead gate: the hit-path request mix from the hotpath bench runs twice
// against one warmed in-process stack — once with SLI recording disabled
// (the A/B switch core.Server.SetSLORecordingDisabled exposes for exactly
// this purpose), once enabled. The difference in exact allocations per
// request is what error-budget accounting costs every production request;
// -max-slo-allocs fails the run if it exceeds that many allocs/op.
//
// Alerting gate: every scenario in the internal/chaos catalog replays
// in-process with the chaos-tuned objectives. Run.Execute already enforces
// each scenario's AlertExpectation (must-fire, must-resolve, and the
// nothing-else-may-fire sweep), so a scenario passes iff Execute returns
// nil; the report additionally records each rule's lifetime fired/resolved
// counts so a true-positive or false-positive regression is visible in the
// snapshot, not just in the exit code. login_rush runs with wall-clock
// sleeps and a tight fill cap like its drill, so injected stalls have real
// duration for the latency SLI.
//
// The report lands in BENCH_slo.json.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/chaos"
)

// sloAlertRow is one burn-rate rule's lifetime outcome in one scenario.
type sloAlertRow struct {
	Rule     string `json:"rule"` // "objective/rule"
	Severity string `json:"severity"`
	State    string `json:"final_state"`
	Fired    uint64 `json:"fired_total"`
	Resolved uint64 `json:"resolved_total"`
}

// sloScenarioReport is one chaos scenario's alerting truth-table row.
type sloScenarioReport struct {
	Scenario    string        `json:"scenario"`
	MustFire    []string      `json:"must_fire,omitempty"`
	MustResolve []string      `json:"must_resolve,omitempty"`
	Alerts      []sloAlertRow `json:"alerts"`
	Pass        bool          `json:"pass"`
	Error       string        `json:"error,omitempty"`
}

// sloReport is the BENCH_slo.json snapshot.
type sloReport struct {
	Kind        string    `json:"kind"` // "loadgen_slo"
	GeneratedAt time.Time `json:"generated_at"`
	Seed        int64     `json:"seed"`

	RecordingOff hotpathPhase `json:"recording_off"`
	RecordingOn  hotpathPhase `json:"recording_on"`
	// AllocDelta is recording-on allocs/op minus recording-off: the hit-path
	// cost of SLI recording. The gate is about this number.
	AllocDelta    float64             `json:"slo_alloc_delta"`
	MaxSLOAllocs  float64             `json:"max_slo_allocs"`
	OverheadPass  bool                `json:"overhead_pass"`
	Scenarios     []sloScenarioReport `json:"scenarios"`
	ScenariosPass bool                `json:"scenarios_pass"`
	Pass          bool                `json:"pass"`
}

// runSLOOverhead measures the hit-path allocation cost of SLI recording:
// same warmed encode-once stack, same request mix, recording off then on.
func runSLOOverhead(requests int) (off, on hotpathPhase, err error) {
	st, err := buildPushStack()
	if err != nil {
		return off, on, fmt.Errorf("stack: %w", err)
	}
	defer st.close()
	server := st.server
	server.SetTraceSample(-1) // tracing out of the comparison entirely

	users := st.env.UserNames
	if len(users) > 4 {
		users = users[:4]
	}
	var mix []hotpathRequest
	for _, u := range users {
		for _, path := range hotpathWidgets {
			req, rerr := http.NewRequest(http.MethodGet, path, nil)
			if rerr != nil {
				return off, on, fmt.Errorf("building %s: %w", path, rerr)
			}
			req.Header.Set(auth.UserHeader, u)
			mix = append(mix, hotpathRequest{req: req, path: path})
		}
	}
	rounds := requests / len(mix)
	if rounds < 1 {
		rounds = 1
	}

	warm := func() error {
		rec := &nullRecorder{header: make(http.Header)}
		for _, r := range mix {
			rec.reset()
			server.ServeHTTP(rec, r.req)
			if rec.status != http.StatusOK {
				return fmt.Errorf("warm GET %s: status %d", r.path, rec.status)
			}
		}
		return nil
	}

	server.SetSLORecordingDisabled(true)
	if err := warm(); err != nil {
		return off, on, err
	}
	off, err = runHotpathPhase(server, "slo_recording_off", mix, rounds, http.StatusOK)
	if err != nil {
		return off, on, err
	}

	server.SetSLORecordingDisabled(false)
	if err := warm(); err != nil {
		return off, on, err
	}
	on, err = runHotpathPhase(server, "slo_recording_on", mix, rounds, http.StatusOK)
	return off, on, err
}

// runSLOScenario replays one catalog scenario and reports its alert truth
// table. Execute enforces the scenario's AlertExpectation, so pass is
// simply "Execute returned nil".
func runSLOScenario(sc chaos.Scenario, seed int64) sloScenarioReport {
	rep := sloScenarioReport{
		Scenario:    sc.Name,
		MustFire:    sc.Alerts.MustFire,
		MustResolve: sc.Alerts.MustResolve,
	}
	opts := chaos.Options{Seed: seed}
	if sc.Name == "login_rush" {
		// Like the drill: injected stalls need real wall duration for the
		// latency SLI, and the tight fill cap makes overflow 503s happen.
		opts.FillCap = 8
		opts.Sleep = time.Sleep
	}
	r, err := chaos.NewRun(opts)
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	defer r.Close()

	execErr := r.Execute(sc)
	for _, o := range r.Server.SLO().Status().Objectives {
		for _, a := range o.Alerts {
			rep.Alerts = append(rep.Alerts, sloAlertRow{
				Rule:     o.Name + "/" + a.Rule,
				Severity: a.Severity,
				State:    a.State,
				Fired:    a.Fired,
				Resolved: a.Resolved,
			})
		}
	}
	if execErr != nil {
		rep.Error = execErr.Error()
		return rep
	}
	rep.Pass = true
	return rep
}

// runSLOBench runs both gates, writes the snapshot, and exits non-zero if
// either fails.
func runSLOBench(requests int, seed int64, benchOut string, maxSLOAllocs float64) {
	off, on, err := runSLOOverhead(requests)
	if err != nil {
		log.Fatalf("slo bench: overhead: %v", err)
	}
	delta := on.AllocsPerOp - off.AllocsPerOp
	overheadPass := maxSLOAllocs < 0 || delta <= maxSLOAllocs

	fmt.Printf("\n%-18s %9s %10s %10s %12s\n", "phase", "requests", "p50(ms)", "p95(ms)", "allocs/op")
	for _, p := range []hotpathPhase{off, on} {
		fmt.Printf("%-18s %9d %10.3f %10.3f %12.2f\n", p.Mode, p.Requests, p.P50Ms, p.P95Ms, p.AllocsPerOp)
	}
	fmt.Printf("\nSLI recording overhead: %+.2f allocs/op (gate: <= %.2f)\n", delta, maxSLOAllocs)

	scenariosPass := true
	var scenarios []sloScenarioReport
	for _, sc := range chaos.Catalog() {
		rep := runSLOScenario(sc, seed)
		scenarios = append(scenarios, rep)
		verdict := "PASS"
		if !rep.Pass {
			verdict = "FAIL"
			scenariosPass = false
		}
		fired := 0
		for _, a := range rep.Alerts {
			if a.Fired > 0 {
				fired++
			}
		}
		fmt.Printf("%-20s %s  rules fired: %d  must-fire: %v", sc.Name, verdict, fired, rep.MustFire)
		if rep.Error != "" {
			fmt.Printf("  (%s)", rep.Error)
		}
		fmt.Println()
	}

	pass := overheadPass && scenariosPass
	if benchOut != "" {
		rep := sloReport{
			Kind:          "loadgen_slo",
			GeneratedAt:   time.Now().UTC(),
			Seed:          seed,
			RecordingOff:  off,
			RecordingOn:   on,
			AllocDelta:    delta,
			MaxSLOAllocs:  maxSLOAllocs,
			OverheadPass:  overheadPass,
			Scenarios:     scenarios,
			ScenariosPass: scenariosPass,
			Pass:          pass,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding slo snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("slo bench snapshot written to %s", benchOut)
	}
	if !overheadPass {
		log.Printf("FAIL: SLI recording adds %.2f allocs/op, above -max-slo-allocs %.2f", delta, maxSLOAllocs)
	}
	if !scenariosPass {
		log.Printf("FAIL: one or more chaos scenarios violated their alert expectations")
	}
	if !pass {
		os.Exit(1)
	}
}
