package main

// Chaos mode: replay the internal/chaos scenario catalog against a real
// HTTP dashboard under an OPEN-LOOP request load, and gate each scenario on
// its SLO envelope.
//
// Open-loop means arrivals are scheduled ahead of time from a Poisson
// process (-arrival-rate requests/second) and fired at their intended
// instants regardless of how many requests are already in flight; latency
// is measured from the INTENDED arrival time, not from when the client got
// around to sending. A server that stalls therefore shows up as unbounded
// p99 growth instead of being hidden by coordinated omission (every
// closed-loop client politely waiting its turn).
//
// The scenario script itself still runs on the simulated clock: each
// scripted step advances simulated time by the scenario's StepEvery while
// -chaos-wall of real time elapses, so breakers, TTLs, reboot timers, and
// power-up delays play out exactly as in the drills while the wall-clock
// arrival storm plays out against the same server.

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/chaos"
	"ooddash/internal/core"
)

// arrival is one pre-scheduled open-loop request.
type arrival struct {
	at   time.Duration // offset from scenario start (intended send instant)
	user string
	path string
}

// chaosTally classifies every open-loop response for one scenario.
type chaosTally struct {
	mu        sync.Mutex
	lats      []time.Duration
	ok        int
	degraded  int
	rejected  int // 503: breaker open, upstream down, or fill-cap overflow
	server5xx int // any other 5xx — always a gate failure
	other     int // 4xx etc.
	transport int // client-side errors (dial, timeout)
}

func (t *chaosTally) record(lat time.Duration, status int, degraded bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lats = append(t.lats, lat)
	switch {
	case err != nil:
		t.transport++
	case status >= 200 && status < 300:
		t.ok++
		if degraded {
			t.degraded++
		}
	case status == http.StatusServiceUnavailable:
		t.rejected++
	case status >= 500:
		t.server5xx++
	default:
		t.other++
	}
}

// chaosScenarioReport is one scenario's row in BENCH_chaos.json.
type chaosScenarioReport struct {
	Steps        int             `json:"steps"`
	SimSpanMs    float64         `json:"sim_span_ms"`
	Arrivals     int             `json:"arrivals"`
	OK           int             `json:"ok"`
	Degraded     int             `json:"degraded"`
	Rejected503  int             `json:"rejected_503"`
	Server5xx    int             `json:"server_5xx"`
	Transport    int             `json:"transport_errors"`
	Other        int             `json:"other"`
	P50Ms        float64         `json:"p50_ms"`
	P99Ms        float64         `json:"p99_ms"`
	MaxMs        float64         `json:"max_ms"`
	DegradedRate float64         `json:"degraded_rate"`
	RejectedRate float64         `json:"rejected_rate"`
	SLOP99Ms     float64         `json:"slo_p99_ms"`
	SLOMaxDegr   float64         `json:"slo_max_degraded_rate"`
	SLOMaxRej    float64         `json:"slo_max_rejected_rate"`
	Fills        []core.FillStat `json:"fills"`
	DrillHealth  chaos.Health    `json:"drill_health"`
	Pass         bool            `json:"pass"`
}

// chaosBenchReport is the BENCH_chaos.json snapshot.
type chaosBenchReport struct {
	Kind        string                         `json:"kind"` // "loadgen_chaos"
	GeneratedAt time.Time                      `json:"generated_at"`
	Seed        int64                          `json:"seed"`
	ArrivalRate float64                        `json:"arrival_rate_per_sec"`
	StepWallMs  float64                        `json:"step_wall_ms"`
	FillCap     int                            `json:"fill_cap"`
	Scenarios   map[string]chaosScenarioReport `json:"scenarios"`
	Pass        bool                           `json:"pass"`
}

// runChaosBench executes the named scenarios (or all of them) and exits
// non-zero if any scenario misses its SLO envelope or fails verification.
func runChaosBench(name string, rate float64, seed int64, stepWall time.Duration, fillCap int, benchOut string) {
	var scenarios []chaos.Scenario
	if name == "all" {
		scenarios = chaos.Catalog()
	} else {
		sc, ok := chaos.ByName(name)
		if !ok {
			log.Fatalf("chaos: unknown scenario %q (have %v)", name, chaos.Names())
		}
		scenarios = []chaos.Scenario{sc}
	}
	if rate <= 0 {
		log.Fatalf("chaos: -arrival-rate must be positive, got %v", rate)
	}

	rep := chaosBenchReport{
		Kind:        "loadgen_chaos",
		GeneratedAt: time.Now().UTC(),
		Seed:        seed,
		ArrivalRate: rate,
		StepWallMs:  ms(stepWall),
		FillCap:     fillCap,
		Scenarios:   make(map[string]chaosScenarioReport, len(scenarios)),
		Pass:        true,
	}
	for _, sc := range scenarios {
		row, err := runChaosScenario(sc, rate, seed, stepWall, fillCap)
		if err != nil {
			log.Printf("FAIL %s: %v", sc.Name, err)
			row.Pass = false
		}
		if !row.Pass {
			rep.Pass = false
		}
		rep.Scenarios[sc.Name] = row
	}

	if benchOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding chaos snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("chaos snapshot written to %s", benchOut)
	}
	if !rep.Pass {
		log.Printf("FAIL: one or more chaos scenarios missed their SLO gates")
		os.Exit(1)
	}
	log.Printf("PASS: %d chaos scenario(s) within SLO", len(scenarios))
}

// runChaosScenario runs one scenario: scripted steps on the simulated clock
// paced by stepWall of real time, with the open-loop arrival storm firing
// at the dashboard's real HTTP listener throughout.
func runChaosScenario(sc chaos.Scenario, rate float64, seed int64, stepWall time.Duration, fillCap int) (chaosScenarioReport, error) {
	row := chaosScenarioReport{
		Steps:      sc.Steps,
		SimSpanMs:  ms(time.Duration(sc.Steps) * sc.StepEvery),
		SLOP99Ms:   ms(sc.SLO.P99),
		SLOMaxDegr: sc.SLO.MaxDegradedRate,
		SLOMaxRej:  sc.SLO.MaxRejectedRate,
	}
	r, err := chaos.NewRun(chaos.Options{
		Seed:    seed,
		FillCap: fillCap,
		Sleep:   time.Sleep, // injected fault latency really stalls requests
	})
	if err != nil {
		return row, err
	}
	defer r.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, fmt.Errorf("listener: %v", err)
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, r.Server) }()
	baseURL := fmt.Sprintf("http://%s", ln.Addr())

	// Setup first: login-rush draws need the rush cohort to exist.
	if sc.Setup != nil {
		if err := sc.Setup(r); err != nil {
			return row, fmt.Errorf("setup: %v", err)
		}
	}

	// Pre-schedule the whole Poisson storm so send instants are independent
	// of server behavior (the open-loop property).
	total := time.Duration(sc.Steps) * stepWall
	rng := rand.New(rand.NewSource(seed))
	var plan []arrival
	for at := time.Duration(0); at < total; {
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if at >= total {
			break
		}
		user, path := sc.Draw(r, rng)
		plan = append(plan, arrival{at: at, user: user, path: path})
	}
	row.Arrivals = len(plan)
	log.Printf("chaos %s: %d open-loop arrivals over %v wall (%.0f/s), %d sim steps of %v",
		sc.Name, len(plan), total, rate, sc.Steps, sc.StepEvery)

	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512},
	}
	tally := &chaosTally{}
	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range plan {
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			intended := start.Add(a.at)
			time.Sleep(time.Until(intended))
			req, _ := http.NewRequest(http.MethodGet, baseURL+a.path, nil)
			req.Header.Set(auth.UserHeader, a.user)
			resp, err := client.Do(req)
			lat := time.Since(intended) // from INTENDED arrival: no omission
			if err != nil {
				tally.record(lat, 0, false, err)
				return
			}
			degraded := resp.Header.Get("X-OODDash-Degraded") != ""
			_ = resp.Body.Close()
			tally.record(lat, resp.StatusCode, degraded, nil)
		}(a)
	}

	// The scripted storm advances in lockstep with the wall-clock schedule.
	var stepErr error
	for i := 0; i < sc.Steps; i++ {
		if err := r.Step(sc, i); err != nil {
			stepErr = err
			break
		}
		time.Sleep(time.Until(start.Add(time.Duration(i+1) * stepWall)))
	}
	wg.Wait()
	if stepErr != nil {
		return row, stepErr
	}
	if sc.Verify != nil {
		if err := sc.Verify(r); err != nil {
			return row, fmt.Errorf("verify: %v", err)
		}
	}

	tally.mu.Lock()
	defer tally.mu.Unlock()
	sort.Slice(tally.lats, func(i, j int) bool { return tally.lats[i] < tally.lats[j] })
	row.OK = tally.ok
	row.Degraded = tally.degraded
	row.Rejected503 = tally.rejected
	row.Server5xx = tally.server5xx
	row.Transport = tally.transport
	row.Other = tally.other
	row.P50Ms = ms(percentile(tally.lats, 0.50))
	row.P99Ms = ms(percentile(tally.lats, 0.99))
	if n := len(tally.lats); n > 0 {
		row.MaxMs = ms(tally.lats[n-1])
	}
	n := float64(len(plan))
	row.DegradedRate = float64(tally.degraded) / math.Max(n, 1)
	row.RejectedRate = float64(tally.rejected) / math.Max(n, 1)
	row.Fills = r.Server.FillStats()
	row.DrillHealth = r.Health()

	// The gates. Page-level 5xx and client transport errors are always
	// fatal; the rest is the scenario's SLO envelope.
	row.Pass = true
	fail := func(format string, args ...any) {
		row.Pass = false
		log.Printf("FAIL %s: "+format, append([]any{sc.Name}, args...)...)
	}
	if len(plan) == 0 {
		fail("no arrivals scheduled")
	}
	if tally.server5xx > 0 {
		fail("%d page-level 5xx responses (want 0)", tally.server5xx)
	}
	if tally.transport > 0 {
		fail("%d transport errors (want 0)", tally.transport)
	}
	if p99 := percentile(tally.lats, 0.99); p99 > sc.SLO.P99 {
		fail("open-loop p99 %v exceeds SLO %v", p99.Round(time.Millisecond), sc.SLO.P99)
	}
	if row.DegradedRate > sc.SLO.MaxDegradedRate {
		fail("degraded rate %.3f exceeds SLO %.3f", row.DegradedRate, sc.SLO.MaxDegradedRate)
	}
	if row.RejectedRate > sc.SLO.MaxRejectedRate {
		fail("rejected rate %.3f exceeds SLO %.3f", row.RejectedRate, sc.SLO.MaxRejectedRate)
	}
	log.Printf("chaos %s: ok=%d degraded=%d rejected=%d 5xx=%d p50=%v p99=%v pass=%t",
		sc.Name, tally.ok, tally.degraded, tally.rejected, tally.server5xx,
		percentile(tally.lats, 0.50).Round(time.Millisecond),
		percentile(tally.lats, 0.99).Round(time.Millisecond), row.Pass)
	return row, nil
}
