// Hot-path benchmark (-hotpath): the regression harness for the encode-once
// serving pipeline. Three phases run against the same warmed in-process
// stack, all requests cache hits by construction (the simulated clock never
// advances, so no source TTL expires mid-phase):
//
//  1. reencode:    rendered-response layer disabled — every request rebuilds
//     the view model and re-marshals it (the pre-optimization hit path);
//  2. encode-once: rendered layer on — requests serve materialized bytes;
//  3. revalidate:  clients present the stored ETag — responses are 304s;
//  4. traced:      encode-once again with span tracing enabled but sampling
//     probability 0 — every request hashes its trace ID, misses, and runs
//     the hit path through nil-span no-ops.
//
// Phases 1–3 run with tracing fully disabled so their numbers stay
// comparable with the pre-tracing snapshots. Phase 4 exists for its delta
// against phase 2: the -max-trace-allocs gate fails the run if sampled-out
// tracing costs the hit path more than that many allocations per request.
//
// Each phase measures wall-clock latency per request (p50/p95) and exact
// allocations per request (runtime.MemStats.Mallocs delta — monotonic, so
// GC cannot skew it). The report lands in BENCH_hotpath.json and the
// -min-hotpath-alloc-ratio gate fails the run if encode-once stops saving
// at least that multiple of the baseline's allocations, or if its p95 is
// no longer faster — the regression this harness exists to catch.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
	"os"
)

// hotpathWidgets is the hit-heavy request mix: every JSON homepage widget,
// shared and per-user, so both rendered-cache variants are exercised.
var hotpathWidgets = []string{
	"/api/announcements",
	"/api/system_status",
	"/api/cluster_status",
	"/api/recent_jobs",
	"/api/accounts",
	"/api/storage",
	"/api/myjobs",
}

// nullRecorder is a reusable ResponseWriter that discards the body: the
// benchmark measures the server's allocations, so the recorder itself must
// not allocate per request beyond clearing its header map.
type nullRecorder struct {
	header http.Header
	status int
	bytes  int64
}

func (n *nullRecorder) Header() http.Header { return n.header }
func (n *nullRecorder) WriteHeader(c int)   { n.status = c }
func (n *nullRecorder) Write(p []byte) (int, error) {
	n.bytes += int64(len(p))
	return len(p), nil
}

func (n *nullRecorder) reset() {
	clear(n.header)
	n.status = http.StatusOK
}

// hotpathPhase is one phase's row in BENCH_hotpath.json.
type hotpathPhase struct {
	Mode          string  `json:"mode"` // "reencode", "encode_once", "revalidate_304"
	Requests      int     `json:"requests"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	RenderEncodes int64   `json:"render_encodes"`
	BytesServed   int64   `json:"bytes_served"`
}

// hotpathReport is the BENCH_hotpath.json snapshot.
type hotpathReport struct {
	Kind        string       `json:"kind"` // "hotpath"
	Scenario    string       `json:"scenario"`
	GeneratedAt time.Time    `json:"generated_at"`
	Widgets     []string     `json:"widgets"`
	Users       int          `json:"users"`
	Reencode    hotpathPhase `json:"reencode_baseline"`
	EncodeOnce  hotpathPhase `json:"encode_once"`
	Revalidate  hotpathPhase `json:"revalidate_304"`
	Traced      hotpathPhase `json:"encode_once_traced"`
	// AllocRatio is reencode allocs/op over encode-once allocs/op — the
	// number the regression gate is about.
	AllocRatio float64 `json:"alloc_ratio_reencode_vs_encode_once"`
	P95Ratio   float64 `json:"p95_ratio_reencode_vs_encode_once"`
	// TraceAllocDelta is traced allocs/op minus encode-once allocs/op: what
	// sampled-out span tracing costs the hit path.
	TraceAllocDelta float64 `json:"trace_alloc_delta_sampled_out"`
	RenderHits      int64   `json:"render_hits"`
}

// hotpathRequest is one (user, path) cell of the request mix.
type hotpathRequest struct {
	req  *http.Request
	path string
}

// runHotpathPhase drives requests round-robin through the mux and measures
// latency percentiles and exact allocs/op for the whole serve path.
func runHotpathPhase(server *core.Server, mode string, reqs []hotpathRequest, rounds int, want int) (hotpathPhase, error) {
	rec := &nullRecorder{header: make(http.Header)}
	lats := make([]time.Duration, 0, rounds*len(reqs))
	encBefore := server.RenderEncodes()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	phaseStart := time.Now()
	for round := 0; round < rounds; round++ {
		for _, r := range reqs {
			rec.reset()
			t0 := time.Now()
			server.ServeHTTP(rec, r.req)
			lats = append(lats, time.Since(t0))
			if rec.status != want {
				return hotpathPhase{}, fmt.Errorf("%s: GET %s: status %d, want %d",
					mode, r.path, rec.status, want)
			}
		}
	}
	elapsed := time.Since(phaseStart)
	runtime.ReadMemStats(&ms)

	n := len(lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return hotpathPhase{
		Mode:          mode,
		Requests:      n,
		P50Ms:         ms100(percentile(lats, 0.50)),
		P95Ms:         ms100(percentile(lats, 0.95)),
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp:   float64(ms.Mallocs-mallocs) / float64(n),
		RenderEncodes: server.RenderEncodes() - encBefore,
		BytesServed:   rec.bytes,
	}, nil
}

// ms100 is ms with enough resolution for sub-millisecond hit latencies.
func ms100(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runHotpathBench builds the stack, runs the four phases, writes the
// snapshot, and applies the allocation-ratio and tracing-overhead gates.
func runHotpathBench(requests int, benchOut string, minAllocRatio, maxTraceAllocs float64) {
	st, err := buildPushStack()
	if err != nil {
		log.Fatalf("hotpath bench: %v", err)
	}
	defer st.close()
	server := st.server

	// Request mix: every widget for a handful of users (per-user rendered
	// variants included). Requests are built once and reused; contexts and
	// headers the middleware attaches are per-serve.
	users := st.env.UserNames
	if len(users) > 4 {
		users = users[:4]
	}
	var mix []hotpathRequest
	for _, u := range users {
		for _, path := range hotpathWidgets {
			req, err := http.NewRequest(http.MethodGet, path, nil)
			if err != nil {
				log.Fatalf("hotpath bench: building %s: %v", path, err)
			}
			req.Header.Set(auth.UserHeader, u)
			mix = append(mix, hotpathRequest{req: req, path: path})
		}
	}
	rounds := requests / len(mix)
	if rounds < 1 {
		rounds = 1
	}

	warm := func() {
		rec := &nullRecorder{header: make(http.Header)}
		for _, r := range mix {
			rec.reset()
			server.ServeHTTP(rec, r.req)
			if rec.status != http.StatusOK {
				log.Fatalf("hotpath bench: warm GET %s: status %d", r.path, rec.status)
			}
		}
	}

	log.Printf("hotpath bench: %d widgets x %d users, %d rounds per phase",
		len(hotpathWidgets), len(users), rounds)

	// Phases 1–3 measure the serving pipeline with tracing fully off —
	// comparable with pre-tracing snapshots of this report.
	server.SetTraceSample(-1)

	// Phase 1: re-encode baseline. The source cache is warm (clock frozen),
	// so every request is a cache hit that still rebuilds and re-marshals.
	server.SetRenderCacheDisabled(true)
	warm()
	reencode, err := runHotpathPhase(server, "reencode", mix, rounds, http.StatusOK)
	if err != nil {
		log.Fatalf("hotpath bench: %v", err)
	}

	// Phase 2: encode-once. Warm fills the rendered cache; measured requests
	// serve materialized bytes.
	server.SetRenderCacheDisabled(false)
	warm()
	encodeOnce, err := runHotpathPhase(server, "encode_once", mix, rounds, http.StatusOK)
	if err != nil {
		log.Fatalf("hotpath bench: %v", err)
	}

	// Phase 3: ETag revalidation — collect each cell's tag, then replay with
	// If-None-Match expecting 304s.
	reval := make([]hotpathRequest, 0, len(mix))
	tagRec := &nullRecorder{header: make(http.Header)}
	for _, r := range mix {
		tagRec.reset()
		server.ServeHTTP(tagRec, r.req)
		tag := tagRec.header.Get("ETag")
		if tag == "" {
			log.Fatalf("hotpath bench: GET %s: no ETag to revalidate", r.path)
		}
		req := r.req.Clone(r.req.Context())
		req.Header.Set("If-None-Match", tag)
		reval = append(reval, hotpathRequest{req: req, path: r.path})
	}
	revalidate, err := runHotpathPhase(server, "revalidate_304", reval, rounds, http.StatusNotModified)
	if err != nil {
		log.Fatalf("hotpath bench: %v", err)
	}

	// Phase 4: sampled-out tracing over the encode-once hit path. Sampling
	// probability 0 keeps head sampling enabled (the per-request hash runs)
	// while guaranteeing no span is ever built — the overhead every
	// untraced production request pays.
	server.SetTraceSample(0)
	warm()
	traced, err := runHotpathPhase(server, "encode_once_traced", mix, rounds, http.StatusOK)
	if err != nil {
		log.Fatalf("hotpath bench: %v", err)
	}
	server.SetTraceSample(-1)

	allocRatio := 0.0
	if encodeOnce.AllocsPerOp > 0 {
		allocRatio = reencode.AllocsPerOp / encodeOnce.AllocsPerOp
	}
	p95Ratio := 0.0
	if encodeOnce.P95Ms > 0 {
		p95Ratio = reencode.P95Ms / encodeOnce.P95Ms
	}
	traceAllocDelta := traced.AllocsPerOp - encodeOnce.AllocsPerOp
	hits, _ := server.RenderStats()

	fmt.Printf("\n%-18s %9s %10s %10s %12s %12s %14s\n",
		"phase", "requests", "p50(ms)", "p95(ms)", "ns/op", "allocs/op", "encodes")
	for _, p := range []hotpathPhase{reencode, encodeOnce, revalidate, traced} {
		fmt.Printf("%-18s %9d %10.3f %10.3f %12.0f %12.1f %14d\n",
			p.Mode, p.Requests, p.P50Ms, p.P95Ms, p.NsPerOp, p.AllocsPerOp, p.RenderEncodes)
	}
	fmt.Printf("\nallocs/op ratio (reencode / encode-once): %.1fx\n", allocRatio)
	fmt.Printf("p95 ratio (reencode / encode-once): %.1fx\n", p95Ratio)
	fmt.Printf("sampled-out tracing overhead: %+.1f allocs/op\n", traceAllocDelta)

	if benchOut != "" {
		rep := hotpathReport{
			Kind:        "hotpath",
			Scenario:    "smoke",
			GeneratedAt: time.Now().UTC(),
			Widgets:     hotpathWidgets,
			Users:       len(users),
			Reencode:        reencode,
			EncodeOnce:      encodeOnce,
			Revalidate:      revalidate,
			Traced:          traced,
			AllocRatio:      allocRatio,
			P95Ratio:        p95Ratio,
			TraceAllocDelta: traceAllocDelta,
			RenderHits:      hits,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding hotpath snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("hotpath bench snapshot written to %s", benchOut)
	}
	if minAllocRatio >= 0 {
		if allocRatio < minAllocRatio {
			log.Printf("FAIL: allocs/op ratio %.2f below -min-hotpath-alloc-ratio %.2f",
				allocRatio, minAllocRatio)
			os.Exit(1)
		}
		if encodeOnce.P95Ms > reencode.P95Ms {
			log.Printf("FAIL: encode-once p95 %.3fms exceeds re-encode baseline %.3fms",
				encodeOnce.P95Ms, reencode.P95Ms)
			os.Exit(1)
		}
	}
	if maxTraceAllocs >= 0 && traceAllocDelta > maxTraceAllocs {
		log.Printf("FAIL: sampled-out tracing adds %.2f allocs/op, above -max-trace-allocs %.2f",
			traceAllocDelta, maxTraceAllocs)
		os.Exit(1)
	}
}
