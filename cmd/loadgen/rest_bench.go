// REST backend A/B benchmark (-backend-ab): the transport/encoding
// comparison behind the -backend flag. One small simulated cluster is built
// and frozen (the clock never advances), then the same query mix runs three
// ways against it:
//
//   - cli:       the typed CLI client — format flags in, fixed-width text
//     out, parsed row by row (the shell-out path, minus the shell);
//   - rest_cold: the slurmrestd-style JSON API with client revalidation
//     off — the daemon builds wire structs and marshals, the typed client
//     decodes the full body every time (the worst-case fill);
//   - rest:      the client as the dashboard runs it — If-None-Match
//     revalidation on, so unchanged responses come back 304 and the
//     previously decoded envelope is reused. The server still executes the
//     full build+marshal fill each request (its rendered cache is disabled,
//     Options.CacheTTL 0); only the client's redundant decode is skipped.
//
// The rest side is the gated one (-max-rest-p95-ratio): it is the fill
// path of a REST-backed dashboard in steady state, where most refreshes
// find the data unchanged. rest_cold is reported (and optionally gated via
// -max-rest-cold-p95-ratio) to keep the raw decode-JSON vs parse-text cost
// visible — JSON decoding a bulk response costs more than parsing the
// CLI's text, which is exactly why the client revalidates.
//
// Before timing, each op's rows are compared DeepEqual across backends; a
// mismatch fails the run, because a faster backend returning different
// data is not an optimization.
//
// The same run probes the token-scope matrix with real tokens from the
// workload provisioner: a user token must see other users' records redacted
// (and its own in full), a service token must get 403 on jobs/accounting,
// a user token 403 on diag, and a staff token nothing redacted. Any
// violation fails the run — the zero-violation gate `make bench-rest` relies
// on. The latency gate is -max-rest-p95-ratio over the pooled request mix.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
	"ooddash/internal/workload"
)

// abSide is one backend's measurements for one op.
type abSide struct {
	Requests    int     `json:"requests"`
	Rows        int     `json:"rows"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// abOpReport groups the sides for one op.
type abOpReport struct {
	CLI          abSide  `json:"cli_parse_text"`
	RESTCold     abSide  `json:"rest_cold_decode_json"`
	REST         abSide  `json:"rest_revalidate"`
	P95RatioCold float64 `json:"p95_ratio_rest_cold_vs_cli"`
	P95Ratio     float64 `json:"p95_ratio_rest_vs_cli"`
}

// scopeReport summarizes the token-scope probes.
type scopeReport struct {
	Checks     int      `json:"checks"`
	Violations int      `json:"violations"`
	Detail     []string `json:"violations_detail,omitempty"`
}

// restReport is the BENCH_rest.json snapshot.
type restReport struct {
	Kind               string                `json:"kind"` // "rest_ab"
	GeneratedAt        time.Time             `json:"generated_at"`
	RoundsPerOp        int                   `json:"rounds_per_op"`
	Ops                map[string]abOpReport `json:"ops"`
	PooledP95RatioCold float64               `json:"pooled_p95_ratio_rest_cold_vs_cli"`
	PooledP95Ratio     float64               `json:"pooled_p95_ratio_rest_vs_cli"`
	ScopeProbes        scopeReport           `json:"scope_probes"`
}

// abOp is one query of the mix, with both implementations returning the
// comparable row slice. The rest side takes the client so the harness can
// run it once cold (revalidation off) and once as the dashboard would.
type abOp struct {
	name string
	cli  func() (any, error)
	rest func(c *slurmrest.Client) (any, error)
}

// timeSide runs fn rounds times and reports latency percentiles and exact
// allocs/op for that side of the A/B; the latencies also feed the pooled
// gate.
func timeSide(name, side string, fn func() (any, error), rounds int, pool *[]time.Duration) (abSide, error) {
	lats := make([]time.Duration, 0, rounds)
	rows := 0
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	start := time.Now()
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		out, err := fn()
		lats = append(lats, time.Since(t0))
		if err != nil {
			return abSide{}, fmt.Errorf("%s/%s: %w", name, side, err)
		}
		rows = reflect.ValueOf(out).Len()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	*pool = append(*pool, lats...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return abSide{
		Requests:    rounds,
		Rows:        rows,
		P50Ms:       ms100(percentile(lats, 0.50)),
		P95Ms:       ms100(percentile(lats, 0.95)),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(rounds),
		AllocsPerOp: float64(ms.Mallocs-mallocs) / float64(rounds),
	}, nil
}

// restGet performs one authenticated request against the in-process REST
// daemon and decodes the body into out (which may be nil for status-only
// probes).
func restGet(h http.Handler, token, path string, out any) int {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("Authorization", "Bearer "+token)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			log.Fatalf("rest A/B: decoding %s: %v", path, err)
		}
	}
	return rec.Code
}

// runScopeProbes exercises the token-scope matrix with the provisioned
// tokens and returns one violation string per broken rule.
func runScopeProbes(env *workload.Env) scopeReport {
	rep := scopeReport{}
	check := func(violated bool, format string, args ...any) {
		rep.Checks++
		if violated {
			rep.Violations++
			rep.Detail = append(rep.Detail, fmt.Sprintf(format, args...))
		}
	}

	me := env.UserNames[0]
	userTok := env.RESTTokens.ByUser[me]

	// A user token sees its own records in full and everyone else's
	// redacted — on the live queue and in accounting.
	var jobs slurmrest.JobsResponse
	check(restGet(env.REST, userTok, "/slurm/v1/jobs?all_states=true", &jobs) != http.StatusOK,
		"user token: jobs status != 200")
	for _, j := range jobs.Jobs {
		if j.User == me {
			check(j.Redacted, "user token: own job %s redacted", j.JobID)
		} else {
			check(!j.Redacted || j.Name != "",
				"user token: job %s of %s not redacted", j.JobID, j.User)
		}
	}
	var acct slurmrest.AccountingResponse
	check(restGet(env.REST, userTok, "/slurm/v1/accounting?limit=500", &acct) != http.StatusOK,
		"user token: accounting status != 200")
	for _, j := range acct.Jobs {
		if j.User == me {
			check(j.Redacted, "user token: own accounting job %s redacted", j.JobID)
		} else {
			check(!j.Redacted || j.Name != "" || j.WorkDir != "",
				"user token: accounting job %s of %s not redacted", j.JobID, j.User)
		}
	}

	// A service token reads infrastructure endpoints but never job data.
	svc := env.RESTTokens.Service
	check(restGet(env.REST, svc, "/slurm/v1/jobs", nil) != http.StatusForbidden,
		"service token: jobs not 403")
	check(restGet(env.REST, svc, "/slurm/v1/accounting", nil) != http.StatusForbidden,
		"service token: accounting not 403")
	check(restGet(env.REST, svc, "/slurm/v1/nodes", nil) != http.StatusOK,
		"service token: nodes not 200")
	check(restGet(env.REST, svc, "/slurm/v1/diag", nil) != http.StatusOK,
		"service token: diag not 200")

	// Users never see scheduler diagnostics; staff sees everything in full.
	check(restGet(env.REST, userTok, "/slurm/v1/diag", nil) != http.StatusForbidden,
		"user token: diag not 403")
	var staffJobs slurmrest.JobsResponse
	check(restGet(env.REST, env.RESTTokens.Dashboard, "/slurm/v1/jobs?all_states=true", &staffJobs) != http.StatusOK,
		"staff token: jobs status != 200")
	for _, j := range staffJobs.Jobs {
		check(j.Redacted, "staff token: job %s redacted", j.JobID)
	}

	// No token at all is a 401, not a quiet empty result.
	check(restGet(env.REST, "", "/slurm/v1/jobs", nil) != http.StatusUnauthorized,
		"anonymous: jobs not 401")
	return rep
}

// pooledRatio sorts both pools and returns their p95 ratio.
func pooledRatio(num, den []time.Duration) float64 {
	sort.Slice(num, func(i, j int) bool { return num[i] < num[j] })
	sort.Slice(den, func(i, j int) bool { return den[i] < den[j] })
	d := percentile(den, 0.95)
	if d == 0 {
		return 0
	}
	return float64(percentile(num, 0.95)) / float64(d)
}

// runRESTBench builds the stack, verifies row equivalence, times the
// backends over the same mix, runs the scope probes, writes BENCH_rest.json,
// and applies the p95-ratio and zero-violation gates.
func runRESTBench(rounds int, benchOut string, maxP95Ratio, maxColdRatio float64) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("rest A/B: workload: %v", err)
	}
	// CacheTTL 0 disables the daemon's rendered cache: every REST request
	// below executes the full server-side fill, matching the CLI side's
	// per-call re-format; only client revalidation separates the REST sides.
	if err := env.ProvisionREST(slurmrest.Options{}); err != nil {
		log.Fatalf("rest A/B: provisioning REST: %v", err)
	}
	runner := env.Runner
	steady := slurmrest.NewClient(env.REST, env.RESTTokens.Dashboard)
	cold := slurmrest.NewClient(env.REST, env.RESTTokens.Dashboard)
	cold.NoConditional = true
	ctx := context.Background()
	now := env.Clock.Now()
	window := slurmcli.SacctOptions{AllUsers: true, Start: now.Add(-24 * time.Hour), End: now}

	ops := []abOp{
		{
			name: "jobs",
			cli:  func() (any, error) { return slurmcli.Squeue(runner, slurmcli.SqueueOptions{AllStates: true}) },
			rest: func(c *slurmrest.Client) (any, error) { return c.Squeue(ctx, slurmcli.SqueueOptions{AllStates: true}) },
		},
		{
			name: "accounting",
			cli:  func() (any, error) { return slurmcli.Sacct(runner, window) },
			rest: func(c *slurmrest.Client) (any, error) { return c.Sacct(ctx, window) },
		},
		{
			name: "partitions",
			cli:  func() (any, error) { return slurmcli.Sinfo(runner) },
			rest: func(c *slurmrest.Client) (any, error) { return c.Sinfo(ctx) },
		},
		{
			name: "nodes",
			cli:  func() (any, error) { return slurmcli.ShowAllNodes(runner) },
			rest: func(c *slurmrest.Client) (any, error) { return c.ShowAllNodes(ctx) },
		},
	}

	// Equivalence first: a backend swap that changes row values would make
	// the timing comparison meaningless. Running it through the steady
	// client also warms its revalidation cache, so its timed phase below is
	// the 304 path from the first request. The second steady call checks
	// that revalidated rows are still equal, not just the fresh decode.
	for _, op := range ops {
		c, err := op.cli()
		if err != nil {
			log.Fatalf("rest A/B: %s/cli: %v", op.name, err)
		}
		for _, pass := range []string{"fresh", "revalidated"} {
			r, err := op.rest(steady)
			if err != nil {
				log.Fatalf("rest A/B: %s/rest (%s): %v", op.name, pass, err)
			}
			if !reflect.DeepEqual(c, r) {
				log.Fatalf("rest A/B: %s: CLI and REST (%s) rows differ", op.name, pass)
			}
		}
	}
	log.Printf("rest A/B: row equivalence verified across %d ops; %d rounds per op per side", len(ops), rounds)

	var cliPool, coldPool, steadyPool []time.Duration
	opReports := make(map[string]abOpReport, len(ops))
	fmt.Printf("\n%-12s %-10s %8s %6s %10s %10s %12s %12s\n",
		"op", "side", "requests", "rows", "p50(ms)", "p95(ms)", "ns/op", "allocs/op")
	for _, op := range ops {
		cliS, err := timeSide(op.name, "cli", op.cli, rounds, &cliPool)
		if err != nil {
			log.Fatalf("rest A/B: %v", err)
		}
		coldS, err := timeSide(op.name, "rest_cold", func() (any, error) { return op.rest(cold) }, rounds, &coldPool)
		if err != nil {
			log.Fatalf("rest A/B: %v", err)
		}
		steadyS, err := timeSide(op.name, "rest", func() (any, error) { return op.rest(steady) }, rounds, &steadyPool)
		if err != nil {
			log.Fatalf("rest A/B: %v", err)
		}
		rep := abOpReport{CLI: cliS, RESTCold: coldS, REST: steadyS}
		if cliS.P95Ms > 0 {
			rep.P95RatioCold = coldS.P95Ms / cliS.P95Ms
			rep.P95Ratio = steadyS.P95Ms / cliS.P95Ms
		}
		opReports[op.name] = rep
		for _, row := range []struct {
			side string
			s    abSide
		}{{"cli", cliS}, {"rest_cold", coldS}, {"rest", steadyS}} {
			fmt.Printf("%-12s %-10s %8d %6d %10.3f %10.3f %12.0f %12.1f\n",
				op.name, row.side, row.s.Requests, row.s.Rows, row.s.P50Ms, row.s.P95Ms, row.s.NsPerOp, row.s.AllocsPerOp)
		}
	}

	pooledCold := pooledRatio(coldPool, cliPool)
	pooled := pooledRatio(steadyPool, cliPool)
	fmt.Printf("\npooled p95 ratio (rest_cold / cli): %.2fx\n", pooledCold)
	fmt.Printf("pooled p95 ratio (rest / cli):      %.2fx\n", pooled)

	probes := runScopeProbes(env)
	fmt.Printf("scope probes: %d checks, %d violations\n", probes.Checks, probes.Violations)
	for _, d := range probes.Detail {
		fmt.Printf("  VIOLATION: %s\n", d)
	}

	if benchOut != "" {
		rep := restReport{
			Kind:               "rest_ab",
			GeneratedAt:        time.Now().UTC(),
			RoundsPerOp:        rounds,
			Ops:                opReports,
			PooledP95RatioCold: pooledCold,
			PooledP95Ratio:     pooled,
			ScopeProbes:        probes,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding rest A/B snapshot: %v", err)
		}
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", benchOut, err)
		}
		log.Printf("rest A/B snapshot written to %s", benchOut)
	}

	if probes.Violations > 0 {
		log.Printf("FAIL: %d token-scope violations", probes.Violations)
		os.Exit(1)
	}
	if maxP95Ratio >= 0 && pooled > maxP95Ratio {
		log.Printf("FAIL: pooled REST p95 is %.2fx the CLI p95, above -max-rest-p95-ratio %.2f",
			pooled, maxP95Ratio)
		os.Exit(1)
	}
	if maxColdRatio >= 0 && pooledCold > maxColdRatio {
		log.Printf("FAIL: pooled cold REST p95 is %.2fx the CLI p95, above -max-rest-cold-p95-ratio %.2f",
			pooledCold, maxColdRatio)
		os.Exit(1)
	}
}
