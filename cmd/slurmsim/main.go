// Command slurmsim builds a simulated cluster with a replayed workload and
// runs Slurm query commands against it — a REPL-free way to poke at the
// substrate the dashboard sits on.
//
// Usage:
//
//	slurmsim [-small] [-seed 42] <command> [args...]
//
// where <command> is any emulated Slurm command, e.g.:
//
//	slurmsim squeue -u user001
//	slurmsim sinfo
//	slurmsim sacct -u user001 --format JobID,JobName,State,Elapsed
//	slurmsim scontrol show node a001
//	slurmsim -small scontrol show partition
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ooddash/internal/workload"
)

func main() {
	var (
		small = flag.Bool("small", false, "use the small workload (fast startup)")
		seed  = flag.Int64("seed", 42, "workload generator seed")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: slurmsim [-small] [-seed N] <squeue|sinfo|sacct|scontrol|scancel> [args...]")
		os.Exit(2)
	}

	spec := workload.DefaultSpec()
	if *small {
		spec = workload.SmallSpec()
	}
	spec.Seed = *seed
	env, err := workload.Build(spec)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	out, err := env.Runner.Run(args[0], args[1:]...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
