// Command benchharness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results): Table 1's feature/data-source matrix with measured
// route latencies, the Figure 1 data-flow funnel, the Figure 2 homepage
// load, the Figure 3 My Jobs page, the Figure 4a-d apps, and the §2.4
// caching/privacy claims with their ablations.
//
// Usage:
//
//	benchharness [-small] [-seed 42] [-experiment all|table1|figure1|figure2|
//	              figure3|figure4a|figure4b|figure4c|figure4d|cacheload|
//	              ttlsweep|singleflight|privacy|monitoring|preemption|
//	              insightscov]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"ooddash/internal/experiments"
	"ooddash/internal/workload"
)

func main() {
	var (
		small = flag.Bool("small", false, "use the small workload (fast run)")
		seed  = flag.Int64("seed", 42, "workload generator seed")
		which = flag.String("experiment", "all", "experiment to run")
	)
	flag.Parse()

	spec := workload.DefaultSpec()
	if *small {
		spec = workload.SmallSpec()
	}
	spec.Seed = *seed

	log.Printf("building workload (seed %d)...", spec.Seed)
	start := time.Now()
	stack, err := experiments.NewStack(spec)
	if err != nil {
		log.Fatalf("stack: %v", err)
	}
	defer stack.Close()
	log.Printf("stack ready in %v: %d accounting records, %d live jobs, %d nodes",
		time.Since(start).Round(time.Millisecond),
		stack.Env.Cluster.DBD.JobCount(),
		stack.Env.Cluster.Ctl.ActiveJobCount(),
		len(stack.Env.Cluster.Ctl.Nodes()))

	run := func(name string, fn func(*experiments.Stack) error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("\n================ %s ================\n", name)
		if err := fn(stack); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table1", runTable1)
	run("figure1", runFigure1)
	run("figure2", runFigure2)
	run("figure3", runFigure3)
	run("figure4a", runFigure4a)
	if *which == "all" || *which == "figure4b" {
		fmt.Printf("\n================ figure4b ================\n")
		if err := runFigure4b(*small, *seed); err != nil {
			log.Fatalf("figure4b: %v", err)
		}
	}
	run("figure4c", runFigure4c)
	run("figure4d", runFigure4d)
	run("cacheload", runCacheLoad)
	run("ttlsweep", runTTLSweep)
	run("singleflight", runSingleflight)
	run("privacy", runPrivacy)
	run("monitoring", runMonitoring)
	if *which == "all" || *which == "preemption" {
		fmt.Printf("\n================ preemption ================\n")
		if err := runPreemption(); err != nil {
			log.Fatalf("preemption: %v", err)
		}
	}
	run("insightscov", runInsightsCoverage)
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

func runTable1(s *experiments.Stack) error {
	fmt.Println("Table 1: dashboard features, data sources, and measured route latency")
	rows, err := experiments.Table1(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "Feature\tData Source(s)\tcold\tcached\tspeedup\tbytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1fx\t%d\n",
			r.Feature, r.DataSource, ms(r.Cold), ms(r.Warm), r.Speedup(), r.Bytes)
	}
	w.Flush()

	verified, err := experiments.VerifyTable1Sources(s)
	if err != nil {
		return err
	}
	fmt.Println("\ndata-source verification (route drives its stated Slurm RPC):")
	w = table()
	for feature, ok := range verified {
		mark := "FAIL"
		if ok {
			mark = "ok"
		}
		fmt.Fprintf(w, "  %s\t%s\n", feature, mark)
	}
	w.Flush()
	return nil
}

func runFigure1(s *experiments.Stack) error {
	fmt.Println("Figure 1: data flow — requests absorbed per layer (50 users x 8 loads)")
	res, err := experiments.Figure1DataFlow(s, 50, 8)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "widget views (browser)\t%d\n", res.WidgetViews)
	fmt.Fprintf(w, "  served by client cache (fresh)\t%d\n", res.ClientFresh)
	fmt.Fprintf(w, "  instant stale paint + refresh\t%d\n", res.ClientStale)
	fmt.Fprintf(w, "requests reaching backend\t%d\n", res.NetworkCalls)
	fmt.Fprintf(w, "  served by server cache (hits)\t%d\n", res.ServerHits)
	fmt.Fprintf(w, "  cache misses (compute)\t%d\n", res.ServerMisses)
	fmt.Fprintf(w, "queries reaching slurmctld\t%d\n", res.CtlRPCs)
	fmt.Fprintf(w, "queries reaching slurmdbd\t%d\n", res.DBDRPCs)
	fmt.Fprintf(w, "news API requests\t%d\n", res.NewsRequests)
	w.Flush()
	fmt.Printf("funnel: %d views -> %d backend -> %d slurmctld (%.1f%% of views)\n",
		res.WidgetViews, res.NetworkCalls, res.CtlRPCs,
		100*float64(res.CtlRPCs)/float64(res.WidgetViews))
	return nil
}

func runFigure2(s *experiments.Stack) error {
	fmt.Println("Figure 2: homepage — time to full render across cache regimes")
	res, err := experiments.Figure2Homepage(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "regime\tnetwork fetches\tnetwork time\tinstant paints")
	fmt.Fprintf(w, "first visit (all cold)\t%d\t%s\t0\n", res.ColdFetches, ms(res.ColdLatency))
	fmt.Fprintf(w, "new browser, warm server cache\t%d\t%s\t0\n", res.ColdFetches, ms(res.ServerWarmLat))
	fmt.Fprintf(w, "revisit, warm client cache\t%d\t%s\t%d\n", res.WarmFetches, ms(res.WarmLatency), res.WarmInstant)
	w.Flush()
	return nil
}

func runFigure3(s *experiments.Stack) error {
	fmt.Println("Figure 3: My Jobs — table and charts for one group member")
	res, err := experiments.Figure3MyJobs(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "viewer\t%s\n", res.User)
	fmt.Fprintf(w, "table rows (user + group, 7d)\t%d\n", res.Rows)
	fmt.Fprintf(w, "distinct users in table\t%d\n", res.UsersInTable)
	fmt.Fprintf(w, "rows with efficiency data\t%d\n", res.WithEffData)
	fmt.Fprintf(w, "rows with efficiency warnings\t%d\n", res.WithWarnings)
	fmt.Fprintf(w, "users in GPU-hours chart\t%d\n", res.GPUHourUsers)
	fmt.Fprintf(w, "table latency (cold)\t%s\n", ms(res.TableLatency))
	fmt.Fprintf(w, "charts latency\t%s\n", ms(res.ChartsLatency))
	w.Flush()
	states := make([]string, 0, len(res.States))
	for st, n := range res.States {
		states = append(states, fmt.Sprintf("%s:%d", st, n))
	}
	fmt.Printf("state distribution: %s\n", strings.Join(states, " "))
	return nil
}

func runFigure4a(s *experiments.Stack) error {
	fmt.Println("Figure 4a: Job Performance Metrics across time ranges")
	rows, err := experiments.Figure4aJobPerf(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "range\tjobs\tavg wait\tmean duration\ttotal wall\tavg cpu eff\tavg mem eff\tlatency")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%.1f%%\t%.1f%%\t%s\n",
			r.Range, r.TotalJobs,
			(time.Duration(r.AvgWaitSecs) * time.Second).Round(time.Second),
			(time.Duration(r.MeanDurSecs) * time.Second).Round(time.Second),
			(time.Duration(r.TotalWallSec) * time.Second).Round(time.Minute),
			r.AvgCPUEff, r.AvgMemEff, ms(r.Latency))
	}
	w.Flush()
	return nil
}

func runFigure4b(small bool, seed int64) error {
	fmt.Println("Figure 4b: Cluster Status — node-count sweep (cold vs cached route latency)")
	counts := []int{128, 512, 1024, 2048, 4096}
	if small {
		counts = []int{32, 128, 512}
	}
	rows, err := experiments.Figure4bClusterStatus(counts, seed)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "nodes\tcold\tcached\tpayload bytes\tcolor mix")
	for _, r := range rows {
		colors := make([]string, 0, len(r.StateColors))
		for c, n := range r.StateColors {
			colors = append(colors, fmt.Sprintf("%s:%d", c, n))
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%s\n",
			r.Nodes, ms(r.ColdLatency), ms(r.WarmLatency), r.Bytes, strings.Join(colors, " "))
	}
	w.Flush()
	return nil
}

func runFigure4c(s *experiments.Stack) error {
	fmt.Println("Figure 4c: Node Overview — busiest node")
	res, err := experiments.Figure4cNodeOverview(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "node\t%s (%s)\n", res.Node, res.State)
	fmt.Fprintf(w, "cpu usage\t%.1f%%\n", res.CPUPercent)
	fmt.Fprintf(w, "mem usage\t%.1f%%\n", res.MemPercent)
	fmt.Fprintf(w, "running jobs\t%d\n", res.RunningJobs)
	fmt.Fprintf(w, "detail card latency\t%s\n", ms(res.DetailLat))
	fmt.Fprintf(w, "jobs tab latency\t%s\n", ms(res.JobsLat))
	w.Flush()
	return nil
}

func runFigure4d(s *experiments.Stack) error {
	fmt.Println("Figure 4d: Job Overview — tabs, 50k-line log, 100-task array")
	res, err := experiments.Figure4dJobOverview(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "job\t%s\n", res.JobID)
	fmt.Fprintf(w, "timeline milestones done\t%d/4\n", res.TimelineDone)
	fmt.Fprintf(w, "overview latency\t%s\n", ms(res.OverviewLat))
	fmt.Fprintf(w, "log lines (total/shown)\t%d/%d (truncated=%v)\n",
		res.LogTotalLines, res.LogShownLines, res.LogTruncated)
	fmt.Fprintf(w, "log tab latency\t%s\n", ms(res.LogLat))
	fmt.Fprintf(w, "array tasks\t%d\n", res.ArrayTasks)
	fmt.Fprintf(w, "array tab latency\t%s\n", ms(res.ArrayLat))
	w.Flush()
	return nil
}

func runCacheLoad(s *experiments.Stack) error {
	fmt.Println("§2.4: slurmctld load and route latency vs concurrent users (5 req/user)")
	users := []int{1, 10, 50, 100, 200}
	on, err := experiments.Section24CacheLoad(s, users, 5, true)
	if err != nil {
		return err
	}
	off, err := experiments.Section24CacheLoad(s, users, 5, false)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "users\tcache\trequests\tctl RPCs\tRPCs/req\tp50\tp99")
	for _, rows := range [][]experiments.CacheLoadRow{on, off} {
		for _, r := range rows {
			mode := "off"
			if r.CacheOn {
				mode = "on"
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.3f\t%s\t%s\n",
				r.Users, mode, r.Requests, r.CtlRPCs, r.RPCsPerReq, ms(r.P50), ms(r.P99))
		}
	}
	w.Flush()
	return nil
}

func runTTLSweep(s *experiments.Stack) error {
	fmt.Println("§2.4 ablation: recent-jobs TTL sweep (10 simulated minutes, request every 5s)")
	rows, err := experiments.Section24TTLSweep(s, []time.Duration{
		time.Second, 5 * time.Second, 15 * time.Second, 30 * time.Second,
		time.Minute, 5 * time.Minute,
	})
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "TTL\tsqueue RPCs\tworst-case staleness")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%v\n", r.TTL, r.CtlRPCs, r.MaxStaleness)
	}
	w.Flush()
	return nil
}

func runSingleflight(s *experiments.Stack) error {
	fmt.Println("§2.4 ablation: synchronized 64-request burst, miss collapsing on/off")
	rows, err := experiments.Section24Singleflight(s, 64)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "collapsing\tburst\tsinfo RPCs")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%d\t%d\n", r.Collapsing, r.Burst, r.CtlRPCs)
	}
	w.Flush()
	return nil
}

func runPrivacy(s *experiments.Stack) error {
	fmt.Println("§2.4: privacy access matrix (every user probes recent jobs and logs)")
	res, err := experiments.Section24Privacy(s, 12)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "probes\t%d\n", res.Probes)
	fmt.Fprintf(w, "owner views allowed\t%d\n", res.OwnerAllowed)
	fmt.Fprintf(w, "group views allowed\t%d\n", res.GroupAllowed)
	fmt.Fprintf(w, "outsider views denied\t%d\n", res.OutsiderDenied)
	fmt.Fprintf(w, "log views allowed (owner)\t%d\n", res.LogOwnerAllowed)
	fmt.Fprintf(w, "log views denied (others)\t%d\n", res.LogOthersDenied)
	fmt.Fprintf(w, "violations\t%d\n", len(res.Violations))
	fmt.Fprintf(w, "mean checked-route latency\t%s\n", ms(res.FilterLatency))
	w.Flush()
	for _, v := range res.Violations {
		fmt.Println("VIOLATION:", v)
	}
	return nil
}

func runMonitoring(s *experiments.Stack) error {
	fmt.Println("§9 extension: real-time monitoring — delta event feed vs squeue polling")
	fmt.Println("(10 users watching their jobs for 10 simulated minutes, poll every 5s)")
	rows, err := experiments.ExtensionEventsVsPolling(s, 10, 10*time.Minute)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "mechanism\tpolls\tctl RPCs\tbytes moved\tupdates delivered")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", r.Mechanism, r.Polls, r.CtlRPCs, r.Bytes, r.Updates)
	}
	w.Flush()
	return nil
}

func runPreemption() error {
	fmt.Println("§9 extension: preemptible standby tier — urgent-job turnaround")
	res, err := experiments.ExtensionPreemption()
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "urgent-job wait with preemptible standby\t%v\n", res.WithPreemption)
	fmt.Fprintf(w, "urgent-job wait without (normal jobs)\t%v\n", res.WithoutPreemption)
	fmt.Fprintf(w, "standby jobs requeued\t%d\n", res.RequeuedJobs)
	w.Flush()
	return nil
}

func runInsightsCoverage(s *experiments.Stack) error {
	fmt.Println("§9 extension: insights analyzer coverage across the population")
	cov, err := experiments.ExtensionInsightsCoverage(s)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintf(w, "users analyzed\t%d\n", cov.UsersAnalyzed)
	fmt.Fprintf(w, "users with findings\t%d\n", cov.UsersWithFinding)
	w.Flush()
	fmt.Println("findings by kind:")
	w = table()
	kinds := make([]string, 0, len(cov.FindingsByKind))
	for k := range cov.FindingsByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %s\t%d\n", k, cov.FindingsByKind[k])
	}
	w.Flush()
	return nil
}
