// Command dashboard runs the full stack: a simulated Slurm cluster with a
// continuously evolving workload, the news feed, the storage database, and
// the Open OnDemand-style dashboard web server on top.
//
// Usage:
//
//	dashboard [-addr :8080] [-small] [-seed 42] [-warp 60]
//
// Open http://localhost:8080/ with an X-Remote-User header (any generated
// user, e.g. user001) to browse the dashboard; the JSON API lives under
// /api/. The -warp factor compresses simulated time: with -warp 60, one
// wall-clock second advances the cluster by a minute, so job churn is
// visible while you watch.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ooddash/internal/workload"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "dashboard listen address")
		small = flag.Bool("small", false, "use the small workload (fast startup)")
		seed  = flag.Int64("seed", 42, "workload generator seed")
		warp  = flag.Duration("warp", time.Minute, "simulated time advanced per wall-clock second")
	)
	flag.Parse()

	spec := workload.DefaultSpec()
	if *small {
		spec = workload.SmallSpec()
	}
	spec.Seed = *seed

	log.Printf("building workload (seed %d)...", spec.Seed)
	start := time.Now()
	env, err := workload.Build(spec)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	log.Printf("workload ready in %v: %d accounting records, %d live jobs",
		time.Since(start).Round(time.Millisecond),
		env.Cluster.DBD.JobCount(), env.Cluster.Ctl.ActiveJobCount())

	// News feed on its own listener, as a separate service (Figure 1).
	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("news listener: %v", err)
	}
	newsURL := fmt.Sprintf("http://%s/", newsLn.Addr())
	go func() {
		if err := http.Serve(newsLn, env.Feed); err != nil {
			log.Printf("news server: %v", err)
		}
	}()
	log.Printf("news API at %s", newsURL)

	server, err := env.NewServer(newsURL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	// Drive the cluster forward in (warped) real time with fresh traffic.
	go func() {
		rng := rand.New(rand.NewSource(spec.Seed + 1))
		perSec := float64(spec.JobsPerDay) / (24 * 3600) * (*warp).Seconds()
		for range time.Tick(time.Second) {
			env.Clock.Advance(*warp)
			n := int(perSec)
			if rng.Float64() < perSec-float64(n) {
				n++
			}
			env.SubmitRandom(rng, n)
		}
	}()

	log.Printf("dashboard listening on %s (users %s..%s; send X-Remote-User)",
		*addr, env.UserNames[0], env.UserNames[len(env.UserNames)-1])
	srv := &http.Server{Addr: *addr, Handler: server}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dashboard: %v", err)
	}
}
