// Command dashboard runs the full stack: a simulated Slurm cluster with a
// continuously evolving workload, the news feed, the storage database, and
// the Open OnDemand-style dashboard web server on top.
//
// Usage:
//
//	dashboard [-addr :8080] [-small] [-seed 42] [-warp 60]
//	          [-backend cli|rest|slurmctld=rest,slurmdbd=cli]
//	          [-replicas 3] [-lb-policy round_robin|least_conn|sticky]
//	          [-no-push] [-push-interval 1s] [-push-heartbeat 15s]
//	          [-trace-sample 1] [-trace-slow-ms 500] [-trace-store-max 256]
//	          [-fault-cmd squeue] [-fault-rate 0.2] [-fault-outage]
//	          [-fault-latency 300ms] [-fault-jitter 200ms]
//	          [-fault-burst-len 3 -fault-burst-every 10]
//	          [-fault-after 30s] [-fault-seed 1]
//
// Open http://localhost:8080/ with an X-Remote-User header (any generated
// user, e.g. user001) to browse the dashboard; the JSON API lives under
// /api/. The -warp factor compresses simulated time: with -warp 60, one
// wall-clock second advances the cluster by a minute, so job churn is
// visible while you watch.
//
// -backend selects the Slurm data path per source daemon: "cli" (default)
// shells out through the simulated command runner; "rest" goes through the
// in-process slurmrestd-style JSON API with a scoped staff token. A mixed
// spelling like "slurmctld=rest,slurmdbd=cli" migrates one source at a time.
//
// -replicas N (N > 1) turns on the scale-out fleet tier: N in-process
// dashboard replicas behind a simulated load balancer (-lb-policy), with
// widget-refresh ownership partitioned across replicas by consistent hash
// and rendered snapshots propagated replica to replica, so upstream Slurm
// load stays O(sources) instead of O(sources × replicas). With -ops-addr
// set, the fleet's own metrics are exposed at /metrics/fleet there.
//
// The -fault-* flags arm the fault-injection layer for live failure drills:
// -fault-cmd picks the Slurm command to sabotage ("*" for all), and the
// remaining flags shape the fault (added latency, transient error rate,
// deterministic bursts, or a full outage). -fault-after delays arming so the
// fault lands mid-run against warm caches — watch widgets flip to degraded
// (stale) mode on /api/admin/health and /metrics, or measure it with
// cmd/loadgen.
//
// -ops-addr starts a second, operators-only listener carrying net/http/pprof
// (bind it to localhost — it is deliberately kept off the user-facing mux so
// profiling endpoints never share a port with proxied user traffic).
// -access-log enables one structured line per API request, each carrying the
// request's trace ID — the same ID returned to clients in X-OODDash-Trace —
// so a slow reload reported by a user can be joined against server logs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
	"ooddash/internal/fleet"
	"ooddash/internal/slo"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// parseBackend turns the -backend flag into a per-source BackendConfig.
// Accepts a bare mode ("cli", "rest") applied to both daemons, or a
// comma-separated list of source=mode pairs ("slurmctld=rest,slurmdbd=cli").
func parseBackend(s string) (core.BackendConfig, error) {
	var bc core.BackendConfig
	s = strings.TrimSpace(s)
	if s == "" {
		return bc, nil
	}
	if !strings.Contains(s, "=") {
		bc.Slurmctld, bc.Slurmdbd = s, s
		return bc, nil
	}
	for _, part := range strings.Split(s, ",") {
		source, mode, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return bc, fmt.Errorf("malformed %q (want source=mode)", part)
		}
		switch source {
		case "slurmctld":
			bc.Slurmctld = mode
		case "slurmdbd":
			bc.Slurmdbd = mode
		default:
			return bc, fmt.Errorf("unknown source %q (want slurmctld or slurmdbd)", source)
		}
	}
	return bc, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "dashboard listen address")
		opsAddr   = flag.String("ops-addr", "", "ops-only listen address for pprof (e.g. 127.0.0.1:6060; empty disables)")
		accessLog = flag.Bool("access-log", false, "log one line per API request (includes the trace ID)")
		small     = flag.Bool("small", false, "use the small workload (fast startup)")
		seed      = flag.Int64("seed", 42, "workload generator seed")
		warp      = flag.Duration("warp", time.Minute, "simulated time advanced per wall-clock second")

		backendMode = flag.String("backend", "cli",
			`Slurm data path: "cli", "rest", or per source like "slurmctld=rest,slurmdbd=cli"`)

		noPush        = flag.Bool("no-push", false, "disable the live-update push subsystem (/api/events serves only the legacy delta poll)")
		pushInterval  = flag.Duration("push-interval", time.Second, "wall-clock cadence of the background refresh scheduler")
		pushHeartbeat = flag.Duration("push-heartbeat", 15*time.Second, "SSE keep-alive comment interval (0 disables heartbeats)")

		replicas = flag.Int("replicas", 1, "dashboard replicas behind the simulated load balancer (>1 enables the fleet tier)")
		lbPolicy = flag.String("lb-policy", "round_robin", "fleet load-balancing policy: round_robin, least_conn, or sticky")

		sloConfig = flag.String("slo-config", "", "JSON file of SLO objectives (empty = built-in defaults: 99.9% availability, 99% latency under 250ms, 28d budgets)")

		traceSample   = flag.Float64("trace-sample", 1, "head-sampling probability for span tracing (0 disables tracing)")
		traceSlowMS   = flag.Int("trace-slow-ms", 500, "slow-request threshold in milliseconds: slower traces are always retained and logged (0 disables the slow class)")
		traceStoreMax = flag.Int("trace-store-max", 256, "max traces the tail-sampled in-memory store retains")

		faultCmd        = flag.String("fault-cmd", "", `inject faults into this Slurm command ("*" = all; empty disables injection)`)
		faultRate       = flag.Float64("fault-rate", 0, "probability (0..1) a matching call fails")
		faultOutage     = flag.Bool("fault-outage", false, "fail every matching call (full outage)")
		faultLatency    = flag.Duration("fault-latency", 0, "added latency per matching call")
		faultJitter     = flag.Duration("fault-jitter", 0, "extra random latency, uniform in [0, jitter]")
		faultBurstLen   = flag.Int("fault-burst-len", 0, "with -fault-burst-every: first N of every M matching calls fail")
		faultBurstEvery = flag.Int("fault-burst-every", 0, "burst cycle length M")
		faultAfter      = flag.Duration("fault-after", 0, "arm fault injection this long after startup (0 = immediately)")
		faultSeed       = flag.Int64("fault-seed", 1, "fault-injection RNG seed")
	)
	flag.Parse()

	spec := workload.DefaultSpec()
	if *small {
		spec = workload.SmallSpec()
	}
	spec.Seed = *seed

	log.Printf("building workload (seed %d)...", spec.Seed)
	start := time.Now()
	env, err := workload.Build(spec)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	log.Printf("workload ready in %v: %d accounting records, %d live jobs",
		time.Since(start).Round(time.Millisecond),
		env.Cluster.DBD.JobCount(), env.Cluster.Ctl.ActiveJobCount())

	// A staff account for the admin-only observability surface
	// (/api/admin/health, /api/admin/overview, /metrics).
	env.Users.AddUser(auth.User{Name: "staff", FullName: "Center Staff", Admin: true})

	// News feed on its own listener, as a separate service (Figure 1).
	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("news listener: %v", err)
	}
	newsURL := fmt.Sprintf("http://%s/", newsLn.Addr())
	go func() {
		if err := http.Serve(newsLn, env.Feed); err != nil {
			log.Printf("news server: %v", err)
		}
	}()
	log.Printf("news API at %s", newsURL)

	// Fault injection for live failure drills: wrap the runner before the
	// server is built so every route goes through it.
	if *faultCmd != "" {
		cmd := *faultCmd
		if cmd == "*" {
			cmd = "" // FaultRule: empty command matches everything
		}
		rule := slurmcli.FaultRule{
			Command:       cmd,
			Latency:       *faultLatency,
			LatencyJitter: *faultJitter,
			ErrorRate:     *faultRate,
			Outage:        *faultOutage,
			BurstLen:      *faultBurstLen,
			BurstEvery:    *faultBurstEvery,
		}
		fr := slurmcli.NewFaultRunner(env.Runner, *faultSeed, nil)
		env.Runner = fr
		arm := func() {
			fr.SetRules(rule)
			log.Printf("fault injection armed: cmd=%q rate=%g outage=%v latency=%v burst=%d/%d",
				*faultCmd, *faultRate, *faultOutage, *faultLatency, *faultBurstLen, *faultBurstEvery)
		}
		if *faultAfter > 0 {
			log.Printf("fault injection arming in %v", *faultAfter)
			time.AfterFunc(*faultAfter, arm)
		} else {
			arm()
		}
	}

	hb := *pushHeartbeat
	if hb <= 0 {
		hb = -1 // withDefaults: negative disables, zero means default
	}
	// TraceConfig semantics are trace.New's: zero means default, negative
	// disables — so a 0 flag value maps to the explicit "off" sentinel.
	traceCfg := core.TraceConfig{
		Sample:   *traceSample,
		Slow:     time.Duration(*traceSlowMS) * time.Millisecond,
		StoreMax: *traceStoreMax,
	}
	if *traceSample <= 0 {
		traceCfg.Sample = -1
	}
	if *traceSlowMS <= 0 {
		traceCfg.Slow = -1
	}
	backendCfg, err := parseBackend(*backendMode)
	if err != nil {
		log.Fatalf("-backend: %v", err)
	}
	cfg := core.Config{
		Push:    core.PushConfig{Disabled: *noPush, Heartbeat: hb},
		Trace:   traceCfg,
		Backend: backendCfg,
	}
	if *sloConfig != "" {
		data, err := os.ReadFile(*sloConfig)
		if err != nil {
			log.Fatalf("-slo-config: %v", err)
		}
		objectives, err := slo.ParseConfig(data)
		if err != nil {
			log.Fatalf("-slo-config %s: %v", *sloConfig, err)
		}
		cfg.SLO.Objectives = objectives
		log.Printf("SLO objectives loaded from %s (%d objectives)", *sloConfig, len(objectives))
	}

	// handler is what the main listener serves: a single server, or the
	// fleet's load balancer in front of *replicas of them. shutdown closes
	// whichever was built (push subsystem first, so SSE streams get their
	// final "shutdown" event and end before http.Server.Shutdown waits).
	var handler http.Handler
	var shutdown func()
	var fl *fleet.Fleet
	if *replicas > 1 {
		if *noPush {
			log.Fatal("-no-push is incompatible with -replicas > 1: the fleet's cache coherence runs on the push scheduler")
		}
		policy, err := fleet.ParsePolicy(*lbPolicy)
		if err != nil {
			log.Fatalf("-lb-policy: %v", err)
		}
		// Replicas must not pause idle sources: with clients spread over
		// the fleet, a source's subscribers may all sit on peer replicas.
		// The fleet's own idle reaper handles abandonment instead.
		fleetCfg := cfg
		fleetCfg.Push.DisableIdlePause = true
		fl, err = fleet.New(fleet.Options{
			Replicas: *replicas,
			Policy:   policy,
			Clock:    env.Clock,
			Runner:   env.Runner,
			Build: func(id string, r slurmcli.Runner) (*core.Server, error) {
				return env.NewServerRunner(newsURL, fleetCfg, r)
			},
		})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		if *accessLog {
			for _, id := range fl.Replicas() {
				rid := id
				fl.Server(rid).SetAccessLog(func(line string) { log.Printf("[%s] %s", rid, line) })
			}
		}
		fl.Run(*pushInterval)
		handler, shutdown = fl, fl.Close
		log.Printf("fleet tier on: %d replicas, %s balancing, refresh ownership partitioned per source", *replicas, policy)
	} else {
		server, err := env.NewServerConfig(newsURL, cfg)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		if *accessLog {
			server.SetAccessLog(func(line string) { log.Print(line) })
		}
		if !*noPush {
			server.StartPush(*pushInterval)
			log.Printf("push subsystem on: SSE at /api/events, refresh scheduler every %v", *pushInterval)
		}
		handler, shutdown = server, server.Close
	}
	if backendCfg.Slurmctld == core.BackendREST || backendCfg.Slurmdbd == core.BackendREST {
		log.Printf("REST backend on (slurmctld=%s slurmdbd=%s): in-process slurmrestd with scoped tokens",
			backendCfg.Slurmctld, backendCfg.Slurmdbd)
	}

	// Profiling on a dedicated ops mux, never on the user-facing listener:
	// the default mux would expose /debug/pprof to anyone the proxy lets in.
	// The listener is a real http.Server so the drain path can Shutdown it
	// instead of leaving it to die with the process mid-scrape.
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if fl != nil {
			opsMux.HandleFunc("/metrics/fleet", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				_ = fl.Metrics().WritePrometheus(w)
			})
		}
		opsSrv = &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: 5 * time.Second,
			// No blanket ReadTimeout: pprof profile/trace captures hold the
			// response open for their whole -seconds window.
			IdleTimeout: 2 * time.Minute,
		}
		go func() {
			log.Printf("ops (pprof) listening on %s", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("ops server: %v", err)
			}
		}()
	}

	// Drive the cluster forward in (warped) real time with fresh traffic.
	go func() {
		rng := rand.New(rand.NewSource(spec.Seed + 1))
		perSec := float64(spec.JobsPerDay) / (24 * 3600) * (*warp).Seconds()
		for range time.Tick(time.Second) {
			env.Clock.Advance(*warp)
			n := int(perSec)
			if rng.Float64() < perSec-float64(n) {
				n++
			}
			env.SubmitRandom(rng, n)
		}
	}()

	log.Printf("dashboard listening on %s (users %s..%s; send X-Remote-User)",
		*addr, env.UserNames[0], env.UserNames[len(env.UserNames)-1])
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-loris protection on the header phase and idle keep-alive
		// reaping only: no ReadTimeout or WriteTimeout, because /api/events
		// holds SSE responses open indefinitely and either blanket deadline
		// would sever healthy streams.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down...")
		// Close the push subsystem first: streams get a final "shutdown"
		// event and end, so Shutdown is not left waiting on open SSE
		// connections until its deadline.
		shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if opsSrv != nil {
			_ = opsSrv.Shutdown(ctx)
		}
		_ = srv.Shutdown(ctx)
	}()
	// ListenAndServe returns the moment Shutdown begins; wait for the drain
	// to finish, or the process would exit with SSE handlers mid-final-write.
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("dashboard: %v", err)
	}
	<-drained
}
