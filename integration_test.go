package ooddash

// End-to-end smoke test: boot the full stack (simulated cluster, news,
// storage, dashboard) and walk every page, asset, and API route once as a
// regular user and as an admin. Complements the per-package suites by
// verifying the assembled system, the way a deployment health check would.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/experiments"
	"ooddash/internal/slurm"
	"ooddash/internal/workload"
)

func TestEndToEndEveryRoute(t *testing.T) {
	stack, err := experiments.NewStack(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	stack.Env.Users.AddUser(auth.User{Name: "staff", Admin: true})

	sub, err := stack.PickSubjects()
	if err != nil {
		t.Fatal(err)
	}
	logOwner := sub.User
	if j := stack.Env.Cluster.DBD.Job(sub.LogJobID); j != nil {
		logOwner = j.User
	}
	arrayOwner := sub.User
	if j := stack.Env.Cluster.DBD.Job(sub.ArrayJobID); j != nil {
		arrayOwner = j.User
	}

	routes := []struct {
		user string
		path string
	}{
		// Pages.
		{sub.User, "/"},
		{sub.User, "/myjobs"},
		{sub.User, "/jobperf"},
		{sub.User, "/clusterstatus"},
		{sub.User, "/node/" + sub.Node},
		{sub.User, fmt.Sprintf("/job/%d", sub.JobID)},
		{sub.User, "/news"},
		{sub.User, "/insights"},
		// Assets.
		{sub.User, "/assets/dashboard.css"},
		{sub.User, "/assets/cache.js"},
		{sub.User, "/assets/widgets.js"},
		// Widget APIs (Table 1).
		{sub.User, "/api/announcements"},
		{sub.User, "/api/recent_jobs"},
		{sub.User, "/api/system_status"},
		{sub.User, "/api/accounts"},
		{sub.User, "/api/accounts/" + sub.Account + "/export.csv"},
		{sub.User, "/api/storage"},
		{sub.User, "/api/myjobs?range=7d"},
		{sub.User, "/api/myjobs?range=7d&limit=5&offset=5"},
		{sub.User, "/api/myjobs/charts?range=7d"},
		{sub.User, "/api/myjobs/export.csv?range=7d&mine=1"},
		{sub.User, "/api/jobperf?range=all"},
		{sub.User, "/api/cluster_status?search=cpu&sort=cpu_load&order=desc"},
		{sub.User, "/api/node/" + sub.Node},
		{sub.User, "/api/node/" + sub.Node + "/jobs"},
		{sub.User, fmt.Sprintf("/api/job/%d", sub.JobID)},
		{logOwner, fmt.Sprintf("/api/job/%d/logs?stream=out", sub.LogJobID)},
		{arrayOwner, fmt.Sprintf("/api/job/%d/array", sub.ArrayJobID)},
		// §9 extension APIs.
		{sub.User, "/api/events?tail=1"},
		{sub.User, "/api/events"},
		{sub.User, "/api/insights?range=all"},
		{sub.User, "/api/jobperf/timeseries?range=7d&bucket=hour"},
		{"staff", "/api/admin/overview?range=all"},
		{"staff", "/api/admin/health"},
	}
	for _, rt := range routes {
		status, bytes, _, err := stack.Get(rt.user, rt.path)
		if err != nil {
			t.Fatalf("GET %s as %s: %v", rt.path, rt.user, err)
		}
		if status != 200 {
			t.Errorf("GET %s as %s: status %d", rt.path, rt.user, status)
		}
		if bytes == 0 {
			t.Errorf("GET %s as %s: empty body", rt.path, rt.user)
		}
	}
}

// TestPaperClaimsEndToEnd re-asserts the paper's three §2.4 design claims
// through the assembled stack (the per-package suites verify them in
// detail; this is the one-glance summary check).
func TestPaperClaimsEndToEnd(t *testing.T) {
	stack, err := experiments.NewStack(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()

	// Performance: cached request volume does not reach slurmctld.
	user := stack.User(0)
	if _, _, err := stack.MustGet(user, "/api/recent_jobs"); err != nil {
		t.Fatal(err)
	}
	before := stack.Env.Cluster.Ctl.Stats().Total()
	for i := 0; i < 10; i++ {
		if _, _, err := stack.MustGet(user, "/api/recent_jobs"); err != nil {
			t.Fatal(err)
		}
	}
	if got := stack.Env.Cluster.Ctl.Stats().Total() - before; got != 0 {
		t.Errorf("performance claim: %d controller RPCs for cached requests", got)
	}

	// Privacy: an unrelated user cannot open someone else's job.
	jobs := stack.Env.Cluster.DBD.Jobs(slurm.JobFilter{Limit: 50}, stack.Env.Clock.Now())
	checked := false
	for _, j := range jobs {
		for i := 0; i < len(stack.Env.UserNames); i++ {
			viewer := stack.User(i)
			vu, _ := stack.Env.Users.Lookup(viewer)
			if vu == nil || viewer == j.User || vu.MemberOf(j.Account) {
				continue
			}
			status, _, _, err := stack.Get(viewer, fmt.Sprintf("/api/job/%d", j.ID))
			if err != nil {
				t.Fatal(err)
			}
			if status != 403 {
				t.Errorf("privacy claim: %s opened %s's job (%d)", viewer, j.User, status)
			}
			checked = true
			break
		}
		if checked {
			break
		}
	}
	if !checked {
		t.Fatal("privacy claim never exercised")
	}

	// Responsiveness: a warm browser repaints the homepage with no network.
	b := stack.Browser(user)
	b.LoadHomepage()
	warm := b.LoadHomepage()
	if warm.NetworkFetches != 0 || warm.InstantPaints != 5 {
		t.Errorf("responsiveness claim: warm load = %+v", warm)
	}
	if warm.NetworkTime != 0 {
		t.Errorf("responsiveness claim: network time %v", warm.NetworkTime)
	}
}

// TestSimulatedDayIsStable drives the assembled stack through a simulated
// day of live traffic and checks the queue neither wedges nor leaks.
func TestSimulatedDayIsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	stack, err := experiments.NewStack(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	env := stack.Env

	recordsBefore := env.Cluster.DBD.JobCount()
	rng := newDeterministicRand(99)
	for hour := 0; hour < 24; hour++ {
		env.SubmitRandom(rng, 8)
		for step := 0; step < 12; step++ {
			env.Clock.Advance(5 * time.Minute)
			env.Cluster.Ctl.Tick()
		}
		// The dashboard stays responsive throughout.
		if _, _, err := stack.MustGet(stack.User(hour), "/api/system_status"); err != nil {
			t.Fatalf("hour %d: %v", hour, err)
		}
	}
	if env.Cluster.DBD.JobCount() <= recordsBefore {
		t.Fatal("no new accounting records after a day of traffic")
	}
	// The live queue is bounded: retention purges finished jobs.
	if active := env.Cluster.Ctl.ActiveJobCount(); active > 5000 {
		t.Fatalf("controller memory grew unboundedly: %d jobs", active)
	}
	// Residual check on a quiet cluster: step time forward with no new
	// submissions until every queued job has started and finished, then
	// verify every node's allocation returns to zero (no leaked resources).
	for i := 0; i < 40; i++ {
		env.Clock.Advance(6 * time.Hour)
		env.Cluster.Ctl.Tick()
	}
	for _, n := range env.Cluster.Ctl.Nodes() {
		if n.Alloc.CPUs != 0 || n.Alloc.GPUs != 0 {
			t.Fatalf("node %s leaked allocation: %+v", n.Name, n.Alloc)
		}
	}
}

// newDeterministicRand builds the seeded PRNG the soak test feeds into
// workload.SubmitRandom.
func newDeterministicRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
