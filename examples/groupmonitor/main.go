// Groupmonitor: the workflow §4.2 of the paper motivates — a group manager
// monitoring their allocation's usage. It loads the My Jobs charts (job
// state distribution and GPU hours per user), the live account usage, and
// downloads the CSV export a PI would hand to their grant report.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"ooddash/internal/auth"
	"ooddash/internal/workload"
)

func main() {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	defer newsSrv.Close()
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	webSrv := httptest.NewServer(server)
	defer webSrv.Close()

	// Act as the first member of the first group.
	manager := env.UserNames[0]
	mu, _ := env.Users.Lookup(manager)
	group := mu.Accounts[0]
	fmt.Printf("=== group monitor: %s acting for allocation %q ===\n\n", manager, group)

	fetch := func(path string) []byte {
		req, _ := http.NewRequest("GET", webSrv.URL+path, nil)
		req.Header.Set(auth.UserHeader, manager)
		resp, err := webSrv.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			log.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	// Job state distribution per user (the stacked bar chart of §4.2).
	var charts struct {
		StateDistribution []struct {
			User   string         `json:"user"`
			Total  int            `json:"total"`
			States map[string]int `json:"states"`
		} `json:"state_distribution"`
		GPUHours []struct {
			User  string  `json:"user"`
			Hours float64 `json:"gpu_hours"`
		} `json:"gpu_hours"`
	}
	if err := json.Unmarshal(fetch("/api/myjobs/charts?range=7d&account="+group), &charts); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Job state distribution (7 days, stacked bars):")
	for _, bar := range charts.StateDistribution {
		segments := make([]string, 0, len(bar.States))
		for _, state := range []string{"COMPLETED", "RUNNING", "PENDING", "FAILED", "TIMEOUT", "CANCELLED"} {
			if n := bar.States[state]; n > 0 {
				segments = append(segments, fmt.Sprintf("%s=%d", strings.ToLower(state), n))
			}
		}
		fmt.Printf("  %-10s %3d jobs  %s\n", bar.User, bar.Total, strings.Join(segments, " "))
	}

	fmt.Println("\nGPU hours by user (7 days):")
	if len(charts.GPUHours) == 0 {
		fmt.Println("  (no GPU usage)")
	}
	for _, row := range charts.GPUHours {
		fmt.Printf("  %-10s %7.1f GPU-hours  %s\n", row.User, row.Hours,
			strings.Repeat("#", int(row.Hours/4)+1))
	}

	// Live allocation pressure from the Accounts widget.
	var accounts struct {
		Accounts []struct {
			Account     string `json:"account"`
			CPUsInUse   int    `json:"cpus_in_use"`
			CPUsQueued  int    `json:"cpus_queued"`
			GrpCPULimit int    `json:"grp_cpu_limit"`
		} `json:"accounts"`
	}
	if err := json.Unmarshal(fetch("/api/accounts"), &accounts); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLive allocation pressure:")
	for _, a := range accounts.Accounts {
		if a.Account != group {
			continue
		}
		fmt.Printf("  %s: %d CPUs running + %d queued of %d group limit\n",
			a.Account, a.CPUsInUse, a.CPUsQueued, a.GrpCPULimit)
	}

	// The §3.4 per-user breakdown export.
	csv := fetch("/api/accounts/" + group + "/export.csv")
	fmt.Printf("\nCSV export of %s usage breakdown:\n", group)
	for _, line := range strings.Split(strings.TrimSpace(string(csv)), "\n") {
		fmt.Println("  " + line)
	}
}
