// Portability: the §2.3/§8 migration story. Another HPC center adopts only
// two widgets from the dashboard — Recent Jobs and System Status — by
// mounting them on its own existing mux, next to its own handlers. The
// example shows the widget registry, the isolated mount, and that a widget
// whose backing service breaks fails alone without taking down the rest.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"ooddash/internal/auth"
	"ooddash/internal/workload"
)

func main() {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	// 1. Inspect the widget registry: each feature is one route + one TTL.
	fmt.Println("=== widget registry (template + API route pairs) ===")
	for _, w := range server.Widgets() {
		fmt.Printf("  %-16s %-42s ttl=%-6s source: %s\n", w.Name, w.Route, w.TTL, w.DataSource)
	}

	// 2. The adopting site's own mux, with its own pages already on it.
	siteMux := http.NewServeMux()
	siteMux.HandleFunc("GET /about", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "Some Other HPC Center")
	})
	// Adopt exactly two widgets.
	if err := server.Mount(siteMux, "recent_jobs", "system_status"); err != nil {
		log.Fatalf("mount: %v", err)
	}
	site := httptest.NewServer(siteMux)
	defer site.Close()

	get := func(path string) (int, string) {
		req, _ := http.NewRequest("GET", site.URL+path, nil)
		req.Header.Set(auth.UserHeader, env.UserNames[0])
		resp, err := site.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	fmt.Println("\n=== adopted widgets on the other center's mux ===")
	for _, path := range []string{"/about", "/api/recent_jobs", "/api/system_status", "/api/storage"} {
		status, body := get(path)
		note := ""
		if path == "/api/storage" && status == 404 {
			note = " (not adopted — correctly absent)"
		}
		fmt.Printf("  GET %-22s -> %d%s\n", path, status, note)
		if status == 200 && path == "/api/system_status" {
			var resp struct {
				Partitions []struct {
					Name       string  `json:"name"`
					CPUPercent float64 `json:"cpu_percent"`
				} `json:"partitions"`
			}
			if err := json.Unmarshal([]byte(body), &resp); err == nil {
				for _, p := range resp.Partitions {
					fmt.Printf("      %-10s %.1f%% cpu\n", p.Name, p.CPUPercent)
				}
			}
		}
	}

	// 3. Failure isolation: kill the news service. On the full dashboard,
	// announcements now fails — but every other widget keeps working.
	full := httptest.NewServer(server)
	defer full.Close()
	newsSrv.Close()

	getFull := func(path string) int {
		req, _ := http.NewRequest("GET", full.URL+path, nil)
		req.Header.Set(auth.UserHeader, env.UserNames[0])
		resp, err := full.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	fmt.Println("\n=== failure isolation: news backend is now down ===")
	for _, path := range []string{"/api/announcements", "/api/recent_jobs", "/api/system_status", "/api/storage"} {
		status := getFull(path)
		note := "still serving"
		if status != 200 {
			note = "degraded alone"
		}
		fmt.Printf("  GET %-22s -> %d (%s)\n", path, status, note)
	}
}
