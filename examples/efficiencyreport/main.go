// Efficiencyreport: the §4.3/§5 workflow — audit how efficiently users
// request resources. It pulls Job Performance Metrics for every generated
// user over a time range and prints a report flagging chronic
// over-requesters, plus concrete per-job warnings for the worst offender
// (the messages the My Jobs table shows inline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"ooddash/internal/auth"
	"ooddash/internal/workload"
)

func main() {
	rng := flag.String("range", "7d", "time range: 24h, 7d, 30d, 90d, all")
	flag.Parse()

	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	defer newsSrv.Close()
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	webSrv := httptest.NewServer(server)
	defer webSrv.Close()

	fetch := func(user, path string, out any) bool {
		req, _ := http.NewRequest("GET", webSrv.URL+path, nil)
		req.Header.Set(auth.UserHeader, user)
		resp, err := webSrv.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			return false
		}
		if err := json.Unmarshal(body, out); err != nil {
			log.Fatalf("decode %s: %v", path, err)
		}
		return true
	}

	type userReport struct {
		User      string
		Jobs      int
		CPUEff    float64
		MemEff    float64
		TimeEff   float64
		GPUHours  float64
		WallHours float64
	}
	var reports []userReport
	for _, user := range env.UserNames {
		var perf struct {
			TotalJobs int     `json:"total_jobs"`
			CPU       float64 `json:"avg_cpu_efficiency"`
			Mem       float64 `json:"avg_memory_efficiency"`
			Time      float64 `json:"avg_time_efficiency"`
			GPUHours  float64 `json:"total_gpu_hours"`
			Wall      int64   `json:"total_wall_seconds"`
		}
		if !fetch(user, "/api/jobperf?range="+*rng, &perf) || perf.TotalJobs == 0 {
			continue
		}
		reports = append(reports, userReport{
			User: user, Jobs: perf.TotalJobs,
			CPUEff: perf.CPU, MemEff: perf.Mem, TimeEff: perf.Time,
			GPUHours: perf.GPUHours, WallHours: float64(perf.Wall) / 3600,
		})
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].CPUEff < reports[j].CPUEff })

	fmt.Printf("=== cluster efficiency report (%s, %d active users) ===\n\n", *rng, len(reports))
	fmt.Printf("%-10s %5s %9s %9s %9s %10s %10s\n",
		"user", "jobs", "cpu eff", "mem eff", "time eff", "gpu hours", "wall hours")
	for _, r := range reports {
		flagStr := ""
		if r.CPUEff < 25 {
			flagStr = "  << chronic CPU over-requesting"
		}
		fmt.Printf("%-10s %5d %8.1f%% %8.1f%% %8.1f%% %10.1f %10.1f%s\n",
			r.User, r.Jobs, r.CPUEff, r.MemEff, r.TimeEff, r.GPUHours, r.WallHours, flagStr)
	}
	if len(reports) == 0 {
		log.Fatal("no active users in range")
	}

	// Drill into the least efficient user's concrete warnings.
	worst := reports[0].User
	var table struct {
		Jobs []struct {
			JobID    string   `json:"job_id"`
			Name     string   `json:"name"`
			Warnings []string `json:"warnings"`
		} `json:"jobs"`
	}
	fetch(worst, "/api/myjobs?range="+*rng+"&mine=1", &table)
	fmt.Printf("\nInline warnings shown to %s in the My Jobs table:\n", worst)
	shown := 0
	for _, j := range table.Jobs {
		for _, w := range j.Warnings {
			fmt.Printf("  job %s (%s):\n    %s\n", j.JobID, j.Name, w)
			shown++
			if shown >= 5 {
				fmt.Println("  ...")
				return
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (none — their jobs are efficient)")
	}
}
