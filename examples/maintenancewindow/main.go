// Maintenancewindow: the cross-feature walkthrough of a planned outage.
// The center announces next week's maintenance; the same window is
// registered with the scheduler as a reservation, so the Announcements
// widget, the System Status widget, squeue reasons, and node states all
// tell users one consistent story — before, during, and after the window.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/newsfeed"
	"ooddash/internal/slurm"
	"ooddash/internal/workload"
)

func main() {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	defer newsSrv.Close()
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	webSrv := httptest.NewServer(server)
	defer webSrv.Close()

	user := env.UserNames[0]
	get := func(path string, out any) {
		req, _ := http.NewRequest("GET", webSrv.URL+path, nil)
		req.Header.Set(auth.UserHeader, user)
		resp, err := webSrv.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			log.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, out); err != nil {
			log.Fatal(err)
		}
	}

	// 1. The center schedules Tuesday's maintenance: one announcement for
	// humans, one reservation for the scheduler.
	start := env.Clock.Now().Add(36 * time.Hour)
	end := start.Add(8 * time.Hour)
	env.Feed.Publish(newsfeed.Article{
		Title:    "Full-cluster maintenance Tuesday",
		Body:     "All nodes will be unavailable while we upgrade the fabric.",
		Category: newsfeed.CategoryMaintenance,
		StartsAt: start, EndsAt: end,
	})
	if _, err := env.Cluster.Ctl.ScheduleMaintenance("fabric-upgrade", start, end, nil,
		"Full-cluster maintenance Tuesday"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled: fabric-upgrade %s – %s\n\n", start.Format("Mon 15:04"), end.Format("Mon 15:04"))

	showStatus := func(label string) {
		var status struct {
			Partitions []struct {
				Name       string  `json:"name"`
				CPUPercent float64 `json:"cpu_percent"`
			} `json:"partitions"`
			Maintenance []struct {
				Name   string `json:"name"`
				Active bool   `json:"active"`
			} `json:"maintenance"`
		}
		get("/api/system_status", &status)
		fmt.Printf("== %s ==\n", label)
		for _, m := range status.Maintenance {
			state := "upcoming"
			if m.Active {
				state = "IN PROGRESS"
			}
			fmt.Printf("  maintenance %q: %s\n", m.Name, state)
		}
		if len(status.Maintenance) == 0 {
			fmt.Println("  no maintenance scheduled")
		}
		busy := 0.0
		for _, p := range status.Partitions {
			busy += p.CPUPercent
		}
		fmt.Printf("  mean partition cpu utilization: %.1f%%\n", busy/float64(len(status.Partitions)))
	}

	// 2. Before the window: a long job can't start (it would overlap), a
	// short one sails through.
	acct := ""
	if u, ok := env.Users.Lookup(user); ok {
		acct = u.Accounts[0]
	}
	long, err := env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "too-long", User: user, Account: acct, Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 4096}, TimeLimit: 72 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 48 * time.Hour, CPUUtilization: 0.8, MemUtilization: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	short, err := env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "fits-before", User: user, Account: acct, Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 4096}, TimeLimit: 4 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 2 * time.Hour, CPUUtilization: 0.8, MemUtilization: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	env.Cluster.Ctl.Tick()
	showStatus("T-36h (before the window)")
	jl, js := env.Cluster.Ctl.Job(long), env.Cluster.Ctl.Job(short)
	fmt.Printf("  job %q (72h limit): %s (%s)\n", jl.Name, jl.State, jl.Reason)
	fmt.Printf("  job %q (4h limit):  %s\n\n", js.Name, js.State)

	// 3. During the window: every node is in maintenance.
	env.Clock.Advance(37 * time.Hour)
	env.Cluster.Ctl.Tick()
	showStatus("T+1h into the window")
	maint := 0
	for _, n := range env.Cluster.Ctl.Nodes() {
		if n.EffectiveState() == slurm.NodeMaint {
			maint++
		}
	}
	fmt.Printf("  nodes in MAINT: %d/%d\n\n", maint, len(env.Cluster.Ctl.Nodes()))

	// 4. After the window: nodes recover and the blocked job finally runs.
	env.Clock.Advance(9 * time.Hour)
	env.Cluster.Ctl.Tick()
	showStatus("after the window")
	jl = env.Cluster.Ctl.Job(long)
	fmt.Printf("  job %q now: %s on %v\n", jl.Name, jl.State, jl.Nodes)
}
