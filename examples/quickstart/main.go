// Quickstart: boot the whole stack (simulated cluster, news feed, storage
// database, dashboard server), then fetch every homepage widget the way the
// frontend does and print a one-screen summary — the dashboard homepage
// (Figure 2 of the paper) in text form.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/workload"
)

func main() {
	// 1. Build a small simulated environment: cluster, users, history.
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	fmt.Printf("cluster %q: %d nodes, %d accounting records, %d live jobs\n\n",
		env.Cluster.Name, len(env.Cluster.Ctl.Nodes()),
		env.Cluster.DBD.JobCount(), env.Cluster.Ctl.ActiveJobCount())

	// 2. Serve the news feed and the dashboard.
	newsSrv := httptest.NewServer(env.Feed)
	defer newsSrv.Close()
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	webSrv := httptest.NewServer(server)
	defer webSrv.Close()

	// 3. Fetch each homepage widget as the first generated user.
	user := env.UserNames[0]
	get := func(path string, out any) {
		req, _ := http.NewRequest("GET", webSrv.URL+path, nil)
		req.Header.Set(auth.UserHeader, user)
		resp, err := webSrv.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			log.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, out); err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
	}

	fmt.Printf("=== dashboard homepage for %s ===\n\n", user)

	var ann struct {
		Announcements []struct {
			Title  string `json:"title"`
			Color  string `json:"color"`
			Active bool   `json:"active"`
		} `json:"announcements"`
	}
	get("/api/announcements", &ann)
	fmt.Println("Announcements:")
	for i, a := range ann.Announcements {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(ann.Announcements)-3)
			break
		}
		style := "past"
		if a.Active {
			style = "active"
		}
		fmt.Printf("  [%s/%s] %s\n", a.Color, style, a.Title)
	}

	var jobs struct {
		Jobs []struct {
			JobID     string    `json:"job_id"`
			Name      string    `json:"name"`
			State     string    `json:"state"`
			TimeLabel string    `json:"time_label"`
			Timestamp time.Time `json:"timestamp"`
		} `json:"jobs"`
	}
	get("/api/recent_jobs", &jobs)
	fmt.Println("\nRecent Jobs:")
	if len(jobs.Jobs) == 0 {
		fmt.Println("  (no recent jobs)")
	}
	for _, j := range jobs.Jobs {
		fmt.Printf("  #%s %-28s %-10s %s %s\n", j.JobID, j.Name, j.State, j.TimeLabel, j.Timestamp.Format("15:04"))
	}

	var status struct {
		Partitions []struct {
			Name       string  `json:"name"`
			CPUPercent float64 `json:"cpu_percent"`
			GPUPercent float64 `json:"gpu_percent"`
			Color      string  `json:"color"`
		} `json:"partitions"`
	}
	get("/api/system_status", &status)
	fmt.Println("\nSystem Status:")
	for _, p := range status.Partitions {
		fmt.Printf("  %-10s cpu %5.1f%%  gpu %5.1f%%  [%s]\n", p.Name, p.CPUPercent, p.GPUPercent, p.Color)
	}

	var accounts struct {
		Accounts []struct {
			Account      string  `json:"account"`
			CPUsInUse    int     `json:"cpus_in_use"`
			CPUsQueued   int     `json:"cpus_queued"`
			GrpCPULimit  int     `json:"grp_cpu_limit"`
			GPUHoursUsed float64 `json:"gpu_hours_used"`
		} `json:"accounts"`
	}
	get("/api/accounts", &accounts)
	fmt.Println("\nAccounts:")
	for _, a := range accounts.Accounts {
		fmt.Printf("  %-8s cpus %d in use / %d queued (limit %d), %.1f GPU-hours used\n",
			a.Account, a.CPUsInUse, a.CPUsQueued, a.GrpCPULimit, a.GPUHoursUsed)
	}

	var storage struct {
		Directories []struct {
			Path         string  `json:"path"`
			UsagePercent float64 `json:"usage_percent"`
			FileCount    int64   `json:"file_count"`
			Color        string  `json:"color"`
		} `json:"directories"`
	}
	get("/api/storage", &storage)
	fmt.Println("\nStorage:")
	for _, d := range storage.Directories {
		fmt.Printf("  %-20s %5.1f%% used, %d files [%s]\n", d.Path, d.UsagePercent, d.FileCount, d.Color)
	}
	fmt.Println("\nDone. Run `go run ./cmd/dashboard -small` for the live web version.")
}
