// Adminreport: the §9 "permission-based job accounting" extension in use.
// A center staff member (admin) pulls the cluster-wide accounting overview
// — total consumption, state mix, top users — then drills into the worst
// offender's insights, the workflow the paper's administrators use the
// dashboard for. Regular users get a 403 from the same route.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/workload"
)

func main() {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	// Register a center staff account on top of the generated population.
	env.Users.AddUser(auth.User{Name: "staff", FullName: "Center Staff", Admin: true})

	newsSrv := httptest.NewServer(env.Feed)
	defer newsSrv.Close()
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	webSrv := httptest.NewServer(server)
	defer webSrv.Close()

	get := func(user, path string) (int, []byte) {
		req, _ := http.NewRequest("GET", webSrv.URL+path, nil)
		req.Header.Set(auth.UserHeader, user)
		resp, err := webSrv.Client().Do(req)
		if err != nil {
			log.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Regular users are shut out of the admin surface.
	if status, _ := get(env.UserNames[0], "/api/admin/overview"); status != 403 {
		log.Fatalf("expected 403 for regular user, got %d", status)
	}
	fmt.Printf("regular user %s -> /api/admin/overview: 403 (correctly denied)\n\n", env.UserNames[0])

	status, body := get("staff", "/api/admin/overview?range=7d")
	if status != 200 {
		log.Fatalf("admin overview: %d: %s", status, body)
	}
	var overview struct {
		TotalJobs     int            `json:"total_jobs"`
		TotalCPUHours float64        `json:"total_cpu_hours"`
		TotalGPUHours float64        `json:"total_gpu_hours"`
		StateCounts   map[string]int `json:"state_counts"`
		TopUsers      []struct {
			User       string  `json:"user"`
			Jobs       int     `json:"jobs"`
			CPUHours   float64 `json:"cpu_hours"`
			GPUHours   float64 `json:"gpu_hours"`
			FailedJobs int     `json:"failed_jobs"`
			AvgCPUEff  float64 `json:"avg_cpu_eff"`
		} `json:"top_users"`
	}
	if err := json.Unmarshal(body, &overview); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== cluster accounting overview (last 7 days, admin-only) ===")
	fmt.Printf("jobs: %d   cpu-hours: %.0f   gpu-hours: %.0f\n",
		overview.TotalJobs, overview.TotalCPUHours, overview.TotalGPUHours)
	fmt.Print("states: ")
	for _, st := range []string{"COMPLETED", "RUNNING", "PENDING", "FAILED", "TIMEOUT", "CANCELLED"} {
		if n := overview.StateCounts[st]; n > 0 {
			fmt.Printf("%s=%d ", st, n)
		}
	}
	fmt.Println()

	fmt.Println("\ntop users by CPU hours:")
	fmt.Printf("  %-10s %5s %10s %10s %7s %9s\n", "user", "jobs", "cpu hours", "gpu hours", "failed", "cpu eff")
	for i, u := range overview.TopUsers {
		if i == 8 {
			break
		}
		fmt.Printf("  %-10s %5d %10.1f %10.1f %7d %8.1f%%\n",
			u.User, u.Jobs, u.CPUHours, u.GPUHours, u.FailedJobs, u.AvgCPUEff)
	}

	// Drill into the least efficient heavy user's insights. Admins can view
	// the user's jobs; the insights route itself analyzes the session user,
	// so staff impersonation here reads the public analysis each user sees.
	worst := overview.TopUsers[0].User
	lowEff := overview.TopUsers[0].AvgCPUEff
	for _, u := range overview.TopUsers {
		if u.AvgCPUEff > 0 && u.AvgCPUEff < lowEff {
			worst, lowEff = u.User, u.AvgCPUEff
		}
	}
	status, body = get(worst, "/api/insights?range=7d")
	if status != 200 {
		log.Fatalf("insights: %d", status)
	}
	var ins struct {
		Findings []struct {
			Severity       string `json:"severity"`
			Title          string `json:"title"`
			Recommendation string `json:"recommendation"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(body, &ins); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== insights for %s (avg cpu eff %.1f%%) ===\n", worst, lowEff)
	if len(ins.Findings) == 0 {
		fmt.Println("  no findings")
	}
	for _, f := range ins.Findings {
		fmt.Printf("  [%s] %s\n      -> %s\n", f.Severity, f.Title, f.Recommendation)
	}

	// Live monitoring taster: watch the event feed for one simulated minute.
	fmt.Println("\n=== real-time event feed (1 simulated minute) ===")
	var events struct {
		Events []struct {
			Kind  string `json:"kind"`
			JobID string `json:"job_id"`
			User  string `json:"user"`
		} `json:"events"`
		NextSeq int64 `json:"next_seq"`
	}
	_, body = get("staff", "/api/events?tail=1")
	_ = json.Unmarshal(body, &events)
	since := events.NextSeq
	// Keep the cluster moving for a simulated minute: fresh submissions
	// arrive while the scheduler ticks every 10 seconds.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		env.SubmitRandom(rng, 1)
		env.Clock.Advance(10 * time.Second)
		env.Cluster.Ctl.Tick()
	}
	_, body = get("staff", fmt.Sprintf("/api/events?since=%d", since))
	if err := json.Unmarshal(body, &events); err != nil {
		log.Fatal(err)
	}
	if len(events.Events) == 0 {
		fmt.Println("  (no job state changes this minute)")
	}
	for _, ev := range events.Events {
		fmt.Printf("  job %s (%s): %s\n", ev.JobID, ev.User, ev.Kind)
	}
}
