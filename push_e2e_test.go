package ooddash

// End-to-end test for the live-update push subsystem's central economic
// claim: upstream Slurm RPC load is a function of the refresh schedule, not
// of how many clients are connected. Fifty SSE clients ride through several
// TTL cycles on the simulated clock and the slurmctld+slurmdbd command count
// must stay within 2x what a SINGLE polling browser costs over the same
// cycles — the fan-out is free, the refresh is shared.

import (
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ooddash/internal/browser"
	"ooddash/internal/core"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// rpcCountingRunner counts commands that actually reach the simulated
// daemons; it sits beneath the server's cache/resilience path, so server
// cache hits never increment it.
type rpcCountingRunner struct {
	next slurmcli.Runner
	n    atomic.Int64
}

func (c *rpcCountingRunner) Run(name string, args ...string) (string, error) {
	c.n.Add(1)
	return c.next.Run(name, args...)
}

// newPushStack boots a dashboard with an RPC counter installed beneath it.
func newPushStack(t *testing.T) (*workload.Env, *core.Server, *rpcCountingRunner, string) {
	t.Helper()
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	counter := &rpcCountingRunner{next: env.Runner}
	env.Runner = counter
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	webSrv := httptest.NewServer(server)
	t.Cleanup(webSrv.Close)
	return env, server, counter, webSrv.URL
}

// drainStreams waits until no stream applies a new event for a few polls;
// SSE delivery is asynchronous even though the clock is simulated.
func drainStreams(streams []*browser.EventStream) {
	var prev int64 = -1
	stable := 0
	for i := 0; i < 1000 && stable < 4; i++ {
		var sum int64
		for _, st := range streams {
			sum += st.Stats().Events
		}
		if sum == prev {
			stable++
		} else {
			stable = 0
			prev = sum
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPushFanOutKeepsUpstreamRPCsFlat(t *testing.T) {
	const (
		rounds    = 4
		interval  = 75 * time.Second // > every homepage TTL except announcements/storage
		clients   = 50
		churnSeed = 99
		churnJobs = 5
	)

	// Phase 1: the single-client polling baseline. One browser reloads the
	// homepage every interval while the same deterministic job churn runs.
	env, _, counter, url := newPushStack(t)
	rng := rand.New(rand.NewSource(churnSeed))
	b := browser.New(env.UserNames[0], url, nil, env.Clock)
	before := counter.n.Load()
	for round := 0; round < rounds; round++ {
		if load := b.LoadHomepage(); !load.FullyPainted() {
			t.Fatalf("baseline round %d: %+v", round, load.Widgets)
		}
		env.SubmitRandom(rng, churnJobs)
		env.Clock.Advance(interval)
		env.Cluster.Ctl.Tick()
	}
	baselineRPCs := counter.n.Load() - before
	if baselineRPCs == 0 {
		t.Fatal("baseline phase issued no upstream RPCs")
	}

	// Phase 2: a fresh identical stack, but 50 SSE clients of the same user
	// instead of one poller. The refresh scheduler fetches each source once
	// per TTL and the hub fans the snapshot out to everyone.
	env2, server2, counter2, url2 := newPushStack(t)
	rng2 := rand.New(rand.NewSource(churnSeed))
	browsers := make([]*browser.Browser, clients)
	streams := make([]*browser.EventStream, clients)
	before2 := counter2.n.Load()
	for i := range browsers {
		browsers[i] = browser.New(env2.UserNames[0], url2, nil, env2.Clock)
		st, err := browsers[i].OpenEventStream(browser.HomepageWidgets(), nil)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		defer st.Close()
		streams[i] = st
	}
	drainStreams(streams)
	for round := 0; round < rounds; round++ {
		env2.SubmitRandom(rng2, churnJobs)
		env2.Clock.Advance(interval)
		env2.Cluster.Ctl.Tick()
		if n := server2.TickPush(); n == 0 {
			t.Fatalf("round %d: scheduler refreshed nothing over a %v cycle", round, interval)
		}
		drainStreams(streams)
	}
	sseRPCs := counter2.n.Load() - before2

	// Every client must have a hot cache: the initial replay alone delivers
	// all five homepage widgets, and churn-driven rounds add more.
	for i, st := range streams {
		if got := st.Stats().Events; got < 5 {
			t.Fatalf("client %d applied only %d events", i, got)
		}
		if st.Err() != nil {
			t.Fatalf("client %d stream error: %v", i, st.Err())
		}
	}
	var delivered int64
	for _, st := range streams {
		delivered += st.Stats().Events
	}
	if delivered < int64(clients)*6 {
		t.Fatalf("only %d events delivered across %d clients; churn rounds published nothing", delivered, clients)
	}
	// A pushed cache makes page views free: no widget should need a network
	// fetch right after a refresh cycle's events landed.
	if load := browsers[0].LoadHomepage(); load.NetworkFetches != 0 || load.InstantPaints != 5 {
		t.Fatalf("SSE-fed page load: network=%d instant=%d, want 0/5", load.NetworkFetches, load.InstantPaints)
	}

	// The acceptance bound: 50 clients' upstream cost stays within 2x of ONE
	// polling client's.
	if sseRPCs > 2*baselineRPCs {
		t.Fatalf("upstream RPCs: sse(%d clients)=%d > 2 x baseline(1 client)=%d",
			clients, sseRPCs, baselineRPCs)
	}
	t.Logf("upstream RPCs: baseline(1 poller)=%d, sse(%d clients)=%d (%.2fx), %d events delivered",
		baselineRPCs, clients, sseRPCs, float64(sseRPCs)/float64(baselineRPCs), delivered)

	// Clean shutdown propagates: every stream ends without error.
	server2.Close()
	for i, st := range streams {
		select {
		case <-st.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("client %d stream still open after server close", i)
		}
		if st.Err() != nil {
			t.Fatalf("client %d shutdown error: %v", i, st.Err())
		}
	}
}
