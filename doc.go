// Package ooddash is a from-scratch Go reproduction of "A Modular,
// Responsive, and Accessible HPC Dashboard Built upon Open OnDemand"
// (Tan & Jin, SC Workshops '25): the dashboard backend (internal/core) over
// a simulated Slurm workload manager (internal/slurm, internal/slurmcli),
// with the paper's dual-layer caching (internal/cache, internal/clientcache)
// and helper services (internal/newsfeed, internal/storagedb,
// internal/auth). See README.md for the layout and EXPERIMENTS.md for the
// reproduced evaluation.
//
// The root package holds the benchmark suite: one benchmark per table and
// figure of the paper (bench_test.go), built on internal/experiments.
package ooddash
