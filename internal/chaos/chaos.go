// Package chaos is the scenario catalog and drill runtime for the
// dashboard's robustness story. Each scenario scripts one operational storm
// the paper's production setting lives with — maintenance drains, node
// failure cascades, energy-saving power cycles, job-array storms,
// accounting backfills, morning login rushes — as deterministic steps on
// the shared simulated clock: inject faults, move time, tick the scheduler
// and the push subsystem, and assert the resilience layers (breakers,
// stale-while-error, skip-while-degraded scheduling, fill admission, trace
// attribution) did their jobs.
//
// The same catalog backs two harnesses: the in-package drill tests execute
// every scenario on the simulated clock alone (wall-clock free, -race
// clean), and cmd/loadgen's chaos mode replays them under an open-loop
// Poisson request load at 10-100x interactive volume, gating on
// per-scenario SLOs.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
	"ooddash/internal/push"
	"ooddash/internal/slo"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// Objectives are the chaos-tuned SLO objectives every run installs: the
// production defaults watch 28 days with hour-scale windows, far too slow
// for a 14-minute scripted storm, so drills run the same engine with
// minute-scale windows and a latency threshold sized to the catalog's
// injected stalls (login_rush stalls every upstream command well past it;
// un-stalled simulated handlers finish far under it, so quiet scenarios
// cannot trip it on wall-clock noise).
func Objectives() []slo.Objective {
	return []slo.Objective{
		{
			Name: "availability", Kind: slo.KindAvailability, Target: 0.9,
			Rules: []slo.Rule{{
				Name: "page", Severity: "page", Burn: 2,
				Short: 2 * time.Minute, Long: 5 * time.Minute,
				For: 2 * time.Minute, KeepFor: time.Minute,
			}},
		},
		// The latency target is tighter than availability's: rush traffic
		// mixes stalled Slurm-backed widgets with storage requests that
		// never touch the injected faults, so the bad fraction tops out
		// around 15% — enough to burn a 5% budget at 2x, invisible to a
		// 10% one.
		{
			Name: "latency", Kind: slo.KindLatency, Target: 0.95,
			Threshold: 20 * time.Millisecond,
			Rules: []slo.Rule{{
				Name: "ticket", Severity: "ticket", Burn: 2,
				Short: 2 * time.Minute, Long: 5 * time.Minute,
				For: time.Minute, KeepFor: time.Minute,
			}},
		},
	}
}

// AlertExpectation gates a scenario's SLO alerting behavior, checked by
// Execute after the scenario's own Verify. Keys are "objective/rule" pairs.
// The zero value is the strictest gate: no rule may fire at all — a quiet
// scenario that trips an alert is a false positive and fails the drill.
type AlertExpectation struct {
	// MustFire rules must have fired at least once by scenario end.
	MustFire []string
	// MustResolve rules must have fired and also resolved by scenario end.
	MustResolve []string
	// MayFire rules are exempt from the false-positive gate without being
	// required to fire.
	MayFire []string
}

// AdminUser is the operator identity every run provisions for the admin
// routes (accounting overview, trace inspection).
const AdminUser = "chaosadmin"

// Options configures a chaos run.
type Options struct {
	// Seed makes the run reproducible; it overrides the spec's seed when
	// non-zero and also seeds the fault injector and the run's RNG.
	Seed int64
	// Spec is the workload environment to build; the zero value means
	// workload.SmallSpec().
	Spec workload.Spec
	// FillCap is the per-source concurrent-fill admission cap
	// (core.ResilienceConfig.MaxConcurrentFills; 0 = core's default).
	FillCap int
	// NewsBaseURL points at an HTTP server wrapping the environment's feed.
	// Empty is allowed when no scenario traffic touches announcements.
	NewsBaseURL string
	// Sleep is the fault injector's latency sleep. Nil means the simulated
	// clock's Sleep (injected latency advances simulated time — drills stay
	// wall-clock free); loadgen's wall mode passes time.Sleep so injected
	// latency really stalls requests.
	Sleep func(time.Duration)
}

// Health classifies every response the run's loopback client observed.
type Health struct {
	Requests          int
	OK                int // 2xx
	Degraded          int // 2xx served stale (X-OODDash-Degraded)
	Rejected          int // 503 (breaker open, upstream down, or fill cap)
	ServerErrors      int // 5xx other than 503 — a drill failure anywhere
	MissingRetryAfter int // 503s without a Retry-After >= 1
	Other             int // everything else (4xx)
}

// Run is one scenario execution environment: the workload cluster, the
// fault injector wrapped around its Slurm command surface, and the
// dashboard server built on top — all on one simulated clock.
type Run struct {
	Opts   Options
	Env    *workload.Env
	Faults *slurmcli.FaultRunner
	Server *core.Server
	Rng    *rand.Rand

	// Scenario scratch state.
	Covered   []string      // nodes the scenario drained, downed, or powered off
	JobIDs    []slurm.JobID // jobs the scenario submitted directly
	RushUsers []string      // extra cold-cache users (login rush)
	Scratch   map[string]int64

	mu     sync.Mutex
	health Health
}

// NewRun builds the environment, wraps the fault injector around the Slurm
// runner (so every dashboard command can be delayed or failed), and builds
// the dashboard server with full tracing and the configured fill cap.
func NewRun(opts Options) (*Run, error) {
	spec := opts.Spec
	if spec == (workload.Spec{}) {
		spec = workload.SmallSpec()
	}
	if opts.Seed != 0 {
		spec.Seed = opts.Seed
	}
	env, err := workload.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = env.Clock.Sleep
	}
	faults := slurmcli.NewFaultRunner(env.Runner, spec.Seed, sleep)
	env.Runner = faults // the server built below sees the injected surface
	server, err := env.NewServerConfig(opts.NewsBaseURL, core.Config{
		Resilience: core.ResilienceConfig{MaxConcurrentFills: opts.FillCap},
		// Deterministic cadence: sources refresh with no stagger and keep
		// refreshing without subscribers, so drills can count cycles.
		Push: core.PushConfig{DisableIdlePause: true, Jitter: -1},
		// Record every request; tail retention keeps the interesting ones.
		Trace: core.TraceConfig{Sample: 1},
		// Minute-scale objectives so the scripted storms can walk alerts
		// through fire and resolve on the simulated clock.
		SLO: core.SLOConfig{Objectives: Objectives()},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	env.Users.AddUser(auth.User{Name: AdminUser, Admin: true})
	return &Run{
		Opts:    opts,
		Env:     env,
		Faults:  faults,
		Server:  server,
		Rng:     rand.New(rand.NewSource(spec.Seed)),
		Scratch: make(map[string]int64),
	}, nil
}

// Close shuts the run's server down (push subsystem, purge loop).
func (r *Run) Close() { r.Server.Close() }

// Step executes one scenario step: the scenario's action, then one
// StepEvery advance of the shared clock with a scheduler tick and a push
// tick, then the scenario's per-step invariant check.
func (r *Run) Step(sc Scenario, i int) error {
	if sc.OnStep != nil {
		if err := sc.OnStep(r, i); err != nil {
			return fmt.Errorf("chaos: %s step %d: %w", sc.Name, i, err)
		}
	}
	r.Env.Clock.Advance(sc.StepEvery)
	r.Env.Cluster.Ctl.Tick()
	r.Server.TickPush()
	if sc.Check != nil {
		if err := sc.Check(r, i); err != nil {
			return fmt.Errorf("chaos: %s step %d: %w", sc.Name, i, err)
		}
	}
	return nil
}

// Execute runs the whole scenario: setup, every step, verification.
func (r *Run) Execute(sc Scenario) error {
	if sc.Setup != nil {
		if err := sc.Setup(r); err != nil {
			return fmt.Errorf("chaos: %s setup: %w", sc.Name, err)
		}
	}
	for i := 0; i < sc.Steps; i++ {
		if err := r.Step(sc, i); err != nil {
			return err
		}
	}
	if sc.Verify != nil {
		if err := sc.Verify(r); err != nil {
			return fmt.Errorf("chaos: %s verify: %w", sc.Name, err)
		}
	}
	if err := r.CheckAlerts(sc.Alerts); err != nil {
		return fmt.Errorf("chaos: %s alerts: %w", sc.Name, err)
	}
	return nil
}

// CheckAlerts verifies the run's SLO alerting against a scenario's
// expectation: every MustFire rule fired, every MustResolve rule fired and
// resolved, and nothing outside the expectation fired at all (false
// positives fail the drill). The loadgen wall harness deliberately skips
// this — under open-loop load at real wall latencies the alert timeline is
// not deterministic; only the scripted simulated-clock drills gate on it.
func (r *Run) CheckAlerts(exp AlertExpectation) error {
	eng := r.Server.SLO()
	split := func(key string) (string, string, error) {
		obj, rule, ok := strings.Cut(key, "/")
		if !ok || obj == "" || rule == "" {
			return "", "", fmt.Errorf("bad alert key %q, want objective/rule", key)
		}
		return obj, rule, nil
	}
	allowed := make(map[string]bool)
	for _, keys := range [][]string{exp.MustFire, exp.MustResolve, exp.MayFire} {
		for _, k := range keys {
			allowed[k] = true
		}
	}
	for _, k := range exp.MustFire {
		obj, rule, err := split(k)
		if err != nil {
			return err
		}
		fired, _, ok := eng.AlertCounts(obj, rule)
		if !ok {
			return fmt.Errorf("expected rule %s not configured", k)
		}
		if fired == 0 {
			return fmt.Errorf("rule %s never fired", k)
		}
	}
	for _, k := range exp.MustResolve {
		obj, rule, err := split(k)
		if err != nil {
			return err
		}
		fired, resolved, ok := eng.AlertCounts(obj, rule)
		if !ok {
			return fmt.Errorf("expected rule %s not configured", k)
		}
		if fired == 0 || resolved == 0 {
			return fmt.Errorf("rule %s fired=%d resolved=%d, want both >= 1", k, fired, resolved)
		}
	}
	for _, o := range eng.Status().Objectives {
		for _, a := range o.Alerts {
			key := o.Name + "/" + a.Rule
			if a.Fired > 0 && !allowed[key] {
				return fmt.Errorf("false positive: rule %s fired %d time(s)", key, a.Fired)
			}
		}
	}
	return nil
}

// loopRecorder captures a loopback response without a network round-trip.
type loopRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (l *loopRecorder) Header() http.Header         { return l.header }
func (l *loopRecorder) WriteHeader(code int)        { l.status = code }
func (l *loopRecorder) Write(p []byte) (int, error) { return l.body.Write(p) }
func (l *loopRecorder) Flush()                      {}

// Get issues one in-process request as user and classifies the response
// into the run's health counters. Drills use it for scenario traffic;
// loadgen's chaos mode sends real HTTP instead and keeps its own tallies.
func (r *Run) Get(user, path string) (status int, degraded bool) {
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		panic(fmt.Sprintf("chaos: Get %s: %v", path, err))
	}
	req.Header.Set(auth.UserHeader, user)
	rec := &loopRecorder{header: make(http.Header), status: http.StatusOK}
	r.Server.ServeHTTP(rec, req)
	degraded = rec.header.Get("X-OODDash-Degraded") != ""

	r.mu.Lock()
	defer r.mu.Unlock()
	r.health.Requests++
	switch {
	case rec.status >= 200 && rec.status < 300:
		r.health.OK++
		if degraded {
			r.health.Degraded++
		}
	case rec.status == http.StatusServiceUnavailable:
		r.health.Rejected++
		if ra, err := strconv.Atoi(rec.header.Get("Retry-After")); err != nil || ra < 1 {
			r.health.MissingRetryAfter++
		}
	case rec.status >= 500:
		r.health.ServerErrors++
	default:
		r.health.Other++
	}
	return rec.status, degraded
}

// Health returns the loopback traffic classification so far.
func (r *Run) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// RegisterPush adds a background refresh source that re-fetches path as
// user on the given cadence — the same loopback shape the SSE subscribe
// path wires up in core, so drills can observe skip-while-degraded
// scheduling without holding an event stream open.
func (r *Run) RegisterPush(widget, key, path, user string, ttl time.Duration) error {
	_, err := r.Server.PushScheduler().Register(push.Source{
		Widget: widget, Key: key, TTL: ttl,
		Fetch: func(ctx context.Context) ([]byte, bool, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
			if err != nil {
				return nil, false, err
			}
			req.Header.Set(auth.UserHeader, user)
			req.Header.Set("X-OODDash-Push", "refresh")
			rec := &loopRecorder{header: make(http.Header), status: http.StatusOK}
			r.Server.ServeHTTP(rec, req)
			degraded := rec.header.Get("X-OODDash-Degraded") != ""
			if rec.status != http.StatusOK {
				return nil, false, fmt.Errorf("chaos: push refresh %s: status %d", path, rec.status)
			}
			payload := bytes.TrimRight(rec.body.Bytes(), "\n")
			return append([]byte(nil), payload...), degraded, nil
		},
	})
	return err
}

// SubmitJob submits one job (defaulting QOS) and records its ID for
// verification.
func (r *Run) SubmitJob(req slurm.SubmitRequest) (slurm.JobID, error) {
	if req.QOS == "" {
		req.QOS = "normal"
	}
	id, err := r.Env.Cluster.Ctl.Submit(req)
	if err == nil {
		r.JobIDs = append(r.JobIDs, id)
	}
	return id, err
}

// jobStarted reports whether a submitted job ever left PENDING: still live
// and past pending, or already recorded by the accounting daemon.
func (r *Run) jobStarted(id slurm.JobID) bool {
	if j := r.Env.Cluster.Ctl.Job(id); j != nil {
		return j.State != slurm.StatePending
	}
	return r.Env.Cluster.DBD.Job(id) != nil
}
