package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/resilience"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/trace"
)

// SLO is a scenario's pass/fail envelope under the open-loop load harness.
// Latency is measured from each request's intended Poisson arrival time
// (coordinated-omission free), so a stalled server shows up as p99 growth
// even though no client was waiting to send. Server errors (5xx other than
// 503) are always gated at zero — the catalog's core promise is that no
// storm produces a page-level failure.
type SLO struct {
	P99             time.Duration // open-loop p99 latency bound
	MaxDegradedRate float64       // stale-while-error serves / total
	MaxRejectedRate float64       // 503s (breaker, outage, fill cap) / total
}

// Scenario is one scripted storm. Steps run on the shared simulated clock:
// OnStep acts (inject faults, submit work, issue traffic), the runtime
// advances StepEvery and ticks the scheduler and push subsystem, Check
// asserts per-step invariants, and Verify asserts the end state.
type Scenario struct {
	Name        string
	Description string
	Steps       int
	StepEvery   time.Duration
	SLO         SLO
	// Alerts gates the run's burn-rate alerting per scenario; the zero
	// value demands that no alert fires at all (see Run.CheckAlerts).
	Alerts AlertExpectation

	Setup  func(*Run) error
	OnStep func(*Run, int) error
	Check  func(*Run, int) error
	Verify func(*Run) error

	// Draw picks one open-loop request (user, path) for the load harness.
	Draw func(*Run, *rand.Rand) (user, path string)
}

// Catalog returns the six scenarios in canonical order.
func Catalog() []Scenario {
	return []Scenario{
		maintenanceDrain(),
		nodeFailureStorm(),
		powerCycle(),
		jobArrayStorm(),
		accountingBackfill(),
		loginRush(),
	}
}

// Names lists the catalog's scenario names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, sc := range cat {
		out[i] = sc.Name
	}
	return out
}

// ByName finds one scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// cpuNodes returns n node names from the "a" (cpu) rack in name order,
// starting at offset.
func cpuNodes(r *Run, offset, n int) ([]string, error) {
	var names []string
	for _, node := range r.Env.Cluster.Ctl.Nodes() {
		if strings.HasPrefix(node.Name, "a") {
			names = append(names, node.Name)
		}
	}
	sort.Strings(names)
	if len(names) < offset+n {
		return nil, fmt.Errorf("cluster has %d cpu nodes, scenario needs %d", len(names), offset+n)
	}
	return names[offset : offset+n], nil
}

// defaultDraw spreads open-loop load across the widget mix a homepage and
// the two status pages produce.
func defaultDraw(r *Run, rng *rand.Rand) (string, string) {
	user := r.Env.UserNames[rng.Intn(len(r.Env.UserNames))]
	paths := []string{
		"/api/recent_jobs", "/api/system_status", "/api/cluster_status",
		"/api/storage", "/api/accounts", "/api/myjobs",
	}
	return user, paths[rng.Intn(len(paths))]
}

// ctldBreaker returns the slurmctld breaker snapshot.
func ctldBreaker(r *Run) resilience.Stats {
	for _, b := range r.Server.Resilience().Snapshot() {
		if b.Source == "slurmctld" {
			return b
		}
	}
	return resilience.Stats{}
}

// --- 1. Maintenance-window drain -------------------------------------------

func maintenanceDrain() Scenario {
	const (
		rackSize  = 4
		leadTime  = 10 * time.Minute
		windowLen = 30 * time.Minute
	)
	return Scenario{
		Name: "maintenance_drain",
		Description: "Drain a rack, lay a maintenance reservation over it, run a job " +
			"stream across the window, then resume: no job may ever land on the rack, " +
			"and the nodes must come back clean.",
		Steps:     12,
		StepEvery: 5 * time.Minute,
		SLO:       SLO{P99: 800 * time.Millisecond, MaxDegradedRate: 0.10, MaxRejectedRate: 0.05},
		Draw:      defaultDraw,
		Setup: func(r *Run) error {
			covered, err := cpuNodes(r, 0, rackSize)
			if err != nil {
				return err
			}
			ctl := r.Env.Cluster.Ctl
			for _, n := range covered {
				if err := ctl.DrainNode(n, "chaos: pre-maintenance drain"); err != nil {
					return err
				}
			}
			start := r.Env.Clock.Now().Add(leadTime)
			end := start.Add(windowLen)
			if _, err := ctl.ScheduleMaintenance("chaos-pm", start, end, covered, "chaos rack maintenance"); err != nil {
				return err
			}
			r.Covered = covered
			r.Scratch["drained_at"] = r.Env.Clock.Now().UnixNano()
			r.Scratch["window_start"] = start.UnixNano()
			r.Scratch["window_end"] = end.UnixNano()
			return nil
		},
		OnStep: func(r *Run, i int) error {
			r.Env.SubmitRandom(r.Rng, 4)
			user := r.Env.UserNames[i%len(r.Env.UserNames)]
			r.Get(user, "/api/system_status")
			r.Get(user, "/api/cluster_status")
			return nil
		},
		Check: func(r *Run, i int) error {
			ctl := r.Env.Cluster.Ctl
			covered := make(map[string]bool, len(r.Covered))
			for _, n := range r.Covered {
				covered[n] = true
			}
			// Draining lets jobs already on the rack run out; the violation is a
			// job STARTED on a covered node after the drain landed.
			drainedAt := time.Unix(0, r.Scratch["drained_at"])
			for _, j := range ctl.Jobs(slurm.LiveJobFilter{States: []slurm.JobState{slurm.StateRunning}}) {
				if !j.StartTime.After(drainedAt) {
					continue
				}
				for _, n := range j.Nodes {
					if covered[n] {
						return fmt.Errorf("job %d started on drained/reserved node %s after the drain", j.ID, n)
					}
				}
			}
			now := r.Env.Clock.Now().UnixNano()
			if now >= r.Scratch["window_start"] && now < r.Scratch["window_end"] {
				for _, n := range r.Covered {
					if node := ctl.Node(n); node == nil || !node.Maint {
						return fmt.Errorf("node %s not in maint during the window", n)
					}
				}
			}
			return nil
		},
		Verify: func(r *Run) error {
			ctl := r.Env.Cluster.Ctl
			for _, n := range r.Covered {
				if err := ctl.ResumeNode(n); err != nil {
					return err
				}
			}
			ctl.Tick()
			for _, n := range r.Covered {
				node := ctl.Node(n)
				if node == nil || !node.Schedulable() || node.Maint || node.Drain {
					return fmt.Errorf("node %s did not come back clean after resume", n)
				}
			}
			if h := r.Health(); h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during drain", h.ServerErrors)
			}
			return nil
		},
	}
}

// --- 2. Node-failure storm --------------------------------------------------

func nodeFailureStorm() Scenario {
	const (
		failAt    = 2 // step that takes nodes and the controller down
		recoverAt = 7 // step that restores the controller and reboots nodes
	)
	return Scenario{
		Name: "node_failure_storm",
		Description: "Nodes fail health checks and slurmctld stops answering: the " +
			"breaker must open, widgets must fail over to stale data, the push " +
			"scheduler must shed cycles, and reboots must bring the nodes back.",
		Steps:     14,
		StepEvery: time.Minute,
		SLO:       SLO{P99: 1500 * time.Millisecond, MaxDegradedRate: 0.85, MaxRejectedRate: 0.30},
		// The outage must page: degraded stale serves burn the availability
		// budget fast enough to walk the page rule through pending, firing,
		// and — once the controller recovers — resolution, all within the
		// scripted 14 minutes. Latency stays quiet (outage errors are
		// instant; nothing stalls the handlers).
		Alerts: AlertExpectation{
			MustFire:    []string{"availability/page"},
			MustResolve: []string{"availability/page"},
		},
		Draw: func(r *Run, rng *rand.Rand) (string, string) {
			user := r.Env.UserNames[rng.Intn(len(r.Env.UserNames))]
			paths := []string{"/api/system_status", "/api/cluster_status", "/api/recent_jobs"}
			return user, paths[rng.Intn(len(paths))]
		},
		Setup: func(r *Run) error {
			user := r.Env.UserNames[0]
			// Warm the caches so the storm has last-known-good data to serve.
			r.Get(user, "/api/system_status")
			r.Get(user, "/api/cluster_status")
			return r.RegisterPush("system_status", "system_status:"+user,
				"/api/system_status", user, r.Server.Config().TTLs.SystemStatus)
		},
		OnStep: func(r *Run, i int) error {
			ctl := r.Env.Cluster.Ctl
			switch i {
			case failAt:
				victims, err := cpuNodes(r, 4, 3)
				if err != nil {
					return err
				}
				for _, n := range victims {
					if err := ctl.SetNodeDown(n, "chaos: health check failed"); err != nil {
						return err
					}
				}
				r.Covered = victims
				r.Faults.SetRules(slurmcli.FaultRule{Outage: true})
			case recoverAt:
				r.Faults.SetRules()
				for _, n := range r.Covered {
					if err := ctl.RebootNode(n, "chaos: storm recovery"); err != nil {
						return err
					}
				}
			}
			user := r.Env.UserNames[0]
			r.Get(user, "/api/system_status")
			r.Get(user, "/api/cluster_status")
			return nil
		},
		Verify: func(r *Run) error {
			if b := ctldBreaker(r); b.Opens < 1 {
				return fmt.Errorf("slurmctld breaker never opened during the storm")
			} else if b.State != resilience.Closed {
				return fmt.Errorf("slurmctld breaker still %s after recovery", b.State)
			}
			h := r.Health()
			if h.Degraded == 0 {
				return fmt.Errorf("no stale-while-error serves during a full controller outage")
			}
			if h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during the storm", h.ServerErrors)
			}
			if h.MissingRetryAfter > 0 {
				return fmt.Errorf("%d cold 503s lacked a Retry-After hint", h.MissingRetryAfter)
			}
			if skipped := r.Server.PushScheduler().Stats().Skipped; skipped < 1 {
				return fmt.Errorf("push scheduler never shed a cycle while degraded")
			}
			// Recovery must end fresh: the controller answers again.
			if status, degraded := r.Get(r.Env.UserNames[0], "/api/system_status"); status != 200 || degraded {
				return fmt.Errorf("post-storm system_status: status %d degraded=%t, want fresh 200", status, degraded)
			}
			// Rebooted nodes are back in service.
			for _, n := range r.Covered {
				node := r.Env.Cluster.Ctl.Node(n)
				if node == nil || !node.Schedulable() {
					return fmt.Errorf("node %s not schedulable after reboot recovery", n)
				}
			}
			// Trace attribution survived the storm: retained degraded traces
			// name the widget and the http origin that observed the outage.
			sums := r.Server.Tracer().Store().List(trace.Filter{DegradedOnly: true, Limit: 10})
			if len(sums) == 0 {
				return fmt.Errorf("trace store retained no degraded traces from the storm")
			}
			for _, s := range sums {
				if s.Widget == "" || s.Origin == "" {
					return fmt.Errorf("retained trace %s lacks widget/origin attribution", s.ID)
				}
			}
			return nil
		},
	}
}

// --- 3. Energy-saving power cycle -------------------------------------------

func powerCycle() Scenario {
	const (
		keepAwake = 4
		burstAt   = 2
		burstJobs = 6
	)
	return Scenario{
		Name: "power_cycle",
		Description: "Power idle nodes down for energy saving, then submit a burst " +
			"that outgrows the awake capacity: the scheduler must auto-wake nodes, " +
			"the burst must run, and no powered-down node may look schedulable.",
		Steps:     10,
		StepEvery: 2 * time.Minute,
		SLO:       SLO{P99: 800 * time.Millisecond, MaxDegradedRate: 0.10, MaxRejectedRate: 0.05},
		Draw:      defaultDraw,
		OnStep: func(r *Run, i int) error {
			ctl := r.Env.Cluster.Ctl
			switch i {
			case 0:
				down := ctl.PowerDownIdle(keepAwake)
				if len(down) == 0 {
					return fmt.Errorf("no idle node could be powered down")
				}
				r.Covered = down
			case burstAt:
				user := r.Env.UserNames[0]
				u, ok := r.Env.Users.Lookup(user)
				if !ok || len(u.Accounts) == 0 {
					return fmt.Errorf("user %s has no account", user)
				}
				for j := 0; j < burstJobs; j++ {
					_, err := r.SubmitJob(slurm.SubmitRequest{
						Name: fmt.Sprintf("chaos-burst-%d", j), User: user, Account: u.Accounts[0],
						Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 128, MemMB: 64 * 1024},
						TimeLimit: time.Hour,
						Profile: slurm.UsageProfile{CPUUtilization: 0.9, MemUtilization: 0.5,
							ActualDuration: 10 * time.Minute},
					})
					if err != nil {
						return err
					}
				}
			}
			r.Get(r.Env.UserNames[0], "/api/cluster_status")
			return nil
		},
		Check: func(r *Run, i int) error {
			for _, n := range r.Covered {
				node := r.Env.Cluster.Ctl.Node(n)
				if node != nil && node.PoweredDown && node.Schedulable() {
					return fmt.Errorf("powered-down node %s reports schedulable", n)
				}
			}
			return nil
		},
		Verify: func(r *Run) error {
			ctl := r.Env.Cluster.Ctl
			if wakes := ctl.Power().AutoWakes; wakes < 1 {
				return fmt.Errorf("burst outgrew awake capacity but no auto-wake fired")
			}
			for _, id := range r.JobIDs {
				if !r.jobStarted(id) {
					return fmt.Errorf("burst job %d never started after auto-wake", id)
				}
			}
			for _, node := range ctl.Nodes() {
				if node.PoweringUp {
					return fmt.Errorf("node %s stuck POWERING_UP at scenario end", node.Name)
				}
			}
			if h := r.Health(); h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during power cycling", h.ServerErrors)
			}
			return nil
		},
	}
}

// --- 4. Job-array storm -----------------------------------------------------

func jobArrayStorm() Scenario {
	const (
		arraysPerStep = 4
		arraySize     = 16
	)
	return Scenario{
		Name: "job_array_storm",
		Description: "Sustained job-array submissions flood the queue: the scheduler " +
			"must keep placing tasks, accounting must absorb the records, and the " +
			"queue-facing widgets must keep answering.",
		Steps:     10,
		StepEvery: time.Minute,
		SLO:       SLO{P99: time.Second, MaxDegradedRate: 0.10, MaxRejectedRate: 0.05},
		Draw: func(r *Run, rng *rand.Rand) (string, string) {
			user := r.Env.UserNames[rng.Intn(len(r.Env.UserNames))]
			paths := []string{"/api/recent_jobs", "/api/myjobs", "/api/system_status"}
			return user, paths[rng.Intn(len(paths))]
		},
		Setup: func(r *Run) error {
			r.Scratch["dbd_jobs"] = int64(r.Env.Cluster.DBD.JobCount())
			return nil
		},
		OnStep: func(r *Run, i int) error {
			for j := 0; j < arraysPerStep; j++ {
				user := r.Env.UserNames[r.Rng.Intn(len(r.Env.UserNames))]
				u, ok := r.Env.Users.Lookup(user)
				if !ok || len(u.Accounts) == 0 {
					continue
				}
				_, err := r.SubmitJob(slurm.SubmitRequest{
					Name: fmt.Sprintf("chaos-sweep-%d-%d", i, j), User: user,
					Account: u.Accounts[r.Rng.Intn(len(u.Accounts))], Partition: "cpu",
					ArraySize: arraySize,
					ReqTRES:   slurm.TRES{CPUs: 4, MemMB: 4 * 1024},
					TimeLimit: 30 * time.Minute,
					Profile: slurm.UsageProfile{CPUUtilization: 0.8, MemUtilization: 0.4,
						ActualDuration: 5 * time.Minute},
				})
				if err != nil {
					return err
				}
			}
			user := r.Env.UserNames[i%len(r.Env.UserNames)]
			r.Get(user, "/api/recent_jobs")
			if i%2 == 0 {
				r.Get(AdminUser, "/api/admin/overview")
			}
			return nil
		},
		Verify: func(r *Run) error {
			if len(r.JobIDs) < arraysPerStep*5 {
				return fmt.Errorf("only %d array submissions were accepted", len(r.JobIDs))
			}
			grown := int64(r.Env.Cluster.DBD.JobCount()) - r.Scratch["dbd_jobs"]
			if grown <= 0 {
				return fmt.Errorf("accounting recorded no array tasks during the storm")
			}
			started := 0
			for _, id := range r.JobIDs {
				if r.jobStarted(id) {
					started++
				}
			}
			if started == 0 {
				return fmt.Errorf("scheduler placed none of %d arrays", len(r.JobIDs))
			}
			if h := r.Health(); h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during the array storm", h.ServerErrors)
			}
			return nil
		},
	}
}

// --- 5. Accounting-backfill flood -------------------------------------------

func accountingBackfill() Scenario {
	const jobsPerStep = 8
	return Scenario{
		Name: "accounting_backfill",
		Description: "A stream of short jobs backfills slurmdbd while injected sacct " +
			"latency slows every accounting query: history widgets must stay correct " +
			"and the dbd fill gate must meter the concurrent queries.",
		Steps:     10,
		StepEvery: time.Minute,
		SLO:       SLO{P99: 2 * time.Second, MaxDegradedRate: 0.25, MaxRejectedRate: 0.10},
		// The latency SLI is wall-clock and this scenario's whole point is
		// slow accounting queries: in the wall-mode harness the injected
		// sacct stalls are real, and even in sim-sleep drills the cold
		// accounting scans can cross the 20ms threshold on a slow machine
		// (the race detector). A latency ticket is legitimate here but
		// environment-dependent, so it is allowed, not required — the
		// availability page must still never fire.
		Alerts: AlertExpectation{MayFire: []string{"latency/ticket"}},
		Draw: func(r *Run, rng *rand.Rand) (string, string) {
			user := r.Env.UserNames[rng.Intn(len(r.Env.UserNames))]
			paths := []string{"/api/myjobs", "/api/myjobs/charts", "/api/insights", "/api/recent_jobs"}
			return user, paths[rng.Intn(len(paths))]
		},
		Setup: func(r *Run) error {
			r.Scratch["dbd_jobs"] = int64(r.Env.Cluster.DBD.JobCount())
			// The flood's signature load: every accounting query crawls.
			r.Faults.SetRules(
				slurmcli.FaultRule{Command: "sacct", Latency: 150 * time.Millisecond, LatencyJitter: 150 * time.Millisecond},
				slurmcli.FaultRule{Command: "sreport", Latency: 150 * time.Millisecond},
			)
			return nil
		},
		OnStep: func(r *Run, i int) error {
			for j := 0; j < jobsPerStep; j++ {
				user := r.Env.UserNames[r.Rng.Intn(len(r.Env.UserNames))]
				u, ok := r.Env.Users.Lookup(user)
				if !ok || len(u.Accounts) == 0 {
					continue
				}
				_, err := r.SubmitJob(slurm.SubmitRequest{
					Name: fmt.Sprintf("chaos-backfill-%d-%d", i, j), User: user,
					Account: u.Accounts[0], Partition: "cpu",
					ReqTRES:   slurm.TRES{CPUs: 2, MemMB: 2 * 1024},
					TimeLimit: 10 * time.Minute,
					Profile: slurm.UsageProfile{CPUUtilization: 0.9, MemUtilization: 0.3,
						ActualDuration: 2 * time.Minute},
				})
				if err != nil {
					return err
				}
			}
			// Rotate accounting readers so each step opens cold per-user keys.
			for j := 0; j < 3; j++ {
				user := r.Env.UserNames[(i*3+j)%len(r.Env.UserNames)]
				r.Get(user, "/api/myjobs")
			}
			if i%2 == 1 {
				r.Get(AdminUser, "/api/admin/overview")
			}
			return nil
		},
		Verify: func(r *Run) error {
			grown := int64(r.Env.Cluster.DBD.JobCount()) - r.Scratch["dbd_jobs"]
			if grown <= 0 {
				return fmt.Errorf("the backfill recorded no accounting rows")
			}
			var dbd, zero bool
			for _, st := range r.Server.FillStats() {
				if st.Source == "slurmdbd" {
					dbd = st.Peak >= 1
					zero = st.InFlight == 0
				}
			}
			if !dbd {
				return fmt.Errorf("no slurmdbd fill was metered by the admission gate")
			}
			if !zero {
				return fmt.Errorf("slurmdbd fills still in flight at scenario end")
			}
			if h := r.Health(); h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during the backfill", h.ServerErrors)
			}
			return nil
		},
	}
}

// --- 6. Login-rush stampede -------------------------------------------------

func loginRush() Scenario {
	const (
		rushUsers = 300
		wavesAt   = 2 // second wave re-stampedes after caches cooled
	)
	rushPaths := []string{"/api/recent_jobs", "/api/myjobs", "/api/storage"}
	stampede := func(r *Run) {
		var wg sync.WaitGroup
		for i, user := range r.RushUsers {
			wg.Add(1)
			go func(i int, user string) {
				defer wg.Done()
				r.Get(user, rushPaths[i%len(rushPaths)])
			}(i, user)
		}
		wg.Wait()
	}
	return Scenario{
		Name: "login_rush",
		Description: "Hundreds of cold-cache users land at once (the 8am effect): " +
			"per-user cache keys defeat singleflight, so the fill-admission gate " +
			"must bound concurrent upstream fills and fail the overflow fast with " +
			"retriable 503s — never a 500, never an unbounded upstream pile-up.",
		Steps:     4,
		StepEvery: 30 * time.Second,
		SLO:       SLO{P99: 2 * time.Second, MaxDegradedRate: 0.60, MaxRejectedRate: 0.80},
		// The rush is a latency story, never an availability one: every
		// admitted request waits out the injected stall (well past the
		// chaos latency threshold), so the latency ticket must fire — but
		// the overflow fails fast as 503s, which the availability SLI
		// excludes as intentional backpressure, so the page must stay
		// silent.
		Alerts: AlertExpectation{MustFire: []string{"latency/ticket"}},
		Draw: func(r *Run, rng *rand.Rand) (string, string) {
			user := r.RushUsers[rng.Intn(len(r.RushUsers))]
			return user, rushPaths[rng.Intn(len(rushPaths))]
		},
		Setup: func(r *Run) error {
			r.RushUsers = make([]string, rushUsers)
			for i := range r.RushUsers {
				name := fmt.Sprintf("rush%04d", i)
				r.RushUsers[i] = name
				r.Env.Users.AddUser(auth.User{Name: name, Accounts: []string{r.Env.GroupNames[i%len(r.Env.GroupNames)]}})
				r.Env.Storage.ProvisionUser(name)
			}
			// A real controller under a login rush answers in tens of
			// milliseconds, not instantly; this per-command stall is what
			// makes the cold fills overlap so the admission gate has
			// something to bound, and it sits well past the chaos latency
			// threshold so every admitted fill is a bad latency SLI event.
			r.Faults.SetRules(slurmcli.FaultRule{Latency: 40 * time.Millisecond})
			return nil
		},
		OnStep: func(r *Run, i int) error {
			if i == 0 || i == wavesAt {
				stampede(r)
			}
			return nil
		},
		Verify: func(r *Run) error {
			h := r.Health()
			if h.ServerErrors > 0 {
				return fmt.Errorf("%d server errors during the rush", h.ServerErrors)
			}
			if h.MissingRetryAfter > 0 {
				return fmt.Errorf("%d rejected requests lacked a Retry-After hint", h.MissingRetryAfter)
			}
			cap := r.Server.Config().Resilience.MaxConcurrentFills
			var peak int
			for _, st := range r.Server.FillStats() {
				if st.InFlight != 0 {
					return fmt.Errorf("source %s still has %d fills in flight", st.Source, st.InFlight)
				}
				if cap > 0 && st.Peak > cap {
					return fmt.Errorf("source %s fill peak %d exceeded the cap %d", st.Source, st.Peak, cap)
				}
				if st.Peak > peak {
					peak = st.Peak
				}
			}
			if peak == 0 {
				return fmt.Errorf("the rush drove no concurrent fills at all")
			}
			return nil
		},
	}
}
