package chaos

// The drills: every catalog scenario executed end to end on the simulated
// clock — no wall-clock sleeps, so the whole file runs in milliseconds and
// stays -race clean. Each drill builds a fresh cluster + dashboard, runs the
// scenario's scripted storm, and relies on the scenario's own Check/Verify
// hooks for the resilience assertions; the test bodies add only the
// drill-harness-specific expectations (traffic actually flowed, fault
// injection actually bit).

import (
	"testing"
	"time"
)

func drill(t *testing.T, name string, opts Options) *Run {
	t.Helper()
	sc, ok := ByName(name)
	if !ok {
		t.Fatalf("scenario %q not in catalog", name)
	}
	if opts.Seed == 0 {
		opts.Seed = 1905
	}
	r, err := NewRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	start := r.Env.Clock.Now()
	if err := r.Execute(sc); err != nil {
		t.Fatal(err)
	}
	// The drill ran on simulated time only: the clock must have moved by
	// exactly the scripted span plus any injected-latency sleeps, and there
	// must have been actual scenario traffic to classify.
	if got := r.Env.Clock.Now().Sub(start); got < time.Duration(sc.Steps)*sc.StepEvery {
		t.Fatalf("simulated span = %v, want >= %v", got, time.Duration(sc.Steps)*sc.StepEvery)
	}
	if h := r.Health(); h.Requests == 0 {
		t.Fatal("scenario issued no loopback traffic")
	}
	return r
}

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"maintenance_drain", "node_failure_storm", "power_cycle",
		"job_array_storm", "accounting_backfill", "login_rush",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d scenarios, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("catalog[%d] = %q, want %q", i, got[i], name)
		}
		sc, ok := ByName(name)
		if !ok || sc.Name != name {
			t.Fatalf("ByName(%q) not found", name)
		}
		if sc.Steps <= 0 || sc.StepEvery <= 0 {
			t.Fatalf("%s: unscripted steps (%d x %v)", name, sc.Steps, sc.StepEvery)
		}
		if sc.SLO.P99 <= 0 {
			t.Fatalf("%s: no p99 SLO", name)
		}
		if sc.Draw == nil {
			t.Fatalf("%s: no load-harness draw", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted an unknown scenario")
	}
}

func TestDrillMaintenanceDrain(t *testing.T) {
	r := drill(t, "maintenance_drain", Options{})
	if len(r.Covered) == 0 {
		t.Fatal("no nodes were drained")
	}
	if h := r.Health(); h.ServerErrors > 0 || h.Other > 0 {
		t.Fatalf("health = %+v, want clean 2xx/503 split", h)
	}
}

func TestDrillNodeFailureStorm(t *testing.T) {
	r := drill(t, "node_failure_storm", Options{})
	h := r.Health()
	if h.Degraded == 0 {
		t.Fatalf("health = %+v: the outage never forced a stale serve", h)
	}
	if h.ServerErrors > 0 {
		t.Fatalf("health = %+v: page-level 5xx during the storm", h)
	}
	if stats := r.Server.PushScheduler().Stats(); stats.Refreshes == 0 {
		t.Fatalf("push stats = %+v: the registered source never refreshed", stats)
	}
}

func TestDrillPowerCycle(t *testing.T) {
	r := drill(t, "power_cycle", Options{})
	if len(r.Covered) == 0 {
		t.Fatal("no nodes were powered down")
	}
	if got := r.Env.Cluster.Ctl.Power(); got.AutoWakes == 0 {
		t.Fatalf("power stats = %+v, want at least one auto-wake", got)
	}
}

func TestDrillJobArrayStorm(t *testing.T) {
	r := drill(t, "job_array_storm", Options{})
	if len(r.JobIDs) == 0 {
		t.Fatal("no arrays were submitted")
	}
}

func TestDrillAccountingBackfill(t *testing.T) {
	r := drill(t, "accounting_backfill", Options{})
	// The injected sacct latency must have been absorbed by the simulated
	// clock, not hidden: at least one dbd fill went through the gate.
	var sawDBD bool
	for _, st := range r.Server.FillStats() {
		if st.Source == "slurmdbd" && st.Peak >= 1 {
			sawDBD = true
		}
	}
	if !sawDBD {
		t.Fatal("no slurmdbd fill crossed the admission gate")
	}
}

func TestDrillLoginRush(t *testing.T) {
	// A tight cap makes the stampede bite: 300 cold users cannot all fill at
	// once, so the gate must reject the overflow as retriable 503s while the
	// server never drops a 500. The fill gate bounds WALL-time concurrency,
	// so this one drill gives the scenario's injected command stall real
	// wall duration (every other drill keeps the simulated-clock sleep);
	// the admitted fills' real stalls are also what makes the latency
	// ticket fire. Total added wall time stays around a second.
	r := drill(t, "login_rush", Options{FillCap: 8, Sleep: time.Sleep})
	h := r.Health()
	if h.Rejected == 0 {
		t.Fatalf("health = %+v: a 300-user stampede against cap 8 rejected nothing", h)
	}
	if h.OK == 0 {
		t.Fatalf("health = %+v: nobody got through the rush", h)
	}
}

// TestSLOChaosAlertGates pins the per-scenario alerting contract directly
// (Execute already enforces each scenario's AlertExpectation; this test
// asserts the counts themselves so a gate regression cannot hide behind an
// accidentally-empty expectation).
func TestSLOChaosAlertGates(t *testing.T) {
	// The storm fires the availability page and resolves it after recovery;
	// the latency ticket stays silent.
	storm := drill(t, "node_failure_storm", Options{})
	fired, resolved, ok := storm.Server.SLO().AlertCounts("availability", "page")
	if !ok || fired < 1 || resolved < 1 {
		t.Fatalf("storm availability/page fired=%d resolved=%d ok=%t, want both >= 1", fired, resolved, ok)
	}
	if fired, _, _ := storm.Server.SLO().AlertCounts("latency", "ticket"); fired != 0 {
		t.Fatalf("storm latency/ticket fired %d time(s), want 0", fired)
	}

	// The rush fires the latency ticket but never the availability page:
	// 503 backpressure is excluded from the availability SLI by design.
	rush := drill(t, "login_rush", Options{FillCap: 8, Sleep: time.Sleep})
	if fired, _, ok := rush.Server.SLO().AlertCounts("latency", "ticket"); !ok || fired < 1 {
		t.Fatalf("rush latency/ticket fired=%d ok=%t, want >= 1", fired, ok)
	}
	if fired, _, _ := rush.Server.SLO().AlertCounts("availability", "page"); fired != 0 {
		t.Fatalf("rush availability/page fired %d time(s), want 0", fired)
	}

	// A quiet scenario ends with zero lifetime fires on every rule.
	quiet := drill(t, "maintenance_drain", Options{})
	for _, o := range quiet.Server.SLO().Status().Objectives {
		for _, a := range o.Alerts {
			if a.Fired != 0 {
				t.Fatalf("quiet drill fired %s/%s %d time(s)", o.Name, a.Rule, a.Fired)
			}
		}
	}
}
