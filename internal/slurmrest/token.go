package slurmrest

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"ooddash/internal/auth"
)

// Kind classifies a token's principal; the scope matrix keys off it.
type Kind string

const (
	// KindUser is a person: full view of their own jobs, redacted view of
	// everyone else's, no diag.
	KindUser Kind = "user"
	// KindStaff is center staff: every endpoint, every field.
	KindStaff Kind = "staff"
	// KindService is an infrastructure account (monitoring, the dashboard's
	// own poller in service mode): read-only nodes/partitions/diag.
	KindService Kind = "service"
)

// Principal is the resolved identity behind a bearer token.
type Principal struct {
	Kind Kind
	// Name is the username for user/staff tokens, the account label for
	// service tokens.
	Name string
	// User is the directory record backing a user or staff principal; nil
	// for service accounts.
	User *auth.User
}

// cacheClass buckets principals by what they are allowed to see, for the
// rendered-response cache key: staff tokens all share one view, service
// tokens another, and each user gets their own (redaction differs per
// viewer).
func (p *Principal) cacheClass() string {
	switch p.Kind {
	case KindStaff:
		return "staff"
	case KindService:
		return "service"
	default:
		return "user\x01" + p.Name
	}
}

// TokenStore maps bearer tokens to principals. User and staff tokens are
// resolved through the auth directory at issue time (an Admin user yields a
// staff principal — the REST analogue of the dashboard's staff pages).
type TokenStore struct {
	mu     sync.RWMutex
	tokens map[string]Principal
	dir    *auth.Directory
}

// NewTokenStore returns an empty store resolving user tokens against dir.
func NewTokenStore(dir *auth.Directory) *TokenStore {
	return &TokenStore{tokens: make(map[string]Principal), dir: dir}
}

// IssueUser binds token to the named directory user. Admin users get staff
// scope; everyone else user scope.
func (ts *TokenStore) IssueUser(token, username string) error {
	if token == "" {
		return fmt.Errorf("slurmrest: empty token")
	}
	u, ok := ts.dir.Lookup(username)
	if !ok {
		return fmt.Errorf("slurmrest: unknown user %q", username)
	}
	kind := KindUser
	if u.Admin {
		kind = KindStaff
	}
	ts.mu.Lock()
	ts.tokens[token] = Principal{Kind: kind, Name: u.Name, User: u}
	ts.mu.Unlock()
	return nil
}

// IssueStaff binds token to an all-access staff principal that is not
// backed by a directory user — the analogue of slurmrestd tokens for the
// SlurmUser itself, which trusted infrastructure (the dashboard's poller)
// holds. The dashboard still applies its own per-user ACLs downstream.
func (ts *TokenStore) IssueStaff(token, name string) error {
	if token == "" {
		return fmt.Errorf("slurmrest: empty token")
	}
	ts.mu.Lock()
	ts.tokens[token] = Principal{Kind: KindStaff, Name: name}
	ts.mu.Unlock()
	return nil
}

// IssueService binds token to a read-only service account.
func (ts *TokenStore) IssueService(token, name string) error {
	if token == "" {
		return fmt.Errorf("slurmrest: empty token")
	}
	ts.mu.Lock()
	ts.tokens[token] = Principal{Kind: KindService, Name: name}
	ts.mu.Unlock()
	return nil
}

// Resolve looks a bearer token up. Comparison is constant-time per
// candidate so token length/prefix cannot be probed through timing.
func (ts *TokenStore) Resolve(token string) (Principal, bool) {
	if token == "" {
		return Principal{}, false
	}
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	for t, p := range ts.tokens {
		if len(t) == len(token) && subtle.ConstantTimeCompare([]byte(t), []byte(token)) == 1 {
			return p, true
		}
	}
	return Principal{}, false
}

// FromRequest resolves the request's Authorization: Bearer token, also
// accepting Slurm's own X-SLURM-USER-TOKEN spelling for slurmrestd
// compatibility.
func (ts *TokenStore) FromRequest(r *http.Request) (Principal, bool) {
	tok := r.Header.Get("X-SLURM-USER-TOKEN")
	if tok == "" {
		h := r.Header.Get("Authorization")
		var ok bool
		tok, ok = strings.CutPrefix(h, "Bearer ")
		if !ok {
			return Principal{}, false
		}
	}
	return ts.Resolve(strings.TrimSpace(tok))
}
