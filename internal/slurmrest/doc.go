// Package slurmrest is a slurmrestd-style REST surface over the simulated
// Slurm daemons: a versioned JSON API (/slurm/v1/jobs, /nodes, /partitions,
// /accounting, /diag) with bearer-token authentication, per-endpoint and
// per-field permission scopes, and an ETag'd rendered-response cache.
//
// It is the modern alternative to the CLI-shellout data path the paper's
// dashboard uses (the Palmetto API direction: granular permissions and
// caching layered over the Slurm REST API without breaking compatibility).
// The server reads the daemon state structs directly — no text formatting
// or parsing — and the client decodes wire JSON back into the same typed
// rows internal/slurmcli produces, so the dashboard can swap between the
// two backends per source (-backend=cli|rest) and A/B the parse-text vs
// decode-JSON cost on the fill path.
//
// Token scopes:
//
//   - staff tokens see every endpoint and every field;
//   - user tokens see jobs and accounting with other users' records
//     redacted (name/comment/workdir hidden, redacted=true), nodes and
//     partitions in full, and get 403 on /diag;
//   - service-account tokens are read-only infrastructure probes: nodes,
//     partitions, and diag only — 403 on jobs and accounting.
//
// Availability failures from the daemons map to 503 + Retry-After so the
// dashboard's resilience layer classifies REST outages exactly like CLI
// ones.
package slurmrest
