package slurmrest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// rollupWindow is the last 24 hours as whole hour buckets — wide enough to
// cover everything seedJobs produced.
func rollupWindow(e *restEnv) (start, end int64) {
	now := e.clock.Now().Unix()
	start = now - 24*3600
	start -= start % 3600
	end = now + 3600
	end -= end % 3600
	return start, end
}

// settle advances far enough that every runnable seed job reaches a
// terminal state and lands in the rollup store.
func settle(e *restEnv) {
	e.clock.Advance(3 * time.Hour)
	e.cluster.Ctl.Tick()
}

func TestRollupsEndpointMatchesDaemon(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	settle(e)
	start, end := rollupWindow(e)

	rec := e.get(tokStaff, fmt.Sprintf(
		"/slurm/v1/accounting/rollups?scope=total&start_time=%d&end_time=%d&resolution=3600", start, end))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp RollupsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Buckets) == 0 {
		t.Fatal("no buckets in the window; seed jobs never reached the rollup store")
	}
	got := make([]slurm.RollupRow, len(resp.Buckets))
	for i := range resp.Buckets {
		got[i] = resp.Buckets[i].RollupRow()
	}
	want := e.cluster.DBD.RollupQuery(slurm.RollupScopeTotal, "", start, end, slurm.RollupHour)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wire rows != daemon rows\nwire:   %+v\ndaemon: %+v", got, want)
	}

	// The typed client decodes the same rows.
	cl := NewClient(e.server, tokStaff)
	res, err := cl.Rollup(context.Background(), slurmcli.RollupOptions{
		Scope: slurm.RollupScopeTotal, Start: start, End: end, Resolution: slurm.RollupHour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("client rows != daemon rows\nclient: %+v\ndaemon: %+v", res.Rows, want)
	}
}

func TestRollupsBoundsOp(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	settle(e)

	rec := e.get(tokStaff, "/slurm/v1/accounting/rollups?scope=total&op=bounds")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp RollupsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	minEnd, maxEnd, ok := e.cluster.DBD.RollupBounds(slurm.RollupScopeTotal, "")
	if !ok || !resp.HasBounds {
		t.Fatalf("bounds missing: daemon ok=%v wire=%+v", ok, resp)
	}
	if resp.MinEnd != minEnd || resp.MaxEnd != maxEnd {
		t.Errorf("bounds = [%d, %d], want [%d, %d]", resp.MinEnd, resp.MaxEnd, minEnd, maxEnd)
	}
}

// TestRollupsUserTokenOwnSeriesOnly: rollups aggregate everyone's activity,
// which per-job redaction cannot hide after the fact — a user token may
// only read its own user series.
func TestRollupsUserTokenOwnSeriesOnly(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	settle(e)
	start, end := rollupWindow(e)
	q := fmt.Sprintf("&start_time=%d&end_time=%d&resolution=3600", start, end)

	for _, path := range []string{
		"/slurm/v1/accounting/rollups?scope=total" + q,
		"/slurm/v1/accounting/rollups?scope=account&name=lab-a" + q,
		"/slurm/v1/accounting/rollups?scope=partition&name=cpu" + q,
		"/slurm/v1/accounting/rollups?scope=user&name=bob" + q,
		"/slurm/v1/accounting/rollups?scope=user" + q, // empty name = all users
	} {
		if rec := e.get(tokAlice, path); rec.Code != http.StatusForbidden {
			t.Errorf("%s as alice: status %d, want 403", path, rec.Code)
		}
	}
	rec := e.get(tokAlice, "/slurm/v1/accounting/rollups?scope=user&name=alice"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("own series as alice: status %d: %s", rec.Code, rec.Body)
	}
	var resp RollupsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, b := range resp.Buckets {
		if b.Name != "alice" {
			t.Errorf("user token received series %q", b.Name)
		}
	}
}

func TestRollupsValidation(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	settle(e)
	start, end := rollupWindow(e)
	q := fmt.Sprintf("&start_time=%d&end_time=%d&resolution=3600", start, end)

	cases := []struct {
		path string
		want int
	}{
		{"/slurm/v1/accounting/rollups?scope=galaxy" + q, http.StatusBadRequest},
		{fmt.Sprintf("/slurm/v1/accounting/rollups?scope=total&start_time=%d&end_time=%d&resolution=123", start, end), http.StatusBadRequest},
		{fmt.Sprintf("/slurm/v1/accounting/rollups?scope=total&end_time=%d&resolution=3600", end), http.StatusBadRequest},
		{"/slurm/v1/accounting/rollups?scope=total&op=frobnicate" + q, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := e.get(tokStaff, c.path); rec.Code != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.path, rec.Code, c.want, rec.Body)
		}
	}
	// Service tokens have no accounting scope at all.
	if rec := e.get(tokSvc, "/slurm/v1/accounting/rollups?scope=total"+q); rec.Code != http.StatusForbidden {
		t.Errorf("service token: status %d, want 403", rec.Code)
	}
}
