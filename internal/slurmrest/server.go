package slurmrest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ooddash/internal/cache"
	"ooddash/internal/etag"
	"ooddash/internal/obs"
	"ooddash/internal/slurm"
)

// Options configures a Server.
type Options struct {
	// CacheTTL bounds how long a rendered JSON response may be served
	// without re-reading the daemons. Zero disables the response cache
	// entirely (every request hits the daemons — the A/B benchmark uses
	// this to measure the raw fill path).
	CacheTTL time.Duration
}

// Server is the slurmrestd stand-in: a versioned JSON API over the simulated
// daemons with bearer-token scopes and an ETag'd rendered-response cache.
type Server struct {
	cluster *slurm.Cluster
	tokens  *TokenStore
	opts    Options
	cache   *cache.Cache
	mux     *http.ServeMux

	mu          sync.Mutex
	requests    map[[2]string]int64 // {endpoint, status} → count
	scopeDenied map[[2]string]int64 // {endpoint, kind} → count
	redacted    map[string]int64    // endpoint → records redacted
}

// NewServer builds a REST server over cluster, authenticating against ts.
func NewServer(cluster *slurm.Cluster, ts *TokenStore, opts Options) *Server {
	s := &Server{
		cluster:     cluster,
		tokens:      ts,
		opts:        opts,
		cache:       cache.New(cluster.Clock),
		requests:    make(map[[2]string]int64),
		scopeDenied: make(map[[2]string]int64),
		redacted:    make(map[string]int64),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slurm/v1/jobs", s.endpoint("jobs", s.handleJobs))
	mux.HandleFunc("GET /slurm/v1/jobs/{id}", s.endpoint("job", s.handleJob))
	mux.HandleFunc("GET /slurm/v1/nodes", s.endpoint("nodes", s.handleNodes))
	mux.HandleFunc("GET /slurm/v1/nodes/{name}", s.endpoint("node", s.handleNode))
	mux.HandleFunc("GET /slurm/v1/partitions", s.endpoint("partitions", s.handlePartitions))
	mux.HandleFunc("GET /slurm/v1/accounting", s.endpoint("accounting", s.handleAccounting))
	mux.HandleFunc("GET /slurm/v1/accounting/rollups", s.endpoint("rollups", s.handleRollups))
	mux.HandleFunc("GET /slurm/v1/diag", s.endpoint("diag", s.handleDiag))
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope, loosely after slurmrestd's "errors"
// array.
type apiError struct {
	Errors []apiErrorItem `json:"errors"`
}

type apiErrorItem struct {
	Error string `json:"error"`
	Code  int    `json:"error_code"`
}

func (s *Server) count(endpoint string, status int) {
	s.mu.Lock()
	s.requests[[2]string{endpoint, strconv.Itoa(status)}]++
	s.mu.Unlock()
}

func (s *Server) countDenied(endpoint string, kind Kind) {
	s.mu.Lock()
	s.scopeDenied[[2]string{endpoint, string(kind)}]++
	s.mu.Unlock()
}

func (s *Server) countRedacted(endpoint string, n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.redacted[endpoint] += int64(n)
	s.mu.Unlock()
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "5")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Errors: []apiErrorItem{{Error: msg, Code: status}}})
}

// scopeFor reports whether kind may read endpoint at all. Field-level
// redaction for user tokens happens inside the handlers.
func scopeAllows(endpoint string, kind Kind) bool {
	switch endpoint {
	case "jobs", "job", "accounting", "rollups":
		return kind != KindService
	case "diag":
		return kind != KindUser
	default: // nodes, node, partitions: everyone
		return true
	}
}

// handlerFunc builds the response body for an authorized request. The
// endpoint wrapper handles auth, scope, caching, ETag and error mapping.
type handlerFunc func(r *http.Request, p Principal) ([]byte, error)

// errNotFound marks semantic lookups that found nothing; mapped to 404.
var errNotFound = errors.New("slurmrest: not found")

// errForbidden marks requests a principal's scope admits but whose
// parameters reach past what that principal may see; mapped to 403.
var errForbidden = errors.New("slurmrest: forbidden")

// endpoint wraps a handler with the shared request pipeline:
// authenticate → scope check → rendered-cache lookup → build → ETag/304.
func (s *Server) endpoint(name string, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p, ok := s.tokens.FromRequest(r)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="slurm"`)
			s.count(name, http.StatusUnauthorized)
			writeError(w, http.StatusUnauthorized, "invalid or missing token")
			return
		}
		if !scopeAllows(name, p.Kind) {
			s.countDenied(name, p.Kind)
			s.count(name, http.StatusForbidden)
			writeError(w, http.StatusForbidden,
				fmt.Sprintf("%s tokens may not read /slurm/v1/%s", p.Kind, name))
			return
		}

		body, tag, err := s.render(name, &p, r, fn)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, slurm.ErrUnavailable):
				status = http.StatusServiceUnavailable
			case errors.Is(err, errNotFound):
				status = http.StatusNotFound
			case errors.Is(err, errBadRequest):
				status = http.StatusBadRequest
			case errors.Is(err, errForbidden):
				status = http.StatusForbidden
			}
			s.count(name, status)
			writeError(w, status, err.Error())
			return
		}

		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("Etag", tag)
		if etag.Match(r.Header.Get("If-None-Match"), tag) {
			s.count(name, http.StatusNotModified)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		s.count(name, http.StatusOK)
		w.Write(body)
	}
}

// rendered is one cached response: the JSON bytes plus their ETag.
type rendered struct {
	body []byte
	etag string
}

// render returns the response bytes for the request, via the rendered cache
// when enabled. The cache key includes the principal's cache class, never
// the token: staff tokens share entries, service tokens share entries, and
// each user has their own — because redaction differs per viewer, a shared
// entry across classes would leak exactly what the Vary bugfix on the
// dashboard side prevents.
func (s *Server) render(name string, p *Principal, r *http.Request, fn handlerFunc) ([]byte, string, error) {
	build := func() (rendered, error) {
		body, err := fn(r, *p)
		if err != nil {
			return rendered{}, err
		}
		return rendered{body: body, etag: etag.For(body)}, nil
	}
	if s.opts.CacheTTL <= 0 {
		out, err := build()
		return out.body, out.etag, err
	}
	key := name + "\x00" + p.cacheClass() + "\x00" + r.URL.RequestURI()
	v, err := s.cache.Fetch(key, s.opts.CacheTTL, func() (any, error) {
		return build()
	})
	if err != nil {
		return nil, "", err
	}
	out := v.(rendered)
	return out.body, out.etag, nil
}

// errBadRequest marks malformed query parameters; mapped to 400.
var errBadRequest = errors.New("slurmrest: bad request")

// --- endpoint handlers ------------------------------------------------------

// handleJobs serves the live queue. Query parameters mirror the typed
// squeue wrapper: user, account, partition, state (repeatable), all_states,
// limit. Without state filters the squeue default applies (active jobs).
func (s *Server) handleJobs(r *http.Request, p Principal) ([]byte, error) {
	q := r.URL.Query()
	filter := slurm.LiveJobFilter{
		User:      q.Get("user"),
		Account:   q.Get("account"),
		Partition: q.Get("partition"),
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%w: limit %q", errBadRequest, v)
		}
		filter.Limit = n
	}
	if states := q["state"]; len(states) > 0 {
		for _, st := range states {
			filter.States = append(filter.States, slurm.JobState(strings.ToUpper(st)))
		}
	} else if q.Get("all_states") == "" {
		filter.States = []slurm.JobState{slurm.StatePending, slurm.StateRunning,
			slurm.StateSuspended, slurm.StateCompleting}
	}

	var resp JobsResponse
	_, err := s.cluster.Ctl.Handle(r.Context(), "REQUEST_JOB_INFO", func() (string, error) {
		now := s.cluster.Ctl.Now()
		jobs := s.cluster.Ctl.Jobs(filter)
		resp.Jobs = make([]Job, 0, len(jobs))
		hidden := 0
		for _, j := range jobs {
			wire := jobFromLive(j, now)
			if p.Kind == KindUser && j.User != p.Name {
				redactJob(&wire)
				hidden++
			}
			resp.Jobs = append(resp.Jobs, wire)
		}
		s.countRedacted("jobs", hidden)
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// redactJob hides the identifying fields of a queue record another user may
// not inspect; scheduling state stays visible so aggregate views still work.
func redactJob(j *Job) {
	j.Name = ""
	j.Redacted = true
}

// handleJob serves one job in full detail, falling back to accounting for
// jobs the controller has aged out (scontrol's behaviour).
func (s *Server) handleJob(r *http.Request, p Principal) ([]byte, error) {
	idStr := r.PathValue("id")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: job id %q", errBadRequest, idStr)
	}
	var detail JobDetail
	_, err = s.cluster.Ctl.Handle(r.Context(), "REQUEST_JOB_INFO_SINGLE", func() (string, error) {
		now := s.cluster.Ctl.Now()
		j := s.cluster.Ctl.Job(slurm.JobID(id))
		if j == nil {
			j = s.cluster.DBD.Job(slurm.JobID(id))
		}
		if j == nil {
			return "", fmt.Errorf("%w: job %d", errNotFound, id)
		}
		detail = detailFromJob(j, now)
		if p.Kind == KindUser && j.User != p.Name {
			redactJobDetail(&detail)
			s.countRedacted("job", 1)
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(detail)
}

// redactJobDetail hides another user's job name, paths and comment.
func redactJobDetail(d *JobDetail) {
	d.Name = ""
	d.WorkDir = ""
	d.StdoutPath = ""
	d.StderrPath = ""
	d.Comment = ""
	d.Redacted = true
}

// handleAccounting serves the accounting archive. Query parameters mirror
// the typed sacct wrapper: user, account (repeatable), state (repeatable),
// start_time/end_time (unix seconds), partition, job_id (repeatable),
// array_job, limit.
func (s *Server) handleAccounting(r *http.Request, p Principal) ([]byte, error) {
	q := r.URL.Query()
	filter := slurm.JobFilter{Partition: q.Get("partition")}
	if u := q.Get("user"); u != "" {
		filter.Users = strings.Split(u, ",")
	}
	for _, a := range q["account"] {
		filter.Accounts = append(filter.Accounts, strings.Split(a, ",")...)
	}
	for _, st := range q["state"] {
		filter.States = append(filter.States, slurm.JobState(strings.ToUpper(st)))
	}
	for _, key := range [2]string{"start_time", "end_time"} {
		v := q.Get(key)
		if v == "" {
			continue
		}
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %s %q", errBadRequest, key, v)
		}
		if key == "start_time" {
			filter.Start = timeFromUnix(sec)
		} else {
			filter.End = timeFromUnix(sec)
		}
	}
	for _, idStr := range q["job_id"] {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: job_id %q", errBadRequest, idStr)
		}
		filter.JobIDs = append(filter.JobIDs, slurm.JobID(id))
	}
	if v := q.Get("array_job"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: array_job %q", errBadRequest, v)
		}
		filter.ArrayJobID = slurm.JobID(id)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%w: limit %q", errBadRequest, v)
		}
		filter.Limit = n
	}

	var resp AccountingResponse
	_, err := s.cluster.DBD.Handle(r.Context(), "DBD_GET_JOBS_COND", func() (string, error) {
		now := s.cluster.Ctl.Now()
		jobs := s.cluster.DBD.Jobs(filter, now)
		resp.Jobs = make([]AccountingJob, 0, len(jobs))
		hidden := 0
		for _, j := range jobs {
			wire := accountingFromJob(j, now)
			if p.Kind == KindUser && j.User != p.Name {
				redactAccounting(&wire)
				hidden++
			}
			resp.Jobs = append(resp.Jobs, wire)
		}
		s.countRedacted("accounting", hidden)
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// redactAccounting hides another user's job name, comment and workdir.
func redactAccounting(a *AccountingJob) {
	a.Name = ""
	a.Comment = ""
	a.WorkDir = ""
	a.Redacted = true
}

// handleNodes serves every node's detail block.
func (s *Server) handleNodes(r *http.Request, _ Principal) ([]byte, error) {
	var resp NodesResponse
	_, err := s.cluster.Ctl.Handle(r.Context(), "REQUEST_NODE_INFO", func() (string, error) {
		nodes := s.cluster.Ctl.Nodes()
		resp.Nodes = make([]Node, 0, len(nodes))
		for _, n := range nodes {
			resp.Nodes = append(resp.Nodes, nodeFromState(n))
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// handleNode serves one node.
func (s *Server) handleNode(r *http.Request, _ Principal) ([]byte, error) {
	name := r.PathValue("name")
	var wire Node
	_, err := s.cluster.Ctl.Handle(r.Context(), "REQUEST_NODE_INFO_SINGLE", func() (string, error) {
		n := s.cluster.Ctl.Node(name)
		if n == nil {
			return "", fmt.Errorf("%w: node %q", errNotFound, name)
		}
		wire = nodeFromState(n)
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(wire)
}

// handlePartitions serves per-partition utilization (the sinfo surface).
func (s *Server) handlePartitions(r *http.Request, _ Principal) ([]byte, error) {
	var resp PartitionsResponse
	_, err := s.cluster.Ctl.Handle(r.Context(), "REQUEST_PARTITION_INFO", func() (string, error) {
		utils := s.cluster.Ctl.Utilization()
		resp.Partitions = make([]Partition, 0, len(utils))
		for _, u := range utils {
			resp.Partitions = append(resp.Partitions, partitionFromUtil(u))
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// handleDiag serves both daemons' statistics (the sdiag surface). Both
// daemons must answer; either being down is a 503 like the CLI path.
func (s *Server) handleDiag(r *http.Request, _ Principal) ([]byte, error) {
	var resp DiagResponse
	_, err := s.cluster.Ctl.Handle(r.Context(), "REQUEST_STATS_INFO", func() (string, error) {
		resp.Slurmctld = DaemonDiag{
			Name:      "slurmctld",
			Records:   int64(s.cluster.Ctl.ActiveJobCount()),
			RPCCounts: rpcCounts(s.cluster.Ctl.Stats().Snapshot()),
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	_, err = s.cluster.DBD.Handle(r.Context(), "DBD_GET_STATS", func() (string, error) {
		resp.Slurmdbd = DaemonDiag{
			Name:      "slurmdbd",
			Records:   int64(s.cluster.DBD.JobCount()),
			RPCCounts: rpcCounts(s.cluster.DBD.Stats().Snapshot()),
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

func rpcCounts(snap map[slurm.RPCKind]int64) map[string]int64 {
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		out[string(k)] = v
	}
	return out
}

// --- metrics ----------------------------------------------------------------

// Stats is a snapshot of the server's request accounting.
type Stats struct {
	// Requests counts responses by {endpoint, status code}.
	Requests map[[2]string]int64
	// ScopeDenied counts 403s by {endpoint, principal kind}.
	ScopeDenied map[[2]string]int64
	// Redacted counts records redacted for user tokens, by endpoint.
	Redacted map[string]int64
}

// Stats returns a copy of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Requests:    make(map[[2]string]int64, len(s.requests)),
		ScopeDenied: make(map[[2]string]int64, len(s.scopeDenied)),
		Redacted:    make(map[string]int64, len(s.redacted)),
	}
	for k, v := range s.requests {
		st.Requests[k] = v
	}
	for k, v := range s.scopeDenied {
		st.ScopeDenied[k] = v
	}
	for k, v := range s.redacted {
		st.Redacted[k] = v
	}
	return st
}

// CacheStats exposes the rendered-response cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// RegisterMetrics exposes the server's counters on reg, so a dashboard
// embedding the REST backend surfaces scope denials and redactions next to
// its own request metrics — the audit signal the negative scope tests pin.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.CollectorFunc("ooddash_slurmrest_requests_total", obs.KindCounter,
		"REST backend responses, by endpoint and status code.", func() []obs.Sample {
			st := s.Stats()
			return pairSamples(st.Requests, "endpoint", "status")
		})
	reg.CollectorFunc("ooddash_slurmrest_scope_denied_total", obs.KindCounter,
		"REST requests denied by token scope, by endpoint and principal kind.", func() []obs.Sample {
			st := s.Stats()
			return pairSamples(st.ScopeDenied, "endpoint", "kind")
		})
	reg.CollectorFunc("ooddash_slurmrest_redacted_total", obs.KindCounter,
		"Records redacted from REST responses for user tokens, by endpoint.", func() []obs.Sample {
			st := s.Stats()
			keys := make([]string, 0, len(st.Redacted))
			for k := range st.Redacted {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]obs.Sample, 0, len(keys))
			for _, k := range keys {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "endpoint", Value: k}},
					Value:  float64(st.Redacted[k]),
				})
			}
			return out
		})
}

// pairSamples renders a {a,b}→count map as sorted labelled samples.
func pairSamples(m map[[2]string]int64, aName, bName string) []obs.Sample {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]obs.Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, obs.Sample{
			Labels: []obs.Label{{Name: aName, Value: k[0]}, {Name: bName, Value: k[1]}},
			Value:  float64(m[k]),
		})
	}
	return out
}
