package slurmrest

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// TestClientRevalidation pins the decode-once contract: a repeated query is
// served as a 304 and reuses the decoded envelope, callers own the rows
// they get back, and a data change invalidates the reuse.
func TestClientRevalidation(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	c := NewClient(e.server, tokStaff)
	ctx := context.Background()
	opts := slurmcli.SqueueOptions{AllStates: true}

	first, err := c.Squeue(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Squeue(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("revalidated rows differ from fresh rows")
	}
	st := e.server.Stats()
	if got := st.Requests[[2]string{"jobs", "200"}]; got != 1 {
		t.Errorf("jobs 200 count = %d, want 1 (second fetch should revalidate)", got)
	}
	if got := st.Requests[[2]string{"jobs", "304"}]; got != 1 {
		t.Errorf("jobs 304 count = %d, want 1", got)
	}

	// Callers own their rows: mutating one reload must not bleed into the
	// next one served from the cached envelope.
	second[0].Name = "mutated-by-caller"
	third, err := c.Squeue(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Errorf("rows after caller mutation differ from original")
	}

	// Same for maps inside partition rows.
	parts, err := c.Sinfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := parts[0].NodeStates["IDLE"]
	parts[0].NodeStates["IDLE"] = before + 100
	parts2, err := c.Sinfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := parts2[0].NodeStates["IDLE"]; got != before {
		t.Errorf("NodeStates[IDLE] = %d after caller mutation, want %d", got, before)
	}

	// New data changes the ETag: the next fetch is a full 200 with the new
	// row present.
	if _, err := e.cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "fresh", User: "alice", Account: "lab-a", Partition: "cpu", QOS: "normal",
		TimeLimit: time.Hour, ReqTRES: slurm.TRES{Nodes: 1, CPUs: 1, MemMB: 1024},
		Profile: slurm.UsageProfile{CPUUtilization: 0.5, MemUtilization: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	e.cluster.Ctl.Tick()
	fourth, err := c.Squeue(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fourth) != len(first)+1 {
		t.Errorf("after submit: %d rows, want %d", len(fourth), len(first)+1)
	}
	st = e.server.Stats()
	if got := st.Requests[[2]string{"jobs", "200"}]; got != 2 {
		t.Errorf("jobs 200 count = %d, want 2 after data change", got)
	}

	// NoConditional turns the behavior off entirely: every request is a
	// full 200 (the A/B bench's cold side).
	cold := NewClient(e.server, tokStaff)
	cold.NoConditional = true
	for i := 0; i < 2; i++ {
		if _, err := cold.Squeue(ctx, opts); err != nil {
			t.Fatal(err)
		}
	}
	st2 := e.server.Stats()
	if got := st2.Requests[[2]string{"jobs", "200"}] - st.Requests[[2]string{"jobs", "200"}]; got != 2 {
		t.Errorf("cold client 200s = %d, want 2", got)
	}
	if got := st2.Requests[[2]string{"jobs", "304"}]; got != st.Requests[[2]string{"jobs", "304"}] {
		t.Errorf("cold client produced 304s")
	}
}
