package slurmrest

import (
	"math"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// Wire types: the JSON shapes the REST API serves. The server builds them
// directly from the daemons' state structs — no text formatting — and the
// client decodes them back into internal/slurmcli's typed rows, so both
// backends hand the dashboard identical values.
//
// Where the CLI pipeline loses precision (timestamps and durations print
// at second granularity, CPU load at two decimals, GPU utilization at one),
// the builders here apply the same truncation, keeping the two backends
// byte-equivalent — the property the equivalence test pins, and what makes
// the A/B benchmark a pure transport/encoding comparison.

// Job is one live-queue record (/slurm/v1/jobs).
type Job struct {
	JobID       string `json:"job_id"` // display ID; "1234_7" for array tasks
	Name        string `json:"name"`
	User        string `json:"user_name"`
	Account     string `json:"account"`
	Partition   string `json:"partition"`
	QOS         string `json:"qos"`
	State       string `json:"job_state"`
	Reason      string `json:"state_reason"`
	SubmitTime  int64  `json:"submit_time"` // unix seconds; 0 = unset
	StartTime   int64  `json:"start_time"`
	ElapsedSecs int64  `json:"elapsed_seconds"`
	LimitSecs   int64  `json:"time_limit_seconds"`
	Nodes       int    `json:"node_count"`
	CPUs        int    `json:"cpus"`
	MemMB       int64  `json:"memory_mb"`
	GPUsPerNode int    `json:"gpus_per_node"`
	NodeList    string `json:"nodes"` // node range, or "(Reason)" when pending
	// Redacted marks a record whose identifying fields were hidden because
	// the requesting token may not view this job in full.
	Redacted bool `json:"redacted,omitempty"`
}

// JobsResponse is the /slurm/v1/jobs envelope.
type JobsResponse struct {
	Jobs []Job `json:"jobs"`
}

// unixOrZero converts a timestamp to wire form at the CLI's second
// granularity; the zero time stays 0 (squeue's "Unknown").
func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

// timeFromUnix is the inverse of unixOrZero, always UTC like ParseTime.
func timeFromUnix(s int64) time.Time {
	if s == 0 {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}

// jobFromLive builds a queue record from a controller job, mirroring the
// squeue format verbs the typed CLI client requests (squeueParseFormat).
func jobFromLive(j *slurm.Job, now time.Time) Job {
	nodes := j.ReqTRES.Nodes
	if j.AllocTRES.Nodes > 0 {
		nodes = j.AllocTRES.Nodes
	}
	cpus := j.ReqTRES.CPUs
	if j.AllocTRES.CPUs > 0 {
		cpus = j.AllocTRES.CPUs
	}
	nodeList := slurm.NodeNameRange(j.Nodes)
	if j.State == slurm.StatePending {
		nodeList = "(" + string(j.Reason) + ")"
	}
	return Job{
		JobID:       j.DisplayID(),
		Name:        j.Name,
		User:        j.User,
		Account:     j.Account,
		Partition:   j.Partition,
		QOS:         j.QOS,
		State:       string(j.State),
		Reason:      string(j.Reason),
		SubmitTime:  unixOrZero(j.SubmitTime),
		StartTime:   unixOrZero(j.StartTime),
		ElapsedSecs: int64(j.Elapsed(now) / time.Second),
		LimitSecs:   int64(j.TimeLimit / time.Second),
		Nodes:       nodes,
		CPUs:        cpus,
		MemMB:       j.ReqTRES.MemMB,
		GPUsPerNode: j.ReqTRES.GPUs,
		NodeList:    nodeList,
	}
}

// QueueEntry converts the wire record to the CLI client's row type.
func (j *Job) QueueEntry() slurmcli.QueueEntry {
	return slurmcli.QueueEntry{
		JobID:       j.JobID,
		Name:        j.Name,
		User:        j.User,
		Account:     j.Account,
		Partition:   j.Partition,
		QOS:         j.QOS,
		State:       slurm.JobState(j.State),
		Reason:      slurm.PendingReason(j.Reason),
		SubmitTime:  timeFromUnix(j.SubmitTime),
		StartTime:   timeFromUnix(j.StartTime),
		Elapsed:     time.Duration(j.ElapsedSecs) * time.Second,
		TimeLimit:   time.Duration(j.LimitSecs) * time.Second,
		Nodes:       j.Nodes,
		CPUs:        j.CPUs,
		MemMB:       j.MemMB,
		GPUsPerNode: j.GPUsPerNode,
		NodeList:    j.NodeList,
	}
}

// AccountingJob is one accounting record (/slurm/v1/accounting).
type AccountingJob struct {
	RawID       int64   `json:"job_id"`
	JobID       string  `json:"job_id_display"`
	Name        string  `json:"name"`
	User        string  `json:"user_name"`
	Account     string  `json:"account"`
	Partition   string  `json:"partition"`
	QOS         string  `json:"qos"`
	State       string  `json:"job_state"`
	Reason      string  `json:"state_reason"`
	SubmitTime  int64   `json:"submit_time"`
	StartTime   int64   `json:"start_time"`
	EndTime     int64   `json:"end_time"`
	ElapsedSecs int64   `json:"elapsed_seconds"`
	LimitSecs   int64   `json:"time_limit_seconds"`
	ReqCPUs     int     `json:"required_cpus"`
	AllocCPUs   int     `json:"allocated_cpus"`
	ReqMemMB    int64   `json:"required_memory_mb"`
	AllocTRES   string  `json:"allocated_tres"`
	NodeList    string  `json:"nodes"`
	ExitCode    int     `json:"exit_code"`
	MaxRSSMB    int64   `json:"max_rss_mb"`
	TotalCPUSec int64   `json:"total_cpu_seconds"`
	GPUUtil     float64 `json:"gpu_utilization_percent"` // -1 when not measured
	Comment     string  `json:"comment,omitempty"`
	WorkDir     string  `json:"working_directory,omitempty"`
	Redacted    bool    `json:"redacted,omitempty"`
}

// AccountingResponse is the /slurm/v1/accounting envelope.
type AccountingResponse struct {
	Jobs []AccountingJob `json:"jobs"`
}

// accountingFromJob builds an accounting record from a DBD job, mirroring
// the sacct field list the typed CLI client requests (sacctQueryFields).
func accountingFromJob(j *slurm.Job, now time.Time) AccountingJob {
	nodeList := "None assigned"
	if len(j.Nodes) > 0 {
		nodeList = slurm.NodeNameRange(j.Nodes)
	}
	var maxRSS int64
	if !j.StartTime.IsZero() {
		maxRSS = j.MaxRSSMB()
	}
	gpuUtil := -1.0
	if j.AllocTRES.GPUs > 0 && !j.StartTime.IsZero() {
		// The CLI prints gres/gpuutil at one decimal; match its rounding.
		gpuUtil = math.Round(j.Profile.GPUUtilization*1000) / 10
	}
	comment := ""
	if j.InteractiveApp != "" {
		comment = "ood:app=" + j.InteractiveApp + ";session=" + j.SessionID
	}
	return AccountingJob{
		RawID:       int64(j.ID),
		JobID:       j.DisplayID(),
		Name:        j.Name,
		User:        j.User,
		Account:     j.Account,
		Partition:   j.Partition,
		QOS:         j.QOS,
		State:       string(j.State),
		Reason:      string(j.Reason),
		SubmitTime:  unixOrZero(j.SubmitTime),
		StartTime:   unixOrZero(j.StartTime),
		EndTime:     unixOrZero(j.EndTime),
		ElapsedSecs: int64(j.Elapsed(now) / time.Second),
		LimitSecs:   int64(j.TimeLimit / time.Second),
		ReqCPUs:     j.ReqTRES.CPUs,
		AllocCPUs:   j.AllocTRES.CPUs,
		ReqMemMB:    j.ReqTRES.MemMB,
		AllocTRES:   j.AllocTRES.String(),
		NodeList:    nodeList,
		ExitCode:    j.ExitCode,
		MaxRSSMB:    maxRSS,
		TotalCPUSec: int64(j.CPUTimeUsed(now) / time.Second),
		GPUUtil:     gpuUtil,
		Comment:     comment,
		WorkDir:     j.WorkDir,
	}
}

// SacctRow converts the wire record to the CLI client's row type.
func (a *AccountingJob) SacctRow() (slurmcli.SacctRow, error) {
	tres, err := slurm.ParseTRES(a.AllocTRES)
	if err != nil {
		return slurmcli.SacctRow{}, err
	}
	return slurmcli.SacctRow{
		RawID:          slurm.JobID(a.RawID),
		JobID:          a.JobID,
		Name:           a.Name,
		User:           a.User,
		Account:        a.Account,
		Partition:      a.Partition,
		QOS:            a.QOS,
		State:          slurm.JobState(a.State),
		Reason:         slurm.PendingReason(a.Reason),
		SubmitTime:     timeFromUnix(a.SubmitTime),
		StartTime:      timeFromUnix(a.StartTime),
		EndTime:        timeFromUnix(a.EndTime),
		Elapsed:        time.Duration(a.ElapsedSecs) * time.Second,
		TimeLimit:      time.Duration(a.LimitSecs) * time.Second,
		ReqCPUs:        a.ReqCPUs,
		AllocCPUs:      a.AllocCPUs,
		ReqMemMB:       a.ReqMemMB,
		AllocTRES:      tres,
		NodeList:       a.NodeList,
		ExitCode:       a.ExitCode,
		MaxRSSMB:       a.MaxRSSMB,
		TotalCPU:       time.Duration(a.TotalCPUSec) * time.Second,
		GPUUtilPercent: a.GPUUtil,
		Comment:        a.Comment,
		WorkDir:        a.WorkDir,
	}, nil
}

// JobDetail is the full single-job view (/slurm/v1/jobs/{id}).
type JobDetail struct {
	ID           int64  `json:"job_id"`
	Name         string `json:"name"`
	User         string `json:"user_name"`
	Account      string `json:"account"`
	QOS          string `json:"qos"`
	State        string `json:"job_state"`
	Reason       string `json:"state_reason"`
	ExitCode     int    `json:"exit_code"`
	SubmitTime   int64  `json:"submit_time"`
	EligibleTime int64  `json:"eligible_time"`
	StartTime    int64  `json:"start_time"`
	EndTime      int64  `json:"end_time"`
	RunSecs      int64  `json:"run_time_seconds"`
	LimitSecs    int64  `json:"time_limit_seconds"`
	Partition    string `json:"partition"`
	Priority     int64  `json:"priority"`
	NodeList     string `json:"nodes"`
	NumNodes     int    `json:"node_count"`
	NumCPUs      int    `json:"cpus"`
	ReqTRES      string `json:"required_tres"`
	AllocTRES    string `json:"allocated_tres"`
	MemMB        int64  `json:"memory_mb"`
	Constraint   string `json:"constraints,omitempty"`
	WorkDir      string `json:"working_directory,omitempty"`
	StdoutPath   string `json:"standard_output,omitempty"`
	StderrPath   string `json:"standard_error,omitempty"`
	ArrayJobID   int64  `json:"array_job_id,omitempty"`
	ArrayTaskID  int    `json:"array_task_id,omitempty"`
	Comment      string `json:"comment,omitempty"`
	Redacted     bool   `json:"redacted,omitempty"`
}

// detailFromJob builds the single-job view, mirroring scontrol show job.
func detailFromJob(j *slurm.Job, now time.Time) JobDetail {
	comment := ""
	if j.InteractiveApp != "" {
		comment = "ood:app=" + j.InteractiveApp + ";session=" + j.SessionID
	}
	return JobDetail{
		ID:           int64(j.ID),
		Name:         j.Name,
		User:         j.User,
		Account:      j.Account,
		QOS:          j.QOS,
		State:        string(j.State),
		Reason:       string(j.Reason),
		ExitCode:     j.ExitCode,
		SubmitTime:   unixOrZero(j.SubmitTime),
		EligibleTime: unixOrZero(j.EligibleTime),
		StartTime:    unixOrZero(j.StartTime),
		EndTime:      unixOrZero(j.EndTime),
		RunSecs:      int64(j.Elapsed(now) / time.Second),
		LimitSecs:    int64(j.TimeLimit / time.Second),
		Partition:    j.Partition,
		Priority:     j.Priority,
		NodeList:     slurm.NodeNameRange(j.Nodes),
		NumNodes:     j.ReqTRES.Nodes,
		NumCPUs:      j.ReqTRES.CPUs,
		ReqTRES:      j.ReqTRES.String(),
		AllocTRES:    j.AllocTRES.String(),
		MemMB:        j.ReqTRES.MemMB,
		Constraint:   j.Constraint,
		WorkDir:      j.WorkDir,
		StdoutPath:   j.StdoutPath,
		StderrPath:   j.StderrPath,
		ArrayJobID:   int64(j.ArrayJobID),
		ArrayTaskID:  j.ArrayTaskID,
		Comment:      comment,
	}
}

// CLIDetail converts the wire record to the CLI client's detail type.
func (d *JobDetail) CLIDetail() (*slurmcli.JobDetail, error) {
	req, err := slurm.ParseTRES(d.ReqTRES)
	if err != nil {
		return nil, err
	}
	alloc, err := slurm.ParseTRES(d.AllocTRES)
	if err != nil {
		return nil, err
	}
	return &slurmcli.JobDetail{
		ID:           slurm.JobID(d.ID),
		Name:         d.Name,
		User:         d.User,
		Account:      d.Account,
		QOS:          d.QOS,
		State:        slurm.JobState(d.State),
		Reason:       slurm.PendingReason(d.Reason),
		ExitCode:     d.ExitCode,
		SubmitTime:   timeFromUnix(d.SubmitTime),
		EligibleTime: timeFromUnix(d.EligibleTime),
		StartTime:    timeFromUnix(d.StartTime),
		EndTime:      timeFromUnix(d.EndTime),
		RunTime:      time.Duration(d.RunSecs) * time.Second,
		TimeLimit:    time.Duration(d.LimitSecs) * time.Second,
		Partition:    d.Partition,
		Priority:     d.Priority,
		NodeList:     d.NodeList,
		NumNodes:     d.NumNodes,
		NumCPUs:      d.NumCPUs,
		ReqTRES:      req,
		AllocTRES:    alloc,
		MemMB:        d.MemMB,
		Constraint:   d.Constraint,
		WorkDir:      d.WorkDir,
		StdoutPath:   d.StdoutPath,
		StderrPath:   d.StderrPath,
		ArrayJobID:   slurm.JobID(d.ArrayJobID),
		ArrayTaskID:  d.ArrayTaskID,
		Comment:      d.Comment,
	}, nil
}

// Node is one node record (/slurm/v1/nodes).
type Node struct {
	Name       string   `json:"name"`
	Arch       string   `json:"architecture"`
	OS         string   `json:"operating_system"`
	State      string   `json:"state"`
	Partitions []string `json:"partitions"`
	Features   []string `json:"features"`
	CPUTotal   int      `json:"cpus"`
	CPUAlloc   int      `json:"alloc_cpus"`
	CPULoad    float64  `json:"cpu_load"`
	MemMB      int64    `json:"real_memory_mb"`
	AllocMemMB int64    `json:"alloc_memory_mb"`
	GPUTotal   int      `json:"gpus"`
	GPUAlloc   int      `json:"alloc_gpus"`
	GPUType    string   `json:"gpu_type,omitempty"`
	BootTime   int64    `json:"boot_time"`
	LastBusy   int64    `json:"last_busy"`
	Reason     string   `json:"reason,omitempty"`
}

// NodesResponse is the /slurm/v1/nodes envelope.
type NodesResponse struct {
	Nodes []Node `json:"nodes"`
}

// nodeFromState builds a node record, mirroring scontrol show node (CPU
// load at the CLI's two-decimal precision).
func nodeFromState(n *slurm.Node) Node {
	return Node{
		Name:       n.Name,
		Arch:       n.Arch,
		OS:         n.OS,
		State:      string(n.EffectiveState()),
		Partitions: n.Partitions,
		Features:   n.Features,
		CPUTotal:   n.CPUs,
		CPUAlloc:   n.Alloc.CPUs,
		CPULoad:    math.Round(n.CPULoad*100) / 100,
		MemMB:      n.MemMB,
		AllocMemMB: n.Alloc.MemMB,
		GPUTotal:   n.GPUs,
		GPUAlloc:   n.Alloc.GPUs,
		GPUType:    n.GPUType,
		BootTime:   unixOrZero(n.BootTime),
		LastBusy:   unixOrZero(n.LastBusy),
		Reason:     n.StateReason,
	}
}

// NodeDetail converts the wire record to the CLI client's detail type.
func (n *Node) NodeDetail() *slurmcli.NodeDetail {
	return &slurmcli.NodeDetail{
		Name:       n.Name,
		Arch:       n.Arch,
		OS:         n.OS,
		State:      slurm.NodeState(n.State),
		Partitions: n.Partitions,
		Features:   n.Features,
		CPUTotal:   n.CPUTotal,
		CPUAlloc:   n.CPUAlloc,
		CPULoad:    n.CPULoad,
		MemMB:      n.MemMB,
		AllocMemMB: n.AllocMemMB,
		GPUTotal:   n.GPUTotal,
		GPUAlloc:   n.GPUAlloc,
		GPUType:    n.GPUType,
		BootTime:   timeFromUnix(n.BootTime),
		LastBusy:   timeFromUnix(n.LastBusy),
		Reason:     n.Reason,
	}
}

// Partition is one partition utilization record (/slurm/v1/partitions) —
// the same shape sinfo --json serves.
type Partition struct {
	Name        string         `json:"name"`
	State       string         `json:"state"`
	TotalNodes  int            `json:"total_nodes"`
	TotalCPUs   int            `json:"total_cpus"`
	AllocCPUs   int            `json:"alloc_cpus"`
	TotalGPUs   int            `json:"total_gpus"`
	AllocGPUs   int            `json:"alloc_gpus"`
	PendingJobs int            `json:"pending_jobs"`
	RunningJobs int            `json:"running_jobs"`
	NodeStates  map[string]int `json:"node_states"`
}

// PartitionsResponse is the /slurm/v1/partitions envelope.
type PartitionsResponse struct {
	Partitions []Partition `json:"partitions"`
}

// partitionFromUtil builds a partition record from the controller's
// utilization summary.
func partitionFromUtil(u slurm.PartitionUtilization) Partition {
	states := make(map[string]int, len(u.NodesByState))
	for st, n := range u.NodesByState {
		states[string(st)] = n
	}
	return Partition{
		Name:        u.Name,
		State:       u.State,
		TotalNodes:  u.TotalNodes,
		TotalCPUs:   u.TotalCPUs,
		AllocCPUs:   u.AllocCPUs,
		TotalGPUs:   u.TotalGPUs,
		AllocGPUs:   u.AllocGPUs,
		PendingJobs: u.PendingJobs,
		RunningJobs: u.RunningJobs,
		NodeStates:  states,
	}
}

// PartitionStatus converts the wire record to the CLI client's type.
func (p *Partition) PartitionStatus() slurmcli.PartitionStatus {
	// Copy the map: the receiver may be a revalidation-cached envelope the
	// client hands to many callers, and callers own their rows.
	states := make(map[string]int, len(p.NodeStates))
	for k, v := range p.NodeStates {
		states[k] = v
	}
	return slurmcli.PartitionStatus{
		Name:        p.Name,
		State:       p.State,
		TotalNodes:  p.TotalNodes,
		TotalCPUs:   p.TotalCPUs,
		AllocCPUs:   p.AllocCPUs,
		TotalGPUs:   p.TotalGPUs,
		AllocGPUs:   p.AllocGPUs,
		PendingJobs: p.PendingJobs,
		RunningJobs: p.RunningJobs,
		NodeStates:  states,
	}
}

// DaemonDiag is one daemon's statistics section (/slurm/v1/diag).
type DaemonDiag struct {
	Name      string           `json:"name"`
	Records   int64            `json:"records"`
	RPCCounts map[string]int64 `json:"rpc_counts"`
}

// DiagResponse is the /slurm/v1/diag envelope.
type DiagResponse struct {
	Slurmctld DaemonDiag `json:"slurmctld"`
	Slurmdbd  DaemonDiag `json:"slurmdbd"`
}

// CLIDiag converts the wire record to the CLI client's type.
func (d *DaemonDiag) CLIDiag() slurmcli.DaemonDiag {
	counts := make(map[string]int64, len(d.RPCCounts))
	for k, v := range d.RPCCounts {
		counts[k] = v
	}
	return slurmcli.DaemonDiag{Name: d.Name, Records: d.Records, RPCCounts: counts}
}
