package slurmrest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/trace"
)

// Client calls a slurmrest server and decodes the wire JSON back into the
// same typed rows internal/slurmcli produces, so the dashboard's routes can
// swap between the two backends without touching their data handling.
//
// Transport is an http.Handler invoked in-process — the same seam
// httptest uses — so the simulated REST daemon needs no socket, and the
// loadgen A/B harness measures fill cost without network noise.
//
// The client revalidates: it remembers each URL's ETag together with the
// decoded envelope, sends If-None-Match on the next request, and on 304
// reuses the decoded value — the decode-once counterpart of the server's
// encode-once rendered cache, and where the JSON backend wins its steady
// state (decoding a bulk response costs more CPU than parsing the CLI's
// text, so skipping it when nothing changed is the whole game). The cache
// never crosses principals: it lives inside a Client bound to one token.
type Client struct {
	// Handler receives every request (typically a *Server).
	Handler http.Handler
	// Token is sent as the bearer token on every request.
	Token string
	// Observe, when set, receives one call per request with the endpoint
	// name, owning daemon, wall-clock latency, and error — mirroring
	// slurmcli.MeteredRunner so both backends feed the same metrics.
	Observe func(endpoint, daemon string, d time.Duration, err error)
	// NoConditional disables If-None-Match revalidation, forcing a full
	// body and decode on every request (the A/B bench's cold-fill side).
	NoConditional bool

	mu   sync.Mutex
	cond map[string]condEntry
}

// condEntry is one URL's revalidation state: the ETag the server sent and
// the envelope decoded from that response. The envelope is shared across
// 304s but never mutated — converters build fresh rows from it.
type condEntry struct {
	etag string
	val  any
}

// condMax bounds the revalidation cache. The dashboard's URL space is
// almost fixed, but accounting windows move with the clock, so stale keys
// accumulate; past the cap an arbitrary entry is dropped (any victim works:
// a miss just costs one full decode).
const condMax = 256

// NewClient builds a client over the in-process handler h.
func NewClient(h http.Handler, token string) *Client {
	return &Client{Handler: h, Token: token}
}

// daemonFor attributes an endpoint to the daemon that serves it, matching
// slurmcli.DaemonFor's split for the equivalent commands.
func daemonFor(endpoint string) string {
	if endpoint == "accounting" || endpoint == "rollups" {
		return "slurmdbd"
	}
	return "slurmctld"
}

// responseRecorder is the minimal ResponseWriter the in-process transport
// needs: status, headers, body.
type responseRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

// get performs one GET against the handler, mapping HTTP failures to
// errors: 503 wraps slurm.ErrUnavailable so the dashboard's resilience
// layer (cache stale-serving, breaker, degraded banners) treats a REST
// outage exactly like a CLI one.
func (c *Client) get(ctx context.Context, endpoint, path string, q url.Values, out any) error {
	start := time.Now()
	err := c.doGet(ctx, endpoint, path, q, out)
	if c.Observe != nil {
		c.Observe(endpoint, daemonFor(endpoint), time.Since(start), err)
	}
	return err
}

func (c *Client) doGet(ctx context.Context, endpoint, path string, q url.Values, out any) error {
	u := path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var sp *trace.Span
	if trace.SpanFromContext(ctx) != nil {
		ctx, sp = trace.StartSpan(ctx, "slurmrest."+endpoint)
		sp.SetAttr("path", u)
		sp.SetAttr("daemon", daemonFor(endpoint))
		defer sp.End()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.Token)
	var prior condEntry
	if !c.NoConditional {
		c.mu.Lock()
		prior = c.cond[u]
		c.mu.Unlock()
		if prior.etag != "" {
			req.Header.Set("If-None-Match", prior.etag)
		}
	}
	rec := &responseRecorder{header: make(http.Header)}
	c.Handler.ServeHTTP(rec, req)
	if sp != nil {
		sp.SetAttrInt("status", rec.status)
	}
	if rec.status == http.StatusNotModified && prior.etag != "" {
		reflect.ValueOf(out).Elem().Set(reflect.ValueOf(prior.val))
		return nil
	}
	if rec.status != http.StatusOK {
		err := statusError(endpoint, rec.status, rec.body.Bytes())
		if sp != nil {
			sp.SetAttr("error", err.Error())
		}
		return err
	}
	if err := json.Unmarshal(rec.body.Bytes(), out); err != nil {
		return err
	}
	if tag := rec.header.Get("ETag"); tag != "" && !c.NoConditional {
		c.mu.Lock()
		if c.cond == nil {
			c.cond = make(map[string]condEntry)
		}
		if len(c.cond) >= condMax {
			for k := range c.cond {
				delete(c.cond, k)
				break
			}
		}
		c.cond[u] = condEntry{etag: tag, val: reflect.ValueOf(out).Elem().Interface()}
		c.mu.Unlock()
	}
	return nil
}

// statusError converts a non-200 response into the error class the rest of
// the stack expects.
func statusError(endpoint string, status int, body []byte) error {
	msg := ""
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && len(ae.Errors) > 0 {
		msg = ae.Errors[0].Error
	}
	switch status {
	case http.StatusServiceUnavailable:
		return fmt.Errorf("slurmrest: %s: %s: %w", endpoint, msg, slurm.ErrUnavailable)
	case http.StatusUnauthorized, http.StatusForbidden:
		return fmt.Errorf("slurmrest: %s: status %d: %s", endpoint, status, msg)
	default:
		return fmt.Errorf("slurmrest: %s: status %d: %s", endpoint, status, msg)
	}
}

// Squeue mirrors slurmcli.Squeue over the REST backend.
func (c *Client) Squeue(ctx context.Context, opts slurmcli.SqueueOptions) ([]slurmcli.QueueEntry, error) {
	q := url.Values{}
	if opts.User != "" {
		q.Set("user", opts.User)
	}
	if opts.Account != "" {
		q.Set("account", opts.Account)
	}
	if opts.Partition != "" {
		q.Set("partition", opts.Partition)
	}
	switch {
	case opts.AllStates:
		q.Set("all_states", "1")
	default:
		for _, st := range opts.States {
			q.Add("state", string(st))
		}
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	var resp JobsResponse
	if err := c.get(ctx, "jobs", "/slurm/v1/jobs", q, &resp); err != nil {
		return nil, err
	}
	rows := make([]slurmcli.QueueEntry, len(resp.Jobs))
	for i := range resp.Jobs {
		rows[i] = resp.Jobs[i].QueueEntry()
	}
	return rows, nil
}

// Sacct mirrors slurmcli.Sacct over the REST backend.
func (c *Client) Sacct(ctx context.Context, opts slurmcli.SacctOptions) ([]slurmcli.SacctRow, error) {
	q := url.Values{}
	if opts.User != "" {
		q.Set("user", opts.User)
	}
	if len(opts.Accounts) > 0 {
		q.Set("account", strings.Join(opts.Accounts, ","))
	}
	for _, st := range opts.States {
		q.Add("state", string(st))
	}
	if !opts.Start.IsZero() {
		q.Set("start_time", strconv.FormatInt(opts.Start.Unix(), 10))
	}
	if !opts.End.IsZero() {
		q.Set("end_time", strconv.FormatInt(opts.End.Unix(), 10))
	}
	if opts.Partition != "" {
		q.Set("partition", opts.Partition)
	}
	for _, id := range opts.JobIDs {
		q.Add("job_id", strconv.FormatInt(int64(id), 10))
	}
	if opts.ArrayJob != "" {
		q.Set("array_job", opts.ArrayJob)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	var resp AccountingResponse
	if err := c.get(ctx, "accounting", "/slurm/v1/accounting", q, &resp); err != nil {
		return nil, err
	}
	rows := make([]slurmcli.SacctRow, 0, len(resp.Jobs))
	for i := range resp.Jobs {
		row, err := resp.Jobs[i].SacctRow()
		if err != nil {
			return nil, fmt.Errorf("slurmrest: accounting row %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Sinfo mirrors slurmcli.Sinfo over the REST backend.
func (c *Client) Sinfo(ctx context.Context) ([]slurmcli.PartitionStatus, error) {
	var resp PartitionsResponse
	if err := c.get(ctx, "partitions", "/slurm/v1/partitions", nil, &resp); err != nil {
		return nil, err
	}
	rows := make([]slurmcli.PartitionStatus, len(resp.Partitions))
	for i := range resp.Partitions {
		rows[i] = resp.Partitions[i].PartitionStatus()
	}
	return rows, nil
}

// ShowAllNodes mirrors slurmcli.ShowAllNodes over the REST backend.
func (c *Client) ShowAllNodes(ctx context.Context) ([]*slurmcli.NodeDetail, error) {
	var resp NodesResponse
	if err := c.get(ctx, "nodes", "/slurm/v1/nodes", nil, &resp); err != nil {
		return nil, err
	}
	rows := make([]*slurmcli.NodeDetail, len(resp.Nodes))
	for i := range resp.Nodes {
		rows[i] = resp.Nodes[i].NodeDetail()
	}
	return rows, nil
}

// ShowNode mirrors slurmcli.ShowNode over the REST backend.
func (c *Client) ShowNode(ctx context.Context, name string) (*slurmcli.NodeDetail, error) {
	var wire Node
	if err := c.get(ctx, "node", "/slurm/v1/nodes/"+url.PathEscape(name), nil, &wire); err != nil {
		return nil, err
	}
	return wire.NodeDetail(), nil
}

// ShowJob mirrors slurmcli.ShowJob over the REST backend (including the
// server-side fallback to accounting for aged-out jobs).
func (c *Client) ShowJob(ctx context.Context, id slurm.JobID) (*slurmcli.JobDetail, error) {
	var wire JobDetail
	path := "/slurm/v1/jobs/" + strconv.FormatInt(int64(id), 10)
	if err := c.get(ctx, "job", path, nil, &wire); err != nil {
		return nil, err
	}
	return wire.CLIDetail()
}

// Sdiag mirrors slurmcli.Sdiag over the REST backend.
func (c *Client) Sdiag(ctx context.Context) (ctld, dbd slurmcli.DaemonDiag, err error) {
	var resp DiagResponse
	if err := c.get(ctx, "diag", "/slurm/v1/diag", nil, &resp); err != nil {
		return ctld, dbd, err
	}
	return resp.Slurmctld.CLIDiag(), resp.Slurmdbd.CLIDiag(), nil
}
