// Package-level A/B microbenchmarks behind `make bench-go`: the CLI
// parse-text path vs the REST decode-JSON path over the same accounting
// query, plus the revalidating steady state. cmd/loadgen -backend-ab is the
// gated harness; these give `go test -bench` visibility into the same
// comparison.
package slurmrest_test

import (
	"context"
	"testing"
	"time"

	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
	"ooddash/internal/workload"
)

func benchStack(b *testing.B) (*workload.Env, *slurmrest.Client, slurmcli.SacctOptions) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		b.Fatal(err)
	}
	if err := env.ProvisionREST(slurmrest.Options{}); err != nil {
		b.Fatal(err)
	}
	now := env.Clock.Now()
	return env, slurmrest.NewClient(env.REST, env.RESTTokens.Dashboard),
		slurmcli.SacctOptions{AllUsers: true, Start: now.Add(-24 * time.Hour), End: now}
}

func BenchmarkSacctCLI(b *testing.B) {
	env, _, opts := benchStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slurmcli.Sacct(env.Runner, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSacctRESTCold decodes the full body every iteration.
func BenchmarkSacctRESTCold(b *testing.B) {
	_, client, opts := benchStack(b)
	client.NoConditional = true
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Sacct(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSacctREST revalidates: after the first fill every iteration is a
// 304 reusing the decoded envelope.
func BenchmarkSacctREST(b *testing.B) {
	_, client, opts := benchStack(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Sacct(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}
