package slurmrest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// GET /slurm/v1/accounting/rollups exposes slurmdbd's pre-aggregated time
// buckets over the REST backend. Every field on this wire is an integer
// (unix seconds, whole-second durations, fixed-point micro-percent sums), so
// decoding reconstructs exactly what the daemon aggregated — the property
// the rollup-vs-raw golden test relies on when the backends swap.

// RollupBucket is one (bucket, dimension) aggregate on the wire.
type RollupBucket struct {
	BucketStart int64  `json:"bucket_start"`
	Scope       string `json:"scope"`
	Name        string `json:"name,omitempty"`

	Jobs      int64 `json:"jobs"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Started   int64 `json:"started"`
	WallSec   int64 `json:"wall_seconds"`
	CPUSec    int64 `json:"cpu_seconds"`
	GPUSec    int64 `json:"gpu_seconds"`
	WaitSec   int64 `json:"wait_seconds"`

	TimeEffMicro int64 `json:"time_eff_micro"`
	TimeEffN     int64 `json:"time_eff_n"`
	CPUEffMicro  int64 `json:"cpu_eff_micro"`
	CPUEffN      int64 `json:"cpu_eff_n"`
	MemEffMicro  int64 `json:"mem_eff_micro"`
	MemEffN      int64 `json:"mem_eff_n"`
	GPUEffMicro  int64 `json:"gpu_eff_micro"`
	GPUEffN      int64 `json:"gpu_eff_n"`
}

// RollupsResponse is the rollups endpoint envelope. A query returns Buckets;
// a bounds request returns the min/max terminal end times instead.
type RollupsResponse struct {
	Buckets   []RollupBucket `json:"buckets"`
	MinEnd    int64          `json:"min_end,omitempty"`
	MaxEnd    int64          `json:"max_end,omitempty"`
	HasBounds bool           `json:"has_bounds,omitempty"`
}

func rollupBucketFromRow(r *slurm.RollupRow) RollupBucket {
	return RollupBucket{
		BucketStart:  r.BucketStart,
		Scope:        r.Scope,
		Name:         r.Name,
		Jobs:         r.Jobs,
		Completed:    r.Completed,
		Failed:       r.Failed,
		Started:      r.Started,
		WallSec:      r.WallSec,
		CPUSec:       r.CPUSec,
		GPUSec:       r.GPUSec,
		WaitSec:      r.WaitSec,
		TimeEffMicro: r.TimeEffMicro,
		TimeEffN:     r.TimeEffN,
		CPUEffMicro:  r.CPUEffMicro,
		CPUEffN:      r.CPUEffN,
		MemEffMicro:  r.MemEffMicro,
		MemEffN:      r.MemEffN,
		GPUEffMicro:  r.GPUEffMicro,
		GPUEffN:      r.GPUEffN,
	}
}

// RollupRow converts the wire bucket back to the daemon's row type.
func (b *RollupBucket) RollupRow() slurm.RollupRow {
	row := slurm.RollupRow{BucketStart: b.BucketStart, Scope: b.Scope, Name: b.Name}
	row.Jobs = b.Jobs
	row.Completed = b.Completed
	row.Failed = b.Failed
	row.Started = b.Started
	row.WallSec = b.WallSec
	row.CPUSec = b.CPUSec
	row.GPUSec = b.GPUSec
	row.WaitSec = b.WaitSec
	row.TimeEffMicro = b.TimeEffMicro
	row.TimeEffN = b.TimeEffN
	row.CPUEffMicro = b.CPUEffMicro
	row.CPUEffN = b.CPUEffN
	row.MemEffMicro = b.MemEffMicro
	row.MemEffN = b.MemEffN
	row.GPUEffMicro = b.GPUEffMicro
	row.GPUEffN = b.GPUEffN
	return row
}

// handleRollups serves the pre-aggregated accounting buckets. Parameters:
// scope (total|user|account|partition), name, start_time/end_time (unix
// seconds), resolution (seconds: 60|3600|86400), op=bounds. User tokens may
// only read their own user series — rollups aggregate other users' activity,
// which per-job redaction cannot hide after the fact.
func (s *Server) handleRollups(r *http.Request, p Principal) ([]byte, error) {
	q := r.URL.Query()
	scope, name, op := q.Get("scope"), q.Get("name"), q.Get("op")
	validScope := false
	for _, sc := range slurm.RollupScopes {
		if scope == sc {
			validScope = true
			break
		}
	}
	if !validScope {
		return nil, fmt.Errorf("%w: scope %q", errBadRequest, scope)
	}
	if p.Kind == KindUser && (scope != slurm.RollupScopeUser || name != p.Name) {
		return nil, fmt.Errorf("%w: user tokens may only read their own rollup series", errForbidden)
	}
	parse := func(key string) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, fmt.Errorf("%w: missing %s", errBadRequest, key)
		}
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %s %q", errBadRequest, key, v)
		}
		return sec, nil
	}

	var resp RollupsResponse
	resp.Buckets = []RollupBucket{}
	if op == "bounds" {
		_, err := s.cluster.DBD.Handle(r.Context(), "DBD_GET_ROLLUP_USAGE", func() (string, error) {
			resp.MinEnd, resp.MaxEnd, resp.HasBounds = s.cluster.DBD.RollupBounds(scope, name)
			return "", nil
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	}
	if op != "" && op != "query" {
		return nil, fmt.Errorf("%w: op %q", errBadRequest, op)
	}
	start, err := parse("start_time")
	if err != nil {
		return nil, err
	}
	end, err := parse("end_time")
	if err != nil {
		return nil, err
	}
	res, err := parse("resolution")
	if err != nil {
		return nil, err
	}
	if res != slurm.RollupMinute && res != slurm.RollupHour && res != slurm.RollupDay {
		return nil, fmt.Errorf("%w: resolution %d", errBadRequest, res)
	}
	_, err = s.cluster.DBD.Handle(r.Context(), "DBD_GET_ROLLUP_USAGE", func() (string, error) {
		rows := s.cluster.DBD.RollupQuery(scope, name, start, end, res)
		resp.Buckets = make([]RollupBucket, len(rows))
		for i := range rows {
			resp.Buckets[i] = rollupBucketFromRow(&rows[i])
		}
		return "", nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// Rollup mirrors slurmcli.SreportRollup over the REST backend.
func (c *Client) Rollup(ctx context.Context, opts slurmcli.RollupOptions) (slurmcli.RollupResult, error) {
	q := url.Values{}
	q.Set("scope", opts.Scope)
	if opts.Name != "" {
		q.Set("name", opts.Name)
	}
	if opts.Op == "bounds" {
		q.Set("op", "bounds")
	} else {
		q.Set("start_time", strconv.FormatInt(opts.Start, 10))
		q.Set("end_time", strconv.FormatInt(opts.End, 10))
		q.Set("resolution", strconv.FormatInt(opts.Resolution, 10))
	}
	var resp RollupsResponse
	if err := c.get(ctx, "rollups", "/slurm/v1/accounting/rollups", q, &resp); err != nil {
		return slurmcli.RollupResult{}, err
	}
	res := slurmcli.RollupResult{MinEnd: resp.MinEnd, MaxEnd: resp.MaxEnd, HasBounds: resp.HasBounds}
	if len(resp.Buckets) > 0 {
		res.Rows = make([]slurm.RollupRow, len(resp.Buckets))
		for i := range resp.Buckets {
			res.Rows[i] = resp.Buckets[i].RollupRow()
		}
	}
	return res, nil
}
