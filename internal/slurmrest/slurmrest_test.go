package slurmrest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/obs"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// restEnv is one simulated cluster with a REST server on top, tokens for a
// regular user (alice), a second user (bob), staff, and a service account,
// plus the CLI runner over the same cluster for equivalence checks.
type restEnv struct {
	cluster *slurm.Cluster
	clock   *slurm.SimClock
	runner  *slurmcli.SimRunner
	server  *Server
	tokens  *TokenStore
}

const (
	tokAlice = "tok-alice-1234"
	tokBob   = "tok-bob-5678"
	tokStaff = "tok-staff-9abc"
	tokSvc   = "tok-svc-def0"
)

func newRestEnv(t testing.TB, opts Options) *restEnv {
	t.Helper()
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := slurm.ClusterConfig{
		Name: "testcluster",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "c", Count: 4, CPUs: 8, MemMB: 16 * 1024, Features: []string{"milan"}, Partitions: []string{"cpu"}},
			{NamePrefix: "g", Count: 1, CPUs: 16, MemMB: 64 * 1024, GPUs: 2, GPUType: "a100", Partitions: []string{"gpu"}},
		},
		Partitions: []slurm.PartitionSpec{
			{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
			{Name: "gpu", MaxTime: 12 * time.Hour, Priority: 100},
		},
		QOS: []slurm.QOS{{Name: "normal"}},
		Associations: []slurm.Association{
			{Account: "lab-a"},
			{Account: "lab-a", User: "alice"},
			{Account: "lab-a", User: "bob"},
		},
	}
	cl, err := slurm.NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}

	dir := auth.NewDirectory()
	dir.AddUser(auth.User{Name: "alice", Accounts: []string{"lab-a"}})
	dir.AddUser(auth.User{Name: "bob", Accounts: []string{"lab-a"}})
	dir.AddUser(auth.User{Name: "staff", Accounts: []string{"lab-a"}, Admin: true})
	ts := NewTokenStore(dir)
	for tok, name := range map[string]string{tokAlice: "alice", tokBob: "bob", tokStaff: "staff"} {
		if err := ts.IssueUser(tok, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.IssueService(tokSvc, "prometheus"); err != nil {
		t.Fatal(err)
	}

	return &restEnv{
		cluster: cl,
		clock:   clock,
		runner:  slurmcli.NewSimRunner(cl),
		server:  NewServer(cl, ts, opts),
		tokens:  ts,
	}
}

// seedJobs gives alice and bob running and completed work, including an
// interactive-app job so comment redaction has something to hide.
func (e *restEnv) seedJobs(t testing.TB) {
	t.Helper()
	submit := func(req slurm.SubmitRequest) slurm.JobID {
		if req.QOS == "" {
			req.QOS = "normal"
		}
		if req.TimeLimit == 0 {
			req.TimeLimit = 2 * time.Hour
		}
		if req.Profile.CPUUtilization == 0 {
			req.Profile = slurm.UsageProfile{CPUUtilization: 0.8, MemUtilization: 0.5, GPUUtilization: 0.7}
		}
		id, err := e.cluster.Ctl.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	submit(slurm.SubmitRequest{Name: "alice-train", User: "alice", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{Nodes: 1, CPUs: 4, MemMB: 4 * 1024},
		WorkDir: "/home/alice/train", StdoutPath: "/home/alice/train/out.log"})
	submit(slurm.SubmitRequest{Name: "bob-secret", User: "bob", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{Nodes: 1, CPUs: 2, MemMB: 2 * 1024},
		WorkDir: "/home/bob/secret", InteractiveApp: "jupyter", SessionID: "s-42"})
	submit(slurm.SubmitRequest{Name: "bob-short", User: "bob", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{Nodes: 1, CPUs: 1, MemMB: 1024},
		TimeLimit: 30 * time.Minute})
	e.cluster.Ctl.Tick()
	e.clock.Advance(45 * time.Minute)
	e.cluster.Ctl.Tick()
	// Queue pressure: an oversized pending job.
	submit(slurm.SubmitRequest{Name: "alice-wide", User: "alice", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{Nodes: 4, CPUs: 32, MemMB: 32 * 1024}})
	e.cluster.Ctl.Tick()
}

// get performs one request against the server with the given token.
func (e *restEnv) get(token, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	e.server.ServeHTTP(rec, req)
	return rec
}

// TestScopeMatrix pins the endpoint-level permission table and checks the
// denials show up in the server's metrics — the audit trail for scoped
// tokens.
func TestScopeMatrix(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)

	cases := []struct {
		token string
		path  string
		want  int
	}{
		{tokStaff, "/slurm/v1/jobs", http.StatusOK},
		{tokStaff, "/slurm/v1/accounting", http.StatusOK},
		{tokStaff, "/slurm/v1/diag", http.StatusOK},
		{tokAlice, "/slurm/v1/jobs", http.StatusOK},
		{tokAlice, "/slurm/v1/accounting", http.StatusOK},
		{tokAlice, "/slurm/v1/nodes", http.StatusOK},
		{tokAlice, "/slurm/v1/partitions", http.StatusOK},
		{tokAlice, "/slurm/v1/diag", http.StatusForbidden},
		{tokSvc, "/slurm/v1/nodes", http.StatusOK},
		{tokSvc, "/slurm/v1/partitions", http.StatusOK},
		{tokSvc, "/slurm/v1/diag", http.StatusOK},
		{tokSvc, "/slurm/v1/jobs", http.StatusForbidden},
		{tokSvc, "/slurm/v1/accounting", http.StatusForbidden},
		{"", "/slurm/v1/jobs", http.StatusUnauthorized},
		{"bogus-token", "/slurm/v1/jobs", http.StatusUnauthorized},
	}
	for _, c := range cases {
		rec := e.get(c.token, c.path)
		if rec.Code != c.want {
			t.Errorf("token %q %s: status %d, want %d", c.token, c.path, rec.Code, c.want)
		}
	}

	st := e.server.Stats()
	if got := st.ScopeDenied[[2]string{"accounting", "service"}]; got != 1 {
		t.Errorf("scope_denied{accounting,service} = %d, want 1", got)
	}
	if got := st.ScopeDenied[[2]string{"jobs", "service"}]; got != 1 {
		t.Errorf("scope_denied{jobs,service} = %d, want 1", got)
	}
	if got := st.ScopeDenied[[2]string{"diag", "user"}]; got != 1 {
		t.Errorf("scope_denied{diag,user} = %d, want 1", got)
	}

	// The same counters must surface on an obs registry.
	reg := obs.NewRegistry()
	e.server.RegisterMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`ooddash_slurmrest_scope_denied_total{endpoint="accounting",kind="service"} 1`,
		`ooddash_slurmrest_scope_denied_total{endpoint="diag",kind="user"} 1`,
		`ooddash_slurmrest_requests_total{endpoint="jobs",status="403"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestUserRedaction pins field-level scopes: a user token sees its own jobs
// in full and other users' records with identifying fields hidden, while a
// staff token sees everything — and the redactions are counted.
func TestUserRedaction(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)

	var queue JobsResponse
	if err := json.Unmarshal(e.get(tokAlice, "/slurm/v1/jobs?all_states=1").Body.Bytes(), &queue); err != nil {
		t.Fatal(err)
	}
	if len(queue.Jobs) == 0 {
		t.Fatal("no jobs in queue")
	}
	for _, j := range queue.Jobs {
		switch j.User {
		case "alice":
			if j.Redacted || j.Name == "" {
				t.Errorf("alice's own job %s redacted: %+v", j.JobID, j)
			}
		default:
			if !j.Redacted || j.Name != "" {
				t.Errorf("job %s of user %s not redacted for alice: %+v", j.JobID, j.User, j)
			}
		}
	}

	var acct AccountingResponse
	if err := json.Unmarshal(e.get(tokAlice, "/slurm/v1/accounting").Body.Bytes(), &acct); err != nil {
		t.Fatal(err)
	}
	sawBob := false
	for _, j := range acct.Jobs {
		if j.User != "bob" {
			continue
		}
		sawBob = true
		if !j.Redacted || j.Name != "" || j.Comment != "" || j.WorkDir != "" {
			t.Errorf("bob's accounting row not redacted for alice: %+v", j)
		}
	}
	if !sawBob {
		t.Fatal("accounting response missing bob's jobs")
	}

	// Job detail: find bob's interactive job via staff, then fetch as alice.
	var staffAcct AccountingResponse
	if err := json.Unmarshal(e.get(tokStaff, "/slurm/v1/accounting").Body.Bytes(), &staffAcct); err != nil {
		t.Fatal(err)
	}
	bobJob := ""
	for _, j := range staffAcct.Jobs {
		if j.User == "bob" && j.Comment != "" {
			bobJob = j.JobID
		}
		if j.Redacted {
			t.Errorf("staff view redacted row: %+v", j)
		}
	}
	if bobJob == "" {
		t.Fatal("staff view missing bob's interactive job comment")
	}
	var detail JobDetail
	if err := json.Unmarshal(e.get(tokAlice, "/slurm/v1/jobs/"+bobJob).Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if !detail.Redacted || detail.Name != "" || detail.WorkDir != "" || detail.Comment != "" {
		t.Errorf("bob's job detail not redacted for alice: %+v", detail)
	}

	st := e.server.Stats()
	if st.Redacted["accounting"] == 0 || st.Redacted["jobs"] == 0 || st.Redacted["job"] == 0 {
		t.Errorf("redaction counters not incremented: %+v", st.Redacted)
	}
}

// TestETagAndCacheClassIsolation pins conditional requests and the cache
// keying: revalidation works within one principal, and differently-scoped
// principals never share a cached body even for the same URI.
func TestETagAndCacheClassIsolation(t *testing.T) {
	e := newRestEnv(t, Options{CacheTTL: time.Minute})
	e.seedJobs(t)

	const path = "/slurm/v1/accounting"
	first := e.get(tokAlice, path)
	tag := first.Header().Get("Etag")
	if first.Code != http.StatusOK || tag == "" {
		t.Fatalf("first fetch: status %d, etag %q", first.Code, tag)
	}

	// Same principal revalidates → 304.
	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set("Authorization", "Bearer "+tokAlice)
	req.Header.Set("If-None-Match", tag)
	rec := httptest.NewRecorder()
	e.server.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("alice revalidation: status %d, want 304", rec.Code)
	}

	// Bob presents alice's ETag: his redaction set differs, so the server
	// must build bob's own body, not validate alice's.
	req = httptest.NewRequest("GET", path, nil)
	req.Header.Set("Authorization", "Bearer "+tokBob)
	req.Header.Set("If-None-Match", tag)
	rec = httptest.NewRecorder()
	e.server.ServeHTTP(rec, req)
	if rec.Code == http.StatusNotModified {
		t.Fatal("cross-principal 304: bob validated alice's ETag")
	}
	if rec.Header().Get("Etag") == tag {
		t.Fatal("bob served alice's cached body (same ETag)")
	}
	var acct AccountingResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acct); err != nil {
		t.Fatal(err)
	}
	for _, j := range acct.Jobs {
		if j.User == "alice" && !j.Redacted {
			t.Errorf("bob's view shows alice's row unredacted: %+v", j)
		}
	}

	// Staff shares one cache class: two staff fetches are one cache fill.
	e.get(tokStaff, path)
	e.get(tokStaff, path)
	cs := e.server.CacheStats()
	if cs.Hits == 0 {
		t.Errorf("expected rendered-cache hits, stats %+v", cs)
	}
}

// TestRowEquivalence is the backend-swap contract: for a staff viewer the
// REST client must produce byte-identical typed rows to the CLI wrappers
// over the same cluster state.
func TestRowEquivalence(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	rc := NewClient(e.server, tokStaff)
	ctx := context.Background()

	qOpts := slurmcli.SqueueOptions{AllStates: true}
	cliQueue, err := slurmcli.Squeue(e.runner, qOpts)
	if err != nil {
		t.Fatal(err)
	}
	restQueue, err := rc.Squeue(ctx, qOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliQueue, restQueue) {
		t.Errorf("squeue rows differ:\ncli:  %+v\nrest: %+v", cliQueue, restQueue)
	}

	sOpts := slurmcli.SacctOptions{AllUsers: true}
	cliAcct, err := slurmcli.Sacct(e.runner, sOpts)
	if err != nil {
		t.Fatal(err)
	}
	restAcct, err := rc.Sacct(ctx, sOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliAcct, restAcct) {
		t.Errorf("sacct rows differ:\ncli:  %+v\nrest: %+v", cliAcct, restAcct)
	}
	if len(cliAcct) == 0 {
		t.Fatal("no accounting rows to compare")
	}

	cliParts, err := slurmcli.Sinfo(e.runner)
	if err != nil {
		t.Fatal(err)
	}
	restParts, err := rc.Sinfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliParts, restParts) {
		t.Errorf("sinfo rows differ:\ncli:  %+v\nrest: %+v", cliParts, restParts)
	}

	cliNodes, err := slurmcli.ShowAllNodes(e.runner)
	if err != nil {
		t.Fatal(err)
	}
	restNodes, err := rc.ShowAllNodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliNodes, restNodes) {
		t.Errorf("node details differ:\ncli:  %+v\nrest: %+v", cliNodes, restNodes)
	}

	for _, row := range cliAcct {
		cliJob, err := slurmcli.ShowJob(e.runner, row.RawID)
		if err != nil {
			t.Fatal(err)
		}
		restJob, err := rc.ShowJob(ctx, row.RawID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cliJob, restJob) {
			t.Errorf("job %d detail differs:\ncli:  %+v\nrest: %+v", row.RawID, cliJob, restJob)
		}
	}

	// sdiag mutates the RPC counters it reports, so only the stable parts
	// are comparable: daemon names and record counts.
	restCtld, restDbd, err := rc.Sdiag(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cliCtld, cliDbd, err := slurmcli.Sdiag(e.runner)
	if err != nil {
		t.Fatal(err)
	}
	if restCtld.Name != cliCtld.Name || restCtld.Records != cliCtld.Records {
		t.Errorf("ctld diag differs: rest %+v cli %+v", restCtld, cliCtld)
	}
	if restDbd.Name != cliDbd.Name || restDbd.Records != cliDbd.Records {
		t.Errorf("dbd diag differs: rest %+v cli %+v", restDbd, cliDbd)
	}
}

// TestUnavailableMapsTo503AndBack pins the outage contract end to end: a
// down daemon yields 503 + Retry-After on the wire, and the client maps it
// back to the same unavailability class the CLI path reports.
func TestUnavailableMapsTo503AndBack(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	e.cluster.Ctl.SetHealth(slurm.HealthDown, "drill")

	rec := e.get(tokStaff, "/slurm/v1/jobs")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	rc := NewClient(e.server, tokStaff)
	_, err := rc.Squeue(context.Background(), slurmcli.SqueueOptions{})
	if err == nil || !slurmcli.IsUnavailable(err) {
		t.Fatalf("client error %v not classified unavailable", err)
	}

	// The accounting daemon is untouched; its endpoint still serves.
	if rec := e.get(tokStaff, "/slurm/v1/accounting"); rec.Code != http.StatusOK {
		t.Errorf("accounting during ctld outage: status %d", rec.Code)
	}
}

// TestObserveHook pins the client's metering seam: one call per request
// with the slurmcli-compatible daemon attribution.
func TestObserveHook(t *testing.T) {
	e := newRestEnv(t, Options{})
	e.seedJobs(t)
	type call struct {
		endpoint, daemon string
		err              bool
	}
	var calls []call
	rc := NewClient(e.server, tokSvc)
	rc.Observe = func(endpoint, daemon string, d time.Duration, err error) {
		calls = append(calls, call{endpoint, daemon, err != nil})
	}
	ctx := context.Background()
	if _, err := rc.Sinfo(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Sacct(ctx, slurmcli.SacctOptions{}); err == nil {
		t.Fatal("service token sacct should fail")
	}
	want := []call{
		{"partitions", "slurmctld", false},
		{"accounting", "slurmdbd", true},
	}
	if !reflect.DeepEqual(calls, want) {
		t.Errorf("observe calls %+v, want %+v", calls, want)
	}
}
