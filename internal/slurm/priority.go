package slurm

import "time"

// PriorityFactors decomposes one pending job's priority the way sprio
// reports it: base weight plus the QOS, partition, age, and fair-share
// contributions.
type PriorityFactors struct {
	JobID     JobID
	User      string
	Account   string
	Priority  int64 // total
	Base      int64
	QOS       int64
	Partition int64
	Age       int64
	FairShare int64 // negative: accumulated-usage penalty
}

// PendingPriorities returns the factor breakdown for every pending job,
// highest priority first — the data behind sprio. Counted as one squeue-
// class RPC.
func (c *Controller) PendingPriorities() []PriorityFactors {
	c.stats.Record(RPCSqueue)
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PriorityFactors
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil || j.State != StatePending {
			continue
		}
		f := PriorityFactors{
			JobID: j.ID, User: j.User, Account: j.Account, Base: 1000,
		}
		if q := c.qos[j.QOS]; q != nil {
			f.QOS = int64(q.Priority)
		}
		if part := c.partitions[j.Partition]; part != nil {
			f.Partition = int64(part.Priority)
		}
		if age := now.Sub(j.SubmitTime); age > 0 {
			f.Age = int64(age / time.Minute)
		}
		f.FairShare = c.fairSharePenaltyLocked(j.Account)
		f.Priority = f.Base + f.QOS + f.Partition + f.Age + f.FairShare
		out = append(out, f)
	}
	// Highest priority first, ties by job ID for stable output.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0; k-- {
			a, b := &out[k-1], &out[k]
			if a.Priority > b.Priority || (a.Priority == b.Priority && a.JobID <= b.JobID) {
				break
			}
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
	return out
}
