package slurm

import (
	"testing"
	"time"
)

// TestDrillDrainReservationInterplay covers the maintenance-drain flow: a
// maintenance reservation laid over already-drained nodes must schedule zero
// jobs onto them for the whole window and release cleanly on resume — the
// drained nodes come back schedulable with no leftover maint flag or reason.
func TestDrillDrainReservationInterplay(t *testing.T) {
	cl, clock := testCluster(t)
	ctl := cl.Ctl
	covered := []string{"c001", "c002"}

	// Operators drain ahead of the window, then the reservation activates on
	// top of the drain (both paths must independently keep jobs off).
	for _, name := range covered {
		if err := ctl.DrainNode(name, "pre-maintenance drain"); err != nil {
			t.Fatal(err)
		}
	}
	start := clock.Now().Add(30 * time.Minute)
	end := start.Add(2 * time.Hour)
	winID, err := ctl.ScheduleMaintenance("rack-pm", start, end, covered, "rack maintenance")
	if err != nil {
		t.Fatal(err)
	}

	onCovered := func(j *Job) bool {
		for _, n := range j.Nodes {
			for _, c := range covered {
				if n == c {
					return true
				}
			}
		}
		return false
	}

	// Submit a steady stream of short jobs across the window. Every five
	// minutes more arrive than the two uncovered cpu nodes can hold, so the
	// scheduler is constantly tempted by the reserved pair.
	submit := func(n int) {
		for i := 0; i < n; i++ {
			submitOne(t, cl, SubmitRequest{
				User: "carol", Account: "lab-b", Partition: "cpu",
				ReqTRES: TRES{CPUs: 4, MemMB: 2048}, TimeLimit: 20 * time.Minute,
				Profile: UsageProfile{ActualDuration: 10 * time.Minute,
					CPUUtilization: 0.8, MemUtilization: 0.5},
			})
		}
	}
	for step := 0; step < 36; step++ { // 3 simulated hours in 5-minute steps
		submit(3)
		clock.Advance(5 * time.Minute)
		ctl.Tick()
		now := clock.Now()
		inWindow := !now.Before(start) && now.Before(end)
		for _, j := range ctl.Jobs(LiveJobFilter{States: []JobState{StateRunning}}) {
			if onCovered(j) {
				t.Fatalf("step %d (in window=%t): job %d running on reserved nodes %v",
					step, inWindow, j.ID, j.Nodes)
			}
		}
		if inWindow {
			for _, name := range covered {
				if n := ctl.Node(name); !n.Maint {
					t.Fatalf("step %d: covered node %s not in maint during window", step, name)
				}
			}
		}
	}

	// The window has ended (3h > 30m + 2h). Resume the drained nodes: they
	// must come back clean — schedulable, no maint flag, no stale reason.
	for _, name := range covered {
		if err := ctl.ResumeNode(name); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Tick()
	for _, name := range covered {
		n := ctl.Node(name)
		if !n.Schedulable() || n.Maint || n.Drain || n.StateReason != "" {
			t.Fatalf("node %s after resume: schedulable=%t maint=%t drain=%t reason=%q",
				name, n.Schedulable(), n.Maint, n.Drain, n.StateReason)
		}
	}
	// The past window must not block new placements onto the released nodes.
	submit(8)
	ctl.Tick()
	placed := false
	for _, j := range ctl.Jobs(LiveJobFilter{States: []JobState{StateRunning}}) {
		if onCovered(j) {
			placed = true
			break
		}
	}
	if !placed {
		t.Fatal("no job placed onto released nodes after resume")
	}
	// The expired window is still listed (pruning waits 24h) but inert.
	found := false
	for _, w := range ctl.MaintenanceWindows() {
		if w.ID == winID {
			found = true
		}
	}
	if !found {
		t.Fatal("window vanished before its prune horizon")
	}
}
