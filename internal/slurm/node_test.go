package slurm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeEffectiveState(t *testing.T) {
	tests := []struct {
		name string
		node Node
		want NodeState
	}{
		{"idle", Node{CPUs: 8, State: NodeIdle}, NodeIdle},
		{"mixed", Node{CPUs: 8, State: NodeIdle, Alloc: TRES{CPUs: 4}}, NodeMixed},
		{"allocated", Node{CPUs: 8, State: NodeIdle, Alloc: TRES{CPUs: 8}}, NodeAllocated},
		{"drained-empty", Node{CPUs: 8, State: NodeIdle, Drain: true}, NodeDrained},
		{"draining-busy", Node{CPUs: 8, State: NodeIdle, Drain: true, Alloc: TRES{CPUs: 2}}, NodeDraining},
		{"down", Node{CPUs: 8, State: NodeDown, Drain: true}, NodeDown},
		{"maint", Node{CPUs: 8, State: NodeIdle, Maint: true}, NodeMaint},
	}
	for _, tc := range tests {
		if got := tc.node.EffectiveState(); got != tc.want {
			t.Errorf("%s: EffectiveState = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestNodeSchedulable(t *testing.T) {
	n := Node{CPUs: 8, State: NodeIdle}
	if !n.Schedulable() {
		t.Error("idle node should be schedulable")
	}
	n.Drain = true
	if n.Schedulable() {
		t.Error("draining node should not be schedulable")
	}
	n.Drain = false
	n.Maint = true
	if n.Schedulable() {
		t.Error("maint node should not be schedulable")
	}
	n.Maint = false
	n.State = NodeDown
	if n.Schedulable() {
		t.Error("down node should not be schedulable")
	}
}

func TestNodeFree(t *testing.T) {
	n := Node{CPUs: 128, MemMB: 256 * 1024, GPUs: 4, Alloc: TRES{CPUs: 100, MemMB: 1024, GPUs: 3}}
	free := n.Free()
	if free.CPUs != 28 || free.MemMB != 256*1024-1024 || free.GPUs != 1 {
		t.Fatalf("Free = %+v", free)
	}
}

func TestNodeClone(t *testing.T) {
	n := &Node{
		Name:        "a001",
		Partitions:  []string{"cpu"},
		Features:    []string{"milan"},
		RunningJobs: []JobID{1, 2},
		BootTime:    time.Now(),
	}
	cp := n.Clone()
	cp.Partitions[0] = "gpu"
	cp.RunningJobs[0] = 99
	if n.Partitions[0] != "cpu" || n.RunningJobs[0] != 1 {
		t.Fatal("Clone shares slices with original")
	}
}

func TestNodeNameRange(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"a001"}, "a001"},
		{[]string{"a001", "a002", "a003"}, "a[001-003]"},
		{[]string{"a003", "a001", "a002"}, "a[001-003]"},
		{[]string{"a001", "a003"}, "a001,a003"},
		{[]string{"a001", "a002", "b001"}, "a[001-002],b001"},
		{[]string{"login", "a001", "a002"}, "a[001-002],login"},
	}
	for _, tc := range tests {
		if got := NodeNameRange(tc.in); got != tc.want {
			t.Errorf("NodeNameRange(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestExpandNodeRange(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"a001", []string{"a001"}},
		{"a[001-003]", []string{"a001", "a002", "a003"}},
		{"a[001-002],b001", []string{"a001", "a002", "b001"}},
		{"a[001,005]", []string{"a001", "a005"}},
		{"login,a[001-002]", []string{"login", "a001", "a002"}},
	}
	for _, tc := range tests {
		got, err := ExpandNodeRange(tc.in)
		if err != nil {
			t.Fatalf("ExpandNodeRange(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ExpandNodeRange(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ExpandNodeRange("a[001-"); err == nil {
		t.Error("expected error for unterminated bracket")
	}
}

// Property: expanding a compressed range yields the original sorted set.
func TestNodeRangeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		seen := make(map[string]bool)
		var names []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("a%03d", 1+r.Intn(200))
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
		compressed := NodeNameRange(names)
		expanded, err := ExpandNodeRange(compressed)
		if err != nil {
			return false
		}
		if len(expanded) != len(names) {
			return false
		}
		back := make(map[string]bool, len(expanded))
		for _, e := range expanded {
			back[e] = true
		}
		for _, want := range names {
			if !back[want] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
