package slurm

import (
	"strings"
	"testing"
	"time"
)

// testCluster builds a small deterministic cluster: 4 CPU nodes (8 cores,
// 16 GiB each), 1 GPU node, two accounts with CPU limits, debug QOS with a
// per-user running-job cap.
func testCluster(t testing.TB) (*Cluster, *SimClock) {
	t.Helper()
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := ClusterConfig{
		Name: "testcluster",
		Nodes: []NodeSpec{
			{NamePrefix: "c", Count: 4, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu", "debug"}},
			{NamePrefix: "g", Count: 1, CPUs: 16, MemMB: 64 * 1024, GPUs: 2, GPUType: "a100", Partitions: []string{"gpu"}},
		},
		Partitions: []PartitionSpec{
			{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
			{Name: "gpu", MaxTime: 12 * time.Hour, Priority: 100},
			{Name: "debug", MaxTime: 30 * time.Minute, Priority: 500},
		},
		QOS: []QOS{
			{Name: "normal"},
			{Name: "debug", Priority: 1000, MaxJobsPerUser: 1},
		},
		Associations: []Association{
			{Account: "lab-a", GrpCPULimit: 16},
			{Account: "lab-a", User: "alice"},
			{Account: "lab-a", User: "bob"},
			{Account: "lab-b"},
			{Account: "lab-b", User: "carol"},
		},
	}
	cl, err := NewCluster(cfg, clock)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl, clock
}

func submitOne(t testing.TB, cl *Cluster, req SubmitRequest) JobID {
	t.Helper()
	if req.Name == "" {
		req.Name = "job"
	}
	if req.QOS == "" {
		req.QOS = "normal"
	}
	if req.TimeLimit == 0 {
		req.TimeLimit = time.Hour
	}
	id, err := cl.Ctl.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return id
}

func TestSubmitAndSchedule(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 4, MemMB: 4096},
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.9, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j == nil {
		t.Fatal("job not found after submit")
	}
	if j.State != StateRunning {
		t.Fatalf("state = %s, want RUNNING", j.State)
	}
	if len(j.Nodes) != 1 || !strings.HasPrefix(j.Nodes[0], "c") {
		t.Fatalf("nodes = %v, want one cpu node", j.Nodes)
	}
	if j.AllocTRES.CPUs != 4 {
		t.Fatalf("alloc cpus = %d, want 4", j.AllocTRES.CPUs)
	}
	n := cl.Ctl.Node(j.Nodes[0])
	if n.Alloc.CPUs != 4 || len(n.RunningJobs) != 1 {
		t.Fatalf("node alloc = %+v jobs = %v", n.Alloc, n.RunningJobs)
	}
}

func TestJobCompletesAfterDuration(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 2, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: 10 * time.Minute, CPUUtilization: 0.8, MemUtilization: 0.4},
	})
	cl.Ctl.Tick()
	start := cl.Ctl.Job(id).StartTime

	clock.Advance(9 * time.Minute)
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(id).State; got != StateRunning {
		t.Fatalf("at 9min state = %s, want RUNNING", got)
	}
	clock.Advance(2 * time.Minute)
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateCompleted {
		t.Fatalf("state = %s, want COMPLETED", j.State)
	}
	if want := start.Add(10 * time.Minute); !j.EndTime.Equal(want) {
		t.Fatalf("EndTime = %v, want exact %v", j.EndTime, want)
	}
	// Resources must be freed.
	for _, n := range cl.Ctl.Nodes() {
		if n.Alloc.CPUs != 0 {
			t.Fatalf("node %s still has alloc %+v", n.Name, n.Alloc)
		}
	}
	// Accounting must have the final record.
	rec := cl.DBD.Job(id)
	if rec == nil || rec.State != StateCompleted {
		t.Fatalf("dbd record = %+v", rec)
	}
}

func TestJobTimesOutAtLimit(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:   TRES{CPUs: 1, MemMB: 512},
		TimeLimit: 20 * time.Minute,
		Profile:   UsageProfile{ActualDuration: 0, CPUUtilization: 0.5, MemUtilization: 0.5}, // runs forever
	})
	cl.Ctl.Tick()
	clock.Advance(21 * time.Minute)
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateTimeout {
		t.Fatalf("state = %s, want TIMEOUT", j.State)
	}
	if j.ExitCode == 0 {
		t.Fatal("timeout job should have nonzero exit code")
	}
}

func TestFailedJobState(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 5 * time.Minute, FailureState: StateFailed, ExitCode: 2,
			CPUUtilization: 0.3, MemUtilization: 0.2},
	})
	cl.Ctl.Tick()
	clock.Advance(6 * time.Minute)
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateFailed || j.ExitCode != 2 {
		t.Fatalf("state = %s exit = %d, want FAILED/2", j.State, j.ExitCode)
	}
}

func TestPendingReasonResourcesAndPriority(t *testing.T) {
	cl, _ := testCluster(t)
	// Fill the cpu partition: 4 nodes x 8 cpus, but account limit is 16,
	// so use lab-b (no limit) to saturate.
	for i := 0; i < 4; i++ {
		submitOne(t, cl, SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024},
			Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		})
	}
	blocked1 := submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	blocked2 := submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j1, j2 := cl.Ctl.Job(blocked1), cl.Ctl.Job(blocked2)
	if j1.State != StatePending || j1.Reason != ReasonResources {
		t.Fatalf("first blocked job: state=%s reason=%s, want PENDING/Resources", j1.State, j1.Reason)
	}
	if j2.State != StatePending || j2.Reason != ReasonPriority {
		t.Fatalf("second blocked job: state=%s reason=%s, want PENDING/Priority", j2.State, j2.Reason)
	}
}

func TestAssocGrpCpuLimit(t *testing.T) {
	cl, _ := testCluster(t)
	// lab-a has GrpCPULimit 16: two 8-cpu jobs run, the third hits the limit.
	var ids []JobID
	for i := 0; i < 3; i++ {
		ids = append(ids, submitOne(t, cl, SubmitRequest{
			User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024},
			Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		}))
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(ids[0]).State; got != StateRunning {
		t.Fatalf("job0 = %s", got)
	}
	if got := cl.Ctl.Job(ids[1]).State; got != StateRunning {
		t.Fatalf("job1 = %s", got)
	}
	j := cl.Ctl.Job(ids[2])
	if j.State != StatePending || j.Reason != ReasonAssocGrpCpuLimit {
		t.Fatalf("job2 state=%s reason=%s, want PENDING/AssocGrpCpuLimit", j.State, j.Reason)
	}
}

func TestQOSMaxJobsPerUser(t *testing.T) {
	cl, _ := testCluster(t)
	a := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "debug", QOS: "debug",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: 20 * time.Minute,
		Profile: UsageProfile{ActualDuration: 15 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	b := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "debug", QOS: "debug",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: 20 * time.Minute,
		Profile: UsageProfile{ActualDuration: 15 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(a).State; got != StateRunning {
		t.Fatalf("first debug job = %s", got)
	}
	j := cl.Ctl.Job(b)
	if j.State != StatePending || j.Reason != ReasonQOSMaxJobsPerUser {
		t.Fatalf("second debug job state=%s reason=%s", j.State, j.Reason)
	}
}

func TestDependencyChain(t *testing.T) {
	cl, clock := testCluster(t)
	first := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 10 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	second := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", Dependency: first,
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 10 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(second)
	if j.State != StatePending || j.Reason != ReasonDependency {
		t.Fatalf("dependent job state=%s reason=%s", j.State, j.Reason)
	}
	clock.Advance(11 * time.Minute)
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(second).State; got != StateRunning {
		t.Fatalf("dependent job after dep completes = %s", got)
	}
}

func TestBeginTimeGate(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		BeginTime: clock.Now().Add(30 * time.Minute),
		ReqTRES:   TRES{CPUs: 1, MemMB: 512},
		Profile:   UsageProfile{ActualDuration: 5 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StatePending || j.Reason != ReasonBeginTime {
		t.Fatalf("state=%s reason=%s, want PENDING/BeginTime", j.State, j.Reason)
	}
	clock.Advance(31 * time.Minute)
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(id).State; got != StateRunning {
		t.Fatalf("after begin time = %s", got)
	}
}

func TestHoldRelease(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", Hold: true,
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 5 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StatePending || j.Reason != ReasonJobHeldUser {
		t.Fatalf("held job state=%s reason=%s", j.State, j.Reason)
	}
	if err := cl.Ctl.Release(id, "bob"); err == nil {
		t.Fatal("release by non-owner should fail")
	}
	if err := cl.Ctl.Release(id, "alice"); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(id).State; got != StateRunning {
		t.Fatalf("released job = %s", got)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	cl, _ := testCluster(t)
	run := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	hold := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", Hold: true,
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()

	if err := cl.Ctl.Cancel(run, "bob"); err == nil {
		t.Fatal("cancel by non-owner should fail")
	}
	if err := cl.Ctl.Cancel(run, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ctl.Cancel(hold, "root"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []JobID{run, hold} {
		if got := cl.Ctl.Job(id).State; got != StateCancelled {
			t.Fatalf("job %d = %s, want CANCELLED", id, got)
		}
	}
	for _, n := range cl.Ctl.Nodes() {
		if n.Alloc.CPUs != 0 {
			t.Fatalf("node %s alloc not freed: %+v", n.Name, n.Alloc)
		}
	}
}

func TestJobArraySubmit(t *testing.T) {
	cl, _ := testCluster(t)
	first, err := cl.Ctl.Submit(SubmitRequest{
		Name: "array", User: "alice", Account: "lab-a", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour, ArraySize: 5,
		Profile: UsageProfile{ActualDuration: 5 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	tasks := cl.DBD.Jobs(JobFilter{ArrayJobID: first}, cl.Ctl.Now())
	if len(tasks) != 5 {
		t.Fatalf("array tasks = %d, want 5", len(tasks))
	}
	for i, task := range tasks {
		if task.ArrayJobID != first || task.ArrayTaskID != i {
			t.Fatalf("task %d: arrayJob=%d taskID=%d", i, task.ArrayJobID, task.ArrayTaskID)
		}
		if want := task.DisplayID(); !strings.Contains(want, "_") {
			t.Fatalf("array task display ID %q missing underscore", want)
		}
	}
}

func TestNodeDownFailsJobs(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	node := cl.Ctl.Job(id).Nodes[0]
	if err := cl.Ctl.SetNodeDown(node, "hardware fault"); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateNodeFail {
		t.Fatalf("job on downed node = %s, want NODE_FAIL", j.State)
	}
	n := cl.Ctl.Node(node)
	if n.EffectiveState() != NodeDown || n.StateReason != "hardware fault" {
		t.Fatalf("node state=%s reason=%q", n.EffectiveState(), n.StateReason)
	}
}

func TestDrainExcludesFromScheduling(t *testing.T) {
	cl, _ := testCluster(t)
	// Drain all but one node; the job must land on the remaining one.
	nodes := cl.Ctl.Nodes()
	var kept string
	for _, n := range nodes {
		if !n.HasPartition("cpu") {
			continue
		}
		if kept == "" {
			kept = n.Name
			continue
		}
		if err := cl.Ctl.DrainNode(n.Name, "maintenance prep"); err != nil {
			t.Fatal(err)
		}
	}
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateRunning || j.Nodes[0] != kept {
		t.Fatalf("job state=%s nodes=%v, want running on %s", j.State, j.Nodes, kept)
	}
}

func TestMultiNodeJob(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 16, MemMB: 2048, Nodes: 2},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateRunning || len(j.Nodes) != 2 {
		t.Fatalf("state=%s nodes=%v", j.State, j.Nodes)
	}
	if j.AllocTRES.CPUs != 16 || j.AllocTRES.Nodes != 2 {
		t.Fatalf("alloc = %+v", j.AllocTRES)
	}
	for _, name := range j.Nodes {
		if n := cl.Ctl.Node(name); n.Alloc.CPUs != 8 {
			t.Fatalf("node %s alloc = %+v, want 8 cpus", name, n.Alloc)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	cl, _ := testCluster(t)
	base := SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour,
	}
	cases := []struct {
		name   string
		mutate func(*SubmitRequest)
	}{
		{"no user", func(r *SubmitRequest) { r.User = "" }},
		{"no account", func(r *SubmitRequest) { r.Account = "" }},
		{"no partition", func(r *SubmitRequest) { r.Partition = "" }},
		{"unknown partition", func(r *SubmitRequest) { r.Partition = "nope" }},
		{"unknown qos", func(r *SubmitRequest) { r.QOS = "nope" }},
		{"zero cpus", func(r *SubmitRequest) { r.ReqTRES.CPUs = 0 }},
		{"no time limit", func(r *SubmitRequest) { r.TimeLimit = 0 }},
		{"over partition limit", func(r *SubmitRequest) { r.TimeLimit = 48 * time.Hour }},
		{"no association", func(r *SubmitRequest) { r.User = "mallory" }},
	}
	for _, tc := range cases {
		req := base
		tc.mutate(&req)
		if _, err := cl.Ctl.Submit(req); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCompletedJobPurgedFromControllerButNotDBD(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(2 * time.Minute)
	cl.Ctl.Tick() // completes
	if cl.Ctl.Job(id) == nil {
		t.Fatal("freshly completed job should still be in controller memory")
	}
	clock.Advance(10 * time.Minute) // past 5-minute retention
	cl.Ctl.Tick()
	if cl.Ctl.Job(id) != nil {
		t.Fatal("completed job should have been purged from controller")
	}
	if rec := cl.DBD.Job(id); rec == nil || rec.State != StateCompleted {
		t.Fatalf("dbd record = %+v, want COMPLETED", rec)
	}
}

func TestUtilization(t *testing.T) {
	cl, _ := testCluster(t)
	submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 8192, GPUs: 1},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	util := cl.Ctl.Utilization()
	byName := make(map[string]PartitionUtilization)
	for _, u := range util {
		byName[u.Name] = u
	}
	cpu := byName["cpu"]
	if cpu.TotalCPUs != 32 || cpu.AllocCPUs != 8 || cpu.RunningJobs != 1 {
		t.Fatalf("cpu util = %+v", cpu)
	}
	if got := cpu.CPUPercent(); got != 25 {
		t.Fatalf("cpu%% = %v, want 25", got)
	}
	gpu := byName["gpu"]
	if gpu.TotalGPUs != 2 || gpu.AllocGPUs != 1 {
		t.Fatalf("gpu util = %+v", gpu)
	}
	if got := gpu.GPUPercent(); got != 50 {
		t.Fatalf("gpu%% = %v, want 50", got)
	}
}

func TestLiveAccountUsage(t *testing.T) {
	cl, clock := testCluster(t)
	submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	submitOne(t, cl, SubmitRequest{
		User: "bob", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	// Third hits the 16-CPU group limit and queues.
	submitOne(t, cl, SubmitRequest{
		User: "bob", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 4, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	u := cl.Ctl.LiveAccountUsage("lab-a")
	if u.CPUsInUse != 16 || u.CPUsQueued != 4 || u.GrpCPULimit != 16 {
		t.Fatalf("usage = %+v", u)
	}
	if len(u.PerUser) != 2 {
		t.Fatalf("per-user rows = %d, want 2", len(u.PerUser))
	}

	// GPU hours accumulate into the association after a GPU job finishes.
	submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: TRES{CPUs: 4, MemMB: 8192, GPUs: 2},
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(31 * time.Minute)
	cl.Ctl.Tick()
	ub := cl.Ctl.LiveAccountUsage("lab-b")
	if ub.GPUHoursUsed < 0.99 || ub.GPUHoursUsed > 1.01 { // 0.5h x 2 GPUs
		t.Fatalf("lab-b GPU hours = %v, want ~1.0", ub.GPUHoursUsed)
	}
}

func TestUserAccounts(t *testing.T) {
	cl, _ := testCluster(t)
	got := cl.Ctl.UserAccounts("alice")
	if len(got) != 1 || got[0] != "lab-a" {
		t.Fatalf("alice accounts = %v", got)
	}
	if got := cl.Ctl.UserAccounts("nobody"); len(got) != 0 {
		t.Fatalf("nobody accounts = %v", got)
	}
}

func TestPriorityAgeAndQOSOrdering(t *testing.T) {
	cl, clock := testCluster(t)
	// Saturate the cluster so both test jobs queue.
	for i := 0; i < 4; i++ {
		submitOne(t, cl, SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024},
			Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
		})
	}
	cl.Ctl.Tick()
	older := submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	clock.Advance(5 * time.Minute)
	newer := submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	jo, jn := cl.Ctl.Job(older), cl.Ctl.Job(newer)
	if jo.Priority <= jn.Priority {
		t.Fatalf("older job priority %d should exceed newer %d (age factor)", jo.Priority, jn.Priority)
	}
	// When capacity frees, the older job starts first.
	clock.Advance(26 * time.Minute)
	cl.Ctl.Tick()
	jo, jn = cl.Ctl.Job(older), cl.Ctl.Job(newer)
	if jo.State != StateRunning {
		t.Fatalf("older job = %s, want RUNNING", jo.State)
	}
}

func TestRPCCountersTrackQueries(t *testing.T) {
	cl, _ := testCluster(t)
	base := cl.Ctl.Stats().Total()
	cl.Ctl.Jobs(LiveJobFilter{})
	cl.Ctl.Nodes()
	cl.Ctl.Utilization()
	if got := cl.Ctl.Stats().Total() - base; got != 3 {
		t.Fatalf("controller RPCs = %d, want 3", got)
	}
	if got := cl.Ctl.Stats().Count(RPCSqueue); got != 1 {
		t.Fatalf("squeue count = %d, want 1", got)
	}
	dbdBase := cl.DBD.Stats().Total()
	cl.DBD.Jobs(JobFilter{}, cl.Ctl.Now())
	if got := cl.DBD.Stats().Total() - dbdBase; got != 1 {
		t.Fatalf("dbd RPCs = %d, want 1", got)
	}
}

func TestQueryResultsAreCopies(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	j.Name = "mutated"
	j.Nodes[0] = "bogus"
	j2 := cl.Ctl.Job(id)
	if j2.Name == "mutated" || j2.Nodes[0] == "bogus" {
		t.Fatal("controller exposed internal job state to mutation")
	}
	n := cl.Ctl.Node(j2.Nodes[0])
	n.Alloc.CPUs = 999
	if cl.Ctl.Node(j2.Nodes[0]).Alloc.CPUs == 999 {
		t.Fatal("controller exposed internal node state to mutation")
	}
}
