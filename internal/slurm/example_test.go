package slurm_test

import (
	"fmt"
	"time"

	"ooddash/internal/slurm"
)

// A minimal cluster: one partition, one account, one job through its
// whole lifecycle.
func Example() {
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cluster, err := slurm.NewCluster(slurm.ClusterConfig{
		Name: "demo",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "n", Count: 2, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu"}},
		},
		Partitions: []slurm.PartitionSpec{{Name: "cpu", MaxTime: 4 * time.Hour, Default: true}},
		QOS:        []slurm.QOS{{Name: "normal"}},
		Associations: []slurm.Association{
			{Account: "lab"}, {Account: "lab", User: "ada"},
		},
	}, clock)
	if err != nil {
		panic(err)
	}

	id, err := cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "hello", User: "ada", Account: "lab", Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 2048}, TimeLimit: time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute,
			CPUUtilization: 0.9, MemUtilization: 0.5},
	})
	if err != nil {
		panic(err)
	}
	cluster.Ctl.Tick()
	fmt.Println("after submit:", cluster.Ctl.Job(id).State)

	clock.Advance(31 * time.Minute)
	cluster.Ctl.Tick()
	fmt.Println("after 31m:", cluster.Ctl.Job(id).State)
	fmt.Println("accounting has it:", cluster.DBD.Job(id).State)
	// Output:
	// after submit: RUNNING
	// after 31m: COMPLETED
	// accounting has it: COMPLETED
}

func ExampleNodeNameRange() {
	fmt.Println(slurm.NodeNameRange([]string{"a001", "a002", "a003", "a007", "login"}))
	// Output: a[001-003],a007,login
}

func ExampleExpandNodeRange() {
	nodes, _ := slurm.ExpandNodeRange("g[001-003],login")
	fmt.Println(nodes)
	// Output: [g001 g002 g003 login]
}

func ExampleTRES_String() {
	t := slurm.TRES{CPUs: 16, MemMB: 64 * 1024, GPUs: 2, Nodes: 1}
	fmt.Println(t)
	// Output: cpu=16,mem=65536M,gres/gpu=2,node=1
}
