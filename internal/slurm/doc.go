// Package slurm simulates the Slurm workload manager: a controller daemon
// (slurmctld) owning the live queue, nodes, partitions, QOS, and scheduling,
// paired with an accounting database daemon (slurmdbd) holding job history
// and association usage.
//
// The simulator exists to reproduce "A Modular, Responsive, and Accessible
// HPC Dashboard Built upon Open OnDemand" (Tan & Jin, SC Workshops '25)
// without a production cluster: the dashboard only consumes Slurm's query
// surface (squeue, sinfo, sacct, scontrol show ...), so this package models
// exactly that surface, plus per-daemon RPC counters so experiments can
// measure the controller load that the paper's dual-layer caching design is
// meant to reduce.
//
// Time is injected through the Clock interface; tests and benchmarks drive a
// SimClock for deterministic schedules, while servers may use RealClock.
package slurm
