package slurm

// PendingReason enumerates why a pending job has not started. Values match
// Slurm's reason strings so the dashboard's friendly-message table (§4.1 of
// the paper) can key off the same identifiers users see in squeue.
type PendingReason string

// Pending reasons produced by the simulator's scheduler.
const (
	ReasonNone               PendingReason = "None"
	ReasonPriority           PendingReason = "Priority"
	ReasonResources          PendingReason = "Resources"
	ReasonAssocGrpCpuLimit   PendingReason = "AssocGrpCpuLimit"
	ReasonAssocGrpGpuLimit   PendingReason = "AssocGrpGRES"
	ReasonQOSMaxJobsPerUser  PendingReason = "QOSMaxJobsPerUserLimit"
	ReasonDependency         PendingReason = "Dependency"
	ReasonBeginTime          PendingReason = "BeginTime"
	ReasonPartitionDown      PendingReason = "PartitionDown"
	ReasonReqNodeNotAvail    PendingReason = "ReqNodeNotAvail"
	ReasonJobHeldUser        PendingReason = "JobHeldUser"
	ReasonPartitionTimeLimit PendingReason = "PartitionTimeLimit"
)
