package slurm

import (
	"testing"
	"time"
)

// powerTestCluster builds a small uniform cluster for power-cycle tests.
func powerTestCluster(t *testing.T, nodes int) (*Cluster, *SimClock) {
	t.Helper()
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := ClusterConfig{
		Name: "power-test",
		Nodes: []NodeSpec{
			{NamePrefix: "n", Count: nodes, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu"}},
		},
		Partitions: []PartitionSpec{{Name: "cpu", MaxTime: 24 * time.Hour, Default: true}},
		QOS:        []QOS{{Name: "normal"}},
		Associations: []Association{
			{Account: "acct"},
			{Account: "acct", User: "alice"},
		},
	}
	cluster, err := NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, clock
}

func powerSubmit(t *testing.T, ctl *Controller, cpus int) JobID {
	t.Helper()
	id, err := ctl.Submit(SubmitRequest{
		Name: "job", User: "alice", Account: "acct", Partition: "cpu", QOS: "normal",
		ReqTRES:   TRES{CPUs: cpus, MemMB: 1024},
		TimeLimit: time.Hour,
		Profile:   UsageProfile{CPUUtilization: 0.9, MemUtilization: 0.5, ActualDuration: 30 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestDrillPowerDownAndAutoWake(t *testing.T) {
	cluster, clock := powerTestCluster(t, 4)
	ctl := cluster.Ctl

	// Power down every idle node but one.
	down := ctl.PowerDownIdle(1)
	if len(down) != 3 {
		t.Fatalf("PowerDownIdle(1) powered down %v, want 3 nodes", down)
	}
	for _, name := range down {
		n := ctl.Node(name)
		if got := n.EffectiveState(); got != NodePoweredDown {
			t.Fatalf("node %s state = %s, want POWERED_DOWN", name, got)
		}
		if n.Schedulable() {
			t.Fatalf("powered-down node %s reports schedulable", name)
		}
	}

	// Submit more work than the one awake node can hold: the scheduler must
	// wake powered-down nodes rather than leaving the queue starved.
	for i := 0; i < 4; i++ {
		powerSubmit(t, ctl, 8)
	}
	ctl.Tick()
	if got := ctl.Power().AutoWakes; got == 0 {
		t.Fatal("scheduler blocked on resources but triggered no auto-wake")
	}
	woken := 0
	for _, n := range ctl.Nodes() {
		if n.EffectiveState() == NodePoweringUp {
			woken++
		}
	}
	if woken == 0 {
		t.Fatal("no node is POWERING_UP after the auto-wake pass")
	}

	// Boot completes after the resume delay; the queue then drains onto the
	// woken nodes.
	clock.Advance(DefaultResumeDelay)
	ctl.Tick()
	running := len(ctl.Jobs(LiveJobFilter{States: []JobState{StateRunning}}))
	if running != 4 {
		t.Fatalf("after auto-wake boot, %d jobs running, want 4", running)
	}
	for _, n := range ctl.Nodes() {
		if n.PoweringUp {
			t.Fatalf("node %s still POWERING_UP after the resume delay", n.Name)
		}
	}
}

func TestPowerDownRefusesBusyNode(t *testing.T) {
	cluster, _ := powerTestCluster(t, 1)
	ctl := cluster.Ctl
	powerSubmit(t, ctl, 4)
	ctl.Tick()
	if err := ctl.PowerDownNode("n001"); err == nil {
		t.Fatal("PowerDownNode succeeded on a node with running jobs")
	}
}

func TestDrillRebootCycle(t *testing.T) {
	cluster, clock := powerTestCluster(t, 2)
	ctl := cluster.Ctl

	// Health-check flow: drain, wait for jobs to leave, reboot, resume.
	powerSubmit(t, ctl, 4)
	ctl.Tick()
	if err := ctl.DrainNode("n001", "health check failed"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.RebootNode("n001", "health check"); err == nil {
		t.Fatal("RebootNode succeeded with jobs still running")
	}
	clock.Advance(31 * time.Minute) // job's ActualDuration elapses
	ctl.Tick()

	if err := ctl.RebootNode("n001", "health check"); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Node("n001").EffectiveState(); got != NodeReboot {
		t.Fatalf("state during reboot = %s, want REBOOT", got)
	}
	clock.Advance(DefaultRebootDelay)
	ctl.Tick()
	n := ctl.Node("n001")
	if n.Rebooting {
		t.Fatal("node still rebooting after the reboot delay")
	}
	if !n.Drain {
		t.Fatal("reboot cleared the drain flag; resume must stay an explicit step")
	}
	if !n.BootTime.Equal(ctl.Now()) {
		t.Fatalf("BootTime = %v, want refreshed to %v", n.BootTime, ctl.Now())
	}
	if err := ctl.ResumeNode("n001"); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Node("n001").EffectiveState(); got != NodeIdle {
		t.Fatalf("state after resume = %s, want IDLE", got)
	}
}

func TestRebootRepairsDownNode(t *testing.T) {
	cluster, clock := powerTestCluster(t, 1)
	ctl := cluster.Ctl
	if err := ctl.SetNodeDown("n001", "hardware fault"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.RebootNode("n001", "replace DIMM"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(DefaultRebootDelay)
	ctl.Tick()
	if got := ctl.Node("n001").EffectiveState(); got != NodeIdle {
		t.Fatalf("state after repair reboot = %s, want IDLE", got)
	}
}
