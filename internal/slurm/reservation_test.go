package slurm

import (
	"testing"
	"time"
)

func TestMaintenanceWindowLifecycle(t *testing.T) {
	cl, clock := testCluster(t)
	start := clock.Now().Add(2 * time.Hour)
	end := start.Add(4 * time.Hour)
	id, err := cl.Ctl.ScheduleMaintenance("july-pm", start, end, nil, "firmware updates")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero window id")
	}

	// Before the window: nodes are normal.
	cl.Ctl.Tick()
	for _, n := range cl.Ctl.Nodes() {
		if n.Maint {
			t.Fatalf("node %s in maint before window", n.Name)
		}
	}
	// During the window: every node is in maintenance.
	clock.Advance(3 * time.Hour)
	cl.Ctl.Tick()
	for _, n := range cl.Ctl.Nodes() {
		if !n.Maint || n.EffectiveState() != NodeMaint {
			t.Fatalf("node %s not in maint during window: %s", n.Name, n.EffectiveState())
		}
	}
	// After the window: nodes recover.
	clock.Advance(4 * time.Hour)
	cl.Ctl.Tick()
	for _, n := range cl.Ctl.Nodes() {
		if n.Maint {
			t.Fatalf("node %s still in maint after window", n.Name)
		}
	}
}

func TestMaintenanceBlocksOverlappingJobs(t *testing.T) {
	cl, clock := testCluster(t)
	start := clock.Now().Add(2 * time.Hour)
	if _, err := cl.Ctl.ScheduleMaintenance("pm", start, start.Add(8*time.Hour), nil, "pm"); err != nil {
		t.Fatal(err)
	}
	// A 4-hour job would run into the window: blocked with ReqNodeNotAvail.
	long := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: 4 * time.Hour,
		Profile: UsageProfile{ActualDuration: 3 * time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	// A 1-hour job fits before the window and starts.
	short := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour,
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	jl := cl.Ctl.Job(long)
	if jl.State != StatePending || jl.Reason != ReasonReqNodeNotAvail {
		t.Fatalf("long job = %s/%s, want PENDING/ReqNodeNotAvail", jl.State, jl.Reason)
	}
	if got := cl.Ctl.Job(short).State; got != StateRunning {
		t.Fatalf("short job = %s, want RUNNING", got)
	}
	// Once the window passes, the long job starts.
	clock.Advance(11 * time.Hour)
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(long).State; got != StateRunning {
		t.Fatalf("long job after window = %s", got)
	}
}

func TestMaintenancePartialNodeList(t *testing.T) {
	cl, clock := testCluster(t)
	start := clock.Now().Add(time.Minute)
	if _, err := cl.Ctl.ScheduleMaintenance("one-node", start, start.Add(time.Hour),
		[]string{"c001"}, "dimm swap"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	cl.Ctl.Tick()
	if n := cl.Ctl.Node("c001"); !n.Maint {
		t.Fatal("c001 not in maint")
	}
	if n := cl.Ctl.Node("c002"); n.Maint {
		t.Fatal("c002 wrongly in maint")
	}
	// Scheduling flows around the reserved node.
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: 24 * time.Hour,
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateRunning || j.Nodes[0] == "c001" {
		t.Fatalf("job = %s on %v", j.State, j.Nodes)
	}
}

func TestMaintenanceValidation(t *testing.T) {
	cl, clock := testCluster(t)
	now := clock.Now()
	if _, err := cl.Ctl.ScheduleMaintenance("bad", now.Add(time.Hour), now, nil, ""); err == nil {
		t.Fatal("expected error for inverted window")
	}
	if _, err := cl.Ctl.ScheduleMaintenance("bad", now, now.Add(time.Hour), []string{"zz"}, ""); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestMaintenanceCancel(t *testing.T) {
	cl, clock := testCluster(t)
	start := clock.Now().Add(time.Minute)
	id, err := cl.Ctl.ScheduleMaintenance("oops", start, start.Add(time.Hour), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Ctl.CancelMaintenance(id); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ctl.CancelMaintenance(id); err == nil {
		t.Fatal("double cancel should fail")
	}
	clock.Advance(2 * time.Minute)
	cl.Ctl.Tick()
	for _, n := range cl.Ctl.Nodes() {
		if n.Maint {
			t.Fatalf("cancelled window still applied to %s", n.Name)
		}
	}
}

func TestManualMaintSurvivesWindows(t *testing.T) {
	cl, clock := testCluster(t)
	if err := cl.Ctl.SetNodeMaint("c002", true); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if n := cl.Ctl.Node("c002"); !n.Maint {
		t.Fatal("manual maint not applied")
	}
	// A window on another node comes and goes; c002 stays in manual maint.
	start := clock.Now().Add(time.Minute)
	if _, err := cl.Ctl.ScheduleMaintenance("w", start, start.Add(time.Hour), []string{"c001"}, ""); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	cl.Ctl.Tick()
	if n := cl.Ctl.Node("c002"); !n.Maint {
		t.Fatal("manual maint cleared by unrelated window expiry")
	}
	if err := cl.Ctl.SetNodeMaint("c002", false); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if n := cl.Ctl.Node("c002"); n.Maint {
		t.Fatal("manual maint not cleared")
	}
}

func TestMaintenanceWindowsPruned(t *testing.T) {
	cl, clock := testCluster(t)
	start := clock.Now().Add(time.Minute)
	if _, err := cl.Ctl.ScheduleMaintenance("old", start, start.Add(time.Hour), nil, ""); err != nil {
		t.Fatal(err)
	}
	clock.Advance(48 * time.Hour)
	cl.Ctl.Tick()
	if got := len(cl.Ctl.MaintenanceWindows()); got != 0 {
		t.Fatalf("windows after prune = %d", got)
	}
}
