package slurm

import "sync"

// RPCKind labels the query classes the daemons serve. The split matters for
// the paper's §2.4/§3.2 claim: squeue and scontrol hit the controller
// (slurmctld), which also schedules, while sacct hits the database daemon
// (slurmdbd); caching exists to keep controller traffic down.
type RPCKind string

// RPC kinds counted by DaemonStats.
const (
	RPCSqueue      RPCKind = "REQUEST_JOB_INFO"         // squeue
	RPCSinfo       RPCKind = "REQUEST_PARTITION_INFO"   // sinfo
	RPCNodeInfo    RPCKind = "REQUEST_NODE_INFO"        // scontrol show node
	RPCJobInfo     RPCKind = "REQUEST_JOB_INFO_SINGLE"  // scontrol show job
	RPCAssocInfo   RPCKind = "REQUEST_ASSOC_INFO"       // scontrol show assoc
	RPCSubmit      RPCKind = "REQUEST_SUBMIT_BATCH_JOB" // sbatch/salloc
	RPCCancel      RPCKind = "REQUEST_CANCEL_JOB"       // scancel
	RPCSacct       RPCKind = "DBD_GET_JOBS"             // sacct
	RPCUsageRollup RPCKind = "DBD_GET_USAGE"            // sreport-style usage query
	RPCRollup      RPCKind = "DBD_GET_ROLLUP_USAGE"     // pre-aggregated rollup query
)

// DaemonStats counts RPCs served by one daemon. All methods are safe for
// concurrent use.
type DaemonStats struct {
	mu     sync.Mutex
	name   string
	counts map[RPCKind]int64
	total  int64
}

// NewDaemonStats returns a stats counter labelled with the daemon name.
func NewDaemonStats(name string) *DaemonStats {
	return &DaemonStats{name: name, counts: make(map[RPCKind]int64)}
}

// Name returns the daemon label ("slurmctld" or "slurmdbd").
func (s *DaemonStats) Name() string { return s.name }

// Record counts one served RPC of the given kind.
func (s *DaemonStats) Record(kind RPCKind) {
	s.mu.Lock()
	s.counts[kind]++
	s.total++
	s.mu.Unlock()
}

// Total returns the total number of RPCs served.
func (s *DaemonStats) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Count returns the number of RPCs served of one kind.
func (s *DaemonStats) Count(kind RPCKind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[kind]
}

// Snapshot returns a copy of all counters.
func (s *DaemonStats) Snapshot() map[RPCKind]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[RPCKind]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters; used between benchmark phases.
func (s *DaemonStats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts = make(map[RPCKind]int64)
	s.total = 0
}
