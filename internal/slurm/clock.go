package slurm

import (
	"sync"
	"time"
)

// Clock abstracts time so the simulator can run deterministically in tests
// and benchmarks, and in real time inside long-running servers.
type Clock interface {
	// Now returns the current simulated or wall-clock time.
	Now() time.Time
}

// RealClock is a Clock backed by the system wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced Clock. The zero value is not usable; use
// NewSimClock. SimClock is safe for concurrent use.
type SimClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSimClock returns a SimClock starting at the given instant.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: simulated time never goes backwards.
func (c *SimClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// Sleep advances the simulated clock by d. It satisfies the sleep hooks the
// resilience and fault-injection layers take, so retry backoff and injected
// latency consume simulated rather than wall-clock time in tests.
func (c *SimClock) Sleep(d time.Duration) { c.Advance(d) }

// Set jumps the clock to t if t is not before the current time.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}
