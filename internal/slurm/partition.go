package slurm

import "time"

// Partition is a named set of nodes with shared limits, matching Slurm's
// partition concept. The dashboard's System Status widget (§3.3) summarizes
// utilization per partition.
type Partition struct {
	Name     string
	Nodes    []string // node names; kept sorted
	MaxTime  time.Duration
	State    string // "UP" or "DOWN"
	Default  bool
	Priority int // partition priority factor added to job priority
}

// Up reports whether the partition accepts and schedules jobs.
func (p *Partition) Up() bool { return p.State != "DOWN" }

// Clone returns a deep copy safe for concurrent readers.
func (p *Partition) Clone() *Partition {
	cp := *p
	cp.Nodes = append([]string(nil), p.Nodes...)
	return &cp
}

// PartitionUtilization is a point-in-time utilization summary for one
// partition, the unit of the System Status widget.
type PartitionUtilization struct {
	Name       string
	State      string
	TotalCPUs  int
	AllocCPUs  int
	TotalGPUs  int
	AllocGPUs  int
	TotalNodes int
	// Node state counts, keyed by effective state.
	NodesByState map[NodeState]int
	PendingJobs  int
	RunningJobs  int
}

// CPUPercent returns allocated CPUs as a percentage of total.
func (u PartitionUtilization) CPUPercent() float64 {
	if u.TotalCPUs == 0 {
		return 0
	}
	return 100 * float64(u.AllocCPUs) / float64(u.TotalCPUs)
}

// GPUPercent returns allocated GPUs as a percentage of total.
func (u PartitionUtilization) GPUPercent() float64 {
	if u.TotalGPUs == 0 {
		return 0
	}
	return 100 * float64(u.AllocGPUs) / float64(u.TotalGPUs)
}
