package slurm

import (
	"sort"
	"time"

	"ooddash/internal/efficiency/effmath"
)

// Incremental time-series rollups: the accounting daemon maintains
// pre-aggregated usage buckets as jobs complete, so historical queries cost
// O(buckets returned) instead of O(jobs recorded). Three resolutions cascade
// on the shared sim clock — minutes fold into hours, hours into days — and
// each level keeps a bounded retention window, so memory stays flat while
// history grows without limit (the Keck pre-aggregation move, ROADMAP item 5).
//
// Aggregates are pure int64 sums (durations in whole seconds, efficiency
// percentages in fixed-point micro-percent), which makes folding
// order-independent and exact: a bucket assembled minute-by-minute equals the
// same bucket recomputed from raw rows in one pass, bit for bit. Floats
// appear only when a response builder divides the sums — and both the rollup
// path and the raw-recompute ablation share that builder, which is what the
// golden equivalence test pins.

// Rollup resolutions, in seconds. Buckets are half-open [start, start+res)
// aligned to multiples of the resolution in UTC.
const (
	RollupMinute int64 = 60
	RollupHour   int64 = 3600
	RollupDay    int64 = 86400
)

// Retention per resolution: how far behind the newest activity each level
// keeps buckets. Minutes serve short interactive windows, hours the weekly/
// monthly views, days the multi-year ones.
const (
	RollupMinuteRetention int64 = 48 * 3600      // 48 hours of minutes
	RollupHourRetention   int64 = 60 * 86400     // 60 days of hours
	RollupDayRetention    int64 = 10 * 366 * 86400 // ~10 years of days
)

// Rollup dimension scopes. "total" has a single unnamed series; the others
// carry one series per distinct user/account/partition.
const (
	RollupScopeTotal     = "total"
	RollupScopeUser      = "user"
	RollupScopeAccount   = "account"
	RollupScopePartition = "partition"
)

// RollupScopes lists the valid scope names.
var RollupScopes = []string{RollupScopeTotal, RollupScopeUser, RollupScopeAccount, RollupScopePartition}

// RollupAgg is one bucket's aggregate for one dimension value. Every field
// is an exact integer sum so folding is associative and order-independent;
// consumers derive hours and mean percentages at render time.
type RollupAgg struct {
	Jobs      int64 // terminal jobs whose end time fell in the bucket
	Completed int64 // of those, COMPLETED
	Failed    int64 // of those, FAILED / NODE_FAIL / OUT_OF_MEMORY / TIMEOUT
	Started   int64 // of those, jobs that actually ran (have a start time)
	WallSec   int64 // wall-clock seconds consumed (suspension excluded)
	CPUSec    int64 // CPU core-seconds consumed
	GPUSec    int64 // GPU-seconds allocated (wall seconds x GPUs)
	WaitSec   int64 // queue-wait seconds (start - submit, started jobs only)
	// Efficiency sums in micro-percent with per-metric sample counts, so a
	// metric that was NotApplicable for some jobs does not drag the mean.
	TimeEffMicro int64
	TimeEffN     int64
	CPUEffMicro  int64
	CPUEffN      int64
	MemEffMicro  int64
	MemEffN      int64
	GPUEffMicro  int64
	GPUEffN      int64
}

// Add folds another aggregate into a.
func (a *RollupAgg) Add(b *RollupAgg) {
	a.Jobs += b.Jobs
	a.Completed += b.Completed
	a.Failed += b.Failed
	a.Started += b.Started
	a.WallSec += b.WallSec
	a.CPUSec += b.CPUSec
	a.GPUSec += b.GPUSec
	a.WaitSec += b.WaitSec
	a.TimeEffMicro += b.TimeEffMicro
	a.TimeEffN += b.TimeEffN
	a.CPUEffMicro += b.CPUEffMicro
	a.CPUEffN += b.CPUEffN
	a.MemEffMicro += b.MemEffMicro
	a.MemEffN += b.MemEffN
	a.GPUEffMicro += b.GPUEffMicro
	a.GPUEffN += b.GPUEffN
}

// IsZero reports whether the aggregate carries no jobs.
func (a *RollupAgg) IsZero() bool { return a.Jobs == 0 }

// AddSample folds one terminal job's scalar record into the aggregate. It is
// the single fold implementation: the daemon's ingest path feeds it values
// derived from the live Job, and the raw-recompute ablation feeds it the
// identical values parsed back off the accounting wire — whole seconds, MB,
// counts, and the one-decimal GPU percentage — so both paths produce
// bit-identical sums. The efficiency gates mirror efficiency.Compute exactly.
func (a *RollupAgg) AddSample(state JobState, started bool,
	elapsedSec, limitSec, cpuSec, waitSec int64, cpus, gpus int,
	maxRSSMB, reqMemMB int64, gpuUtilPct float64) {
	a.Jobs++
	switch state {
	case StateCompleted:
		a.Completed++
	case StateFailed, StateNodeFail, StateOutOfMemory, StateTimeout:
		a.Failed++
	}
	if !started {
		return
	}
	a.Started++
	a.WaitSec += waitSec
	a.WallSec += elapsedSec
	a.CPUSec += cpuSec
	a.GPUSec += elapsedSec * int64(gpus)
	if elapsedSec <= 0 {
		return
	}
	if v := effmath.Time(elapsedSec, limitSec); v >= 0 {
		a.TimeEffMicro += effmath.Micro(v)
		a.TimeEffN++
	}
	if v := effmath.CPU(cpuSec, elapsedSec, cpus); v >= 0 {
		a.CPUEffMicro += effmath.Micro(v)
		a.CPUEffN++
	}
	if v := effmath.Mem(maxRSSMB, reqMemMB); v >= 0 {
		a.MemEffMicro += effmath.Micro(v)
		a.MemEffN++
	}
	if gpus > 0 && gpuUtilPct >= 0 {
		a.GPUEffMicro += effmath.Micro(gpuUtilPct)
		a.GPUEffN++
	}
}

// RollupRow is one (bucket, dimension) cell of a rollup query result.
type RollupRow struct {
	BucketStart int64 // unix seconds, aligned to the resolution
	Scope       string
	Name        string // "" for the total scope
	RollupAgg
}

// RollupStats is a snapshot of the rollup store for observability.
type RollupStats struct {
	MinuteBuckets int
	HourBuckets   int
	DayBuckets    int
	// Compaction counters: hours sealed from minutes, days sealed from hours.
	CompactionsHour int64
	CompactionsDay  int64
	Ingested        int64 // terminal jobs folded in
	LateDirect      int64 // ingests that wrote directly into sealed buckets
	EvictedBuckets  int64 // time buckets dropped past retention
}

// rollupDim is one dimension series key.
type rollupDim struct {
	scope string
	name  string
}

// rollupStore holds the three bucket levels. It has no lock of its own: the
// owning DBD's mutex guards every access, which keeps lock ordering trivial
// (ingest runs inside recordJob's critical section).
type rollupStore struct {
	// levels[0]=minutes, [1]=hours, [2]=days; each maps bucket start to the
	// per-dimension aggregates present in that bucket (sparse).
	levels [3]map[int64]map[rollupDim]*RollupAgg
	// bounds tracks each dimension's [earliest, latest] terminal end time,
	// for anchoring "all history" queries without scanning raw records.
	bounds map[rollupDim][2]int64

	// Sealing watermarks: every hour bucket starting before sealedHour has
	// been folded from its minutes (or only ever received direct writes);
	// likewise days before sealedDay. Buckets at or past a watermark are
	// served by folding the finer level on the fly.
	sealedHour  int64
	sealedDay   int64
	initialized bool
	maxSeen     int64 // newest end time ingested; drives retention skips

	ingested       int64
	lateDirect     int64
	evictedBuckets int64
	compactHour    int64
	compactDay     int64
}

func newRollupStore() rollupStore {
	var s rollupStore
	for i := range s.levels {
		s.levels[i] = make(map[int64]map[rollupDim]*RollupAgg)
	}
	s.bounds = make(map[rollupDim][2]int64)
	return s
}

// rollupFloor aligns sec down to a multiple of res.
func rollupFloor(sec, res int64) int64 {
	f := sec - sec%res
	if sec < 0 && sec%res != 0 {
		f -= res
	}
	return f
}

// jobSample extracts the fold inputs from a terminal job, truncating exactly
// the way the accounting wire does (whole seconds, one-decimal GPU percent)
// so rollup sums match a recompute from wire rows bit for bit.
func jobSample(j *Job) (state JobState, started bool,
	elapsedSec, limitSec, cpuSec, waitSec int64, cpus, gpus int,
	maxRSSMB, reqMemMB int64, gpuUtilPct float64) {
	state = j.State
	started = !j.StartTime.IsZero()
	end := j.EndTime
	elapsedSec = int64(j.Elapsed(end) / time.Second)
	limitSec = int64(j.TimeLimit / time.Second)
	cpuSec = int64(j.CPUTimeUsed(end) / time.Second)
	if started {
		waitSec = j.StartTime.Unix() - j.SubmitTime.Unix()
		maxRSSMB = j.MaxRSSMB()
	}
	cpus = j.AllocTRES.CPUs
	gpus = j.AllocTRES.GPUs
	gpuUtilPct = effmath.NotApplicable
	if gpus > 0 && started {
		gpuUtilPct = effmath.GPUPercent(j.Profile.GPUUtilization)
	}
	reqMemMB = j.ReqTRES.MemMB
	return
}

// ingest folds one newly terminal job into every dimension it belongs to.
// Events landing in already-sealed buckets (accounting backfill, bulk
// history loads) write directly into the sealed hour/day aggregates instead
// of the minute level, so sealed buckets are never re-folded and nothing is
// double-counted. Writes older than a level's retention are skipped — the
// coarser level that will actually serve them still gets the data.
func (s *rollupStore) ingest(j *Job) {
	state, started, elapsedSec, limitSec, cpuSec, waitSec, cpus, gpus, maxRSSMB, reqMemMB, gpuUtilPct := jobSample(j)
	var agg RollupAgg
	agg.AddSample(state, started, elapsedSec, limitSec, cpuSec, waitSec, cpus, gpus, maxRSSMB, reqMemMB, gpuUtilPct)

	endSec := j.EndTime.Unix()
	s.ingested++
	if endSec > s.maxSeen {
		s.maxSeen = endSec
	}
	if !s.initialized {
		s.initialized = true
		s.sealedHour = rollupFloor(endSec, RollupHour)
		s.sealedDay = rollupFloor(endSec, RollupDay)
	}

	dims := []rollupDim{
		{RollupScopeTotal, ""},
		{RollupScopeUser, j.User},
		{RollupScopeAccount, j.Account},
		{RollupScopePartition, j.Partition},
	}
	for _, dim := range dims {
		if b, ok := s.bounds[dim]; !ok {
			s.bounds[dim] = [2]int64{endSec, endSec}
		} else {
			if endSec < b[0] {
				b[0] = endSec
			}
			if endSec > b[1] {
				b[1] = endSec
			}
			s.bounds[dim] = b
		}
	}

	m := rollupFloor(endSec, RollupMinute)
	h := rollupFloor(endSec, RollupHour)
	d := rollupFloor(endSec, RollupDay)
	if h >= s.sealedHour {
		// On time: the minute level is the sole carrier until compaction
		// folds it upward, so it is always written.
		s.addDims(0, m, dims, &agg)
		return
	}
	s.lateDirect++
	if m >= s.maxSeen-RollupMinuteRetention {
		s.addDims(0, m, dims, &agg)
	}
	if d < s.sealedDay {
		// Day already sealed: it carries the event; the hour copy is only
		// kept while hour-resolution queries can still reach it.
		s.addDims(2, d, dims, &agg)
		if h >= s.maxSeen-RollupHourRetention {
			s.addDims(1, h, dims, &agg)
		}
		return
	}
	// Day not yet sealed: the hour bucket must carry the event so the
	// eventual day fold (which sums hour buckets) includes it.
	s.addDims(1, h, dims, &agg)
}

// addDims adds agg into the bucket at level for every dimension.
func (s *rollupStore) addDims(level int, bucket int64, dims []rollupDim, agg *RollupAgg) {
	byDim := s.levels[level][bucket]
	if byDim == nil {
		byDim = make(map[rollupDim]*RollupAgg, len(dims))
		s.levels[level][bucket] = byDim
	}
	for _, dim := range dims {
		acc := byDim[dim]
		if acc == nil {
			acc = &RollupAgg{}
			byDim[dim] = acc
		}
		acc.Add(agg)
	}
}

// advance runs cascade compaction and retention eviction up to nowSec: every
// hour fully in the past seals (its minutes fold into one hour bucket), every
// day whose 24 hours are all sealed seals likewise, and buckets older than
// their level's retention are dropped.
func (s *rollupStore) advance(nowSec int64) {
	if !s.initialized {
		return
	}
	for s.sealedHour+RollupHour <= nowSec {
		s.fold(1, s.sealedHour, RollupHour, 0, RollupMinute)
		s.sealedHour += RollupHour
		s.compactHour++
	}
	for s.sealedDay+RollupDay <= nowSec && s.sealedDay+RollupDay <= s.sealedHour {
		s.fold(2, s.sealedDay, RollupDay, 1, RollupHour)
		s.sealedDay += RollupDay
		s.compactDay++
	}
	s.evict(0, nowSec-RollupMinuteRetention)
	s.evict(1, nowSec-RollupHourRetention)
	s.evict(2, nowSec-RollupDayRetention)
}

// fold sums the source-level buckets covering [dstStart, dstStart+dstRes)
// into the destination bucket, creating it only if there is data.
func (s *rollupStore) fold(dstLevel int, dstStart, dstRes int64, srcLevel int, srcRes int64) {
	for t := dstStart; t < dstStart+dstRes; t += srcRes {
		src := s.levels[srcLevel][t]
		if len(src) == 0 {
			continue
		}
		dst := s.levels[dstLevel][dstStart]
		if dst == nil {
			dst = make(map[rollupDim]*RollupAgg, len(src))
			s.levels[dstLevel][dstStart] = dst
		}
		for dim, agg := range src {
			acc := dst[dim]
			if acc == nil {
				acc = &RollupAgg{}
				dst[dim] = acc
			}
			acc.Add(agg)
		}
	}
}

// evict drops buckets starting before cutoff from one level.
func (s *rollupStore) evict(level int, cutoff int64) {
	for t := range s.levels[level] {
		if t < cutoff {
			delete(s.levels[level], t)
			s.evictedBuckets++
		}
	}
}

// query returns the aggregates for [startSec, endSec) at the resolution,
// one row per (bucket, dimension name) that has data, sorted by bucket then
// name. Both bounds must be aligned to res. name narrows a scope to one
// series; empty returns every series in the scope. Buckets past the sealing
// watermark fold the finer level on the fly, so results are exact for
// still-open buckets too.
func (s *rollupStore) query(scope, name string, startSec, endSec, res int64) []RollupRow {
	var rows []RollupRow
	names := make([]string, 0, 8)
	for b := startSec; b < endSec; b += res {
		byName := make(map[string]*RollupAgg)
		s.bucketInto(res, b, scope, name, byName)
		if len(byName) == 0 {
			continue
		}
		names = names[:0]
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rows = append(rows, RollupRow{BucketStart: b, Scope: scope, Name: n, RollupAgg: *byName[n]})
		}
	}
	return rows
}

// bucketInto accumulates one bucket's aggregates into out, keyed by
// dimension name, descending into finer levels for unsealed buckets.
func (s *rollupStore) bucketInto(res, b int64, scope, name string, out map[string]*RollupAgg) {
	switch res {
	case RollupMinute:
		s.mapInto(s.levels[0][b], scope, name, out)
	case RollupHour:
		if b < s.sealedHour {
			s.mapInto(s.levels[1][b], scope, name, out)
			return
		}
		for m := b; m < b+RollupHour; m += RollupMinute {
			s.mapInto(s.levels[0][m], scope, name, out)
		}
	case RollupDay:
		if b < s.sealedDay {
			s.mapInto(s.levels[2][b], scope, name, out)
			return
		}
		for h := b; h < b+RollupDay; h += RollupHour {
			s.bucketInto(RollupHour, h, scope, name, out)
		}
	}
}

func (s *rollupStore) mapInto(m map[rollupDim]*RollupAgg, scope, name string, out map[string]*RollupAgg) {
	for dim, agg := range m {
		if dim.scope != scope || (name != "" && dim.name != name) {
			continue
		}
		acc := out[dim.name]
		if acc == nil {
			acc = &RollupAgg{}
			out[dim.name] = acc
		}
		acc.Add(agg)
	}
}

// boundsFor returns the earliest and latest terminal end times recorded for
// a scope (optionally one named series), for anchoring "all history" ranges.
func (s *rollupStore) boundsFor(scope, name string) (minEnd, maxEnd int64, ok bool) {
	if name != "" || scope == RollupScopeTotal {
		b, found := s.bounds[rollupDim{scope, name}]
		return b[0], b[1], found
	}
	for dim, b := range s.bounds {
		if dim.scope != scope {
			continue
		}
		if !ok || b[0] < minEnd {
			minEnd = b[0]
		}
		if !ok || b[1] > maxEnd {
			maxEnd = b[1]
		}
		ok = true
	}
	return minEnd, maxEnd, ok
}

func (s *rollupStore) snapshot() RollupStats {
	return RollupStats{
		MinuteBuckets:   len(s.levels[0]),
		HourBuckets:     len(s.levels[1]),
		DayBuckets:      len(s.levels[2]),
		CompactionsHour: s.compactHour,
		CompactionsDay:  s.compactDay,
		Ingested:        s.ingested,
		LateDirect:      s.lateDirect,
		EvictedBuckets:  s.evictedBuckets,
	}
}

// RollupQuery serves one rollup read from the accounting daemon. start/end
// are unix seconds aligned to res (callers align; unaligned bounds are
// floored). Counted as a rollup-usage RPC.
func (d *DBD) RollupQuery(scope, name string, start, end, res int64) []RollupRow {
	d.stats.Record(RPCRollup)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if res != RollupMinute && res != RollupHour && res != RollupDay {
		return nil
	}
	return d.rollups.query(scope, name, rollupFloor(start, res), rollupFloor(end+res-1, res), res)
}

// RollupBounds reports the earliest and latest terminal end times the store
// has seen for a scope/series — the anchor for "all history" queries.
// Counted as a rollup-usage RPC.
func (d *DBD) RollupBounds(scope, name string) (minEnd, maxEnd int64, ok bool) {
	d.stats.Record(RPCRollup)
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rollups.boundsFor(scope, name)
}

// RollupStats snapshots the store's size and compaction counters.
func (d *DBD) RollupStats() RollupStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rollups.snapshot()
}

// AdvanceRollups runs cascade compaction and eviction up to now. The
// scheduler calls it once per tick after streaming completions.
func (d *DBD) AdvanceRollups(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rollups.advance(now.Unix())
}

// Backfill bulk-loads terminal accounting records: straight into the job
// store and the rollup pipeline, bypassing the scheduler. Used by the
// workload generator to synthesize deep history cheaply. Records that
// already exist, are not terminal, or lack an end time are skipped; the
// count of loaded records is returned. Association usage is not charged
// (backfilled history predates the current billing window).
func (d *DBD) Backfill(jobs []*Job) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	added := 0
	for _, j := range jobs {
		if _, exists := d.jobs[j.ID]; exists {
			continue
		}
		if !j.State.Terminal() || j.EndTime.IsZero() {
			continue
		}
		cp := j.Clone()
		d.jobs[cp.ID] = cp
		d.order = append(d.order, cp.ID)
		d.rollups.ingest(cp)
		added++
	}
	if added > 0 {
		sort.Slice(d.order, func(i, k int) bool {
			a, b := d.jobs[d.order[i]], d.jobs[d.order[k]]
			if !a.SubmitTime.Equal(b.SubmitTime) {
				return a.SubmitTime.Before(b.SubmitTime)
			}
			return a.ID < b.ID
		})
	}
	return added
}
