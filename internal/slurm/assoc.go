package slurm

// Association links a (user, account) pair to limits and usage, mirroring
// the records `scontrol show assoc` prints. The dashboard's Accounts widget
// (§3.4) is built from these.
type Association struct {
	Account string
	User    string // empty for the account-level (parent) association

	// Limits. Zero means unlimited.
	GrpCPULimit     int     // max CPUs allocated at once across the account
	GrpGPUHourLimit float64 // GPU-hour budget for the account

	// Usage maintained by the accounting daemon.
	GPUHoursUsed float64 // accumulated GPU hours charged to this association
	CPUTimeUsed  float64 // accumulated core-hours charged to this association
}

// Key returns the map key identifying the association.
func (a *Association) Key() AssocKey { return AssocKey{Account: a.Account, User: a.User} }

// Clone returns a copy safe to hand to readers.
func (a *Association) Clone() *Association {
	cp := *a
	return &cp
}

// AssocKey identifies an association: account plus (optional) user.
type AssocKey struct {
	Account string
	User    string
}

// QOS is a quality-of-service level with per-user limits, matching Slurm's
// QOS concept as far as the dashboard needs it (the My Jobs QoS column and
// the QOSMaxJobsPerUserLimit pending reason).
type QOS struct {
	Name           string
	Priority       int // priority factor added to job priority
	MaxJobsPerUser int // max running jobs per user; zero means unlimited
	// Preemptable marks jobs in this QOS as requeueable when higher-priority
	// work cannot otherwise start (Slurm's PreemptMode=REQUEUE), the standby
	// tier semantics of the default cluster config.
	Preemptable bool
}

// AccountUsage is the Accounts-widget view of one association: the account's
// limits together with its members' live and accumulated consumption.
type AccountUsage struct {
	Account         string
	GrpCPULimit     int
	CPUsInUse       int
	CPUsQueued      int
	GrpGPUHourLimit float64
	GPUHoursUsed    float64
	// PerUser breaks the account usage down by member, newest-first by usage,
	// feeding the CSV/Excel export described in §3.4.
	PerUser []UserUsage
}

// UserUsage is one member's share of an account's usage.
type UserUsage struct {
	User         string
	CPUsInUse    int
	CPUsQueued   int
	GPUHoursUsed float64
	CPUHoursUsed float64
	RunningJobs  int
	PendingJobs  int
}
