package slurm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTRESAddSub(t *testing.T) {
	a := TRES{CPUs: 4, MemMB: 8000, GPUs: 1, Nodes: 1}
	b := TRES{CPUs: 2, MemMB: 2000, GPUs: 0, Nodes: 1}
	sum := a.Add(b)
	if sum != (TRES{CPUs: 6, MemMB: 10000, GPUs: 1, Nodes: 2}) {
		t.Fatalf("Add = %+v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub = %+v, want %+v", got, a)
	}
}

func TestTRESFits(t *testing.T) {
	free := TRES{CPUs: 8, MemMB: 16000, GPUs: 2}
	tests := []struct {
		req  TRES
		want bool
	}{
		{TRES{CPUs: 8, MemMB: 16000, GPUs: 2}, true},
		{TRES{CPUs: 9, MemMB: 1, GPUs: 0}, false},
		{TRES{CPUs: 1, MemMB: 16001, GPUs: 0}, false},
		{TRES{CPUs: 1, MemMB: 1, GPUs: 3}, false},
		{TRES{}, true},
		// Nodes dimension must be ignored by Fits.
		{TRES{CPUs: 1, Nodes: 99}, true},
	}
	for _, tc := range tests {
		if got := tc.req.Fits(free); got != tc.want {
			t.Errorf("(%v).Fits(%v) = %v, want %v", tc.req, free, got, tc.want)
		}
	}
}

func TestTRESStringRoundTrip(t *testing.T) {
	tests := []TRES{
		{},
		{CPUs: 4},
		{CPUs: 4, MemMB: 8000},
		{CPUs: 128, MemMB: 256 * 1024, GPUs: 4, Nodes: 2},
	}
	for _, tr := range tests {
		got, err := ParseTRES(tr.String())
		if err != nil {
			t.Fatalf("ParseTRES(%q): %v", tr.String(), err)
		}
		if got != tr {
			t.Errorf("round trip %v -> %q -> %v", tr, tr.String(), got)
		}
	}
}

func TestTRESStringFormat(t *testing.T) {
	tr := TRES{CPUs: 4, MemMB: 8000, GPUs: 1, Nodes: 1}
	want := "cpu=4,mem=8000M,gres/gpu=1,node=1"
	if got := tr.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := (TRES{}).String(); got != "" {
		t.Fatalf("zero TRES String = %q, want empty", got)
	}
}

func TestParseTRESErrors(t *testing.T) {
	for _, bad := range []string{"cpu", "cpu=x", "mem=1Q2", "gres/gpu=1.5", "node=-"} {
		if _, err := ParseTRES(bad); err == nil {
			t.Errorf("ParseTRES(%q): expected error", bad)
		}
	}
}

func TestParseTRESIgnoresUnknownDimensions(t *testing.T) {
	got, err := ParseTRES("cpu=2,billing=48,energy=0")
	if err != nil {
		t.Fatal(err)
	}
	if got.CPUs != 2 {
		t.Fatalf("CPUs = %d, want 2", got.CPUs)
	}
}

func TestParseMemMB(t *testing.T) {
	tests := []struct {
		in   string
		want int64
	}{
		{"512", 512},
		{"512M", 512},
		{"16G", 16 * 1024},
		{"1T", 1024 * 1024},
		{"2048K", 2},
		{"0", 0},
	}
	for _, tc := range tests {
		got, err := parseMemMB(tc.in)
		if err != nil {
			t.Fatalf("parseMemMB(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("parseMemMB(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := parseMemMB(""); err == nil {
		t.Error("parseMemMB(\"\"): expected error")
	}
}

// genTRES generates non-negative TRES values for property tests.
func genTRES(r *rand.Rand) TRES {
	return TRES{
		CPUs:  r.Intn(1 << 16),
		MemMB: int64(r.Intn(1 << 24)),
		GPUs:  r.Intn(64),
		Nodes: r.Intn(1 << 10),
	}
}

func TestTRESRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := genTRES(r)
		got, err := ParseTRES(tr.String())
		return err == nil && got == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTRESAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genTRES(r), genTRES(r)
		return reflect.DeepEqual(a.Add(b).Sub(b), a) && reflect.DeepEqual(a.Add(b), b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
