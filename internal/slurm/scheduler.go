package slurm

import (
	"sort"
	"time"
)

// schedQueueDepth caps how many placement attempts one scheduling pass
// makes, mirroring slurmctld's default_queue_depth / bf_max_job_test.
const schedQueueDepth = 200

// Tick advances the simulation to the clock's current time: it completes
// jobs whose run time has elapsed, fails jobs on downed nodes, runs one
// scheduling pass over the pending queue, refreshes node load figures, and
// purges finished jobs older than the retention window.
//
// Tick is cheap enough to call after every clock advance; the dashboard
// benchmarks call it from a driver loop to simulate a live cluster.
func (c *Controller) Tick() {
	now := c.clock.Now()

	type finished struct {
		job *Job
	}
	var done []finished

	c.mu.Lock()
	// 0. Enter/leave scheduled maintenance windows; complete power-up and
	// reboot transitions whose boot delay has elapsed.
	c.applyMaintenanceLocked(now)
	c.applyPowerLocked(now)
	// 1. Fail jobs (running or suspended) whose nodes went down.
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil || (j.State != StateRunning && j.State != StateSuspended) {
			continue
		}
		for _, nname := range j.Nodes {
			if n := c.nodes[nname]; n != nil && n.State == NodeDown {
				c.freeJobResourcesLocked(j)
				j.State = StateNodeFail
				j.Reason = ReasonNone
				j.EndTime = now
				j.ExitCode = 1
				c.emitJobEvent(EventNodeFail, j, now)
				done = append(done, finished{job: j.Clone()})
				break
			}
		}
	}
	// 2. Complete jobs whose run time elapsed.
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil || j.State != StateRunning {
			continue
		}
		end, state := j.scheduledEnd()
		if !now.Before(end) {
			c.freeJobResourcesLocked(j)
			j.State = state
			j.Reason = ReasonNone
			j.EndTime = end // exact end, not tick time: deterministic accounting
			j.ExitCode = j.Profile.ExitCode
			if state == StateTimeout || state == StateOutOfMemory {
				j.ExitCode = 1
			}
			c.emitJobEvent(stateEventKind(state), j, end)
			done = append(done, finished{job: j.Clone()})
		}
	}
	// 3. Schedule the pending queue.
	c.scheduleLocked(now)
	// 4. Refresh node CPU load from running jobs' utilization profiles.
	c.refreshNodeLoadLocked()
	// 5. Purge finished jobs past the retention window.
	c.purgeLocked(now)
	c.mu.Unlock()

	for _, f := range done {
		c.dbd.recordJob(f.job)
		c.dbd.chargeUsage(f.job, now)
	}
	// Seal rollup buckets the clock has moved fully past and evict buckets
	// older than their retention (cascade compaction, see rollup.go).
	c.dbd.AdvanceRollups(now)
}

// scheduledEnd returns when a running job will finish and in which state.
// A profile whose memory utilization exceeds the request models a job that
// outgrows its allocation: the kernel OOM-kills it partway through. Time
// spent suspended pushes the end out.
func (j *Job) scheduledEnd() (time.Time, JobState) {
	run := j.Profile.ActualDuration
	state := j.Profile.terminalState()
	switch {
	case j.Profile.MemUtilization > 1.0:
		if run <= 0 || run >= j.TimeLimit {
			run = j.TimeLimit / 2
		}
		state = StateOutOfMemory
	case run <= 0 || run >= j.TimeLimit:
		run = j.TimeLimit
		state = StateTimeout
	}
	return j.StartTime.Add(run + j.SuspendTotal), state
}

// scheduleLocked runs one priority-ordered scheduling pass with simple
// backfill: the highest-priority job that cannot start is marked Resources
// (it is "next in line"), and lower-priority jobs that do fit are started
// anyway, mirroring Slurm's backfill scheduler in the absence of future
// reservations. Caller holds c.mu.
func (c *Controller) scheduleLocked(now time.Time) {
	pending := make([]*Job, 0, 64)
	runningPerUserQOS := make(map[[2]string]int)
	cpusInUsePerAccount := make(map[string]int)
	gpusInUsePerAccount := make(map[string]int)
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		switch j.State {
		case StatePending:
			pending = append(pending, j)
		case StateRunning:
			runningPerUserQOS[[2]string{j.User, j.QOS}]++
			cpusInUsePerAccount[j.Account] += j.AllocTRES.CPUs
			gpusInUsePerAccount[j.Account] += j.AllocTRES.GPUs
		}
	}
	if len(pending) == 0 {
		return
	}

	// Refresh priorities (age factor grows as jobs wait) and sort. The
	// fair-share penalty is per account and constant within one pass, so
	// compute it once per account rather than once per job.
	penalties := make(map[string]int64)
	for _, j := range pending {
		if _, ok := penalties[j.Account]; !ok {
			penalties[j.Account] = c.fairSharePenaltyLocked(j.Account)
		}
		j.Priority = c.priorityLocked(j, now) + penalties[j.Account]
	}
	sort.Slice(pending, func(i, k int) bool {
		if pending[i].Priority != pending[k].Priority {
			return pending[i].Priority > pending[k].Priority
		}
		if !pending[i].SubmitTime.Equal(pending[k].SubmitTime) {
			return pending[i].SubmitTime.Before(pending[k].SubmitTime)
		}
		return pending[i].ID < pending[k].ID
	})

	// Like slurmctld's default_queue_depth, bound the expensive part of the
	// pass: placement attempts. Cheap gating checks (limits, holds,
	// dependencies) still run for the whole queue so limit-blocked jobs at
	// the head never starve placeable jobs behind them.
	attempts := 0

	blockedOnResources := false
	for _, j := range pending {
		if attempts >= schedQueueDepth {
			break
		}
		// Gating checks that leave the job pending with a descriptive reason.
		if j.Reason == ReasonJobHeldUser {
			continue
		}
		if !j.BeginTime.IsZero() && j.BeginTime.After(now) {
			j.Reason = ReasonBeginTime
			continue
		}
		if j.Dependency != 0 {
			dep := c.jobs[j.Dependency]
			if dep == nil {
				// Dependency aged out of controller memory; consult accounting.
				dep = c.dbd.Job(j.Dependency)
			}
			if dep == nil || !dep.State.Terminal() {
				j.Reason = ReasonDependency
				continue
			}
		}
		part := c.partitions[j.Partition]
		if part == nil || !part.Up() {
			j.Reason = ReasonPartitionDown
			continue
		}
		assoc := c.dbd.Association(AssocKey{Account: j.Account})
		if assoc != nil && assoc.GrpCPULimit > 0 &&
			cpusInUsePerAccount[j.Account]+j.ReqTRES.CPUs > assoc.GrpCPULimit {
			j.Reason = ReasonAssocGrpCpuLimit
			continue
		}
		if j.QOS != "" {
			if q := c.qos[j.QOS]; q != nil && q.MaxJobsPerUser > 0 &&
				runningPerUserQOS[[2]string{j.User, j.QOS}] >= q.MaxJobsPerUser {
				j.Reason = ReasonQOSMaxJobsPerUser
				continue
			}
		}

		// Placement, then preemption for the job at the head of the queue.
		attempts++
		nodes := c.placeLocked(j, part)
		if nodes == nil && !blockedOnResources {
			nodes = c.tryPreemptLocked(j, part, now)
		}
		if nodes == nil {
			switch {
			case c.allNodesMaintBlockedLocked(j, part, now):
				// Slurm reports "ReqNodeNotAvail, Reserved for maintenance".
				j.Reason = ReasonReqNodeNotAvail
			case blockedOnResources:
				j.Reason = ReasonPriority
			default:
				j.Reason = ReasonResources
				blockedOnResources = true
			}
			// Capacity starvation wakes powered-down nodes that could host
			// the blocked job (cloud scheduling's ResumeProgram trigger);
			// each blocked job wakes at most its own node count, so the
			// whole backlog brings up enough capacity in one pass. Jobs
			// start once the nodes finish booting.
			if j.Reason == ReasonResources || j.Reason == ReasonPriority {
				c.autoWakeLocked(j, part, now)
			}
			continue
		}
		c.startJobLocked(j, nodes, now)
		runningPerUserQOS[[2]string{j.User, j.QOS}]++
		cpusInUsePerAccount[j.Account] += j.AllocTRES.CPUs
		gpusInUsePerAccount[j.Account] += j.AllocTRES.GPUs
	}
}

// priorityLocked computes the multifactor-style priority without the
// fair-share term: a base plus QOS and partition factors plus an age factor
// (one point per minute waited). The caller adds the per-account fair-share
// penalty (see fairSharePenaltyLocked).
func (c *Controller) priorityLocked(j *Job, now time.Time) int64 {
	p := int64(1000)
	if q := c.qos[j.QOS]; q != nil {
		p += int64(q.Priority)
	}
	if part := c.partitions[j.Partition]; part != nil {
		p += int64(part.Priority)
	}
	age := now.Sub(j.SubmitTime)
	if age > 0 {
		p += int64(age / time.Minute)
	}
	return p
}

// fairSharePenaltyLocked derives the (negative) fair-share factor from the
// account's accumulated core-hours — heavy accounts slowly lose ground to
// light ones, a simplified version of Slurm's fair-share. Caller holds c.mu.
func (c *Controller) fairSharePenaltyLocked(account string) int64 {
	a := c.dbd.Association(AssocKey{Account: account})
	if a == nil {
		return 0
	}
	penalty := int64(a.CPUTimeUsed / 200) // one point per 200 core-hours
	if penalty > 400 {
		penalty = 400
	}
	return -penalty
}

// perNodeShare splits a job allocation evenly across n nodes, rounding up so
// the allocation is never undercounted on any node.
func perNodeShare(t TRES, n int) TRES {
	if n <= 1 {
		return t
	}
	return TRES{
		CPUs:  (t.CPUs + n - 1) / n,
		MemMB: (t.MemMB + int64(n) - 1) / int64(n),
		GPUs:  (t.GPUs + n - 1) / n,
	}
}

// placeLocked finds nodes for the job, or nil when it cannot start now.
// Single-node jobs take the first schedulable node with room (first-fit over
// name order keeps placement deterministic); multi-node jobs need N nodes
// that can each hold an even share. Caller holds c.mu.
func (c *Controller) placeLocked(j *Job, part *Partition) []string {
	want := j.ReqTRES.Nodes
	if want <= 0 {
		want = 1
	}
	now := c.clock.Now()
	share := perNodeShare(j.ReqTRES, want)
	var chosen []string
	for _, name := range part.Nodes {
		n := c.nodes[name]
		if n == nil || !n.Schedulable() || !n.HasFeatures(j.Constraint) {
			continue
		}
		if c.nodeBlockedByMaintenanceLocked(name, now, j.TimeLimit) {
			continue
		}
		if share.Fits(n.Free()) {
			chosen = append(chosen, name)
			if len(chosen) == want {
				return chosen
			}
		}
	}
	return nil
}

// startJobLocked transitions a pending job to running on the given nodes.
// Caller holds c.mu; the accounting update is deferred to the caller's
// unlock via recordJob on the next Tick (the dbd copy is refreshed here
// synchronously because recordJob takes no controller locks).
func (c *Controller) startJobLocked(j *Job, nodes []string, now time.Time) {
	want := len(nodes)
	share := perNodeShare(j.ReqTRES, want)
	alloc := TRES{Nodes: want}
	for _, name := range nodes {
		n := c.nodes[name]
		n.Alloc = n.Alloc.Add(share)
		n.RunningJobs = append(n.RunningJobs, j.ID)
		alloc.CPUs += share.CPUs
		alloc.MemMB += share.MemMB
		alloc.GPUs += share.GPUs
	}
	j.State = StateRunning
	j.Reason = ReasonNone
	j.StartTime = now
	j.AllocTRES = alloc
	j.Nodes = append([]string(nil), nodes...)
	c.emitJobEvent(EventStarted, j, now)
	c.dbd.recordJob(j)
}

// allNodesMaintBlockedLocked reports whether every schedulable node in the
// partition that could otherwise host j is unavailable solely because of an
// upcoming maintenance window. Caller holds c.mu.
func (c *Controller) allNodesMaintBlockedLocked(j *Job, part *Partition, now time.Time) bool {
	if len(c.maintWindows) == 0 {
		return false
	}
	blocked := false
	for _, name := range part.Nodes {
		n := c.nodes[name]
		if n == nil || !n.Schedulable() {
			continue
		}
		if c.nodeBlockedByMaintenanceLocked(name, now, j.TimeLimit) {
			blocked = true
			continue
		}
		// At least one node is free of maintenance constraints; the job is
		// blocked by capacity, not reservations.
		return false
	}
	return blocked
}

// tryPreemptLocked attempts to free room for j by requeueing running jobs
// whose QOS is preemptable (Slurm's PreemptMode=REQUEUE, the standby-tier
// semantics). It first verifies feasibility per node — current free space
// plus the shares of preemptable victims must cover j's per-node share on
// enough nodes — so victims are only requeued when j will actually start.
// Returns the chosen node list, or nil. Caller holds c.mu.
func (c *Controller) tryPreemptLocked(j *Job, part *Partition, now time.Time) []string {
	// A preemptable job must never preempt others.
	if q := c.qos[j.QOS]; q != nil && q.Preemptable {
		return nil
	}
	want := j.ReqTRES.Nodes
	if want <= 0 {
		want = 1
	}
	share := perNodeShare(j.ReqTRES, want)
	var (
		chosen  []string
		victims []*Job
		seen    = make(map[JobID]bool)
	)
	for _, name := range part.Nodes {
		n := c.nodes[name]
		if n == nil || !n.Schedulable() || !n.HasFeatures(j.Constraint) {
			continue
		}
		if c.nodeBlockedByMaintenanceLocked(name, now, j.TimeLimit) {
			continue
		}
		free := n.Free()
		if share.Fits(free) {
			chosen = append(chosen, name)
			if len(chosen) == want {
				break
			}
			continue
		}
		var nodeVictims []*Job
		for _, id := range n.RunningJobs {
			v := c.jobs[id]
			if v == nil || v.State != StateRunning || seen[v.ID] {
				continue
			}
			q := c.qos[v.QOS]
			if q == nil || !q.Preemptable {
				continue
			}
			free = free.Add(perNodeShare(v.AllocTRES, len(v.Nodes)))
			nodeVictims = append(nodeVictims, v)
			if share.Fits(free) {
				break
			}
		}
		if share.Fits(free) {
			chosen = append(chosen, name)
			for _, v := range nodeVictims {
				seen[v.ID] = true
			}
			victims = append(victims, nodeVictims...)
			if len(chosen) == want {
				break
			}
		}
	}
	if len(chosen) < want {
		return nil
	}
	for _, v := range victims {
		c.requeueLocked(v, now)
	}
	return chosen
}

// requeueLocked returns a preempted job to the pending queue with its
// original request intact. Caller holds c.mu.
func (c *Controller) requeueLocked(v *Job, now time.Time) {
	c.freeJobResourcesLocked(v)
	c.emitJobEvent(EventPreempted, v, now)
	v.State = StatePending
	v.Reason = ReasonPriority
	v.StartTime = time.Time{}
	v.EndTime = time.Time{}
	v.AllocTRES = TRES{}
	v.Nodes = nil
	v.ExitCode = 0
	c.dbd.recordJob(v)
}

// refreshNodeLoadLocked recomputes each node's CPU load from the CPU
// utilization of the jobs running on it. Caller holds c.mu.
func (c *Controller) refreshNodeLoadLocked() {
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		load := 0.0
		for _, id := range n.RunningJobs {
			j := c.jobs[id]
			if j == nil || j.State != StateRunning {
				continue
			}
			share := perNodeShare(j.AllocTRES, len(j.Nodes))
			load += float64(share.CPUs) * j.Profile.CPUUtilization
		}
		n.CPULoad = load
		if load > 0 {
			n.LastBusy = c.clock.Now()
		}
	}
}

// purgeLocked drops finished jobs older than the retention window from
// controller memory (they remain queryable via the accounting daemon).
// Caller holds c.mu.
func (c *Controller) purgeLocked(now time.Time) {
	cutoff := now.Add(-c.retention)
	keep := c.jobOrder[:0]
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		if j.State.Terminal() && !j.EndTime.IsZero() && j.EndTime.Before(cutoff) {
			delete(c.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	c.jobOrder = keep
}

// ActiveJobCount returns the number of jobs currently held in controller
// memory (pending + running + recently finished). Not an RPC.
func (c *Controller) ActiveJobCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobOrder)
}
