package slurm

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is the controller's record of one compute node.
type Node struct {
	// Configuration.
	Name       string
	Partitions []string
	CPUs       int
	MemMB      int64
	GPUs       int
	GPUType    string // e.g. "a100"; empty when GPUs == 0
	Features   []string
	OS         string
	Arch       string
	BootTime   time.Time

	// Dynamic state.
	State       NodeState
	Drain       bool   // node is draining/drained on top of its base state
	Maint       bool   // node is in a maintenance reservation
	StateReason string // operator-provided reason for DOWN/DRAIN
	Alloc       TRES   // resources currently allocated to jobs
	CPULoad     float64
	LastBusy    time.Time
	RunningJobs []JobID

	// Power state (see power.go): an energy-saving shutdown, an in-progress
	// boot after a power-up request, or a health-check reboot cycle. At most
	// one of the three is set; PowerReadyAt is when an in-progress transition
	// completes.
	PoweredDown  bool
	PoweringUp   bool
	Rebooting    bool
	PowerReadyAt time.Time
}

// Free returns the node's unallocated capacity.
func (n *Node) Free() TRES {
	return TRES{
		CPUs:  n.CPUs - n.Alloc.CPUs,
		MemMB: n.MemMB - n.Alloc.MemMB,
		GPUs:  n.GPUs - n.Alloc.GPUs,
	}
}

// EffectiveState combines the base state with drain/maint flags into the
// single state string sinfo and the dashboard's Cluster Status grid show.
func (n *Node) EffectiveState() NodeState {
	switch {
	case n.State == NodeDown:
		return NodeDown
	case n.Rebooting:
		return NodeReboot
	case n.PoweredDown:
		return NodePoweredDown
	case n.PoweringUp:
		return NodePoweringUp
	case n.Maint:
		return NodeMaint
	case n.Drain && n.Alloc.CPUs > 0:
		return NodeDraining
	case n.Drain:
		return NodeDrained
	case n.Alloc.CPUs == 0:
		return NodeIdle
	case n.Alloc.CPUs >= n.CPUs:
		return NodeAllocated
	default:
		return NodeMixed
	}
}

// Schedulable reports whether the scheduler may place new work here.
func (n *Node) Schedulable() bool {
	return n.State.Schedulable() && !n.Drain && !n.Maint && n.State != NodeDown &&
		!n.PoweredDown && !n.PoweringUp && !n.Rebooting
}

// HasFeatures reports whether the node advertises every feature in the
// comma-separated AND list (empty list matches everything).
func (n *Node) HasFeatures(constraint string) bool {
	if constraint == "" {
		return true
	}
	for _, want := range strings.Split(constraint, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, f := range n.Features {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// HasPartition reports whether the node belongs to the named partition.
func (n *Node) HasPartition(name string) bool {
	for _, p := range n.Partitions {
		if p == name {
			return true
		}
	}
	return false
}

// Clone returns a deep copy safe for concurrent readers.
func (n *Node) Clone() *Node {
	cp := *n
	cp.Partitions = append([]string(nil), n.Partitions...)
	cp.Features = append([]string(nil), n.Features...)
	cp.RunningJobs = append([]JobID(nil), n.RunningJobs...)
	return &cp
}

// removeJob drops id from the node's running-job list.
func (n *Node) removeJob(id JobID) {
	for i, j := range n.RunningJobs {
		if j == id {
			n.RunningJobs = append(n.RunningJobs[:i], n.RunningJobs[i+1:]...)
			return
		}
	}
}

// NodeNameRange compresses a sorted list of node names that share a common
// prefix into Slurm's bracketed hostlist form, e.g. ["a001","a002","a003"]
// becomes "a[001-003]". Names that don't fit the pattern are listed verbatim.
func NodeNameRange(names []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(names) == 1 {
		return names[0]
	}
	type entry struct {
		prefix string
		num    int
		width  int
		raw    string
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		i := len(name)
		for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
			i--
		}
		e := entry{raw: name}
		if i < len(name) {
			e.prefix = name[:i]
			e.width = len(name) - i
			fmt.Sscanf(name[i:], "%d", &e.num)
		} else {
			e.prefix = name
			e.num = -1
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].prefix != entries[j].prefix {
			return entries[i].prefix < entries[j].prefix
		}
		return entries[i].num < entries[j].num
	})
	var out []string
	for i := 0; i < len(entries); {
		e := entries[i]
		if e.num < 0 {
			out = append(out, e.raw)
			i++
			continue
		}
		// Extend a run of consecutive numbers with the same prefix and width.
		j := i
		for j+1 < len(entries) &&
			entries[j+1].prefix == e.prefix &&
			entries[j+1].width == e.width &&
			entries[j+1].num == entries[j].num+1 {
			j++
		}
		if j == i {
			out = append(out, e.raw)
		} else {
			out = append(out, fmt.Sprintf("%s[%0*d-%0*d]", e.prefix, e.width, e.num, e.width, entries[j].num))
		}
		i = j + 1
	}
	return strings.Join(out, ",")
}

// ExpandNodeRange is the inverse of NodeNameRange for a single bracketed
// range expression; plain comma-separated names pass through unchanged.
func ExpandNodeRange(expr string) ([]string, error) {
	var out []string
	for len(expr) > 0 {
		br := strings.IndexByte(expr, '[')
		comma := strings.IndexByte(expr, ',')
		if br == -1 || (comma != -1 && comma < br) {
			// A plain name up to the next comma.
			if comma == -1 {
				out = append(out, expr)
				return out, nil
			}
			out = append(out, expr[:comma])
			expr = expr[comma+1:]
			continue
		}
		prefix := expr[:br]
		close := strings.IndexByte(expr, ']')
		if close == -1 {
			return nil, fmt.Errorf("slurm: unterminated bracket in hostlist %q", expr)
		}
		for _, span := range strings.Split(expr[br+1:close], ",") {
			lo, hi, hasHi := strings.Cut(span, "-")
			var a, b int
			if _, err := fmt.Sscanf(lo, "%d", &a); err != nil {
				return nil, fmt.Errorf("slurm: bad hostlist range %q: %v", span, err)
			}
			b = a
			if hasHi {
				if _, err := fmt.Sscanf(hi, "%d", &b); err != nil {
					return nil, fmt.Errorf("slurm: bad hostlist range %q: %v", span, err)
				}
			}
			width := len(lo)
			for n := a; n <= b; n++ {
				out = append(out, fmt.Sprintf("%s%0*d", prefix, width, n))
			}
		}
		expr = expr[close+1:]
		expr = strings.TrimPrefix(expr, ",")
	}
	return out, nil
}
