package slurm

import (
	"fmt"
	"strconv"
	"strings"
)

// TRES (Trackable RESources) describes a bundle of schedulable resources,
// mirroring Slurm's cpu/mem/gres accounting dimensions.
type TRES struct {
	CPUs  int   // CPU cores
	MemMB int64 // memory in MiB
	GPUs  int   // generic GPU resources (gres/gpu)
	Nodes int   // node count
}

// Add returns the elementwise sum of t and u.
func (t TRES) Add(u TRES) TRES {
	return TRES{
		CPUs:  t.CPUs + u.CPUs,
		MemMB: t.MemMB + u.MemMB,
		GPUs:  t.GPUs + u.GPUs,
		Nodes: t.Nodes + u.Nodes,
	}
}

// Sub returns the elementwise difference t - u.
func (t TRES) Sub(u TRES) TRES {
	return TRES{
		CPUs:  t.CPUs - u.CPUs,
		MemMB: t.MemMB - u.MemMB,
		GPUs:  t.GPUs - u.GPUs,
		Nodes: t.Nodes - u.Nodes,
	}
}

// Fits reports whether a request t fits within the free capacity u.
// The Nodes dimension is ignored: node fitting is decided per node.
func (t TRES) Fits(u TRES) bool {
	return t.CPUs <= u.CPUs && t.MemMB <= u.MemMB && t.GPUs <= u.GPUs
}

// IsZero reports whether every dimension is zero.
func (t TRES) IsZero() bool {
	return t.CPUs == 0 && t.MemMB == 0 && t.GPUs == 0 && t.Nodes == 0
}

// String renders the TRES in Slurm's compact "cpu=4,mem=8000M,gres/gpu=1,node=1"
// form, omitting zero-valued dimensions.
func (t TRES) String() string {
	parts := make([]string, 0, 4)
	if t.CPUs > 0 {
		parts = append(parts, fmt.Sprintf("cpu=%d", t.CPUs))
	}
	if t.MemMB > 0 {
		parts = append(parts, fmt.Sprintf("mem=%dM", t.MemMB))
	}
	if t.GPUs > 0 {
		parts = append(parts, fmt.Sprintf("gres/gpu=%d", t.GPUs))
	}
	if t.Nodes > 0 {
		parts = append(parts, fmt.Sprintf("node=%d", t.Nodes))
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, ",")
}

// ParseTRES parses the format produced by TRES.String. Unknown dimensions
// are ignored so output from newer Slurm versions still parses.
func ParseTRES(s string) (TRES, error) {
	var t TRES
	if strings.TrimSpace(s) == "" {
		return t, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return TRES{}, fmt.Errorf("slurm: malformed TRES component %q", part)
		}
		switch key {
		case "cpu":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TRES{}, fmt.Errorf("slurm: bad cpu count %q: %v", val, err)
			}
			t.CPUs = n
		case "mem":
			mb, err := parseMemMB(val)
			if err != nil {
				return TRES{}, err
			}
			t.MemMB = mb
		case "gres/gpu", "gpu":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TRES{}, fmt.Errorf("slurm: bad gpu count %q: %v", val, err)
			}
			t.GPUs = n
		case "node":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TRES{}, fmt.Errorf("slurm: bad node count %q: %v", val, err)
			}
			t.Nodes = n
		}
	}
	return t, nil
}

// parseMemMB parses a Slurm memory size such as "8000M", "16G", or "512".
// A bare number is interpreted as MiB, matching Slurm's defaults.
func parseMemMB(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("slurm: empty memory size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		// Round sub-MiB sizes up to 1 MiB.
		n, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("slurm: bad memory size %q: %v", s, err)
		}
		if n == 0 {
			return 0, nil
		}
		mb := (n + 1023) / 1024
		if mb == 0 {
			mb = 1
		}
		return mb, nil
	case 'M', 'm':
		s = s[:len(s)-1]
	case 'G', 'g':
		s = s[:len(s)-1]
		mult = 1024
	case 'T', 't':
		s = s[:len(s)-1]
		mult = 1024 * 1024
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("slurm: bad memory size %q: %v", s, err)
	}
	return n * mult, nil
}
