package slurm

import (
	"errors"
	"testing"
	"time"
)

func healthTestCluster(t *testing.T) *Cluster {
	t.Helper()
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cl, err := NewCluster(ClusterConfig{
		Name:  "hc",
		Nodes: []NodeSpec{{NamePrefix: "n", Count: 2, CPUs: 4, MemMB: 8192, Partitions: []string{"cpu"}}},
		Partitions: []PartitionSpec{
			{Name: "cpu", MaxTime: time.Hour, Default: true, Priority: 100},
		},
		Associations: []Association{{Account: "acct"}, {Account: "acct", User: "u"}},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestControllerHealthGate(t *testing.T) {
	cl := healthTestCluster(t)
	if err := cl.Ctl.Available(); err != nil {
		t.Fatalf("healthy controller unavailable: %v", err)
	}

	cl.Ctl.SetHealth(HealthDown, "drill")
	err := cl.Ctl.Available()
	if err == nil {
		t.Fatal("down controller reported available")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("down error %v does not wrap ErrUnavailable", err)
	}
	if h, reason := cl.Ctl.Health(); h != HealthDown || reason != "drill" {
		t.Fatalf("Health() = %v %q", h, reason)
	}

	cl.Ctl.SetHealth(HealthUp, "")
	if err := cl.Ctl.Available(); err != nil {
		t.Fatalf("recovered controller unavailable: %v", err)
	}
}

func TestDegradedHealthFailsEveryOtherQuery(t *testing.T) {
	cl := healthTestCluster(t)
	cl.DBD.SetHealth(HealthDegraded, "overloaded")
	var failures int
	for i := 0; i < 10; i++ {
		if err := cl.DBD.Available(); err != nil {
			if !errors.Is(err, ErrUnavailable) {
				t.Fatalf("degraded error %v does not wrap ErrUnavailable", err)
			}
			failures++
		}
	}
	if failures != 5 {
		t.Fatalf("degraded mode failed %d of 10 queries, want 5", failures)
	}
	// Resetting health restarts the cadence deterministically.
	cl.DBD.SetHealth(HealthDegraded, "again")
	if err := cl.DBD.Available(); err == nil {
		t.Fatal("first degraded query after reset should fail")
	}
}

func TestHealthStateStrings(t *testing.T) {
	for h, want := range map[DaemonHealth]string{
		HealthUp: "up", HealthDegraded: "degraded", HealthDown: "down", DaemonHealth(9): "unknown",
	} {
		if got := h.String(); got != want {
			t.Fatalf("DaemonHealth(%d).String() = %q, want %q", h, got, want)
		}
	}
}
