package slurm

// JobState enumerates the job lifecycle states the simulator models. The
// string values match Slurm's long-form state names as printed by sacct and
// scontrol so the CLI emulation layer can format them verbatim.
type JobState string

// Job states.
const (
	StatePending     JobState = "PENDING"
	StateRunning     JobState = "RUNNING"
	StateSuspended   JobState = "SUSPENDED"
	StateCompleting  JobState = "COMPLETING"
	StateCompleted   JobState = "COMPLETED"
	StateFailed      JobState = "FAILED"
	StateCancelled   JobState = "CANCELLED"
	StateTimeout     JobState = "TIMEOUT"
	StateNodeFail    JobState = "NODE_FAIL"
	StateOutOfMemory JobState = "OUT_OF_MEMORY"
	StatePreempted   JobState = "PREEMPTED"
)

// Active reports whether the job still occupies or is waiting for resources.
func (s JobState) Active() bool {
	switch s {
	case StatePending, StateRunning, StateSuspended, StateCompleting:
		return true
	}
	return false
}

// Terminal reports whether the job has reached a final state.
func (s JobState) Terminal() bool { return !s.Active() }

// ShortCode returns Slurm's two-letter state code used in squeue's ST column.
func (s JobState) ShortCode() string {
	switch s {
	case StatePending:
		return "PD"
	case StateRunning:
		return "R"
	case StateSuspended:
		return "S"
	case StateCompleting:
		return "CG"
	case StateCompleted:
		return "CD"
	case StateFailed:
		return "F"
	case StateCancelled:
		return "CA"
	case StateTimeout:
		return "TO"
	case StateNodeFail:
		return "NF"
	case StateOutOfMemory:
		return "OOM"
	case StatePreempted:
		return "PR"
	}
	return "??"
}

// AllJobStates lists every state the simulator can produce, in display order.
var AllJobStates = []JobState{
	StatePending, StateRunning, StateSuspended, StateCompleting,
	StateCompleted, StateFailed, StateCancelled, StateTimeout,
	StateNodeFail, StateOutOfMemory, StatePreempted,
}

// NodeState enumerates node states as shown by sinfo/scontrol.
type NodeState string

// Node states. Compound states like MIXED+DRAIN are represented with the
// Drain flag on the node rather than extra enum values.
const (
	NodeIdle      NodeState = "IDLE"
	NodeAllocated NodeState = "ALLOCATED"
	NodeMixed     NodeState = "MIXED"
	NodeDown      NodeState = "DOWN"
	NodeDraining  NodeState = "DRAINING"
	NodeDrained   NodeState = "DRAINED"
	NodeMaint     NodeState = "MAINT"
	// Power states (see power.go): sinfo renders these with ~/#/% suffixes;
	// the simulator uses explicit state names so dashboards can show them.
	NodePoweredDown NodeState = "POWERED_DOWN"
	NodePoweringUp  NodeState = "POWERING_UP"
	NodeReboot      NodeState = "REBOOT"
)

// Schedulable reports whether new work may be placed on a node in state s.
func (s NodeState) Schedulable() bool {
	switch s {
	case NodeIdle, NodeAllocated, NodeMixed:
		return true
	}
	return false
}

// Online reports whether the node is reachable (possibly drained or in
// maintenance, but not down).
func (s NodeState) Online() bool { return s != NodeDown }
