package slurm

import (
	"fmt"
	"sort"
	"time"
)

// MaintenanceWindow is a scheduled maintenance reservation: the named nodes
// (or the whole cluster) are taken out of scheduling during [Start, End),
// and — like Slurm's maint reservations — jobs whose time limit would
// overlap the window are not started on those nodes beforehand.
type MaintenanceWindow struct {
	ID     int
	Name   string
	Start  time.Time
	End    time.Time
	Nodes  []string // empty means every node
	Reason string
}

// Active reports whether the window covers the instant t.
func (m *MaintenanceWindow) Active(t time.Time) bool {
	return !t.Before(m.Start) && t.Before(m.End)
}

// Upcoming reports whether the window starts after t.
func (m *MaintenanceWindow) Upcoming(t time.Time) bool {
	return m.Start.After(t)
}

// covers reports whether the window includes the node.
func (m *MaintenanceWindow) covers(node string) bool {
	if len(m.Nodes) == 0 {
		return true
	}
	for _, n := range m.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// ScheduleMaintenance registers a maintenance window and returns its ID.
// Nodes may be empty (whole cluster) or a list of node names.
func (c *Controller) ScheduleMaintenance(name string, start, end time.Time, nodes []string, reason string) (int, error) {
	if !end.After(start) {
		return 0, fmt.Errorf("slurm: maintenance %q ends before it starts", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if _, ok := c.nodes[n]; !ok {
			return 0, fmt.Errorf("slurm: maintenance %q names unknown node %q", name, n)
		}
	}
	c.maintSeq++
	w := MaintenanceWindow{
		ID: c.maintSeq, Name: name, Start: start, End: end,
		Nodes: append([]string(nil), nodes...), Reason: reason,
	}
	c.maintWindows = append(c.maintWindows, w)
	sort.Slice(c.maintWindows, func(i, j int) bool {
		return c.maintWindows[i].Start.Before(c.maintWindows[j].Start)
	})
	return w.ID, nil
}

// CancelMaintenance removes a window by ID.
func (c *Controller) CancelMaintenance(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.maintWindows {
		if w.ID == id {
			c.maintWindows = append(c.maintWindows[:i], c.maintWindows[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("slurm: unknown maintenance window %d", id)
}

// MaintenanceWindows returns copies of all registered windows, soonest
// first, including past ones not yet pruned.
func (c *Controller) MaintenanceWindows() []MaintenanceWindow {
	c.stats.Record(RPCSinfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MaintenanceWindow, len(c.maintWindows))
	for i, w := range c.maintWindows {
		out[i] = w
		out[i].Nodes = append([]string(nil), w.Nodes...)
	}
	return out
}

// applyMaintenanceLocked recomputes every node's Maint flag from manual
// settings plus the active windows, and prunes windows long past. Caller
// holds c.mu.
func (c *Controller) applyMaintenanceLocked(now time.Time) {
	// Prune windows that ended more than a day ago.
	keep := c.maintWindows[:0]
	for _, w := range c.maintWindows {
		if now.Sub(w.End) < 24*time.Hour {
			keep = append(keep, w)
		}
	}
	c.maintWindows = keep

	for name, n := range c.nodes {
		maint := c.manualMaint[name]
		if !maint {
			for i := range c.maintWindows {
				w := &c.maintWindows[i]
				if w.Active(now) && w.covers(name) {
					maint = true
					if n.StateReason == "" {
						n.StateReason = "maintenance: " + w.Name
					}
					break
				}
			}
		}
		if n.Maint && !maint && !c.manualMaint[name] {
			// Window ended: clear the reason we set.
			if len(n.StateReason) > 12 && n.StateReason[:12] == "maintenance:" {
				n.StateReason = ""
			}
		}
		n.Maint = maint
	}
}

// nodeBlockedByMaintenanceLocked reports whether starting a job of the
// given duration on the node now would collide with an upcoming window —
// Slurm's "ReqNodeNotAvail, Reserved for maintenance" behaviour. Caller
// holds c.mu.
func (c *Controller) nodeBlockedByMaintenanceLocked(name string, now time.Time, limit time.Duration) bool {
	jobEnd := now.Add(limit)
	for i := range c.maintWindows {
		w := &c.maintWindows[i]
		if !w.covers(name) {
			continue
		}
		// Overlap of [now, jobEnd) with [Start, End).
		if now.Before(w.End) && w.Start.Before(jobEnd) {
			return true
		}
	}
	return false
}
