package slurm

import (
	"fmt"
	"time"
)

// JobID identifies a job within one cluster. Array tasks get their own
// JobID plus an (ArrayJobID, ArrayTaskID) pair, mirroring Slurm.
type JobID int64

// Job is the controller's record of a single job (or array task).
//
// Fields are split into three groups: the immutable request, the scheduling
// state maintained by the controller, and the usage profile that drives the
// accounting/efficiency numbers once the job runs.
type Job struct {
	// Request (immutable after submit).
	ID          JobID
	Name        string
	User        string
	Account     string // Slurm association account ("allocation" in the paper)
	Partition   string
	QOS         string
	ReqTRES     TRES          // per-job request (total across nodes)
	TimeLimit   time.Duration // requested wall-clock limit
	SubmitTime  time.Time
	BeginTime   time.Time // earliest allowed start; zero means immediately
	Dependency  JobID     // job that must finish first; zero means none
	WorkDir     string
	StdoutPath  string
	StderrPath  string
	ArrayJobID  JobID // zero when not part of an array
	ArrayTaskID int   // valid only when ArrayJobID != 0
	// Constraint restricts placement to nodes advertising every listed
	// feature (comma-separated AND list, like sbatch --constraint).
	Constraint string
	// Interactive-app metadata used by Open OnDemand sessions (§7 session tab).
	InteractiveApp string // e.g. "jupyter", "rstudio"; empty for batch jobs
	SessionID      string // OOD session identifier; empty for batch jobs

	// Scheduling state.
	State        JobState
	Reason       PendingReason
	Priority     int64
	EligibleTime time.Time
	StartTime    time.Time
	EndTime      time.Time
	AllocTRES    TRES
	Nodes        []string
	ExitCode     int
	// Suspension bookkeeping: while suspended the job keeps its allocation
	// but its wall clock stops (Slurm's scontrol suspend semantics).
	SuspendedAt  time.Time     // nonzero while suspended
	SuspendTotal time.Duration // accumulated suspended time

	// Profile describes how the job behaves once started. The scheduler uses
	// ActualDuration to decide when the job finishes, and the accounting layer
	// derives efficiency metrics from the utilization fractions.
	Profile UsageProfile
}

// UsageProfile captures the resources a job will actually consume, as
// fractions of the request. This stands in for the measurements a production
// Slurm gathers via jobacct_gather; it lets the simulator reproduce the
// paper's efficiency columns (time/CPU/memory efficiency, §4.3).
type UsageProfile struct {
	ActualDuration time.Duration // wall time actually used (0 => runs to limit)
	CPUUtilization float64       // mean fraction of allocated CPU time used [0,1]
	MemUtilization float64       // peak RSS as a fraction of requested memory [0,1]
	GPUUtilization float64       // mean fraction of allocated GPU time used [0,1]
	FailureState   JobState      // terminal state; zero value means StateCompleted
	ExitCode       int           // exit code reported on completion
}

// terminalState returns the state the job ends in when it finishes on its own.
func (p UsageProfile) terminalState() JobState {
	if p.FailureState == "" {
		return StateCompleted
	}
	return p.FailureState
}

// IsArrayTask reports whether the job is a task of a job array.
func (j *Job) IsArrayTask() bool { return j.ArrayJobID != 0 }

// DisplayID returns the user-visible job ID: "1234_7" for array tasks,
// "1234" otherwise.
func (j *Job) DisplayID() string {
	if j.IsArrayTask() {
		return fmt.Sprintf("%d_%d", j.ArrayJobID, j.ArrayTaskID)
	}
	return fmt.Sprintf("%d", j.ID)
}

// WaitTime returns how long the job waited (or has waited) in the queue.
// For running/finished jobs this is start-submit; for pending jobs it is
// now-submit.
func (j *Job) WaitTime(now time.Time) time.Duration {
	switch {
	case !j.StartTime.IsZero():
		return j.StartTime.Sub(j.SubmitTime)
	case now.After(j.SubmitTime):
		return now.Sub(j.SubmitTime)
	default:
		return 0
	}
}

// Elapsed returns the job's wall time so far (or total, once finished),
// excluding time spent suspended.
func (j *Job) Elapsed(now time.Time) time.Duration {
	if j.StartTime.IsZero() {
		return 0
	}
	end := j.EndTime
	if end.IsZero() {
		end = now
	}
	if end.Before(j.StartTime) {
		return 0
	}
	elapsed := end.Sub(j.StartTime) - j.SuspendTotal
	if !j.SuspendedAt.IsZero() && end.After(j.SuspendedAt) {
		elapsed -= end.Sub(j.SuspendedAt)
	}
	if elapsed < 0 {
		return 0
	}
	return elapsed
}

// CPUTimeUsed returns core-seconds actually consumed, derived from the
// usage profile. Valid once the job has started.
func (j *Job) CPUTimeUsed(now time.Time) time.Duration {
	elapsed := j.Elapsed(now)
	return time.Duration(float64(elapsed) * float64(j.AllocTRES.CPUs) * j.Profile.CPUUtilization)
}

// GPUHoursUsed returns GPU-hours consumed so far.
func (j *Job) GPUHoursUsed(now time.Time) float64 {
	if j.AllocTRES.GPUs == 0 {
		return 0
	}
	elapsed := j.Elapsed(now)
	return elapsed.Hours() * float64(j.AllocTRES.GPUs)
}

// MaxRSSMB returns the peak resident set size in MiB implied by the profile.
func (j *Job) MaxRSSMB() int64 {
	return int64(float64(j.ReqTRES.MemMB) * j.Profile.MemUtilization)
}

// Clone returns a deep copy of the job, safe to hand to readers while the
// controller keeps mutating its own copy.
func (j *Job) Clone() *Job {
	cp := *j
	cp.Nodes = append([]string(nil), j.Nodes...)
	return &cp
}

// SubmitRequest is the argument to Controller.Submit. Only the request
// fields may be set; the controller fills in the scheduling state.
type SubmitRequest struct {
	Name           string
	User           string
	Account        string
	Partition      string
	QOS            string
	ReqTRES        TRES
	TimeLimit      time.Duration
	BeginTime      time.Time
	Dependency     JobID
	WorkDir        string
	StdoutPath     string
	StderrPath     string
	Constraint     string // feature AND-list, like sbatch --constraint
	InteractiveApp string
	SessionID      string
	ArraySize      int // >1 submits a job array with this many tasks
	Hold           bool
	Profile        UsageProfile
}

// Validate reports the first problem with the request, if any.
func (r *SubmitRequest) Validate() error {
	switch {
	case r.User == "":
		return fmt.Errorf("slurm: submit: missing user")
	case r.Account == "":
		return fmt.Errorf("slurm: submit: missing account")
	case r.Partition == "":
		return fmt.Errorf("slurm: submit: missing partition")
	case r.ReqTRES.CPUs <= 0:
		return fmt.Errorf("slurm: submit: request must include at least one CPU")
	case r.ReqTRES.Nodes < 0 || r.ReqTRES.GPUs < 0 || r.ReqTRES.MemMB < 0:
		return fmt.Errorf("slurm: submit: negative resource request")
	case r.TimeLimit <= 0:
		return fmt.Errorf("slurm: submit: missing time limit")
	case r.ArraySize < 0:
		return fmt.Errorf("slurm: submit: negative array size")
	}
	return nil
}
