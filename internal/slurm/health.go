package slurm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnavailable marks availability failures: every error the simulated
// daemons return while down or degraded wraps it, as do injected faults
// (slurmcli.FaultRunner). Upper layers use it to tell "the daemon cannot be
// reached" apart from semantic errors (unknown job, bad arguments), which is
// the distinction the dashboard's retry and circuit-breaker policies key on.
var ErrUnavailable = errors.New("slurm daemon unavailable")

// DaemonHealth is the operator-controlled availability state of a simulated
// daemon. Real Slurm controllers fail in both modes: hard outages (slurmctld
// restart, network partition) and brown-outs where a saturated daemon times
// out on a fraction of RPCs.
type DaemonHealth int

// Daemon health states.
const (
	// HealthUp serves every query normally.
	HealthUp DaemonHealth = iota
	// HealthDegraded fails every other query, deterministically — the
	// "socket timed out on send/recv" brown-out of an overloaded daemon.
	HealthDegraded
	// HealthDown fails every query — the daemon is unreachable.
	HealthDown
)

// String returns the lowercase state name.
func (h DaemonHealth) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// healthGate guards a daemon's query surface. The zero value is an always-up
// gate, so existing constructors need no changes.
type healthGate struct {
	mu     sync.Mutex
	health DaemonHealth
	reason string
	checks int // gate checks since entering degraded mode, for the 1-in-2 cadence
}

func (g *healthGate) set(h DaemonHealth, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.health = h
	g.reason = reason
	g.checks = 0
}

func (g *healthGate) get() (DaemonHealth, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.health, g.reason
}

// check returns nil when a query may proceed. msg is the daemon-appropriate
// client-side error text (what squeue or sacct would print).
func (g *healthGate) check(msg string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.health {
	case HealthDown:
		return fmt.Errorf("%s: %w", msg, ErrUnavailable)
	case HealthDegraded:
		g.checks++
		if g.checks%2 == 1 {
			return fmt.Errorf("%s (degraded): %w", msg, ErrUnavailable)
		}
	}
	return nil
}

// SetHealth changes the controller's availability state; reason is shown to
// operators (scontrol ping would report it). Use it to script outages:
//
//	cluster.Ctl.SetHealth(slurm.HealthDown, "failure drill")
func (c *Controller) SetHealth(h DaemonHealth, reason string) {
	c.healthGate.set(h, reason)
}

// Health reports the controller's availability state and reason.
func (c *Controller) Health() (DaemonHealth, string) {
	return c.healthGate.get()
}

// Available returns nil when the controller can serve a query, or the error
// a Slurm client command would print when it cannot.
func (c *Controller) Available() error {
	return c.healthGate.check("slurm_load_jobs error: Unable to contact slurm controller (connect failure)")
}

// SetHealth changes the accounting daemon's availability state.
func (d *DBD) SetHealth(h DaemonHealth, reason string) {
	d.healthGate.set(h, reason)
}

// Health reports the accounting daemon's availability state and reason.
func (d *DBD) Health() (DaemonHealth, string) {
	return d.healthGate.get()
}

// Available returns nil when the accounting daemon can serve a query, or the
// error sacct would print when it cannot.
func (d *DBD) Available() error {
	return d.healthGate.check("sacct: error: Problem talking to the database: Connection refused")
}
