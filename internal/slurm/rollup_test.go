package slurm

import (
	"testing"
	"time"
)

// rtJob builds a terminal accounting record for rollup tests.
func rtJob(id JobID, user, account, partition string, state JobState, start, end time.Time, cpus, gpus int, limit time.Duration) *Job {
	j := &Job{
		ID:         id,
		User:       user,
		Account:    account,
		Partition:  partition,
		State:      state,
		SubmitTime: start.Add(-2 * time.Minute),
		StartTime:  start,
		EndTime:    end,
		TimeLimit:  limit,
		ReqTRES:    TRES{CPUs: cpus, MemMB: 4096, GPUs: gpus, Nodes: 1},
		AllocTRES:  TRES{CPUs: cpus, MemMB: 4096, GPUs: gpus, Nodes: 1},
	}
	j.Profile.CPUUtilization = 0.5
	j.Profile.MemUtilization = 0.6
	j.Profile.GPUUtilization = 0.7
	return j
}

func sumRollup(rows []RollupRow) RollupAgg {
	var total RollupAgg
	for i := range rows {
		total.Add(&rows[i].RollupAgg)
	}
	return total
}

func TestRollupIngestOnTerminalTransitionOnly(t *testing.T) {
	d := NewDBD()
	base := time.Date(2026, 6, 1, 10, 0, 0, 0, time.UTC)

	run := rtJob(1, "alice", "physics", "batch", StateRunning, base, time.Time{}, 4, 0, time.Hour)
	run.EndTime = time.Time{}
	d.recordJob(run)
	if got := d.RollupStats().Ingested; got != 0 {
		t.Fatalf("running job ingested: %d", got)
	}

	fin := rtJob(1, "alice", "physics", "batch", StateCompleted, base, base.Add(30*time.Minute), 4, 0, time.Hour)
	d.recordJob(fin)
	d.recordJob(fin) // terminal re-record must not double count
	if got := d.RollupStats().Ingested; got != 1 {
		t.Fatalf("ingested = %d, want 1", got)
	}

	rows := d.RollupQuery(RollupScopeUser, "alice", base.Unix(), base.Add(time.Hour).Unix(), RollupMinute)
	total := sumRollup(rows)
	if total.Jobs != 1 || total.Completed != 1 {
		t.Fatalf("user rows total = %+v, want 1 job completed", total)
	}
	if total.WallSec != 1800 || total.CPUSec != 3600 {
		t.Fatalf("wall/cpu = %d/%d, want 1800/3600", total.WallSec, total.CPUSec)
	}
}

func TestRollupHalfOpenBucketBoundaries(t *testing.T) {
	d := NewDBD()
	// End exactly on a day boundary: the job must land in the bucket that
	// STARTS there, at every resolution, and in exactly one bucket.
	boundary := time.Date(2026, 6, 2, 0, 0, 0, 0, time.UTC)
	d.recordJob(rtJob(1, "alice", "physics", "batch", StateCompleted,
		boundary.Add(-10*time.Minute), boundary, 2, 0, time.Hour))

	for _, res := range []int64{RollupMinute, RollupHour, RollupDay} {
		before := d.RollupQuery(RollupScopeTotal, "", boundary.Unix()-res, boundary.Unix(), res)
		if n := sumRollup(before).Jobs; n != 0 {
			t.Fatalf("res %d: bucket before boundary has %d jobs, want 0", res, n)
		}
		at := d.RollupQuery(RollupScopeTotal, "", boundary.Unix(), boundary.Unix()+res, res)
		if n := sumRollup(at).Jobs; n != 1 {
			t.Fatalf("res %d: bucket at boundary has %d jobs, want 1", res, n)
		}
	}
}

func TestRollupCascadeMatchesAcrossResolutions(t *testing.T) {
	d := NewDBD()
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	// Spread 50 completions over ~36 hours, then advance two days so hours
	// and one day seal.
	for i := 0; i < 50; i++ {
		end := base.Add(time.Duration(i) * 43 * time.Minute)
		state := StateCompleted
		if i%7 == 0 {
			state = StateFailed
		}
		d.recordJob(rtJob(JobID(100+i), "alice", "physics", "batch", state,
			end.Add(-20*time.Minute), end, 2, i%3, time.Hour))
	}
	d.AdvanceRollups(base.Add(48 * time.Hour))

	st := d.RollupStats()
	if st.CompactionsHour == 0 || st.CompactionsDay == 0 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	start, end := base.Unix(), base.Add(48*time.Hour).Unix()
	var totals []RollupAgg
	for _, res := range []int64{RollupMinute, RollupHour, RollupDay} {
		totals = append(totals, sumRollup(d.RollupQuery(RollupScopeTotal, "", start, end, res)))
	}
	for i := 1; i < len(totals); i++ {
		if totals[i] != totals[0] {
			t.Fatalf("resolution %d total %+v != minute total %+v", i, totals[i], totals[0])
		}
	}
	if totals[0].Jobs != 50 || totals[0].Failed != 8 {
		t.Fatalf("total = %+v, want 50 jobs / 8 failed", totals[0])
	}

	// Per-dimension sums across scopes must each cover every job.
	for _, scope := range []string{RollupScopeUser, RollupScopeAccount, RollupScopePartition} {
		got := sumRollup(d.RollupQuery(scope, "", start, end, RollupDay))
		if got != totals[0] {
			t.Fatalf("scope %s total %+v != %+v", scope, got, totals[0])
		}
	}
}

func TestRollupLateIngestNoDoubleCount(t *testing.T) {
	d := NewDBD()
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	d.recordJob(rtJob(1, "alice", "physics", "batch", StateCompleted,
		base, base.Add(5*time.Minute), 2, 0, time.Hour))
	d.AdvanceRollups(base.Add(72 * time.Hour)) // seal the hour and two days

	// Late event landing in an already-sealed hour (and sealed day).
	late := base.Add(30 * time.Minute)
	d.recordJob(rtJob(2, "bob", "physics", "batch", StateCompleted,
		late.Add(-10*time.Minute), late, 2, 0, time.Hour))
	if got := d.RollupStats().LateDirect; got != 1 {
		t.Fatalf("lateDirect = %d, want 1", got)
	}

	start, end := base.Unix(), base.Add(24*time.Hour).Unix()
	for _, res := range []int64{RollupHour, RollupDay} {
		got := sumRollup(d.RollupQuery(RollupScopeTotal, "", start, end, res))
		if got.Jobs != 2 {
			t.Fatalf("res %d: jobs = %d, want 2 (no double count)", res, got.Jobs)
		}
	}
	// Re-sealing must not happen: advancing again leaves the count alone.
	d.AdvanceRollups(base.Add(96 * time.Hour))
	got := sumRollup(d.RollupQuery(RollupScopeTotal, "", start, end, RollupDay))
	if got.Jobs != 2 {
		t.Fatalf("after re-advance: jobs = %d, want 2", got.Jobs)
	}
}

func TestRollupRetentionEviction(t *testing.T) {
	d := NewDBD()
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	d.recordJob(rtJob(1, "alice", "physics", "batch", StateCompleted,
		base, base.Add(5*time.Minute), 2, 0, time.Hour))
	d.AdvanceRollups(base.Add(time.Hour))
	if st := d.RollupStats(); st.MinuteBuckets == 0 {
		t.Fatalf("expected minute buckets, got %+v", st)
	}

	// Jump past minute retention (48h) but inside hour retention.
	d.AdvanceRollups(base.Add(72 * time.Hour))
	st := d.RollupStats()
	if st.MinuteBuckets != 0 {
		t.Fatalf("minute buckets survived retention: %+v", st)
	}
	if st.EvictedBuckets == 0 {
		t.Fatalf("no evictions counted: %+v", st)
	}
	// The hour and day levels still answer for the old window.
	got := sumRollup(d.RollupQuery(RollupScopeTotal, "", base.Unix(), base.Add(time.Hour).Unix(), RollupHour))
	if got.Jobs != 1 {
		t.Fatalf("hour query after minute eviction = %+v, want 1 job", got)
	}
}

func TestRollupBackfillAndBounds(t *testing.T) {
	d := NewDBD()
	now := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	// Live job first so the watermarks initialize at "now".
	d.recordJob(rtJob(1, "alice", "physics", "batch", StateCompleted,
		now.Add(-10*time.Minute), now, 2, 0, time.Hour))

	var old []*Job
	for i := 0; i < 10; i++ {
		end := now.AddDate(-1, 0, 0).Add(time.Duration(i) * 24 * time.Hour)
		old = append(old, rtJob(JobID(1000+i), "bob", "chem", "gpu", StateCompleted,
			end.Add(-time.Hour), end, 4, 1, 2*time.Hour))
	}
	// Non-terminal and duplicate records must be skipped.
	run := rtJob(2000, "bob", "chem", "gpu", StateRunning, now, time.Time{}, 1, 0, time.Hour)
	run.EndTime = time.Time{}
	old = append(old, run, old[0])

	if added := d.Backfill(old); added != 10 {
		t.Fatalf("Backfill added %d, want 10", added)
	}
	if got := d.JobCount(); got != 11 {
		t.Fatalf("JobCount = %d, want 11", got)
	}
	d.AdvanceRollups(now)

	minEnd, maxEnd, ok := d.RollupBounds(RollupScopeUser, "bob")
	if !ok {
		t.Fatalf("no bounds for bob")
	}
	wantMin := now.AddDate(-1, 0, 0).Unix()
	if minEnd != wantMin || maxEnd != wantMin+9*86400 {
		t.Fatalf("bounds = [%d, %d], want [%d, %d]", minEnd, maxEnd, wantMin, wantMin+9*86400)
	}
	// Year-old history answers at day resolution.
	got := sumRollup(d.RollupQuery(RollupScopeUser, "bob", wantMin-86400, wantMin+11*86400, RollupDay))
	if got.Jobs != 10 || got.GPUSec != 10*3600 {
		t.Fatalf("backfilled day query = %+v, want 10 jobs / %d gpu-sec", got, 10*3600)
	}
	// The raw accounting path sees the backfilled records too (ablation
	// baseline scans them).
	jobs := d.Jobs(JobFilter{Users: []string{"bob"}}, now)
	if len(jobs) != 10 {
		t.Fatalf("raw filter sees %d bob jobs, want 10", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime.Before(jobs[i-1].SubmitTime) {
			t.Fatalf("order not sorted after backfill")
		}
	}
}

func TestRollupAggSampleGating(t *testing.T) {
	var a RollupAgg
	// Never-started cancelled job: counted, no usage, no efficiency samples.
	a.AddSample(StateCancelled, false, 0, 3600, 0, 0, 0, 0, -1, 4096, -1)
	if a.Jobs != 1 || a.Started != 0 || a.WallSec != 0 || a.TimeEffN != 0 || a.CPUEffN != 0 {
		t.Fatalf("unstarted sample = %+v", a)
	}
	// Started GPU job with all metrics applicable.
	a.AddSample(StateCompleted, true, 1800, 3600, 1800, 60, 2, 1, 1024, 4096, 70.0)
	if a.Started != 1 || a.TimeEffN != 1 || a.CPUEffN != 1 || a.MemEffN != 1 || a.GPUEffN != 1 {
		t.Fatalf("started sample counts = %+v", a)
	}
	if a.GPUSec != 1800 || a.WaitSec != 60 {
		t.Fatalf("gpu/wait = %d/%d", a.GPUSec, a.WaitSec)
	}
	// OOM counts as failed; no GPU sample when gpus == 0.
	a.AddSample(StateOutOfMemory, true, 600, 3600, 600, 10, 1, 0, 512, 1024, -1)
	if a.Failed != 1 || a.GPUEffN != 1 {
		t.Fatalf("failed/gpu = %d/%d", a.Failed, a.GPUEffN)
	}
}
