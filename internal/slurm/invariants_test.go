package slurm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// checkInvariants asserts the structural invariants that must hold after
// any Tick, used by the randomized scheduler property test.
func checkInvariants(t *testing.T, cl *Cluster) {
	t.Helper()
	nodes := cl.Ctl.Nodes()
	nodeByName := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		nodeByName[n.Name] = n
		// 1. No node is over- or under-allocated.
		if n.Alloc.CPUs < 0 || n.Alloc.CPUs > n.CPUs {
			t.Fatalf("node %s CPU allocation out of range: %d/%d", n.Name, n.Alloc.CPUs, n.CPUs)
		}
		if n.Alloc.MemMB < 0 || n.Alloc.MemMB > n.MemMB {
			t.Fatalf("node %s memory allocation out of range: %d/%d", n.Name, n.Alloc.MemMB, n.MemMB)
		}
		if n.Alloc.GPUs < 0 || n.Alloc.GPUs > n.GPUs {
			t.Fatalf("node %s GPU allocation out of range: %d/%d", n.Name, n.Alloc.GPUs, n.GPUs)
		}
	}

	jobs := cl.Ctl.Jobs(LiveJobFilter{States: AllJobStates})
	perNodeCPU := make(map[string]int)
	for _, j := range jobs {
		switch {
		case j.State == StateRunning || j.State == StateSuspended:
			if len(j.Nodes) == 0 {
				t.Fatalf("running/suspended job %d has no nodes", j.ID)
			}
			share := perNodeShare(j.AllocTRES, len(j.Nodes))
			for _, name := range j.Nodes {
				n := nodeByName[name]
				if n == nil {
					t.Fatalf("running job %d on unknown node %s", j.ID, name)
				}
				// 2. The node knows about the job.
				found := false
				for _, id := range n.RunningJobs {
					if id == j.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %s missing running job %d", name, j.ID)
				}
				perNodeCPU[name] += share.CPUs
			}
		case j.State.Terminal():
			// 3. Finished jobs hold no resources and have an end time.
			if j.EndTime.IsZero() {
				t.Fatalf("terminal job %d has no end time", j.ID)
			}
		case j.State == StatePending:
			// 4. Pending jobs carry a reason and no allocation.
			if j.Reason == ReasonNone {
				t.Fatalf("pending job %d has no reason", j.ID)
			}
			if j.AllocTRES.CPUs != 0 || len(j.Nodes) != 0 {
				t.Fatalf("pending job %d holds resources: %+v %v", j.ID, j.AllocTRES, j.Nodes)
			}
		}
		// 5. Accounting has a record of every job the controller knows.
		if cl.DBD.Job(j.ID) == nil {
			t.Fatalf("job %d missing from accounting", j.ID)
		}
	}
	// 6. Conservation: node allocations equal the sum of running shares.
	for name, want := range perNodeCPU {
		if got := nodeByName[name].Alloc.CPUs; got != want {
			t.Fatalf("node %s CPU allocation %d != running-job share sum %d", name, got, want)
		}
	}
	for _, n := range nodes {
		if perNodeCPU[n.Name] == 0 && n.Alloc.CPUs != 0 {
			t.Fatalf("node %s has allocation %d with no running jobs", n.Name, n.Alloc.CPUs)
		}
	}
}

// TestSchedulerInvariantsProperty drives random submissions, cancels, node
// drains, and preemptions through the scheduler and checks the invariants
// after every tick.
func TestSchedulerInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := NewSimClock(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
		cfg := ClusterConfig{
			Name: "prop",
			Nodes: []NodeSpec{
				{NamePrefix: "c", Count: 4, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu", "standby"}},
				{NamePrefix: "g", Count: 1, CPUs: 16, MemMB: 32 * 1024, GPUs: 2, GPUType: "a100", Partitions: []string{"gpu"}},
			},
			Partitions: []PartitionSpec{
				{Name: "cpu", MaxTime: 8 * time.Hour, Default: true, Priority: 100},
				{Name: "standby", MaxTime: 4 * time.Hour},
				{Name: "gpu", MaxTime: 8 * time.Hour, Priority: 100},
			},
			QOS: []QOS{
				{Name: "normal"},
				{Name: "standby", Priority: -500, Preemptable: true},
			},
			Associations: []Association{
				{Account: "lab", GrpCPULimit: 40},
				{Account: "lab", User: "u1"},
				{Account: "lab", User: "u2"},
			},
		}
		cl, err := NewCluster(cfg, clock)
		if err != nil {
			t.Fatal(err)
		}
		var submitted []JobID
		users := []string{"u1", "u2"}
		for step := 0; step < 60; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // submit
				part, qos := "cpu", "normal"
				gres := 0
				switch rng.Intn(4) {
				case 0:
					part, qos = "standby", "standby"
				case 1:
					part = "gpu"
					gres = 1 + rng.Intn(2)
				}
				profile := UsageProfile{
					ActualDuration: time.Duration(5+rng.Intn(120)) * time.Minute,
					CPUUtilization: rng.Float64(),
					MemUtilization: rng.Float64() * 1.2, // sometimes OOMs
				}
				if rng.Intn(8) == 0 {
					profile.FailureState = StateFailed
					profile.ExitCode = 1
				}
				id, err := cl.Ctl.Submit(SubmitRequest{
					Name: "prop", User: users[rng.Intn(2)], Account: "lab",
					Partition: part, QOS: qos,
					ReqTRES: TRES{
						CPUs:  1 << rng.Intn(4),
						MemMB: int64(1+rng.Intn(8)) * 1024,
						GPUs:  gres,
						Nodes: 1 + rng.Intn(2),
					},
					TimeLimit: time.Duration(1+rng.Intn(4)) * time.Hour,
					Profile:   profile,
				})
				if err == nil {
					submitted = append(submitted, id)
				}
			case 5: // cancel, suspend, or resume a random job
				if len(submitted) > 0 {
					id := submitted[rng.Intn(len(submitted))]
					switch rng.Intn(3) {
					case 0:
						_ = cl.Ctl.Cancel(id, "root")
					case 1:
						_ = cl.Ctl.Suspend(id, "root")
					default:
						_ = cl.Ctl.Resume(id, "root")
					}
				}
			case 6: // drain or resume a node
				name := []string{"c001", "c002", "c003", "c004", "g001"}[rng.Intn(5)]
				if rng.Intn(2) == 0 {
					_ = cl.Ctl.DrainNode(name, "prop-test")
				} else {
					_ = cl.Ctl.ResumeNode(name)
				}
			case 7: // down + resume cycle
				name := []string{"c001", "c002"}[rng.Intn(2)]
				_ = cl.Ctl.SetNodeDown(name, "prop-test")
			default: // just advance time
			}
			clock.Advance(time.Duration(1+rng.Intn(30)) * time.Minute)
			cl.Ctl.Tick()
			checkInvariants(t, &Cluster{Name: "prop", Clock: clock, Ctl: cl.Ctl, DBD: cl.DBD})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringTicks exercises the controller under racing
// readers and writers; run with -race to validate the locking.
func TestConcurrentQueriesDuringTicks(t *testing.T) {
	cl, clock := testCluster(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			submitOne(t, cl, SubmitRequest{
				User: "alice", Account: "lab-a", Partition: "cpu",
				ReqTRES: TRES{CPUs: 1 + i%4, MemMB: 512},
				Profile: UsageProfile{ActualDuration: 10 * time.Minute,
					CPUUtilization: 0.5, MemUtilization: 0.5},
			})
			clock.Advance(time.Minute)
			cl.Ctl.Tick()
		}
	}()
	for i := 0; i < 100; i++ {
		cl.Ctl.Jobs(LiveJobFilter{User: "alice"})
		cl.Ctl.Nodes()
		cl.Ctl.Utilization()
		cl.Ctl.EventsSince(0, 50)
		cl.DBD.Jobs(JobFilter{Users: []string{"alice"}, Limit: 20}, cl.Ctl.Now())
		cl.Ctl.LiveAccountUsage("lab-a")
	}
	<-done
}
