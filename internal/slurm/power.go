package slurm

import (
	"fmt"
	"strings"
	"time"
)

// Power management models Slurm's energy-saving cycle (SuspendProgram /
// ResumeProgram) and health-check reboots (scontrol reboot): idle nodes can
// be powered down, a powered-down node wakes when the scheduler needs it for
// pending work, and a drained node can be rebooted and returned to service.
// Transitions take simulated time — a waking node is unschedulable until its
// boot delay elapses — so drills see the same window of reduced capacity a
// real cluster does.

const (
	// DefaultResumeDelay is how long a powered-down node takes to boot back
	// into service (Slurm's ResumeTimeout scale).
	DefaultResumeDelay = 3 * time.Minute
	// DefaultRebootDelay is how long a full reboot cycle takes.
	DefaultRebootDelay = 5 * time.Minute
)

// rebootReasonPrefix tags StateReason while a reboot is in progress so the
// completion handler knows to clear it.
const rebootReasonPrefix = "reboot:"

// PowerStats counts power-state transitions since cluster start.
type PowerStats struct {
	PowerDowns int // nodes powered down for energy saving
	PowerUps   int // power-up requests, manual and automatic
	AutoWakes  int // power-ups initiated by the scheduler for pending work
	Reboots    int // reboot cycles started
}

// SetPowerDelays overrides the boot delays (zero keeps the current value).
func (c *Controller) SetPowerDelays(resume, reboot time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if resume > 0 {
		c.resumeDelay = resume
	}
	if reboot > 0 {
		c.rebootDelay = reboot
	}
}

// Power returns the power-transition counters.
func (c *Controller) Power() PowerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.power
}

// PowerDownNode powers an idle node down for energy saving. The node must
// hold no allocation and not be down or mid-transition; powering down an
// already powered-down node is a no-op.
func (c *Controller) PowerDownNode(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("slurm: unknown node %q", name)
	}
	if n.PoweredDown {
		return nil
	}
	if n.Alloc.CPUs > 0 || len(n.RunningJobs) > 0 {
		return fmt.Errorf("slurm: power down %s: node has running jobs", name)
	}
	if n.State == NodeDown || n.PoweringUp || n.Rebooting {
		return fmt.Errorf("slurm: power down %s: node is %s", name, n.EffectiveState())
	}
	n.PoweredDown = true
	c.power.PowerDowns++
	return nil
}

// PowerDownIdle powers down every idle, schedulable node beyond the first
// keep of them (in name order), returning the names powered down — the
// energy-saving sweep an operator or automation runs over a quiet cluster.
func (c *Controller) PowerDownIdle(keep int) []string {
	c.mu.Lock()
	var candidates []string
	idle := 0
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		if !n.Schedulable() || n.Alloc.CPUs > 0 || len(n.RunningJobs) > 0 {
			continue
		}
		idle++
		if idle > keep {
			candidates = append(candidates, name)
		}
	}
	c.mu.Unlock()
	var out []string
	for _, name := range candidates {
		if err := c.PowerDownNode(name); err == nil {
			out = append(out, name)
		}
	}
	return out
}

// PowerUpNode begins booting a powered-down node; it becomes schedulable
// after the resume delay elapses (on a later Tick).
func (c *Controller) PowerUpNode(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.powerUpLocked(name, false)
}

// powerUpLocked is PowerUpNode under c.mu; auto marks scheduler-initiated
// wakes in the stats.
func (c *Controller) powerUpLocked(name string, auto bool) error {
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("slurm: unknown node %q", name)
	}
	if !n.PoweredDown {
		return fmt.Errorf("slurm: power up %s: node is not powered down", name)
	}
	n.PoweredDown = false
	n.PoweringUp = true
	n.PowerReadyAt = c.clock.Now().Add(c.powerResumeDelayLocked())
	c.power.PowerUps++
	if auto {
		c.power.AutoWakes++
	}
	return nil
}

// RebootNode starts a reboot cycle (scontrol reboot): the node must hold no
// running jobs (drain it first), stays unschedulable for the reboot delay,
// and comes back with a fresh BootTime. A down node may be rebooted as a
// repair action; it returns to IDLE when the reboot completes. The Drain
// flag is preserved across the reboot so the health-check flow controls when
// the node takes work again (drain → reboot → resume).
func (c *Controller) RebootNode(name, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("slurm: unknown node %q", name)
	}
	if n.Alloc.CPUs > 0 || len(n.RunningJobs) > 0 {
		return fmt.Errorf("slurm: reboot %s: node has running jobs", name)
	}
	if n.Rebooting {
		return nil
	}
	n.PoweredDown = false
	n.PoweringUp = false
	n.Rebooting = true
	n.PowerReadyAt = c.clock.Now().Add(c.powerRebootDelayLocked())
	if reason != "" {
		n.StateReason = rebootReasonPrefix + " " + reason
	}
	c.power.Reboots++
	return nil
}

func (c *Controller) powerResumeDelayLocked() time.Duration {
	if c.resumeDelay > 0 {
		return c.resumeDelay
	}
	return DefaultResumeDelay
}

func (c *Controller) powerRebootDelayLocked() time.Duration {
	if c.rebootDelay > 0 {
		return c.rebootDelay
	}
	return DefaultRebootDelay
}

// applyPowerLocked completes power-up and reboot transitions whose delay has
// elapsed. Caller holds c.mu.
func (c *Controller) applyPowerLocked(now time.Time) {
	for _, name := range c.nodeOrder {
		n := c.nodes[name]
		if !n.PoweringUp && !n.Rebooting {
			continue
		}
		if now.Before(n.PowerReadyAt) {
			continue
		}
		wasReboot := n.Rebooting
		n.PoweringUp = false
		n.Rebooting = false
		n.PowerReadyAt = time.Time{}
		n.BootTime = now
		if n.State == NodeDown {
			// A reboot repairs a down node.
			n.State = NodeIdle
		}
		if wasReboot && strings.HasPrefix(n.StateReason, rebootReasonPrefix) {
			n.StateReason = ""
		}
	}
}

// autoWakeLocked powers up suitable powered-down nodes when a pending job is
// blocked on resources — Slurm's cloud-scheduling ResumeProgram trigger. It
// wakes at most as many nodes as the job needs; they become schedulable after
// the resume delay and the job starts on a later pass. Caller holds c.mu.
func (c *Controller) autoWakeLocked(j *Job, part *Partition, now time.Time) {
	want := j.ReqTRES.Nodes
	if want <= 0 {
		want = 1
	}
	share := perNodeShare(j.ReqTRES, want)
	woken := 0
	for _, name := range part.Nodes {
		if woken >= want {
			return
		}
		n := c.nodes[name]
		if n == nil || !n.PoweredDown || n.Drain || n.Maint || n.State == NodeDown {
			continue
		}
		if !n.HasFeatures(j.Constraint) || !share.Fits(n.Free()) {
			continue
		}
		if c.nodeBlockedByMaintenanceLocked(name, now, j.TimeLimit) {
			continue
		}
		if c.powerUpLocked(name, true) == nil {
			woken++
		}
	}
}
