package slurm

import (
	"context"

	"ooddash/internal/trace"
)

// Handle serves one client RPC on the controller: the availability gate
// first, then fn (the command body). When ctx carries an active trace span a
// "slurmctld.handle" child span wraps the server-side work — the in-process
// stand-in for the daemon joining a propagated trace — so a request's
// waterfall shows time spent inside slurmctld, attributed by RPC name.
func (c *Controller) Handle(ctx context.Context, rpc string, fn func() (string, error)) (string, error) {
	return handleDaemonRPC(ctx, "slurmctld.handle", rpc, c.Available, fn)
}

// Handle serves one client RPC on the accounting daemon; see
// Controller.Handle. The span is named "slurmdbd.handle" so trace timings
// split controller load from accounting load — the asymmetry the dashboard's
// cache sizing targets.
func (d *DBD) Handle(ctx context.Context, rpc string, fn func() (string, error)) (string, error) {
	return handleDaemonRPC(ctx, "slurmdbd.handle", rpc, d.Available, fn)
}

// handleDaemonRPC runs a daemon's availability gate and command body under a
// server-side span. An untraced context runs gate and body with no overhead
// beyond one context lookup.
func handleDaemonRPC(ctx context.Context, spanName, rpc string, avail func() error, fn func() (string, error)) (string, error) {
	if trace.SpanFromContext(ctx) == nil {
		if err := avail(); err != nil {
			return "", err
		}
		return fn()
	}
	_, sp := trace.StartSpan(ctx, spanName)
	sp.SetAttr("rpc", rpc)
	if err := avail(); err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return "", err
	}
	out, err := fn()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return out, err
}
