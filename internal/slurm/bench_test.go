package slurm

import (
	"fmt"
	"testing"
	"time"
)

// benchCluster builds a cluster with the given node count and fills it to
// ~70% with running jobs plus a pending backlog.
func benchCluster(b *testing.B, nodes, runningJobs, pendingJobs int) (*Cluster, *SimClock) {
	b.Helper()
	clock := NewSimClock(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	cfg := ClusterConfig{
		Name: "bench",
		Nodes: []NodeSpec{
			{NamePrefix: "a", Count: nodes, CPUs: 128, MemMB: 256 * 1024, Partitions: []string{"cpu"}},
		},
		Partitions:   []PartitionSpec{{Name: "cpu", MaxTime: 96 * time.Hour, Default: true}},
		QOS:          []QOS{{Name: "normal"}},
		Associations: []Association{{Account: "lab"}, {Account: "lab", User: "u"}},
	}
	cl, err := NewCluster(cfg, clock)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < runningJobs+pendingJobs; i++ {
		if _, err := cl.Ctl.Submit(SubmitRequest{
			Name: fmt.Sprintf("bench-%d", i), User: "u", Account: "lab",
			Partition: "cpu", QOS: "normal",
			ReqTRES:   TRES{CPUs: 16, MemMB: 16 * 1024},
			TimeLimit: 12 * time.Hour,
			Profile:   UsageProfile{ActualDuration: 6 * time.Hour, CPUUtilization: 0.8, MemUtilization: 0.5},
		}); err != nil {
			b.Fatal(err)
		}
	}
	cl.Ctl.Tick()
	return cl, clock
}

func BenchmarkTickSteadyState(b *testing.B) {
	for _, size := range []struct{ nodes, running, pending int }{
		{64, 256, 50},
		{512, 2048, 500},
	} {
		name := fmt.Sprintf("nodes=%d/backlog=%d", size.nodes, size.pending)
		b.Run(name, func(b *testing.B) {
			cl, clock := benchCluster(b, size.nodes, size.running, size.pending)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(time.Second)
				cl.Ctl.Tick()
			}
		})
	}
}

func BenchmarkSubmit(b *testing.B) {
	cl, _ := benchCluster(b, 64, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Ctl.Submit(SubmitRequest{
			Name: "s", User: "u", Account: "lab", Partition: "cpu", QOS: "normal",
			ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour,
			Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSqueueQuery(b *testing.B) {
	cl, _ := benchCluster(b, 512, 2048, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if jobs := cl.Ctl.Jobs(LiveJobFilter{User: "u"}); len(jobs) == 0 {
			b.Fatal("empty queue")
		}
	}
}

func BenchmarkUtilization(b *testing.B) {
	cl, _ := benchCluster(b, 512, 2048, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if util := cl.Ctl.Utilization(); len(util) == 0 {
			b.Fatal("no partitions")
		}
	}
}

func BenchmarkNodesSnapshot(b *testing.B) {
	cl, _ := benchCluster(b, 512, 1024, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nodes := cl.Ctl.Nodes(); len(nodes) != 512 {
			b.Fatal("bad node count")
		}
	}
}

func BenchmarkDBDQueryWindow(b *testing.B) {
	cl, clock := benchCluster(b, 64, 256, 0)
	// Age jobs into history.
	for i := 0; i < 50; i++ {
		clock.Advance(time.Hour)
		cl.Ctl.Tick()
	}
	now := clock.Now()
	filter := JobFilter{Users: []string{"u"}, Start: now.Add(-24 * time.Hour), End: now}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.DBD.Jobs(filter, now)
	}
}

func BenchmarkEventsDeltaPoll(b *testing.B) {
	cl, _ := benchCluster(b, 64, 256, 0)
	head := cl.Ctl.LastEventSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := cl.Ctl.EventsSince(head, 0); len(evs) != 0 {
			b.Fatal("unexpected events")
		}
	}
}

func BenchmarkNodeNameRange(b *testing.B) {
	names := make([]string, 512)
	for i := range names {
		names[i] = fmt.Sprintf("a%03d", i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := NodeNameRange(names); out == "" {
			b.Fatal("empty range")
		}
	}
}
