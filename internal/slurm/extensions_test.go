package slurm

import (
	"strings"
	"testing"
	"time"
)

// preemptCluster builds a cluster with a preemptable standby tier sharing
// nodes with the normal partition.
func preemptCluster(t *testing.T) (*Cluster, *SimClock) {
	t.Helper()
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := ClusterConfig{
		Name: "preempt-test",
		Nodes: []NodeSpec{
			{NamePrefix: "c", Count: 2, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu", "standby"}},
		},
		Partitions: []PartitionSpec{
			{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
			{Name: "standby", MaxTime: 4 * time.Hour, Priority: 0},
		},
		QOS: []QOS{
			{Name: "normal"},
			{Name: "standby", Priority: -500, Preemptable: true},
		},
		Associations: []Association{
			{Account: "lab"},
			{Account: "lab", User: "alice"},
			{Account: "lab", User: "bob"},
		},
	}
	cl, err := NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	return cl, clock
}

func TestPreemptionRequeuesStandbyJobs(t *testing.T) {
	cl, _ := preemptCluster(t)
	// Fill both nodes with standby work.
	var standby []JobID
	for i := 0; i < 2; i++ {
		id, err := cl.Ctl.Submit(SubmitRequest{
			Name: "standby-fill", User: "bob", Account: "lab", Partition: "standby", QOS: "standby",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: 4 * time.Hour,
			Profile: UsageProfile{ActualDuration: 3 * time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		standby = append(standby, id)
	}
	cl.Ctl.Tick()
	for _, id := range standby {
		if got := cl.Ctl.Job(id).State; got != StateRunning {
			t.Fatalf("standby job %d = %s", id, got)
		}
	}
	// A normal job needing one full node preempts exactly one standby job.
	normal, err := cl.Ctl.Submit(SubmitRequest{
		Name: "urgent", User: "alice", Account: "lab", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: time.Hour,
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(normal).State; got != StateRunning {
		t.Fatalf("normal job = %s, want RUNNING after preemption", got)
	}
	requeued := 0
	for _, id := range standby {
		j := cl.Ctl.Job(id)
		switch j.State {
		case StatePending:
			requeued++
			if !j.StartTime.IsZero() || j.AllocTRES.CPUs != 0 || len(j.Nodes) != 0 {
				t.Fatalf("requeued job retains allocation: %+v", j)
			}
		case StateRunning:
		default:
			t.Fatalf("standby job %d = %s", id, j.State)
		}
	}
	if requeued != 1 {
		t.Fatalf("requeued standby jobs = %d, want exactly 1", requeued)
	}
	// The preemption appears on the event feed.
	found := false
	for _, e := range cl.Ctl.EventsSince(0, 0) {
		if e.Kind == EventPreempted {
			found = true
		}
	}
	if !found {
		t.Fatal("no preemption event emitted")
	}
}

func TestPreemptionNotTriggeredWhenInfeasible(t *testing.T) {
	cl, _ := preemptCluster(t)
	// Fill with NORMAL (non-preemptable) jobs.
	for i := 0; i < 2; i++ {
		_, err := cl.Ctl.Submit(SubmitRequest{
			User: "bob", Account: "lab", Partition: "cpu", QOS: "normal",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: 4 * time.Hour,
			Profile: UsageProfile{ActualDuration: 3 * time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	cl.Ctl.Tick()
	blocked, err := cl.Ctl.Submit(SubmitRequest{
		User: "alice", Account: "lab", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: time.Hour,
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 1, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	j := cl.Ctl.Job(blocked)
	if j.State != StatePending || j.Reason != ReasonResources {
		t.Fatalf("job = %s/%s, want PENDING/Resources (nothing preemptable)", j.State, j.Reason)
	}
}

func TestStandbyJobCannotPreempt(t *testing.T) {
	cl, _ := preemptCluster(t)
	for i := 0; i < 2; i++ {
		if _, err := cl.Ctl.Submit(SubmitRequest{
			User: "bob", Account: "lab", Partition: "standby", QOS: "standby",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: 4 * time.Hour,
			Profile: UsageProfile{ActualDuration: 3 * time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cl.Ctl.Tick()
	another, err := cl.Ctl.Submit(SubmitRequest{
		User: "alice", Account: "lab", Partition: "standby", QOS: "standby",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: 4 * time.Hour,
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(another).State; got != StatePending {
		t.Fatalf("standby job preempted a peer: %s", got)
	}
}

func TestOOMKill(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:   TRES{CPUs: 2, MemMB: 1024},
		TimeLimit: time.Hour,
		Profile: UsageProfile{ActualDuration: 20 * time.Minute,
			CPUUtilization: 0.5, MemUtilization: 1.4}, // outgrows its request
	})
	cl.Ctl.Tick()
	clock.Advance(21 * time.Minute)
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StateOutOfMemory {
		t.Fatalf("state = %s, want OUT_OF_MEMORY", j.State)
	}
	if j.ExitCode == 0 {
		t.Fatal("OOM job should have nonzero exit code")
	}
	// Event feed carries the OOM.
	kinds := make(map[EventKind]int)
	for _, e := range cl.Ctl.EventsSince(0, 0) {
		kinds[e.Kind]++
	}
	if kinds[EventOOM] != 1 {
		t.Fatalf("events = %+v", kinds)
	}
}

func TestFairSharepenalizesHeavyAccounts(t *testing.T) {
	cl, clock := testCluster(t)
	// Make lab-b heavy: run and finish large jobs to accumulate usage
	// (4 x 8 CPUs x 23 h = 736 core-hours, a few fair-share points).
	for i := 0; i < 4; i++ {
		submitOne(t, cl, SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024}, TimeLimit: 24 * time.Hour,
			Profile: UsageProfile{ActualDuration: 23 * time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		})
	}
	cl.Ctl.Tick()
	clock.Advance(24 * time.Hour)
	cl.Ctl.Tick()

	// Saturate the cluster, then queue one job from each account.
	for i := 0; i < 4; i++ {
		submitOne(t, cl, SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: TRES{CPUs: 8, MemMB: 1024},
			Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
		})
	}
	cl.Ctl.Tick()
	light := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	heavy := submitOne(t, cl, SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 8, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	jl, jh := cl.Ctl.Job(light), cl.Ctl.Job(heavy)
	if jl.Priority <= jh.Priority {
		t.Fatalf("light account priority %d not above heavy %d", jl.Priority, jh.Priority)
	}
}

func TestEventFeedLifecycle(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		Name: "evented", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 10 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(11 * time.Minute)
	cl.Ctl.Tick()

	events := cl.Ctl.EventsSince(0, 0)
	var kinds []EventKind
	for _, e := range events {
		if e.JobID == id {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []EventKind{EventSubmitted, EventStarted, EventCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// Sequence numbers strictly increase.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("sequence not increasing at %d", i)
		}
	}
	// Delta polling: nothing new after the last sequence.
	if rest := cl.Ctl.EventsSince(cl.Ctl.LastEventSeq(), 0); len(rest) != 0 {
		t.Fatalf("delta poll returned %d events", len(rest))
	}
	// Partial polling picks up from the middle.
	mid := events[len(events)/2].Seq
	rest := cl.Ctl.EventsSince(mid, 0)
	if len(rest) != len(events)-(len(events)/2)-1 {
		t.Fatalf("mid poll = %d events", len(rest))
	}
}

func TestEventLogBounded(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(Event{Kind: EventSubmitted, JobID: JobID(i)})
	}
	all := l.since(0, 0)
	if len(all) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(all))
	}
	if all[0].Seq != 7 || all[3].Seq != 10 {
		t.Fatalf("ring window = %d..%d, want 7..10", all[0].Seq, all[3].Seq)
	}
	if got := l.since(0, 2); len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestEventCancelled(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	if err := cl.Ctl.Cancel(id, "alice"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range cl.Ctl.EventsSince(0, 0) {
		if e.JobID == id && e.Kind == EventCancelled {
			found = true
		}
	}
	if !found {
		t.Fatal("no cancelled event")
	}
}

func TestSuspendResumeStopsWallClock(t *testing.T) {
	cl, clock := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		Name: "pausable", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 2, MemMB: 1024}, TimeLimit: 2 * time.Hour,
		Profile: UsageProfile{ActualDuration: 30 * time.Minute,
			CPUUtilization: 1.0, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(10 * time.Minute)
	cl.Ctl.Tick()

	if err := cl.Ctl.Suspend(id, "bob"); err == nil {
		t.Fatal("suspend by non-owner should fail")
	}
	if err := cl.Ctl.Suspend(id, "alice"); err != nil {
		t.Fatal(err)
	}
	j := cl.Ctl.Job(id)
	if j.State != StateSuspended {
		t.Fatalf("state = %s", j.State)
	}
	// Suspended jobs keep their allocation...
	if n := cl.Ctl.Node(j.Nodes[0]); n.Alloc.CPUs != 2 {
		t.Fatalf("allocation released during suspend: %+v", n.Alloc)
	}
	// ...and their wall clock stops: an hour of suspension later the job
	// has still only run 10 of its 30 minutes.
	clock.Advance(time.Hour)
	cl.Ctl.Tick()
	j = cl.Ctl.Job(id)
	if j.State != StateSuspended {
		t.Fatalf("suspended job completed: %s", j.State)
	}
	if got := j.Elapsed(clock.Now()); got != 10*time.Minute {
		t.Fatalf("elapsed during suspend = %v, want 10m", got)
	}

	if err := cl.Ctl.Resume(id, "alice"); err != nil {
		t.Fatal(err)
	}
	// 20 more minutes of run time finish the 30-minute job.
	clock.Advance(21 * time.Minute)
	cl.Ctl.Tick()
	j = cl.Ctl.Job(id)
	if j.State != StateCompleted {
		t.Fatalf("resumed job = %s, want COMPLETED", j.State)
	}
	if got := j.Elapsed(clock.Now()); got < 29*time.Minute || got > 31*time.Minute {
		t.Fatalf("final elapsed = %v, want ~30m", got)
	}
}

func TestSuspendStateErrors(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", Hold: true,
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	if err := cl.Ctl.Suspend(id, "alice"); err == nil {
		t.Fatal("suspending a pending job should fail")
	}
	if err := cl.Ctl.Resume(id, "alice"); err == nil {
		t.Fatal("resuming a non-suspended job should fail")
	}
	if err := cl.Ctl.Suspend(99999, "root"); err == nil {
		t.Fatal("suspending unknown job should fail")
	}
}

func TestFeatureConstraintPlacement(t *testing.T) {
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := ClusterConfig{
		Name: "features",
		Nodes: []NodeSpec{
			{NamePrefix: "old", Count: 2, CPUs: 8, MemMB: 16 * 1024,
				Features: []string{"skylake"}, Partitions: []string{"cpu"}},
			{NamePrefix: "new", Count: 2, CPUs: 8, MemMB: 16 * 1024,
				Features: []string{"milan", "avx2"}, Partitions: []string{"cpu"}},
		},
		Partitions:   []PartitionSpec{{Name: "cpu", MaxTime: 4 * time.Hour, Default: true}},
		QOS:          []QOS{{Name: "normal"}},
		Associations: []Association{{Account: "lab"}, {Account: "lab", User: "u"}},
	}
	cl, err := NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	submitC := func(constraint string) JobID {
		id, err := cl.Ctl.Submit(SubmitRequest{
			Name: "c", User: "u", Account: "lab", Partition: "cpu", QOS: "normal",
			ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour,
			Constraint: constraint,
			Profile:    UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	milan := submitC("milan")
	both := submitC("milan,avx2")
	any := submitC("")
	// An unsatisfiable constraint is rejected at submit, like Slurm's
	// "Requested node configuration is not available".
	if _, err := cl.Ctl.Submit(SubmitRequest{
		Name: "c", User: "u", Account: "lab", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour,
		Constraint: "h100",
		Profile:    UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	}); err == nil {
		t.Fatal("unsatisfiable constraint accepted")
	}
	cl.Ctl.Tick()

	for _, tc := range []struct {
		id     JobID
		prefix string
	}{{milan, "new"}, {both, "new"}} {
		j := cl.Ctl.Job(tc.id)
		if j.State != StateRunning {
			t.Fatalf("job %d = %s", tc.id, j.State)
		}
		if !strings.HasPrefix(j.Nodes[0], tc.prefix) {
			t.Fatalf("job %d placed on %v, want %s*", tc.id, j.Nodes, tc.prefix)
		}
	}
	if got := cl.Ctl.Job(any).State; got != StateRunning {
		t.Fatalf("unconstrained job = %s", got)
	}
}

func TestNodeHasFeatures(t *testing.T) {
	n := Node{Features: []string{"milan", "avx2", "a100"}}
	cases := []struct {
		constraint string
		want       bool
	}{
		{"", true},
		{"milan", true},
		{"milan,avx2", true},
		{"milan, avx2", true},
		{"h100", false},
		{"milan,h100", false},
	}
	for _, tc := range cases {
		if got := n.HasFeatures(tc.constraint); got != tc.want {
			t.Errorf("HasFeatures(%q) = %v, want %v", tc.constraint, got, tc.want)
		}
	}
}
