package slurm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Controller simulates slurmctld: it owns the live cluster state (nodes,
// partitions, queue) and serves the query RPCs behind squeue, sinfo, and
// scontrol. Every query is counted in Stats so experiments can measure the
// controller load the paper's caching design is meant to reduce.
type Controller struct {
	mu          sync.Mutex
	clock       Clock
	clusterName string
	dbd         *DBD
	stats       *DaemonStats

	nodes      map[string]*Node
	nodeOrder  []string
	partitions map[string]*Partition
	partOrder  []string
	qos        map[string]*QOS

	jobs      map[JobID]*Job // active jobs plus recently finished ones
	jobOrder  []JobID        // submission order of jobs still held in memory
	nextID    JobID
	retention time.Duration // how long finished jobs stay visible to squeue
	events    *eventLog     // real-time monitoring feed (§9 extension)

	maintWindows []MaintenanceWindow
	maintSeq     int
	manualMaint  map[string]bool // nodes placed in maintenance by hand

	// Power management (see power.go): transition counters and the boot
	// delays for power-up and reboot cycles (zero means the defaults).
	power       PowerStats
	resumeDelay time.Duration
	rebootDelay time.Duration

	// healthGate simulates controller outages and brown-outs; queries are
	// gated at the command surface (slurmcli.SimRunner), not here, so
	// internal bookkeeping keeps working while "clients" see failures.
	healthGate healthGate
}

// newController builds a controller from already-validated cluster state.
// Use NewCluster to construct the full daemon pair from a ClusterConfig.
func newController(name string, clock Clock, dbd *DBD, retention time.Duration) *Controller {
	if retention <= 0 {
		retention = 5 * time.Minute
	}
	return &Controller{
		clock:       clock,
		clusterName: name,
		dbd:         dbd,
		stats:       NewDaemonStats("slurmctld"),
		nodes:       make(map[string]*Node),
		partitions:  make(map[string]*Partition),
		qos:         make(map[string]*QOS),
		jobs:        make(map[JobID]*Job),
		nextID:      1000, // Slurm job IDs on long-lived clusters start high
		retention:   retention,
		events:      newEventLog(8192),
		manualMaint: make(map[string]bool),
	}
}

// Stats exposes the controller's RPC counters.
func (c *Controller) Stats() *DaemonStats { return c.stats }

// ClusterName returns the configured cluster name.
func (c *Controller) ClusterName() string { return c.clusterName }

// Now returns the controller's current (possibly simulated) time.
func (c *Controller) Now() time.Time { return c.clock.Now() }

// addNode registers a node during cluster construction.
func (c *Controller) addNode(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[n.Name] = n
	c.nodeOrder = append(c.nodeOrder, n.Name)
	sort.Strings(c.nodeOrder)
}

// addPartition registers a partition during cluster construction.
func (c *Controller) addPartition(p *Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Strings(p.Nodes)
	c.partitions[p.Name] = p
	c.partOrder = append(c.partOrder, p.Name)
}

// addQOS registers a QOS level during cluster construction.
func (c *Controller) addQOS(q QOS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := q
	c.qos[q.Name] = &cp
}

// Submit validates and enqueues a job (or a whole job array), returning the
// (array) job ID. Mirrors sbatch: the job is recorded with the accounting
// daemon immediately and scheduled on the next Tick.
func (c *Controller) Submit(req SubmitRequest) (JobID, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	c.stats.Record(RPCSubmit)
	now := c.clock.Now()

	c.mu.Lock()
	part := c.partitions[req.Partition]
	if part == nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: submit: unknown partition %q", req.Partition)
	}
	if part.MaxTime > 0 && req.TimeLimit > part.MaxTime {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: submit: time limit %v exceeds partition %s limit %v",
			req.TimeLimit, part.Name, part.MaxTime)
	}
	if req.QOS != "" {
		if _, ok := c.qos[req.QOS]; !ok {
			c.mu.Unlock()
			return 0, fmt.Errorf("slurm: submit: unknown QOS %q", req.QOS)
		}
	}
	if c.dbd.Association(AssocKey{Account: req.Account, User: req.User}) == nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: submit: user %q has no association with account %q",
			req.User, req.Account)
	}
	if req.Constraint != "" {
		// Like Slurm, reject requests no node in the partition could ever
		// satisfy ("Requested node configuration is not available").
		satisfiable := false
		for _, name := range part.Nodes {
			if n := c.nodes[name]; n != nil && n.HasFeatures(req.Constraint) {
				satisfiable = true
				break
			}
		}
		if !satisfiable {
			c.mu.Unlock()
			return 0, fmt.Errorf("slurm: submit: requested node configuration is not available (constraint %q in partition %s)",
				req.Constraint, part.Name)
		}
	}

	tasks := req.ArraySize
	if tasks <= 1 {
		tasks = 1
	}
	arrayID := JobID(0)
	if req.ArraySize > 1 {
		arrayID = c.nextID
	}
	first := c.nextID
	created := make([]*Job, 0, tasks)
	for t := 0; t < tasks; t++ {
		id := c.nextID
		c.nextID++
		j := &Job{
			ID:             id,
			Name:           req.Name,
			User:           req.User,
			Account:        req.Account,
			Partition:      req.Partition,
			QOS:            req.QOS,
			ReqTRES:        req.ReqTRES,
			TimeLimit:      req.TimeLimit,
			SubmitTime:     now,
			BeginTime:      req.BeginTime,
			Dependency:     req.Dependency,
			WorkDir:        req.WorkDir,
			StdoutPath:     req.StdoutPath,
			StderrPath:     req.StderrPath,
			Constraint:     req.Constraint,
			InteractiveApp: req.InteractiveApp,
			SessionID:      req.SessionID,
			State:          StatePending,
			Reason:         ReasonPriority,
			Profile:        req.Profile,
		}
		if arrayID != 0 {
			j.ArrayJobID = arrayID
			j.ArrayTaskID = t
		}
		if req.Hold {
			j.Reason = ReasonJobHeldUser
		}
		if j.ReqTRES.Nodes <= 0 {
			j.ReqTRES.Nodes = 1
		}
		j.EligibleTime = now
		if req.BeginTime.After(now) {
			j.EligibleTime = req.BeginTime
		}
		c.jobs[id] = j
		c.jobOrder = append(c.jobOrder, id)
		created = append(created, j)
	}
	c.mu.Unlock()

	for _, j := range created {
		c.dbd.recordJob(j)
		c.emitJobEvent(EventSubmitted, j, now)
	}
	return first, nil
}

// Cancel cancels a job. Only the submitting user (or "root") may cancel.
func (c *Controller) Cancel(id JobID, user string) error {
	c.stats.Record(RPCCancel)
	now := c.clock.Now()
	c.mu.Lock()
	j := c.jobs[id]
	if j == nil {
		c.mu.Unlock()
		return fmt.Errorf("slurm: cancel: unknown job %d", id)
	}
	if user != "root" && user != j.User {
		c.mu.Unlock()
		return fmt.Errorf("slurm: cancel: user %s may not cancel job %d owned by %s", user, id, j.User)
	}
	if j.State.Terminal() {
		c.mu.Unlock()
		return nil
	}
	if j.State == StateRunning || j.State == StateSuspended {
		c.freeJobResourcesLocked(j)
	}
	j.State = StateCancelled
	j.Reason = ReasonNone
	j.EndTime = now
	rec := j.Clone()
	c.emitJobEvent(EventCancelled, j, now)
	c.mu.Unlock()

	c.dbd.recordJob(rec)
	if !rec.StartTime.IsZero() {
		c.dbd.chargeUsage(rec, now)
	}
	return nil
}

// Hold marks a pending job held by the user; Release undoes it.
func (c *Controller) Hold(id JobID, user string) error {
	return c.setHold(id, user, true)
}

// Release releases a user hold on a pending job.
func (c *Controller) Release(id JobID, user string) error {
	return c.setHold(id, user, false)
}

func (c *Controller) setHold(id JobID, user string, hold bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return fmt.Errorf("slurm: hold: unknown job %d", id)
	}
	if user != "root" && user != j.User {
		return fmt.Errorf("slurm: hold: permission denied for user %s on job %d", user, id)
	}
	if j.State != StatePending {
		return fmt.Errorf("slurm: hold: job %d is %s, not pending", id, j.State)
	}
	if hold {
		j.Reason = ReasonJobHeldUser
	} else if j.Reason == ReasonJobHeldUser {
		j.Reason = ReasonPriority
	}
	return nil
}

// Suspend pauses a running job: it keeps its allocation but its wall clock
// stops, so the scheduled end shifts out by the suspension (scontrol
// suspend semantics). Owner or root only.
func (c *Controller) Suspend(id JobID, user string) error {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return fmt.Errorf("slurm: suspend: unknown job %d", id)
	}
	if user != "root" && user != j.User {
		return fmt.Errorf("slurm: suspend: permission denied for user %s on job %d", user, id)
	}
	if j.State != StateRunning {
		return fmt.Errorf("slurm: suspend: job %d is %s, not running", id, j.State)
	}
	j.State = StateSuspended
	j.SuspendedAt = now
	c.dbd.recordJob(j)
	return nil
}

// Resume continues a suspended job.
func (c *Controller) Resume(id JobID, user string) error {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return fmt.Errorf("slurm: resume: unknown job %d", id)
	}
	if user != "root" && user != j.User {
		return fmt.Errorf("slurm: resume: permission denied for user %s on job %d", user, id)
	}
	if j.State != StateSuspended {
		return fmt.Errorf("slurm: resume: job %d is %s, not suspended", id, j.State)
	}
	j.SuspendTotal += now.Sub(j.SuspendedAt)
	j.SuspendedAt = time.Time{}
	j.State = StateRunning
	c.dbd.recordJob(j)
	return nil
}

// --- Node administration -------------------------------------------------

// DrainNode marks a node draining with the given reason.
func (c *Controller) DrainNode(name, reason string) error {
	return c.setNodeFlags(name, func(n *Node) {
		n.Drain = true
		n.StateReason = reason
	})
}

// ResumeNode clears drain/maint/down flags so the node schedules again.
func (c *Controller) ResumeNode(name string) error {
	return c.setNodeFlags(name, func(n *Node) {
		n.Drain = false
		n.Maint = false
		n.StateReason = ""
		if n.State == NodeDown {
			n.State = NodeIdle
		}
	})
}

// SetNodeDown marks a node down (jobs on it fail at the next Tick).
func (c *Controller) SetNodeDown(name, reason string) error {
	return c.setNodeFlags(name, func(n *Node) {
		n.State = NodeDown
		n.StateReason = reason
	})
}

// SetNodeMaint places a node in (or out of) manual maintenance, independent
// of scheduled maintenance windows.
func (c *Controller) SetNodeMaint(name string, maint bool) error {
	return c.setNodeFlags(name, func(n *Node) {
		n.Maint = maint
		c.manualMaint[name] = maint
		if !maint {
			delete(c.manualMaint, name)
		}
	})
}

func (c *Controller) setNodeFlags(name string, f func(*Node)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[name]
	if n == nil {
		return fmt.Errorf("slurm: unknown node %q", name)
	}
	f(n)
	return nil
}

// --- Queries (the squeue/sinfo/scontrol surface) --------------------------

// LiveJobFilter selects jobs from the controller's in-memory queue, the
// squeue surface. Unlike sacct, it only sees active and recently finished
// jobs.
type LiveJobFilter struct {
	User      string
	Account   string
	Partition string
	States    []JobState
	Node      string // only jobs running on this node
	Limit     int    // cap result count (most recent submissions first)
}

func (f *LiveJobFilter) matches(j *Job) bool {
	if f.User != "" && j.User != f.User {
		return false
	}
	if f.Account != "" && j.Account != f.Account {
		return false
	}
	if f.Partition != "" && j.Partition != f.Partition {
		return false
	}
	if len(f.States) > 0 {
		ok := false
		for _, s := range f.States {
			if j.State == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Node != "" {
		ok := false
		for _, n := range j.Nodes {
			if n == f.Node {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Jobs returns live queue entries matching the filter, newest submissions
// first. Counted as a squeue RPC against the controller.
func (c *Controller) Jobs(f LiveJobFilter) []*Job {
	c.stats.Record(RPCSqueue)
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Job
	for i := len(c.jobOrder) - 1; i >= 0; i-- {
		j := c.jobs[c.jobOrder[i]]
		if j == nil || !f.matches(j) {
			continue
		}
		out = append(out, j.Clone())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Job returns one live job by ID (scontrol show job), or nil if the job has
// aged out of controller memory.
func (c *Controller) Job(id JobID) *Job {
	c.stats.Record(RPCJobInfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	if j := c.jobs[id]; j != nil {
		return j.Clone()
	}
	return nil
}

// Node returns one node (scontrol show node <name>), or nil when unknown.
func (c *Controller) Node(name string) *Node {
	c.stats.Record(RPCNodeInfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.nodes[name]; n != nil {
		return n.Clone()
	}
	return nil
}

// Nodes returns all nodes in name order (scontrol show node).
func (c *Controller) Nodes() []*Node {
	c.stats.Record(RPCNodeInfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodeOrder))
	for _, name := range c.nodeOrder {
		out = append(out, c.nodes[name].Clone())
	}
	return out
}

// Partitions returns all partitions in registration order (sinfo).
func (c *Controller) Partitions() []*Partition {
	c.stats.Record(RPCSinfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Partition, 0, len(c.partOrder))
	for _, name := range c.partOrder {
		out = append(out, c.partitions[name].Clone())
	}
	return out
}

// QOSByName returns the QOS definition, or nil.
func (c *Controller) QOSByName(name string) *QOS {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q := c.qos[name]; q != nil {
		cp := *q
		return &cp
	}
	return nil
}

// Utilization computes per-partition utilization, the System Status widget's
// data. Counted as one sinfo RPC regardless of partition count, matching a
// single `sinfo` invocation.
func (c *Controller) Utilization() []PartitionUtilization {
	c.stats.Record(RPCSinfo)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PartitionUtilization, 0, len(c.partOrder))
	for _, pname := range c.partOrder {
		p := c.partitions[pname]
		u := PartitionUtilization{
			Name:         p.Name,
			State:        p.State,
			NodesByState: make(map[NodeState]int),
		}
		for _, nname := range p.Nodes {
			n := c.nodes[nname]
			if n == nil {
				continue
			}
			u.TotalNodes++
			u.TotalCPUs += n.CPUs
			u.AllocCPUs += n.Alloc.CPUs
			u.TotalGPUs += n.GPUs
			u.AllocGPUs += n.Alloc.GPUs
			u.NodesByState[n.EffectiveState()]++
		}
		for _, id := range c.jobOrder {
			j := c.jobs[id]
			if j == nil || j.Partition != p.Name {
				continue
			}
			switch j.State {
			case StatePending:
				u.PendingJobs++
			case StateRunning:
				u.RunningJobs++
			}
		}
		out = append(out, u)
	}
	return out
}

// LiveAccountUsage aggregates in-use and queued CPUs per account from the
// live queue, merged with the accounting daemon's accumulated usage. This is
// the `scontrol show assoc`-backed Accounts widget data (§3.4). Counted as
// one assoc RPC.
func (c *Controller) LiveAccountUsage(account string) AccountUsage {
	c.stats.Record(RPCAssocInfo)
	assoc := c.dbd.Association(AssocKey{Account: account})

	c.mu.Lock()
	perUser := make(map[string]*UserUsage)
	u := AccountUsage{Account: account}
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j == nil || j.Account != account {
			continue
		}
		uu := perUser[j.User]
		if uu == nil {
			uu = &UserUsage{User: j.User}
			perUser[j.User] = uu
		}
		switch j.State {
		case StateRunning, StateCompleting:
			u.CPUsInUse += j.AllocTRES.CPUs
			uu.CPUsInUse += j.AllocTRES.CPUs
			uu.RunningJobs++
		case StatePending:
			u.CPUsQueued += j.ReqTRES.CPUs
			uu.CPUsQueued += j.ReqTRES.CPUs
			uu.PendingJobs++
		}
	}
	c.mu.Unlock()

	if assoc != nil {
		u.GrpCPULimit = assoc.GrpCPULimit
		u.GrpGPUHourLimit = assoc.GrpGPUHourLimit
		u.GPUHoursUsed = assoc.GPUHoursUsed
	}
	// Fold in accumulated per-user usage from accounting.
	for user, uu := range perUser {
		if a := c.dbd.Association(AssocKey{Account: account, User: user}); a != nil {
			uu.GPUHoursUsed = a.GPUHoursUsed
			uu.CPUHoursUsed = a.CPUTimeUsed
		}
	}
	u.PerUser = make([]UserUsage, 0, len(perUser))
	for _, uu := range perUser {
		u.PerUser = append(u.PerUser, *uu)
	}
	sort.Slice(u.PerUser, func(i, j int) bool {
		if u.PerUser[i].CPUsInUse != u.PerUser[j].CPUsInUse {
			return u.PerUser[i].CPUsInUse > u.PerUser[j].CPUsInUse
		}
		return u.PerUser[i].User < u.PerUser[j].User
	})
	return u
}

// UserAccounts returns the accounts the user has an association with,
// sorted. Counted as one assoc RPC.
func (c *Controller) UserAccounts(user string) []string {
	c.stats.Record(RPCAssocInfo)
	var out []string
	for _, a := range c.dbd.Associations() {
		if a.User == user {
			out = append(out, a.Account)
		}
	}
	sort.Strings(out)
	return out
}

// freeJobResourcesLocked releases a running job's allocation back to its
// nodes. Caller holds c.mu.
func (c *Controller) freeJobResourcesLocked(j *Job) {
	if len(j.Nodes) == 0 {
		return
	}
	share := perNodeShare(j.AllocTRES, len(j.Nodes))
	for _, name := range j.Nodes {
		n := c.nodes[name]
		if n == nil {
			continue
		}
		n.Alloc = n.Alloc.Sub(share)
		if n.Alloc.CPUs < 0 {
			n.Alloc.CPUs = 0
		}
		if n.Alloc.MemMB < 0 {
			n.Alloc.MemMB = 0
		}
		if n.Alloc.GPUs < 0 {
			n.Alloc.GPUs = 0
		}
		n.removeJob(j.ID)
		n.LastBusy = c.clock.Now()
	}
}
