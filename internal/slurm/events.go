package slurm

import (
	"sync"
	"time"
)

// EventKind labels a job state transition.
type EventKind string

// Event kinds emitted by the controller.
const (
	EventSubmitted EventKind = "submitted"
	EventStarted   EventKind = "started"
	EventCompleted EventKind = "completed"
	EventFailed    EventKind = "failed"
	EventTimeout   EventKind = "timeout"
	EventCancelled EventKind = "cancelled"
	EventNodeFail  EventKind = "node_fail"
	EventOOM       EventKind = "out_of_memory"
	EventPreempted EventKind = "preempted"
)

// Event is one job state transition, the unit of the dashboard's real-time
// job monitoring feed (a §9 "ongoing work" feature of the paper, built here
// as an extension). Events carry a monotonically increasing sequence number
// so clients can poll for deltas.
type Event struct {
	Seq     int64
	Kind    EventKind
	JobID   JobID
	JobName string
	User    string
	Account string
	State   JobState
	Time    time.Time
}

// eventLog is a bounded ring of recent events.
type eventLog struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	nextSeq int64
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &eventLog{cap: capacity, nextSeq: 1}
}

// append records one event, evicting the oldest when full.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.buf = append(l.buf, e)
	if len(l.buf) > l.cap {
		l.buf = l.buf[len(l.buf)-l.cap:]
	}
}

// since returns events with Seq > seq, up to limit (0 = all available).
func (l *eventLog) since(seq int64, limit int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Binary-search-free scan: the ring is small and ordered by Seq.
	start := len(l.buf)
	for i, e := range l.buf {
		if e.Seq > seq {
			start = i
			break
		}
	}
	out := l.buf[start:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	cp := make([]Event, len(out))
	copy(cp, out)
	return cp
}

// lastSeq returns the newest sequence number issued (0 when empty).
func (l *eventLog) lastSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// stateEventKind maps a terminal state to its event kind.
func stateEventKind(s JobState) EventKind {
	switch s {
	case StateCompleted:
		return EventCompleted
	case StateFailed:
		return EventFailed
	case StateTimeout:
		return EventTimeout
	case StateCancelled:
		return EventCancelled
	case StateNodeFail:
		return EventNodeFail
	case StateOutOfMemory:
		return EventOOM
	case StatePreempted:
		return EventPreempted
	default:
		return EventCompleted
	}
}

// EventsSince returns job events newer than seq for real-time monitoring.
// Counted as one controller RPC (clients poll this like squeue, but deltas
// make each poll O(new events) instead of O(queue)).
func (c *Controller) EventsSince(seq int64, limit int) []Event {
	c.stats.Record(RPCSqueue)
	return c.events.since(seq, limit)
}

// LastEventSeq returns the newest event sequence number.
func (c *Controller) LastEventSeq() int64 {
	return c.events.lastSeq()
}

// emitJobEvent records a transition on the event feed. Caller may hold
// c.mu; the event log has its own lock and never calls back.
func (c *Controller) emitJobEvent(kind EventKind, j *Job, at time.Time) {
	c.events.append(Event{
		Kind: kind, JobID: j.ID, JobName: j.Name,
		User: j.User, Account: j.Account, State: j.State, Time: at,
	})
}
