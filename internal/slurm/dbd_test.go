package slurm

import (
	"testing"
	"time"
)

func seedHistory(t *testing.T) (*Cluster, *SimClock) {
	t.Helper()
	cl, clock := testCluster(t)
	// alice: 3 completed 10-minute jobs, one per 30 minutes.
	for i := 0; i < 3; i++ {
		submitOne(t, cl, SubmitRequest{
			Name: "alice-batch", User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: TRES{CPUs: 2, MemMB: 1024},
			Profile: UsageProfile{ActualDuration: 10 * time.Minute, CPUUtilization: 0.9, MemUtilization: 0.5},
		})
		cl.Ctl.Tick()
		clock.Advance(30 * time.Minute)
		cl.Ctl.Tick()
	}
	// carol: one failed job.
	submitOne(t, cl, SubmitRequest{
		Name: "carol-fail", User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: 2 * time.Minute, FailureState: StateFailed, ExitCode: 1,
			CPUUtilization: 0.2, MemUtilization: 0.1},
	})
	cl.Ctl.Tick()
	clock.Advance(5 * time.Minute)
	cl.Ctl.Tick()
	return cl, clock
}

func TestDBDFilterByUser(t *testing.T) {
	cl, _ := seedHistory(t)
	now := cl.Ctl.Now()
	jobs := cl.DBD.Jobs(JobFilter{Users: []string{"alice"}}, now)
	if len(jobs) != 3 {
		t.Fatalf("alice jobs = %d, want 3", len(jobs))
	}
	for _, j := range jobs {
		if j.User != "alice" {
			t.Fatalf("leaked job for %s", j.User)
		}
	}
}

func TestDBDFilterByState(t *testing.T) {
	cl, _ := seedHistory(t)
	now := cl.Ctl.Now()
	failed := cl.DBD.Jobs(JobFilter{States: []JobState{StateFailed}}, now)
	if len(failed) != 1 || failed[0].User != "carol" {
		t.Fatalf("failed jobs = %+v", failed)
	}
}

func TestDBDFilterByAccount(t *testing.T) {
	cl, _ := seedHistory(t)
	now := cl.Ctl.Now()
	jobs := cl.DBD.Jobs(JobFilter{Accounts: []string{"lab-b"}}, now)
	if len(jobs) != 1 || jobs[0].Account != "lab-b" {
		t.Fatalf("lab-b jobs = %+v", jobs)
	}
}

func TestDBDTimeWindowOverlap(t *testing.T) {
	cl, clock := seedHistory(t)
	now := clock.Now()
	// A window covering only the last 10 minutes should catch only carol's
	// recent failure, not alice's old jobs.
	recent := cl.DBD.Jobs(JobFilter{Start: now.Add(-10 * time.Minute), End: now}, now)
	if len(recent) != 1 || recent[0].User != "carol" {
		t.Fatalf("recent window = %+v", jobsSummary(recent))
	}
	// A window covering everything returns all 4.
	all := cl.DBD.Jobs(JobFilter{Start: now.Add(-24 * time.Hour), End: now}, now)
	if len(all) != 4 {
		t.Fatalf("full window = %d, want 4", len(all))
	}
	// A window before all submissions returns nothing.
	none := cl.DBD.Jobs(JobFilter{Start: now.Add(-48 * time.Hour), End: now.Add(-24 * time.Hour)}, now)
	if len(none) != 0 {
		t.Fatalf("old window = %d, want 0", len(none))
	}
}

func jobsSummary(jobs []*Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.User + "/" + string(j.State)
	}
	return out
}

func TestDBDLimitReturnsNewestFirst(t *testing.T) {
	cl, _ := seedHistory(t)
	now := cl.Ctl.Now()
	jobs := cl.DBD.Jobs(JobFilter{Limit: 2}, now)
	if len(jobs) != 2 {
		t.Fatalf("limited jobs = %d, want 2", len(jobs))
	}
	if !jobs[0].SubmitTime.After(jobs[1].SubmitTime) && !jobs[0].SubmitTime.Equal(jobs[1].SubmitTime) {
		t.Fatalf("limit results not newest-first: %v then %v", jobs[0].SubmitTime, jobs[1].SubmitTime)
	}
}

func TestDBDOrderAscendingWithoutLimit(t *testing.T) {
	cl, _ := seedHistory(t)
	now := cl.Ctl.Now()
	jobs := cl.DBD.Jobs(JobFilter{}, now)
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime.Before(jobs[i-1].SubmitTime) {
			t.Fatalf("jobs out of submit order at %d", i)
		}
	}
}

func TestDBDUnknownJob(t *testing.T) {
	cl, _ := testCluster(t)
	if j := cl.DBD.Job(99999); j != nil {
		t.Fatalf("unknown job = %+v, want nil", j)
	}
}

func TestDBDAssociationsSorted(t *testing.T) {
	cl, _ := testCluster(t)
	assocs := cl.DBD.Associations()
	if len(assocs) != 5 {
		t.Fatalf("assocs = %d, want 5", len(assocs))
	}
	for i := 1; i < len(assocs); i++ {
		a, b := assocs[i-1], assocs[i]
		if a.Account > b.Account || (a.Account == b.Account && a.User > b.User) {
			t.Fatalf("associations unsorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestDBDChargesBothUserAndAccount(t *testing.T) {
	cl, clock := testCluster(t)
	submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 4, MemMB: 1024},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1.0, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(61 * time.Minute)
	cl.Ctl.Tick()
	userAssoc := cl.DBD.Association(AssocKey{Account: "lab-a", User: "alice"})
	acctAssoc := cl.DBD.Association(AssocKey{Account: "lab-a"})
	// 4 CPUs x 1 hour x 1.0 utilization = 4 core-hours on both levels.
	for _, a := range []*Association{userAssoc, acctAssoc} {
		if a == nil || a.CPUTimeUsed < 3.99 || a.CPUTimeUsed > 4.01 {
			t.Fatalf("association usage = %+v, want ~4 core-hours", a)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	c.Advance(-time.Hour)
	if !c.Now().Equal(time.Unix(1000, 0)) {
		t.Fatal("negative advance moved the clock")
	}
	c.Set(time.Unix(500, 0))
	if !c.Now().Equal(time.Unix(1000, 0)) {
		t.Fatal("Set moved the clock backwards")
	}
	c.Set(time.Unix(2000, 0))
	if !c.Now().Equal(time.Unix(2000, 0)) {
		t.Fatal("Set failed to move the clock forwards")
	}
}
