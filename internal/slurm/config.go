package slurm

import (
	"fmt"
	"time"
)

// NodeSpec describes a homogeneous block of nodes in a ClusterConfig.
// Names are generated as "<NamePrefix><index>" with zero-padded indices.
type NodeSpec struct {
	NamePrefix string
	Count      int
	CPUs       int
	MemMB      int64
	GPUs       int
	GPUType    string
	Features   []string
	Partitions []string
	OS         string
	Arch       string
}

// PartitionSpec describes one partition in a ClusterConfig. Its node list is
// derived from the NodeSpecs that name it.
type PartitionSpec struct {
	Name     string
	MaxTime  time.Duration
	Default  bool
	Priority int
}

// ClusterConfig is the declarative input to NewCluster.
type ClusterConfig struct {
	Name         string
	Nodes        []NodeSpec
	Partitions   []PartitionSpec
	QOS          []QOS
	Associations []Association
	// CompletedJobRetention controls how long finished jobs stay visible to
	// squeue before only sacct can see them. Zero uses the default (5 min).
	CompletedJobRetention time.Duration
}

// Validate reports the first configuration problem, if any.
func (cfg *ClusterConfig) Validate() error {
	if cfg.Name == "" {
		return fmt.Errorf("slurm: config: missing cluster name")
	}
	if len(cfg.Nodes) == 0 {
		return fmt.Errorf("slurm: config: no node specs")
	}
	if len(cfg.Partitions) == 0 {
		return fmt.Errorf("slurm: config: no partitions")
	}
	parts := make(map[string]bool, len(cfg.Partitions))
	for _, p := range cfg.Partitions {
		if p.Name == "" {
			return fmt.Errorf("slurm: config: partition with empty name")
		}
		if parts[p.Name] {
			return fmt.Errorf("slurm: config: duplicate partition %q", p.Name)
		}
		parts[p.Name] = true
	}
	for _, ns := range cfg.Nodes {
		if ns.Count <= 0 || ns.CPUs <= 0 || ns.MemMB <= 0 {
			return fmt.Errorf("slurm: config: node spec %q needs positive count/cpus/mem", ns.NamePrefix)
		}
		if len(ns.Partitions) == 0 {
			return fmt.Errorf("slurm: config: node spec %q belongs to no partition", ns.NamePrefix)
		}
		for _, p := range ns.Partitions {
			if !parts[p] {
				return fmt.Errorf("slurm: config: node spec %q names unknown partition %q", ns.NamePrefix, p)
			}
		}
	}
	for _, a := range cfg.Associations {
		if a.Account == "" {
			return fmt.Errorf("slurm: config: association with empty account")
		}
	}
	return nil
}

// Cluster bundles the daemon pair that together simulate one Slurm cluster.
type Cluster struct {
	Name  string
	Clock Clock
	Ctl   *Controller
	DBD   *DBD
}

// NewCluster builds a cluster from the config, registering nodes,
// partitions, QOS levels, and associations. The clock may be a SimClock for
// deterministic runs or RealClock for live servers.
func NewCluster(cfg ClusterConfig, clock Clock) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = RealClock{}
	}
	dbd := NewDBD()
	ctl := newController(cfg.Name, clock, dbd, cfg.CompletedJobRetention)

	partNodes := make(map[string][]string)
	boot := clock.Now().Add(-24 * time.Hour)
	for _, ns := range cfg.Nodes {
		width := len(fmt.Sprintf("%d", ns.Count))
		if width < 3 {
			width = 3
		}
		os := ns.OS
		if os == "" {
			os = "Linux 5.14.0-rcac"
		}
		arch := ns.Arch
		if arch == "" {
			arch = "x86_64"
		}
		for i := 1; i <= ns.Count; i++ {
			name := fmt.Sprintf("%s%0*d", ns.NamePrefix, width, i)
			n := &Node{
				Name:       name,
				Partitions: append([]string(nil), ns.Partitions...),
				CPUs:       ns.CPUs,
				MemMB:      ns.MemMB,
				GPUs:       ns.GPUs,
				GPUType:    ns.GPUType,
				Features:   append([]string(nil), ns.Features...),
				OS:         os,
				Arch:       arch,
				BootTime:   boot,
				State:      NodeIdle,
				LastBusy:   boot,
			}
			ctl.addNode(n)
			for _, p := range ns.Partitions {
				partNodes[p] = append(partNodes[p], name)
			}
		}
	}
	for _, ps := range cfg.Partitions {
		ctl.addPartition(&Partition{
			Name:     ps.Name,
			Nodes:    partNodes[ps.Name],
			MaxTime:  ps.MaxTime,
			State:    "UP",
			Default:  ps.Default,
			Priority: ps.Priority,
		})
	}
	for _, q := range cfg.QOS {
		ctl.addQOS(q)
	}
	for _, a := range cfg.Associations {
		dbd.AddAssociation(a)
	}
	return &Cluster{Name: cfg.Name, Clock: clock, Ctl: ctl, DBD: dbd}, nil
}

// DefaultConfig returns a mid-size cluster resembling the paper's deployment
// targets: standard CPU partitions plus a GPU partition and a debug/standby
// tier, with a handful of accounts. Tests and examples start from this.
func DefaultConfig() ClusterConfig {
	return ClusterConfig{
		Name: "anvil",
		Nodes: []NodeSpec{
			{NamePrefix: "a", Count: 384, CPUs: 128, MemMB: 256 * 1024,
				Features: []string{"milan", "avx2"}, Partitions: []string{"cpu", "standby", "debug"}},
			{NamePrefix: "b", Count: 96, CPUs: 128, MemMB: 1024 * 1024,
				Features: []string{"milan", "bigmem"}, Partitions: []string{"highmem", "standby"}},
			{NamePrefix: "g", Count: 32, CPUs: 64, MemMB: 512 * 1024, GPUs: 4, GPUType: "a100",
				Features: []string{"milan", "a100"}, Partitions: []string{"gpu"}},
		},
		Partitions: []PartitionSpec{
			{Name: "cpu", MaxTime: 96 * time.Hour, Default: true, Priority: 100},
			{Name: "highmem", MaxTime: 48 * time.Hour, Priority: 100},
			{Name: "gpu", MaxTime: 48 * time.Hour, Priority: 100},
			{Name: "standby", MaxTime: 4 * time.Hour, Priority: 0},
			{Name: "debug", MaxTime: 30 * time.Minute, Priority: 500},
		},
		QOS: []QOS{
			{Name: "normal", Priority: 0},
			{Name: "standby", Priority: -500, Preemptable: true},
			{Name: "debug", Priority: 1000, MaxJobsPerUser: 2},
		},
	}
}
