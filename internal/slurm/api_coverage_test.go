package slurm

import (
	"testing"
	"time"
)

func TestDefaultConfigBoots(t *testing.T) {
	clock := NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.Associations = []Association{
		{Account: "demo"}, {Account: "demo", User: "ada"},
	}
	cl, err := NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Ctl.ClusterName() != "anvil" {
		t.Fatalf("name = %q", cl.Ctl.ClusterName())
	}
	parts := cl.Ctl.Partitions()
	if len(parts) != 5 {
		t.Fatalf("partitions = %d", len(parts))
	}
	// The standby tier is preemptable; debug caps jobs per user.
	if q := cl.Ctl.QOSByName("standby"); q == nil || !q.Preemptable {
		t.Fatalf("standby QOS = %+v", q)
	}
	if q := cl.Ctl.QOSByName("debug"); q == nil || q.MaxJobsPerUser != 2 {
		t.Fatalf("debug QOS = %+v", q)
	}
	if q := cl.Ctl.QOSByName("nope"); q != nil {
		t.Fatalf("unknown QOS = %+v", q)
	}
	id, err := cl.Ctl.Submit(SubmitRequest{
		Name: "boot", User: "ada", Account: "demo", Partition: "cpu", QOS: "normal",
		ReqTRES: TRES{CPUs: 8, MemMB: 4096}, TimeLimit: time.Hour,
		Profile: UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(id).State; got != StateRunning {
		t.Fatalf("state = %s", got)
	}
	if cl.DBD.JobCount() != 1 {
		t.Fatalf("dbd count = %d", cl.DBD.JobCount())
	}
}

func TestHoldDirectAPI(t *testing.T) {
	cl, _ := testCluster(t)
	id := submitOne(t, cl, SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	// Hold before the first scheduling pass keeps the job pending.
	if err := cl.Ctl.Hold(id, "alice"); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	j := cl.Ctl.Job(id)
	if j.State != StatePending || j.Reason != ReasonJobHeldUser {
		t.Fatalf("held job = %s/%s", j.State, j.Reason)
	}
	if err := cl.Ctl.Hold(99999, "root"); err == nil {
		t.Fatal("holding unknown job should fail")
	}
}

func TestLiveJobFilterFields(t *testing.T) {
	cl, _ := testCluster(t)
	a := submitOne(t, cl, SubmitRequest{
		Name: "a", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: TRES{CPUs: 1, MemMB: 512},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	submitOne(t, cl, SubmitRequest{
		Name: "b", User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: TRES{CPUs: 2, MemMB: 512, GPUs: 1},
		Profile: UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	node := cl.Ctl.Job(a).Nodes[0]

	if got := cl.Ctl.Jobs(LiveJobFilter{Account: "lab-b"}); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("account filter = %+v", got)
	}
	if got := cl.Ctl.Jobs(LiveJobFilter{Partition: "gpu"}); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("partition filter = %+v", got)
	}
	if got := cl.Ctl.Jobs(LiveJobFilter{Node: node}); len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("node filter = %+v", got)
	}
	if got := cl.Ctl.Jobs(LiveJobFilter{User: "alice", Limit: 1}); len(got) != 1 {
		t.Fatalf("limit filter = %+v", got)
	}
	if got := cl.Ctl.Jobs(LiveJobFilter{States: []JobState{StateFailed}}); len(got) != 0 {
		t.Fatalf("state filter = %+v", got)
	}
}

func TestJobWaitTimeAndMaxRSS(t *testing.T) {
	now := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	j := &Job{SubmitTime: now, ReqTRES: TRES{MemMB: 8192},
		Profile: UsageProfile{MemUtilization: 0.25}}
	// Pending: wait grows with now.
	if got := j.WaitTime(now.Add(5 * time.Minute)); got != 5*time.Minute {
		t.Fatalf("pending wait = %v", got)
	}
	if got := j.WaitTime(now.Add(-time.Minute)); got != 0 {
		t.Fatalf("pre-submit wait = %v", got)
	}
	// Started: wait freezes at start-submit.
	j.StartTime = now.Add(10 * time.Minute)
	if got := j.WaitTime(now.Add(time.Hour)); got != 10*time.Minute {
		t.Fatalf("started wait = %v", got)
	}
	if got := j.MaxRSSMB(); got != 2048 {
		t.Fatalf("MaxRSS = %d", got)
	}
}

func TestDisplayIDPlain(t *testing.T) {
	j := &Job{ID: 1234}
	if got := j.DisplayID(); got != "1234" {
		t.Fatalf("DisplayID = %q", got)
	}
}

func TestPartitionClone(t *testing.T) {
	p := &Partition{Name: "cpu", Nodes: []string{"a", "b"}}
	cp := p.Clone()
	cp.Nodes[0] = "z"
	if p.Nodes[0] != "a" {
		t.Fatal("Clone shares node slice")
	}
}

func TestUtilizationZeroDenominators(t *testing.T) {
	u := PartitionUtilization{}
	if u.CPUPercent() != 0 || u.GPUPercent() != 0 {
		t.Fatal("zero-capacity percent not 0")
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := RealClock{}.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Minute)) {
		t.Fatalf("RealClock.Now = %v", got)
	}
}

func TestStateEventKinds(t *testing.T) {
	cases := map[JobState]EventKind{
		StateCompleted:   EventCompleted,
		StateFailed:      EventFailed,
		StateTimeout:     EventTimeout,
		StateCancelled:   EventCancelled,
		StateNodeFail:    EventNodeFail,
		StateOutOfMemory: EventOOM,
		StatePreempted:   EventPreempted,
		StateRunning:     EventCompleted, // fallback
	}
	for state, want := range cases {
		if got := stateEventKind(state); got != want {
			t.Errorf("stateEventKind(%s) = %s, want %s", state, got, want)
		}
	}
}

func TestConfigValidationErrors(t *testing.T) {
	base := func() ClusterConfig {
		return ClusterConfig{
			Name: "x",
			Nodes: []NodeSpec{
				{NamePrefix: "n", Count: 1, CPUs: 1, MemMB: 1, Partitions: []string{"p"}},
			},
			Partitions: []PartitionSpec{{Name: "p"}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*ClusterConfig)
	}{
		{"no name", func(c *ClusterConfig) { c.Name = "" }},
		{"no nodes", func(c *ClusterConfig) { c.Nodes = nil }},
		{"no partitions", func(c *ClusterConfig) { c.Partitions = nil }},
		{"empty partition name", func(c *ClusterConfig) { c.Partitions[0].Name = "" }},
		{"duplicate partition", func(c *ClusterConfig) {
			c.Partitions = append(c.Partitions, PartitionSpec{Name: "p"})
		}},
		{"zero cpus", func(c *ClusterConfig) { c.Nodes[0].CPUs = 0 }},
		{"node without partition", func(c *ClusterConfig) { c.Nodes[0].Partitions = nil }},
		{"unknown partition ref", func(c *ClusterConfig) { c.Nodes[0].Partitions = []string{"zz"} }},
		{"assoc without account", func(c *ClusterConfig) {
			c.Associations = []Association{{User: "x"}}
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := newEventLog(0)
	if l.cap != 4096 {
		t.Fatalf("default cap = %d", l.cap)
	}
}
