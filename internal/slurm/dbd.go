package slurm

import (
	"sort"
	"sync"
	"time"
)

// DBD simulates slurmdbd, Slurm's accounting database daemon. The controller
// streams job events into it; sacct-style queries read from it. Keeping the
// two daemons separate matters for reproducing the paper's load argument:
// history queries (sacct) are cheap for the controller because they never
// touch it.
type DBD struct {
	mu     sync.RWMutex
	jobs   map[JobID]*Job
	order  []JobID // ascending submit time (ties broken by ID)
	assocs map[AssocKey]*Association
	stats  *DaemonStats

	// rollups holds the incremental time-bucketed aggregates maintained as
	// jobs reach a terminal state (see rollup.go). Guarded by mu.
	rollups rollupStore

	// healthGate simulates accounting-database outages; sacct-style queries
	// are gated at the command surface (slurmcli.SimRunner).
	healthGate healthGate
}

// NewDBD returns an empty accounting database.
func NewDBD() *DBD {
	return &DBD{
		jobs:    make(map[JobID]*Job),
		assocs:  make(map[AssocKey]*Association),
		stats:   NewDaemonStats("slurmdbd"),
		rollups: newRollupStore(),
	}
}

// Stats exposes the daemon's RPC counters.
func (d *DBD) Stats() *DaemonStats { return d.stats }

// AddAssociation registers an association record. Account-level records have
// an empty User. Called during cluster construction.
func (d *DBD) AddAssociation(a Association) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := a
	d.assocs[a.Key()] = &cp
}

// recordJob upserts the accounting copy of a job. Internal streaming from
// the controller: not counted as a client RPC.
func (d *DBD) recordJob(j *Job) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, exists := d.jobs[j.ID]
	if !exists {
		d.order = append(d.order, j.ID)
		// Keep order sorted; submissions arrive roughly in order so the
		// common case is an append.
		for i := len(d.order) - 1; i > 0; i-- {
			a, b := d.jobs[d.order[i-1]], j
			if a == nil || !a.SubmitTime.After(b.SubmitTime) {
				break
			}
			d.order[i-1], d.order[i] = d.order[i], d.order[i-1]
		}
	}
	// A job folds into the rollups exactly once: on its transition into a
	// terminal state. Requeued jobs re-enter as non-terminal and fold again
	// when they finish for real.
	if (old == nil || !old.State.Terminal()) && j.State.Terminal() && !j.EndTime.IsZero() {
		d.rollups.ingest(j)
	}
	d.jobs[j.ID] = j.Clone()
}

// chargeUsage accumulates finished-job usage onto the user and account
// associations. Internal streaming from the controller.
func (d *DBD) chargeUsage(j *Job, now time.Time) {
	cpuHours := j.CPUTimeUsed(now).Hours()
	gpuHours := j.GPUHoursUsed(now)
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, key := range []AssocKey{
		{Account: j.Account, User: j.User},
		{Account: j.Account},
	} {
		a := d.assocs[key]
		if a == nil {
			a = &Association{Account: key.Account, User: key.User}
			d.assocs[key] = a
		}
		a.CPUTimeUsed += cpuHours
		a.GPUHoursUsed += gpuHours
	}
}

// Association returns a copy of the association for the key, or nil.
func (d *DBD) Association(key AssocKey) *Association {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if a := d.assocs[key]; a != nil {
		return a.Clone()
	}
	return nil
}

// Associations returns copies of all associations, account-level first,
// sorted by (account, user). Counted as a DBD usage RPC.
func (d *DBD) Associations() []*Association {
	d.stats.Record(RPCUsageRollup)
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Association, 0, len(d.assocs))
	for _, a := range d.assocs {
		out = append(out, a.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Account != out[j].Account {
			return out[i].Account < out[j].Account
		}
		return out[i].User < out[j].User
	})
	return out
}

// JobFilter selects accounting records, mirroring sacct's main options.
// Zero-valued fields match everything.
type JobFilter struct {
	Users    []string
	Accounts []string
	States   []JobState
	// Start/End select jobs whose [SubmitTime, EndTime-or-now] interval
	// overlaps [Start, End], following sacct -S/-E semantics.
	Start     time.Time
	End       time.Time
	Partition string
	JobIDs    []JobID
	// ArrayJobID selects all tasks of one job array.
	ArrayJobID JobID
	// Limit caps the number of returned records (most recent first when set).
	Limit int
}

func (f *JobFilter) matches(j *Job, now time.Time) bool {
	if len(f.Users) > 0 && !containsString(f.Users, j.User) {
		return false
	}
	if len(f.Accounts) > 0 && !containsString(f.Accounts, j.Account) {
		return false
	}
	if f.Partition != "" && j.Partition != f.Partition {
		return false
	}
	if len(f.States) > 0 {
		ok := false
		for _, s := range f.States {
			if j.State == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.JobIDs) > 0 {
		ok := false
		for _, id := range f.JobIDs {
			if j.ID == id {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.ArrayJobID != 0 && j.ArrayJobID != f.ArrayJobID {
		return false
	}
	if !f.Start.IsZero() || !f.End.IsZero() {
		jobEnd := j.EndTime
		if jobEnd.IsZero() {
			jobEnd = now
		}
		if !f.End.IsZero() && j.SubmitTime.After(f.End) {
			return false
		}
		if !f.Start.IsZero() && jobEnd.Before(f.Start) {
			return false
		}
	}
	return true
}

func containsString(haystack []string, needle string) bool {
	for _, s := range haystack {
		if s == needle {
			return true
		}
	}
	return false
}

// Jobs returns accounting records matching the filter, ordered by submit
// time ascending (or most-recent-first truncated to Limit when Limit > 0).
// Counted as a DBD_GET_JOBS RPC — the sacct path.
func (d *DBD) Jobs(f JobFilter, now time.Time) []*Job {
	d.stats.Record(RPCSacct)
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []*Job
	if f.Limit > 0 {
		// Scan newest-first so we can stop early.
		for i := len(d.order) - 1; i >= 0 && len(out) < f.Limit; i-- {
			j := d.jobs[d.order[i]]
			if f.matches(j, now) {
				out = append(out, j.Clone())
			}
		}
		return out
	}
	for _, id := range d.order {
		j := d.jobs[id]
		if f.matches(j, now) {
			out = append(out, j.Clone())
		}
	}
	return out
}

// Job returns the accounting record for one job, or nil when unknown.
// Counted as a DBD_GET_JOBS RPC.
func (d *DBD) Job(id JobID) *Job {
	d.stats.Record(RPCSacct)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if j := d.jobs[id]; j != nil {
		return j.Clone()
	}
	return nil
}

// JobCount returns the number of stored accounting records.
func (d *DBD) JobCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.jobs)
}
