package workload

import (
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

func buildSmall(t *testing.T) *Env {
	t.Helper()
	env, err := Build(SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBuildSmallEnv(t *testing.T) {
	env := buildSmall(t)
	spec := env.Spec

	if got := len(env.UserNames); got != spec.Users {
		t.Fatalf("users = %d, want %d", got, spec.Users)
	}
	if got := len(env.GroupNames); got != spec.Groups {
		t.Fatalf("groups = %d, want %d", got, spec.Groups)
	}
	// Roughly HistoryDays*JobsPerDay records (arrays add tasks, partition
	// rejections subtract a few).
	want := spec.HistoryDays * spec.JobsPerDay
	got := env.Cluster.DBD.JobCount()
	if got < want/2 || got > want*3 {
		t.Fatalf("job records = %d, want around %d", got, want)
	}
}

func TestTraceHasRealisticStateMix(t *testing.T) {
	env := buildSmall(t)
	now := env.Clock.Now()
	jobs := env.Cluster.DBD.Jobs(slurm.JobFilter{}, now)
	counts := make(map[slurm.JobState]int)
	interactive := 0
	gpuJobs := 0
	arrays := 0
	for _, j := range jobs {
		counts[j.State]++
		if j.InteractiveApp != "" {
			interactive++
		}
		if j.ReqTRES.GPUs > 0 {
			gpuJobs++
		}
		if j.IsArrayTask() {
			arrays++
		}
	}
	if counts[slurm.StateCompleted] == 0 {
		t.Fatal("no completed jobs in trace")
	}
	if counts[slurm.StateFailed] == 0 {
		t.Fatal("no failed jobs in trace")
	}
	if counts[slurm.StateTimeout] == 0 {
		t.Fatal("no timeout jobs in trace")
	}
	if interactive == 0 || gpuJobs == 0 || arrays == 0 {
		t.Fatalf("mix: interactive=%d gpu=%d arrays=%d", interactive, gpuJobs, arrays)
	}
	// Failure fraction within loose bounds of the spec.
	frac := float64(counts[slurm.StateFailed]) / float64(len(jobs))
	if frac < 0.02 || frac > 0.2 {
		t.Fatalf("failure fraction = %v", frac)
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	ja := a.Cluster.DBD.Jobs(slurm.JobFilter{Limit: 50}, a.Clock.Now())
	jb := b.Cluster.DBD.Jobs(slurm.JobFilter{Limit: 50}, b.Clock.Now())
	if len(ja) != len(jb) {
		t.Fatalf("lengths differ: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		if ja[i].ID != jb[i].ID || ja[i].Name != jb[i].Name || ja[i].User != jb[i].User ||
			ja[i].State != jb[i].State || !ja[i].SubmitTime.Equal(jb[i].SubmitTime) {
			t.Fatalf("job %d differs:\n%+v\n%+v", i, ja[i], jb[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	spec := SmallSpec()
	spec.Seed = 7
	a, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b := buildSmall(t) // seed 42
	ja := a.Cluster.DBD.Jobs(slurm.JobFilter{Limit: 20}, a.Clock.Now())
	jb := b.Cluster.DBD.Jobs(slurm.JobFilter{Limit: 20}, b.Clock.Now())
	same := true
	for i := 0; i < len(ja) && i < len(jb); i++ {
		if ja[i].Name != jb[i].Name || ja[i].User != jb[i].User {
			same = false
			break
		}
	}
	if same && len(ja) == len(jb) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAnnouncementsSeeded(t *testing.T) {
	env := buildSmall(t)
	arts := env.Feed.Recent(0)
	if len(arts) != env.Spec.Announcements {
		t.Fatalf("announcements = %d, want %d", len(arts), env.Spec.Announcements)
	}
}

func TestStorageProvisioned(t *testing.T) {
	env := buildSmall(t)
	u := env.UserNames[0]
	user, _ := env.Users.Lookup(u)
	dirs := env.Storage.DirectoriesFor(u, user.Accounts)
	if len(dirs) < 3 {
		t.Fatalf("dirs for %s = %d, want >= 3", u, len(dirs))
	}
}

func TestLogsWritten(t *testing.T) {
	env := buildSmall(t)
	jobs := env.Cluster.DBD.Jobs(slurm.JobFilter{}, env.Clock.Now())
	found := false
	for _, j := range jobs {
		if env.Logs.Exists(j.StdoutPath) {
			found = true
			lines, total, err := env.Logs.ReadTail(j.StdoutPath, 10)
			if err != nil || total == 0 || len(lines) == 0 {
				t.Fatalf("log read: %v %d", err, total)
			}
			break
		}
	}
	if !found {
		t.Fatal("no job logs were written")
	}
}

func TestQueueWaitsExist(t *testing.T) {
	// With 3.5k jobs/day replayed on a small 22-node cluster, some jobs
	// must have waited in the queue — the trace exercises contention.
	env := buildSmall(t)
	jobs := env.Cluster.DBD.Jobs(slurm.JobFilter{}, env.Clock.Now())
	waited := 0
	for _, j := range jobs {
		if !j.StartTime.IsZero() && j.StartTime.Sub(j.SubmitTime) > time.Minute {
			waited++
		}
	}
	if waited == 0 {
		t.Fatal("no job ever waited; trace has no contention")
	}
}

func TestRunnerServesTrace(t *testing.T) {
	env := buildSmall(t)
	rows, err := slurmcli.Sacct(env.Runner, slurmcli.SacctOptions{
		User: env.UserNames[0], Limit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("first user has no accounting rows")
	}
	parts, err := slurmcli.Sinfo(env.Runner)
	if err != nil || len(parts) != 4 {
		t.Fatalf("sinfo = %d partitions, err %v", len(parts), err)
	}
}
