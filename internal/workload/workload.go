// Package workload generates deterministic synthetic clusters, users, job
// traces, announcements, and storage usage for the experiments. The paper
// evaluates against Purdue's production clusters and real user activity;
// this generator is the substitute (see DESIGN.md): parameterized job mixes
// with realistic shapes — efficient batch work, wasteful interactive
// sessions, GPU training jobs, job arrays, failures and timeouts — replayed
// through the simulated Slurm scheduler over simulated time.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
	"ooddash/internal/newsfeed"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
	"ooddash/internal/storagedb"
)

// Spec parameterizes a generated environment.
type Spec struct {
	Seed int64
	// Cluster shape.
	CPUNodes     int // 128-core CPU nodes
	HighmemNodes int
	GPUNodes     int // 64-core, 4-GPU nodes
	// Population.
	Users  int
	Groups int
	// Trace shape.
	HistoryDays     int     // how many days of history to replay
	JobsPerDay      int     // mean submissions per simulated day
	InteractiveFrac float64 // fraction of jobs that are OOD interactive apps
	GPUFrac         float64 // fraction of jobs requesting GPUs
	ArrayFrac       float64 // fraction of submissions that are job arrays
	FailureFrac     float64 // fraction of jobs that fail
	TimeoutFrac     float64 // fraction of jobs that hit their time limit
	// Announcements.
	Announcements int
	// LogLinesPerJob writes synthetic stdout for every Nth job when > 0.
	LogLinesPerJob int
}

// DefaultSpec is the mid-size environment most experiments use: a 512-node
// cluster, 40 users in 8 groups, one week of history at ~3.5k jobs/day
// (≈25k records).
func DefaultSpec() Spec {
	return Spec{
		Seed:            42,
		CPUNodes:        384,
		HighmemNodes:    96,
		GPUNodes:        32,
		Users:           40,
		Groups:          8,
		HistoryDays:     7,
		JobsPerDay:      3500,
		InteractiveFrac: 0.25,
		GPUFrac:         0.08,
		ArrayFrac:       0.05,
		FailureFrac:     0.08,
		TimeoutFrac:     0.03,
		Announcements:   12,
		LogLinesPerJob:  40,
	}
}

// SmallSpec is a fast environment for tests: a handful of nodes, a few
// hundred jobs.
func SmallSpec() Spec {
	s := DefaultSpec()
	s.CPUNodes, s.HighmemNodes, s.GPUNodes = 16, 4, 2
	s.Users, s.Groups = 12, 3
	s.HistoryDays, s.JobsPerDay = 2, 200
	s.Announcements = 6
	return s
}

// Env is a fully provisioned environment: the simulated cluster plus every
// helper service the dashboard needs, sharing one simulated clock.
type Env struct {
	Spec    Spec
	Clock   *slurm.SimClock
	Cluster *slurm.Cluster
	Runner  slurmcli.Runner
	Users   *auth.Directory
	Storage *storagedb.Database
	Feed    *newsfeed.Feed
	Logs    *core.MemLogStore
	// UserNames and GroupNames list the generated population in order.
	UserNames  []string
	GroupNames []string

	// REST is the in-process slurmrestd-style daemon, set by ProvisionREST
	// (or lazily by NewServerConfig when the config selects the REST
	// backend). RESTTokens holds the bearer tokens it issued.
	REST       *slurmrest.Server
	RESTTokens RESTTokens
}

// RESTTokens are the bearer tokens ProvisionREST issues.
type RESTTokens struct {
	// Dashboard is the staff-scope token the dashboard's REST client uses
	// (per-user visibility stays enforced by the dashboard's own ACLs).
	Dashboard string
	// Service is a read-only infrastructure token (nodes/partitions/diag).
	Service string
	// ByUser maps each generated username to a user-scope token.
	ByUser map[string]string
}

// Build constructs and replays the environment. The result is
// deterministic for a given Spec.
func Build(spec Spec) (*Env, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	start := time.Date(2026, 6, 24, 0, 0, 0, 0, time.UTC)
	clock := slurm.NewSimClock(start)

	groups := make([]string, spec.Groups)
	for i := range groups {
		groups[i] = fmt.Sprintf("grp%02d", i+1)
	}
	users := make([]string, spec.Users)
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i+1)
	}
	userGroup := make(map[string][]string, spec.Users)

	assocs := make([]slurm.Association, 0, spec.Groups+spec.Users)
	for i, g := range groups {
		limit := 2048 * (1 + i%4) // varied group CPU limits
		assocs = append(assocs, slurm.Association{Account: g, GrpCPULimit: limit})
	}
	for i, u := range users {
		primary := groups[i%len(groups)]
		userGroup[u] = []string{primary}
		assocs = append(assocs, slurm.Association{Account: primary, User: u})
		// A quarter of users belong to a second group.
		if rng.Float64() < 0.25 {
			secondary := groups[rng.Intn(len(groups))]
			if secondary != primary {
				userGroup[u] = append(userGroup[u], secondary)
				assocs = append(assocs, slurm.Association{Account: secondary, User: u})
			}
		}
	}

	cfg := slurm.ClusterConfig{
		Name: "anvil-sim",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "a", Count: spec.CPUNodes, CPUs: 128, MemMB: 256 * 1024,
				Features: []string{"milan", "avx2"}, Partitions: []string{"cpu", "debug"}},
			{NamePrefix: "b", Count: spec.HighmemNodes, CPUs: 128, MemMB: 1024 * 1024,
				Features: []string{"milan", "bigmem"}, Partitions: []string{"highmem"}},
			{NamePrefix: "g", Count: spec.GPUNodes, CPUs: 64, MemMB: 512 * 1024, GPUs: 4,
				GPUType: "a100", Features: []string{"milan", "a100"}, Partitions: []string{"gpu"}},
		},
		Partitions: []slurm.PartitionSpec{
			{Name: "cpu", MaxTime: 96 * time.Hour, Default: true, Priority: 100},
			{Name: "highmem", MaxTime: 48 * time.Hour, Priority: 100},
			{Name: "gpu", MaxTime: 48 * time.Hour, Priority: 100},
			{Name: "debug", MaxTime: 30 * time.Minute, Priority: 500},
		},
		QOS: []slurm.QOS{
			{Name: "normal"},
			{Name: "debug", Priority: 1000, MaxJobsPerUser: 2},
		},
		Associations: assocs,
	}
	cluster, err := slurm.NewCluster(cfg, clock)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	env := &Env{
		Spec:       spec,
		Clock:      clock,
		Cluster:    cluster,
		Runner:     slurmcli.NewSimRunner(cluster),
		Users:      auth.NewDirectory(),
		Storage:    storagedb.New(),
		Feed:       newsfeed.New(clock),
		Logs:       core.NewMemLogStore(),
		UserNames:  users,
		GroupNames: groups,
	}
	for _, u := range users {
		env.Users.AddUser(auth.User{Name: u, Accounts: userGroup[u]})
		env.Storage.ProvisionUser(u)
		env.Storage.SetUsage("/home/"+u, int64(rng.Float64()*25)<<30, int64(rng.Intn(400_000)))
		env.Storage.SetUsage("/scratch/"+u, int64(rng.Float64()*1000)<<30, int64(rng.Intn(1_500_000)))
	}
	for _, g := range groups {
		env.Storage.ProvisionGroup(g, int64(1+rng.Intn(20))<<40)
		env.Storage.SetUsage("/depot/"+g, int64(rng.Float64()*15)<<40, int64(rng.Intn(8_000_000)))
	}

	env.publishAnnouncements(rng)
	env.replayTrace(rng, userGroup)
	return env, nil
}

// publishAnnouncements seeds the news feed with a mix of categories spread
// over the history window, including an active maintenance window.
func (e *Env) publishAnnouncements(rng *rand.Rand) {
	cats := []newsfeed.Category{
		newsfeed.CategoryNews, newsfeed.CategoryNews, newsfeed.CategoryFeature,
		newsfeed.CategoryMaintenance, newsfeed.CategoryOutage,
	}
	base := e.Clock.Now()
	// Spread announcements over the history window, leaving the final two
	// days clear so maintenance reservations end (and their queue backlog
	// drains) inside the replay.
	spreadDays := e.Spec.HistoryDays - 2
	if spreadDays < 1 {
		spreadDays = 1
	}
	step := time.Duration(spreadDays) * 24 * time.Hour / time.Duration(e.Spec.Announcements+1)
	for i := 0; i < e.Spec.Announcements; i++ {
		cat := cats[rng.Intn(len(cats))]
		a := newsfeed.Article{
			Title:    fmt.Sprintf("%s notice %d", cat, i+1),
			Body:     "Synthetic announcement body for experiment reproduction.",
			Category: cat,
			PostedAt: base.Add(time.Duration(i+1) * step),
		}
		if cat == newsfeed.CategoryOutage || cat == newsfeed.CategoryMaintenance {
			a.StartsAt = a.PostedAt.Add(24 * time.Hour)
			a.EndsAt = a.StartsAt.Add(time.Duration(4+rng.Intn(8)) * time.Hour)
		}
		// Maintenance announcements are backed by an actual scheduler
		// reservation, so the System Status widget and the scheduler agree
		// with what the Announcements widget tells users. Most windows are
		// rack-scale (a slice of nodes); roughly one in four is the big
		// full-cluster outage.
		if cat == newsfeed.CategoryMaintenance {
			var nodes []string
			if rng.Intn(4) != 0 {
				all := e.Cluster.Ctl.Nodes()
				span := len(all)/20 + 1
				start := rng.Intn(len(all))
				for k := 0; k < span; k++ {
					nodes = append(nodes, all[(start+k)%len(all)].Name)
				}
			}
			name := fmt.Sprintf("pm-%02d", i+1)
			if _, err := e.Cluster.Ctl.ScheduleMaintenance(name, a.StartsAt, a.EndsAt, nodes, a.Title); err != nil {
				panic(err) // times are constructed valid; a failure is a bug
			}
		}
		e.Feed.Publish(a)
	}
}

// jobKind classifies one synthetic submission.
type jobKind int

const (
	kindBatch jobKind = iota
	kindInteractive
	kindGPU
	kindArray
)

// nextJob draws one submission for the given user.
func (e *Env) nextJob(rng *rand.Rand, user string, accounts []string) slurm.SubmitRequest {
	account := accounts[rng.Intn(len(accounts))]
	kind := kindBatch
	switch f := rng.Float64(); {
	case f < e.Spec.ArrayFrac:
		kind = kindArray
	case f < e.Spec.ArrayFrac+e.Spec.GPUFrac:
		kind = kindGPU
	case f < e.Spec.ArrayFrac+e.Spec.GPUFrac+e.Spec.InteractiveFrac:
		kind = kindInteractive
	}

	profile := slurm.UsageProfile{ExitCode: 0}
	timesOut := false
	switch f := rng.Float64(); {
	case f < e.Spec.FailureFrac:
		profile.FailureState = slurm.StateFailed
		profile.ExitCode = 1 + rng.Intn(125)
	case f < e.Spec.FailureFrac+e.Spec.TimeoutFrac:
		timesOut = true // runs to the limit -> TIMEOUT
	}

	req := slurm.SubmitRequest{
		User:    user,
		Account: account,
		QOS:     "normal",
		WorkDir: "/home/" + user + "/work",
	}
	switch kind {
	case kindInteractive:
		apps := []string{"jupyter", "rstudio", "codeserver", "matlab"}
		app := apps[rng.Intn(len(apps))]
		req.Name = "sys/dashboard/" + app
		req.InteractiveApp = app
		req.SessionID = fmt.Sprintf("%08x", rng.Uint32())
		req.Partition = "cpu"
		req.ReqTRES = slurm.TRES{CPUs: 4 << rng.Intn(3), MemMB: int64(8<<rng.Intn(4)) * 1024}
		req.TimeLimit = time.Duration(4+rng.Intn(8)) * time.Hour
		// Interactive sessions are the canonical low-efficiency workload.
		profile.CPUUtilization = 0.02 + 0.18*rng.Float64()
		profile.MemUtilization = 0.05 + 0.20*rng.Float64()
		if !timesOut && profile.FailureState == "" {
			profile.ActualDuration = time.Duration(10+rng.Intn(110)) * time.Minute
		}
	case kindGPU:
		req.Name = fmt.Sprintf("train-%04d", rng.Intn(10000))
		req.Partition = "gpu"
		gpus := 1 + rng.Intn(4)
		req.ReqTRES = slurm.TRES{CPUs: 8 * gpus, MemMB: int64(64*gpus) * 1024, GPUs: gpus}
		req.TimeLimit = time.Duration(1+rng.Intn(8)) * time.Hour
		profile.CPUUtilization = 0.3 + 0.5*rng.Float64()
		profile.MemUtilization = 0.3 + 0.5*rng.Float64()
		profile.GPUUtilization = 0.5 + 0.5*rng.Float64()
	default: // batch and array
		req.Name = fmt.Sprintf("batch-%04d", rng.Intn(10000))
		req.Partition = "cpu"
		if rng.Float64() < 0.1 {
			req.Partition = "highmem"
		}
		// A slice of batch jobs pin node features (sbatch --constraint).
		if rng.Float64() < 0.15 {
			req.Constraint = []string{"milan", "avx2", "milan,avx2"}[rng.Intn(3)]
		}
		req.ReqTRES = slurm.TRES{CPUs: 1 << rng.Intn(7), MemMB: int64(4<<rng.Intn(6)) * 1024}
		req.TimeLimit = time.Duration(1+rng.Intn(23)) * time.Hour
		profile.CPUUtilization = 0.5 + 0.45*rng.Float64()
		profile.MemUtilization = 0.3 + 0.6*rng.Float64()
		if kind == kindArray {
			req.ArraySize = 4 << rng.Intn(3) // 4..16 tasks
			req.Name = fmt.Sprintf("sweep-%04d", rng.Intn(10000))
		}
	}
	switch {
	case timesOut:
		// Cap the limit so the timeout lands inside the replay window,
		// and let the profile run past it.
		req.TimeLimit = time.Duration(1+rng.Intn(4)) * time.Hour
		profile.ActualDuration = 0
	case profile.FailureState != "":
		profile.ActualDuration = time.Duration(1+rng.Intn(30)) * time.Minute
	case profile.ActualDuration == 0:
		// Most jobs finish well inside their limit.
		frac := 0.1 + 0.7*rng.Float64()
		profile.ActualDuration = time.Duration(float64(req.TimeLimit) * frac)
	}
	req.Profile = profile
	req.StdoutPath = fmt.Sprintf("/home/%s/work/slurm-%s.out", user, req.Name)
	req.StderrPath = fmt.Sprintf("/home/%s/work/slurm-%s.err", user, req.Name)
	return req
}

// replayTrace drives the simulated clock through HistoryDays, submitting
// jobs in five-minute steps and ticking the scheduler so the accounting
// history fills with realistic start/end times and queue waits.
func (e *Env) replayTrace(rng *rand.Rand, userGroup map[string][]string) {
	const step = 5 * time.Minute
	stepsPerDay := int(24 * time.Hour / step)
	perStep := float64(e.Spec.JobsPerDay) / float64(stepsPerDay)

	totalSteps := e.Spec.HistoryDays * stepsPerDay
	logged := 0
	for i := 0; i < totalSteps; i++ {
		// Diurnal load: submissions peak mid-afternoon and bottom out
		// overnight (0.4x .. 1.6x of the mean), like real campus clusters.
		hourOfDay := float64(i%stepsPerDay) / float64(stepsPerDay) * 24
		diurnal := 1 + 0.6*math.Sin((hourOfDay-9)/24*2*math.Pi)
		rate := perStep * diurnal
		// Poisson-ish: floor(rate) + bernoulli(frac).
		n := int(rate)
		if rng.Float64() < rate-float64(n) {
			n++
		}
		for j := 0; j < n; j++ {
			user := e.UserNames[rng.Intn(len(e.UserNames))]
			req := e.nextJob(rng, user, userGroup[user])
			if _, err := e.Cluster.Ctl.Submit(req); err != nil {
				continue // queue-shape errors (e.g. partition limits) are fine
			}
			if e.Spec.LogLinesPerJob > 0 && logged%7 == 0 {
				e.writeLog(req.StdoutPath, e.Spec.LogLinesPerJob)
				e.writeLog(req.StderrPath, 2)
			}
			logged++
		}
		e.Clock.Advance(step)
		e.Cluster.Ctl.Tick()
	}
}

// writeLog fills a synthetic job log.
func (e *Env) writeLog(path string, lines int) {
	for i := 1; i <= lines; i++ {
		e.Logs.Append(path, fmt.Sprintf("[%s] step %d: ok", e.Clock.Now().Format(time.RFC3339), i))
	}
}

// SubmitRandom submits n randomly drawn jobs from random users and ticks
// the scheduler; it returns how many submissions were accepted. Live
// servers and load benchmarks use it to keep the queue moving after the
// initial replay.
func (e *Env) SubmitRandom(rng *rand.Rand, n int) int {
	accepted := 0
	for i := 0; i < n; i++ {
		name := e.UserNames[rng.Intn(len(e.UserNames))]
		u, ok := e.Users.Lookup(name)
		if !ok || len(u.Accounts) == 0 {
			continue
		}
		req := e.nextJob(rng, name, u.Accounts)
		if _, err := e.Cluster.Ctl.Submit(req); err == nil {
			accepted++
		}
	}
	e.Cluster.Ctl.Tick()
	return accepted
}

// NewServer builds a dashboard server over the environment with the
// paper's default cache TTLs. newsBaseURL points at an HTTP server wrapping
// env.Feed (tests use httptest).
func (e *Env) NewServer(newsBaseURL string) (*core.Server, error) {
	return e.NewServerPush(newsBaseURL, core.PushConfig{})
}

// NewServerPush is NewServer with an explicit push-subsystem configuration
// (cmd/dashboard threads its -push-* flags through here).
func (e *Env) NewServerPush(newsBaseURL string, pushCfg core.PushConfig) (*core.Server, error) {
	return e.NewServerTraced(newsBaseURL, pushCfg, core.TraceConfig{})
}

// NewServerTraced is NewServerPush with an explicit span-tracing
// configuration (cmd/dashboard threads its -trace-* flags through here).
func (e *Env) NewServerTraced(newsBaseURL string, pushCfg core.PushConfig, traceCfg core.TraceConfig) (*core.Server, error) {
	return e.NewServerConfig(newsBaseURL, core.Config{Push: pushCfg, Trace: traceCfg})
}

// NewServerConfig builds a dashboard server over the environment with full
// control of the core configuration (the chaos harness tunes resilience
// knobs like the fill-admission cap). An empty ClusterName takes the
// environment's; the environment's services and shared clock always win.
func (e *Env) NewServerConfig(newsBaseURL string, cfg core.Config) (*core.Server, error) {
	return e.NewServerRunner(newsBaseURL, cfg, e.Runner)
}

// NewServerRunner is NewServerConfig with an explicit Slurm runner. The
// fleet tier uses it to give each replica its own (counted) runner over the
// shared simulated cluster while every other dependency — clock, users,
// storage, news, logs — stays shared, exactly like N dashboard processes in
// front of one Slurm.
func (e *Env) NewServerRunner(newsBaseURL string, cfg core.Config, runner slurmcli.Runner) (*core.Server, error) {
	if cfg.ClusterName == "" {
		cfg.ClusterName = e.Cluster.Name
	}
	deps := core.Deps{
		Runner:      runner,
		News:        &newsfeed.Client{BaseURL: newsBaseURL},
		Storage:     e.Storage,
		Users:       e.Users,
		Logs:        e.Logs,
		Clock:       e.Clock,
		Events:      e.Cluster.Ctl,
		RollupStats: e.Cluster.DBD.RollupStats,
	}
	if cfg.Backend.Slurmctld == core.BackendREST || cfg.Backend.Slurmdbd == core.BackendREST {
		if e.REST == nil {
			if err := e.ProvisionREST(slurmrest.Options{}); err != nil {
				return nil, err
			}
		}
		deps.REST = slurmrest.NewClient(e.REST, e.RESTTokens.Dashboard)
		deps.RESTServer = e.REST
	}
	return core.NewServer(cfg, deps)
}

// SynthesizeHistory bulk-loads count synthetic terminal jobs into the
// accounting daemon's job store and rollup pipeline, spread over the two
// years before the current sim time. It stands in for a long-lived
// cluster's accounting depth: the loadgen rollup bench uses it to scale
// history 100x/1000x past the replayed trace without paying scheduler
// replay time. Deterministic for a given spec and call sequence; returns
// the number of records loaded. IDs start far above the scheduler's range
// so repeated calls with growing counts only add the new tail.
func (e *Env) SynthesizeHistory(offset, count int) int {
	rng := rand.New(rand.NewSource(e.Spec.Seed ^ int64(offset)<<20 ^ 0x4011))
	now := e.Clock.Now()
	const idBase = slurm.JobID(1 << 30)
	partitions := []string{"cpu", "cpu", "cpu", "highmem", "gpu"}
	const spanSec = int64(2 * 366 * 86400)
	jobs := make([]*slurm.Job, 0, count)
	for i := 0; i < count; i++ {
		part := partitions[rng.Intn(len(partitions))]
		end := now.Add(-time.Duration(1+rng.Int63n(spanSec)) * time.Second)
		dur := time.Duration(5+rng.Intn(235)) * time.Minute
		wait := time.Duration(rng.Intn(3600)) * time.Second
		state, exit := slurm.StateCompleted, 0
		switch f := rng.Float64(); {
		case f < 0.08:
			state, exit = slurm.StateFailed, 1+rng.Intn(125)
		case f < 0.11:
			state = slurm.StateTimeout
		}
		cpus := 2 << rng.Intn(4)
		gpus := 0
		if part == "gpu" {
			gpus = 1 + rng.Intn(4)
		}
		tres := slurm.TRES{CPUs: cpus, GPUs: gpus, MemMB: int64(4<<rng.Intn(4)) * 1024, Nodes: 1}
		j := &slurm.Job{
			ID:         idBase + slurm.JobID(offset+i),
			Name:       fmt.Sprintf("hist-%08d", offset+i),
			User:       e.UserNames[rng.Intn(len(e.UserNames))],
			Account:    e.GroupNames[rng.Intn(len(e.GroupNames))],
			Partition:  part,
			QOS:        "normal",
			WorkDir:    "/home/hist",
			State:      state,
			SubmitTime: end.Add(-dur - wait),
			StartTime:  end.Add(-dur),
			EndTime:    end,
			TimeLimit:  dur + time.Duration(30+rng.Intn(90))*time.Minute,
			ReqTRES:    tres,
			AllocTRES:  tres,
			ExitCode:   exit,
		}
		j.Profile.CPUUtilization = 0.2 + 0.7*rng.Float64()
		j.Profile.MemUtilization = 0.1 + 0.8*rng.Float64()
		if gpus > 0 {
			j.Profile.GPUUtilization = 0.3 + 0.6*rng.Float64()
		}
		jobs = append(jobs, j)
	}
	added := e.Cluster.DBD.Backfill(jobs)
	e.Cluster.DBD.AdvanceRollups(now)
	return added
}

// ProvisionREST starts the in-process slurmrestd-style daemon over the
// cluster and issues its tokens: a staff-scope token for the dashboard's
// client, a read-only service token, and one user-scope token per
// generated user (loadgen's scope probes authenticate with these).
func (e *Env) ProvisionREST(opts slurmrest.Options) error {
	ts := slurmrest.NewTokenStore(e.Users)
	tokens := RESTTokens{
		Dashboard: "wl-dashboard-token",
		Service:   "wl-service-token",
		ByUser:    make(map[string]string, len(e.UserNames)),
	}
	if err := ts.IssueStaff(tokens.Dashboard, "ood-dashboard"); err != nil {
		return err
	}
	if err := ts.IssueService(tokens.Service, "monitoring"); err != nil {
		return err
	}
	for _, u := range e.UserNames {
		tok := "wl-user-" + u
		if err := ts.IssueUser(tok, u); err != nil {
			return err
		}
		tokens.ByUser[u] = tok
	}
	e.REST = slurmrest.NewServer(e.Cluster, ts, opts)
	e.RESTTokens = tokens
	return nil
}
