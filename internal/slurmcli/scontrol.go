package slurmcli

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/slurm"
)

// runScontrol emulates `scontrol show <entity> [name]` plus the hold/release
// subcommands. Entities: node, job, partition, assoc.
func runScontrol(cl *slurm.Cluster, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("slurmcli: scontrol: missing subcommand")
	}
	switch args[0] {
	case "show":
		if len(args) < 2 {
			return "", fmt.Errorf("slurmcli: scontrol show: missing entity")
		}
		entity := args[1]
		rest := args[2:]
		switch entity {
		case "node", "nodes":
			return scontrolShowNode(cl, rest)
		case "job", "jobs":
			return scontrolShowJob(cl, rest)
		case "partition", "partitions":
			return scontrolShowPartition(cl, rest)
		case "assoc", "assoc_mgr":
			return scontrolShowAssoc(cl, rest)
		case "reservation", "res":
			return scontrolShowReservation(cl)
		default:
			return "", fmt.Errorf("slurmcli: scontrol show: unknown entity %q", entity)
		}
	case "hold", "release", "suspend", "resume":
		if len(args) < 2 {
			return "", fmt.Errorf("slurmcli: scontrol %s: missing job id", args[0])
		}
		id, user, err := jobIDAndUser(args[1:])
		if err != nil {
			return "", err
		}
		switch args[0] {
		case "hold":
			err = cl.Ctl.Hold(id, user)
		case "release":
			err = cl.Ctl.Release(id, user)
		case "suspend":
			err = cl.Ctl.Suspend(id, user)
		case "resume":
			err = cl.Ctl.Resume(id, user)
		}
		return "", err
	default:
		return "", fmt.Errorf("slurmcli: scontrol: unknown subcommand %q", args[0])
	}
}

// jobIDAndUser parses "<jobid> [user=<name>]". The user= extension stands in
// for the invoking UID a real scontrol would have.
func jobIDAndUser(args []string) (slurm.JobID, string, error) {
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("slurmcli: bad job id %q", args[0])
	}
	user := "root"
	for _, a := range args[1:] {
		if v, ok := strings.CutPrefix(a, "user="); ok {
			user = v
		}
	}
	return slurm.JobID(n), user, nil
}

func scontrolShowNode(cl *slurm.Cluster, args []string) (string, error) {
	var nodes []*slurm.Node
	if len(args) > 0 && args[0] != "" {
		names, err := slurm.ExpandNodeRange(args[0])
		if err != nil {
			return "", err
		}
		for _, name := range names {
			n := cl.Ctl.Node(name)
			if n == nil {
				return "", fmt.Errorf("slurmcli: Node %s not found", name)
			}
			nodes = append(nodes, n)
		}
	} else {
		nodes = cl.Ctl.Nodes()
	}
	now := cl.Ctl.Now()
	blocks := make([]string, 0, len(nodes))
	for _, n := range nodes {
		blocks = append(blocks, formatNodeBlock(n, now))
	}
	return strings.Join(blocks, "\n") + "\n", nil
}

// formatNodeBlock renders one node the way `scontrol show node` does:
// key=value pairs wrapped onto indented continuation lines.
func formatNodeBlock(n *slurm.Node, now time.Time) string {
	state := string(n.EffectiveState())
	gres := "(null)"
	if n.GPUs > 0 {
		gres = fmt.Sprintf("gpu:%s:%d", n.GPUType, n.GPUs)
	}
	gresUsed := ""
	if n.GPUs > 0 {
		gresUsed = fmt.Sprintf("gpu:%s:%d", n.GPUType, n.Alloc.GPUs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "NodeName=%s Arch=%s CoresPerSocket=%d\n", n.Name, n.Arch, n.CPUs/2)
	fmt.Fprintf(&b, "   CPUAlloc=%d CPUTot=%d CPULoad=%.2f\n", n.Alloc.CPUs, n.CPUs, n.CPULoad)
	fmt.Fprintf(&b, "   AvailableFeatures=%s\n", strings.Join(n.Features, ","))
	fmt.Fprintf(&b, "   Gres=%s GresUsed=%s\n", gres, gresUsed)
	fmt.Fprintf(&b, "   NodeAddr=%s NodeHostName=%s\n", n.Name, n.Name)
	fmt.Fprintf(&b, "   OS=%s\n", n.OS)
	fmt.Fprintf(&b, "   RealMemory=%d AllocMem=%d FreeMem=%d\n", n.MemMB, n.Alloc.MemMB, n.MemMB-n.Alloc.MemMB)
	fmt.Fprintf(&b, "   State=%s Partitions=%s\n", state, strings.Join(n.Partitions, ","))
	fmt.Fprintf(&b, "   BootTime=%s LastBusyTime=%s\n", FormatTime(n.BootTime), FormatTime(n.LastBusy))
	if n.StateReason != "" {
		fmt.Fprintf(&b, "   Reason=%s\n", n.StateReason)
	}
	_ = now
	return b.String()
}

func scontrolShowJob(cl *slurm.Cluster, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("slurmcli: scontrol show job: missing job id")
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return "", fmt.Errorf("slurmcli: bad job id %q", args[0])
	}
	j := cl.Ctl.Job(slurm.JobID(n))
	if j == nil {
		// Fall back to accounting for jobs that aged out of the controller,
		// mirroring how the dashboard combines scontrol and sacct.
		j = cl.DBD.Job(slurm.JobID(n))
	}
	if j == nil {
		return "", fmt.Errorf("slurmcli: Invalid job id specified: %d", n)
	}
	now := cl.Ctl.Now()
	var b strings.Builder
	fmt.Fprintf(&b, "JobId=%d JobName=%s\n", j.ID, j.Name)
	fmt.Fprintf(&b, "   UserId=%s Account=%s QOS=%s\n", j.User, j.Account, j.QOS)
	fmt.Fprintf(&b, "   JobState=%s Reason=%s ExitCode=%d:0\n", j.State, j.Reason, j.ExitCode)
	fmt.Fprintf(&b, "   SubmitTime=%s EligibleTime=%s\n", FormatTime(j.SubmitTime), FormatTime(j.EligibleTime))
	fmt.Fprintf(&b, "   StartTime=%s EndTime=%s\n", FormatTime(j.StartTime), FormatTime(j.EndTime))
	fmt.Fprintf(&b, "   RunTime=%s TimeLimit=%s\n", FormatDuration(j.Elapsed(now)), FormatDuration(j.TimeLimit))
	fmt.Fprintf(&b, "   Partition=%s Priority=%d\n", j.Partition, j.Priority)
	nodeList := "(null)"
	if len(j.Nodes) > 0 {
		nodeList = slurm.NodeNameRange(j.Nodes)
	}
	fmt.Fprintf(&b, "   NodeList=%s NumNodes=%d NumCPUs=%d\n", nodeList, j.ReqTRES.Nodes, j.ReqTRES.CPUs)
	fmt.Fprintf(&b, "   ReqTRES=%s AllocTRES=%s\n", j.ReqTRES, j.AllocTRES)
	fmt.Fprintf(&b, "   MinMemoryNode=%s\n", FormatMem(j.ReqTRES.MemMB))
	if j.Constraint != "" {
		fmt.Fprintf(&b, "   Features=%s\n", j.Constraint)
	}
	fmt.Fprintf(&b, "   WorkDir=%s\n", j.WorkDir)
	fmt.Fprintf(&b, "   StdOut=%s\n", j.StdoutPath)
	fmt.Fprintf(&b, "   StdErr=%s\n", j.StderrPath)
	if j.ArrayJobID != 0 {
		fmt.Fprintf(&b, "   ArrayJobId=%d ArrayTaskId=%d\n", j.ArrayJobID, j.ArrayTaskID)
	}
	if j.InteractiveApp != "" {
		fmt.Fprintf(&b, "   Comment=ood:app=%s;session=%s\n", j.InteractiveApp, j.SessionID)
	}
	return b.String(), nil
}

func scontrolShowPartition(cl *slurm.Cluster, args []string) (string, error) {
	parts := cl.Ctl.Partitions()
	var filter string
	if len(args) > 0 {
		filter = args[0]
	}
	var b strings.Builder
	for _, p := range parts {
		if filter != "" && p.Name != filter {
			continue
		}
		limit := "UNLIMITED"
		if p.MaxTime > 0 {
			limit = FormatDuration(p.MaxTime)
		}
		def := "NO"
		if p.Default {
			def = "YES"
		}
		fmt.Fprintf(&b, "PartitionName=%s\n", p.Name)
		fmt.Fprintf(&b, "   State=%s Default=%s PriorityTier=%d\n", p.State, def, p.Priority)
		fmt.Fprintf(&b, "   MaxTime=%s TotalNodes=%d\n", limit, len(p.Nodes))
		fmt.Fprintf(&b, "   Nodes=%s\n", slurm.NodeNameRange(p.Nodes))
		b.WriteByte('\n')
	}
	if b.Len() == 0 && filter != "" {
		return "", fmt.Errorf("slurmcli: Partition %s not found", filter)
	}
	return b.String(), nil
}

// scontrolShowAssoc emulates `scontrol show assoc_mgr` restricted to the
// association records: one line per association with limits and usage.
// Optional filters: account=<name>, user=<name>.
func scontrolShowAssoc(cl *slurm.Cluster, args []string) (string, error) {
	var account, user string
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "account="); ok {
			account = v
		}
		if v, ok := strings.CutPrefix(a, "user="); ok {
			user = v
		}
	}
	assocs := cl.DBD.Associations()
	var b strings.Builder
	for _, a := range assocs {
		if account != "" && a.Account != account {
			continue
		}
		if user != "" && a.User != user {
			continue
		}
		grpTRES := ""
		if a.GrpCPULimit > 0 {
			grpTRES = fmt.Sprintf("cpu=%d", a.GrpCPULimit)
		}
		fmt.Fprintf(&b,
			"ClusterName=%s Account=%s UserName=%s GrpTRES=%s GrpTRESMins=gres/gpu=%.0f GPUHoursUsed=%.2f CPUHoursUsed=%.2f\n",
			cl.Name, a.Account, a.User, grpTRES, a.GrpGPUHourLimit*60, a.GPUHoursUsed, a.CPUTimeUsed)
	}
	return b.String(), nil
}

// scontrolShowReservation emulates `scontrol show reservation`: one block
// per maintenance window, using Slurm's MAINT-flagged reservation format.
func scontrolShowReservation(cl *slurm.Cluster) (string, error) {
	windows := cl.Ctl.MaintenanceWindows()
	if len(windows) == 0 {
		return "No reservations in the system\n", nil
	}
	var b strings.Builder
	for _, w := range windows {
		nodes := "ALL"
		count := 0
		if len(w.Nodes) > 0 {
			nodes = slurm.NodeNameRange(w.Nodes)
			count = len(w.Nodes)
		}
		fmt.Fprintf(&b, "ReservationName=%s StartTime=%s EndTime=%s\n",
			w.Name, FormatTime(w.Start), FormatTime(w.End))
		fmt.Fprintf(&b, "   Nodes=%s NodeCnt=%d Flags=MAINT,SPEC_NODES\n", nodes, count)
		if w.Reason != "" {
			fmt.Fprintf(&b, "   Comment=%s\n", w.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ReservationDetail is one parsed `scontrol show reservation` block.
type ReservationDetail struct {
	Name    string
	Start   time.Time
	End     time.Time
	Nodes   string // hostlist expression, or "ALL"
	Comment string
}

// ShowReservations runs `scontrol show reservation` and parses the blocks.
func ShowReservations(r Runner) ([]ReservationDetail, error) {
	out, err := r.Run("scontrol", "show", "reservation")
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(out, "No reservations") {
		return nil, nil
	}
	var res []ReservationDetail
	for _, blk := range ParseScontrolBlocks(out) {
		d := ReservationDetail{
			Name:    blk["ReservationName"],
			Nodes:   blk["Nodes"],
			Comment: blk["Comment"],
		}
		if d.Name == "" {
			continue
		}
		if d.Start, err = ParseTime(blk["StartTime"]); err != nil {
			return nil, err
		}
		if d.End, err = ParseTime(blk["EndTime"]); err != nil {
			return nil, err
		}
		res = append(res, d)
	}
	return res, nil
}

// runScancel emulates scancel: `scancel <jobid> [user=<name>]`.
func runScancel(cl *slurm.Cluster, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("slurmcli: scancel: missing job id")
	}
	id, user, err := jobIDAndUser(args)
	if err != nil {
		return "", err
	}
	return "", cl.Ctl.Cancel(id, user)
}

// --- Typed scontrol wrappers ----------------------------------------------

// freeTextKeys are scontrol fields whose values may contain spaces; when
// one starts a line, the rest of the line is its value (matching how real
// scontrol prints Reason=/Comment=/OS= on dedicated lines).
var freeTextKeys = map[string]bool{"Comment": true, "Reason": true, "OS": true}

// ParseScontrolBlocks splits `scontrol show ...` output into one key→value
// map per record. Records are delimited by lines whose first key starts a
// new entity (no leading whitespace).
func ParseScontrolBlocks(out string) []map[string]string {
	var blocks []map[string]string
	var cur map[string]string
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if line[0] != ' ' && line[0] != '\t' {
			cur = make(map[string]string)
			blocks = append(blocks, cur)
		}
		if cur == nil {
			cur = make(map[string]string)
			blocks = append(blocks, cur)
		}
		// Free-text fields occupy the whole line after their key.
		if k, v, ok := strings.Cut(trimmed, "="); ok && freeTextKeys[k] {
			if _, exists := cur[k]; !exists {
				cur[k] = v
			}
			continue
		}
		for _, pair := range strings.Fields(trimmed) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				continue
			}
			// Only the first "=" splits; values like "ood:app=x;session=y"
			// keep their own equals signs.
			if _, exists := cur[k]; !exists {
				cur[k] = v
			}
		}
	}
	return blocks
}

// NodeDetail is the typed result of `scontrol show node <name>`.
type NodeDetail struct {
	Name       string
	Arch       string
	OS         string
	State      slurm.NodeState
	Partitions []string
	Features   []string
	CPUTotal   int
	CPUAlloc   int
	CPULoad    float64
	MemMB      int64
	AllocMemMB int64
	GPUTotal   int
	GPUAlloc   int
	GPUType    string
	BootTime   time.Time
	LastBusy   time.Time
	Reason     string
}

// ShowNode runs `scontrol show node <name>` and parses the block.
func ShowNode(r Runner, name string) (*NodeDetail, error) {
	out, err := r.Run("scontrol", "show", "node", name)
	if err != nil {
		return nil, err
	}
	blocks := ParseScontrolBlocks(out)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("slurmcli: no node block in output")
	}
	return nodeDetailFromBlock(blocks[0])
}

// ShowAllNodes runs `scontrol show node` and parses every block.
func ShowAllNodes(r Runner) ([]*NodeDetail, error) {
	out, err := r.Run("scontrol", "show", "node")
	if err != nil {
		return nil, err
	}
	blocks := ParseScontrolBlocks(out)
	details := make([]*NodeDetail, 0, len(blocks))
	for _, blk := range blocks {
		d, err := nodeDetailFromBlock(blk)
		if err != nil {
			return nil, err
		}
		details = append(details, d)
	}
	return details, nil
}

func nodeDetailFromBlock(blk map[string]string) (*NodeDetail, error) {
	d := &NodeDetail{
		Name:   blk["NodeName"],
		Arch:   blk["Arch"],
		OS:     blk["OS"],
		State:  slurm.NodeState(blk["State"]),
		Reason: blk["Reason"],
	}
	if d.Name == "" {
		return nil, fmt.Errorf("slurmcli: node block missing NodeName")
	}
	if v := blk["Partitions"]; v != "" {
		d.Partitions = strings.Split(v, ",")
	}
	if v := blk["AvailableFeatures"]; v != "" {
		d.Features = strings.Split(v, ",")
	}
	var err error
	if d.CPUTotal, err = atoiDefault(blk["CPUTot"]); err != nil {
		return nil, err
	}
	if d.CPUAlloc, err = atoiDefault(blk["CPUAlloc"]); err != nil {
		return nil, err
	}
	if v := blk["CPULoad"]; v != "" {
		if d.CPULoad, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("slurmcli: bad CPULoad %q", v)
		}
	}
	if d.MemMB, err = atoi64Default(blk["RealMemory"]); err != nil {
		return nil, err
	}
	if d.AllocMemMB, err = atoi64Default(blk["AllocMem"]); err != nil {
		return nil, err
	}
	if g := blk["Gres"]; g != "" && g != "(null)" {
		d.GPUType, d.GPUTotal = parseGres(g)
	}
	if g := blk["GresUsed"]; g != "" && g != "(null)" {
		_, d.GPUAlloc = parseGres(g)
	}
	if d.BootTime, err = ParseTime(blk["BootTime"]); err != nil {
		return nil, err
	}
	if d.LastBusy, err = ParseTime(blk["LastBusyTime"]); err != nil {
		return nil, err
	}
	return d, nil
}

// parseGres parses "gpu:a100:4" into ("a100", 4). "gpu:4" yields ("", 4).
func parseGres(s string) (string, int) {
	parts := strings.Split(s, ":")
	switch len(parts) {
	case 2:
		n, _ := strconv.Atoi(parts[1])
		return "", n
	case 3:
		n, _ := strconv.Atoi(parts[2])
		return parts[1], n
	}
	return "", 0
}

func atoiDefault(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("slurmcli: bad integer %q", s)
	}
	return n, nil
}

func atoi64Default(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("slurmcli: bad integer %q", s)
	}
	return n, nil
}

// JobDetail is the typed result of `scontrol show job <id>`.
type JobDetail struct {
	ID           slurm.JobID
	Name         string
	User         string
	Account      string
	QOS          string
	State        slurm.JobState
	Reason       slurm.PendingReason
	ExitCode     int
	SubmitTime   time.Time
	EligibleTime time.Time
	StartTime    time.Time
	EndTime      time.Time
	RunTime      time.Duration
	TimeLimit    time.Duration
	Partition    string
	Priority     int64
	NodeList     string
	NumNodes     int
	NumCPUs      int
	ReqTRES      slurm.TRES
	AllocTRES    slurm.TRES
	MemMB        int64
	Constraint   string // requested node features (sbatch --constraint)
	WorkDir      string
	StdoutPath   string
	StderrPath   string
	ArrayJobID   slurm.JobID
	ArrayTaskID  int
	Comment      string
}

// SessionInfo extracts OOD app/session metadata from the comment field.
func (d *JobDetail) SessionInfo() (app, session string, ok bool) {
	row := SacctRow{Comment: d.Comment}
	return row.SessionInfo()
}

// ShowJob runs `scontrol show job <id>` and parses the block.
func ShowJob(r Runner, id slurm.JobID) (*JobDetail, error) {
	out, err := r.Run("scontrol", "show", "job", strconv.FormatInt(int64(id), 10))
	if err != nil {
		return nil, err
	}
	blocks := ParseScontrolBlocks(out)
	if len(blocks) == 0 {
		return nil, fmt.Errorf("slurmcli: no job block in output")
	}
	blk := blocks[0]
	d := &JobDetail{
		Name:       blk["JobName"],
		User:       blk["UserId"],
		Account:    blk["Account"],
		QOS:        blk["QOS"],
		State:      slurm.JobState(blk["JobState"]),
		Reason:     slurm.PendingReason(blk["Reason"]),
		Partition:  blk["Partition"],
		WorkDir:    blk["WorkDir"],
		StdoutPath: blk["StdOut"],
		StderrPath: blk["StdErr"],
		Comment:    blk["Comment"],
	}
	n, err := atoi64Default(blk["JobId"])
	if err != nil {
		return nil, err
	}
	d.ID = slurm.JobID(n)
	codeStr, _, _ := strings.Cut(blk["ExitCode"], ":")
	if d.ExitCode, err = atoiDefault(codeStr); err != nil {
		return nil, err
	}
	if d.SubmitTime, err = ParseTime(blk["SubmitTime"]); err != nil {
		return nil, err
	}
	if d.EligibleTime, err = ParseTime(blk["EligibleTime"]); err != nil {
		return nil, err
	}
	if d.StartTime, err = ParseTime(blk["StartTime"]); err != nil {
		return nil, err
	}
	if d.EndTime, err = ParseTime(blk["EndTime"]); err != nil {
		return nil, err
	}
	if d.RunTime, err = ParseDuration(blk["RunTime"]); err != nil {
		return nil, err
	}
	if d.TimeLimit, err = ParseDuration(blk["TimeLimit"]); err != nil {
		return nil, err
	}
	if d.Priority, err = atoi64Default(blk["Priority"]); err != nil {
		return nil, err
	}
	d.NodeList = blk["NodeList"]
	if d.NodeList == "(null)" {
		d.NodeList = ""
	}
	d.Constraint = blk["Features"]
	if d.NumNodes, err = atoiDefault(blk["NumNodes"]); err != nil {
		return nil, err
	}
	if d.NumCPUs, err = atoiDefault(blk["NumCPUs"]); err != nil {
		return nil, err
	}
	if d.ReqTRES, err = slurm.ParseTRES(blk["ReqTRES"]); err != nil {
		return nil, err
	}
	if d.AllocTRES, err = slurm.ParseTRES(blk["AllocTRES"]); err != nil {
		return nil, err
	}
	if d.MemMB, err = ParseMem(blk["MinMemoryNode"]); err != nil {
		return nil, err
	}
	if v := blk["ArrayJobId"]; v != "" {
		n, err := atoi64Default(v)
		if err != nil {
			return nil, err
		}
		d.ArrayJobID = slurm.JobID(n)
		if d.ArrayTaskID, err = atoiDefault(blk["ArrayTaskId"]); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AssocDetail is one parsed `scontrol show assoc` record.
type AssocDetail struct {
	Cluster      string
	Account      string
	User         string
	GrpCPULimit  int
	GPUHourLimit float64
	GPUHoursUsed float64
	CPUHoursUsed float64
}

// ShowAssocs runs `scontrol show assoc` with optional account/user filters.
func ShowAssocs(r Runner, account, user string) ([]AssocDetail, error) {
	args := []string{"show", "assoc"}
	if account != "" {
		args = append(args, "account="+account)
	}
	if user != "" {
		args = append(args, "user="+user)
	}
	out, err := r.Run("scontrol", args...)
	if err != nil {
		return nil, err
	}
	var assocs []AssocDetail
	for _, line := range strings.Split(out, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		blk := make(map[string]string)
		for _, pair := range strings.Fields(line) {
			k, v, ok := strings.Cut(pair, "=")
			if ok {
				blk[k] = v
			}
		}
		a := AssocDetail{
			Cluster: blk["ClusterName"],
			Account: blk["Account"],
			User:    blk["UserName"],
		}
		if g := blk["GrpTRES"]; g != "" {
			tr, err := slurm.ParseTRES(g)
			if err != nil {
				return nil, err
			}
			a.GrpCPULimit = tr.CPUs
		}
		if v := blk["GrpTRESMins"]; v != "" {
			if _, mins, ok := strings.Cut(v, "gres/gpu="); ok {
				f, err := strconv.ParseFloat(mins, 64)
				if err != nil {
					return nil, fmt.Errorf("slurmcli: bad GrpTRESMins %q", v)
				}
				a.GPUHourLimit = f / 60
			}
		}
		var err error
		if a.GPUHoursUsed, err = parseFloatDefault(blk["GPUHoursUsed"]); err != nil {
			return nil, err
		}
		if a.CPUHoursUsed, err = parseFloatDefault(blk["CPUHoursUsed"]); err != nil {
			return nil, err
		}
		assocs = append(assocs, a)
	}
	return assocs, nil
}

func parseFloatDefault(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("slurmcli: bad float %q", s)
	}
	return f, nil
}

// Scancel cancels a job through the Runner as the given user.
func Scancel(r Runner, id slurm.JobID, user string) error {
	_, err := r.Run("scancel", strconv.FormatInt(int64(id), 10), "user="+user)
	return err
}
