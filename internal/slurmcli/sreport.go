package slurmcli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/slurm"
)

// runSreport emulates the subset of sreport the dashboard's accounting
// views rest on: `sreport cluster AccountUtilizationByUser start=<t>
// end=<t> [-P] [-n]`, reporting core-hours and GPU-hours charged per
// (account, user) within the window, computed from finished accounting
// records the way slurmdbd's rollups are.
func runSreport(cl *slurm.Cluster, args []string) (string, error) {
	if len(args) >= 2 && args[0] == "cluster" && strings.EqualFold(args[1], "Rollup") {
		return runSreportRollup(cl, args[2:])
	}
	if len(args) < 2 || args[0] != "cluster" ||
		!strings.EqualFold(args[1], "AccountUtilizationByUser") {
		return "", fmt.Errorf("slurmcli: sreport: only 'cluster AccountUtilizationByUser' and 'cluster Rollup' are supported")
	}
	var (
		start, end time.Time
		parsable   bool
		noHeader   bool
		err        error
	)
	for _, arg := range args[2:] {
		switch {
		case strings.HasPrefix(arg, "start="):
			if start, err = ParseTime(strings.TrimPrefix(arg, "start=")); err != nil {
				return "", err
			}
		case strings.HasPrefix(arg, "end="):
			if end, err = ParseTime(strings.TrimPrefix(arg, "end=")); err != nil {
				return "", err
			}
		case arg == "-P" || arg == "--parsable2":
			parsable = true
		case arg == "-n" || arg == "--noheader":
			noHeader = true
		default:
			return "", fmt.Errorf("slurmcli: sreport: unknown option %q", arg)
		}
	}

	now := cl.Ctl.Now()
	if end.IsZero() {
		end = now
	}
	rows := cl.DBD.Jobs(slurm.JobFilter{Start: start, End: end}, now)
	type key struct{ account, user string }
	type usage struct{ cpu, gpu float64 }
	agg := make(map[key]usage)
	for _, j := range rows {
		if j.EndTime.IsZero() || j.EndTime.Before(start) || j.EndTime.After(end) {
			continue // sreport buckets usage by when it was charged
		}
		k := key{j.Account, j.User}
		u := agg[k]
		u.cpu += j.CPUTimeUsed(now).Hours()
		u.gpu += j.GPUHoursUsed(now)
		agg[k] = u
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].account != keys[j].account {
			return keys[i].account < keys[j].account
		}
		return keys[i].user < keys[j].user
	})

	sep := "|"
	if !parsable {
		sep = "  "
	}
	var b strings.Builder
	if !noHeader {
		fmt.Fprintf(&b, "Cluster%sAccount%sLogin%sCPUHours%sGPUHours\n", sep, sep, sep, sep)
	}
	for _, k := range keys {
		u := agg[k]
		fmt.Fprintf(&b, "%s%s%s%s%s%s%.2f%s%.2f\n",
			cl.Name, sep, k.account, sep, k.user, sep, u.cpu, sep, u.gpu)
	}
	return b.String(), nil
}

// UtilizationRow is one parsed sreport AccountUtilizationByUser record.
type UtilizationRow struct {
	Cluster  string
	Account  string
	User     string
	CPUHours float64
	GPUHours float64
}

// SreportAccountUtilization runs the report over [start, end] and parses
// the rows (sorted by account, then user).
func SreportAccountUtilization(r Runner, start, end time.Time) ([]UtilizationRow, error) {
	args := []string{"cluster", "AccountUtilizationByUser", "-P", "-n"}
	if !start.IsZero() {
		args = append(args, "start="+FormatTime(start))
	}
	if !end.IsZero() {
		args = append(args, "end="+FormatTime(end))
	}
	out, err := r.Run("sreport", args...)
	if err != nil {
		return nil, err
	}
	rows := make([]UtilizationRow, 0, countLines(out))
	var f [5]string
	err = forEachLine(out, func(line string) error {
		if isBlank(line) {
			return nil
		}
		if n := splitInto(line, '|', f[:]); n != len(f) {
			return fmt.Errorf("slurmcli: sreport row has %d fields: %q", n, line)
		}
		row := UtilizationRow{Cluster: f[0], Account: f[1], User: f[2]}
		var err error
		if row.CPUHours, err = strconv.ParseFloat(f[3], 64); err != nil {
			return fmt.Errorf("slurmcli: bad CPUHours %q", f[3])
		}
		if row.GPUHours, err = strconv.ParseFloat(f[4], 64); err != nil {
			return fmt.Errorf("slurmcli: bad GPUHours %q", f[4])
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows, nil
}
