package slurmcli

import (
	"fmt"
	"strconv"
	"strings"

	"ooddash/internal/slurm"
)

// runSprio emulates sprio: the priority-factor breakdown for every pending
// job. Supported options: -h/--noheader, -u/--user.
func runSprio(cl *slurm.Cluster, args []string) (string, error) {
	var (
		noHeader bool
		user     string
	)
	sc := &argScanner{args: args}
	for {
		arg, ok := sc.next()
		if !ok {
			break
		}
		switch flagName(arg) {
		case "-h", "--noheader":
			noHeader = true
		case "-u", "--user":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			user = v
		default:
			return "", fmt.Errorf("slurmcli: sprio: unknown option %q", arg)
		}
	}
	var b strings.Builder
	if !noHeader {
		fmt.Fprintf(&b, "%10s %9s %10s %6s %6s %10s %10s\n",
			"JOBID", "USER", "PRIORITY", "AGE", "QOS", "PARTITION", "FAIRSHARE")
	}
	for _, f := range cl.Ctl.PendingPriorities() {
		if user != "" && f.User != user {
			continue
		}
		fmt.Fprintf(&b, "%10d %9s %10d %6d %6d %10d %10d\n",
			f.JobID, f.User, f.Priority, f.Age, f.QOS, f.Partition, f.FairShare)
	}
	return b.String(), nil
}

// PriorityRow is one parsed sprio row.
type PriorityRow struct {
	JobID     slurm.JobID
	User      string
	Priority  int64
	Age       int64
	QOS       int64
	Partition int64
	FairShare int64
}

// Sprio runs sprio through the Runner and parses the rows (highest
// priority first).
func Sprio(r Runner, user string) ([]PriorityRow, error) {
	args := []string{"-h"}
	if user != "" {
		args = append(args, "-u", user)
	}
	out, err := r.Run("sprio", args...)
	if err != nil {
		return nil, err
	}
	var rows []PriorityRow
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 7 {
			return nil, fmt.Errorf("slurmcli: sprio row has %d fields: %q", len(fields), line)
		}
		var row PriorityRow
		id, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("slurmcli: bad sprio job id %q", fields[0])
		}
		row.JobID = slurm.JobID(id)
		row.User = fields[1]
		ints := []*int64{&row.Priority, &row.Age, &row.QOS, &row.Partition, &row.FairShare}
		for i, dst := range ints {
			n, err := strconv.ParseInt(fields[i+2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("slurmcli: bad sprio field %q", fields[i+2])
			}
			*dst = n
		}
		rows = append(rows, row)
	}
	return rows, nil
}
