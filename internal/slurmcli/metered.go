package slurmcli

import (
	"context"
	"time"

	"ooddash/internal/trace"
)

// DaemonFor maps a Slurm command to the daemon that serves it — the same
// blast-radius split Run enforces. The dashboard's observability layer uses
// it to attribute command cost to slurmctld vs slurmdbd, so /metrics can
// show dashboard-side RPC load next to the simulator's sdiag counters.
func DaemonFor(command string) string {
	switch command {
	case "sacct", "sreport":
		return "slurmdbd"
	case "squeue", "sinfo", "scontrol", "scancel", "sdiag", "sprio":
		return "slurmctld"
	}
	return "unknown"
}

// MeteredRunner wraps a Runner and reports every command's daemon, latency,
// and error to an observer. It is the instrumentation seam between the
// dashboard and the command surface: the backend wraps its runner once and
// every route's Slurm traffic is attributed without the routes knowing.
type MeteredRunner struct {
	// Next is the wrapped runner.
	Next Runner
	// Observe receives one call per command; nil disables reporting.
	// Duration is wall-clock. err is the command's error, nil on success.
	Observe func(command, daemon string, d time.Duration, err error)
}

// NewMeteredRunner wraps next with the observer.
func NewMeteredRunner(next Runner, observe func(command, daemon string, d time.Duration, err error)) *MeteredRunner {
	return &MeteredRunner{Next: next, Observe: observe}
}

// Run implements Runner.
func (m *MeteredRunner) Run(name string, args ...string) (string, error) {
	return m.RunContext(context.Background(), name, args...)
}

// RunContext implements CtxRunner: the same metering, plus a
// "slurmcli.<command>" span when the context carries an active trace, under
// which the fault injector and daemon handlers nest their own spans.
func (m *MeteredRunner) RunContext(ctx context.Context, name string, args ...string) (string, error) {
	start := time.Now()
	var sp *trace.Span
	if trace.SpanFromContext(ctx) != nil {
		ctx, sp = trace.StartSpan(ctx, "slurmcli."+name)
		sp.SetAttr("command", name)
		sp.SetAttr("daemon", DaemonFor(name))
	}
	out, err := RunWith(ctx, m.Next, name, args...)
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if m.Observe != nil {
		m.Observe(name, DaemonFor(name), time.Since(start), err)
	}
	return out, err
}
