package slurmcli

import "time"

// DaemonFor maps a Slurm command to the daemon that serves it — the same
// blast-radius split Run enforces. The dashboard's observability layer uses
// it to attribute command cost to slurmctld vs slurmdbd, so /metrics can
// show dashboard-side RPC load next to the simulator's sdiag counters.
func DaemonFor(command string) string {
	switch command {
	case "sacct", "sreport":
		return "slurmdbd"
	case "squeue", "sinfo", "scontrol", "scancel", "sdiag", "sprio":
		return "slurmctld"
	}
	return "unknown"
}

// MeteredRunner wraps a Runner and reports every command's daemon, latency,
// and error to an observer. It is the instrumentation seam between the
// dashboard and the command surface: the backend wraps its runner once and
// every route's Slurm traffic is attributed without the routes knowing.
type MeteredRunner struct {
	// Next is the wrapped runner.
	Next Runner
	// Observe receives one call per command; nil disables reporting.
	// Duration is wall-clock. err is the command's error, nil on success.
	Observe func(command, daemon string, d time.Duration, err error)
}

// NewMeteredRunner wraps next with the observer.
func NewMeteredRunner(next Runner, observe func(command, daemon string, d time.Duration, err error)) *MeteredRunner {
	return &MeteredRunner{Next: next, Observe: observe}
}

// Run implements Runner.
func (m *MeteredRunner) Run(name string, args ...string) (string, error) {
	start := time.Now()
	out, err := m.Next.Run(name, args...)
	if m.Observe != nil {
		m.Observe(name, DaemonFor(name), time.Since(start), err)
	}
	return out, err
}
