package slurmcli

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// finishRollupJobs runs a couple of jobs to completion so the rollup store
// has terminal history, and returns an hour-aligned window covering it.
func finishRollupJobs(t testing.TB, cl *slurm.Cluster, clock *slurm.SimClock) (start, end int64) {
	t.Helper()
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "roll-a", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8 * 1024},
		Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute},
	})
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "roll-c", User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 4 * 1024},
		Profile: slurm.UsageProfile{ActualDuration: 45 * time.Minute, FailureState: slurm.StateFailed, ExitCode: 9},
	})
	cl.Ctl.Tick()
	clock.Advance(2 * time.Hour)
	cl.Ctl.Tick()
	now := clock.Now().Unix()
	start = now - 24*3600
	start -= start % 3600
	end = now + 3600
	end -= end % 3600
	return start, end
}

// TestSreportRollupTypedRoundTrip pins the CLI wire: rows parsed back from
// the sreport rollup text format are exactly the daemon's rows — the
// transport is all-integer, so nothing can drift.
func TestSreportRollupTypedRoundTrip(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	start, end := finishRollupJobs(t, cl, clock)

	for _, scope := range []string{slurm.RollupScopeTotal, slurm.RollupScopeUser} {
		res, err := SreportRollup(r, RollupOptions{
			Scope: scope, Start: start, End: end, Resolution: slurm.RollupHour,
		})
		if err != nil {
			t.Fatalf("%s: %v", scope, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no rows; jobs never reached the rollup store", scope)
		}
		want := cl.DBD.RollupQuery(scope, "", start, end, slurm.RollupHour)
		if !reflect.DeepEqual(res.Rows, want) {
			t.Errorf("%s: parsed rows != daemon rows\nparsed: %+v\ndaemon: %+v", scope, res.Rows, want)
		}
	}

	// A narrowed series only carries its own name.
	res, err := SreportRollup(r, RollupOptions{
		Scope: slurm.RollupScopeUser, Name: "carol",
		Start: start, End: end, Resolution: slurm.RollupHour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Name != "carol" || row.Failed != 1 {
			t.Errorf("carol series row = %+v", row)
		}
	}
}

func TestSreportRollupBounds(t *testing.T) {
	r, cl, clock := newTestRunner(t)

	// No history yet: the bounds op reports none rather than zeros.
	res, err := SreportRollup(r, RollupOptions{Scope: slurm.RollupScopeTotal, Op: "bounds"})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasBounds {
		t.Fatalf("bounds before any terminal job: %+v", res)
	}

	finishRollupJobs(t, cl, clock)
	res, err = SreportRollup(r, RollupOptions{Scope: slurm.RollupScopeTotal, Op: "bounds"})
	if err != nil {
		t.Fatal(err)
	}
	minEnd, maxEnd, ok := cl.DBD.RollupBounds(slurm.RollupScopeTotal, "")
	if !ok || !res.HasBounds {
		t.Fatalf("bounds missing: daemon ok=%v parsed=%+v", ok, res)
	}
	if res.MinEnd != minEnd || res.MaxEnd != maxEnd {
		t.Errorf("bounds = [%d, %d], want [%d, %d]", res.MinEnd, res.MaxEnd, minEnd, maxEnd)
	}
}

// TestSreportRollupValidation pins the command's argument errors.
func TestSreportRollupValidation(t *testing.T) {
	r, _, _ := newTestRunner(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"cluster", "Rollup", "scope=galaxy", "start=0", "end=3600", "resolution=3600"}, "bad scope"},
		{[]string{"cluster", "Rollup", "scope=total", "start=0", "end=3600", "resolution=123"}, "bad resolution"},
		{[]string{"cluster", "Rollup", "scope=total", "start=0", "end=3600"}, "bad resolution"},
		{[]string{"cluster", "Rollup", "scope=total", "op=frobnicate", "start=0", "end=3600", "resolution=3600"}, "unknown op"},
		{[]string{"cluster", "Rollup", "scope=total", "--wide"}, "unknown option"},
	}
	for _, c := range cases {
		_, err := r.Run("sreport", c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("sreport %v: err = %v, want %q", c.args, err, c.want)
		}
	}
}
