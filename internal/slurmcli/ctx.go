package slurmcli

import (
	"context"

	"ooddash/internal/trace"
)

// CtxRunner is implemented by runners that accept a context, which carries
// the active trace span (and nothing else — command semantics are identical
// to Run). Runner stays the dashboard's dependency surface; context-aware
// callers probe for CtxRunner via RunWith.
type CtxRunner interface {
	RunContext(ctx context.Context, name string, args ...string) (string, error)
}

// RunWith runs a command through r, passing ctx along when r supports it.
// Runners that only implement Runner are called without the context: they
// simply do not contribute spans.
func RunWith(ctx context.Context, r Runner, name string, args ...string) (string, error) {
	if cr, ok := r.(CtxRunner); ok {
		return cr.RunContext(ctx, name, args...)
	}
	return r.Run(name, args...)
}

// boundRunner carries a context into every Run call, so code holding a plain
// Runner (the route helpers) still propagates the request's trace.
type boundRunner struct {
	ctx   context.Context
	inner Runner
}

func (b boundRunner) Run(name string, args ...string) (string, error) {
	return RunWith(b.ctx, b.inner, name, args...)
}

// Bind returns a Runner whose calls carry ctx. When the context holds no
// active span the original runner is returned unchanged — the untraced path
// allocates nothing.
func Bind(ctx context.Context, r Runner) Runner {
	if trace.SpanFromContext(ctx) == nil {
		return r
	}
	return boundRunner{ctx: ctx, inner: r}
}
