package slurmcli

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestSqueueCustomFormat(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "fmt", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 4096, GPUs: 0},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	out, err := r.Run("squeue", "-h", "-o", "%u/%a/%q/%m/%b/%e")
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(out)
	if line != "alice/lab-a/normal/4G/N/A/Unknown" {
		t.Fatalf("line = %q", line)
	}
	// Width padding pads short values.
	out, err = r.Run("squeue", "-h", "-o", "%.10u|")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "     alice|") {
		t.Fatalf("padded = %q", out)
	}
	// Unknown verbs pass through literally (squeue prints them raw).
	out, err = r.Run("squeue", "-h", "-o", "%Z")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "%Z" {
		t.Fatalf("unknown verb = %q", out)
	}
}

func TestSqueueGresColumn(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192, GPUs: 2},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	out, err := r.Run("squeue", "-h", "-u", "carol", "-o", "%b")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "gres/gpu:2" {
		t.Fatalf("gres = %q", out)
	}
}

func TestSqueueNodeFilter(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	node := cl.Ctl.Job(id).Nodes[0]
	out, err := r.Run("squeue", "-h", "-w", node, "-o", "%i")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("node filter found nothing")
	}
	out, err = r.Run("squeue", "-h", "-w", "c004", "-o", "%i")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("wrong node matched: %q", out)
	}
}

func TestSinfoCustomFormatAndPartitionFilter(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	cl.Ctl.Tick()
	out, err := r.Run("sinfo", "-h", "-p", "gpu", "-o", "%P %t %D")
	if err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(out)
	if line != "gpu idle 1" {
		t.Fatalf("line = %q", line)
	}
}

func TestSacctDefaultTableMode(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "tabular", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	out, err := r.Run("sacct", "-u", "alice")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "JobID") || !strings.Contains(lines[1], "tabular") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestSacctUnknownFieldErrors(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	if _, err := r.Run("sacct", "--format", "JobID,Bogus"); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestScontrolShowPartitionText(t *testing.T) {
	r, _, _ := newTestRunner(t)
	out, err := r.Run("scontrol", "show", "partition", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PartitionName=cpu") || !strings.Contains(out, "Default=YES") {
		t.Fatalf("out:\n%s", out)
	}
	if !strings.Contains(out, "MaxTime=1-00:00:00") {
		t.Fatalf("max time missing:\n%s", out)
	}
	if _, err := r.Run("scontrol", "show", "partition", "nope"); err == nil {
		t.Fatal("expected unknown partition error")
	}
}

func TestScontrolHoldReleaseCommands(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu", Hold: true,
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	if _, err := r.Run("scontrol", "release", jobIDArg(id), "user=alice"); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	if got := cl.Ctl.Job(id).State; got != slurm.StateRunning {
		t.Fatalf("released job = %s", got)
	}
	if _, err := r.Run("scontrol", "hold", "notanumber"); err == nil {
		t.Fatal("expected bad-id error")
	}
}

func jobIDArg(id slurm.JobID) string {
	return strconv.FormatInt(int64(id), 10)
}

func TestBadCommandArguments(t *testing.T) {
	r, _, _ := newTestRunner(t)
	cases := [][]string{
		{"sinfo", "--bogus"},
		{"sacct", "--starttime", "nope"},
		{"sacct", "--limit", "x"},
		{"scontrol"},
		{"scontrol", "show"},
		{"scontrol", "show", "widgets"},
		{"scontrol", "show", "node", "zz[001-"},
		{"scancel"},
		{"scancel", "potato"},
		{"sdiag", "--flag"},
		{"sprio", "--bogus"},
		{"sreport", "job", "Sizes"},
		{"sreport", "cluster", "AccountUtilizationByUser", "start=nope"},
		{"squeue", "-u"},
	}
	for _, argv := range cases {
		if _, err := r.Run(argv[0], argv[1:]...); err == nil {
			t.Errorf("%v: expected error", argv)
		}
	}
}

func TestSacctRowHelpers(t *testing.T) {
	row := SacctRow{
		Elapsed:   2 * time.Hour,
		AllocTRES: slurm.TRES{GPUs: 2},
	}
	if got := row.GPUHours(); got != 4 {
		t.Fatalf("GPUHours = %v", got)
	}
	// Pending rows (no start) report zero wait.
	if got := (&SacctRow{}).WaitTime(); got != 0 {
		t.Fatalf("pending wait = %v", got)
	}
	// Non-OOD comments yield no session info.
	if _, _, ok := (&SacctRow{Comment: "just a note"}).SessionInfo(); ok {
		t.Fatal("non-ood comment parsed as session")
	}
}

func TestJobDetailSessionInfo(t *testing.T) {
	d := &JobDetail{Comment: "ood:app=matlab;session=abc123"}
	app, sess, ok := d.SessionInfo()
	if !ok || app != "matlab" || sess != "abc123" {
		t.Fatalf("session = %q %q %v", app, sess, ok)
	}
}

func TestParseGresVariants(t *testing.T) {
	if typ, n := parseGres("gpu:4"); typ != "" || n != 4 {
		t.Fatalf("gpu:4 = %q %d", typ, n)
	}
	if typ, n := parseGres("gpu:a100:2"); typ != "a100" || n != 2 {
		t.Fatalf("gpu:a100:2 = %q %d", typ, n)
	}
	if typ, n := parseGres("weird"); typ != "" || n != 0 {
		t.Fatalf("weird = %q %d", typ, n)
	}
}

func TestParseHelperErrors(t *testing.T) {
	if _, err := atoiDefault("x"); err == nil {
		t.Fatal("atoiDefault accepted garbage")
	}
	if _, err := atoi64Default("x"); err == nil {
		t.Fatal("atoi64Default accepted garbage")
	}
	if _, err := parseFloatDefault("x"); err == nil {
		t.Fatal("parseFloatDefault accepted garbage")
	}
	if v, err := parseFloatDefault("1.5"); err != nil || v != 1.5 {
		t.Fatalf("parseFloatDefault = %v %v", v, err)
	}
}

func TestPartitionStatusZeroDenominators(t *testing.T) {
	p := PartitionStatus{}
	if p.CPUPercent() != 0 || p.GPUPercent() != 0 {
		t.Fatal("zero-capacity percent not 0")
	}
}

func TestSacctFilterOptionsThroughWrapper(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "cpu-one", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "gpu-one", User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024, GPUs: 1},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
			FailureState: slurm.StateFailed, ExitCode: 9},
	})
	cl.Ctl.Tick()
	clock.Advance(20 * time.Minute)
	cl.Ctl.Tick()

	// Accounts filter.
	rows, err := Sacct(r, SacctOptions{Accounts: []string{"lab-b"}, AllUsers: true})
	if err != nil || len(rows) != 1 || rows[0].Name != "gpu-one" {
		t.Fatalf("accounts filter = %+v, %v", rows, err)
	}
	// Partition filter.
	rows, err = Sacct(r, SacctOptions{Partition: "gpu", AllUsers: true})
	if err != nil || len(rows) != 1 || rows[0].Partition != "gpu" {
		t.Fatalf("partition filter = %+v, %v", rows, err)
	}
	// State filter.
	rows, err = Sacct(r, SacctOptions{States: []slurm.JobState{slurm.StateFailed}, AllUsers: true})
	if err != nil || len(rows) != 1 || rows[0].ExitCode != 9 {
		t.Fatalf("state filter = %+v, %v", rows, err)
	}
	// Job-ID filter.
	id := rows[0].RawID
	rows, err = Sacct(r, SacctOptions{JobIDs: []slurm.JobID{id}, AllUsers: true})
	if err != nil || len(rows) != 1 || rows[0].RawID != id {
		t.Fatalf("job-id filter = %+v, %v", rows, err)
	}
	// Limit.
	rows, err = Sacct(r, SacctOptions{AllUsers: true, Limit: 1})
	if err != nil || len(rows) != 1 {
		t.Fatalf("limit = %+v, %v", rows, err)
	}
}

func TestParseSacctOutputErrors(t *testing.T) {
	bad := []string{
		"onlyonefield",
		strings.Repeat("x|", 23) + "x\nshort|row",
	}
	for _, out := range bad {
		if _, err := parseSacctOutput(out); err == nil {
			t.Errorf("parseSacctOutput(%q): expected error", out)
		}
	}
	if rows, err := parseSacctOutput(""); err != nil || rows != nil {
		t.Fatalf("empty output = %+v, %v", rows, err)
	}
}
