package slurmcli

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/slurm"
)

// runSqueue emulates the squeue command against the controller. Supported
// options: -h/--noheader, -u/--user, -A/--account, -p/--partition,
// -t/--states (comma list or "all"), -w/--nodelist, -o/--format, and
// --limit (an extension the dashboard uses to bound responses).
func runSqueue(cl *slurm.Cluster, args []string) (string, error) {
	var (
		filter   slurm.LiveJobFilter
		noHeader bool
		format   = "%.18i %.9P %.30j %.8u %.2t %.10M %.6D %R"
	)
	// squeue without -t shows only pending/running by default.
	statesSet := false
	sc := &argScanner{args: args}
	for {
		arg, ok := sc.next()
		if !ok {
			break
		}
		switch flagName(arg) {
		case "-h", "--noheader":
			noHeader = true
		case "-u", "--user":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.User = v
		case "-A", "--account":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Account = v
		case "-p", "--partition":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Partition = v
		case "-w", "--nodelist":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Node = v
		case "-t", "--states":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			states, err := parseStates(v)
			if err != nil {
				return "", err
			}
			filter.States = states
			statesSet = true
		case "-o", "--format":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			format = v
		case "--limit":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return "", fmt.Errorf("slurmcli: bad --limit %q", v)
			}
			filter.Limit = n
		default:
			return "", fmt.Errorf("slurmcli: squeue: unknown option %q", arg)
		}
	}
	if !statesSet {
		filter.States = []slurm.JobState{slurm.StatePending, slurm.StateRunning,
			slurm.StateSuspended, slurm.StateCompleting}
	}

	jobs := cl.Ctl.Jobs(filter)
	now := cl.Ctl.Now()
	var b strings.Builder
	if !noHeader {
		b.WriteString(squeueLine(format, nil, now, true))
		b.WriteByte('\n')
	}
	for _, j := range jobs {
		b.WriteString(squeueLine(format, j, now, false))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// squeueHeaders maps format verbs to their column headers.
var squeueHeaders = map[byte]string{
	'i': "JOBID", 'j': "NAME", 'u': "USER", 'a': "ACCOUNT", 'P': "PARTITION",
	'q': "QOS", 'T': "STATE", 't': "ST", 'r': "REASON", 'R': "NODELIST(REASON)",
	'S': "START_TIME", 'V': "SUBMIT_TIME", 'e': "END_TIME", 'M': "TIME",
	'l': "TIME_LIMIT", 'D': "NODES", 'C': "CPUS", 'm': "MIN_MEMORY", 'b': "TRES_PER_NODE",
}

// squeueLine expands one squeue format string for a job (or, when header is
// true, for the column headers). Supports the "%.10x" width syntax (width is
// honored for padding but long values are not truncated, matching squeue's
// behaviour with negative widths closely enough for parsing).
func squeueLine(format string, j *slurm.Job, now time.Time, header bool) string {
	var b strings.Builder
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		// Optional "." and width digits.
		width := 0
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				width = width*10 + int(format[i]-'0')
				i++
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		var val string
		if header {
			val = squeueHeaders[verb]
		} else {
			val = squeueValue(verb, j, now)
		}
		if width > 0 && len(val) < width {
			val = strings.Repeat(" ", width-len(val)) + val
		}
		b.WriteString(val)
	}
	return b.String()
}

func squeueValue(verb byte, j *slurm.Job, now time.Time) string {
	switch verb {
	case 'i':
		return j.DisplayID()
	case 'j':
		return j.Name
	case 'u':
		return j.User
	case 'a':
		return j.Account
	case 'P':
		return j.Partition
	case 'q':
		return j.QOS
	case 'T':
		return string(j.State)
	case 't':
		return j.State.ShortCode()
	case 'r':
		return string(j.Reason)
	case 'R':
		if j.State == slurm.StatePending {
			return "(" + string(j.Reason) + ")"
		}
		return slurm.NodeNameRange(j.Nodes)
	case 'S':
		return FormatTime(j.StartTime)
	case 'V':
		return FormatTime(j.SubmitTime)
	case 'e':
		return FormatTime(j.EndTime)
	case 'M':
		return FormatDuration(j.Elapsed(now))
	case 'l':
		return FormatDuration(j.TimeLimit)
	case 'D':
		n := j.ReqTRES.Nodes
		if j.AllocTRES.Nodes > 0 {
			n = j.AllocTRES.Nodes
		}
		return strconv.Itoa(n)
	case 'C':
		c := j.ReqTRES.CPUs
		if j.AllocTRES.CPUs > 0 {
			c = j.AllocTRES.CPUs
		}
		return strconv.Itoa(c)
	case 'm':
		return FormatMem(j.ReqTRES.MemMB)
	case 'b':
		if j.ReqTRES.GPUs == 0 {
			return "N/A"
		}
		return fmt.Sprintf("gres/gpu:%d", j.ReqTRES.GPUs)
	default:
		return "%" + string(verb)
	}
}

// squeueParseFormat is the pipe-separated format the typed client requests.
const squeueParseFormat = "%i|%j|%u|%a|%P|%q|%T|%r|%V|%S|%M|%l|%D|%C|%m|%b|%R"

// QueueEntry is one parsed squeue row.
type QueueEntry struct {
	JobID       string // display ID; "1234_7" for array tasks
	Name        string
	User        string
	Account     string
	Partition   string
	QOS         string
	State       slurm.JobState
	Reason      slurm.PendingReason
	SubmitTime  time.Time
	StartTime   time.Time
	Elapsed     time.Duration
	TimeLimit   time.Duration
	Nodes       int
	CPUs        int
	MemMB       int64
	GPUsPerNode int
	NodeList    string // node range, or "(Reason)" when pending
}

// SqueueOptions are the filters the typed Squeue wrapper supports.
type SqueueOptions struct {
	User      string
	Account   string
	Partition string
	States    []slurm.JobState // nil means squeue's default (active jobs)
	AllStates bool             // -t all
	Limit     int
}

// Squeue runs squeue through the Runner and parses the rows.
func Squeue(r Runner, opts SqueueOptions) ([]QueueEntry, error) {
	args := []string{"-h", "-o", squeueParseFormat}
	if opts.User != "" {
		args = append(args, "-u", opts.User)
	}
	if opts.Account != "" {
		args = append(args, "-A", opts.Account)
	}
	if opts.Partition != "" {
		args = append(args, "-p", opts.Partition)
	}
	switch {
	case opts.AllStates:
		args = append(args, "-t", "all")
	case len(opts.States) > 0:
		names := make([]string, len(opts.States))
		for i, s := range opts.States {
			names[i] = string(s)
		}
		args = append(args, "-t", strings.Join(names, ","))
	}
	if opts.Limit > 0 {
		args = append(args, "--limit", strconv.Itoa(opts.Limit))
	}
	out, err := r.Run("squeue", args...)
	if err != nil {
		return nil, err
	}
	return parseSqueueOutput(out)
}

func parseSqueueOutput(out string) ([]QueueEntry, error) {
	entries := make([]QueueEntry, 0, countLines(out))
	var f [17]string
	err := forEachLine(out, func(line string) error {
		if isBlank(line) {
			return nil
		}
		if n := splitInto(line, '|', f[:]); n != len(f) {
			return fmt.Errorf("slurmcli: squeue row has %d fields, want 17: %q", n, line)
		}
		e := QueueEntry{
			JobID: f[0], Name: f[1], User: f[2], Account: f[3],
			Partition: f[4], QOS: f[5],
			State:    slurm.JobState(f[6]),
			Reason:   slurm.PendingReason(f[7]),
			NodeList: f[16],
		}
		var err error
		if e.SubmitTime, err = ParseTime(f[8]); err != nil {
			return err
		}
		if e.StartTime, err = ParseTime(f[9]); err != nil {
			return err
		}
		if e.Elapsed, err = ParseDuration(f[10]); err != nil {
			return err
		}
		if e.TimeLimit, err = ParseDuration(f[11]); err != nil {
			return err
		}
		if e.Nodes, err = strconv.Atoi(f[12]); err != nil {
			return fmt.Errorf("slurmcli: bad node count %q", f[12])
		}
		if e.CPUs, err = strconv.Atoi(f[13]); err != nil {
			return fmt.Errorf("slurmcli: bad cpu count %q", f[13])
		}
		if e.MemMB, err = ParseMem(f[14]); err != nil {
			return err
		}
		if f[15] != "N/A" {
			if _, gstr, ok := strings.Cut(f[15], ":"); ok {
				if e.GPUsPerNode, err = strconv.Atoi(gstr); err != nil {
					return fmt.Errorf("slurmcli: bad gres %q", f[15])
				}
			}
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}
