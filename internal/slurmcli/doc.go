// Package slurmcli emulates the Slurm command-line query surface (squeue,
// sinfo, sacct, scontrol show ...) on top of the internal/slurm simulator.
//
// The paper's dashboard backend runs Slurm commands and parses their output
// (§2.2.2); this package preserves that architecture. A Runner runs a named
// command with argv-style arguments and returns its stdout; SimRunner
// implements it against a simulated cluster, formatting output the way the
// real commands do (parsable pipe-separated records, key=value scontrol
// blocks, D-HH:MM:SS elapsed times). Client wrappers (Squeue, Sacct, ...)
// build the argument lists, run the command, and parse the text back into
// typed rows — so the backend's code path is spawn → parse → cache, exactly
// as on a production cluster, and a real Runner backed by os/exec could be
// swapped in on a live system.
package slurmcli
