package slurmcli

import (
	"fmt"
	"strconv"
	"strings"

	"ooddash/internal/slurm"
)

// The rollup report: `sreport cluster Rollup` exposes slurmdbd's
// pre-aggregated time buckets over the command-line transport, so the
// dashboard's historical widgets cost O(buckets) regardless of how many jobs
// accounting holds. Times and durations are whole unix seconds and the
// efficiency sums are fixed-point integers — nothing on this wire can lose
// precision, which the rollup-vs-raw golden test depends on.

// RollupOptions selects one rollup read.
type RollupOptions struct {
	// Scope is one of slurm.RollupScopes; Name narrows it to a single
	// user/account/partition series ("" returns every series in the scope).
	Scope string
	Name  string
	// Start and End bound the half-open window [Start, End) in unix seconds,
	// aligned to Resolution.
	Start int64
	End   int64
	// Resolution is the bucket width in seconds: slurm.RollupMinute/Hour/Day.
	Resolution int64
	// Op "" (or "query") returns bucket rows; "bounds" returns only the
	// earliest/latest terminal end times recorded for the scope, to anchor
	// "all history" ranges.
	Op string
}

// RollupResult carries either bucket rows (query) or range bounds (bounds).
type RollupResult struct {
	Rows []slurm.RollupRow
	// Bounds op: earliest and latest terminal job end times, unix seconds.
	// HasBounds is false when the scope has no history at all.
	MinEnd    int64
	MaxEnd    int64
	HasBounds bool
}

// rollupFieldCount is the per-row field count on the CLI wire.
const rollupFieldCount = 19

// runSreportRollup serves `sreport cluster Rollup -P -n start=<unix>
// end=<unix> resolution=<secs> scope=<scope> [name=<name>] [op=bounds]`.
// Output is always parsable2-style rows (the flags are accepted for
// symmetry with the other reports).
func runSreportRollup(cl *slurm.Cluster, args []string) (string, error) {
	var (
		opts   RollupOptions
		gotRes bool
		err    error
	)
	parseInt := func(arg, prefix string) (int64, error) {
		v, err := strconv.ParseInt(strings.TrimPrefix(arg, prefix), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("slurmcli: sreport rollup: bad %s%q", prefix, strings.TrimPrefix(arg, prefix))
		}
		return v, nil
	}
	for _, arg := range args {
		switch {
		case strings.HasPrefix(arg, "start="):
			if opts.Start, err = parseInt(arg, "start="); err != nil {
				return "", err
			}
		case strings.HasPrefix(arg, "end="):
			if opts.End, err = parseInt(arg, "end="); err != nil {
				return "", err
			}
		case strings.HasPrefix(arg, "resolution="):
			if opts.Resolution, err = parseInt(arg, "resolution="); err != nil {
				return "", err
			}
			gotRes = true
		case strings.HasPrefix(arg, "scope="):
			opts.Scope = strings.TrimPrefix(arg, "scope=")
		case strings.HasPrefix(arg, "name="):
			opts.Name = strings.TrimPrefix(arg, "name=")
		case strings.HasPrefix(arg, "op="):
			opts.Op = strings.TrimPrefix(arg, "op=")
		case arg == "-P" || arg == "--parsable2" || arg == "-n" || arg == "--noheader":
		default:
			return "", fmt.Errorf("slurmcli: sreport rollup: unknown option %q", arg)
		}
	}
	validScope := false
	for _, s := range slurm.RollupScopes {
		if opts.Scope == s {
			validScope = true
			break
		}
	}
	if !validScope {
		return "", fmt.Errorf("slurmcli: sreport rollup: bad scope %q", opts.Scope)
	}

	if opts.Op == "bounds" {
		minEnd, maxEnd, ok := cl.DBD.RollupBounds(opts.Scope, opts.Name)
		if !ok {
			return "", nil
		}
		return fmt.Sprintf("%d|%d\n", minEnd, maxEnd), nil
	}
	if opts.Op != "" && opts.Op != "query" {
		return "", fmt.Errorf("slurmcli: sreport rollup: unknown op %q", opts.Op)
	}
	if !gotRes || (opts.Resolution != slurm.RollupMinute &&
		opts.Resolution != slurm.RollupHour && opts.Resolution != slurm.RollupDay) {
		return "", fmt.Errorf("slurmcli: sreport rollup: bad resolution %d", opts.Resolution)
	}

	rows := cl.DBD.RollupQuery(opts.Scope, opts.Name, opts.Start, opts.End, opts.Resolution)
	var b strings.Builder
	b.Grow(len(rows) * 96)
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%d|%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			r.BucketStart, r.Scope, r.Name,
			r.Jobs, r.Completed, r.Failed, r.Started,
			r.WallSec, r.CPUSec, r.GPUSec, r.WaitSec,
			r.TimeEffMicro, r.TimeEffN, r.CPUEffMicro, r.CPUEffN,
			r.MemEffMicro, r.MemEffN, r.GPUEffMicro, r.GPUEffN)
	}
	return b.String(), nil
}

// SreportRollup runs one rollup read over the CLI transport and parses the
// result.
func SreportRollup(r Runner, opts RollupOptions) (RollupResult, error) {
	args := []string{"cluster", "Rollup", "-P", "-n",
		"scope=" + opts.Scope,
	}
	if opts.Name != "" {
		args = append(args, "name="+opts.Name)
	}
	if opts.Op == "bounds" {
		args = append(args, "op=bounds")
	} else {
		args = append(args,
			"start="+strconv.FormatInt(opts.Start, 10),
			"end="+strconv.FormatInt(opts.End, 10),
			"resolution="+strconv.FormatInt(opts.Resolution, 10))
	}
	out, err := r.Run("sreport", args...)
	if err != nil {
		return RollupResult{}, err
	}
	var res RollupResult
	if opts.Op == "bounds" {
		var f [2]string
		err := forEachLine(out, func(line string) error {
			if isBlank(line) {
				return nil
			}
			if n := splitInto(line, '|', f[:]); n != len(f) {
				return fmt.Errorf("slurmcli: rollup bounds row has %d fields: %q", n, line)
			}
			var err error
			if res.MinEnd, err = strconv.ParseInt(f[0], 10, 64); err != nil {
				return fmt.Errorf("slurmcli: bad rollup bound %q", f[0])
			}
			if res.MaxEnd, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				return fmt.Errorf("slurmcli: bad rollup bound %q", f[1])
			}
			res.HasBounds = true
			return nil
		})
		return res, err
	}
	res.Rows = make([]slurm.RollupRow, 0, countLines(out))
	var f [rollupFieldCount]string
	err = forEachLine(out, func(line string) error {
		if isBlank(line) {
			return nil
		}
		if n := splitInto(line, '|', f[:]); n != len(f) {
			return fmt.Errorf("slurmcli: rollup row has %d fields: %q", n, line)
		}
		var row slurm.RollupRow
		row.Scope, row.Name = f[1], f[2]
		ints := [...]*int64{
			&row.BucketStart, nil, nil,
			&row.Jobs, &row.Completed, &row.Failed, &row.Started,
			&row.WallSec, &row.CPUSec, &row.GPUSec, &row.WaitSec,
			&row.TimeEffMicro, &row.TimeEffN, &row.CPUEffMicro, &row.CPUEffN,
			&row.MemEffMicro, &row.MemEffN, &row.GPUEffMicro, &row.GPUEffN,
		}
		for i, dst := range ints {
			if dst == nil {
				continue
			}
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				return fmt.Errorf("slurmcli: bad rollup field %d %q", i, f[i])
			}
			*dst = v
		}
		res.Rows = append(res.Rows, row)
		return nil
	})
	if err != nil {
		return RollupResult{}, err
	}
	return res, nil
}
