package slurmcli

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ooddash/internal/slurm"
)

// runSinfo emulates sinfo. Supported options: -h/--noheader, -p/--partition,
// -o/--format with a verb subset, and --json, which serializes the full
// per-partition utilization summary the way modern Slurm's `sinfo --json`
// exposes machine-readable state.
func runSinfo(cl *slurm.Cluster, args []string) (string, error) {
	var (
		noHeader  bool
		partition string
		format    = "%9P %5a %10l %6D %10T %N"
		asJSON    bool
	)
	sc := &argScanner{args: args}
	for {
		arg, ok := sc.next()
		if !ok {
			break
		}
		switch flagName(arg) {
		case "-h", "--noheader":
			noHeader = true
		case "-p", "--partition":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			partition = v
		case "-o", "--format":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			format = v
		case "--json":
			asJSON = true
		default:
			return "", fmt.Errorf("slurmcli: sinfo: unknown option %q", arg)
		}
	}

	if asJSON {
		util := cl.Ctl.Utilization()
		if partition != "" {
			filtered := util[:0]
			for _, u := range util {
				if u.Name == partition {
					filtered = append(filtered, u)
				}
			}
			util = filtered
		}
		return marshalSinfoJSON(util)
	}

	// Text mode: group nodes by (partition, effective state).
	nodes := cl.Ctl.Nodes()
	parts := cl.Ctl.Partitions()
	type groupKey struct {
		part  string
		state slurm.NodeState
	}
	groups := make(map[groupKey][]string)
	for _, n := range nodes {
		st := n.EffectiveState()
		for _, p := range n.Partitions {
			if partition != "" && p != partition {
				continue
			}
			k := groupKey{part: p, state: st}
			groups[k] = append(groups[k], n.Name)
		}
	}
	partMeta := make(map[string]*slurm.Partition, len(parts))
	for _, p := range parts {
		partMeta[p.Name] = p
	}

	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].state < keys[j].state
	})

	var b strings.Builder
	if !noHeader {
		b.WriteString(sinfoLine(format, sinfoRow{}, true))
		b.WriteByte('\n')
	}
	for _, k := range keys {
		p := partMeta[k.part]
		row := sinfoRow{
			partition: k.part,
			isDefault: p != nil && p.Default,
			avail:     "up",
			timeLimit: "UNLIMITED",
			nodes:     len(groups[k]),
			state:     k.state,
			nodeList:  slurm.NodeNameRange(groups[k]),
		}
		if p != nil {
			if !p.Up() {
				row.avail = "down"
			}
			if p.MaxTime > 0 {
				row.timeLimit = FormatDuration(p.MaxTime)
			}
		}
		b.WriteString(sinfoLine(format, row, false))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

type sinfoRow struct {
	partition string
	isDefault bool
	avail     string
	timeLimit string
	nodes     int
	state     slurm.NodeState
	nodeList  string
}

func sinfoLine(format string, r sinfoRow, header bool) string {
	var b strings.Builder
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		width := 0
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			width = width*10 + int(format[i]-'0')
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		var val string
		if header {
			switch verb {
			case 'P':
				val = "PARTITION"
			case 'a':
				val = "AVAIL"
			case 'l':
				val = "TIMELIMIT"
			case 'D':
				val = "NODES"
			case 't', 'T':
				val = "STATE"
			case 'N':
				val = "NODELIST"
			}
		} else {
			switch verb {
			case 'P':
				val = r.partition
				if r.isDefault {
					val += "*"
				}
			case 'a':
				val = r.avail
			case 'l':
				val = r.timeLimit
			case 'D':
				val = fmt.Sprintf("%d", r.nodes)
			case 't':
				val = strings.ToLower(string(r.state))
			case 'T':
				val = string(r.state)
			case 'N':
				val = r.nodeList
			default:
				val = "%" + string(verb)
			}
		}
		if width > 0 && len(val) < width {
			val = val + strings.Repeat(" ", width-len(val))
		}
		b.WriteString(val)
	}
	return strings.TrimRight(b.String(), " ")
}

// sinfoJSON mirrors the subset of `sinfo --json` the dashboard consumes.
type sinfoJSON struct {
	Partitions []sinfoJSONPartition `json:"partitions"`
}

type sinfoJSONPartition struct {
	Name        string         `json:"name"`
	State       string         `json:"state"`
	TotalNodes  int            `json:"total_nodes"`
	TotalCPUs   int            `json:"total_cpus"`
	AllocCPUs   int            `json:"alloc_cpus"`
	TotalGPUs   int            `json:"total_gpus"`
	AllocGPUs   int            `json:"alloc_gpus"`
	PendingJobs int            `json:"pending_jobs"`
	RunningJobs int            `json:"running_jobs"`
	NodeStates  map[string]int `json:"node_states"`
}

func marshalSinfoJSON(util []slurm.PartitionUtilization) (string, error) {
	doc := sinfoJSON{Partitions: make([]sinfoJSONPartition, 0, len(util))}
	for _, u := range util {
		p := sinfoJSONPartition{
			Name:        u.Name,
			State:       u.State,
			TotalNodes:  u.TotalNodes,
			TotalCPUs:   u.TotalCPUs,
			AllocCPUs:   u.AllocCPUs,
			TotalGPUs:   u.TotalGPUs,
			AllocGPUs:   u.AllocGPUs,
			PendingJobs: u.PendingJobs,
			RunningJobs: u.RunningJobs,
			NodeStates:  make(map[string]int, len(u.NodesByState)),
		}
		for st, n := range u.NodesByState {
			p.NodeStates[string(st)] = n
		}
		doc.Partitions = append(doc.Partitions, p)
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("slurmcli: sinfo --json: %v", err)
	}
	return string(out), nil
}

// PartitionStatus is the typed view of one partition from `sinfo --json`.
type PartitionStatus struct {
	Name        string
	State       string
	TotalNodes  int
	TotalCPUs   int
	AllocCPUs   int
	TotalGPUs   int
	AllocGPUs   int
	PendingJobs int
	RunningJobs int
	NodeStates  map[string]int
}

// CPUPercent returns allocated CPUs as a percentage of total.
func (p PartitionStatus) CPUPercent() float64 {
	if p.TotalCPUs == 0 {
		return 0
	}
	return 100 * float64(p.AllocCPUs) / float64(p.TotalCPUs)
}

// GPUPercent returns allocated GPUs as a percentage of total.
func (p PartitionStatus) GPUPercent() float64 {
	if p.TotalGPUs == 0 {
		return 0
	}
	return 100 * float64(p.AllocGPUs) / float64(p.TotalGPUs)
}

// Sinfo runs `sinfo --json` through the Runner and parses the result.
func Sinfo(r Runner) ([]PartitionStatus, error) {
	out, err := r.Run("sinfo", "--json")
	if err != nil {
		return nil, err
	}
	var doc sinfoJSON
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		return nil, fmt.Errorf("slurmcli: parsing sinfo --json: %v", err)
	}
	statuses := make([]PartitionStatus, 0, len(doc.Partitions))
	for _, p := range doc.Partitions {
		statuses = append(statuses, PartitionStatus{
			Name: p.Name, State: p.State,
			TotalNodes: p.TotalNodes,
			TotalCPUs:  p.TotalCPUs, AllocCPUs: p.AllocCPUs,
			TotalGPUs: p.TotalGPUs, AllocGPUs: p.AllocGPUs,
			PendingJobs: p.PendingJobs, RunningJobs: p.RunningJobs,
			NodeStates: p.NodeStates,
		})
	}
	return statuses, nil
}
