package slurmcli

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFormatParseTime(t *testing.T) {
	ts := time.Date(2026, 7, 1, 8, 30, 15, 0, time.UTC)
	s := FormatTime(ts)
	if s != "2026-07-01T08:30:15" {
		t.Fatalf("FormatTime = %q", s)
	}
	back, err := ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ts) {
		t.Fatalf("round trip %v -> %v", ts, back)
	}
}

func TestParseTimeSpecials(t *testing.T) {
	for _, s := range []string{"", "Unknown", "N/A", "None"} {
		got, err := ParseTime(s)
		if err != nil || !got.IsZero() {
			t.Errorf("ParseTime(%q) = %v, %v; want zero, nil", s, got, err)
		}
	}
	if _, err := ParseTime("yesterday"); err == nil {
		t.Error("ParseTime(\"yesterday\"): expected error")
	}
	if got := FormatTime(time.Time{}); got != "Unknown" {
		t.Errorf("FormatTime(zero) = %q, want Unknown", got)
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "00:00:00"},
		{90 * time.Second, "00:01:30"},
		{3*time.Hour + 25*time.Minute + 45*time.Second, "03:25:45"},
		{26 * time.Hour, "1-02:00:00"},
		{96 * time.Hour, "4-00:00:00"},
		{-time.Minute, "00:00:00"},
	}
	for _, tc := range tests {
		if got := FormatDuration(tc.d); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	tests := []struct {
		in   string
		want time.Duration
	}{
		{"00:00:00", 0},
		{"00:01:30", 90 * time.Second},
		{"1-02:00:00", 26 * time.Hour},
		{"05:30", 5*time.Minute + 30*time.Second},
		{"UNLIMITED", 0},
		{"", 0},
	}
	for _, tc := range tests {
		got, err := ParseDuration(tc.in)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"abc", "1:2:3:4", "x-00:00:00"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q): expected error", bad)
		}
	}
}

func TestDurationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := time.Duration(r.Int63n(10*86400)) * time.Second
		back, err := ParseDuration(FormatDuration(d))
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatParseMem(t *testing.T) {
	tests := []struct {
		mb   int64
		want string
	}{
		{512, "512M"},
		{1024, "1G"},
		{1536, "1536M"},
		{256 * 1024, "256G"},
	}
	for _, tc := range tests {
		s := FormatMem(tc.mb)
		if s != tc.want {
			t.Errorf("FormatMem(%d) = %q, want %q", tc.mb, s, tc.want)
		}
		back, err := ParseMem(s)
		if err != nil || back != tc.mb {
			t.Errorf("ParseMem(%q) = %d, %v; want %d", s, back, err, tc.mb)
		}
	}
	if got, err := ParseMem("1.50G"); err != nil || got != 1536 {
		t.Errorf("ParseMem(1.50G) = %d, %v; want 1536", got, err)
	}
	if got, err := ParseMem(""); err != nil || got != 0 {
		t.Errorf("ParseMem(\"\") = %d, %v", got, err)
	}
}
