package slurmcli

import (
	"errors"
	"testing"
	"time"
)

type scriptedRunner struct {
	out string
	err error
}

func (r scriptedRunner) Run(string, ...string) (string, error) { return r.out, r.err }

func TestDaemonFor(t *testing.T) {
	cases := map[string]string{
		"squeue": "slurmctld", "sinfo": "slurmctld", "scontrol": "slurmctld",
		"scancel": "slurmctld", "sdiag": "slurmctld", "sprio": "slurmctld",
		"sacct": "slurmdbd", "sreport": "slurmdbd",
		"made-up": "unknown",
	}
	for cmd, want := range cases {
		if got := DaemonFor(cmd); got != want {
			t.Errorf("DaemonFor(%q) = %q, want %q", cmd, got, want)
		}
	}
}

func TestMeteredRunnerAttributesCalls(t *testing.T) {
	type obs struct {
		command, daemon string
		err             error
	}
	var seen []obs
	m := NewMeteredRunner(scriptedRunner{out: "hello"}, func(command, daemon string, d time.Duration, err error) {
		if d < 0 {
			t.Errorf("negative duration %v", d)
		}
		seen = append(seen, obs{command, daemon, err})
	})
	if out, err := m.Run("squeue", "-u", "alice"); err != nil || out != "hello" {
		t.Fatalf("Run = %q, %v", out, err)
	}
	boom := errors.New("boom")
	m.Next = scriptedRunner{err: boom}
	if _, err := m.Run("sacct"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := []obs{
		{"squeue", "slurmctld", nil},
		{"sacct", "slurmdbd", boom},
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %d calls, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observation[%d] = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

// A nil observer must not panic — the wrapper degrades to pass-through.
func TestMeteredRunnerNilObserver(t *testing.T) {
	m := &MeteredRunner{Next: scriptedRunner{out: "ok"}}
	if out, err := m.Run("sinfo"); err != nil || out != "ok" {
		t.Fatalf("Run = %q, %v", out, err)
	}
}
