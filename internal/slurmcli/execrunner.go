package slurmcli

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"time"
)

// ExecRunner implements Runner with real processes — the production
// configuration, where the dashboard host has Slurm's client commands
// installed and configured for the cluster (§8: the bulk of the system
// relies on Slurm commands available on any OnDemand server).
//
// The simulator-backed SimRunner and this runner are interchangeable
// behind the Runner interface; swapping them is the entire difference
// between the reproduction and a real deployment.
type ExecRunner struct {
	// Dir is the working directory for commands (empty = inherit).
	Dir string
	// Timeout bounds each command; zero means DefaultExecTimeout. The
	// backend's cache sits in front of these calls, so a hung slurmctld
	// degrades one widget instead of wedging request handlers forever.
	Timeout time.Duration
	// Prefix is prepended to every command name, e.g. {"ssh", "login1"}
	// to run the commands on a login node rather than the web host.
	Prefix []string
}

// DefaultExecTimeout bounds Slurm commands when ExecRunner.Timeout is zero.
const DefaultExecTimeout = 30 * time.Second

// Run implements Runner.
func (r *ExecRunner) Run(name string, args ...string) (string, error) {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = DefaultExecTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	argv := append(append([]string(nil), r.Prefix...), name)
	argv = append(argv, args...)
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Dir = r.Dir
	// Without WaitDelay a killed command's children (srun helpers, ssh
	// multiplexers) can hold the output pipes open and block Wait forever.
	cmd.WaitDelay = time.Second
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return "", fmt.Errorf("slurmcli: %s timed out after %v", name, timeout)
		}
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) > 0 {
			return "", fmt.Errorf("slurmcli: %s: %v: %s", name, err, msg)
		}
		return "", fmt.Errorf("slurmcli: %s: %v", name, err)
	}
	return stdout.String(), nil
}
