package slurmcli

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/slurm"
)

// sacctDefaultFields is the field list sacct prints without --format.
const sacctDefaultFields = "JobID,JobName,Partition,Account,AllocCPUS,State,ExitCode"

// runSacct emulates sacct against the accounting daemon. Supported options:
// -u/--user, -A/--accounts (comma list), -S/--starttime, -E/--endtime,
// -s/--state (comma list), -r/--partition, -j/--jobs (comma list),
// --format=<fields>, -P/--parsable2, -n/--noheader, -a/--allusers,
// and --limit (dashboard extension bounding the row count).
func runSacct(cl *slurm.Cluster, args []string) (string, error) {
	var (
		filter   slurm.JobFilter
		fields   = sacctDefaultFields
		parsable bool
		noHeader bool
	)
	sc := &argScanner{args: args}
	for {
		arg, ok := sc.next()
		if !ok {
			break
		}
		switch flagName(arg) {
		case "-u", "--user":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Users = strings.Split(v, ",")
		case "-A", "--accounts":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Accounts = strings.Split(v, ",")
		case "-S", "--starttime":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			t, err := ParseTime(v)
			if err != nil {
				return "", err
			}
			filter.Start = t
		case "-E", "--endtime":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			t, err := ParseTime(v)
			if err != nil {
				return "", err
			}
			filter.End = t
		case "-s", "--state":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			states, err := parseStates(v)
			if err != nil {
				return "", err
			}
			filter.States = states
		case "-r", "--partition":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			filter.Partition = v
		case "-j", "--jobs":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			for _, idStr := range strings.Split(v, ",") {
				// Accept both raw IDs and array "123_4" display IDs.
				if base, _, ok := strings.Cut(idStr, "_"); ok {
					idStr = base
					n, err := strconv.ParseInt(idStr, 10, 64)
					if err != nil {
						return "", fmt.Errorf("slurmcli: bad job id %q", idStr)
					}
					filter.ArrayJobID = slurm.JobID(n)
					continue
				}
				n, err := strconv.ParseInt(idStr, 10, 64)
				if err != nil {
					return "", fmt.Errorf("slurmcli: bad job id %q", idStr)
				}
				filter.JobIDs = append(filter.JobIDs, slurm.JobID(n))
			}
		case "--format":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			fields = v
		case "-P", "--parsable2":
			parsable = true
		case "-n", "--noheader":
			noHeader = true
		case "-a", "--allusers":
			filter.Users = nil
		case "-X", "--allocations":
			// Accepted for compatibility; the simulator has no job steps, so
			// every record is already allocation-level.
		case "--limit":
			v, err := sc.value(arg)
			if err != nil {
				return "", err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return "", fmt.Errorf("slurmcli: bad --limit %q", v)
			}
			filter.Limit = n
		default:
			return "", fmt.Errorf("slurmcli: sacct: unknown option %q", arg)
		}
	}

	now := cl.Ctl.Now()
	jobs := cl.DBD.Jobs(filter, now)
	fieldList := strings.Split(fields, ",")
	sep := "|"
	if !parsable {
		sep = "  "
	}
	var b strings.Builder
	if !noHeader {
		for i, f := range fieldList {
			if i > 0 {
				b.WriteString(sep)
			}
			b.WriteString(f)
		}
		b.WriteByte('\n')
	}
	for _, j := range jobs {
		for i, f := range fieldList {
			if i > 0 {
				b.WriteString(sep)
			}
			v, err := sacctField(f, j, now)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// sacctField renders one sacct field for a job. Field names are
// case-insensitive, matching sacct.
func sacctField(name string, j *slurm.Job, now time.Time) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "jobid":
		return j.DisplayID(), nil
	case "jobidraw":
		return strconv.FormatInt(int64(j.ID), 10), nil
	case "jobname":
		return j.Name, nil
	case "user":
		return j.User, nil
	case "account":
		return j.Account, nil
	case "partition":
		return j.Partition, nil
	case "qos":
		return j.QOS, nil
	case "state":
		return string(j.State), nil
	case "reason":
		return string(j.Reason), nil
	case "submit":
		return FormatTime(j.SubmitTime), nil
	case "eligible":
		return FormatTime(j.EligibleTime), nil
	case "start":
		return FormatTime(j.StartTime), nil
	case "end":
		return FormatTime(j.EndTime), nil
	case "elapsed":
		return FormatDuration(j.Elapsed(now)), nil
	case "timelimit":
		return FormatDuration(j.TimeLimit), nil
	case "reqcpus":
		return strconv.Itoa(j.ReqTRES.CPUs), nil
	case "alloccpus":
		return strconv.Itoa(j.AllocTRES.CPUs), nil
	case "reqmem":
		return FormatMem(j.ReqTRES.MemMB), nil
	case "reqtres":
		return j.ReqTRES.String(), nil
	case "alloctres":
		return j.AllocTRES.String(), nil
	case "nnodes":
		return strconv.Itoa(len(j.Nodes)), nil
	case "nodelist":
		if len(j.Nodes) == 0 {
			return "None assigned", nil
		}
		return slurm.NodeNameRange(j.Nodes), nil
	case "exitcode":
		return fmt.Sprintf("%d:0", j.ExitCode), nil
	case "maxrss":
		if j.StartTime.IsZero() {
			return "", nil
		}
		return fmt.Sprintf("%dK", j.MaxRSSMB()*1024), nil
	case "totalcpu":
		return FormatDuration(j.CPUTimeUsed(now)), nil
	case "priority":
		return strconv.FormatInt(j.Priority, 10), nil
	case "workdir":
		return j.WorkDir, nil
	case "tresusageinave":
		// Job-level GPU utilization, the paper's §9 "GPU utilization
		// metrics" extension: average gres/gpuutil as a percentage, the way
		// recent Slurm releases report it via AcctGatherProfile plugins.
		if j.AllocTRES.GPUs == 0 || j.StartTime.IsZero() {
			return "", nil
		}
		return fmt.Sprintf("gres/gpuutil=%.1f", j.Profile.GPUUtilization*100), nil
	case "comment":
		// Open OnDemand interactive sessions are tagged in the job comment;
		// the dashboard's session tab (§7) reads them back from here.
		if j.InteractiveApp == "" {
			return "", nil
		}
		return fmt.Sprintf("ood:app=%s;session=%s", j.InteractiveApp, j.SessionID), nil
	default:
		return "", fmt.Errorf("slurmcli: sacct: unknown field %q", name)
	}
}

// sacctQueryFields is the field list the typed Sacct wrapper requests.
const sacctQueryFields = "JobIDRaw,JobID,JobName,User,Account,Partition,QOS," +
	"State,Reason,Submit,Start,End,Elapsed,Timelimit,ReqCPUS,AllocCPUS," +
	"ReqMem,AllocTRES,NodeList,ExitCode,MaxRSS,TotalCPU,TRESUsageInAve,Comment,WorkDir"

// SacctRow is one parsed accounting record with everything the dashboard's
// My Jobs table, Job Performance Metrics, and Job Overview pages need.
type SacctRow struct {
	RawID      slurm.JobID
	JobID      string // display ID ("1234" or "1234_7")
	Name       string
	User       string
	Account    string
	Partition  string
	QOS        string
	State      slurm.JobState
	Reason     slurm.PendingReason
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
	Elapsed    time.Duration
	TimeLimit  time.Duration
	ReqCPUs    int
	AllocCPUs  int
	ReqMemMB   int64
	AllocTRES  slurm.TRES
	NodeList   string
	ExitCode   int
	MaxRSSMB   int64
	TotalCPU   time.Duration
	// GPUUtilPercent is the mean GPU utilization percentage, negative when
	// not measured (no GPUs or job never ran) — the §9 extension metric.
	GPUUtilPercent float64
	Comment        string
	WorkDir        string
}

// IsArrayTask reports whether the row is an array task ("1234_7").
func (r *SacctRow) IsArrayTask() bool { return strings.Contains(r.JobID, "_") }

// GPUHours returns the GPU hours the job has consumed so far.
func (r *SacctRow) GPUHours() float64 {
	return r.Elapsed.Hours() * float64(r.AllocTRES.GPUs)
}

// WaitTime returns how long the job waited before starting; for jobs still
// pending it is the time since submission (now must be supplied by caller
// via the dashboard layer, so pending rows use Elapsed==0 and report zero).
func (r *SacctRow) WaitTime() time.Duration {
	if r.StartTime.IsZero() {
		return 0
	}
	return r.StartTime.Sub(r.SubmitTime)
}

// SessionInfo extracts the Open OnDemand app and session ID from the
// comment, returning ok=false for batch jobs.
func (r *SacctRow) SessionInfo() (app, session string, ok bool) {
	const prefix = "ood:"
	if !strings.HasPrefix(r.Comment, prefix) {
		return "", "", false
	}
	for _, kv := range strings.Split(r.Comment[len(prefix):], ";") {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			continue
		}
		switch k {
		case "app":
			app = v
		case "session":
			session = v
		}
	}
	return app, session, app != ""
}

// SacctOptions are the filters the typed Sacct wrapper supports.
type SacctOptions struct {
	User      string
	Accounts  []string
	States    []slurm.JobState
	Start     time.Time
	End       time.Time
	Partition string
	JobIDs    []slurm.JobID
	ArrayJob  string // display ID of an array to expand, e.g. "1234_0"'s base
	AllUsers  bool
	Limit     int
}

// Sacct runs sacct through the Runner and parses the rows.
func Sacct(r Runner, opts SacctOptions) ([]SacctRow, error) {
	args := []string{"-P", "-n", "-X", "--format", sacctQueryFields}
	if opts.User != "" {
		args = append(args, "-u", opts.User)
	}
	if opts.AllUsers {
		args = append(args, "-a")
	}
	if len(opts.Accounts) > 0 {
		args = append(args, "-A", strings.Join(opts.Accounts, ","))
	}
	if len(opts.States) > 0 {
		names := make([]string, len(opts.States))
		for i, s := range opts.States {
			names[i] = string(s)
		}
		args = append(args, "-s", strings.Join(names, ","))
	}
	if !opts.Start.IsZero() {
		args = append(args, "-S", FormatTime(opts.Start))
	}
	if !opts.End.IsZero() {
		args = append(args, "-E", FormatTime(opts.End))
	}
	if opts.Partition != "" {
		args = append(args, "-r", opts.Partition)
	}
	if len(opts.JobIDs) > 0 || opts.ArrayJob != "" {
		ids := make([]string, 0, len(opts.JobIDs)+1)
		for _, id := range opts.JobIDs {
			ids = append(ids, strconv.FormatInt(int64(id), 10))
		}
		if opts.ArrayJob != "" {
			ids = append(ids, opts.ArrayJob+"_0")
		}
		args = append(args, "-j", strings.Join(ids, ","))
	}
	if opts.Limit > 0 {
		args = append(args, "--limit", strconv.Itoa(opts.Limit))
	}
	out, err := r.Run("sacct", args...)
	if err != nil {
		return nil, err
	}
	return parseSacctOutput(out)
}

// sacctNumFields is the field count of sacctQueryFields, computed once at
// init instead of re-splitting the format string on every parse call.
var sacctNumFields = strings.Count(sacctQueryFields, ",") + 1

func parseSacctOutput(out string) ([]SacctRow, error) {
	rows := make([]SacctRow, 0, countLines(out))
	f := make([]string, sacctNumFields)
	err := forEachLine(out, func(line string) error {
		if isBlank(line) {
			return nil
		}
		if n := splitInto(line, '|', f); n != len(f) {
			return fmt.Errorf("slurmcli: sacct row has %d fields, want %d: %q", n, len(f), line)
		}
		var (
			row SacctRow
			err error
		)
		rawID, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return fmt.Errorf("slurmcli: bad raw job id %q", f[0])
		}
		row.RawID = slurm.JobID(rawID)
		row.JobID, row.Name, row.User = f[1], f[2], f[3]
		row.Account, row.Partition, row.QOS = f[4], f[5], f[6]
		row.State = slurm.JobState(f[7])
		row.Reason = slurm.PendingReason(f[8])
		if row.SubmitTime, err = ParseTime(f[9]); err != nil {
			return err
		}
		if row.StartTime, err = ParseTime(f[10]); err != nil {
			return err
		}
		if row.EndTime, err = ParseTime(f[11]); err != nil {
			return err
		}
		if row.Elapsed, err = ParseDuration(f[12]); err != nil {
			return err
		}
		if row.TimeLimit, err = ParseDuration(f[13]); err != nil {
			return err
		}
		if row.ReqCPUs, err = strconv.Atoi(f[14]); err != nil {
			return fmt.Errorf("slurmcli: bad ReqCPUS %q", f[14])
		}
		if row.AllocCPUs, err = strconv.Atoi(f[15]); err != nil {
			return fmt.Errorf("slurmcli: bad AllocCPUS %q", f[15])
		}
		if row.ReqMemMB, err = ParseMem(f[16]); err != nil {
			return err
		}
		if row.AllocTRES, err = slurm.ParseTRES(f[17]); err != nil {
			return err
		}
		row.NodeList = f[18]
		codeStr, _, _ := strings.Cut(f[19], ":")
		if row.ExitCode, err = strconv.Atoi(codeStr); err != nil {
			return fmt.Errorf("slurmcli: bad exit code %q", f[19])
		}
		if f[20] != "" {
			kb, err := strconv.ParseInt(strings.TrimSuffix(f[20], "K"), 10, 64)
			if err != nil {
				return fmt.Errorf("slurmcli: bad MaxRSS %q", f[20])
			}
			row.MaxRSSMB = kb / 1024
		}
		if row.TotalCPU, err = ParseDuration(f[21]); err != nil {
			return err
		}
		row.GPUUtilPercent = -1
		if _, util, ok := strings.Cut(f[22], "gres/gpuutil="); ok {
			if row.GPUUtilPercent, err = strconv.ParseFloat(util, 64); err != nil {
				return fmt.Errorf("slurmcli: bad TRESUsageInAve %q", f[22])
			}
		}
		row.Comment, row.WorkDir = f[23], f[24]
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows, nil
}
