package slurmcli

import "strings"

// Shared zero-allocation parsing helpers for the pipe-delimited command
// outputs (squeue, sacct, sreport). These parsers run on every cache fill
// feeding the dashboard's widgets; the original strings.Split-per-line
// pattern allocated a fresh line slice for the whole output plus a fresh
// field slice per row, which dominated the parse profile on large clusters.
// Instead, lines are walked with IndexByte and fields are split into a
// caller-owned reusable slice; the field strings themselves are substrings
// of the command output (no copies), exactly as with strings.Split.

// forEachLine calls fn for every newline-terminated segment of out,
// including a trailing unterminated one, without allocating a line slice.
// Iteration stops at the first non-nil error, which is returned.
func forEachLine(out string, fn func(line string) error) error {
	for len(out) > 0 {
		line := out
		if i := strings.IndexByte(out, '\n'); i >= 0 {
			line, out = out[:i], out[i+1:]
		} else {
			out = ""
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}

// splitInto splits line on sep into dst, returning the number of fields. A
// line with more fields than dst holds returns len(dst)+1 (enough for the
// caller's exact-count check to fail) without writing past the slice. The
// stored strings alias line.
func splitInto(line string, sep byte, dst []string) int {
	n := 0
	for {
		i := strings.IndexByte(line, sep)
		if i < 0 {
			if n < len(dst) {
				dst[n] = line
			}
			n++
			return n
		}
		if n < len(dst) {
			dst[n] = line[:i]
		}
		n++
		if n > len(dst) {
			return n
		}
		line = line[i+1:]
	}
}

// countLines estimates the row count of command output for preallocation:
// the newline count, plus one for a trailing unterminated line.
func countLines(out string) int {
	n := strings.Count(out, "\n")
	if len(out) > 0 && out[len(out)-1] != '\n' {
		n++
	}
	return n
}

// isBlank reports whether a line contains only whitespace, without the
// strings.TrimSpace comparison allocating anything (it never did, but this
// also skips the full trim on the common all-blank/empty cases).
func isBlank(line string) bool {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
