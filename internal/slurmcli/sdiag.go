package slurmcli

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ooddash/internal/slurm"
)

// runSdiag emulates sdiag: a dump of scheduler/daemon statistics. The
// simulator reports its per-RPC counters for both daemons, which is what
// the load experiments read through the command surface.
func runSdiag(cl *slurm.Cluster, args []string) (string, error) {
	for _, a := range args {
		if a != "" {
			return "", fmt.Errorf("slurmcli: sdiag: unknown option %q", a)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "*** %s statistics ***\n", "slurmctld")
	fmt.Fprintf(&b, "Jobs in memory: %d\n", cl.Ctl.ActiveJobCount())
	writeCounts(&b, cl.Ctl.Stats().Snapshot())
	fmt.Fprintf(&b, "\n*** %s statistics ***\n", "slurmdbd")
	fmt.Fprintf(&b, "Job records: %d\n", cl.DBD.JobCount())
	writeCounts(&b, cl.DBD.Stats().Snapshot())
	return b.String(), nil
}

func writeCounts(b *strings.Builder, counts map[slurm.RPCKind]int64) {
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(b, "%s: %d\n", k, counts[slurm.RPCKind(k)])
	}
}

// DaemonDiag is the parsed sdiag output for one daemon.
type DaemonDiag struct {
	Name      string
	Records   int64 // jobs in memory (ctld) or job records (dbd)
	RPCCounts map[string]int64
}

// Sdiag runs sdiag through the Runner and parses both daemon sections.
func Sdiag(r Runner) (ctld, dbd DaemonDiag, err error) {
	out, err := r.Run("sdiag")
	if err != nil {
		return ctld, dbd, err
	}
	cur := &ctld
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "*** "):
			name := strings.TrimSuffix(strings.TrimPrefix(line, "*** "), " statistics ***")
			if name == "slurmdbd" {
				cur = &dbd
			}
			cur.Name = name
			cur.RPCCounts = make(map[string]int64)
		default:
			key, val, ok := strings.Cut(line, ": ")
			if !ok {
				continue
			}
			n, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil {
				return ctld, dbd, fmt.Errorf("slurmcli: sdiag: bad count %q", line)
			}
			if key == "Jobs in memory" || key == "Job records" {
				cur.Records = n
				continue
			}
			cur.RPCCounts[key] = n
		}
	}
	return ctld, dbd, nil
}
