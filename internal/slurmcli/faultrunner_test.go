package slurmcli

import (
	"errors"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// echoRunner is a trivial inner Runner recording calls.
type echoRunner struct{ calls int }

func (e *echoRunner) Run(name string, args ...string) (string, error) {
	e.calls++
	return "out:" + name, nil
}

func TestFaultRunnerOutage(t *testing.T) {
	inner := &echoRunner{}
	fr := NewFaultRunner(inner, 1, func(time.Duration) {})
	fr.SetRules(FaultRule{Command: "squeue", Outage: true})

	if _, err := fr.Run("squeue"); !errors.Is(err, slurm.ErrUnavailable) {
		t.Fatalf("outage err = %v, want ErrUnavailable", err)
	}
	if inner.calls != 0 {
		t.Fatal("outage still reached the inner runner")
	}
	// Other commands are untouched.
	if out, err := fr.Run("sacct"); err != nil || out != "out:sacct" {
		t.Fatalf("sacct = %q %v", out, err)
	}

	// Clearing the rules restores service.
	fr.SetRules()
	if out, err := fr.Run("squeue"); err != nil || out != "out:squeue" {
		t.Fatalf("post-recovery squeue = %q %v", out, err)
	}
}

func TestFaultRunnerErrorRateIsDeterministic(t *testing.T) {
	run := func() []bool {
		fr := NewFaultRunner(&echoRunner{}, 42, func(time.Duration) {})
		fr.SetRules(FaultRule{ErrorRate: 0.5})
		var fails []bool
		for i := 0; i < 50; i++ {
			_, err := fr.Run("sinfo")
			fails = append(fails, err != nil)
		}
		return fails
	}
	first, second := run(), run()
	var failed int
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("same seed produced a different fault sequence")
		}
		if first[i] {
			failed++
		}
	}
	if failed == 0 || failed == 50 {
		t.Fatalf("0.5 error rate failed %d of 50 calls", failed)
	}
}

func TestFaultRunnerBurst(t *testing.T) {
	fr := NewFaultRunner(&echoRunner{}, 1, func(time.Duration) {})
	fr.SetRules(FaultRule{Command: "sdiag", BurstLen: 2, BurstEvery: 5})
	var got []bool
	for i := 0; i < 10; i++ {
		_, err := fr.Run("sdiag")
		got = append(got, err != nil)
	}
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("burst pattern = %v, want %v", got, want)
		}
	}
}

func TestFaultRunnerLatencyChargesSleepHook(t *testing.T) {
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	fr := NewFaultRunner(&echoRunner{}, 1, clock.Sleep)
	fr.SetRules(FaultRule{Latency: 150 * time.Millisecond, LatencyJitter: 50 * time.Millisecond})

	before := clock.Now()
	if _, err := fr.Run("squeue"); err != nil {
		t.Fatal(err)
	}
	slept := clock.Now().Sub(before)
	if slept < 150*time.Millisecond || slept > 200*time.Millisecond {
		t.Fatalf("slept %v, want within [150ms, 200ms]", slept)
	}

	sts := fr.Stats()
	if len(sts) != 1 || sts[0].Command != "squeue" || sts[0].Calls != 1 || sts[0].SleptFor != slept {
		t.Fatalf("stats = %+v (slept %v)", sts, slept)
	}
}

func TestFaultRunnerFirstRuleWins(t *testing.T) {
	fr := NewFaultRunner(&echoRunner{}, 1, func(time.Duration) {})
	fr.SetRules(
		FaultRule{Command: "squeue"}, // no-fault override for squeue
		FaultRule{Outage: true},      // everything else is down
	)
	if _, err := fr.Run("squeue"); err != nil {
		t.Fatalf("squeue should be exempted: %v", err)
	}
	if _, err := fr.Run("sacct"); !errors.Is(err, slurm.ErrUnavailable) {
		t.Fatalf("sacct err = %v, want ErrUnavailable", err)
	}
	sts := fr.Stats()
	if len(sts) != 2 {
		t.Fatalf("stats = %+v", sts)
	}
	if sts[0].Command != "sacct" || sts[0].Faults != 1 || sts[1].Command != "squeue" || sts[1].Faults != 0 {
		t.Fatalf("stats = %+v", sts)
	}
}
