package slurmcli

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// newTestRunner builds a small cluster with a live mix of jobs and returns
// the runner plus handles for direct assertions.
func newTestRunner(t testing.TB) (*SimRunner, *slurm.Cluster, *slurm.SimClock) {
	t.Helper()
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := slurm.ClusterConfig{
		Name: "testcluster",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "c", Count: 4, CPUs: 8, MemMB: 16 * 1024, Features: []string{"milan", "avx2"}, Partitions: []string{"cpu"}},
			{NamePrefix: "g", Count: 1, CPUs: 16, MemMB: 64 * 1024, GPUs: 2, GPUType: "a100", Partitions: []string{"gpu"}},
		},
		Partitions: []slurm.PartitionSpec{
			{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
			{Name: "gpu", MaxTime: 12 * time.Hour, Priority: 100},
		},
		QOS: []slurm.QOS{{Name: "normal"}},
		Associations: []slurm.Association{
			{Account: "lab-a", GrpCPULimit: 24},
			{Account: "lab-a", User: "alice"},
			{Account: "lab-b"},
			{Account: "lab-b", User: "carol"},
		},
	}
	cl, err := slurm.NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	return NewSimRunner(cl), cl, clock
}

func mustSubmit(t testing.TB, cl *slurm.Cluster, req slurm.SubmitRequest) slurm.JobID {
	t.Helper()
	if req.Name == "" {
		req.Name = "job"
	}
	if req.QOS == "" {
		req.QOS = "normal"
	}
	if req.TimeLimit == 0 {
		req.TimeLimit = time.Hour
	}
	if req.Profile.CPUUtilization == 0 {
		req.Profile.CPUUtilization = 0.8
	}
	if req.Profile.MemUtilization == 0 {
		req.Profile.MemUtilization = 0.5
	}
	id, err := cl.Ctl.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSqueueTypedRoundTrip(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "train-model", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8 * 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	entries, err := Squeue(r, SqueueOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Name != "train-model" || e.User != "alice" || e.Account != "lab-a" {
		t.Fatalf("entry = %+v", e)
	}
	if e.State != slurm.StateRunning {
		t.Fatalf("state = %s", e.State)
	}
	if e.CPUs != 4 || e.MemMB != 8*1024 {
		t.Fatalf("cpus=%d mem=%d", e.CPUs, e.MemMB)
	}
	if e.JobID == "" || !strings.HasPrefix(e.NodeList, "c") {
		t.Fatalf("jobID=%q nodeList=%q", e.JobID, e.NodeList)
	}
	_ = id
}

func TestSqueuePendingShowsReason(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	// Saturate, then submit a blocked job.
	for i := 0; i < 4; i++ {
		mustSubmit(t, cl, slurm.SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
			Profile: slurm.UsageProfile{ActualDuration: time.Hour},
		})
	}
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	entries, err := Squeue(r, SqueueOptions{User: "carol", States: []slurm.JobState{slurm.StatePending}})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("pending entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Reason != slurm.ReasonResources {
		t.Fatalf("reason = %s, want Resources", e.Reason)
	}
	if e.NodeList != "(Resources)" {
		t.Fatalf("nodeList = %q, want (Resources)", e.NodeList)
	}
}

func TestSqueueDefaultTableOutput(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "hello", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	out, err := r.Run("squeue")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "JOBID") || !strings.Contains(lines[0], "NODELIST(REASON)") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "hello") || !strings.Contains(lines[1], " R ") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSqueueUnknownOption(t *testing.T) {
	r, _, _ := newTestRunner(t)
	if _, err := r.Run("squeue", "--bogus"); err == nil {
		t.Fatal("expected error for unknown option")
	}
}

func TestSinfoTypedUtilization(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192, GPUs: 1},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	parts, err := Sinfo(r)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]PartitionStatus)
	for _, p := range parts {
		byName[p.Name] = p
	}
	cpu, ok := byName["cpu"]
	if !ok {
		t.Fatalf("missing cpu partition: %+v", parts)
	}
	if cpu.TotalCPUs != 32 || cpu.AllocCPUs != 8 || cpu.RunningJobs != 1 {
		t.Fatalf("cpu = %+v", cpu)
	}
	if got := cpu.CPUPercent(); got != 25 {
		t.Fatalf("cpu%% = %v", got)
	}
	gpu := byName["gpu"]
	if gpu.TotalGPUs != 2 || gpu.AllocGPUs != 1 || gpu.GPUPercent() != 50 {
		t.Fatalf("gpu = %+v", gpu)
	}
	if gpu.NodeStates["MIXED"] != 1 {
		t.Fatalf("gpu node states = %+v", gpu.NodeStates)
	}
}

func TestSinfoTextOutput(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	cl.Ctl.Tick()
	out, err := r.Run("sinfo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PARTITION") {
		t.Fatalf("missing header:\n%s", out)
	}
	// The default cpu partition is starred, and idle nodes grouped.
	if !strings.Contains(out, "cpu*") {
		t.Fatalf("default partition not starred:\n%s", out)
	}
	if !strings.Contains(out, "c[001-004]") {
		t.Fatalf("node grouping missing:\n%s", out)
	}
}

func TestSacctTypedRoundTrip(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "analysis", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:   slurm.TRES{CPUs: 4, MemMB: 8 * 1024},
		TimeLimit: 2 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: time.Hour,
			CPUUtilization: 0.5, MemUtilization: 0.25},
	})
	cl.Ctl.Tick()
	clock.Advance(61 * time.Minute)
	cl.Ctl.Tick()

	rows, err := Sacct(r, SacctOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	row := rows[0]
	if row.Name != "analysis" || row.State != slurm.StateCompleted {
		t.Fatalf("row = %+v", row)
	}
	if row.Elapsed != time.Hour || row.TimeLimit != 2*time.Hour {
		t.Fatalf("elapsed=%v limit=%v", row.Elapsed, row.TimeLimit)
	}
	if row.ReqCPUs != 4 || row.AllocCPUs != 4 {
		t.Fatalf("req=%d alloc=%d", row.ReqCPUs, row.AllocCPUs)
	}
	// 4 CPUs x 1h x 0.5 = 2h of CPU time.
	if row.TotalCPU != 2*time.Hour {
		t.Fatalf("TotalCPU = %v, want 2h", row.TotalCPU)
	}
	// MaxRSS = 25% of 8 GiB = 2 GiB.
	if row.MaxRSSMB != 2*1024 {
		t.Fatalf("MaxRSSMB = %d, want 2048", row.MaxRSSMB)
	}
	if row.WaitTime() != 0 {
		t.Fatalf("WaitTime = %v, want 0 (scheduled immediately)", row.WaitTime())
	}
}

func TestSacctTimeWindow(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "old", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	cl.Ctl.Tick()
	clock.Advance(3 * time.Hour)
	cl.Ctl.Tick()
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "new", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	cl.Ctl.Tick()
	clock.Advance(20 * time.Minute)
	cl.Ctl.Tick()

	now := cl.Ctl.Now()
	rows, err := Sacct(r, SacctOptions{User: "alice", Start: now.Add(-time.Hour), End: now})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "new" {
		t.Fatalf("windowed rows = %+v", rows)
	}
}

func TestSacctSessionComment(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "sys/dashboard/jupyter", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:        slurm.TRES{CPUs: 2, MemMB: 4096},
		InteractiveApp: "jupyter", SessionID: "b4f9c2",
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	rows, err := Sacct(r, SacctOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	app, sess, ok := rows[0].SessionInfo()
	if !ok || app != "jupyter" || sess != "b4f9c2" {
		t.Fatalf("session info = %q %q %v", app, sess, ok)
	}
}

func TestSacctArrayExpansion(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	first := mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "sweep", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512}, ArraySize: 4,
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	rows, err := Sacct(r, SacctOptions{ArrayJob: fmt.Sprintf("%d", first), AllUsers: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("array rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if !row.IsArrayTask() {
			t.Fatalf("row %q not an array task", row.JobID)
		}
	}
}

func TestScontrolShowNodeTyped(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192, GPUs: 1},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.75},
	})
	cl.Ctl.Tick()
	d, err := ShowNode(r, "g001")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "g001" || d.CPUTotal != 16 || d.CPUAlloc != 4 {
		t.Fatalf("detail = %+v", d)
	}
	if d.GPUTotal != 2 || d.GPUAlloc != 1 || d.GPUType != "a100" {
		t.Fatalf("gpu detail = %+v", d)
	}
	if d.State != slurm.NodeMixed {
		t.Fatalf("state = %s", d.State)
	}
	if d.MemMB != 64*1024 || d.AllocMemMB != 8192 {
		t.Fatalf("mem = %d/%d", d.AllocMemMB, d.MemMB)
	}
	if len(d.Partitions) != 1 || d.Partitions[0] != "gpu" {
		t.Fatalf("partitions = %v", d.Partitions)
	}
	if d.CPULoad != 3 { // 4 cpus x 0.75
		t.Fatalf("load = %v", d.CPULoad)
	}
}

func TestShowAllNodes(t *testing.T) {
	r, _, _ := newTestRunner(t)
	nodes, err := ShowAllNodes(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(nodes))
	}
}

func TestShowNodeUnknown(t *testing.T) {
	r, _, _ := newTestRunner(t)
	if _, err := ShowNode(r, "zz999"); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestScontrolShowJobTyped(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "detail-me", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 4, MemMB: 8 * 1024},
		WorkDir:    "/home/alice/proj",
		StdoutPath: "/home/alice/proj/out.log",
		StderrPath: "/home/alice/proj/err.log",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	d, err := ShowJob(r, id)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != id || d.Name != "detail-me" || d.User != "alice" {
		t.Fatalf("detail = %+v", d)
	}
	if d.State != slurm.StateRunning || d.NodeList == "" {
		t.Fatalf("state=%s nodes=%q", d.State, d.NodeList)
	}
	if d.WorkDir != "/home/alice/proj" || d.StdoutPath != "/home/alice/proj/out.log" {
		t.Fatalf("paths = %q %q", d.WorkDir, d.StdoutPath)
	}
	if d.MemMB != 8*1024 || d.NumCPUs != 4 {
		t.Fatalf("mem=%d cpus=%d", d.MemMB, d.NumCPUs)
	}
}

func TestScontrolShowJobFallsBackToAccounting(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Minute},
	})
	cl.Ctl.Tick()
	clock.Advance(30 * time.Minute) // past controller retention
	cl.Ctl.Tick()
	d, err := ShowJob(r, id)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != slurm.StateCompleted {
		t.Fatalf("state = %s, want COMPLETED from accounting", d.State)
	}
}

func TestShowAssocs(t *testing.T) {
	r, _, _ := newTestRunner(t)
	assocs, err := ShowAssocs(r, "lab-a", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(assocs) != 2 { // account-level + alice
		t.Fatalf("assocs = %+v", assocs)
	}
	var acct *AssocDetail
	for i := range assocs {
		if assocs[i].User == "" {
			acct = &assocs[i]
		}
	}
	if acct == nil || acct.GrpCPULimit != 24 {
		t.Fatalf("account assoc = %+v", acct)
	}
}

func TestScancelThroughRunner(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	if err := Scancel(r, id, "carol"); err == nil {
		t.Fatal("scancel by non-owner should fail")
	}
	if err := Scancel(r, id, "alice"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Ctl.Job(id).State; got != slurm.StateCancelled {
		t.Fatalf("state = %s", got)
	}
}

func TestUnknownCommand(t *testing.T) {
	r, _, _ := newTestRunner(t)
	if _, err := r.Run("sbacon"); err == nil {
		t.Fatal("expected command-not-found error")
	}
}

func TestParseScontrolBlocksMultiple(t *testing.T) {
	out := "NodeName=a001 State=IDLE\n   CPUTot=8\nNodeName=a002 State=MIXED\n   CPUTot=8\n"
	blocks := ParseScontrolBlocks(out)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	if blocks[0]["NodeName"] != "a001" || blocks[1]["State"] != "MIXED" {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestParseScontrolBlocksKeepsEmbeddedEquals(t *testing.T) {
	out := "JobId=5 JobName=x\n   Comment=ood:app=jupyter;session=abc\n"
	blocks := ParseScontrolBlocks(out)
	if got := blocks[0]["Comment"]; got != "ood:app=jupyter;session=abc" {
		t.Fatalf("Comment = %q", got)
	}
}

func TestSdiagRoundTrip(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	// Generate some query traffic to count.
	if _, err := Squeue(r, SqueueOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Sacct(r, SacctOptions{AllUsers: true}); err != nil {
		t.Fatal(err)
	}
	ctld, dbd, err := Sdiag(r)
	if err != nil {
		t.Fatal(err)
	}
	if ctld.Name != "slurmctld" || dbd.Name != "slurmdbd" {
		t.Fatalf("names = %q %q", ctld.Name, dbd.Name)
	}
	if ctld.Records != 1 || dbd.Records != 1 {
		t.Fatalf("records = %d %d", ctld.Records, dbd.Records)
	}
	if ctld.RPCCounts["REQUEST_JOB_INFO"] == 0 {
		t.Fatalf("ctld counts = %+v", ctld.RPCCounts)
	}
	if dbd.RPCCounts["DBD_GET_JOBS"] == 0 {
		t.Fatalf("dbd counts = %+v", dbd.RPCCounts)
	}
}

func TestShowReservations(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	// Empty system.
	res, err := ShowReservations(r)
	if err != nil || res != nil {
		t.Fatalf("empty = %+v, %v", res, err)
	}
	start := clock.Now().Add(2 * time.Hour)
	if _, err := cl.Ctl.ScheduleMaintenance("pm-2026-07", start, start.Add(6*time.Hour),
		[]string{"c001", "c002"}, "network switch swap"); err != nil {
		t.Fatal(err)
	}
	res, err = ShowReservations(r)
	if err != nil || len(res) != 1 {
		t.Fatalf("res = %+v, %v", res, err)
	}
	d := res[0]
	if d.Name != "pm-2026-07" || !d.Start.Equal(start) {
		t.Fatalf("detail = %+v", d)
	}
	if d.Nodes != "c[001-002]" {
		t.Fatalf("nodes = %q", d.Nodes)
	}
	if d.Comment != "network switch swap" {
		t.Fatalf("comment = %q", d.Comment)
	}
}

func TestParseScontrolBlocksFreeText(t *testing.T) {
	out := "NodeName=a001 State=DRAIN\n   OS=Linux 5.14.0-rcac x86\n   Reason=bad dimm pair B2\n"
	blk := ParseScontrolBlocks(out)[0]
	if blk["OS"] != "Linux 5.14.0-rcac x86" {
		t.Fatalf("OS = %q", blk["OS"])
	}
	if blk["Reason"] != "bad dimm pair B2" {
		t.Fatalf("Reason = %q", blk["Reason"])
	}
}

func TestNodeDetailKeepsMultiWordOSAndReason(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	if err := cl.Ctl.DrainNode("c003", "bad dimm pair B2"); err != nil {
		t.Fatal(err)
	}
	cl.Ctl.Tick()
	d, err := ShowNode(r, "c003")
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "bad dimm pair B2" {
		t.Fatalf("reason = %q", d.Reason)
	}
	if !strings.Contains(d.OS, " ") {
		t.Fatalf("OS lost spaces: %q", d.OS)
	}
}

func TestSprioRoundTrip(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	// Saturate the cluster, then queue two jobs with different ages.
	for i := 0; i < 4; i++ {
		mustSubmit(t, cl, slurm.SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
			Profile: slurm.UsageProfile{ActualDuration: time.Hour},
		})
	}
	older := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	clock.Advance(10 * time.Minute)
	newer := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()

	rows, err := Sprio(r, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("pending rows = %+v", rows)
	}
	// Highest priority first: the older job leads on the age factor.
	if rows[0].JobID != older || rows[1].JobID != newer {
		t.Fatalf("order = %d then %d, want %d then %d", rows[0].JobID, rows[1].JobID, older, newer)
	}
	if rows[0].Age < 10 {
		t.Fatalf("age factor = %d, want >= 10 minutes", rows[0].Age)
	}
	if rows[0].Priority != 1000+rows[0].Age+rows[0].QOS+rows[0].Partition+rows[0].FairShare {
		t.Fatalf("factors don't sum: %+v", rows[0])
	}
	// User filter.
	mine, err := Sprio(r, "alice")
	if err != nil || len(mine) != 1 || mine[0].User != "alice" {
		t.Fatalf("filtered = %+v, %v", mine, err)
	}
}

func TestSreportAccountUtilization(t *testing.T) {
	r, cl, clock := newTestRunner(t)
	// alice (lab-a): 4 CPUs x 1h at full utilization = 4 core-hours.
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 1024}, TimeLimit: 2 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1.0, MemUtilization: 0.5},
	})
	// carol (lab-b): GPU job, 2 GPUs x 30 min = 1 GPU-hour.
	mustSubmit(t, cl, slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192, GPUs: 2}, TimeLimit: time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	cl.Ctl.Tick()
	clock.Advance(2 * time.Hour)
	cl.Ctl.Tick()

	now := cl.Ctl.Now()
	rows, err := SreportAccountUtilization(r, now.Add(-24*time.Hour), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Account != "lab-a" || rows[0].User != "alice" {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[0].CPUHours < 3.99 || rows[0].CPUHours > 4.01 {
		t.Fatalf("alice core-hours = %v", rows[0].CPUHours)
	}
	if rows[1].GPUHours < 0.99 || rows[1].GPUHours > 1.01 {
		t.Fatalf("carol gpu-hours = %v", rows[1].GPUHours)
	}
	// A window before the jobs charges nothing.
	empty, err := SreportAccountUtilization(r, now.Add(-48*time.Hour), now.Add(-24*time.Hour))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty window = %+v, %v", empty, err)
	}
}

func TestScontrolSuspendResume(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	if _, err := r.Run("scontrol", "suspend", fmt.Sprintf("%d", id), "user=alice"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Ctl.Job(id).State; got != slurm.StateSuspended {
		t.Fatalf("state = %s", got)
	}
	if _, err := r.Run("scontrol", "resume", fmt.Sprintf("%d", id), "user=alice"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Ctl.Job(id).State; got != slurm.StateRunning {
		t.Fatalf("state = %s", got)
	}
}

func TestShowJobConstraint(t *testing.T) {
	r, cl, _ := newTestRunner(t)
	id := mustSubmit(t, cl, slurm.SubmitRequest{
		Name: "constrained", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512}, Constraint: "milan,avx2",
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	cl.Ctl.Tick()
	d, err := ShowJob(r, id)
	if err != nil {
		t.Fatal(err)
	}
	if d.Constraint != "milan,avx2" {
		t.Fatalf("constraint = %q", d.Constraint)
	}
}
