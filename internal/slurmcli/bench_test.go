package slurmcli

import (
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// benchRunner builds a runner over a moderately busy cluster.
func benchRunner(b *testing.B) (*SimRunner, *slurm.Cluster) {
	b.Helper()
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	cfg := slurm.ClusterConfig{
		Name: "bench",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "a", Count: 128, CPUs: 128, MemMB: 256 * 1024, Partitions: []string{"cpu"}},
		},
		Partitions:   []slurm.PartitionSpec{{Name: "cpu", MaxTime: 96 * time.Hour, Default: true}},
		QOS:          []slurm.QOS{{Name: "normal"}},
		Associations: []slurm.Association{{Account: "lab"}, {Account: "lab", User: "u"}},
	}
	cl, err := slurm.NewCluster(cfg, clock)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := cl.Ctl.Submit(slurm.SubmitRequest{
			Name: "bench", User: "u", Account: "lab", Partition: "cpu", QOS: "normal",
			ReqTRES: slurm.TRES{CPUs: 16, MemMB: 8192}, TimeLimit: 12 * time.Hour,
			Profile: slurm.UsageProfile{ActualDuration: 6 * time.Hour,
				CPUUtilization: 0.8, MemUtilization: 0.5},
		}); err != nil {
			b.Fatal(err)
		}
	}
	cl.Ctl.Tick()
	return NewSimRunner(cl), cl
}

func BenchmarkSqueueFormatAndParse(b *testing.B) {
	r, _ := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := Squeue(r, SqueueOptions{User: "u"})
		if err != nil || len(entries) == 0 {
			b.Fatalf("entries=%d err=%v", len(entries), err)
		}
	}
}

func BenchmarkSacctFormatAndParse(b *testing.B) {
	r, _ := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Sacct(r, SacctOptions{User: "u"})
		if err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

func BenchmarkShowAllNodes(b *testing.B) {
	r, _ := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes, err := ShowAllNodes(r)
		if err != nil || len(nodes) != 128 {
			b.Fatalf("nodes=%d err=%v", len(nodes), err)
		}
	}
}

func BenchmarkSinfoJSON(b *testing.B) {
	r, _ := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := Sinfo(r)
		if err != nil || len(parts) == 0 {
			b.Fatalf("parts=%d err=%v", len(parts), err)
		}
	}
}

// Parse-only benchmarks: the command output is produced once, so allocs/op
// measure just the parser. These guard the forEachLine/splitInto conversion
// against regressions back to a Split-per-line pattern.

func BenchmarkParseSqueueOutput(b *testing.B) {
	r, _ := benchRunner(b)
	out, err := r.Run("squeue", "-h", "-t", "all", "-o", squeueParseFormat)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := parseSqueueOutput(out)
		if err != nil || len(entries) == 0 {
			b.Fatalf("entries=%d err=%v", len(entries), err)
		}
	}
}

func BenchmarkParseSacctOutput(b *testing.B) {
	r, _ := benchRunner(b)
	out, err := r.Run("sacct", "-P", "-n", "-X", "--format", sacctQueryFields, "-a")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := parseSacctOutput(out)
		if err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

func BenchmarkFormatDuration(b *testing.B) {
	d := 26*time.Hour + 13*time.Minute + 7*time.Second
	for i := 0; i < b.N; i++ {
		if s := FormatDuration(d); s == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkParseDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseDuration("1-02:13:07"); err != nil {
			b.Fatal(err)
		}
	}
}
