package slurmcli

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ooddash/internal/slurm"
)

// Runner runs a Slurm command and returns its stdout. The dashboard backend
// depends only on this interface; SimRunner serves it from the simulator,
// and a production deployment would implement it with os/exec.
type Runner interface {
	Run(name string, args ...string) (string, error)
}

// SimRunner implements Runner against a simulated cluster.
type SimRunner struct {
	Cluster *slurm.Cluster
}

// NewSimRunner returns a Runner serving commands from the cluster.
func NewSimRunner(cl *slurm.Cluster) *SimRunner {
	return &SimRunner{Cluster: cl}
}

// IsUnavailable reports whether err is an availability failure — the daemon
// behind the command could not be reached (simulated outage, injected fault,
// or a timed-out attempt) — as opposed to a semantic error from a healthy
// daemon (unknown job, bad arguments). The dashboard's retry and
// circuit-breaker policies only act on availability failures.
func IsUnavailable(err error) bool {
	return errors.Is(err, slurm.ErrUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Run dispatches to the emulated command. Unknown commands return an error
// the way a missing binary would. Commands fail first when the daemon that
// backs them is down or degraded: squeue/sinfo/scontrol/sdiag/sprio/scancel
// need slurmctld, sacct/sreport need slurmdbd — the same blast radii a real
// outage has.
func (r *SimRunner) Run(name string, args ...string) (string, error) {
	return r.RunContext(context.Background(), name, args...)
}

// RunContext is Run carrying the request context into the daemon that serves
// the command, so its server-side handling records a child span attributed
// to slurmctld or slurmdbd — the in-process equivalent of trace propagation
// across an RPC boundary.
func (r *SimRunner) RunContext(ctx context.Context, name string, args ...string) (string, error) {
	if r.Cluster == nil {
		return "", fmt.Errorf("slurmcli: runner has no cluster")
	}
	switch name {
	case "sacct", "sreport":
		return r.Cluster.DBD.Handle(ctx, name, func() (string, error) {
			return r.dispatch(name, args)
		})
	case "squeue", "sinfo", "scontrol", "scancel", "sdiag", "sprio":
		return r.Cluster.Ctl.Handle(ctx, name, func() (string, error) {
			return r.dispatch(name, args)
		})
	default:
		return "", fmt.Errorf("slurmcli: %s: command not found", name)
	}
}

// dispatch runs the emulated command body (after the daemon's availability
// gate has passed).
func (r *SimRunner) dispatch(name string, args []string) (string, error) {
	switch name {
	case "squeue":
		return runSqueue(r.Cluster, args)
	case "sinfo":
		return runSinfo(r.Cluster, args)
	case "sacct":
		return runSacct(r.Cluster, args)
	case "scontrol":
		return runScontrol(r.Cluster, args)
	case "scancel":
		return runScancel(r.Cluster, args)
	case "sdiag":
		return runSdiag(r.Cluster, args)
	case "sprio":
		return runSprio(r.Cluster, args)
	case "sreport":
		return runSreport(r.Cluster, args)
	default:
		return "", fmt.Errorf("slurmcli: %s: command not found", name)
	}
}

// argScanner walks an argv list supporting both "-u user" and "--flag=value"
// spellings, which is how the Slurm tools accept options.
type argScanner struct {
	args []string
	pos  int
}

func (s *argScanner) next() (string, bool) {
	if s.pos >= len(s.args) {
		return "", false
	}
	a := s.args[s.pos]
	s.pos++
	return a, true
}

// value returns the option value for the flag just read: either the text
// after "=" in flag itself, or the next argument.
func (s *argScanner) value(flag string) (string, error) {
	if _, v, ok := strings.Cut(flag, "="); ok {
		return v, nil
	}
	v, ok := s.next()
	if !ok {
		return "", fmt.Errorf("slurmcli: option %s requires a value", flag)
	}
	return v, nil
}

// flagName strips any "=value" suffix for switch matching.
func flagName(arg string) string {
	name, _, _ := strings.Cut(arg, "=")
	return name
}

// parseStates parses a comma-separated squeue/sacct state list. The special
// value "all" returns nil (match every state).
func parseStates(s string) ([]slurm.JobState, error) {
	if strings.EqualFold(s, "all") {
		return nil, nil
	}
	var out []slurm.JobState
	for _, part := range strings.Split(s, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		if part == "" {
			continue
		}
		found := false
		for _, st := range slurm.AllJobStates {
			if string(st) == part || st.ShortCode() == part {
				out = append(out, st)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("slurmcli: invalid job state %q", part)
		}
	}
	return out, nil
}
