package slurmcli

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/trace"
)

// FaultRule describes one fault-injection behavior. Rules are matched
// first-to-last against the command name; the first match applies.
type FaultRule struct {
	// Command the rule applies to ("squeue", "sacct", ...); empty matches
	// every command.
	Command string
	// Latency is added to every matching call, plus up to LatencyJitter
	// drawn uniformly from the runner's seeded RNG.
	Latency       time.Duration
	LatencyJitter time.Duration
	// ErrorRate is the probability (0..1) a matching call fails with an
	// availability error instead of running.
	ErrorRate float64
	// Outage fails every matching call — a full daemon outage.
	Outage bool
	// BurstLen/BurstEvery produce deterministic error bursts: of every
	// BurstEvery consecutive matching calls, the first BurstLen fail. Both
	// must be > 0 to take effect.
	BurstLen   int
	BurstEvery int
}

// FaultStats counts one command's traffic through a FaultRunner.
type FaultStats struct {
	Command  string
	Calls    int64
	Faults   int64
	SleptFor time.Duration
}

// FaultRunner wraps a Runner with configurable fault injection: added
// latency, random transient errors, deterministic error bursts, and full
// outages, per command. All randomness comes from one seeded RNG so a given
// (seed, request sequence) reproduces the same faults; latency goes through
// an injectable sleep hook so tests can charge it to a simulated clock.
type FaultRunner struct {
	inner Runner
	sleep func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	rules []FaultRule
	calls map[string]int64 // per-command call counter driving bursts
	stats map[string]*FaultStats
}

// NewFaultRunner wraps inner. seed fixes the RNG; sleep nil means
// time.Sleep.
func NewFaultRunner(inner Runner, seed int64, sleep func(time.Duration)) *FaultRunner {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &FaultRunner{
		inner: inner,
		sleep: sleep,
		rng:   rand.New(rand.NewSource(seed)),
		calls: make(map[string]int64),
		stats: make(map[string]*FaultStats),
	}
}

// SetRules replaces the rule list. Safe to call while requests are in
// flight, which is how failure drills flip a source down mid-run.
func (f *FaultRunner) SetRules(rules ...FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append([]FaultRule(nil), rules...)
}

// Run applies the first matching rule, then delegates to the wrapped
// runner. Injected failures wrap slurm.ErrUnavailable so the resilience
// layer classifies them as availability faults.
func (f *FaultRunner) Run(name string, args ...string) (string, error) {
	return f.RunContext(context.Background(), name, args...)
}

// RunContext implements CtxRunner. Injected latency is recorded as a span
// named for the daemon the command targets ("slurmdbd.fault" for a slowed
// sacct), so a trace attributes drill-induced delay to the daemon being
// drilled rather than leaving an unexplained gap in the waterfall.
func (f *FaultRunner) RunContext(ctx context.Context, name string, args ...string) (string, error) {
	delay, fail := f.plan(name)
	if delay > 0 {
		if trace.SpanFromContext(ctx) != nil {
			_, sp := trace.StartSpan(ctx, faultSpanName(name))
			sp.SetAttr("command", name)
			sp.SetAttr("injected", "true")
			f.sleep(delay)
			sp.End()
		} else {
			f.sleep(delay)
		}
	}
	if fail {
		return "", fmt.Errorf("slurmcli: %s: injected fault: %w", name, slurm.ErrUnavailable)
	}
	return RunWith(ctx, f.inner, name, args...)
}

// faultSpanName attributes injected latency to the daemon serving the
// command.
func faultSpanName(command string) string {
	switch DaemonFor(command) {
	case "slurmdbd":
		return "slurmdbd.fault"
	case "slurmctld":
		return "slurmctld.fault"
	}
	return "daemon.fault"
}

// plan decides, under the lock, what happens to this call: how long it
// sleeps and whether it fails. The sleep itself happens outside the lock so
// concurrent commands overlap like real daemon latency does.
func (f *FaultRunner) plan(name string) (delay time.Duration, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[name]++
	st := f.stats[name]
	if st == nil {
		st = &FaultStats{Command: name}
		f.stats[name] = st
	}
	st.Calls++
	for i := range f.rules {
		r := &f.rules[i]
		if r.Command != "" && r.Command != name {
			continue
		}
		delay = r.Latency
		if r.LatencyJitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(r.LatencyJitter) + 1))
		}
		switch {
		case r.Outage:
			fail = true
		case r.BurstLen > 0 && r.BurstEvery > 0:
			fail = (f.calls[name]-1)%int64(r.BurstEvery) < int64(r.BurstLen)
		case r.ErrorRate > 0:
			fail = f.rng.Float64() < r.ErrorRate
		}
		break
	}
	if fail {
		st.Faults++
	}
	st.SleptFor += delay
	return delay, fail
}

// Stats returns per-command counters, sorted by command name.
func (f *FaultRunner) Stats() []FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FaultStats, 0, len(f.stats))
	for _, st := range f.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Command < out[j].Command })
	return out
}
