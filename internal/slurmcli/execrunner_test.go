package slurmcli

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// writeStub drops an executable shell script named like a Slurm command
// into dir.
func writeStub(t *testing.T, dir, name, script string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+script), 0o755); err != nil {
		t.Fatal(err)
	}
}

func execTestSetup(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("shell stubs need a POSIX shell")
	}
	dir := t.TempDir()
	t.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))
	return dir
}

func TestExecRunnerRunsRealProcesses(t *testing.T) {
	dir := execTestSetup(t)
	writeStub(t, dir, "squeue", `echo "1001|RUNNING"`)
	r := &ExecRunner{}
	out, err := r.Run("squeue", "-h")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1001|RUNNING" {
		t.Fatalf("out = %q", out)
	}
}

func TestExecRunnerSurfacesStderr(t *testing.T) {
	dir := execTestSetup(t)
	writeStub(t, dir, "sacct", `echo "sacct: error: slurmdbd unreachable" >&2; exit 1`)
	r := &ExecRunner{}
	_, err := r.Run("sacct", "-P")
	if err == nil || !strings.Contains(err.Error(), "slurmdbd unreachable") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecRunnerTimeout(t *testing.T) {
	dir := execTestSetup(t)
	writeStub(t, dir, "sinfo", `sleep 5`)
	r := &ExecRunner{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := r.Run("sinfo")
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not enforced")
	}
}

func TestExecRunnerPrefix(t *testing.T) {
	dir := execTestSetup(t)
	// The "ssh" stub proves the prefix path: it echoes its argv so the
	// test can see the command was routed through the prefix.
	writeStub(t, dir, "fakessh", `echo "via $1: $2 $3"`)
	r := &ExecRunner{Prefix: []string{"fakessh", "login1"}}
	out, err := r.Run("squeue", "-h")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "via login1: squeue -h" {
		t.Fatalf("out = %q", out)
	}
}

func TestExecRunnerMissingBinary(t *testing.T) {
	execTestSetup(t)
	r := &ExecRunner{}
	if _, err := r.Run("definitely-not-a-slurm-command"); err == nil {
		t.Fatal("expected error for missing binary")
	}
}

// The whole dashboard runs unchanged over ExecRunner stubs: the backend
// cannot tell a scripted Slurm from the simulator, which is the §8
// portability claim in executable form.
func TestTypedWrappersOverExecRunner(t *testing.T) {
	dir := execTestSetup(t)
	writeStub(t, dir, "squeue",
		`echo "2001|interactive|alice|lab-a|cpu|normal|RUNNING|None|2026-07-01T08:00:00|2026-07-01T08:05:00|01:30:00|04:00:00|1|4|8G|N/A|a001"`)
	r := &ExecRunner{}
	entries, err := Squeue(r, SqueueOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	e := entries[0]
	if e.JobID != "2001" || e.User != "alice" || e.CPUs != 4 || e.MemMB != 8*1024 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Elapsed != 90*time.Minute || e.NodeList != "a001" {
		t.Fatalf("entry = %+v", e)
	}
}
