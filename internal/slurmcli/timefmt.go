package slurmcli

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// slurmTimeLayout is the timestamp format Slurm commands print.
const slurmTimeLayout = "2006-01-02T15:04:05"

// FormatTime renders t the way Slurm prints timestamps; the zero time prints
// as "Unknown", matching squeue/sacct output for unset start/end times.
func FormatTime(t time.Time) string {
	if t.IsZero() {
		return "Unknown"
	}
	return t.UTC().Format(slurmTimeLayout)
}

// ParseTime is the inverse of FormatTime. "Unknown", "N/A", "None" and the
// empty string all parse to the zero time.
func ParseTime(s string) (time.Time, error) {
	switch s {
	case "", "Unknown", "N/A", "None", "NONE":
		return time.Time{}, nil
	}
	t, err := time.Parse(slurmTimeLayout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("slurmcli: bad timestamp %q: %v", s, err)
	}
	return t.UTC(), nil
}

// FormatDuration renders d in Slurm's elapsed format: [D-]HH:MM:SS.
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d / time.Second)
	days := total / 86400
	total %= 86400
	h, m, s := total/3600, (total%3600)/60, total%60
	if days > 0 {
		return fmt.Sprintf("%d-%02d:%02d:%02d", days, h, m, s)
	}
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// ParseDuration is the inverse of FormatDuration. It also accepts Slurm's
// MM:SS short form and "UNLIMITED"/"INVALID" (both parse to zero).
func ParseDuration(s string) (time.Duration, error) {
	switch s {
	case "", "UNLIMITED", "INVALID", "Partition_Limit", "NOT_SET":
		return 0, nil
	}
	days := int64(0)
	if d, rest, ok := strings.Cut(s, "-"); ok {
		n, err := strconv.ParseInt(d, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("slurmcli: bad duration %q: %v", s, err)
		}
		days = n
		s = rest
	}
	parts := strings.Split(s, ":")
	var h, m, sec int64
	var err error
	switch len(parts) {
	case 3:
		if h, err = strconv.ParseInt(parts[0], 10, 64); err == nil {
			if m, err = strconv.ParseInt(parts[1], 10, 64); err == nil {
				sec, err = strconv.ParseInt(parts[2], 10, 64)
			}
		}
	case 2:
		if m, err = strconv.ParseInt(parts[0], 10, 64); err == nil {
			sec, err = strconv.ParseInt(parts[1], 10, 64)
		}
	default:
		return 0, fmt.Errorf("slurmcli: bad duration %q", s)
	}
	if err != nil {
		return 0, fmt.Errorf("slurmcli: bad duration %q: %v", s, err)
	}
	return time.Duration(days*86400+h*3600+m*60+sec) * time.Second, nil
}

// FormatMem renders a memory size in MiB the way Slurm prints ReqMem, using
// G when the value is an exact number of GiB.
func FormatMem(mb int64) string {
	if mb >= 1024 && mb%1024 == 0 {
		return fmt.Sprintf("%dG", mb/1024)
	}
	return fmt.Sprintf("%dM", mb)
}

// ParseMem parses "8000M" / "16G" / bare MiB counts.
func ParseMem(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'M', 'm':
		s = s[:len(s)-1]
	case 'G', 'g':
		s = s[:len(s)-1]
		mult = 1024
	case 'T', 't':
		s = s[:len(s)-1]
		mult = 1024 * 1024
	}
	// Slurm sometimes prints fractional gigabytes (e.g. "1.50G").
	if strings.Contains(s, ".") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("slurmcli: bad memory %q: %v", s, err)
		}
		return int64(f * float64(mult)), nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("slurmcli: bad memory %q: %v", s, err)
	}
	return n * mult, nil
}
