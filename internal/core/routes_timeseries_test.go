package core

import (
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestJobPerfTimeseriesBucketsByEndTime(t *testing.T) {
	e := newEnv(t)
	// Three jobs ending in three different hours.
	for i := 0; i < 3; i++ {
		e.submit(slurm.SubmitRequest{
			Name: "hourly", User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}, TimeLimit: 2 * time.Hour,
			Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute,
				CPUUtilization: 0.8, MemUtilization: 0.5},
		})
		e.advance(time.Hour)
	}
	var resp TimeseriesResponse
	e.getJSON("alice", "/api/jobperf/timeseries?range=24h&bucket=hour", &resp)
	if resp.BucketSecs != 3600 {
		t.Fatalf("bucket = %d", resp.BucketSecs)
	}
	if len(resp.Buckets) != 3 {
		t.Fatalf("buckets = %+v", resp.Buckets)
	}
	total := 0
	for i, b := range resp.Buckets {
		total += b.Jobs
		if b.Completed != b.Jobs {
			t.Fatalf("bucket %d: %+v", i, b)
		}
		if b.CPUHours <= 0 || b.WallHours <= 0 {
			t.Fatalf("bucket %d missing usage: %+v", i, b)
		}
		if i > 0 && !resp.Buckets[i].Start.After(resp.Buckets[i-1].Start) {
			t.Fatalf("buckets unordered at %d", i)
		}
	}
	if total != 3 {
		t.Fatalf("total jobs = %d", total)
	}
}

func TestJobPerfTimeseriesFailedCounted(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "boom", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
			FailureState: slurm.StateFailed, ExitCode: 1,
			CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	e.advance(30 * time.Minute)
	var resp TimeseriesResponse
	e.getJSON("alice", "/api/jobperf/timeseries?range=24h&bucket=hour", &resp)
	if len(resp.Buckets) != 1 || resp.Buckets[0].Failed != 1 {
		t.Fatalf("buckets = %+v", resp.Buckets)
	}
}

func TestJobPerfTimeseriesAllRangeAndEmpty(t *testing.T) {
	e := newEnv(t)
	// carol has no jobs: empty series, not an error.
	var resp TimeseriesResponse
	e.getJSON("carol", "/api/jobperf/timeseries?range=all", &resp)
	if len(resp.Buckets) != 0 {
		t.Fatalf("empty series = %+v", resp.Buckets)
	}
	// With history, the "all" range anchors at the first record.
	e.submit(slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
			CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	e.advance(time.Hour)
	e.getJSON("carol", "/api/jobperf/timeseries?range=all", &resp)
	if len(resp.Buckets) != 1 || resp.Buckets[0].Jobs != 1 {
		t.Fatalf("series = %+v", resp.Buckets)
	}
	e.wantStatus("carol", "/api/jobperf/timeseries?bucket=fortnight", 400)
}

func TestAdminHealth(t *testing.T) {
	e := newEnv(t)
	// Generate some cache traffic first.
	e.wantStatus("alice", "/api/system_status", 200)
	e.wantStatus("alice", "/api/system_status", 200)

	var resp HealthResponse
	e.getJSON("staff", "/api/admin/health", &resp)
	if resp.CacheHits == 0 || resp.CacheMisses == 0 {
		t.Fatalf("cache stats = %+v", resp)
	}
	if resp.CacheHitRate <= 0 || resp.CacheHitRate >= 1 {
		t.Fatalf("hit rate = %v", resp.CacheHitRate)
	}
	if len(resp.CtldRPCs) == 0 {
		t.Fatalf("no ctld RPC counters: %+v", resp)
	}
	// Admin-only.
	e.wantStatus("alice", "/api/admin/health", 403)
}

func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/system_status", 200)
	e.wantStatus("alice", "/metrics", 403)
	status, body := e.get("staff", "/metrics")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	text := string(body)
	for _, metric := range []string{
		"ooddash_cache_hits_total", "ooddash_cache_misses_total",
		"ooddash_cache_entries", `ooddash_slurm_rpcs_total{daemon="slurmctld"`,
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, text)
		}
	}
}
