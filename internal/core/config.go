package core

import (
	"time"

	"ooddash/internal/resilience"
	"ooddash/internal/slo"
)

// CacheTTLs holds the per-data-source cache expiration times. The defaults
// reproduce §2.4 of the paper: slow-moving sources (announcements, storage)
// cache for a long time, fast-moving sources backed by slurmctld (squeue)
// for ~30 seconds to balance freshness against controller load.
type CacheTTLs struct {
	Announcements time.Duration // news API (30 min – 1 h in the paper)
	RecentJobs    time.Duration // squeue (≈30 s in the paper)
	SystemStatus  time.Duration // sinfo
	Accounts      time.Duration // scontrol show assoc + squeue per account
	Storage       time.Duration // ZFS/GPFS database
	JobHistory    time.Duration // sacct (My Jobs, Job Performance Metrics)
	ClusterNodes  time.Duration // scontrol show node (all nodes)
	NodeDetail    time.Duration // scontrol show node <name>
	JobDetail     time.Duration // scontrol show job <id>
}

// DefaultTTLs returns the paper's cache configuration.
func DefaultTTLs() CacheTTLs {
	return CacheTTLs{
		Announcements: 30 * time.Minute,
		RecentJobs:    30 * time.Second,
		SystemStatus:  60 * time.Second,
		Accounts:      60 * time.Second,
		Storage:       time.Hour,
		JobHistory:    2 * time.Minute,
		ClusterNodes:  60 * time.Second,
		NodeDetail:    30 * time.Second,
		JobDetail:     15 * time.Second,
	}
}

// ResilienceConfig tunes the fault-handling layer between the cache and the
// data sources.
type ResilienceConfig struct {
	// StaleFor is how long past its TTL a cached value stays servable as a
	// degraded fallback when its source is down. Zero means the default
	// (15 minutes); negative disables stale serving entirely.
	StaleFor time.Duration
	// Policy is the base retry/timeout/breaker policy applied to every data
	// source; zero-valued fields fall back to resilience.DefaultPolicy. The
	// server adds the per-source availability classifier itself.
	Policy resilience.Policy
	// MaxConcurrentFills caps how many upstream fills one data source runs
	// at once (the cold-fill admission gate). Singleflight already collapses
	// a stampede on one key, but per-user keys make a login rush N distinct
	// cold fills; beyond the cap a fill fails fast — degraded if a stale
	// value is retained, 503 + Retry-After otherwise — instead of queueing
	// on the upstream. Zero means the default (32); negative disables the
	// cap.
	MaxConcurrentFills int
}

// Backend mode names for BackendConfig fields.
const (
	// BackendCLI queries Slurm through the command-line emulation (shell
	// out, parse text) — the data path the paper's dashboard uses.
	BackendCLI = "cli"
	// BackendREST queries Slurm through the slurmrestd-style JSON API
	// (internal/slurmrest) — the Palmetto API direction.
	BackendREST = "rest"
)

// BackendConfig selects, per Slurm daemon, which data path the widget
// routes use. Sources are independent so a deployment can migrate squeue
// traffic to REST while sacct stays on the CLI (or vice versa). Empty
// fields mean BackendCLI. Selecting BackendREST for either source requires
// Deps.REST.
type BackendConfig struct {
	// Slurmctld covers squeue, sinfo, scontrol show node/job, and sdiag.
	Slurmctld string
	// Slurmdbd covers sacct.
	Slurmdbd string
}

// PushConfig tunes the live-update push subsystem: the background refresh
// scheduler and the SSE fan-out on /api/events.
type PushConfig struct {
	// Disabled turns the push path off; /api/events then serves only the
	// legacy delta-poll feed and no background refreshing happens.
	Disabled bool
	// Widgets lists the push-enabled widgets (the allowed ?widgets= values
	// and the default subscription set). Empty means DefaultPushWidgets.
	Widgets []string
	// Heartbeat is the SSE keep-alive comment interval (wall clock, since
	// it exists to keep real sockets open). Zero means 15 s; negative
	// disables heartbeats.
	Heartbeat time.Duration
	// Jitter staggers each source's refresh schedule by a deterministic
	// fraction of its TTL in [0, Jitter), so sources registered together do
	// not refresh in lockstep (thundering refresh). Zero means 0.25;
	// negative disables.
	Jitter float64
	// DisableIdlePause keeps refreshing sources that have no subscribers
	// (by default an idle source's schedule pauses until a client returns).
	DisableIdlePause bool
	// DisableDegradedSkip keeps the 1×TTL cadence for degraded sources (by
	// default a source whose refresh came back degraded is stretched to
	// 2×TTL until a fresh result returns).
	DisableDegradedSkip bool
}

// DefaultPushWidgets are the homepage widgets the SSE stream subscribes to
// when the client names none — the §2.4 set whose polling traffic the push
// layer replaces.
func DefaultPushWidgets() []string {
	return []string{"announcements", "recent_jobs", "system_status", "accounts", "storage"}
}

// TraceConfig tunes the span-tracing subsystem (internal/trace). Semantics
// of the zero and negative values are delegated to trace.New: a zero field
// takes the documented default, a negative one disables that feature.
type TraceConfig struct {
	// Sample is the head-sampling probability (0 = record everything,
	// negative = tracing off).
	Sample float64
	// Slow is the always-retain / slow-log threshold (0 = 500ms).
	Slow time.Duration
	// StoreMax bounds retained traces (0 = 256).
	StoreMax int
	// SlowKeepN is the slowest-N-per-widget-per-window retention (0 = 5).
	SlowKeepN int
	// Baseline is the probabilistic keep rate for fast, healthy traces
	// (0 = 0.05).
	Baseline float64
	// Window is the slowest-N tracking window (0 = 1 minute).
	Window time.Duration
}

// SLOConfig tunes the live SLO engine (internal/slo): per-objective SLI
// recording from the instrument middleware, the 28-day error-budget
// ledger, and multi-window burn-rate alerting.
type SLOConfig struct {
	// Disabled turns hit-path SLI recording off (the engine still exists,
	// so /api/admin/slo answers with empty windows). The benchmarks use
	// the runtime toggle (SetSLORecordingDisabled) instead.
	Disabled bool
	// Objectives overrides the objective set; empty means
	// slo.DefaultObjectives(). Invalid objectives fail NewServer.
	Objectives []slo.Objective
}

// Config configures a dashboard Server.
type Config struct {
	// ClusterName appears in page titles and the CSV exports.
	ClusterName string
	// TTLs are the per-source cache expirations; zero-valued fields fall
	// back to DefaultTTLs.
	TTLs CacheTTLs
	// RecentJobsLimit bounds the homepage Recent Jobs widget.
	RecentJobsLimit int
	// LogTailLines bounds the Job Overview output/error views (§7: the
	// interface shows only the most recent 1000 lines).
	LogTailLines int
	// AnnouncementsLimit bounds the homepage Announcements widget.
	AnnouncementsLimit int
	// UserGuideURL is linked from the Accounts widget header.
	UserGuideURL string
	// Backend selects, per Slurm daemon, the CLI or REST data path.
	Backend BackendConfig
	// Resilience tunes timeouts, retries, circuit breaking, and degraded
	// (stale-while-error) serving.
	Resilience ResilienceConfig
	// Push tunes the live-update subsystem (background refresh + SSE).
	Push PushConfig
	// Trace tunes per-request span tracing and tail-based trace retention.
	Trace TraceConfig
	// SLO tunes the live SLO engine (objectives, error budgets, burn-rate
	// alerting).
	SLO SLOConfig
	// PurgeInterval is how often the long-running server sweeps entries past
	// their stale grace window out of the server and rendered-response
	// caches, bounding memory growth. Zero means the default (1 minute);
	// negative disables periodic purging.
	PurgeInterval time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	def := DefaultTTLs()
	if c.ClusterName == "" {
		c.ClusterName = "cluster"
	}
	if c.TTLs.Announcements == 0 {
		c.TTLs.Announcements = def.Announcements
	}
	if c.TTLs.RecentJobs == 0 {
		c.TTLs.RecentJobs = def.RecentJobs
	}
	if c.TTLs.SystemStatus == 0 {
		c.TTLs.SystemStatus = def.SystemStatus
	}
	if c.TTLs.Accounts == 0 {
		c.TTLs.Accounts = def.Accounts
	}
	if c.TTLs.Storage == 0 {
		c.TTLs.Storage = def.Storage
	}
	if c.TTLs.JobHistory == 0 {
		c.TTLs.JobHistory = def.JobHistory
	}
	if c.TTLs.ClusterNodes == 0 {
		c.TTLs.ClusterNodes = def.ClusterNodes
	}
	if c.TTLs.NodeDetail == 0 {
		c.TTLs.NodeDetail = def.NodeDetail
	}
	if c.TTLs.JobDetail == 0 {
		c.TTLs.JobDetail = def.JobDetail
	}
	if c.Backend.Slurmctld == "" {
		c.Backend.Slurmctld = BackendCLI
	}
	if c.Backend.Slurmdbd == "" {
		c.Backend.Slurmdbd = BackendCLI
	}
	if c.RecentJobsLimit == 0 {
		c.RecentJobsLimit = 8
	}
	if c.LogTailLines == 0 {
		c.LogTailLines = 1000
	}
	if c.AnnouncementsLimit == 0 {
		c.AnnouncementsLimit = 10
	}
	if c.UserGuideURL == "" {
		c.UserGuideURL = "https://www.rcac.example.edu/knowledge/accounts"
	}
	switch {
	case c.Resilience.StaleFor == 0:
		c.Resilience.StaleFor = 15 * time.Minute
	case c.Resilience.StaleFor < 0:
		c.Resilience.StaleFor = 0
	}
	switch {
	case c.Resilience.MaxConcurrentFills == 0:
		c.Resilience.MaxConcurrentFills = 32
	case c.Resilience.MaxConcurrentFills < 0:
		c.Resilience.MaxConcurrentFills = 0
	}
	if len(c.Push.Widgets) == 0 {
		c.Push.Widgets = DefaultPushWidgets()
	}
	switch {
	case c.Push.Heartbeat == 0:
		c.Push.Heartbeat = 15 * time.Second
	case c.Push.Heartbeat < 0:
		c.Push.Heartbeat = 0
	}
	switch {
	case c.Push.Jitter == 0:
		c.Push.Jitter = 0.25
	case c.Push.Jitter < 0:
		c.Push.Jitter = 0
	}
	switch {
	case c.PurgeInterval == 0:
		c.PurgeInterval = time.Minute
	case c.PurgeInterval < 0:
		c.PurgeInterval = 0
	}
	return c
}
