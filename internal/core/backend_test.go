package core

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
)

// newRESTBackedEnv builds the standard test env with both Slurm sources
// riding the REST backend instead of the CLI shell-out.
func newRESTBackedEnv(t testing.TB) *env {
	return newEnvDeps(t,
		func(c *Config) {
			c.Backend = BackendConfig{Slurmctld: BackendREST, Slurmdbd: BackendREST}
		},
		nil,
		func(d *Deps, cl *slurm.Cluster) {
			ts := slurmrest.NewTokenStore(d.Users)
			if err := ts.IssueStaff("test-dash-token", "ood-dashboard"); err != nil {
				t.Fatal(err)
			}
			srv := slurmrest.NewServer(cl, ts, slurmrest.Options{})
			d.REST = slurmrest.NewClient(srv, "test-dash-token")
			d.RESTServer = srv
		})
}

// TestBackendSwapEquivalence is the tentpole's contract at the widget
// level: with identical deterministic environments, a REST-backed dashboard
// serves byte-identical JSON to the CLI-backed one on every Slurm-sourced
// widget.
func TestBackendSwapEquivalence(t *testing.T) {
	cli := newEnv(t)
	defer cli.server.Close()
	rest := newRESTBackedEnv(t)
	defer rest.server.Close()
	seedMixedHistory(cli)
	seedMixedHistory(rest)

	paths := []string{
		"/api/recent_jobs",
		"/api/system_status",
		"/api/cluster_status",
		"/api/myjobs?range=24h",
		"/api/myjobs/charts?range=24h",
		"/api/jobperf?range=24h",
		"/api/node/c001",
		"/api/node/c001/jobs",
		"/api/jobperf/timeseries?range=24h&bucket=hour",
		"/api/usage/cluster?range=1y",
		"/api/usage/accounts?range=90d",
		"/api/usage/efficiency?range=30d",
	}
	for _, path := range paths {
		cs, cb := cli.get("alice", path)
		rs, rb := rest.get("alice", path)
		if cs != http.StatusOK || rs != http.StatusOK {
			t.Errorf("%s: status cli=%d rest=%d", path, cs, rs)
			continue
		}
		if string(cb) != string(rb) {
			t.Errorf("%s: bodies differ\ncli:  %s\nrest: %s", path, cb, rb)
		}
	}
}

// TestBackendRESTMetricsBridged asserts a REST-backed dashboard surfaces
// both the per-call command metrics (rest:<endpoint>) and the REST daemon's
// own families on /metrics.
func TestBackendRESTMetricsBridged(t *testing.T) {
	e := newRESTBackedEnv(t)
	defer e.server.Close()
	seedMixedHistory(e)
	if status, _ := e.get("alice", "/api/myjobs?range=24h"); status != http.StatusOK {
		t.Fatalf("myjobs status %d", status)
	}
	if status, _ := e.get("alice", "/api/recent_jobs"); status != http.StatusOK {
		t.Fatalf("recent_jobs status %d", status)
	}
	status, body := e.get("staff", "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`ooddash_slurm_commands_total{command="rest:accounting",daemon="slurmdbd",outcome="ok"}`,
		`ooddash_slurm_commands_total{command="rest:jobs",daemon="slurmctld",outcome="ok"}`,
		`ooddash_slurmrest_requests_total{endpoint="accounting",status="200"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBackendConfigValidation pins the construction errors: REST selected
// without a client, and unknown mode names.
func TestBackendConfigValidation(t *testing.T) {
	base := func() (Config, Deps) {
		clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
		cl, err := slurm.NewCluster(slurm.ClusterConfig{
			Name:       "t",
			Nodes:      []slurm.NodeSpec{{NamePrefix: "c", Count: 1, CPUs: 4, MemMB: 8 * 1024, Partitions: []string{"cpu"}}},
			Partitions: []slurm.PartitionSpec{{Name: "cpu", MaxTime: time.Hour, Default: true}},
			QOS:        []slurm.QOS{{Name: "normal"}},
		}, clock)
		if err != nil {
			t.Fatal(err)
		}
		dir := auth.NewDirectory()
		dir.AddUser(auth.User{Name: "alice"})
		return Config{ClusterName: "t"},
			Deps{Runner: slurmcli.NewSimRunner(cl), Users: dir, Clock: clock}
	}

	cfg, deps := base()
	cfg.Backend.Slurmdbd = BackendREST
	if _, err := NewServer(cfg, deps); err == nil || !strings.Contains(err.Error(), "Deps.REST is nil") {
		t.Errorf("rest without client: err = %v", err)
	}

	cfg, deps = base()
	cfg.Backend.Slurmctld = "grpc"
	if _, err := NewServer(cfg, deps); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown mode: err = %v", err)
	}
}
