package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/newsfeed"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/storagedb"
)

// env is a full dashboard stack over a small simulated cluster.
type env struct {
	t       testing.TB
	clock   *slurm.SimClock
	cluster *slurm.Cluster
	feed    *newsfeed.Feed
	feedSrv *httptest.Server
	storage *storagedb.Database
	users   *auth.Directory
	logs    *MemLogStore
	server  *Server
	web     *httptest.Server
}

// newEnv wires the whole stack: simulated cluster, news feed, storage
// database, user directory, log store, dashboard server.
func newEnv(t testing.TB) *env {
	t.Helper()
	return newEnvWith(t, nil, nil)
}

// newEnvWith is newEnv with hooks: mutate adjusts the server config before
// construction (e.g. a deterministic TraceConfig), and wrapRunner wraps the
// simulator's command runner (e.g. in a FaultRunner for failure drills).
func newEnvWith(t testing.TB, mutate func(*Config), wrapRunner func(slurmcli.Runner) slurmcli.Runner) *env {
	t.Helper()
	return newEnvDeps(t, mutate, wrapRunner, nil)
}

// newEnvDeps is newEnvWith plus a dependency hook: mutateDeps runs just
// before NewServer with the assembled Deps and the simulated cluster, so a
// test can attach extra backends (the REST client/server pair).
func newEnvDeps(t testing.TB, mutate func(*Config), wrapRunner func(slurmcli.Runner) slurmcli.Runner, mutateDeps func(*Deps, *slurm.Cluster)) *env {
	t.Helper()
	clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
	cfg := slurm.ClusterConfig{
		Name: "testcluster",
		Nodes: []slurm.NodeSpec{
			{NamePrefix: "c", Count: 4, CPUs: 8, MemMB: 16 * 1024, Partitions: []string{"cpu"}},
			{NamePrefix: "g", Count: 2, CPUs: 16, MemMB: 64 * 1024, GPUs: 2, GPUType: "a100", Partitions: []string{"gpu"}},
		},
		Partitions: []slurm.PartitionSpec{
			{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
			{Name: "gpu", MaxTime: 12 * time.Hour, Priority: 100},
		},
		QOS: []slurm.QOS{{Name: "normal"}, {Name: "debug", Priority: 1000, MaxJobsPerUser: 1}},
		Associations: []slurm.Association{
			{Account: "lab-a", GrpCPULimit: 24},
			{Account: "lab-a", User: "alice"},
			{Account: "lab-a", User: "bob"},
			{Account: "lab-b"},
			{Account: "lab-b", User: "bob"},
			{Account: "lab-b", User: "carol"},
		},
	}
	cluster, err := slurm.NewCluster(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}

	feed := newsfeed.New(clock)
	feedSrv := httptest.NewServer(feed)
	t.Cleanup(feedSrv.Close)

	storage := storagedb.New()
	for _, u := range []string{"alice", "bob", "carol"} {
		storage.ProvisionUser(u)
	}
	storage.ProvisionGroup("lab-a", 5<<40)
	storage.ProvisionGroup("lab-b", 1<<40)

	users := auth.NewDirectory()
	users.AddUser(auth.User{Name: "alice", Accounts: []string{"lab-a"}})
	users.AddUser(auth.User{Name: "bob", Accounts: []string{"lab-a", "lab-b"}})
	users.AddUser(auth.User{Name: "carol", Accounts: []string{"lab-b"}})
	users.AddUser(auth.User{Name: "staff", Admin: true})

	logs := NewMemLogStore()

	scfg := Config{ClusterName: "testcluster"}
	if mutate != nil {
		mutate(&scfg)
	}
	var runner slurmcli.Runner = slurmcli.NewSimRunner(cluster)
	if wrapRunner != nil {
		runner = wrapRunner(runner)
	}
	deps := Deps{
		Runner:      runner,
		News:        &newsfeed.Client{BaseURL: feedSrv.URL, HTTPClient: feedSrv.Client()},
		Storage:     storage,
		Users:       users,
		Logs:        logs,
		Clock:       clock,
		Events:      cluster.Ctl,
		RollupStats: cluster.DBD.RollupStats,
	}
	if mutateDeps != nil {
		mutateDeps(&deps, cluster)
	}
	server, err := NewServer(scfg, deps)
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(server)
	t.Cleanup(web.Close)

	return &env{
		t: t, clock: clock, cluster: cluster,
		feed: feed, feedSrv: feedSrv,
		storage: storage, users: users, logs: logs,
		server: server, web: web,
	}
}

// submit enqueues a job with sensible defaults and runs a scheduling tick.
func (e *env) submit(req slurm.SubmitRequest) slurm.JobID {
	e.t.Helper()
	if req.Name == "" {
		req.Name = "job"
	}
	if req.QOS == "" {
		req.QOS = "normal"
	}
	if req.TimeLimit == 0 {
		req.TimeLimit = time.Hour
	}
	if req.Profile.CPUUtilization == 0 {
		req.Profile.CPUUtilization = 0.8
	}
	if req.Profile.MemUtilization == 0 {
		req.Profile.MemUtilization = 0.5
	}
	id, err := e.cluster.Ctl.Submit(req)
	if err != nil {
		e.t.Fatal(err)
	}
	e.cluster.Ctl.Tick()
	return id
}

// advance moves time forward and ticks the scheduler.
func (e *env) advance(d time.Duration) {
	e.clock.Advance(d)
	e.cluster.Ctl.Tick()
}

// get performs an authenticated GET and returns status + body.
func (e *env) get(user, path string) (int, []byte) {
	e.t.Helper()
	req, err := http.NewRequest("GET", e.web.URL+path, nil)
	if err != nil {
		e.t.Fatal(err)
	}
	if user != "" {
		req.Header.Set(auth.UserHeader, user)
	}
	resp, err := e.web.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, body
}

// getFull performs an authenticated GET and returns status + headers + body.
func (e *env) getFull(user, path string) (int, http.Header, []byte) {
	e.t.Helper()
	req, err := http.NewRequest("GET", e.web.URL+path, nil)
	if err != nil {
		e.t.Fatal(err)
	}
	if user != "" {
		req.Header.Set(auth.UserHeader, user)
	}
	resp, err := e.web.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// getJSON performs an authenticated GET and decodes the response into out,
// failing the test on non-200.
func (e *env) getJSON(user, path string, out any) {
	e.t.Helper()
	status, body := e.get(user, path)
	if status != http.StatusOK {
		e.t.Fatalf("GET %s as %s: status %d: %s", path, user, status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		e.t.Fatalf("GET %s: decoding: %v\n%s", path, err, body)
	}
}

// wantStatus asserts the response code of a GET.
func (e *env) wantStatus(user, path string, want int) {
	e.t.Helper()
	status, body := e.get(user, path)
	if status != want {
		e.t.Fatalf("GET %s as %q: status %d, want %d: %s", path, user, status, want, body)
	}
}

// jobIDStr formats a job ID the way routes expect it.
func jobIDStr(id slurm.JobID) string { return fmt.Sprintf("%d", id) }
