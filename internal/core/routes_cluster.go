package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// nodeStateColor maps effective node states to the grid-view colors the
// paper specifies (§6): green in use, faded green idle, yellow drained,
// orange maintenance, red offline.
func nodeStateColor(state slurm.NodeState) string {
	switch state {
	case slurm.NodeAllocated, slurm.NodeMixed:
		return "green"
	case slurm.NodeIdle:
		return "faded-green"
	case slurm.NodeDrained, slurm.NodeDraining:
		return "yellow"
	case slurm.NodeMaint:
		return "orange"
	case slurm.NodeDown:
		return "red"
	case slurm.NodePoweredDown, slurm.NodePoweringUp, slurm.NodeReboot:
		// Energy-saving and reboot cycles: intentionally offline, not faulty.
		return "gray"
	default:
		return "gray"
	}
}

// NodeCell is one node in the Cluster Status app: enough for a grid cell
// (name + color), the hover tooltip (usage numbers), and a list-view row.
type NodeCell struct {
	Name        string   `json:"name"`
	State       string   `json:"state"`
	Color       string   `json:"color"`
	Partitions  []string `json:"partitions"`
	CPUsTotal   int      `json:"cpus_total"`
	CPUsAlloc   int      `json:"cpus_alloc"`
	CPULoad     float64  `json:"cpu_load"`
	MemMB       int64    `json:"mem_mb"`
	AllocMemMB  int64    `json:"alloc_mem_mb"`
	GPUsTotal   int      `json:"gpus_total,omitempty"`
	GPUsAlloc   int      `json:"gpus_alloc,omitempty"`
	OverviewURL string   `json:"overview_url"`
}

// ClusterStatusResponse is the Cluster Status API payload; the same data
// backs the grid and list views.
type ClusterStatusResponse struct {
	Cluster string     `json:"cluster"`
	Nodes   []NodeCell `json:"nodes"`
	// StateCounts summarizes the grid's color distribution.
	StateCounts map[string]int `json:"state_counts"`
	Total       int            `json:"total"`
}

// fetchAllNodes loads and caches the full node table.
func (s *Server) fetchAllNodes(r *http.Request) ([]*slurmcli.NodeDetail, fetchMeta, error) {
	v, meta, err := s.fetchVia(r, srcCtld, "cluster_nodes", s.cfg.TTLs.ClusterNodes, func(ctx context.Context) (any, error) {
		return s.ctldBk.ShowAllNodes(ctx)
	})
	if err != nil {
		return nil, fetchMeta{}, err
	}
	return v.([]*slurmcli.NodeDetail), meta, nil
}

func nodeCellFromDetail(d *slurmcli.NodeDetail) NodeCell {
	return NodeCell{
		Name:        d.Name,
		State:       string(d.State),
		Color:       nodeStateColor(d.State),
		Partitions:  d.Partitions,
		CPUsTotal:   d.CPUTotal,
		CPUsAlloc:   d.CPUAlloc,
		CPULoad:     d.CPULoad,
		MemMB:       d.MemMB,
		AllocMemMB:  d.AllocMemMB,
		GPUsTotal:   d.GPUTotal,
		GPUsAlloc:   d.GPUAlloc,
		OverviewURL: "/node/" + d.Name,
	}
}

// matchesSearch implements the list view's keyword filter: node name,
// state, or partition (§6).
func (c *NodeCell) matchesSearch(q string) bool {
	if q == "" {
		return true
	}
	q = strings.ToLower(q)
	if strings.Contains(strings.ToLower(c.Name), q) {
		return true
	}
	if strings.Contains(strings.ToLower(c.State), q) {
		return true
	}
	for _, p := range c.Partitions {
		if strings.Contains(strings.ToLower(p), q) {
			return true
		}
	}
	return false
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	details, meta, err := s.fetchAllNodes(r)
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		q := r.URL.Query()
		search := q.Get("search")
		sortKey := q.Get("sort")
		descending := q.Get("order") == "desc"

		resp := ClusterStatusResponse{
			Cluster:     s.cfg.ClusterName,
			StateCounts: make(map[string]int),
		}
		for _, d := range details {
			cell := nodeCellFromDetail(d)
			resp.StateCounts[cell.Color]++
			resp.Total++
			if !cell.matchesSearch(search) {
				continue
			}
			resp.Nodes = append(resp.Nodes, cell)
		}
		if err := sortNodeCells(resp.Nodes, sortKey, descending); err != nil {
			return nil, err
		}
		return resp, nil
	})
}

// sortNodeCells orders the list view by any sortable column (§6).
func sortNodeCells(cells []NodeCell, key string, desc bool) error {
	var less func(a, b *NodeCell) bool
	switch key {
	case "", "name":
		less = func(a, b *NodeCell) bool { return a.Name < b.Name }
	case "state":
		less = func(a, b *NodeCell) bool {
			if a.State != b.State {
				return a.State < b.State
			}
			return a.Name < b.Name
		}
	case "cpu_load":
		less = func(a, b *NodeCell) bool {
			if a.CPULoad != b.CPULoad {
				return a.CPULoad < b.CPULoad
			}
			return a.Name < b.Name
		}
	case "cpu_alloc":
		less = func(a, b *NodeCell) bool {
			if a.CPUsAlloc != b.CPUsAlloc {
				return a.CPUsAlloc < b.CPUsAlloc
			}
			return a.Name < b.Name
		}
	case "mem":
		less = func(a, b *NodeCell) bool {
			if a.AllocMemMB != b.AllocMemMB {
				return a.AllocMemMB < b.AllocMemMB
			}
			return a.Name < b.Name
		}
	default:
		return fmt.Errorf("%w: unknown sort key %q", errBadRequest, key)
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if desc {
			return less(&cells[j], &cells[i])
		}
		return less(&cells[i], &cells[j])
	})
	return nil
}

// --- Node Overview (§6.1) ----------------------------------------------------

// NodeOverviewResponse is the Node Overview API payload: the status and
// resource-usage cards plus the node-details tab fields.
type NodeOverviewResponse struct {
	Name     string    `json:"name"`
	State    string    `json:"state"`
	Color    string    `json:"color"`
	Reason   string    `json:"reason,omitempty"`
	LastBusy time.Time `json:"last_busy"`
	BootTime time.Time `json:"boot_time"`

	CPUsTotal  int     `json:"cpus_total"`
	CPUsAlloc  int     `json:"cpus_alloc"`
	CPUPercent float64 `json:"cpu_percent"`
	CPULoad    float64 `json:"cpu_load"`
	MemMB      int64   `json:"mem_mb"`
	AllocMemMB int64   `json:"alloc_mem_mb"`
	MemPercent float64 `json:"mem_percent"`
	GPUsTotal  int     `json:"gpus_total,omitempty"`
	GPUsAlloc  int     `json:"gpus_alloc,omitempty"`
	GPUPercent float64 `json:"gpu_percent,omitempty"`
	GPUType    string  `json:"gpu_type,omitempty"`

	// Details tab: configuration pulled from scontrol show node.
	OS         string   `json:"os"`
	Arch       string   `json:"arch"`
	Features   []string `json:"features"`
	Partitions []string `json:"partitions"`
}

func (s *Server) handleNodeOverview(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	key := "node:" + name
	v, meta, err := s.fetchVia(r, srcCtld, key, s.cfg.TTLs.NodeDetail, func(ctx context.Context) (any, error) {
		return s.ctldBk.ShowNode(ctx, name)
	})
	if err != nil {
		// An unreachable controller is a 503; only a healthy "no such
		// node" answer maps to 404.
		if isUnavailable(err) {
			writeFetchError(w, err)
		} else {
			writeError(w, fmt.Errorf("%w: node %s: %v", errNotFound, name, err))
		}
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		d := v.(*slurmcli.NodeDetail)
		resp := NodeOverviewResponse{
			Name:     d.Name,
			State:    string(d.State),
			Color:    nodeStateColor(d.State),
			Reason:   d.Reason,
			LastBusy: d.LastBusy,
			BootTime: d.BootTime,

			CPUsTotal:  d.CPUTotal,
			CPUsAlloc:  d.CPUAlloc,
			CPULoad:    d.CPULoad,
			MemMB:      d.MemMB,
			AllocMemMB: d.AllocMemMB,
			GPUsTotal:  d.GPUTotal,
			GPUsAlloc:  d.GPUAlloc,
			GPUType:    d.GPUType,

			OS: d.OS, Arch: d.Arch,
			Features: d.Features, Partitions: d.Partitions,
		}
		if d.CPUTotal > 0 {
			resp.CPUPercent = 100 * float64(d.CPUAlloc) / float64(d.CPUTotal)
		}
		if d.MemMB > 0 {
			resp.MemPercent = 100 * float64(d.AllocMemMB) / float64(d.MemMB)
		}
		if d.GPUTotal > 0 {
			resp.GPUPercent = 100 * float64(d.GPUAlloc) / float64(d.GPUTotal)
		}
		return resp, nil
	})
}

// NodeJobRow is one row in the Node Overview running-jobs tab.
type NodeJobRow struct {
	JobID       string `json:"job_id"`
	Name        string `json:"name"`
	User        string `json:"user"`
	Partition   string `json:"partition"`
	State       string `json:"state"`
	CPUs        int    `json:"cpus"`
	MemMB       int64  `json:"mem_mb"`
	ElapsedSecs int64  `json:"elapsed_seconds"`
	OverviewURL string `json:"overview_url"`
}

// NodeJobsResponse lists the jobs running on one node.
type NodeJobsResponse struct {
	Node string       `json:"node"`
	Jobs []NodeJobRow `json:"jobs"`
}

func (s *Server) handleNodeJobs(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	// One shared squeue snapshot serves every node's running-jobs tab.
	v, meta, err := s.fetchVia(r, srcCtld, "running_jobs_all", s.cfg.TTLs.NodeDetail, func(ctx context.Context) (any, error) {
		return s.ctldBk.Squeue(ctx, slurmcli.SqueueOptions{
			States: []slurm.JobState{slurm.StateRunning},
		})
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		entries := v.([]slurmcli.QueueEntry)
		resp := NodeJobsResponse{Node: name}
		for i := range entries {
			e := &entries[i]
			nodes, err := slurm.ExpandNodeRange(e.NodeList)
			if err != nil {
				continue
			}
			onNode := false
			for _, n := range nodes {
				if n == name {
					onNode = true
					break
				}
			}
			if !onNode {
				continue
			}
			resp.Jobs = append(resp.Jobs, NodeJobRow{
				JobID:       e.JobID,
				Name:        e.Name,
				User:        e.User,
				Partition:   e.Partition,
				State:       string(e.State),
				CPUs:        e.CPUs,
				MemMB:       e.MemMB,
				ElapsedSecs: int64(e.Elapsed / time.Second),
				OverviewURL: "/job/" + e.JobID,
			})
		}
		return resp, nil
	})
}
