package core

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/cache"
	"ooddash/internal/newsfeed"
	"ooddash/internal/push"
	"ooddash/internal/resilience"
	"ooddash/internal/slo"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
	"ooddash/internal/storagedb"
	"ooddash/internal/trace"
)

// Clock supplies the current time (matches slurm.Clock). The server's clock
// must be the same instance that drives the simulated cluster so cache TTLs
// and Slurm time agree in tests and benchmarks.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Deps are the external systems the dashboard talks to (Figure 1's data
// flow): Slurm via its command-line surface, the center's news API, the
// storage quota database, the user directory, and the job log files.
type Deps struct {
	Runner  slurmcli.Runner
	News    *newsfeed.Client
	Storage *storagedb.Database
	Users   *auth.Directory
	Logs    LogStore
	Clock   Clock
	// REST is the slurmrestd-style client; required when Config.Backend
	// selects BackendREST for either source. The dashboard's token should
	// carry staff scope — per-user visibility is enforced by the
	// dashboard's own route ACLs, as in the CLI path.
	REST *slurmrest.Client
	// RESTServer, when the REST daemon runs in-process, lets the dashboard
	// bridge its scope-denial and redaction counters onto /metrics.
	RESTServer *slurmrest.Server
	// Events enables the real-time monitoring feed (§9 extension); nil
	// disables the /api/events route's data source.
	Events EventSource
	// RollupStats, when set, snapshots the accounting daemon's rollup store
	// (bucket counts, compactions, eviction) for /metrics. The in-process
	// simulator wires it to DBD.RollupStats; a real deployment would scrape
	// slurmdbd directly instead.
	RollupStats func() slurm.RollupStats
	// Sleep pauses between retry attempts; nil means time.Sleep, unless
	// Clock itself exposes a Sleep method (slurm.SimClock does), in which
	// case retry backoff advances the simulated clock instead of blocking.
	Sleep func(time.Duration)
}

// Server is the dashboard backend: a set of JSON API routes (one per
// widget), HTML page handlers, and the server-side cache in front of every
// data source.
type Server struct {
	cfg    Config
	runner slurmcli.Runner
	// ctldBk/dbdBk are the per-daemon data paths the routes read through:
	// CLI shell-out or the REST client, per Config.Backend (backend.go).
	ctldBk  slurmBackend
	dbdBk   slurmBackend
	news    *newsfeed.Client
	storage *storagedb.Database
	users   *auth.Directory
	logs    LogStore
	clock   Clock
	events  EventSource
	cache   *cache.Cache
	res     *resilience.Set
	mux     *http.ServeMux
	widgets []Widget

	// fills are the per-source cold-fill admission gates (see admission.go):
	// they bound concurrent upstream fills where singleflight cannot (many
	// distinct cold keys at once).
	fills map[string]*fillGate

	// Rendered-response layer (see render.go): materialized JSON bytes and
	// ETags keyed by widget/variant/URI, plus its traffic counters.
	rendered *cache.Cache
	renderCounters

	// Periodic purge of both caches (see purge.go): entries past their stale
	// grace window are dropped so a long-running server's memory is bounded.
	purgeMu     sync.Mutex
	lastPurge   time.Time
	purgedTotal atomic.Int64

	// obsm holds the metrics registry and every metric family; accessLog,
	// when set, receives one structured line per instrumented request.
	obsm      *serverObs
	accessLog func(line string)

	// tracer is the span-tracing subsystem: root spans from the instrument
	// middleware and the push refresh loop, tail-sampled retention in its
	// store, exposed on the admin trace routes.
	tracer *trace.Tracer

	// Push subsystem: the versioned snapshot hub fanning out to SSE
	// clients, the background refresh scheduler feeding it, the
	// push-enabled route table, and the shutdown broadcast channel.
	pushHub    *push.Hub
	pushSched  *push.Scheduler
	pushRoutes map[string]pushRoute
	pushDone   chan struct{}
	closeOnce  sync.Once

	// fleet, when set, is the scale-out tier's delegate (see fleet.go):
	// push-enabled widget polls consult it for refresh ownership and
	// peer-propagated snapshots before touching the local fetch path.
	fleet fleetPtr

	// rollupStats feeds the rollup store gauges on /metrics (may be nil);
	// rollupOff switches the historical widgets to the raw-recompute
	// ablation (see rollup.go).
	rollupStats func() slurm.RollupStats
	rollupOff   atomic.Bool

	// sloEng is the live SLO engine: the instrument middleware records
	// every response into it, TickPush advances its alert state machines,
	// and /api/admin/slo plus the ooddash_slo_* families render it. sloOff
	// gates hit-path recording (the overhead-ablation benchmarks toggle it).
	sloEng *slo.Engine
	sloOff atomic.Bool
}

// NewServer builds the dashboard from its dependencies.
func NewServer(cfg Config, deps Deps) (*Server, error) {
	if deps.Runner == nil {
		return nil, fmt.Errorf("core: NewServer: missing Slurm runner")
	}
	if deps.Users == nil {
		return nil, fmt.Errorf("core: NewServer: missing user directory")
	}
	if deps.Clock == nil {
		deps.Clock = realClock{}
	}
	if deps.Logs == nil {
		deps.Logs = NewMemLogStore()
	}
	if deps.Sleep == nil {
		if sl, ok := deps.Clock.(interface{ Sleep(time.Duration) }); ok {
			deps.Sleep = sl.Sleep
		} else {
			deps.Sleep = time.Sleep
		}
	}
	if len(cfg.SLO.Objectives) > 0 {
		if err := slo.Validate(cfg.SLO.Objectives); err != nil {
			return nil, fmt.Errorf("core: NewServer: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg.withDefaults(),
		runner:  deps.Runner,
		news:    deps.News,
		storage: deps.Storage,
		users:   deps.Users,
		logs:    deps.Logs,
		clock:   deps.Clock,
		events:  deps.Events,
		cache:   cache.New(deps.Clock),
		mux:     http.NewServeMux(),
	}
	s.rollupStats = deps.RollupStats
	// The SLO engine precedes the metrics registry so its budget and alert
	// collectors can be registered; it shares the server clock, so chaos
	// drills evaluate alerts deterministically on simulated time.
	s.sloEng = slo.New(deps.Clock, s.cfg.SLO.Objectives)
	s.sloOff.Store(s.cfg.SLO.Disabled)
	s.rendered = cache.New(deps.Clock)
	s.lastPurge = deps.Clock.Now()
	s.fills = newFillGates(s.cfg.Resilience.MaxConcurrentFills)
	s.res = resilience.NewSet(resilience.Options{
		Clock: deps.Clock,
		Sleep: deps.Sleep,
		Seed:  1,
		OnStateChange: func(c resilience.StateChange) {
			log.Printf("core: breaker %s: %s -> %s", c.Source, c.From, c.To)
		},
		OnResult: s.observeUpstream,
	})
	// Push plumbing comes before the metrics registry so its collectors can
	// read hub and scheduler stats; the scheduler's refresh hook records
	// into obsm, which is always set by the time any refresh can run.
	s.pushHub = push.NewHub(deps.Clock)
	s.pushRoutes = s.buildPushRoutes()
	s.pushDone = make(chan struct{})
	s.pushSched = push.NewScheduler(push.SchedulerOptions{
		Clock:            deps.Clock,
		Hub:              s.pushHub,
		Jitter:           s.cfg.Push.Jitter,
		PauseWhenIdle:    !s.cfg.Push.DisableIdlePause,
		SkipWhenDegraded: !s.cfg.Push.DisableDegradedSkip,
		OnRefresh: func(widget string, d time.Duration, published bool, err error) {
			s.observeRefresh(widget, d, published, err)
		},
	})
	// The tracer precedes the metrics registry so its store gauges can be
	// registered as collectors; its hooks read s.obsm/s.accessLog lazily (both
	// are set before any request can be served).
	s.tracer = trace.New(trace.Config{
		Clock:     deps.Clock,
		Sample:    s.cfg.Trace.Sample,
		Slow:      s.cfg.Trace.Slow,
		StoreMax:  s.cfg.Trace.StoreMax,
		SlowKeepN: s.cfg.Trace.SlowKeepN,
		Baseline:  s.cfg.Trace.Baseline,
		Window:    s.cfg.Trace.Window,
		OnSpan: func(layer string, seconds float64) {
			s.obsm.traceSpans.With(layer).Observe(seconds)
		},
		OnSlow: func(sum trace.Summary) {
			line := fmt.Sprintf("slow-request trace=%s widget=%s origin=%s duration_ms=%.1f spans=%d degraded=%t error=%t",
				sum.ID, sum.Widget, sum.Origin, sum.DurationMS, sum.Spans, sum.Degraded, sum.Error)
			if s.accessLog != nil {
				s.accessLog(line)
			} else {
				log.Printf("core: %s", line)
			}
		},
	})
	s.obsm = newServerObs(s)
	if deps.RESTServer != nil {
		deps.RESTServer.RegisterMetrics(s.obsm.reg)
	}
	// Every Slurm command the routes issue goes through the metered wrapper,
	// so /metrics attributes dashboard-side RPC cost per command and daemon.
	s.runner = slurmcli.NewMeteredRunner(deps.Runner, s.observeCommand)
	if err := s.buildBackends(deps.REST); err != nil {
		return nil, err
	}
	// REST calls feed the same per-command metrics as CLI commands, labelled
	// "rest:<endpoint>", so /metrics compares the two paths directly.
	if deps.REST != nil && deps.REST.Observe == nil {
		deps.REST.Observe = func(endpoint, daemon string, d time.Duration, err error) {
			s.observeCommand("rest:"+endpoint, daemon, d, err)
		}
	}
	// The Slurm sources get the availability classifier so semantic errors
	// (unknown job, bad flags) neither retry nor trip the breaker; for the
	// news API and storage database every error counts.
	slurmPolicy := s.cfg.Resilience.Policy
	slurmPolicy.Classify = slurmcli.IsUnavailable
	s.res.Register(srcCtld, slurmPolicy)
	s.res.Register(srcDBD, slurmPolicy)
	s.res.Register(srcNews, s.cfg.Resilience.Policy)
	s.res.Register(srcStorage, s.cfg.Resilience.Policy)
	s.registerWidgets()
	if err := s.Mount(s.mux); err != nil {
		return nil, err
	}
	s.registerPages(s.mux)
	return s, nil
}

// ServeHTTP implements http.Handler with every widget and page mounted.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the server-side cache for inspection (experiments read its
// hit/miss statistics) and for the cache-off ablation (Disabled flag).
func (s *Server) Cache() *cache.Cache { return s.cache }

// RenderedCache exposes the rendered-response cache for inspection.
func (s *Server) RenderedCache() *cache.Cache { return s.rendered }

// Config returns the effective configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Resilience exposes the per-source breaker set for inspection (health
// routes, experiments, failure drills).
func (s *Server) Resilience() *resilience.Set { return s.res }

// Tracer exposes the span-tracing subsystem (admin routes, tests,
// benchmarks).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// SetTraceSample adjusts head sampling at runtime: 1 records every request,
// a fraction records that share, negative disables tracing entirely. The
// hotpath benchmark uses this to measure the sampled-out overhead.
func (s *Server) SetTraceSample(p float64) { s.tracer.SetSample(p) }

// SLO exposes the live SLO engine (fleet aggregation, tests, drills).
func (s *Server) SLO() *slo.Engine { return s.sloEng }

// SetSLORecordingDisabled toggles hit-path SLI recording at runtime. The
// overhead benchmark measures the same request stream with recording off
// and on to prove the delta stays within its alloc budget.
func (s *Server) SetSLORecordingDisabled(off bool) { s.sloOff.Store(off) }

// runnerCtx returns the server's runner bound to ctx so Slurm commands made
// on behalf of this request contribute spans; outside a traced request it is
// the runner itself.
func (s *Server) runnerCtx(ctx context.Context) slurmcli.Runner {
	return slurmcli.Bind(ctx, s.runner)
}

// Widget is one modular dashboard feature: a named JSON API route with its
// cache TTL. Widgets are self-contained so they can be mounted individually
// on another mux — the paper's migration story (§2.3, §8).
type Widget struct {
	// Name identifies the widget ("recent_jobs", "cluster_status", ...).
	Name string
	// Route is the mux pattern, e.g. "GET /api/recent_jobs".
	Route string
	// TTL is the server-cache expiration for the widget's data source.
	TTL time.Duration
	// DataSource documents Table 1's mapping for the widget.
	DataSource string
	// Handler serves the route.
	Handler http.HandlerFunc
}

// registerWidgets builds the widget table. Order matches Table 1.
func (s *Server) registerWidgets() {
	s.widgets = []Widget{
		{Name: "announcements", Route: "GET /api/announcements",
			TTL: s.cfg.TTLs.Announcements, DataSource: "API call to center news page",
			Handler: s.handleAnnouncements},
		{Name: "recent_jobs", Route: "GET /api/recent_jobs",
			TTL: s.cfg.TTLs.RecentJobs, DataSource: "squeue (Slurm)",
			Handler: s.handleRecentJobs},
		{Name: "system_status", Route: "GET /api/system_status",
			TTL: s.cfg.TTLs.SystemStatus, DataSource: "sinfo (Slurm)",
			Handler: s.handleSystemStatus},
		{Name: "accounts", Route: "GET /api/accounts",
			TTL: s.cfg.TTLs.Accounts, DataSource: "scontrol show assoc (Slurm)",
			Handler: s.handleAccounts},
		{Name: "accounts_export", Route: "GET /api/accounts/{account}/export.csv",
			TTL: s.cfg.TTLs.Accounts, DataSource: "scontrol show assoc (Slurm)",
			Handler: s.handleAccountExport},
		{Name: "accounts_export_xlsx", Route: "GET /api/accounts/{account}/export.xlsx",
			TTL: s.cfg.TTLs.Accounts, DataSource: "scontrol show assoc (Slurm)",
			Handler: s.handleAccountExportXLSX},
		{Name: "storage", Route: "GET /api/storage",
			TTL: s.cfg.TTLs.Storage, DataSource: "ZFS and GPFS storage database",
			Handler: s.handleStorage},
		{Name: "my_jobs", Route: "GET /api/myjobs",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleMyJobs},
		{Name: "my_jobs_export", Route: "GET /api/myjobs/export.csv",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleMyJobsExport},
		{Name: "my_jobs_charts", Route: "GET /api/myjobs/charts",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleMyJobsCharts},
		{Name: "job_perf", Route: "GET /api/jobperf",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sreport rollup (slurmdbd)",
			Handler: s.handleJobPerf},
		{Name: "cluster_status", Route: "GET /api/cluster_status",
			TTL: s.cfg.TTLs.ClusterNodes, DataSource: "scontrol show node (Slurm)",
			Handler: s.handleClusterStatus},
		{Name: "node_overview", Route: "GET /api/node/{name}",
			TTL: s.cfg.TTLs.NodeDetail, DataSource: "scontrol show node (Slurm)",
			Handler: s.handleNodeOverview},
		{Name: "node_jobs", Route: "GET /api/node/{name}/jobs",
			TTL: s.cfg.TTLs.NodeDetail, DataSource: "squeue (Slurm)",
			Handler: s.handleNodeJobs},
		{Name: "job_overview", Route: "GET /api/job/{id}",
			TTL: s.cfg.TTLs.JobDetail, DataSource: "scontrol show job (Slurm)",
			Handler: s.handleJobOverview},
		{Name: "job_logs", Route: "GET /api/job/{id}/logs",
			TTL: 0, DataSource: "job stdout/stderr files",
			Handler: s.handleJobLogs},
		{Name: "job_array", Route: "GET /api/job/{id}/array",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleJobArray},
		// §9 extensions: real-time monitoring, job analysis, admin accounting.
		{Name: "events", Route: "GET /api/events",
			TTL: 0, DataSource: "controller event feed (extension)",
			Handler: s.handleEvents},
		{Name: "insights", Route: "GET /api/insights",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleInsights},
		{Name: "admin_overview", Route: "GET /api/admin/overview",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sacct (Slurm)",
			Handler: s.handleAdminOverview},
		{Name: "jobperf_timeseries", Route: "GET /api/jobperf/timeseries",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sreport rollup (slurmdbd)",
			Handler: s.handleJobPerfTimeseries},
		// Long-range usage views, affordable only through the rollup pipeline.
		{Name: "usage_cluster", Route: "GET /api/usage/cluster",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sreport rollup (slurmdbd)",
			Handler: s.handleUsageCluster},
		{Name: "usage_accounts", Route: "GET /api/usage/accounts",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sreport rollup (slurmdbd)",
			Handler: s.handleUsageAccounts},
		{Name: "usage_efficiency", Route: "GET /api/usage/efficiency",
			TTL: s.cfg.TTLs.JobHistory, DataSource: "sreport rollup (slurmdbd)",
			Handler: s.handleUsageEfficiency},
		{Name: "admin_health", Route: "GET /api/admin/health",
			TTL: 0, DataSource: "backend cache stats + sdiag (Slurm)",
			Handler: s.handleAdminHealth},
		{Name: "metrics", Route: "GET /metrics",
			TTL: 0, DataSource: "backend cache stats + sdiag (Slurm)",
			Handler: s.handleMetrics},
		{Name: "admin_slo", Route: "GET /api/admin/slo",
			TTL: 0, DataSource: "SLO engine (error budgets + burn-rate alerts)",
			Handler: s.handleAdminSLO},
		{Name: "admin_traces", Route: "GET /api/admin/traces",
			TTL: 0, DataSource: "trace store (tail-sampled request spans)",
			Handler: s.handleAdminTraces},
		{Name: "admin_trace", Route: "GET /api/admin/traces/{id}",
			TTL: 0, DataSource: "trace store (tail-sampled request spans)",
			Handler: s.handleAdminTrace},
	}
}

// Widgets returns the widget table (copies; handlers are shared).
func (s *Server) Widgets() []Widget {
	out := make([]Widget, len(s.widgets))
	copy(out, s.widgets)
	return out
}

// Mount registers widgets onto an arbitrary mux. With no names, every
// widget is mounted; otherwise only the named subset, letting another
// dashboard adopt individual features in isolation. Duplicate names in the
// subset are tolerated (each widget mounts once). Every mounted handler is
// wrapped with the observability middleware: trace IDs, per-widget latency
// histograms, status counters, and the access log.
func (s *Server) Mount(mux *http.ServeMux, names ...string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	mounted := 0
	for _, w := range s.widgets {
		if len(names) > 0 && !want[w.Name] {
			continue
		}
		mux.HandleFunc(w.Route, s.instrument(w.Name, s.fleetIntercept(w.Name, w.Handler)))
		mounted++
		delete(want, w.Name)
	}
	if len(names) > 0 && len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return fmt.Errorf("core: Mount: unknown widgets: %s", strings.Join(unknown, ", "))
	}
	if mounted == 0 {
		return fmt.Errorf("core: Mount: no widgets mounted")
	}
	return nil
}

// currentUser resolves the authenticated user for a request.
func (s *Server) currentUser(r *http.Request) (*auth.User, error) {
	return s.users.FromRequest(r)
}
