package core

// Static frontend assets, embedded as constants so the dashboard binary is
// self-contained. The JavaScript implements the paper's client-side caching
// (§2.4): every widget reads its last response from IndexedDB for an
// instant first paint, then refreshes from its API route in the background.
// The simulated browser in internal/browser executes the same policy
// natively; these files exist so the served pages are a complete, runnable
// frontend in a real browser too.

const assetCSS = `:root {
  --green: #1a7f37; --faded-green: #9fd3ad; --yellow: #bf8700;
  --orange: #bc4c00; --red: #cf222e; --gray: #6e7781; --blue: #0969da;
}
* { box-sizing: border-box; }
body { font-family: system-ui, sans-serif; margin: 0; color: #1f2328; }
.sr-only { position: absolute; width: 1px; height: 1px; overflow: hidden; clip: rect(0 0 0 0); }
.navbar { display: flex; gap: 1rem; align-items: center; padding: .5rem 1rem;
  background: #24292f; color: #fff; }
.navbar a { color: #fff; text-decoration: none; }
.navbar .brand { font-weight: 700; }
.navbar .spacer { flex: 1; }
main { padding: 1rem; max-width: 1200px; margin: 0 auto; }
.widget-grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr));
  gap: 1rem; }
.widget { border: 1px solid #d0d7de; border-radius: 6px; padding: .75rem; }
.widget h2 { margin: 0 0 .5rem; font-size: 1rem; display: flex; justify-content: space-between; }
.widget .more { font-size: .8rem; }
.widget-body.loading { color: var(--gray); font-style: italic; }
.progress { background: #eaeef2; border-radius: 4px; height: .6rem; overflow: hidden; }
.progress > span { display: block; height: 100%; }
.progress .green { background: var(--green); }
.progress .yellow { background: var(--yellow); }
.progress .red { background: var(--red); }
.badge { display: inline-block; padding: 0 .4rem; border-radius: 4px; color: #fff;
  font-size: .75rem; }
.badge.red { background: var(--red); } .badge.yellow { background: var(--yellow); }
.badge.gray { background: var(--gray); } .badge.green { background: var(--green); }
.badge.blue { background: var(--blue); } .badge.orange { background: var(--orange); }
.node-grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(54px, 1fr));
  gap: 4px; }
.node-cell { padding: 2px; border-radius: 3px; font-size: .65rem; color: #fff;
  text-align: center; cursor: pointer; }
.node-cell.green { background: var(--green); }
.node-cell.faded-green { background: var(--faded-green); color: #1f2328; }
.node-cell.yellow { background: var(--yellow); }
.node-cell.orange { background: var(--orange); }
.node-cell.red { background: var(--red); }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { border-bottom: 1px solid #d0d7de; padding: .3rem .5rem; text-align: left; }
.log-view { background: #0d1117; color: #e6edf3; font-family: monospace;
  max-height: 24rem; overflow-y: scroll; padding: .5rem; }
.log-view .ln { color: var(--gray); user-select: none; margin-right: .75rem; }
.controls { display: flex; gap: .5rem; margin-bottom: 1rem; }
.trace-row { cursor: pointer; }
.trace-row:hover { background: #f6f8fa; }
.waterfall { font-size: .8rem; font-family: monospace; }
.waterfall .span-row { display: flex; align-items: center; gap: .5rem;
  padding: 1px 0; }
.waterfall .span-label { flex: 0 0 18rem; overflow: hidden;
  text-overflow: ellipsis; white-space: nowrap; }
.waterfall .span-track { flex: 1; position: relative; height: .9rem;
  background: #f6f8fa; border-radius: 2px; }
.waterfall .span-bar { position: absolute; top: 0; height: 100%;
  border-radius: 2px; min-width: 2px; background: var(--blue); }
.waterfall .span-bar.layer-http { background: var(--blue); }
.waterfall .span-bar.layer-push { background: var(--gray); }
.waterfall .span-bar.layer-cache { background: var(--green); }
.waterfall .span-bar.layer-resilience { background: var(--yellow); }
.waterfall .span-bar.layer-slurmcli { background: var(--orange); }
.waterfall .span-bar.layer-slurmctld, .waterfall .span-bar.layer-slurmdbd,
.waterfall .span-bar.layer-daemon { background: var(--red); }
.waterfall .span-dur { flex: 0 0 6rem; text-align: right; color: var(--gray); }
.budget-track { display: inline-block; width: 8rem; height: .7rem;
  background: #f6f8fa; border-radius: 2px; vertical-align: middle; }
.budget-spent { display: block; height: 100%; border-radius: 2px;
  background: var(--orange); }
tr.slo-firing td { background: #fff1f0; }
tr.slo-pending td { background: #fffbe6; }
`

// assetCacheJS is the IndexedDB helper (§2.4): get/put JSON blobs keyed by
// API route, with a storedAt timestamp so widgets.js can decide freshness.
const assetCacheJS = `"use strict";
const DashCache = (() => {
  const DB_NAME = "ood-dashboard", STORE = "api-responses", VERSION = 1;
  let dbPromise = null;
  function open() {
    if (dbPromise) return dbPromise;
    dbPromise = new Promise((resolve, reject) => {
      const req = indexedDB.open(DB_NAME, VERSION);
      req.onupgradeneeded = () => req.result.createObjectStore(STORE, { keyPath: "key" });
      req.onsuccess = () => resolve(req.result);
      req.onerror = () => reject(req.error);
    });
    return dbPromise;
  }
  async function get(key) {
    const db = await open();
    return new Promise((resolve, reject) => {
      const req = db.transaction(STORE).objectStore(STORE).get(key);
      req.onsuccess = () => resolve(req.result || null);
      req.onerror = () => reject(req.error);
    });
  }
  async function put(key, value, etag) {
    const db = await open();
    return new Promise((resolve, reject) => {
      const tx = db.transaction(STORE, "readwrite");
      tx.objectStore(STORE).put({ key, value, storedAt: Date.now(), etag: etag || "" });
      tx.oncomplete = resolve;
      tx.onerror = () => reject(tx.error);
    });
  }
  return { get, put };
})();
`

// assetWidgetsJS drives every widget: instant paint from the client cache,
// background refresh from the API route (conditional, via the stored ETag),
// live updates over the /api/events SSE stream, graceful per-widget error
// states, and a renderer per widget type (accordion, cards, progress bars,
// grid).
const assetWidgetsJS = `"use strict";
(async function initWidgets() {
  const widgets = document.querySelectorAll("[data-api]");
  const paint = (el, data) => {
    const body = el.querySelector(".widget-body");
    body.classList.remove("loading");
    body.textContent = "";
    body.appendChild(renderWidget(el.id, data));
  };
  for (const el of widgets) {
    const api = el.dataset.api;
    const ttlMs = Number(el.dataset.ttl || "0") * 1000;
    const body = el.querySelector(".widget-body");
    try {
      const cached = await DashCache.get(api);
      if (cached) paint(el, cached.value); // instant paint from IndexedDB
      if (!cached || Date.now() - cached.storedAt > ttlMs) {
        const headers = { Accept: "application/json" };
        if (cached && cached.etag) headers["If-None-Match"] = cached.etag;
        const resp = await fetch(api, { headers });
        if (resp.status === 304 && cached) {
          // Unchanged on the server: re-stamp the cached copy as fresh.
          await DashCache.put(api, cached.value, cached.etag);
        } else {
          if (!resp.ok) throw new Error(api + " returned " + resp.status);
          const fresh = await resp.json();
          await DashCache.put(api, fresh, resp.headers.get("ETag"));
          paint(el, fresh); // refresh in place
        }
      }
    } catch (err) {
      // A failing widget degrades alone; the rest of the page stays up.
      body.classList.remove("loading");
      body.textContent = "This widget is temporarily unavailable (" + err.message + ").";
    }
  }
  openEventStream(widgets, paint);

  // openEventStream subscribes this page's pushable widgets to the live
  // update feed: each event's payload is exactly the widget's API response,
  // so it goes through the same cache-put + repaint as a poll. EventSource
  // reconnects (with Last-Event-ID) on its own; when push is unavailable the
  // stream simply never delivers and the polling policy above still runs on
  // every page load.
  function openEventStream(els, paintFn) {
    if (!window.EventSource) return;
    const pushable = ["announcements", "recent_jobs", "system_status",
      "cluster_status", "accounts", "storage", "my_jobs"];
    const special = { myjobs: "my_jobs" };
    const byName = {};
    for (const el of els) {
      const leaf = el.dataset.api.split("/").pop();
      const name = special[leaf] || leaf;
      if (pushable.indexOf(name) >= 0) byName[name] = el;
    }
    const names = Object.keys(byName);
    if (!names.length) return;
    const es = new EventSource("/api/events?widgets=" + names.join(","));
    names.forEach((name) => {
      es.addEventListener(name, async (ev) => {
        try {
          const data = JSON.parse(ev.data);
          await DashCache.put(byName[name].dataset.api, data);
          paintFn(byName[name], data);
        } catch (err) { /* keep the last painted state */ }
      });
    });
    es.addEventListener("shutdown", () => es.close());
  }

  const h = (tag, cls, text) => {
    const n = document.createElement(tag);
    if (cls) n.className = cls;
    if (text !== undefined) n.textContent = text;
    return n;
  };
  const when = (iso) => iso ? new Date(iso).toLocaleString() : "";
  const bar = (pct, color) => {
    const wrap = h("div", "progress");
    const fill = h("span", color || "green");
    fill.style.width = Math.min(100, Math.max(0, pct)).toFixed(1) + "%";
    wrap.appendChild(fill);
    return wrap;
  };
  const tableOf = (headers, rows) => {
    const t = h("table");
    const tr = h("tr");
    headers.forEach((x) => tr.appendChild(h("th", "", x)));
    t.appendChild(tr);
    rows.forEach((cells) => {
      const r = h("tr");
      cells.forEach((c) => {
        const td = h("td");
        if (c instanceof Node) td.appendChild(c); else td.textContent = c;
        r.appendChild(td);
      });
      t.appendChild(r);
    });
    return t;
  };
  const link = (href, text) => {
    const a = h("a", "", text);
    a.href = href;
    return a;
  };

  function renderWidget(id, data) {
    const box = h("div");
    switch (id) {
      case "announcements":
      case "all-news": {
        (data.announcements || []).forEach((a) => {
          const item = h("details", a.active ? "announcement" : "announcement past");
          const sum = h("summary");
          sum.appendChild(h("span", "badge " + a.color, a.category));
          sum.appendChild(document.createTextNode(" " + a.title + " — " + when(a.posted_at)));
          item.appendChild(sum);
          item.appendChild(h("p", "", a.body));
          box.appendChild(item);
        });
        if (!box.children.length) box.textContent = "No announcements.";
        return box;
      }
      case "recent-jobs": {
        (data.jobs || []).forEach((j) => {
          const card = h("div", "job-card");
          card.appendChild(h("span", "badge " + stateColor(j.state), j.state));
          card.appendChild(document.createTextNode(" #" + j.job_id + " " + j.name +
            " — " + j.time_label + " " + when(j.timestamp)));
          card.title = j.reason_help ? j.reason + ": " + j.reason_help : (j.state_help || "");
          box.appendChild(card);
        });
        if (!box.children.length) box.textContent = "No recent jobs.";
        return box;
      }
      case "system-status": {
        (data.maintenance || []).forEach((m) => {
          box.appendChild(h("p", "maint-notice",
            (m.active ? "MAINTENANCE IN PROGRESS: " : "Upcoming maintenance: ") +
            m.name + " " + when(m.start) + " – " + when(m.end)));
        });
        box.appendChild(tableOf(["partition", "cpu", "", "gpu"],
          (data.partitions || []).map((p) => [
            p.name,
            p.cpu_percent.toFixed(1) + "% (" + p.cpus_in_use + "/" + p.cpus_total + ")",
            bar(p.cpu_percent, p.color),
            p.gpus_total ? p.gpu_percent.toFixed(1) + "%" : "—",
          ])));
        return box;
      }
      case "accounts": {
        box.appendChild(tableOf(["account", "cpus in use", "queued", "limit", "gpu hours", ""],
          (data.accounts || []).map((a) => [
            a.account, String(a.cpus_in_use), String(a.cpus_queued),
            a.grp_cpu_limit ? String(a.grp_cpu_limit) : "∞",
            a.gpu_hours_used.toFixed(1),
            link(a.export_url, "export CSV"),
          ])));
        return box;
      }
      case "storage": {
        box.appendChild(tableOf(["directory", "used", "", "files"],
          (data.directories || []).map((d) => [
            link(d.files_app_url, d.path),
            d.usage_percent.toFixed(1) + "%",
            bar(d.usage_percent, d.color),
            d.file_count.toLocaleString(),
          ])));
        return box;
      }
      case "myjobs-table": {
        box.appendChild(h("p", "", data.matched + " jobs"));
        box.appendChild(tableOf(["job", "name", "user", "state", "wait", "elapsed", "eff"],
          (data.jobs || []).slice(0, 100).map((j) => [
            link(j.overview_url, j.job_id), j.name, j.user,
            h("span", "badge " + stateColor(j.state), j.state),
            fmtSecs(j.wait_seconds), fmtSecs(j.elapsed_seconds),
            j.efficiency && j.efficiency.cpu_percent != null
              ? j.efficiency.cpu_percent.toFixed(0) + "%" : "—",
          ])));
        return box;
      }
      case "cluster-status": {
        const grid = h("div", "node-grid");
        (data.nodes || []).forEach((n) => {
          const cell = h("a", "node-cell " + n.color, n.name);
          cell.href = n.overview_url;
          cell.title = n.state + " cpu " + n.cpus_alloc + "/" + n.cpus_total;
          grid.appendChild(cell);
        });
        box.appendChild(grid);
        return box;
      }
      case "insights": {
        if (!data.findings || !data.findings.length) {
          box.textContent = "No findings — your recent jobs look healthy.";
          return box;
        }
        data.findings.forEach((f) => {
          const card = h("div", "finding");
          card.appendChild(h("span", "badge " +
            (f.severity === "high" ? "red" : f.severity === "medium" ? "yellow" : "gray"),
            f.severity));
          card.appendChild(h("strong", "", " " + f.title));
          card.appendChild(h("p", "", f.detail));
          card.appendChild(h("p", "recommendation", "→ " + f.recommendation));
          box.appendChild(card);
        });
        return box;
      }
      case "jobperf": {
        box.appendChild(tableOf(["metric", "value"], [
          ["jobs", String(data.total_jobs)],
          ["completed", String(data.completed_jobs)],
          ["failed", String(data.failed_jobs)],
          ["avg queue wait", fmtSecs(data.avg_wait_seconds)],
          ["mean duration", fmtSecs(data.mean_duration_seconds)],
          ["total wall time", fmtSecs(data.total_wall_seconds)],
          ["avg cpu efficiency", data.avg_cpu_efficiency.toFixed(1) + "%"],
          ["avg memory efficiency", data.avg_memory_efficiency.toFixed(1) + "%"],
        ]));
        return box;
      }
      default: {
        const pre = h("pre");
        pre.textContent = JSON.stringify(data, null, 2);
        return pre;
      }
    }
  }
  function stateColor(state) {
    switch (state) {
      case "RUNNING": case "COMPLETING": return "blue";
      case "COMPLETED": return "green";
      case "PENDING": case "SUSPENDED": return "yellow";
      case "CANCELLED": return "gray";
      default: return "red";
    }
  }
  function fmtSecs(s) {
    if (s == null) return "—";
    s = Math.round(s);
    const hh = Math.floor(s / 3600), mm = Math.floor((s % 3600) / 60);
    return hh > 0 ? hh + "h" + String(mm).padStart(2, "0") + "m" : mm + "m" + (s % 60) + "s";
  }
})();
`
