package core

import (
	"strings"
	"testing"
	"time"

	"ooddash/internal/newsfeed"
	"ooddash/internal/slurm"
)

func TestAnnouncementsWidget(t *testing.T) {
	e := newEnv(t)
	e.feed.Publish(newsfeed.Article{
		Title: "Scratch outage", Category: newsfeed.CategoryOutage,
		StartsAt: e.clock.Now(), EndsAt: e.clock.Now().Add(4 * time.Hour),
	})
	e.feed.Publish(newsfeed.Article{
		Title: "July maintenance", Category: newsfeed.CategoryMaintenance,
		StartsAt: e.clock.Now().Add(7 * 24 * time.Hour),
		EndsAt:   e.clock.Now().Add(7*24*time.Hour + 8*time.Hour),
	})
	var resp AnnouncementsResponse
	e.getJSON("alice", "/api/announcements", &resp)
	if len(resp.Announcements) != 2 {
		t.Fatalf("announcements = %d", len(resp.Announcements))
	}
	byTitle := make(map[string]Announcement)
	for _, a := range resp.Announcements {
		byTitle[a.Title] = a
	}
	if a := byTitle["Scratch outage"]; a.Color != "red" || !a.Active {
		t.Fatalf("outage = %+v", a)
	}
	if a := byTitle["July maintenance"]; a.Color != "yellow" || !a.Active {
		t.Fatalf("maintenance = %+v", a)
	}
}

func TestAnnouncementsCachedAcrossUsers(t *testing.T) {
	e := newEnv(t)
	e.feed.Publish(newsfeed.Article{Title: "hello", Category: newsfeed.CategoryNews})
	var resp AnnouncementsResponse
	e.getJSON("alice", "/api/announcements", &resp)
	e.getJSON("bob", "/api/announcements", &resp)
	e.getJSON("carol", "/api/announcements", &resp)
	if got := e.feed.Requests(); got != 1 {
		t.Fatalf("news API requests = %d, want 1 (server cache shared)", got)
	}
}

func TestRecentJobsWidget(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "running-job", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	e.submit(slurm.SubmitRequest{
		Name: "done-job", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Minute},
	})
	e.advance(2 * time.Minute)

	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 2 {
		t.Fatalf("jobs = %+v", resp.Jobs)
	}
	byName := make(map[string]RecentJob)
	for _, j := range resp.Jobs {
		byName[j.Name] = j
	}
	if j := byName["running-job"]; j.State != "RUNNING" || j.TimeLabel != "started" {
		t.Fatalf("running job card = %+v", j)
	}
	if j := byName["done-job"]; j.State != "COMPLETED" || j.TimeLabel != "ended" {
		t.Fatalf("done job card = %+v", j)
	}
}

func TestRecentJobsPendingTooltip(t *testing.T) {
	e := newEnv(t)
	// Fill lab-a's 24-CPU group limit, then submit one more.
	for i := 0; i < 3; i++ {
		e.submit(slurm.SubmitRequest{
			User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
			Profile: slurm.UsageProfile{ActualDuration: time.Hour},
		})
	}
	e.submit(slurm.SubmitRequest{
		Name: "blocked", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	var blocked *RecentJob
	for i := range resp.Jobs {
		if resp.Jobs[i].Name == "blocked" {
			blocked = &resp.Jobs[i]
		}
	}
	if blocked == nil || blocked.State != "PENDING" {
		t.Fatalf("blocked job = %+v", blocked)
	}
	if blocked.Reason != "AssocGrpCpuLimit" {
		t.Fatalf("reason = %q", blocked.Reason)
	}
	if !strings.Contains(blocked.ReasonHelp, "aggregate group CPU limit") {
		t.Fatalf("tooltip = %q", blocked.ReasonHelp)
	}
}

func TestRecentJobsPrivacy(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "carols-job", User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 0 {
		t.Fatalf("alice sees carol's jobs: %+v", resp.Jobs)
	}
}

func TestSystemStatusWidget(t *testing.T) {
	e := newEnv(t)
	// 24 of 32 cpu-partition CPUs busy -> 75% -> yellow.
	for i := 0; i < 3; i++ {
		e.submit(slurm.SubmitRequest{
			User: "carol", Account: "lab-b", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
			Profile: slurm.UsageProfile{ActualDuration: time.Hour},
		})
	}
	var resp SystemStatusResponse
	e.getJSON("alice", "/api/system_status", &resp)
	if resp.Cluster != "testcluster" || len(resp.Partitions) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	var cpu *PartitionSummary
	for i := range resp.Partitions {
		if resp.Partitions[i].Name == "cpu" {
			cpu = &resp.Partitions[i]
		}
	}
	if cpu == nil || cpu.CPUPercent != 75 || cpu.Color != "yellow" {
		t.Fatalf("cpu partition = %+v", cpu)
	}
	if cpu.RunningJobs != 3 {
		t.Fatalf("running jobs = %d", cpu.RunningJobs)
	}
}

func TestUtilizationColorBands(t *testing.T) {
	tests := []struct {
		pct  float64
		want string
	}{
		{0, "green"}, {69.9, "green"}, {70, "yellow"}, {90, "yellow"},
		{90.1, "red"}, {100, "red"},
	}
	for _, tc := range tests {
		if got := utilizationColor(tc.pct); got != tc.want {
			t.Errorf("utilizationColor(%v) = %s, want %s", tc.pct, got, tc.want)
		}
	}
}

func TestAccountsWidget(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp AccountsResponse
	e.getJSON("alice", "/api/accounts", &resp)
	if len(resp.Accounts) != 1 {
		t.Fatalf("accounts = %+v", resp.Accounts)
	}
	a := resp.Accounts[0]
	if a.Account != "lab-a" || a.CPUsInUse != 8 || a.GrpCPULimit != 24 {
		t.Fatalf("account row = %+v", a)
	}
	if a.CPUPercent < 33.3 || a.CPUPercent > 33.4 {
		t.Fatalf("cpu%% = %v", a.CPUPercent)
	}
	if a.ExportURL == "" {
		t.Fatal("missing export URL")
	}
	// bob sees both accounts.
	e.getJSON("bob", "/api/accounts", &resp)
	if len(resp.Accounts) != 2 {
		t.Fatalf("bob accounts = %+v", resp.Accounts)
	}
}

func TestAccountExportCSV(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	status, body := e.get("alice", "/api/accounts/lab-a/export.csv")
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	// Header plus one row per account member (alice and bob), active user first.
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), body)
	}
	if !strings.HasPrefix(lines[0], "user,cpus_in_use") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alice,4,") {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "bob,0,") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestAccountExportForbiddenForNonMembers(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("carol", "/api/accounts/lab-a/export.csv", 403)
}

func TestStorageWidget(t *testing.T) {
	e := newEnv(t)
	if err := e.storage.SetUsage("/home/alice", 24<<30, 100_000); err != nil {
		t.Fatal(err)
	}
	var resp StorageResponse
	e.getJSON("alice", "/api/storage", &resp)
	if len(resp.Directories) != 3 { // home, scratch, lab-a depot
		t.Fatalf("directories = %+v", resp.Directories)
	}
	home := resp.Directories[0]
	if home.Path != "/home/alice" || home.Kind != "home" {
		t.Fatalf("home = %+v", home)
	}
	if home.UsagePercent != 96 || home.Color != "red" {
		t.Fatalf("home usage = %v color %s", home.UsagePercent, home.Color)
	}
	if !strings.HasPrefix(home.FilesAppURL, "/pun/sys/files/fs/home/alice") {
		t.Fatalf("files URL = %q", home.FilesAppURL)
	}
}

func TestStoragePrivacy(t *testing.T) {
	e := newEnv(t)
	var resp StorageResponse
	e.getJSON("carol", "/api/storage", &resp)
	for _, d := range resp.Directories {
		if strings.Contains(d.Path, "alice") || strings.Contains(d.Path, "lab-a") {
			t.Fatalf("carol sees %s", d.Path)
		}
	}
}

func TestUnauthenticatedRequests(t *testing.T) {
	e := newEnv(t)
	for _, path := range []string{
		"/api/recent_jobs", "/api/system_status", "/api/accounts",
		"/api/storage", "/api/myjobs", "/api/jobperf", "/api/cluster_status",
		"/api/announcements",
	} {
		e.wantStatus("", path, 401)
	}
}

func TestUnknownUserForbidden(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("mallory", "/api/recent_jobs", 403)
}

func TestSystemStatusShowsMaintenance(t *testing.T) {
	e := newEnv(t)
	start := e.clock.Now().Add(24 * time.Hour)
	if _, err := e.cluster.Ctl.ScheduleMaintenance("july-pm", start, start.Add(8*time.Hour),
		nil, "quarterly maintenance"); err != nil {
		t.Fatal(err)
	}
	var resp SystemStatusResponse
	e.getJSON("alice", "/api/system_status", &resp)
	if len(resp.Maintenance) != 1 {
		t.Fatalf("maintenance = %+v", resp.Maintenance)
	}
	m := resp.Maintenance[0]
	if m.Name != "july-pm" || m.Active || m.Nodes != "ALL" {
		t.Fatalf("notice = %+v", m)
	}
	if m.Reason != "quarterly maintenance" {
		t.Fatalf("reason = %q", m.Reason)
	}
	// Once the window begins (and the cache TTL passes), it reads active.
	e.advance(25 * time.Hour)
	e.getJSON("alice", "/api/system_status", &resp)
	if len(resp.Maintenance) != 1 || !resp.Maintenance[0].Active {
		t.Fatalf("active notice = %+v", resp.Maintenance)
	}
}
