package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestJobOverviewRunning(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "overview-me", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192}, TimeLimit: 2 * time.Hour,
		WorkDir:    "/home/alice/run",
		StdoutPath: "/home/alice/run/out.log",
		StderrPath: "/home/alice/run/err.log",
		Profile:    slurm.UsageProfile{ActualDuration: 90 * time.Minute, CPUUtilization: 0.75},
	})
	e.advance(30 * time.Minute)

	var resp JobOverviewResponse
	e.getJSON("alice", "/api/job/"+jobIDStr(id), &resp)
	if resp.Name != "overview-me" || resp.State != "RUNNING" || resp.Color != "blue" {
		t.Fatalf("header = %+v", resp)
	}
	if resp.CPUs != 4 || resp.MemMB != 8192 || resp.NumNodes != 1 {
		t.Fatalf("resources = %+v", resp)
	}
	if len(resp.Nodes) != 1 || !strings.HasPrefix(resp.NodeURLs[0], "/node/c") {
		t.Fatalf("node links = %v %v", resp.Nodes, resp.NodeURLs)
	}
	if resp.WallSeconds != 1800 || resp.TimeLimitSeconds != 7200 || resp.RemainingSeconds != 5400 {
		t.Fatalf("time card = wall %d limit %d remaining %d",
			resp.WallSeconds, resp.TimeLimitSeconds, resp.RemainingSeconds)
	}
	// Timeline: submitted/eligible/started done; ended pending.
	if len(resp.Timeline) != 4 {
		t.Fatalf("timeline = %+v", resp.Timeline)
	}
	for i, want := range []bool{true, true, true, false} {
		if resp.Timeline[i].Done != want {
			t.Fatalf("timeline[%d].Done = %v, want %v", i, resp.Timeline[i].Done, want)
		}
	}
	if !resp.HasLogs || resp.StdoutURL == "" || resp.StderrURL == "" {
		t.Fatalf("log links = %+v", resp)
	}
	// Efficiency card present for a running job.
	if resp.Efficiency.CPUPercent == nil || *resp.Efficiency.CPUPercent != 75 {
		t.Fatalf("cpu eff = %v", resp.Efficiency.CPUPercent)
	}
}

func TestJobOverviewPendingReason(t *testing.T) {
	e := newEnv(t)
	var last slurm.JobID
	for i := 0; i < 4; i++ {
		last = e.submit(slurm.SubmitRequest{
			User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024},
			Profile: slurm.UsageProfile{ActualDuration: time.Hour},
		})
	}
	var resp JobOverviewResponse
	e.getJSON("alice", "/api/job/"+jobIDStr(last), &resp)
	if resp.State != "PENDING" || resp.Color != "yellow" {
		t.Fatalf("pending header = %+v", resp)
	}
	if resp.Reason != "AssocGrpCpuLimit" || !strings.Contains(resp.ReasonHelp, "aggregate group CPU limit") {
		t.Fatalf("reason = %q help = %q", resp.Reason, resp.ReasonHelp)
	}
}

func TestJobOverviewGroupVisibilityAndLogPrivacy(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "alices", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 1, MemMB: 512},
		StdoutPath: "/home/alice/out.log",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	// bob (same group) can view the job but gets no log URLs.
	var resp JobOverviewResponse
	e.getJSON("bob", "/api/job/"+jobIDStr(id), &resp)
	if resp.HasLogs || resp.StdoutURL != "" {
		t.Fatalf("group member got log access: %+v", resp)
	}
	// carol (different group) cannot view at all.
	e.wantStatus("carol", "/api/job/"+jobIDStr(id), 403)
}

func TestJobOverviewSessionTab(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "sys/dashboard/rstudio", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:        slurm.TRES{CPUs: 2, MemMB: 4096},
		WorkDir:        "/home/alice/ondemand/data/sys/dashboard/batch_connect",
		InteractiveApp: "rstudio", SessionID: "f00dcafe",
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp JobOverviewResponse
	e.getJSON("alice", "/api/job/"+jobIDStr(id), &resp)
	if resp.App != "rstudio" || resp.SessionID != "f00dcafe" {
		t.Fatalf("session tab = %+v", resp)
	}
	if !strings.Contains(resp.RelaunchURL, "rstudio") {
		t.Fatalf("relaunch URL = %q", resp.RelaunchURL)
	}
	if !strings.Contains(resp.SessionDirURL, resp.App) == false && resp.SessionDirURL == "" {
		t.Fatalf("session dir URL = %q", resp.SessionDirURL)
	}
}

func TestJobOverviewUnknownJob(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/job/999999", 404)
	e.wantStatus("alice", "/api/job/banana", 400)
}

func TestJobLogsTailAndNumbering(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "loggy", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 1, MemMB: 512},
		StdoutPath: "/home/alice/loggy.out",
		StderrPath: "/home/alice/loggy.err",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var content strings.Builder
	for i := 1; i <= 2500; i++ {
		fmt.Fprintf(&content, "step %d\n", i)
	}
	e.logs.Write("/home/alice/loggy.out", content.String())
	e.logs.Write("/home/alice/loggy.err", "warning: something\n")

	var resp JobLogsResponse
	e.getJSON("alice", "/api/job/"+jobIDStr(id)+"/logs?stream=out", &resp)
	if resp.TotalLines != 2500 || len(resp.Lines) != 1000 || !resp.Truncated {
		t.Fatalf("log view = total %d shown %d truncated %v",
			resp.TotalLines, len(resp.Lines), resp.Truncated)
	}
	if resp.Lines[0].Number != 1501 || resp.Lines[0].Text != "step 1501" {
		t.Fatalf("first shown line = %+v", resp.Lines[0])
	}
	if last := resp.Lines[999]; last.Number != 2500 || last.Text != "step 2500" {
		t.Fatalf("last line = %+v", last)
	}
	if !strings.Contains(resp.FullFileURL, "/home/alice/loggy.out") {
		t.Fatalf("full file URL = %q", resp.FullFileURL)
	}

	e.getJSON("alice", "/api/job/"+jobIDStr(id)+"/logs?stream=err", &resp)
	if resp.TotalLines != 1 || resp.Truncated {
		t.Fatalf("err view = %+v", resp)
	}
}

func TestJobLogsOwnerOnly(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "private", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 1, MemMB: 512},
		StdoutPath: "/home/alice/private.out",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	e.logs.Write("/home/alice/private.out", "secret results\n")
	// Same-group member bob is still denied (filesystem permissions).
	e.wantStatus("bob", "/api/job/"+jobIDStr(id)+"/logs", 403)
	e.wantStatus("carol", "/api/job/"+jobIDStr(id)+"/logs", 403)
	e.wantStatus("alice", "/api/job/"+jobIDStr(id)+"/logs?stream=bogus", 400)
}

func TestJobLogsMissingFile(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "nolog", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 1, MemMB: 512},
		StdoutPath: "/home/alice/never-written.out",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	e.wantStatus("alice", "/api/job/"+jobIDStr(id)+"/logs", 404)
}

func TestJobArrayTab(t *testing.T) {
	e := newEnv(t)
	first, err := e.cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "sweep", User: "alice", Account: "lab-a", Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour, ArraySize: 6,
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
			CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.cluster.Ctl.Tick()
	e.advance(15 * time.Minute)

	var resp JobArrayResponse
	e.getJSON("alice", fmt.Sprintf("/api/job/%d/array", first), &resp)
	if len(resp.Tasks) != 6 {
		t.Fatalf("tasks = %d", len(resp.Tasks))
	}
	if resp.StateCounts["COMPLETED"] != 6 {
		t.Fatalf("state counts = %+v", resp.StateCounts)
	}
	for i, task := range resp.Tasks {
		if task.TaskID != i {
			t.Fatalf("task %d has TaskID %d", i, task.TaskID)
		}
		if !strings.Contains(task.JobID, "_") {
			t.Fatalf("task job id = %q", task.JobID)
		}
	}
	// Overview of an array task links back to the array.
	var ov JobOverviewResponse
	e.getJSON("alice", "/api/job/"+resp.Tasks[2].JobID, &ov)
	if !ov.IsArrayTask || ov.ArrayURL == "" {
		t.Fatalf("array task overview = %+v", ov)
	}
	// Privacy: carol cannot see the array.
	e.wantStatus("carol", fmt.Sprintf("/api/job/%d/array", first), 403)
}

func TestJobOverviewCompletedColor(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "done", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Minute, CPUUtilization: 0.5, MemUtilization: 0.5},
	})
	e.advance(2 * time.Minute)
	var resp JobOverviewResponse
	e.getJSON("alice", "/api/job/"+jobIDStr(id), &resp)
	if resp.State != "COMPLETED" || resp.Color != "green" {
		t.Fatalf("completed = %+v", resp)
	}
	if !resp.Timeline[3].Done {
		t.Fatal("ended milestone not done")
	}
}

func TestHTMLPagesRender(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	pages := []string{"/", "/myjobs", "/jobperf", "/clusterstatus",
		"/node/c001", "/job/" + jobIDStr(id), "/news"}
	for _, p := range pages {
		status, body := e.get("alice", p)
		if status != 200 {
			t.Fatalf("GET %s: %d", p, status)
		}
		html := string(body)
		if !strings.Contains(html, "<!DOCTYPE html>") || !strings.Contains(html, "data-api") {
			t.Fatalf("page %s malformed:\n%.200s", p, html)
		}
	}
	// Unauthenticated page loads are rejected.
	status, _ := e.get("", "/")
	if status != 401 {
		t.Fatalf("unauthenticated home = %d", status)
	}
	// Static assets are served.
	for _, p := range []string{"/assets/dashboard.css", "/assets/cache.js", "/assets/widgets.js"} {
		if status, _ := e.get("", p); status != 200 {
			t.Fatalf("asset %s = %d", p, status)
		}
	}
}

func TestHomepageListsAllFiveWidgets(t *testing.T) {
	e := newEnv(t)
	_, body := e.get("alice", "/")
	html := string(body)
	for _, api := range []string{
		"/api/announcements", "/api/recent_jobs", "/api/system_status",
		"/api/accounts", "/api/storage",
	} {
		if !strings.Contains(html, api) {
			t.Fatalf("homepage missing widget %s", api)
		}
	}
}
