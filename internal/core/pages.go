package core

import (
	"html/template"
	"log"
	"net/http"
)

// The page templates reproduce the paper's frontend structure (§2.3): every
// page renders immediately with loading placeholders, and each widget is a
// self-contained block that fetches its own API route with client-side
// caching — so a slow data source shows a spinner in one card instead of
// blocking the whole dashboard.

// baseTemplate is the shared layout (the ERB layout equivalent).
const baseTemplate = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}} — {{.Cluster}} Dashboard</title>
<link rel="stylesheet" href="/assets/dashboard.css">
</head>
<body data-user="{{.User}}">
<nav class="navbar">
  <a class="brand" href="/">{{.Cluster}} OnDemand</a>
  <a href="/myjobs">My Jobs</a>
  <a href="/jobperf">Job Performance</a>
  <a href="/clusterstatus">Cluster Status</a>
  <a href="/insights">Insights</a>
{{if .IsAdmin}}  <a href="/admin">Traces</a>
  <a href="/admin/slo">SLO</a>
{{end}}  <span class="spacer"></span>
  <span class="user">{{.User}}</span>
</nav>
<main>
{{template "content" .}}
</main>
<script src="/assets/cache.js"></script>
<script src="/assets/widgets.js"></script>
</body>
</html>`

// pageTemplates maps page names to their content blocks. Each widget div
// carries its API route and client-cache TTL as data attributes consumed by
// widgets.js; this is the template/API-route pairing of §2.3.
var pageTemplates = map[string]string{
	"home": `{{define "content"}}
<h1 class="sr-only">Dashboard homepage</h1>
<div class="widget-grid">
  <section class="widget" id="announcements" data-api="/api/announcements" data-ttl="1800">
    <h2>Announcements <a class="more" href="/news">All news</a></h2>
    <div class="widget-body loading" role="status">Loading announcements…</div>
  </section>
  <section class="widget" id="recent-jobs" data-api="/api/recent_jobs" data-ttl="30">
    <h2>Recent Jobs <a class="more" href="/myjobs">All jobs</a></h2>
    <div class="widget-body loading" role="status">Loading recent jobs…</div>
  </section>
  <section class="widget" id="system-status" data-api="/api/system_status" data-ttl="60">
    <h2>System Status <a class="more" href="/clusterstatus">Details</a></h2>
    <div class="widget-body loading" role="status">Loading system status…</div>
  </section>
  <section class="widget" id="accounts" data-api="/api/accounts" data-ttl="60">
    <h2>Accounts <a class="more" href="{{.UserGuideURL}}">User guide</a></h2>
    <div class="widget-body loading" role="status">Loading accounts…</div>
  </section>
  <section class="widget" id="storage" data-api="/api/storage" data-ttl="3600">
    <h2>Storage</h2>
    <div class="widget-body loading" role="status">Loading storage…</div>
  </section>
</div>
{{end}}`,

	"myjobs": `{{define "content"}}
<h1>My Jobs</h1>
<div class="controls">
  <select id="range" aria-label="Time range">
    <option value="24h">Last 24 hours</option>
    <option value="7d" selected>Last 7 days</option>
    <option value="30d">Last 30 days</option>
    <option value="90d">Last 90 days</option>
    <option value="all">All time</option>
    <option value="custom">Custom…</option>
  </select>
  <button id="toggle-efficiency">Toggle Efficiency Data</button>
</div>
<section class="widget" id="myjobs-charts" data-api="/api/myjobs/charts" data-ttl="120">
  <h2>Job distribution</h2>
  <div class="widget-body loading" role="status">Loading charts…</div>
</section>
<section class="widget" id="myjobs-table" data-api="/api/myjobs" data-ttl="120">
  <h2>Jobs</h2>
  <div class="widget-body loading" role="status">Loading jobs…</div>
</section>
{{end}}`,

	"jobperf": `{{define "content"}}
<h1>Job Performance Metrics</h1>
<section class="widget" id="jobperf" data-api="/api/jobperf" data-ttl="120">
  <div class="widget-body loading" role="status">Loading metrics…</div>
</section>
{{end}}`,

	"clusterstatus": `{{define "content"}}
<h1>Cluster Status</h1>
<div class="controls">
  <button id="view-grid" aria-pressed="true">Grid view</button>
  <button id="view-list" aria-pressed="false">List view</button>
  <input id="search" type="search" placeholder="Filter nodes…" aria-label="Filter nodes">
</div>
<section class="widget" id="cluster-status" data-api="/api/cluster_status" data-ttl="60">
  <div class="widget-body loading" role="status">Loading nodes…</div>
</section>
{{end}}`,

	"node": `{{define "content"}}
<h1>Node {{.Subject}}</h1>
<section class="widget" id="node-overview" data-api="/api/node/{{.Subject}}" data-ttl="30">
  <div class="widget-body loading" role="status">Loading node…</div>
</section>
<section class="widget" id="node-jobs" data-api="/api/node/{{.Subject}}/jobs" data-ttl="30">
  <h2>Running jobs</h2>
  <div class="widget-body loading" role="status">Loading jobs…</div>
</section>
{{end}}`,

	"job": `{{define "content"}}
<h1>Job {{.Subject}}</h1>
<section class="widget" id="job-overview" data-api="/api/job/{{.Subject}}" data-ttl="15">
  <div class="widget-body loading" role="status">Loading job…</div>
</section>
<section class="widget tabs" id="job-logs"
         data-api="/api/job/{{.Subject}}/logs" data-ttl="0">
  <h2>Output</h2>
  <div class="widget-body loading" role="status">Loading logs…</div>
</section>
{{end}}`,

	"insights": `{{define "content"}}
<h1>Job Insights</h1>
<p>Automated analysis of your recent jobs with recommendations.</p>
<section class="widget" id="insights" data-api="/api/insights?range=30d" data-ttl="120">
  <div class="widget-body loading" role="status">Analyzing your jobs…</div>
</section>
{{end}}`,

	"news": `{{define "content"}}
<h1>All News</h1>
<section class="widget" id="all-news" data-api="/api/announcements" data-ttl="1800">
  <div class="widget-body loading" role="status">Loading news…</div>
</section>
{{end}}`,

	// The admin traces page is staff-only (the /admin route checks the
	// Admin flag before rendering): a filterable listing of the tail-sampled
	// trace store and a per-trace waterfall. Its widget sections are driven
	// by traces.js rather than widgets.js — trace payloads are admin-scoped
	// and must not land in the shared IndexedDB client cache.
	"admin": `{{define "content"}}
<h1>Request Traces</h1>
<div class="controls">
  <input id="f-widget" type="search" placeholder="Widget…" aria-label="Filter by widget">
  <input id="f-minms" type="number" min="0" placeholder="Min ms" aria-label="Minimum duration in milliseconds">
  <label><input id="f-degraded" type="checkbox"> Degraded/error only</label>
  <button id="f-refresh">Refresh</button>
</div>
<section class="widget" id="trace-list">
  <h2>Retained traces</h2>
  <div class="widget-body loading" role="status">Loading traces…</div>
</section>
<section class="widget" id="trace-detail">
  <h2>Waterfall</h2>
  <div class="widget-body" role="status">Select a trace above.</div>
</section>
<script src="/assets/traces.js"></script>
{{end}}`,

	// The admin SLO page is staff-only like /admin: each objective's error
	// budget (spent/remaining/exhaustion ETA), every burn-rate rule's live
	// state, and the recent alert transition log. Driven by slo.js against
	// /api/admin/slo — admin-scoped, never cached client-side.
	"slo": `{{define "content"}}
<h1>Service Objectives</h1>
<div class="controls">
  <button id="slo-refresh">Refresh</button>
  <span id="slo-asof" role="status"></span>
</div>
<section class="widget" id="slo-budgets">
  <h2>Error budgets</h2>
  <div class="widget-body loading" role="status">Loading objectives…</div>
</section>
<section class="widget" id="slo-alerts">
  <h2>Burn-rate alerts</h2>
  <div class="widget-body loading" role="status">Loading alerts…</div>
</section>
<section class="widget" id="slo-transitions">
  <h2>Recent transitions</h2>
  <div class="widget-body" role="status">None yet.</div>
</section>
<script src="/assets/slo.js"></script>
{{end}}`,
}

// pages holds the parsed template set, one entry per page.
var pages = func() map[string]*template.Template {
	out := make(map[string]*template.Template, len(pageTemplates))
	for name, content := range pageTemplates {
		t := template.Must(template.New("base").Parse(baseTemplate))
		template.Must(t.Parse(content))
		out[name] = t
	}
	return out
}()

// pageData is what every page template receives.
type pageData struct {
	Title        string
	Cluster      string
	User         string
	UserGuideURL string
	// Subject is the page's path parameter (node name or job ID).
	Subject string
	// IsAdmin gates the staff-only navigation entries.
	IsAdmin bool
}

// renderPage executes a page template; authentication failures render a 401
// page rather than JSON since these are browser navigations.
func (s *Server) renderPage(w http.ResponseWriter, r *http.Request, page, title, subject string) {
	user, err := s.currentUser(r)
	if err != nil {
		http.Error(w, "authentication required", http.StatusUnauthorized)
		return
	}
	t, ok := pages[page]
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	data := pageData{
		Title:        title,
		Cluster:      s.cfg.ClusterName,
		User:         user.Name,
		UserGuideURL: s.cfg.UserGuideURL,
		Subject:      subject,
		IsAdmin:      user.Admin,
	}
	if err := t.ExecuteTemplate(w, "base", data); err != nil {
		log.Printf("core: rendering %s: %v", page, err)
	}
}

// registerPages mounts the HTML pages and static assets.
func (s *Server) registerPages(mux *http.ServeMux) {
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "home", "Home", "")
	})
	mux.HandleFunc("GET /myjobs", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "myjobs", "My Jobs", "")
	})
	mux.HandleFunc("GET /jobperf", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "jobperf", "Job Performance Metrics", "")
	})
	mux.HandleFunc("GET /clusterstatus", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "clusterstatus", "Cluster Status", "")
	})
	mux.HandleFunc("GET /node/{name}", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "node", "Node Overview", r.PathValue("name"))
	})
	mux.HandleFunc("GET /job/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "job", "Job Overview", r.PathValue("id"))
	})
	mux.HandleFunc("GET /news", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "news", "All News", "")
	})
	mux.HandleFunc("GET /insights", func(w http.ResponseWriter, r *http.Request) {
		s.renderPage(w, r, "insights", "Job Insights", "")
	})
	mux.HandleFunc("GET /admin", func(w http.ResponseWriter, r *http.Request) {
		user, err := s.currentUser(r)
		if err != nil {
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		if !user.Admin {
			http.Error(w, "admin access required", http.StatusForbidden)
			return
		}
		s.renderPage(w, r, "admin", "Request Traces", "")
	})
	mux.HandleFunc("GET /admin/slo", func(w http.ResponseWriter, r *http.Request) {
		user, err := s.currentUser(r)
		if err != nil {
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		if !user.Admin {
			http.Error(w, "admin access required", http.StatusForbidden)
			return
		}
		s.renderPage(w, r, "slo", "Service Objectives", "")
	})
	mux.HandleFunc("GET /assets/dashboard.css", serveAsset("text/css", assetCSS))
	mux.HandleFunc("GET /assets/cache.js", serveAsset("application/javascript", assetCacheJS))
	mux.HandleFunc("GET /assets/widgets.js", serveAsset("application/javascript", assetWidgetsJS))
	mux.HandleFunc("GET /assets/traces.js", serveAsset("application/javascript", assetTracesJS))
	mux.HandleFunc("GET /assets/slo.js", serveAsset("application/javascript", assetSLOJS))
}

func serveAsset(contentType, body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("Cache-Control", "public, max-age=3600")
		_, _ = w.Write([]byte(body))
	}
}
