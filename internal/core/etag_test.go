package core

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/slurm"
)

// TestETagMatch locks in the RFC 9110 §13.1.2 weak-comparison semantics
// of If-None-Match evaluation (shared with internal/slurmrest via
// internal/etag): W/ prefixes are ignored, candidate lists may carry odd
// whitespace, "*" matches anything, and comparison is whole-tag — a
// candidate that is a mere prefix of the tag must not match.
func TestETagMatch(t *testing.T) {
	tag := `"00000000deadbeef"`
	cases := []struct {
		name   string
		header string
		want   bool
	}{
		{"empty header", "", false},
		{"exact strong match", tag, true},
		{"wildcard", "*", true},
		{"wildcard with whitespace", "  *  ", true},
		{"weak candidate matches strong tag", `W/` + tag, true},
		{"weak candidate with surrounding space", ` W/` + tag + ` `, true},
		{"second candidate matches", `"other", ` + tag, true},
		{"first candidate matches", tag + `, "other"`, true},
		{"middle candidate, odd whitespace", `"a" ,   W/` + tag + `  ,"b"`, true},
		{"tab-separated candidates", "\"a\",\t" + tag, true},
		{"no candidate matches", `"other"`, false},
		{"multiple non-matching candidates", `"a", W/"b", "c"`, false},
		{"candidate is a prefix of the tag", `"00000000deadbee`, false},
		{"candidate is the tag minus quotes", `00000000deadbeef`, false},
		{"tag is a prefix of the candidate", tag[:len(tag)-1] + `ff"`, false},
		{"empty list elements around a match", `, ` + tag + ` ,`, true},
		{"weak marker alone", `W/`, false},
		{"weak marker inside quotes is literal", `"W/00000000deadbeef"`, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, tag); got != c.want {
			t.Errorf("%s: etagMatch(%q) = %v, want %v", c.name, c.header, got, c.want)
		}
	}
}

func TestConditionalWidgetRequests(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()

	status, header, body := e.getFull("alice", "/api/system_status")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	tag := header.Get("ETag")
	if !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) {
		t.Fatalf("ETag = %q, want quoted tag", tag)
	}

	// Revalidating with the tag: 304, empty body, counted on /metrics.
	req, _ := http.NewRequest("GET", e.web.URL+"/api/system_status", nil)
	req.Header.Set(auth.UserHeader, "alice")
	req.Header.Set("If-None-Match", tag)
	resp, err := e.web.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	if resp.ContentLength > 0 {
		t.Fatalf("304 carried a body of %d bytes", resp.ContentLength)
	}
	_, metrics := e.get("staff", "/metrics")
	if !strings.Contains(string(metrics), `ooddash_not_modified_total{widget="system_status"} 1`) {
		t.Fatal("ooddash_not_modified_total not counted")
	}

	// A mismatched tag serves the full body with the same ETag (payload is
	// cached and unchanged).
	req.Header.Set("If-None-Match", `"0011223344556677"`)
	resp, err = e.web.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != tag {
		t.Fatalf("mismatch revalidation: status %d etag %q, want 200 %q",
			resp.StatusCode, resp.Header.Get("ETag"), tag)
	}
	if len(body) == 0 {
		t.Fatal("expected a body on mismatch")
	}

	// Degraded responses must not be conditional: warm a widget, kill the
	// controller, expire the cache, and confirm the stale fallback carries
	// no ETag.
	status, _, _ = e.getFull("alice", "/api/recent_jobs")
	if status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}
	e.cluster.Ctl.SetHealth(slurm.HealthDown, "etag drill")
	e.clock.Advance(31 * time.Second)
	status, header, _ = e.getFull("alice", "/api/recent_jobs")
	if status != http.StatusOK || header.Get(degradedHeader) == "" {
		t.Fatalf("degraded fetch: status %d degraded %q", status, header.Get(degradedHeader))
	}
	if got := header.Get("ETag"); got != "" {
		t.Fatalf("degraded response carried ETag %q", got)
	}
}

// etagForSprintf is the previous etagFor implementation, kept as the
// micro-benchmark baseline: a hash.Hash64 allocation plus two Sprintf
// round-trips per tag.
func etagForSprintf(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// TestETagForMatchesLegacy pins the rewritten etagFor to the old
// implementation's exact output, so tags stored by clients before the
// rewrite keep revalidating.
func TestETagForMatchesLegacy(t *testing.T) {
	bodies := [][]byte{
		nil,
		{},
		[]byte("{}"),
		[]byte(`{"jobs":[1,2,3]}` + "\n"),
		[]byte(strings.Repeat("x", 4096)),
	}
	for _, body := range bodies {
		if got, want := etagFor(body), etagForSprintf(body); got != want {
			t.Errorf("etagFor(%d bytes) = %q, legacy = %q", len(body), got, want)
		}
	}
}

func BenchmarkETagFor(b *testing.B) {
	body := []byte(strings.Repeat(`{"jobs":[{"id":1}]}`, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if etagFor(body) == "" {
			b.Fatal("empty tag")
		}
	}
}

func BenchmarkETagForSprintf(b *testing.B) {
	body := []byte(strings.Repeat(`{"jobs":[{"id":1}]}`, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if etagForSprintf(body) == "" {
			b.Fatal("empty tag")
		}
	}
}
