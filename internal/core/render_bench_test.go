package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ooddash/internal/auth"
	"ooddash/internal/slurm"
)

// benchServe drives the widget path in-process (no network) and reports
// allocations — the regression numbers the encode-once work is about.
// Tracing is disabled so these benchmarks keep measuring the PR-4 hit path;
// trace_bench_test.go measures the tracing overhead against them.
func benchServe(b *testing.B, path string, renderOff bool, ifNoneMatch bool) {
	benchServeSampled(b, path, renderOff, ifNoneMatch, -1)
}

// benchServeSampled is benchServe with an explicit head-sampling setting
// (-1 tracing off, 0 sampled-out, 1 every request traced).
func benchServeSampled(b *testing.B, path string, renderOff bool, ifNoneMatch bool, sample float64) {
	e := newEnv(b)
	for i := 0; i < 20; i++ {
		e.submit(slurm.SubmitRequest{Name: fmt.Sprintf("j%d", i), User: "alice",
			Account: "lab-a", Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512}})
	}
	e.server.SetRenderCacheDisabled(renderOff)
	defer e.server.SetRenderCacheDisabled(false)
	e.server.SetTraceSample(sample)

	req := httptest.NewRequest("GET", path, nil)
	req.Header.Set(auth.UserHeader, "alice")

	// Warm both cache layers and capture the ETag for revalidation mode.
	warm := httptest.NewRecorder()
	e.server.ServeHTTP(warm, req)
	if warm.Code != http.StatusOK {
		b.Fatalf("warm GET %s: status %d: %s", path, warm.Code, warm.Body.String())
	}
	if ifNoneMatch {
		tag := warm.Header().Get("ETag")
		if tag == "" {
			b.Fatalf("GET %s: no ETag to revalidate against", path)
		}
		req.Header.Set("If-None-Match", tag)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := newLoopbackRecorder()
		e.server.ServeHTTP(rec, req)
		want := http.StatusOK
		if ifNoneMatch {
			want = http.StatusNotModified
		}
		if rec.status != want {
			b.Fatalf("GET %s: status %d, want %d", path, rec.status, want)
		}
		rec.release()
	}
}

// BenchmarkWidgetServeEncodeOnce is the materialized hit path: cache hit,
// rendered bytes reused, one Write.
func BenchmarkWidgetServeEncodeOnce(b *testing.B) {
	benchServe(b, "/api/myjobs", false, false)
}

// BenchmarkWidgetServeReencode is the pre-tentpole baseline: same cache hit,
// but the payload is rebuilt and re-marshaled per request.
func BenchmarkWidgetServeReencode(b *testing.B) {
	benchServe(b, "/api/myjobs", true, false)
}

// BenchmarkWidgetRevalidate304 is the cheapest possible serve: If-None-Match
// matches the stored ETag, so the response is headers only.
func BenchmarkWidgetRevalidate304(b *testing.B) {
	benchServe(b, "/api/myjobs", false, true)
}

func BenchmarkClusterStatusEncodeOnce(b *testing.B) {
	benchServe(b, "/api/cluster_status", false, false)
}

func BenchmarkClusterStatusReencode(b *testing.B) {
	benchServe(b, "/api/cluster_status", true, false)
}
