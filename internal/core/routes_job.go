package core

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/efficiency"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// stateColor maps job states to the header/timeline color (§7).
func stateColor(state slurm.JobState) string {
	switch state {
	case slurm.StateRunning, slurm.StateCompleting:
		return "blue"
	case slurm.StateCompleted:
		return "green"
	case slurm.StatePending, slurm.StateSuspended:
		return "yellow"
	case slurm.StateCancelled:
		return "gray"
	default: // FAILED, TIMEOUT, NODE_FAIL, OOM, PREEMPTED
		return "red"
	}
}

// TimelineEvent is one point on the Job Overview timeline: submitted,
// eligible, started, ended.
type TimelineEvent struct {
	Label string    `json:"label"`
	Time  time.Time `json:"time"`
	Done  bool      `json:"done"`
}

// JobOverviewResponse is the Job Overview API payload: header, timeline,
// and the overview/session tab cards (§7).
type JobOverviewResponse struct {
	// Header.
	JobID      string `json:"job_id"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Reason     string `json:"reason,omitempty"`
	ReasonHelp string `json:"reason_help,omitempty"`
	Color      string `json:"color"`

	Timeline []TimelineEvent `json:"timeline"`

	// Job Information card.
	User      string `json:"user"`
	Account   string `json:"account"`
	Partition string `json:"partition"`
	QOS       string `json:"qos"`
	ExitCode  int    `json:"exit_code"`

	// Resources card.
	CPUs     int      `json:"cpus"`
	NumNodes int      `json:"num_nodes"`
	MemMB    int64    `json:"mem_mb"`
	GPUs     int      `json:"gpus,omitempty"`
	Nodes    []string `json:"nodes,omitempty"`
	NodeURLs []string `json:"node_urls,omitempty"`

	// Time card.
	WallSeconds      int64 `json:"wall_seconds"`
	TimeLimitSeconds int64 `json:"time_limit_seconds"`
	RemainingSeconds int64 `json:"remaining_seconds"`
	CPUTimeSeconds   int64 `json:"cpu_time_seconds"`

	// Efficiency card.
	Efficiency EfficiencyView `json:"efficiency"`

	// Session tab (interactive jobs only).
	App           string `json:"app,omitempty"`
	SessionID     string `json:"session_id,omitempty"`
	SessionDirURL string `json:"session_dir_url,omitempty"`
	RelaunchURL   string `json:"relaunch_url,omitempty"`

	// Log tabs.
	HasLogs   bool   `json:"has_logs"`
	StdoutURL string `json:"stdout_url,omitempty"`
	StderrURL string `json:"stderr_url,omitempty"`

	// Job Array tab.
	IsArrayTask bool   `json:"is_array_task,omitempty"`
	ArrayJobID  string `json:"array_job_id,omitempty"`
	ArrayURL    string `json:"array_url,omitempty"`
}

// parseJobID accepts raw IDs ("1234") and array display IDs ("1230_4",
// resolved via the array base).
func parseJobID(raw string) (slurm.JobID, error) {
	if base, _, ok := strings.Cut(raw, "_"); ok {
		raw = base
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad job id %q", errBadRequest, raw)
	}
	return slurm.JobID(n), nil
}

// fetchJobDetail loads scontrol's view of a job, cached briefly.
func (s *Server) fetchJobDetail(r *http.Request, id slurm.JobID) (*slurmcli.JobDetail, fetchMeta, error) {
	key := fmt.Sprintf("job:%d", id)
	v, meta, err := s.fetchVia(r, srcCtld, key, s.cfg.TTLs.JobDetail, func(ctx context.Context) (any, error) {
		return s.ctldBk.ShowJob(ctx, id)
	})
	if err != nil {
		return nil, fetchMeta{}, err
	}
	return v.(*slurmcli.JobDetail), meta, nil
}

// fetchJobAccounting loads sacct's usage view of a job (for the efficiency
// card), cached with the detail TTL.
func (s *Server) fetchJobAccounting(r *http.Request, id slurm.JobID) (*slurmcli.SacctRow, fetchMeta, error) {
	key := fmt.Sprintf("job_acct:%d", id)
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobDetail, func(ctx context.Context) (any, error) {
		rows, err := s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			JobIDs: []slurm.JobID{id}, AllUsers: true,
		})
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return (*slurmcli.SacctRow)(nil), nil
		}
		return &rows[0], nil
	})
	if err != nil {
		return nil, fetchMeta{}, err
	}
	return v.(*slurmcli.SacctRow), meta, nil
}

// resolveJobForViewer loads a job and enforces the visibility rule: own
// jobs and group jobs only (§2.4 Privacy). Unavailability errors pass
// through unwrapped so the caller can answer 503 instead of 404.
func (s *Server) resolveJobForViewer(user *auth.User, r *http.Request, rawID string) (*slurmcli.JobDetail, fetchMeta, error) {
	id, err := parseJobID(rawID)
	if err != nil {
		return nil, fetchMeta{}, err
	}
	d, meta, err := s.fetchJobDetail(r, id)
	if err != nil {
		if isUnavailable(err) {
			return nil, fetchMeta{}, err
		}
		return nil, fetchMeta{}, fmt.Errorf("%w: job %s: %v", errNotFound, rawID, err)
	}
	if !auth.CanViewJob(user, d.User, d.Account) {
		return nil, fetchMeta{}, fmt.Errorf("%w: job %s belongs to another group", errForbidden, rawID)
	}
	return d, meta, nil
}

func (s *Server) handleJobOverview(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	d, meta, err := s.resolveJobForViewer(user, r, r.PathValue("id"))
	if err != nil {
		writeFetchError(w, err)
		return
	}
	now := s.clock.Now()

	// The efficiency card's accounting fetch happens outside the build
	// closure: it contributes to meta (rev, ttl, degradation), which must be
	// final before the rendered-cache lookup.
	var acct *slurmcli.SacctRow
	if a, m, err := s.fetchJobAccounting(r, d.ID); err == nil && a != nil {
		acct = a
		meta.absorb(m)
	}

	// The payload embeds owner-only log URLs, so the rendered variant is the
	// viewing user, not the job owner.
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		return s.buildJobOverview(user, d, acct, now), nil
	})
}

// buildJobOverview assembles the Job Overview payload from the cached
// scontrol and sacct views.
func (s *Server) buildJobOverview(user *auth.User, d *slurmcli.JobDetail, acct *slurmcli.SacctRow, now time.Time) JobOverviewResponse {
	resp := JobOverviewResponse{
		JobID: strconv.FormatInt(int64(d.ID), 10),
		Name:  d.Name,
		State: string(d.State),
		Color: stateColor(d.State),

		User: d.User, Account: d.Account,
		Partition: d.Partition, QOS: d.QOS,
		ExitCode: d.ExitCode,

		CPUs:     d.NumCPUs,
		NumNodes: d.NumNodes,
		MemMB:    d.MemMB,
		GPUs:     d.ReqTRES.GPUs,

		WallSeconds:      int64(d.RunTime / time.Second),
		TimeLimitSeconds: int64(d.TimeLimit / time.Second),
	}
	if d.State == slurm.StatePending {
		resp.Reason = string(d.Reason)
		if msg, ok := explainReason(d.Reason); ok {
			resp.ReasonHelp = msg
		}
	}
	if d.State == slurm.StateRunning {
		remaining := d.TimeLimit - d.RunTime
		if remaining < 0 {
			remaining = 0
		}
		resp.RemainingSeconds = int64(remaining / time.Second)
	}
	if d.NodeList != "" {
		nodes, err := slurm.ExpandNodeRange(d.NodeList)
		if err == nil {
			resp.Nodes = nodes
			resp.NodeURLs = make([]string, len(nodes))
			for i, n := range nodes {
				resp.NodeURLs[i] = "/node/" + n
			}
		}
	}

	// Timeline: submitted → eligible → started → ended.
	resp.Timeline = []TimelineEvent{
		{Label: "Submitted", Time: d.SubmitTime, Done: true},
		{Label: "Eligible", Time: d.EligibleTime, Done: !d.EligibleTime.IsZero() && !d.EligibleTime.After(now)},
		{Label: "Started", Time: d.StartTime, Done: !d.StartTime.IsZero()},
		{Label: "Ended", Time: d.EndTime, Done: !d.EndTime.IsZero()},
	}

	// Efficiency card from accounting. A dead slurmdbd quietly costs the
	// card, not the page: the overview still renders from scontrol data.
	if acct != nil {
		resp.Efficiency = efficiencyView(efficiency.Compute(acct))
		resp.CPUTimeSeconds = int64(acct.TotalCPU / time.Second)
	}

	// Session tab.
	if app, sess, ok := d.SessionInfo(); ok {
		resp.App = app
		resp.SessionID = sess
		resp.SessionDirURL = "/pun/sys/files/fs" + d.WorkDir
		resp.RelaunchURL = "/pun/sys/dashboard/batch_connect/sys/" + app + "/session_contexts/new"
	}

	// Log tabs: only the owner may view logs, so only the owner gets URLs.
	if auth.CanViewLogs(user, d.User) && d.StdoutPath != "" {
		resp.HasLogs = true
		resp.StdoutURL = fmt.Sprintf("/api/job/%d/logs?stream=out", d.ID)
		resp.StderrURL = fmt.Sprintf("/api/job/%d/logs?stream=err", d.ID)
	}

	// Job Array tab.
	if d.ArrayJobID != 0 {
		resp.IsArrayTask = true
		resp.ArrayJobID = strconv.FormatInt(int64(d.ArrayJobID), 10)
		resp.ArrayURL = fmt.Sprintf("/api/job/%d/array", d.ArrayJobID)
	}
	return resp
}

// --- Output/error log tabs (§7) ----------------------------------------------

// JobLogsResponse is the log-view payload: the most recent lines with
// absolute numbering, the total count, and a link to the full file in the
// OnDemand files app.
type JobLogsResponse struct {
	JobID       string    `json:"job_id"`
	Stream      string    `json:"stream"`
	Path        string    `json:"path"`
	Lines       []LogLine `json:"lines"`
	TotalLines  int       `json:"total_lines"`
	Truncated   bool      `json:"truncated"`
	FullFileURL string    `json:"full_file_url"`
}

func (s *Server) handleJobLogs(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	id, err := parseJobID(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	d, _, err := s.fetchJobDetail(r, id)
	if err != nil {
		if isUnavailable(err) {
			writeFetchError(w, err)
		} else {
			writeError(w, fmt.Errorf("%w: job %d: %v", errNotFound, id, err))
		}
		return
	}
	// Logs inherit filesystem permissions: owner only (§7) — and therefore
	// strictly per-identity for any cache in front.
	if !auth.CanViewLogs(user, d.User) {
		writeError(w, fmt.Errorf("%w: logs of job %d are not readable by %s", errForbidden, id, user.Name))
		return
	}
	setPrivateCache(w.Header())
	stream := r.URL.Query().Get("stream")
	var path string
	switch stream {
	case "", "out":
		stream, path = "out", d.StdoutPath
	case "err":
		path = d.StderrPath
	default:
		writeError(w, fmt.Errorf("%w: unknown stream %q", errBadRequest, stream))
		return
	}
	if path == "" {
		writeError(w, fmt.Errorf("%w: job %d has no %s log", errNotFound, id, stream))
		return
	}
	lines, total, err := s.logs.ReadTail(path, s.cfg.LogTailLines)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errNotFound, err))
		return
	}
	writeJSON(w, http.StatusOK, JobLogsResponse{
		JobID:       strconv.FormatInt(int64(id), 10),
		Stream:      stream,
		Path:        path,
		Lines:       lines,
		TotalLines:  total,
		Truncated:   total > len(lines),
		FullFileURL: "/pun/sys/files/fs" + path,
	})
}

// --- Job Array tab (§7) --------------------------------------------------------

// ArrayTaskRow is one task in the Job Array tab.
type ArrayTaskRow struct {
	JobID       string    `json:"job_id"`
	TaskID      int       `json:"task_id"`
	State       string    `json:"state"`
	SubmitTime  time.Time `json:"submit_time"`
	StartTime   time.Time `json:"start_time,omitempty"`
	EndTime     time.Time `json:"end_time,omitempty"`
	NodeList    string    `json:"node_list,omitempty"`
	ExitCode    int       `json:"exit_code"`
	OverviewURL string    `json:"overview_url"`
}

// JobArrayResponse lists every task of one job array.
type JobArrayResponse struct {
	ArrayJobID string         `json:"array_job_id"`
	Tasks      []ArrayTaskRow `json:"tasks"`
	// StateCounts summarizes the array's progress.
	StateCounts map[string]int `json:"state_counts"`
}

func (s *Server) handleJobArray(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	rawID := r.PathValue("id")
	id, err := parseJobID(rawID)
	if err != nil {
		writeError(w, err)
		return
	}
	key := fmt.Sprintf("job_array:%d", id)
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		return s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			ArrayJob: strconv.FormatInt(int64(id), 10), AllUsers: true,
		})
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	rows := v.([]slurmcli.SacctRow)
	if len(rows) == 0 {
		writeError(w, fmt.Errorf("%w: job array %d", errNotFound, id))
		return
	}
	if !auth.CanViewJob(user, rows[0].User, rows[0].Account) {
		writeError(w, fmt.Errorf("%w: job array %d belongs to another group", errForbidden, id))
		return
	}
	// The payload is the same for every authorized viewer (authz already
	// ran above), so the rendered variant is shared — but whether a viewer
	// is authorized varies per identity, so a fronting cache must not hand
	// this 200 to a user who would have gotten the 403 above.
	setPrivateCache(w.Header())
	s.serveRendered(w, r, meta, "", func() (any, error) {
		resp := JobArrayResponse{
			ArrayJobID:  rawID,
			Tasks:       make([]ArrayTaskRow, 0, len(rows)),
			StateCounts: make(map[string]int),
		}
		for i := range rows {
			row := &rows[i]
			taskID := 0
			if _, t, ok := strings.Cut(row.JobID, "_"); ok {
				taskID, _ = strconv.Atoi(t)
			}
			nodeList := row.NodeList
			if nodeList == "None assigned" {
				nodeList = ""
			}
			resp.Tasks = append(resp.Tasks, ArrayTaskRow{
				JobID:       row.JobID,
				TaskID:      taskID,
				State:       string(row.State),
				SubmitTime:  row.SubmitTime,
				StartTime:   row.StartTime,
				EndTime:     row.EndTime,
				NodeList:    nodeList,
				ExitCode:    row.ExitCode,
				OverviewURL: "/job/" + row.JobID,
			})
			resp.StateCounts[string(row.State)]++
		}
		return resp, nil
	})
}
