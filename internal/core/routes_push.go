package core

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/obs"
	"ooddash/internal/push"
)

// This file wires the live-update push subsystem (internal/push) into the
// dashboard: the SSE fan-out on GET /api/events, the per-widget refresh
// sources the background scheduler re-fetches on their cache TTL cadence,
// and the server lifecycle hooks (StartPush / TickPush / Close).
//
// A refresh is a loopback request through the server's own mux, so it takes
// exactly the route's normal path — auth, cache fill, resilience policy,
// degraded annotation — and costs upstream exactly what one cache-missing
// poll would. Connected SSE clients then receive the bytes the polling
// route would have served them, without issuing requests of their own:
// upstream cost becomes O(sources), not O(clients).

// pushRoute describes one push-enabled widget: the polling route the
// refresh scheduler re-fetches, whether its payload is per-user, and its
// refresh cadence (the widget's server cache TTL).
type pushRoute struct {
	widget  string
	path    string
	perUser bool
	ttl     time.Duration
}

// key returns the scheduler/hub source key for this route and user.
func (pr pushRoute) key(user string) string {
	if pr.perUser {
		return pr.widget + ":" + user
	}
	return pr.widget
}

// buildPushRoutes derives the push-enabled route table from the configured
// TTLs. Cluster-wide widgets share one source across all subscribers;
// per-user widgets get one source per subscribed user (paused when that
// user has no open stream).
func (s *Server) buildPushRoutes() map[string]pushRoute {
	ttls := s.cfg.TTLs
	routes := map[string]pushRoute{
		"announcements":  {widget: "announcements", path: "/api/announcements", ttl: ttls.Announcements},
		"system_status":  {widget: "system_status", path: "/api/system_status", ttl: ttls.SystemStatus},
		"cluster_status": {widget: "cluster_status", path: "/api/cluster_status", ttl: ttls.ClusterNodes},
		"recent_jobs":    {widget: "recent_jobs", path: "/api/recent_jobs", perUser: true, ttl: ttls.RecentJobs},
		"accounts":       {widget: "accounts", path: "/api/accounts", perUser: true, ttl: ttls.Accounts},
		"storage":        {widget: "storage", path: "/api/storage", perUser: true, ttl: ttls.Storage},
		"my_jobs":        {widget: "my_jobs", path: "/api/myjobs", perUser: true, ttl: ttls.JobHistory},
	}
	return routes
}

// pushRefreshHeader marks scheduler-issued loopback requests so access logs
// can tell background refreshes from client traffic.
const pushRefreshHeader = "X-OODDash-Push"

// loopbackRecorder captures one internal request's response without a
// network round-trip (a minimal httptest.ResponseRecorder, kept local so
// the serving path does not depend on a test package). Recorders are pooled:
// a refresh fires for every push source on every TTL expiry, and the header
// map plus body buffer are pure scratch between refreshes. Callers that
// retain response bytes past release must copy them out first.
type loopbackRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

var recorderPool = sync.Pool{
	New: func() any { return &loopbackRecorder{header: make(http.Header)} },
}

func newLoopbackRecorder() *loopbackRecorder {
	rec := recorderPool.Get().(*loopbackRecorder)
	rec.status = http.StatusOK
	return rec
}

func (l *loopbackRecorder) release() {
	clear(l.header)
	l.body.Reset()
	recorderPool.Put(l)
}

func (l *loopbackRecorder) Header() http.Header         { return l.header }
func (l *loopbackRecorder) WriteHeader(code int)        { l.status = code }
func (l *loopbackRecorder) Write(p []byte) (int, error) { return l.body.Write(p) }
func (l *loopbackRecorder) Flush()                      {}

// pushFetch builds the scheduler fetch for one route: a loopback GET
// through the server's own mux as the given user. Cluster-wide widgets
// capture the first subscriber's identity; their payloads are
// user-independent, the credential is only needed to pass the route's auth
// check.
func (s *Server) pushFetch(route pushRoute, user string) push.FetchFunc {
	return func(ctx context.Context) ([]byte, bool, error) {
		// Root the refresh in its own trace, origin "push": the loopback
		// request carries the minted ID in the trace header so the instrument
		// middleware joins this trace as a child "http" span instead of
		// minting an orphaned root it would misattribute to client traffic.
		id := obs.NewTraceID()
		tctx, sp := s.tracer.StartRoot(ctx, id, "push.refresh", route.widget, "push")
		req, err := http.NewRequestWithContext(tctx, http.MethodGet, route.path, nil)
		if err != nil {
			sp.End()
			return nil, false, err
		}
		req.Header.Set(auth.UserHeader, user)
		req.Header.Set("Accept", "application/json")
		req.Header.Set(pushRefreshHeader, "refresh")
		if sp != nil {
			req.Header[traceHeaderKey] = []string{id}
		}
		rec := newLoopbackRecorder()
		defer rec.release()
		s.mux.ServeHTTP(rec, req)
		degraded := rec.header.Get(degradedHeader) != ""
		if sp != nil {
			sp.SetAttr("status", statusLabel(rec.status))
			s.tracer.Finish(sp, rec.status != http.StatusOK, degraded)
		}
		if rec.status != http.StatusOK {
			return nil, false, fmt.Errorf("core: push refresh %s: status %d: %.120s",
				route.path, rec.status, rec.body.Bytes())
		}
		// The hub retains the payload; the recorder is about to be reused, so
		// hand over an exact-size copy rather than a view into its buffer.
		payload := bytes.TrimRight(rec.body.Bytes(), "\n")
		return append([]byte(nil), payload...), degraded, nil
	}
}

// handleEvents dispatches /api/events: an SSE request (Accept:
// text/event-stream or an explicit ?widgets= subscription) gets the
// live-update stream; anything else gets the legacy delta-poll feed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	wantsSSE := strings.Contains(r.Header.Get("Accept"), "text/event-stream") ||
		r.URL.Query().Get("widgets") != ""
	if wantsSSE && !s.cfg.Push.Disabled {
		s.handleEventStream(w, r)
		return
	}
	s.handleEventsPoll(w, r)
}

// parseSubscription resolves the requested widget set against the
// push-enabled table, returning routes in deterministic order.
func (s *Server) parseSubscription(r *http.Request) ([]pushRoute, error) {
	names := s.cfg.Push.Widgets
	if raw := r.URL.Query().Get("widgets"); raw != "" {
		names = strings.Split(raw, ",")
	}
	enabled := make(map[string]bool, len(s.cfg.Push.Widgets))
	for _, n := range s.cfg.Push.Widgets {
		enabled[n] = true
	}
	seen := make(map[string]bool, len(names))
	routes := make([]pushRoute, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		route, ok := s.pushRoutes[n]
		if !ok || !enabled[n] {
			return nil, fmt.Errorf("%w: widget %q is not push-enabled", errBadRequest, n)
		}
		routes = append(routes, route)
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("%w: empty widget subscription", errBadRequest)
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].widget < routes[j].widget })
	return routes, nil
}

// lastEventID reads the client's resume position: the standard
// Last-Event-ID header (set by EventSource on reconnect), with a
// ?last_event_id= fallback for clients that cannot set headers.
func lastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		return 0
	}
	return id
}

// handleEventStream is the SSE endpoint: it registers refresh sources for
// the subscribed widgets, replays current snapshots newer than the
// client's Last-Event-ID, then streams every new version until the client
// disconnects or the server shuts down.
func (s *Server) handleEventStream(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("core: event stream: response writer cannot flush"))
		return
	}
	routes, err := s.parseSubscription(r)
	if err != nil {
		writeError(w, err)
		return
	}

	// Register each source (idempotent) and make sure a current snapshot
	// exists, so a fresh client paints immediately. The synchronous refresh
	// rides the server cache: when another subscriber already keeps the
	// source warm this costs no upstream call. A failed refresh (cold
	// source during an outage) leaves the stream open; events begin when
	// the source recovers.
	fd := s.fleetDelegate()
	keys := make([]string, 0, len(routes))
	for _, route := range routes {
		key := route.key(user.Name)
		keys = append(keys, key)
		if fd != nil {
			// In a fleet, the key's owner (which may be another replica)
			// maintains the source; its snapshots are propagated into this
			// replica's hub, so the stream below works unchanged. Touch
			// records interest; Ensure additionally produces the initial
			// snapshot when the local hub has none yet.
			src := fleetSource(route, user.Name)
			if _, ok := s.pushHub.Latest(key); !ok {
				_, _ = fd.Ensure(r.Context(), src)
			} else {
				fd.Touch(src)
			}
			continue
		}
		if _, err := s.pushSched.Register(push.Source{
			Widget: route.widget,
			Key:    key,
			TTL:    route.ttl,
			Fetch:  s.pushFetch(route, user.Name),
		}); err != nil {
			writeError(w, err)
			return
		}
		if _, ok := s.pushHub.Latest(key); !ok {
			_, _ = s.pushSched.Refresh(r.Context(), key)
		}
	}

	sub := s.pushHub.Subscribe(keys)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	enc := push.NewEncoder(w)

	// Resume/initial replay: every subscribed widget's current snapshot
	// the client has not seen yet, in version order.
	for _, snap := range s.pushHub.Since(lastEventID(r), keys) {
		if err := enc.WriteEvent(snap.Widget, snap.Version, snap.Payload); err != nil {
			return
		}
	}
	flusher.Flush()

	// Heartbeats are wall-clock: they exist to keep real sockets and
	// proxies alive, independent of the (possibly simulated) data clock.
	var hbC <-chan time.Time
	if s.cfg.Push.Heartbeat > 0 {
		hb := time.NewTicker(s.cfg.Push.Heartbeat)
		defer hb.Stop()
		hbC = hb.C
	}

	shutdown := func() {
		_ = enc.WriteEvent("shutdown", 0, []byte(`{"reason":"server closing"}`))
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.pushDone:
			shutdown()
			return
		case <-sub.Done():
			shutdown()
			return
		case <-hbC:
			if err := enc.WriteComment("hb"); err != nil {
				return
			}
			flusher.Flush()
		case <-sub.Ready():
			for {
				snap, ok := sub.Pop()
				if !ok {
					break
				}
				if err := enc.WriteEvent(snap.Widget, snap.Version, snap.Payload); err != nil {
					return
				}
			}
			flusher.Flush()
		}
	}
}

// StartPush begins background refreshing on a wall-clock loop that checks
// source due-times every interval, and starts the periodic cache purge
// sweep (which runs even with push disabled — a poll-only server still
// accumulates cache entries). Production servers call this once; tests and
// the loadgen smoke mode drive TickPush on the simulated clock instead.
func (s *Server) StartPush(interval time.Duration) {
	s.startPurgeLoop()
	if s.cfg.Push.Disabled {
		return
	}
	s.pushSched.Run(interval)
}

// TickPush runs every due background refresh synchronously and reports how
// many sources were fetched. Call after advancing the shared simulated
// clock. It also runs the cache purge sweep when one is due on that clock.
func (s *Server) TickPush() int {
	s.maybePurge()
	n := s.pushSched.Tick()
	// Advance the SLO alert state machines after the refreshes so events
	// this tick produced are visible to the evaluation at the new clock
	// reading. (Wall-clock servers also evaluate lazily on every
	// /api/admin/slo and /metrics read — Status is self-evaluating.)
	s.sloEng.Evaluate()
	return n
}

// PushHub exposes the snapshot hub for tests and experiments.
func (s *Server) PushHub() *push.Hub { return s.pushHub }

// PushScheduler exposes the refresh scheduler for tests and experiments.
func (s *Server) PushScheduler() *push.Scheduler { return s.pushSched }

// Close shuts the push subsystem down: the refresh scheduler stops, every
// SSE stream receives a final "shutdown" event and ends, and the hub
// rejects further publishes. The server remains able to serve plain HTTP
// requests (the push path simply reports closed). Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.pushDone)
		s.pushSched.Close()
		s.pushHub.Close()
	})
}
