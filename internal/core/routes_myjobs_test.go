package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// seedMixedHistory creates a spread of jobs: completed, failed, pending,
// running, an interactive session, and a GPU job, across alice and bob.
func seedMixedHistory(e *env) {
	// alice: completed efficient batch job.
	e.submit(slurm.SubmitRequest{
		Name: "good-batch", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 4096}, TimeLimit: 2 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 90 * time.Minute,
			CPUUtilization: 0.9, MemUtilization: 0.8},
	})
	// alice: wasteful interactive jupyter session.
	e.submit(slurm.SubmitRequest{
		Name: "sys/dashboard/jupyter", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 16 * 1024}, TimeLimit: 8 * time.Hour,
		InteractiveApp: "jupyter", SessionID: "sess-42",
		Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute,
			CPUUtilization: 0.05, MemUtilization: 0.05},
	})
	// bob: failed job.
	e.submit(slurm.SubmitRequest{
		Name: "crashy", User: "bob", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 2048},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
			FailureState: slurm.StateFailed, ExitCode: 1,
			CPUUtilization: 0.4, MemUtilization: 0.3},
	})
	// bob: GPU job.
	e.submit(slurm.SubmitRequest{
		Name: "train", User: "bob", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 32 * 1024, GPUs: 2}, TimeLimit: 4 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 2 * time.Hour,
			CPUUtilization: 0.7, MemUtilization: 0.6, GPUUtilization: 0.9},
	})
	// Let everything finish.
	e.advance(3 * time.Hour)
	// alice: one still-running job, with some elapsed time on the clock.
	e.submit(slurm.SubmitRequest{
		Name: "still-going", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}, TimeLimit: 6 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 5 * time.Hour,
			CPUUtilization: 0.8, MemUtilization: 0.5},
	})
	e.advance(15 * time.Minute)
}

func TestMyJobsTable(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h", &resp)
	// alice sees her own 3 jobs plus bob's lab-a job, not bob's lab-b job.
	if len(resp.Jobs) != 4 {
		names := make([]string, len(resp.Jobs))
		for i, j := range resp.Jobs {
			names[i] = j.Name + "/" + j.User
		}
		t.Fatalf("rows = %v", names)
	}
	byName := make(map[string]JobRow)
	for _, j := range resp.Jobs {
		byName[j.Name] = j
	}
	if _, ok := byName["train"]; ok {
		t.Fatal("alice sees bob's lab-b job")
	}
	good := byName["good-batch"]
	if good.State != "COMPLETED" || good.QOS != "normal" {
		t.Fatalf("good-batch = %+v", good)
	}
	if good.Efficiency.CPUPercent == nil || *good.Efficiency.CPUPercent < 89 || *good.Efficiency.CPUPercent > 91 {
		t.Fatalf("good-batch cpu eff = %+v", good.Efficiency.CPUPercent)
	}
	if good.Efficiency.TimePercent == nil || *good.Efficiency.TimePercent != 75 {
		t.Fatalf("good-batch time eff = %+v", good.Efficiency.TimePercent)
	}
	if len(good.Warnings) != 0 {
		t.Fatalf("good-batch warned: %+v", good.Warnings)
	}
	jup := byName["sys/dashboard/jupyter"]
	if len(jup.Warnings) == 0 {
		t.Fatal("wasteful jupyter job got no efficiency warnings")
	}
	if jup.App != "jupyter" || jup.SessionID != "sess-42" {
		t.Fatalf("session metadata = %q %q", jup.App, jup.SessionID)
	}
	running := byName["still-going"]
	if running.State != "RUNNING" || running.ElapsedSeconds <= 0 {
		t.Fatalf("running row = %+v", running)
	}
}

func TestMyJobsNewestFirst(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h", &resp)
	for i := 1; i < len(resp.Jobs); i++ {
		if resp.Jobs[i].SubmitTime.After(resp.Jobs[i-1].SubmitTime) {
			t.Fatalf("rows not newest-first at %d", i)
		}
	}
}

func TestMyJobsStateFilter(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp MyJobsResponse
	e.getJSON("bob", "/api/myjobs?range=24h&state=FAILED", &resp)
	if len(resp.Jobs) != 1 || resp.Jobs[0].Name != "crashy" {
		t.Fatalf("failed filter = %+v", resp.Jobs)
	}
	if resp.Total < 2 {
		t.Fatalf("total = %d, want unfiltered count", resp.Total)
	}
}

func TestMyJobsMineFilter(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h&mine=1", &resp)
	for _, j := range resp.Jobs {
		if j.User != "alice" {
			t.Fatalf("mine=1 leaked %s's job", j.User)
		}
	}
	if len(resp.Jobs) != 3 {
		t.Fatalf("alice's own jobs = %d, want 3", len(resp.Jobs))
	}
}

func TestMyJobsTimeRanges(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "ancient", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	e.advance(10 * 24 * time.Hour) // finish + age out of the 7d window
	e.submit(slurm.SubmitRequest{
		Name: "recent", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	e.advance(time.Hour)

	var resp MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=7d", &resp)
	if len(resp.Jobs) != 1 || resp.Jobs[0].Name != "recent" {
		t.Fatalf("7d rows = %+v", resp.Jobs)
	}
	e.getJSON("alice", "/api/myjobs?range=all", &resp)
	if len(resp.Jobs) != 2 {
		t.Fatalf("all rows = %d, want 2", len(resp.Jobs))
	}

	// Custom range covering only the first job.
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	endT := start.Add(24 * time.Hour)
	path := fmt.Sprintf("/api/myjobs?range=custom&from=%s&to=%s",
		start.Format(time.RFC3339), endT.Format(time.RFC3339))
	e.getJSON("alice", path, &resp)
	if len(resp.Jobs) != 1 || resp.Jobs[0].Name != "ancient" {
		t.Fatalf("custom rows = %+v", resp.Jobs)
	}
}

func TestMyJobsBadRange(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/myjobs?range=fortnight", 400)
	e.wantStatus("alice", "/api/myjobs?range=custom&from=bogus&to=2026-07-01T00:00:00Z", 400)
	e.wantStatus("alice", "/api/myjobs?range=custom&from=2026-07-02T00:00:00Z&to=2026-07-01T00:00:00Z", 400)
}

func TestMyJobsCharts(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp ChartsResponse
	e.getJSON("bob", "/api/myjobs/charts?range=24h", &resp)

	// bob's scope: lab-a (alice x3 + bob crashy) + lab-b (train).
	byUser := make(map[string]UserStateBar)
	for _, b := range resp.StateDistribution {
		byUser[b.User] = b
	}
	alice := byUser["alice"]
	if alice.Total != 3 || alice.States["COMPLETED"] != 2 || alice.States["RUNNING"] != 1 {
		t.Fatalf("alice bar = %+v", alice)
	}
	bob := byUser["bob"]
	if bob.Total != 2 || bob.States["FAILED"] != 1 {
		t.Fatalf("bob bar = %+v", bob)
	}

	// GPU hours: only bob's train job used GPUs (2 GPUs x 2h = 4 GPU-hours).
	if len(resp.GPUHours) != 1 || resp.GPUHours[0].User != "bob" {
		t.Fatalf("gpu chart = %+v", resp.GPUHours)
	}
	if h := resp.GPUHours[0].GPUHours; h < 3.99 || h > 4.01 {
		t.Fatalf("gpu hours = %v, want 4", h)
	}
}

func TestJobPerfAggregates(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp JobPerfResponse
	e.getJSON("alice", "/api/jobperf?range=24h", &resp)
	if resp.TotalJobs != 2 {
		t.Fatalf("total = %d, want 2 (alice's own finished jobs)", resp.TotalJobs)
	}
	if resp.CompletedJobs != 2 {
		t.Fatalf("completed = %d", resp.CompletedJobs)
	}
	// The rollup store aggregates jobs as they finish, so the still-running
	// job is excluded; wall = 90min + 30min from the finished two.
	if resp.TotalWallSeconds < 7200 {
		t.Fatalf("wall seconds = %d", resp.TotalWallSeconds)
	}
	if resp.MeanDurationSecs <= 0 {
		t.Fatalf("mean duration = %v", resp.MeanDurationSecs)
	}
	if resp.AvgCPUEfficiency <= 0 || resp.AvgCPUEfficiency > 100 {
		t.Fatalf("avg cpu eff = %v", resp.AvgCPUEfficiency)
	}
}

func TestJobPerfScopeIsOwnJobsOnly(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp JobPerfResponse
	e.getJSON("bob", "/api/jobperf?range=24h", &resp)
	if resp.TotalJobs != 2 {
		t.Fatalf("bob total = %d, want 2 (his own only)", resp.TotalJobs)
	}
	if resp.FailedJobs != 1 {
		t.Fatalf("bob failed = %d, want 1", resp.FailedJobs)
	}
	if h := resp.TotalGPUHours; h < 3.99 || h > 4.01 {
		t.Fatalf("bob gpu hours = %v", h)
	}
}

func TestJobPerfEmptyRange(t *testing.T) {
	e := newEnv(t)
	var resp JobPerfResponse
	e.getJSON("carol", "/api/jobperf?range=24h", &resp)
	if resp.TotalJobs != 0 || resp.AvgWaitSeconds != 0 {
		t.Fatalf("empty resp = %+v", resp)
	}
}

func TestMyJobsCachedPerUserWindow(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	before := e.cluster.DBD.Stats().Count(slurm.RPCSacct)
	var resp MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h", &resp)
	e.getJSON("alice", "/api/myjobs?range=24h", &resp)
	e.getJSON("alice", "/api/myjobs?range=24h&state=FAILED", &resp)
	after := e.cluster.DBD.Stats().Count(slurm.RPCSacct)
	if after-before != 1 {
		t.Fatalf("sacct RPCs = %d, want 1 (cached; filters reuse the entry)", after-before)
	}
}

func TestReasonHelpWording(t *testing.T) {
	if msg, ok := explainReason(slurm.ReasonAssocGrpCpuLimit); !ok ||
		!strings.Contains(msg, "aggregate group CPU limit") {
		t.Fatalf("explainReason = %q, %v", msg, ok)
	}
	if _, ok := explainReason(slurm.ReasonNone); ok {
		t.Fatal("ReasonNone should have no help text")
	}
}

func TestMyJobsPagination(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var page MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h&limit=2", &page)
	if len(page.Jobs) != 2 || page.Matched != 4 || page.Offset != 0 {
		t.Fatalf("page1 = %d rows matched %d offset %d", len(page.Jobs), page.Matched, page.Offset)
	}
	var page2 MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h&limit=2&offset=2", &page2)
	if len(page2.Jobs) != 2 || page2.Offset != 2 {
		t.Fatalf("page2 = %d rows offset %d", len(page2.Jobs), page2.Offset)
	}
	if page.Jobs[0].JobID == page2.Jobs[0].JobID {
		t.Fatal("pages overlap")
	}
	// Offset beyond the end yields an empty page, not an error.
	var empty MyJobsResponse
	e.getJSON("alice", "/api/myjobs?range=24h&offset=999", &empty)
	if len(empty.Jobs) != 0 {
		t.Fatalf("overflow page = %d rows", len(empty.Jobs))
	}
	e.wantStatus("alice", "/api/myjobs?limit=-1", 400)
	e.wantStatus("alice", "/api/myjobs?offset=x", 400)
}

func TestMyJobsExportCSV(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	status, body := e.get("alice", "/api/myjobs/export.csv?range=24h&mine=1")
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 { // header + alice's 3 jobs
		t.Fatalf("csv lines = %d:\n%s", len(lines), body)
	}
	if !strings.HasPrefix(lines[0], "job_id,name,user") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",alice,") {
			t.Fatalf("mine=1 leaked: %q", line)
		}
	}
	// State filter applies to the export too.
	status, body = e.get("bob", "/api/myjobs/export.csv?range=24h&state=FAILED")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	lines = strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "crashy") {
		t.Fatalf("failed filter:\n%s", body)
	}
}
