package core

import (
	"context"
	"fmt"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/slurmrest"
)

// slurmBackend is the read-side Slurm surface the widget routes consume,
// in the typed-row vocabulary of internal/slurmcli. Two implementations
// exist: the CLI shell-out emulation (parse text) and the slurmrestd-style
// REST client (decode JSON). Write commands (scancel, hold/release) and the
// queries without a REST endpoint (assoc, reservations, sprio, the
// per-account sreport) always go through the CLI runner.
type slurmBackend interface {
	Squeue(ctx context.Context, opts slurmcli.SqueueOptions) ([]slurmcli.QueueEntry, error)
	Sacct(ctx context.Context, opts slurmcli.SacctOptions) ([]slurmcli.SacctRow, error)
	Rollup(ctx context.Context, opts slurmcli.RollupOptions) (slurmcli.RollupResult, error)
	Sinfo(ctx context.Context) ([]slurmcli.PartitionStatus, error)
	ShowAllNodes(ctx context.Context) ([]*slurmcli.NodeDetail, error)
	ShowNode(ctx context.Context, name string) (*slurmcli.NodeDetail, error)
	ShowJob(ctx context.Context, id slurm.JobID) (*slurmcli.JobDetail, error)
	Sdiag(ctx context.Context) (ctld, dbd slurmcli.DaemonDiag, err error)
}

// cliBackend adapts the server's metered runner to the backend interface.
// Binding ctx per call keeps command spans attached to the request trace.
type cliBackend struct{ s *Server }

func (b cliBackend) Squeue(ctx context.Context, opts slurmcli.SqueueOptions) ([]slurmcli.QueueEntry, error) {
	return slurmcli.Squeue(b.s.runnerCtx(ctx), opts)
}

func (b cliBackend) Sacct(ctx context.Context, opts slurmcli.SacctOptions) ([]slurmcli.SacctRow, error) {
	return slurmcli.Sacct(b.s.runnerCtx(ctx), opts)
}

func (b cliBackend) Rollup(ctx context.Context, opts slurmcli.RollupOptions) (slurmcli.RollupResult, error) {
	return slurmcli.SreportRollup(b.s.runnerCtx(ctx), opts)
}

func (b cliBackend) Sinfo(ctx context.Context) ([]slurmcli.PartitionStatus, error) {
	return slurmcli.Sinfo(b.s.runnerCtx(ctx))
}

func (b cliBackend) ShowAllNodes(ctx context.Context) ([]*slurmcli.NodeDetail, error) {
	return slurmcli.ShowAllNodes(b.s.runnerCtx(ctx))
}

func (b cliBackend) ShowNode(ctx context.Context, name string) (*slurmcli.NodeDetail, error) {
	return slurmcli.ShowNode(b.s.runnerCtx(ctx), name)
}

func (b cliBackend) ShowJob(ctx context.Context, id slurm.JobID) (*slurmcli.JobDetail, error) {
	return slurmcli.ShowJob(b.s.runnerCtx(ctx), id)
}

func (b cliBackend) Sdiag(ctx context.Context) (ctld, dbd slurmcli.DaemonDiag, err error) {
	return slurmcli.Sdiag(slurmcli.Bind(ctx, b.s.runner))
}

// restBackend serves the same surface from a slurmrest client. The client
// already speaks slurmcli's row types and maps 503s to the unavailability
// class, so the resilience layer treats both backends identically.
type restBackend struct{ c *slurmrest.Client }

func (b restBackend) Squeue(ctx context.Context, opts slurmcli.SqueueOptions) ([]slurmcli.QueueEntry, error) {
	return b.c.Squeue(ctx, opts)
}

func (b restBackend) Sacct(ctx context.Context, opts slurmcli.SacctOptions) ([]slurmcli.SacctRow, error) {
	return b.c.Sacct(ctx, opts)
}

func (b restBackend) Rollup(ctx context.Context, opts slurmcli.RollupOptions) (slurmcli.RollupResult, error) {
	return b.c.Rollup(ctx, opts)
}

func (b restBackend) Sinfo(ctx context.Context) ([]slurmcli.PartitionStatus, error) {
	return b.c.Sinfo(ctx)
}

func (b restBackend) ShowAllNodes(ctx context.Context) ([]*slurmcli.NodeDetail, error) {
	return b.c.ShowAllNodes(ctx)
}

func (b restBackend) ShowNode(ctx context.Context, name string) (*slurmcli.NodeDetail, error) {
	return b.c.ShowNode(ctx, name)
}

func (b restBackend) ShowJob(ctx context.Context, id slurm.JobID) (*slurmcli.JobDetail, error) {
	return b.c.ShowJob(ctx, id)
}

func (b restBackend) Sdiag(ctx context.Context) (ctld, dbd slurmcli.DaemonDiag, err error) {
	return b.c.Sdiag(ctx)
}

// buildBackends resolves the per-source backend selection from the config.
// Each daemon's queries can independently ride the CLI or REST path, so a
// deployment can migrate one source at a time (the paper's incremental
// adoption story applied to the data layer).
func (s *Server) buildBackends(rest *slurmrest.Client) error {
	cli := cliBackend{s}
	pick := func(source, mode string) (slurmBackend, error) {
		switch mode {
		case "", BackendCLI:
			return cli, nil
		case BackendREST:
			if rest == nil {
				return nil, fmt.Errorf("core: %s backend is %q but Deps.REST is nil", source, mode)
			}
			return restBackend{rest}, nil
		default:
			return nil, fmt.Errorf("core: unknown %s backend %q (want %q or %q)",
				source, mode, BackendCLI, BackendREST)
		}
	}
	var err error
	if s.ctldBk, err = pick(srcCtld, s.cfg.Backend.Slurmctld); err != nil {
		return err
	}
	if s.dbdBk, err = pick(srcDBD, s.cfg.Backend.Slurmdbd); err != nil {
		return err
	}
	return nil
}
