package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"ooddash/internal/resilience"
	"ooddash/internal/slurmcli"
)

// Data-source names the resilience layer keys its breakers by. Each source
// fails independently — a slurmdbd outage must not open the slurmctld
// breaker — so they get separate circuits, matching the daemon split in the
// simulator.
const (
	srcCtld    = "slurmctld"
	srcDBD     = "slurmdbd"
	srcNews    = "news"
	srcStorage = "storage"
)

// degradedHeader marks responses served from an expired cache entry because
// the backing source is down. Clients (and the load generator) count it.
const degradedHeader = "X-OODDash-Degraded"

// fetchMeta describes how a widget's data was obtained: fresh, or stale
// last-known-good after an upstream failure. rev and ttl are the handle the
// rendered-response layer keys its materialized bytes by: rev identifies the
// exact cached value(s) the payload was built from (0 = not cacheable), and
// ttl bounds how long those bytes may be reused.
type fetchMeta struct {
	Degraded bool
	Age      time.Duration
	rev      uint64
	ttl      time.Duration
}

// absorb merges another fetch's metadata, for handlers assembled from
// several cache entries: the response is degraded if any part is, its age is
// the oldest part's, its ttl the shortest, and its rev a hash-combine of the
// parts' revs (so the combined rev changes whenever any part refreshes, and
// any uncacheable part — rev 0 — poisons the whole to uncacheable).
func (m *fetchMeta) absorb(other fetchMeta) {
	m.Degraded = m.Degraded || other.Degraded
	if other.Age > m.Age {
		m.Age = other.Age
	}
	if m.ttl == 0 {
		// Identity element: an empty fetchMeta adopts the first absorbed one.
		m.rev, m.ttl = other.rev, other.ttl
		return
	}
	if other.ttl > 0 && other.ttl < m.ttl {
		m.ttl = other.ttl
	}
	if m.rev == 0 || other.rev == 0 {
		m.rev = 0
		return
	}
	m.rev = m.rev*1099511628211 ^ other.rev
}

// fetchVia is the policy path every cached route goes through: the cache in
// front, then the source's retry/timeout/circuit-breaker policy around the
// compute. On compute failure a retained last-known-good value comes back
// with Degraded set instead of the error.
//
// The request context (carrying the middleware's trace ID and active span)
// flows through the cache into the resilience layer and on into compute, so
// the OnResult hook can attribute upstream latency back to the request that
// observed it and every layer's span lands in the same trace. compute
// receives the attempt-scoped context; Slurm call sites bind it into the
// runner via s.runnerCtx. The per-source result — ok (cache hits included),
// degraded, or error — lands in the fetch-results counter.
func (s *Server) fetchVia(r *http.Request, source, key string, ttl time.Duration, compute func(context.Context) (any, error)) (any, fetchMeta, error) {
	gate := s.fills[source]
	res, err := s.cache.FetchStaleCtx(r.Context(), key, ttl, s.cfg.Resilience.StaleFor, func(ctx context.Context) (any, error) {
		// Admission runs inside the cache's compute so singleflight waiters
		// never consume slots, and before the resilience layer so a rejected
		// fill is backpressure — it neither retries nor trips the breaker. A
		// key with a retained stale value absorbs the rejection as a degraded
		// serve; a cold key surfaces it as 503 + Retry-After.
		if !gate.tryAcquire() {
			return nil, &FillSaturatedError{Source: source, RetryAfter: fillRetryAfter}
		}
		defer gate.release()
		return s.res.Do(source, ctx, compute)
	})
	oc := s.obsm.fetchOutcome[source]
	switch {
	case err != nil:
		var fe *FillSaturatedError
		if errors.As(err, &fe) {
			oc.rejected.Inc()
		} else {
			oc.err.Inc()
		}
		return nil, fetchMeta{}, err
	case res.Degraded:
		oc.degraded.Inc()
	default:
		oc.ok.Inc()
	}
	return res.Value, fetchMeta{Degraded: res.Degraded, Age: res.Age, rev: res.Rev, ttl: ttl}, nil
}

// runResilient runs an uncached upstream call through the source's policy —
// for the few routes that query outside the cache. The request context
// propagates the trace ID and active span into the resilience layer; op
// receives the attempt-scoped context.
func (s *Server) runResilient(r *http.Request, source string, op func(context.Context) (any, error)) (any, error) {
	v, err := s.res.Do(source, r.Context(), op)
	oc := s.obsm.fetchOutcome[source]
	if err != nil {
		oc.err.Inc()
	} else {
		oc.ok.Inc()
	}
	return v, err
}

// isUnavailable reports whether err means the data source could not serve —
// an injected or simulated outage, a timed-out attempt, or the resilience
// layer's own wrappers — as opposed to a semantic error like an unknown job.
func isUnavailable(err error) bool {
	var oe *resilience.OpenError
	var ue *resilience.UpstreamError
	var fe *FillSaturatedError
	return errors.As(err, &oe) || errors.As(err, &ue) || errors.As(err, &fe) ||
		slurmcli.IsUnavailable(err)
}

// retryAfterJitterSecs bounds the random seconds added on top of every
// Retry-After hint. Cold 503s from an outage or a saturated fill gate hit a
// whole cohort of clients in the same instant; if they all honor the same
// hint they come back in the same instant too and re-stampede. The jitter
// spreads the cohort's retries over a few seconds.
const retryAfterJitterSecs = 3

// writeFetchError maps a fetch failure to its response. Source-unavailable
// errors become 503 with a Retry-After hint (the breaker's remaining open
// window, or the admission gate's drain estimate) plus bounded random
// jitter; everything else goes through the usual status mapping.
func writeFetchError(w http.ResponseWriter, err error) {
	var retryAfter time.Duration
	var oe *resilience.OpenError
	var ue *resilience.UpstreamError
	var fe *FillSaturatedError
	switch {
	case errors.As(err, &oe):
		retryAfter = oe.RetryAfter
	case errors.As(err, &ue):
		retryAfter = ue.RetryAfter
	case errors.As(err, &fe):
		retryAfter = fe.RetryAfter
	case slurmcli.IsUnavailable(err):
		// Unavailable but not wrapped by the policy layer (e.g. a direct
		// runner call): still a 503, with a nominal retry hint.
	default:
		writeError(w, err)
		return
	}
	secs := int64(retryAfter+time.Second-1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	secs += rand.Int63n(retryAfterJitterSecs + 1)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
}

// writeWidgetJSON writes a widget payload, annotating degraded responses:
// the X-OODDash-Degraded header plus "degraded": true and "age_seconds"
// injected into the JSON object, so both generic HTTP clients and the
// widget frontend can tell stale data from fresh. age_seconds is rounded to
// the nearest second (a 59.9s-old value must not report 59). Non-object
// payloads (arrays) cannot carry the JSON annotation; the header alone
// marks them and the drop is counted, so silently unannotated payloads are
// at least visible on /metrics.
//
// Fresh 200 responses carry an ETag (content hash of the body); a request
// revalidating with a matching If-None-Match gets 304 Not Modified and no
// body. Degraded responses are never conditional — see etag.go.
func (s *Server) writeWidgetJSON(w http.ResponseWriter, r *http.Request, status int, meta fetchMeta, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if !meta.Degraded {
		// Encoder output is Marshal + trailing newline — the exact bytes the
		// rendered layer stores — so the tag hashed here matches the one a
		// later materialized response carries, and client-stored tags stay
		// valid across both paths.
		if err := s.encodePayload(buf, v); err != nil {
			writeError(w, fmt.Errorf("core: encoding response: %v", err))
			return
		}
		body := buf.Bytes()
		if status == http.StatusOK && r != nil {
			tag := etagFor(body)
			setETag(w.Header(), tag)
			if etagMatch(r.Header.Get("If-None-Match"), tag) {
				s.obsm.notModified.With(widgetFromContext(r.Context())).Inc()
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
		return
	}
	w.Header().Set(degradedHeader, "stale")
	if err := s.encodePayload(buf, v); err != nil {
		writeError(w, fmt.Errorf("core: encoding degraded response: %v", err))
		return
	}
	raw := bytes.TrimSuffix(buf.Bytes(), []byte{'\n'})
	ageSecs := int64(math.Round(meta.Age.Seconds()))
	annotated, ok := annotateDegraded(raw, ageSecs)
	if !ok {
		// Non-object payload: serve it unannotated; the header still marks it.
		s.obsm.annotationsDropped.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(annotated)
	w.Write([]byte{'\n'})
}

// annotateDegraded splices `"degraded":true,"age_seconds":N` into the end of
// an encoded JSON object, preserving the original field order and bytes. The
// previous implementation round-tripped the payload through a
// map[string]json.RawMessage, which cost a second Marshal/Unmarshal pair and
// re-sorted every key. Non-object payloads (arrays, scalars) come back
// unchanged with ok=false: there is nowhere to put the annotation.
func annotateDegraded(raw []byte, ageSecs int64) ([]byte, bool) {
	if len(raw) < 2 || raw[0] != '{' || raw[len(raw)-1] != '}' {
		return raw, false
	}
	out := make([]byte, 0, len(raw)+48)
	out = append(out, raw[:len(raw)-1]...)
	if len(raw) > 2 { // non-empty object: separate from the last field
		out = append(out, ',')
	}
	out = append(out, `"degraded":true,"age_seconds":`...)
	out = strconv.AppendInt(out, ageSecs, 10)
	out = append(out, '}')
	return out, true
}

// setDegradedHeader marks non-JSON (CSV/XLSX export) responses that were
// built from stale data.
func setDegradedHeader(w http.ResponseWriter, meta fetchMeta) {
	if meta.Degraded {
		w.Header().Set(degradedHeader, "stale")
	}
}
