package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"ooddash/internal/resilience"
	"ooddash/internal/slurmcli"
)

// Data-source names the resilience layer keys its breakers by. Each source
// fails independently — a slurmdbd outage must not open the slurmctld
// breaker — so they get separate circuits, matching the daemon split in the
// simulator.
const (
	srcCtld    = "slurmctld"
	srcDBD     = "slurmdbd"
	srcNews    = "news"
	srcStorage = "storage"
)

// degradedHeader marks responses served from an expired cache entry because
// the backing source is down. Clients (and the load generator) count it.
const degradedHeader = "X-OODDash-Degraded"

// fetchMeta describes how a widget's data was obtained: fresh, or stale
// last-known-good after an upstream failure.
type fetchMeta struct {
	Degraded bool
	Age      time.Duration
}

// absorb merges another fetch's metadata, for handlers assembled from
// several cache entries: the response is degraded if any part is, and its
// age is the oldest part's.
func (m *fetchMeta) absorb(other fetchMeta) {
	m.Degraded = m.Degraded || other.Degraded
	if other.Age > m.Age {
		m.Age = other.Age
	}
}

// fetchVia is the policy path every cached route goes through: the cache in
// front, then the source's retry/timeout/circuit-breaker policy around the
// compute. On compute failure a retained last-known-good value comes back
// with Degraded set instead of the error.
//
// The request context (carrying the middleware's trace ID) flows into the
// resilience layer, so the OnResult hook can attribute upstream latency and
// failures back to the request that observed them. The per-source result —
// ok (cache hits included), degraded, or error — lands in the fetch-results
// counter.
func (s *Server) fetchVia(r *http.Request, source, key string, ttl time.Duration, compute func() (any, error)) (any, fetchMeta, error) {
	res, err := s.cache.FetchStale(key, ttl, s.cfg.Resilience.StaleFor, func() (any, error) {
		return s.res.Do(source, r.Context(), func(context.Context) (any, error) {
			return compute()
		})
	})
	switch {
	case err != nil:
		s.obsm.fetchResults.With(source, "error").Inc()
		return nil, fetchMeta{}, err
	case res.Degraded:
		s.obsm.fetchResults.With(source, "degraded").Inc()
	default:
		s.obsm.fetchResults.With(source, "ok").Inc()
	}
	return res.Value, fetchMeta{Degraded: res.Degraded, Age: res.Age}, nil
}

// runResilient runs an uncached upstream call through the source's policy —
// for the few routes that query outside the cache. The request context
// propagates the trace ID into the resilience layer's attribution hook.
func (s *Server) runResilient(r *http.Request, source string, op func() (any, error)) (any, error) {
	v, err := s.res.Do(source, r.Context(), func(context.Context) (any, error) {
		return op()
	})
	if err != nil {
		s.obsm.fetchResults.With(source, "error").Inc()
	} else {
		s.obsm.fetchResults.With(source, "ok").Inc()
	}
	return v, err
}

// isUnavailable reports whether err means the data source could not serve —
// an injected or simulated outage, a timed-out attempt, or the resilience
// layer's own wrappers — as opposed to a semantic error like an unknown job.
func isUnavailable(err error) bool {
	var oe *resilience.OpenError
	var ue *resilience.UpstreamError
	return errors.As(err, &oe) || errors.As(err, &ue) || slurmcli.IsUnavailable(err)
}

// writeFetchError maps a fetch failure to its response. Source-unavailable
// errors become 503 with a Retry-After hint (the breaker's remaining open
// window); everything else goes through the usual status mapping.
func writeFetchError(w http.ResponseWriter, err error) {
	var retryAfter time.Duration
	var oe *resilience.OpenError
	var ue *resilience.UpstreamError
	switch {
	case errors.As(err, &oe):
		retryAfter = oe.RetryAfter
	case errors.As(err, &ue):
		retryAfter = ue.RetryAfter
	case slurmcli.IsUnavailable(err):
		// Unavailable but not wrapped by the policy layer (e.g. a direct
		// runner call): still a 503, with a nominal retry hint.
	default:
		writeError(w, err)
		return
	}
	secs := int64(retryAfter+time.Second-1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
}

// writeWidgetJSON writes a widget payload, annotating degraded responses:
// the X-OODDash-Degraded header plus "degraded": true and "age_seconds"
// injected into the JSON object, so both generic HTTP clients and the
// widget frontend can tell stale data from fresh. age_seconds is rounded to
// the nearest second (a 59.9s-old value must not report 59). Non-object
// payloads (arrays) cannot carry the JSON annotation; the header alone
// marks them and the drop is counted, so silently unannotated payloads are
// at least visible on /metrics.
//
// Fresh 200 responses carry an ETag (content hash of the body); a request
// revalidating with a matching If-None-Match gets 304 Not Modified and no
// body. Degraded responses are never conditional — see etag.go.
func (s *Server) writeWidgetJSON(w http.ResponseWriter, r *http.Request, status int, meta fetchMeta, v any) {
	if !meta.Degraded {
		raw, err := json.Marshal(v)
		if err != nil {
			writeError(w, fmt.Errorf("core: encoding response: %v", err))
			return
		}
		// The tag hashes the exact bytes written below (Marshal + newline is
		// what writeJSON's Encoder produces), so client-stored tags stay
		// valid across both paths.
		if status == http.StatusOK && r != nil {
			tag := etagFor(append(raw, '\n'))
			w.Header().Set("ETag", tag)
			if etagMatch(r.Header.Get("If-None-Match"), tag) {
				s.obsm.notModified.With(widgetFromContext(r.Context())).Inc()
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(raw)
		w.Write([]byte{'\n'})
		return
	}
	w.Header().Set(degradedHeader, "stale")
	raw, err := json.Marshal(v)
	if err != nil {
		writeError(w, fmt.Errorf("core: encoding degraded response: %v", err))
		return
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		// Non-object payload: serve it unannotated; the header still marks it.
		s.obsm.annotationsDropped.Inc()
		writeJSON(w, status, v)
		return
	}
	ageSecs := int64(math.Round(meta.Age.Seconds()))
	obj["degraded"] = json.RawMessage("true")
	obj["age_seconds"] = json.RawMessage(strconv.FormatInt(ageSecs, 10))
	writeJSON(w, status, obj)
}

// setDegradedHeader marks non-JSON (CSV/XLSX export) responses that were
// built from stale data.
func setDegradedHeader(w http.ResponseWriter, meta fetchMeta) {
	if meta.Degraded {
		w.Header().Set(degradedHeader, "stale")
	}
}
