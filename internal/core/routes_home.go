package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"ooddash/internal/newsfeed"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/storagedb"
)

// --- Announcements widget (§3.1) -------------------------------------------

// Announcement is one accordion entry: the article plus the display hints
// the widget derives (urgency color, active/past styling).
type Announcement struct {
	ID       int       `json:"id"`
	Title    string    `json:"title"`
	Body     string    `json:"body"`
	Category string    `json:"category"`
	Color    string    `json:"color"`
	Active   bool      `json:"active"`
	PostedAt time.Time `json:"posted_at"`
	StartsAt time.Time `json:"starts_at,omitempty"`
	EndsAt   time.Time `json:"ends_at,omitempty"`
}

// AnnouncementsResponse is the announcements API payload.
type AnnouncementsResponse struct {
	Announcements []Announcement `json:"announcements"`
	AllNewsURL    string         `json:"all_news_url"`
}

func (s *Server) handleAnnouncements(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	if s.news == nil {
		writeError(w, fmt.Errorf("%w: no news source configured", errNotFound))
		return
	}
	v, meta, err := s.fetchVia(r, srcNews, "announcements", s.cfg.TTLs.Announcements, func(context.Context) (any, error) {
		return s.news.Fetch(s.cfg.AnnouncementsLimit)
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		articles := v.([]newsfeed.Article)
		now := s.clock.Now()
		resp := AnnouncementsResponse{
			Announcements: make([]Announcement, 0, len(articles)),
			AllNewsURL:    "/news",
		}
		for i := range articles {
			a := &articles[i]
			resp.Announcements = append(resp.Announcements, Announcement{
				ID: a.ID, Title: a.Title, Body: a.Body,
				Category: string(a.Category),
				Color:    a.Category.UrgencyColor(),
				Active:   a.Active(now),
				PostedAt: a.PostedAt, StartsAt: a.StartsAt, EndsAt: a.EndsAt,
			})
		}
		return resp, nil
	})
}

// --- Recent Jobs widget (§3.2) ---------------------------------------------

// RecentJob is one card in the Recent Jobs widget.
type RecentJob struct {
	JobID string `json:"job_id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// StateHelp and ReasonHelp are the hoverable tooltip texts (§3.2):
	// what the status means, and why a pending job is pending.
	StateHelp  string `json:"state_help,omitempty"`
	Reason     string `json:"reason,omitempty"`
	ReasonHelp string `json:"reason_help,omitempty"`
	// Timestamp is the most relevant time for the card: end time for
	// finished jobs, start time for running, submit time for pending.
	Timestamp time.Time `json:"timestamp"`
	TimeLabel string    `json:"time_label"` // "submitted", "started", "ended"
}

// RecentJobsResponse is the recent-jobs API payload.
type RecentJobsResponse struct {
	Jobs []RecentJob `json:"jobs"`
}

func (s *Server) handleRecentJobs(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	key := "recent_jobs:" + user.Name
	v, meta, err := s.fetchVia(r, srcCtld, key, s.cfg.TTLs.RecentJobs, func(ctx context.Context) (any, error) {
		return s.ctldBk.Squeue(ctx, slurmcli.SqueueOptions{
			User: user.Name, AllStates: true, Limit: s.cfg.RecentJobsLimit,
		})
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		entries := v.([]slurmcli.QueueEntry)
		resp := RecentJobsResponse{Jobs: make([]RecentJob, 0, len(entries))}
		for i := range entries {
			resp.Jobs = append(resp.Jobs, recentJobFromEntry(&entries[i]))
		}
		return resp, nil
	})
}

// stateDescriptions back the hoverable status tooltips (§3.2).
var stateDescriptions = map[slurm.JobState]string{
	slurm.StatePending:     "Waiting in the queue for resources or priority.",
	slurm.StateRunning:     "Currently executing on its allocated nodes.",
	slurm.StateSuspended:   "Paused; it keeps its allocation and resumes later.",
	slurm.StateCompleting:  "Finishing up: the scheduler is cleaning up the allocation.",
	slurm.StateCompleted:   "Finished successfully (exit code 0).",
	slurm.StateFailed:      "Exited with a nonzero exit code.",
	slurm.StateCancelled:   "Cancelled by the user or an administrator.",
	slurm.StateTimeout:     "Killed after reaching its requested time limit.",
	slurm.StateNodeFail:    "Terminated because a node it ran on failed.",
	slurm.StateOutOfMemory: "Killed for exceeding its requested memory.",
	slurm.StatePreempted:   "Requeued so a higher-priority job could run.",
}

func recentJobFromEntry(e *slurmcli.QueueEntry) RecentJob {
	rj := RecentJob{
		JobID:     e.JobID,
		Name:      e.Name,
		State:     string(e.State),
		StateHelp: stateDescriptions[e.State],
	}
	switch {
	case e.State == slurm.StatePending:
		rj.Timestamp, rj.TimeLabel = e.SubmitTime, "submitted"
		rj.Reason = string(e.Reason)
		// The tooltip explains obscure reasons in plain language.
		if msg, ok := explainReason(e.Reason); ok {
			rj.ReasonHelp = msg
		}
	case e.State.Active():
		rj.Timestamp, rj.TimeLabel = e.StartTime, "started"
	default:
		// Terminal: squeue rows carry no end time; approximate it from
		// start + elapsed, which is exact for the simulator's output.
		rj.Timestamp, rj.TimeLabel = e.StartTime.Add(e.Elapsed), "ended"
		if e.StartTime.IsZero() {
			rj.Timestamp, rj.TimeLabel = e.SubmitTime, "submitted"
		}
	}
	return rj
}

// --- System Status widget (§3.3) -------------------------------------------

// PartitionSummary is one row of the System Status widget.
type PartitionSummary struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	CPUPercent  float64 `json:"cpu_percent"`
	GPUPercent  float64 `json:"gpu_percent"`
	CPUsInUse   int     `json:"cpus_in_use"`
	CPUsTotal   int     `json:"cpus_total"`
	GPUsInUse   int     `json:"gpus_in_use"`
	GPUsTotal   int     `json:"gpus_total"`
	NodesTotal  int     `json:"nodes_total"`
	RunningJobs int     `json:"running_jobs"`
	PendingJobs int     `json:"pending_jobs"`
	// Color is the progress-bar color: green < 70%, yellow 70–90%, red > 90%.
	Color string `json:"color"`
}

// MaintenanceNotice is one scheduled maintenance window shown in the
// System Status widget header, cross-linking the announcements (§3.1) with
// actual scheduler reservations.
type MaintenanceNotice struct {
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Nodes  string    `json:"nodes"` // hostlist, or "ALL"
	Active bool      `json:"active"`
	Reason string    `json:"reason,omitempty"`
}

// SystemStatusResponse is the system-status API payload.
type SystemStatusResponse struct {
	Cluster     string              `json:"cluster"`
	Partitions  []PartitionSummary  `json:"partitions"`
	Maintenance []MaintenanceNotice `json:"maintenance,omitempty"`
	DetailsURL  string              `json:"details_url"`
}

// utilizationColor implements the paper's three-band color coding.
func utilizationColor(percent float64) string {
	switch {
	case percent > 90:
		return "red"
	case percent >= 70:
		return "yellow"
	default:
		return "green"
	}
}

func (s *Server) handleSystemStatus(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	type statusData struct {
		Parts        []slurmcli.PartitionStatus
		Reservations []slurmcli.ReservationDetail
	}
	v, meta, err := s.fetchVia(r, srcCtld, "system_status", s.cfg.TTLs.SystemStatus, func(ctx context.Context) (any, error) {
		parts, err := s.ctldBk.Sinfo(ctx)
		if err != nil {
			return nil, err
		}
		res, err := slurmcli.ShowReservations(s.runnerCtx(ctx))
		if err != nil {
			return nil, err
		}
		return statusData{Parts: parts, Reservations: res}, nil
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		data := v.(statusData)
		parts := data.Parts
		resp := SystemStatusResponse{
			Cluster:    s.cfg.ClusterName,
			Partitions: make([]PartitionSummary, 0, len(parts)),
			DetailsURL: "/clusterstatus",
		}
		for _, p := range parts {
			cpuPct := p.CPUPercent()
			resp.Partitions = append(resp.Partitions, PartitionSummary{
				Name: p.Name, State: p.State,
				CPUPercent: cpuPct, GPUPercent: p.GPUPercent(),
				CPUsInUse: p.AllocCPUs, CPUsTotal: p.TotalCPUs,
				GPUsInUse: p.AllocGPUs, GPUsTotal: p.TotalGPUs,
				NodesTotal:  p.TotalNodes,
				RunningJobs: p.RunningJobs, PendingJobs: p.PendingJobs,
				Color: utilizationColor(cpuPct),
			})
		}
		now := s.clock.Now()
		for _, res := range data.Reservations {
			if now.After(res.End) {
				continue
			}
			resp.Maintenance = append(resp.Maintenance, MaintenanceNotice{
				Name: res.Name, Start: res.Start, End: res.End,
				Nodes:  res.Nodes,
				Active: !now.Before(res.Start),
				Reason: res.Comment,
			})
		}
		return resp, nil
	})
}

// --- Accounts widget (§3.4) ------------------------------------------------

// AccountRow is one allocation in the Accounts widget.
type AccountRow struct {
	Account         string  `json:"account"`
	CPUsInUse       int     `json:"cpus_in_use"`
	CPUsQueued      int     `json:"cpus_queued"`
	GrpCPULimit     int     `json:"grp_cpu_limit"`
	CPUPercent      float64 `json:"cpu_percent"`
	GPUHoursUsed    float64 `json:"gpu_hours_used"`
	GrpGPUHourLimit float64 `json:"grp_gpu_hour_limit"`
	ExportURL       string  `json:"export_url"`
}

// AccountsResponse is the accounts API payload.
type AccountsResponse struct {
	Accounts     []AccountRow `json:"accounts"`
	UserGuideURL string       `json:"user_guide_url"`
}

// accountUsage is the cached per-account aggregation: assoc limits plus the
// live queue broken down by user. Shared across all members of the account.
type accountUsage struct {
	Account         string
	GrpCPULimit     int
	GrpGPUHourLimit float64
	GPUHoursUsed    float64
	CPUsInUse       int
	CPUsQueued      int
	PerUser         []accountUserUsage
}

type accountUserUsage struct {
	User         string  `json:"user"`
	CPUsInUse    int     `json:"cpus_in_use"`
	CPUsQueued   int     `json:"cpus_queued"`
	RunningJobs  int     `json:"running_jobs"`
	PendingJobs  int     `json:"pending_jobs"`
	GPUHoursUsed float64 `json:"gpu_hours_used"`
	CPUHoursUsed float64 `json:"cpu_hours_used"`
}

// fetchAccountUsage loads one account's usage through the command layer,
// caching under a per-account key so group members share the entry.
func (s *Server) fetchAccountUsage(r *http.Request, account string) (*accountUsage, fetchMeta, error) {
	v, meta, err := s.fetchVia(r, srcCtld, "account_usage:"+account, s.cfg.TTLs.Accounts, func(ctx context.Context) (any, error) {
		assocs, err := slurmcli.ShowAssocs(s.runnerCtx(ctx), account, "")
		if err != nil {
			return nil, err
		}
		queue, err := s.ctldBk.Squeue(ctx, slurmcli.SqueueOptions{Account: account})
		if err != nil {
			return nil, err
		}
		u := &accountUsage{Account: account}
		byUser := make(map[string]*accountUserUsage)
		userRow := func(name string) *accountUserUsage {
			uu := byUser[name]
			if uu == nil {
				uu = &accountUserUsage{User: name}
				byUser[name] = uu
			}
			return uu
		}
		for _, a := range assocs {
			if a.User == "" {
				u.GrpCPULimit = a.GrpCPULimit
				u.GrpGPUHourLimit = a.GPUHourLimit
				u.GPUHoursUsed = a.GPUHoursUsed
				continue
			}
			uu := userRow(a.User)
			uu.GPUHoursUsed = a.GPUHoursUsed
			uu.CPUHoursUsed = a.CPUHoursUsed
		}
		for i := range queue {
			e := &queue[i]
			uu := userRow(e.User)
			switch e.State {
			case slurm.StateRunning, slurm.StateCompleting:
				u.CPUsInUse += e.CPUs
				uu.CPUsInUse += e.CPUs
				uu.RunningJobs++
			case slurm.StatePending:
				u.CPUsQueued += e.CPUs
				uu.CPUsQueued += e.CPUs
				uu.PendingJobs++
			}
		}
		u.PerUser = make([]accountUserUsage, 0, len(byUser))
		for _, uu := range byUser {
			u.PerUser = append(u.PerUser, *uu)
		}
		sortAccountUsers(u.PerUser)
		return u, nil
	})
	if err != nil {
		return nil, fetchMeta{}, err
	}
	return v.(*accountUsage), meta, nil
}

func sortAccountUsers(users []accountUserUsage) {
	for i := 1; i < len(users); i++ {
		for j := i; j > 0; j-- {
			a, b := &users[j-1], &users[j]
			if a.CPUsInUse > b.CPUsInUse ||
				(a.CPUsInUse == b.CPUsInUse && a.User <= b.User) {
				break
			}
			users[j-1], users[j] = users[j], users[j-1]
		}
	}
}

func (s *Server) handleAccounts(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	usages := make([]*accountUsage, 0, len(user.Accounts))
	var meta fetchMeta
	for _, account := range user.Accounts {
		u, m, err := s.fetchAccountUsage(r, account)
		if err != nil {
			writeFetchError(w, err)
			return
		}
		meta.absorb(m)
		usages = append(usages, u)
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		resp := AccountsResponse{
			Accounts:     make([]AccountRow, 0, len(usages)),
			UserGuideURL: s.cfg.UserGuideURL,
		}
		for _, u := range usages {
			row := AccountRow{
				Account:         u.Account,
				CPUsInUse:       u.CPUsInUse,
				CPUsQueued:      u.CPUsQueued,
				GrpCPULimit:     u.GrpCPULimit,
				GPUHoursUsed:    u.GPUHoursUsed,
				GrpGPUHourLimit: u.GrpGPUHourLimit,
				ExportURL:       fmt.Sprintf("/api/accounts/%s/export.csv", u.Account),
			}
			if u.GrpCPULimit > 0 {
				row.CPUPercent = 100 * float64(u.CPUsInUse) / float64(u.GrpCPULimit)
			}
			resp.Accounts = append(resp.Accounts, row)
		}
		return resp, nil
	})
}

// resolveAccountExport authorizes and loads the per-user breakdown behind
// both export formats (§3.4 offers Excel or CSV).
func (s *Server) resolveAccountExport(w http.ResponseWriter, r *http.Request) (*accountUsage, bool) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	account := r.PathValue("account")
	if !user.MemberOf(account) {
		writeError(w, fmt.Errorf("%w: %s is not a member of account %s", errForbidden, user.Name, account))
		return nil, false
	}
	u, meta, err := s.fetchAccountUsage(r, account)
	if err != nil {
		writeFetchError(w, err)
		return nil, false
	}
	// Exports are not JSON, so stale data is flagged via the header alone.
	setDegradedHeader(w, meta)
	// Account membership gates the export, so the response is per-identity
	// as far as any fronting cache is concerned.
	setPrivateCache(w.Header())
	return u, true
}

// accountExportHeader is the column set shared by the CSV and XLSX exports.
var accountExportHeader = []string{"user", "cpus_in_use", "cpus_queued",
	"running_jobs", "pending_jobs", "gpu_hours_used", "cpu_hours_used"}

// handleAccountExport streams the per-user usage breakdown of one account
// as CSV — half of the Accounts widget's export dropdown (§3.4).
func (s *Server) handleAccountExport(w http.ResponseWriter, r *http.Request) {
	u, ok := s.resolveAccountExport(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s-usage.csv", s.cfg.ClusterName, u.Account))
	cw := csv.NewWriter(w)
	_ = cw.Write(accountExportHeader)
	for _, uu := range u.PerUser {
		_ = cw.Write([]string{
			uu.User,
			strconv.Itoa(uu.CPUsInUse),
			strconv.Itoa(uu.CPUsQueued),
			strconv.Itoa(uu.RunningJobs),
			strconv.Itoa(uu.PendingJobs),
			fmt.Sprintf("%.2f", uu.GPUHoursUsed),
			fmt.Sprintf("%.2f", uu.CPUHoursUsed),
		})
	}
	cw.Flush()
}

// handleAccountExportXLSX streams the same breakdown as an Excel workbook —
// the other half of the §3.4 export dropdown.
func (s *Server) handleAccountExportXLSX(w http.ResponseWriter, r *http.Request) {
	u, ok := s.resolveAccountExport(w, r)
	if !ok {
		return
	}
	rows := make([][]any, 0, len(u.PerUser)+1)
	header := make([]any, len(accountExportHeader))
	for i, h := range accountExportHeader {
		header[i] = h
	}
	rows = append(rows, header)
	for _, uu := range u.PerUser {
		rows = append(rows, []any{
			uu.User, uu.CPUsInUse, uu.CPUsQueued, uu.RunningJobs,
			uu.PendingJobs, uu.GPUHoursUsed, uu.CPUHoursUsed,
		})
	}
	w.Header().Set("Content-Type",
		"application/vnd.openxmlformats-officedocument.spreadsheetml.sheet")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s-usage.xlsx", s.cfg.ClusterName, u.Account))
	if err := writeXLSX(w, u.Account+" usage", rows); err != nil {
		log.Printf("core: writing xlsx: %v", err)
	}
}

// --- Storage widget (§3.5) ---------------------------------------------------

// StorageRow is one directory in the Storage widget.
type StorageRow struct {
	Path         string  `json:"path"`
	Filesystem   string  `json:"filesystem"`
	Kind         string  `json:"kind"`
	UsedBytes    int64   `json:"used_bytes"`
	QuotaBytes   int64   `json:"quota_bytes"`
	UsagePercent float64 `json:"usage_percent"`
	FileCount    int64   `json:"file_count"`
	FileLimit    int64   `json:"file_limit"`
	FilePercent  float64 `json:"file_percent"`
	Color        string  `json:"color"`
	// FilesAppURL deep-links into the Open OnDemand files app.
	FilesAppURL string `json:"files_app_url"`
}

// StorageResponse is the storage API payload.
type StorageResponse struct {
	Directories []StorageRow `json:"directories"`
}

func (s *Server) handleStorage(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if s.storage == nil {
		writeError(w, fmt.Errorf("%w: no storage database configured", errNotFound))
		return
	}
	key := "storage:" + user.Name
	v, meta, err := s.fetchVia(r, srcStorage, key, s.cfg.TTLs.Storage, func(context.Context) (any, error) {
		return s.storage.DirectoriesFor(user.Name, user.Accounts), nil
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		dirs := v.([]storagedb.Directory)
		resp := StorageResponse{Directories: make([]StorageRow, 0, len(dirs))}
		for i := range dirs {
			d := &dirs[i]
			pct := d.UsagePercent()
			resp.Directories = append(resp.Directories, StorageRow{
				Path:         d.Path,
				Filesystem:   string(d.Filesystem),
				Kind:         string(d.Kind),
				UsedBytes:    d.UsedBytes,
				QuotaBytes:   d.QuotaBytes,
				UsagePercent: pct,
				FileCount:    d.FileCount,
				FileLimit:    d.FileLimit,
				FilePercent:  d.FilePercent(),
				Color:        utilizationColor(pct),
				FilesAppURL:  "/pun/sys/files/fs" + d.Path,
			})
		}
		return resp, nil
	})
}
