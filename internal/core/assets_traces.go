package core

// assetTracesJS drives the staff admin traces page: it lists the tail-sampled
// trace store (with widget / min-duration / degraded filters) and renders a
// selected trace's span tree as a waterfall — each span a bar positioned by
// its microsecond offset within the root, colored by layer (the span-name
// prefix up to the first dot), so the latency-dominating layer is visible at
// a glance.
const assetTracesJS = `"use strict";
(() => {
  const listEl = document.querySelector("#trace-list .widget-body");
  const detailEl = document.querySelector("#trace-detail .widget-body");
  if (!listEl || !detailEl) return;
  const widgetIn = document.getElementById("f-widget");
  const minMsIn = document.getElementById("f-minms");
  const degradedIn = document.getElementById("f-degraded");
  const refreshBtn = document.getElementById("f-refresh");

  const esc = (s) => String(s).replace(/[&<>"]/g,
    (c) => ({"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[c]));
  const fmtUS = (us) => us >= 1000 ? (us / 1000).toFixed(2) + " ms" : us + " µs";
  const layerOf = (name) => {
    const i = name.indexOf(".");
    return i < 0 ? name : name.slice(0, i);
  };

  function spanRows(span, total, depth, out) {
    const pad = " ".repeat(depth * 2);
    const left = total > 0 ? (100 * span.offset_us / total) : 0;
    const width = total > 0 ? Math.max(100 * span.duration_us / total, 0.2) : 100;
    const attrs = Object.entries(span.attrs || {})
      .map(([k, v]) => k + "=" + v).join(" ");
    out.push('<div class="span-row" title="' + esc(attrs) + '">' +
      '<span class="span-label">' + pad + esc(span.name) + '</span>' +
      '<span class="span-track"><span class="span-bar layer-' +
      esc(layerOf(span.name)) + '" style="left:' + left.toFixed(2) +
      '%;width:' + width.toFixed(2) + '%"></span></span>' +
      '<span class="span-dur">' + fmtUS(span.duration_us) + '</span></div>');
    for (const c of span.children || []) spanRows(c, total, depth + 1, out);
  }

  async function showTrace(id) {
    detailEl.textContent = "Loading trace " + id + "…";
    const resp = await fetch("/api/admin/traces/" + encodeURIComponent(id));
    if (!resp.ok) {
      detailEl.textContent = "Trace fetch failed: " + resp.status;
      return;
    }
    const tr = await resp.json();
    const rows = [];
    if (tr.root) spanRows(tr.root, tr.duration_us, 0, rows);
    detailEl.innerHTML =
      "<p><code>" + esc(tr.id) + "</code> · " + esc(tr.widget) +
      " · origin " + esc(tr.origin) + " · " + fmtUS(tr.duration_us) +
      " · " + tr.spans + " spans" +
      (tr.dropped_spans ? " (" + tr.dropped_spans + " dropped)" : "") +
      '</p><div class="waterfall">' + rows.join("") + "</div>";
  }

  async function refresh() {
    const params = new URLSearchParams();
    if (widgetIn.value) params.set("widget", widgetIn.value.trim());
    if (minMsIn.value) params.set("min_ms", minMsIn.value.trim());
    if (degradedIn.checked) params.set("degraded", "1");
    const resp = await fetch("/api/admin/traces?" + params);
    if (!resp.ok) {
      listEl.textContent = "Trace list failed: " + resp.status;
      return;
    }
    const data = await resp.json();
    const d = data.decisions || {};
    let html = "<p>" + data.retained + "/" + data.capacity + " retained · " +
      data.retained_bytes + " bytes · kept " +
      ((d.kept_error | 0) + (d.kept_slow | 0) + (d.kept_baseline | 0)) +
      " · dropped " + (d.dropped | 0) + " · evicted " +
      (d.evicted | 0) + "</p>";
    html += "<table><thead><tr><th>trace</th><th>widget</th><th>origin</th>" +
      "<th>duration</th><th>spans</th><th>kept as</th><th>flags</th>" +
      "</tr></thead><tbody>";
    for (const t of data.traces || []) {
      const flags = (t.error ? '<span class="badge red">error</span> ' : "") +
        (t.degraded ? '<span class="badge yellow">degraded</span>' : "");
      html += '<tr class="trace-row" data-id="' + esc(t.id) + '">' +
        "<td><code>" + esc(t.id) + "</code></td><td>" + esc(t.widget) +
        "</td><td>" + esc(t.origin) + "</td><td>" + t.duration_ms.toFixed(1) +
        " ms</td><td>" + t.spans + "</td><td>" + esc(t.retained_as || "") +
        "</td><td>" + flags + "</td></tr>";
    }
    html += "</tbody></table>";
    listEl.innerHTML = html;
    listEl.classList.remove("loading");
    for (const row of listEl.querySelectorAll(".trace-row")) {
      row.addEventListener("click", () => showTrace(row.dataset.id));
    }
  }

  refreshBtn.addEventListener("click", refresh);
  refresh();
})();
`
