package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"ooddash/internal/auth"
	"ooddash/internal/slurmcli"
)

// blockingRunner stalls every Slurm command until released, simulating a
// slow upstream so concurrent fills pile up against the admission gate.
type blockingRunner struct {
	inner   slurmcli.Runner
	entered chan struct{} // one send per call that reached the upstream
	release chan struct{} // closed to let every stalled call proceed
}

func (r *blockingRunner) Run(name string, args ...string) (string, error) {
	r.entered <- struct{}{}
	<-r.release
	return r.inner.Run(name, args...)
}

// TestDrillLoginRushFillAdmission is the login-rush drill at unit scale: a
// cohort of cold-cache users hits a per-user-keyed route at once, so
// singleflight cannot collapse them and every request wants its own upstream
// fill. The gate must admit exactly its cap, turn the rest away fast with
// 503 + Retry-After (never a 500, never a queue), and drain back to zero.
func TestDrillLoginRushFillAdmission(t *testing.T) {
	const fillCap = 2
	br := &blockingRunner{entered: make(chan struct{}, 64), release: make(chan struct{})}
	e := newEnvWith(t, func(c *Config) {
		c.Resilience.MaxConcurrentFills = fillCap
	}, func(inner slurmcli.Runner) slurmcli.Runner {
		br.inner = inner
		return br
	})

	// The rush cohort: cold-cache users beyond the fixture trio.
	users := []string{"alice", "bob", "carol"}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("rush%02d", i)
		e.users.AddUser(auth.User{Name: name, Accounts: []string{"lab-b"}})
		users = append(users, name)
	}

	// The first cap users get through the gate and stall on the upstream.
	var wg sync.WaitGroup
	admitted := make(chan int, fillCap)
	for i := 0; i < fillCap; i++ {
		user := users[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := e.get(user, "/api/recent_jobs")
			admitted <- status
		}()
	}
	for i := 0; i < fillCap; i++ {
		<-br.entered // a fill now holds a gate slot inside the runner
	}

	// Every further cold user is rejected fast while the gate is full: a
	// retriable 503 with Retry-After >= 1, not a 500 and not a queue slot.
	rejected := 0
	for _, user := range users[fillCap:] {
		status, hdr, body := e.getFull(user, "/api/recent_jobs")
		if status != http.StatusServiceUnavailable {
			t.Fatalf("user %s during saturation: status %d, want 503: %s", user, status, body)
		}
		ra, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("user %s: Retry-After = %q, want integer >= 1", user, hdr.Get("Retry-After"))
		}
		rejected++
	}

	close(br.release)
	wg.Wait()
	close(admitted)
	for status := range admitted {
		if status != http.StatusOK {
			t.Fatalf("admitted fill finished with status %d, want 200", status)
		}
	}

	var ctld FillStat
	for _, st := range e.server.FillStats() {
		if st.Source == srcCtld {
			ctld = st
		}
	}
	if ctld.Cap != fillCap {
		t.Fatalf("reported cap = %d, want %d", ctld.Cap, fillCap)
	}
	if ctld.Peak != fillCap {
		t.Fatalf("fill peak = %d, want exactly the cap %d", ctld.Peak, fillCap)
	}
	if ctld.InFlight != 0 {
		t.Fatalf("in-flight fills = %d after drain, want 0", ctld.InFlight)
	}
	if ctld.Rejected != int64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", ctld.Rejected, rejected)
	}
}

// TestFillGateUnlimited confirms the negative knob disables the cap but the
// gate still tracks in-flight pressure for /metrics.
func TestFillGateUnlimited(t *testing.T) {
	g := &fillGate{source: "x", cap: 0}
	for i := 0; i < 100; i++ {
		if !g.tryAcquire() {
			t.Fatalf("uncapped gate rejected acquire %d", i)
		}
	}
	if got := g.peak.Load(); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		g.release()
	}
	if got := g.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after release, want 0", got)
	}
}

// TestRetryAfterJitter is the satellite regression test: the Retry-After
// written on cold 503s stays >= 1 second, is bounded, and varies across
// calls — a synchronized cohort of rejected clients must not be handed the
// same comeback second.
func TestRetryAfterJitter(t *testing.T) {
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		writeFetchError(rec, &FillSaturatedError{Source: srcCtld, RetryAfter: 0})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", rec.Code)
		}
		ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After = %q, want an integer", rec.Header().Get("Retry-After"))
		}
		if ra < 1 {
			t.Fatalf("Retry-After = %d, want >= 1", ra)
		}
		if ra > 1+retryAfterJitterSecs {
			t.Fatalf("Retry-After = %d, want <= %d", ra, 1+retryAfterJitterSecs)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Retry-After never varied across 200 calls: %v", seen)
	}
}
