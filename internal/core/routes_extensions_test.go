package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestEventsFeedDeltaPolling(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "watched", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	var resp EventsResponse
	e.getJSON("alice", "/api/events", &resp)
	if len(resp.Events) != 2 { // submitted + started
		t.Fatalf("events = %+v", resp.Events)
	}
	if resp.Events[0].Kind != "submitted" || resp.Events[1].Kind != "started" {
		t.Fatalf("kinds = %s %s", resp.Events[0].Kind, resp.Events[1].Kind)
	}
	if resp.Events[0].JobID != jobIDStr(id) {
		t.Fatalf("job id = %s", resp.Events[0].JobID)
	}

	// Delta poll: nothing new yet.
	var delta EventsResponse
	e.getJSON("alice", fmt.Sprintf("/api/events?since=%d", resp.NextSeq), &delta)
	if len(delta.Events) != 0 {
		t.Fatalf("delta = %+v", delta.Events)
	}
	// Completion shows up on the next poll.
	e.advance(11 * time.Minute)
	e.getJSON("alice", fmt.Sprintf("/api/events?since=%d", resp.NextSeq), &delta)
	if len(delta.Events) != 1 || delta.Events[0].Kind != "completed" {
		t.Fatalf("delta = %+v", delta.Events)
	}
}

func TestEventsFeedPrivacyScope(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "carols-секрет", User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp EventsResponse
	e.getJSON("alice", "/api/events", &resp)
	for _, ev := range resp.Events {
		if ev.User == "carol" {
			t.Fatalf("alice sees carol's event: %+v", ev)
		}
	}
	// bob shares lab-b and does see them; staff (admin) sees everything.
	e.getJSON("bob", "/api/events", &resp)
	if len(resp.Events) == 0 {
		t.Fatal("bob sees no group events")
	}
	e.getJSON("staff", "/api/events", &resp)
	if len(resp.Events) == 0 {
		t.Fatal("admin sees no events")
	}
}

func TestEventsBadParams(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/events?since=-1", 400)
	e.wantStatus("alice", "/api/events?since=x", 400)
	e.wantStatus("alice", "/api/events?limit=0", 400)
}

func TestInsightsDetectsPatterns(t *testing.T) {
	e := newEnv(t)
	// alice: repeated identical failures plus idle interactive sessions.
	for i := 0; i < 4; i++ {
		e.submit(slurm.SubmitRequest{
			Name: "train-model", User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 2, MemMB: 2048},
			Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute,
				FailureState: slurm.StateFailed, ExitCode: 137,
				CPUUtilization: 0.4, MemUtilization: 0.3},
		})
	}
	for i := 0; i < 4; i++ {
		e.submit(slurm.SubmitRequest{
			Name: "sys/dashboard/jupyter", User: "alice", Account: "lab-a", Partition: "cpu",
			ReqTRES: slurm.TRES{CPUs: 8, MemMB: 16 * 1024}, TimeLimit: 8 * time.Hour,
			InteractiveApp: "jupyter", SessionID: fmt.Sprintf("s%d", i),
			Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute,
				CPUUtilization: 0.05, MemUtilization: 0.05},
		})
	}
	e.advance(9 * time.Hour)

	var resp InsightsResponse
	e.getJSON("alice", "/api/insights?range=24h", &resp)
	if resp.JobCount != 8 {
		t.Fatalf("job count = %d", resp.JobCount)
	}
	kinds := make(map[string]bool)
	for _, f := range resp.Findings {
		kinds[f.Kind] = true
	}
	if !kinds["repeated-failures"] {
		t.Fatalf("missing repeated-failures: %+v", resp.Findings)
	}
	if !kinds["idle-interactive-sessions"] {
		t.Fatalf("missing idle-interactive-sessions: %+v", resp.Findings)
	}
	// Findings are ordered most severe first.
	if resp.Findings[0].Severity != "high" {
		t.Fatalf("first finding = %+v", resp.Findings[0])
	}
	if !strings.Contains(resp.Findings[0].Title, "137") {
		t.Fatalf("title = %q", resp.Findings[0].Title)
	}
}

func TestInsightsCleanHistory(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 2048}, TimeLimit: time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: 50 * time.Minute,
			CPUUtilization: 0.9, MemUtilization: 0.8},
	})
	e.advance(time.Hour)
	var resp InsightsResponse
	e.getJSON("carol", "/api/insights?range=24h", &resp)
	if len(resp.Findings) != 0 {
		t.Fatalf("clean history produced findings: %+v", resp.Findings)
	}
}

func TestAdminOverview(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	var resp AdminOverviewResponse
	e.getJSON("staff", "/api/jobperf?range=24h", &struct{}{}) // staff can use normal routes too
	e.getJSON("staff", "/api/admin/overview?range=24h", &resp)
	if resp.TotalJobs != 5 { // every job from every user
		t.Fatalf("total jobs = %d, want 5", resp.TotalJobs)
	}
	if len(resp.TopUsers) == 0 || resp.TotalCPUHours <= 0 {
		t.Fatalf("resp = %+v", resp)
	}
	// Ranked by CPU hours descending.
	for i := 1; i < len(resp.TopUsers); i++ {
		if resp.TopUsers[i].CPUHours > resp.TopUsers[i-1].CPUHours {
			t.Fatalf("top users unsorted: %+v", resp.TopUsers)
		}
	}
	if resp.StateCounts["FAILED"] != 1 {
		t.Fatalf("state counts = %+v", resp.StateCounts)
	}
}

func TestAdminOverviewForbiddenForRegularUsers(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/admin/overview", 403)
	e.wantStatus("", "/api/admin/overview", 401)
}

func TestAdminCanViewAnyJobButNotLogs(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "private", User: "carol", Account: "lab-b", Partition: "cpu",
		ReqTRES:    slurm.TRES{CPUs: 1, MemMB: 512},
		StdoutPath: "/home/carol/private.out",
		Profile:    slurm.UsageProfile{ActualDuration: time.Hour},
	})
	e.logs.Write("/home/carol/private.out", "secret\n")
	// Admin sees the job (permission-based accounting)...
	var ov JobOverviewResponse
	e.getJSON("staff", "/api/job/"+jobIDStr(id), &ov)
	if ov.User != "carol" {
		t.Fatalf("overview = %+v", ov)
	}
	// ...but logs still follow filesystem permissions (owner only).
	e.wantStatus("staff", "/api/job/"+jobIDStr(id)+"/logs", 403)
}

func TestGPUEfficiencyInMyJobs(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "gpu-idle", User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 32 * 1024, GPUs: 2}, TimeLimit: 4 * time.Hour,
		Profile: slurm.UsageProfile{ActualDuration: time.Hour,
			CPUUtilization: 0.5, MemUtilization: 0.5, GPUUtilization: 0.1},
	})
	e.advance(90 * time.Minute)
	var resp MyJobsResponse
	e.getJSON("carol", "/api/myjobs?range=24h", &resp)
	if len(resp.Jobs) != 1 {
		t.Fatalf("rows = %d", len(resp.Jobs))
	}
	row := resp.Jobs[0]
	if row.Efficiency.GPUPercent == nil {
		t.Fatal("gpu efficiency missing")
	}
	if got := *row.Efficiency.GPUPercent; got < 9.9 || got > 10.1 {
		t.Fatalf("gpu%% = %v, want ~10", got)
	}
	// The §9 GPU warning fires for the idle GPUs.
	found := false
	for _, w := range row.Warnings {
		if strings.Contains(w, "GPU") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no GPU warning: %+v", row.Warnings)
	}
}

func TestEventsTailParam(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: 10 * time.Minute},
	})
	var tail EventsResponse
	e.getJSON("alice", "/api/events?tail=1", &tail)
	if len(tail.Events) != 0 || tail.NextSeq == 0 {
		t.Fatalf("tail = %+v", tail)
	}
	// Nothing new yet from the head; the next transition appears.
	var delta EventsResponse
	e.getJSON("alice", fmt.Sprintf("/api/events?since=%d", tail.NextSeq), &delta)
	if len(delta.Events) != 0 {
		t.Fatalf("delta from head = %+v", delta.Events)
	}
	e.advance(11 * time.Minute)
	e.getJSON("alice", fmt.Sprintf("/api/events?since=%d", tail.NextSeq), &delta)
	if len(delta.Events) != 1 {
		t.Fatalf("delta = %+v", delta.Events)
	}
}

func TestInsightsPageServed(t *testing.T) {
	e := newEnv(t)
	status, body := e.get("alice", "/insights")
	if status != 200 || !strings.Contains(string(body), "/api/insights") {
		t.Fatalf("insights page: %d", status)
	}
	if !strings.Contains(string(body), "/insights") {
		t.Fatal("nav missing insights link")
	}
}
