package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

// breakerState digs one source's circuit state out of the health payload.
func breakerState(t *testing.T, h *HealthResponse, source string) BreakerView {
	t.Helper()
	for _, b := range h.Breakers {
		if b.Source == source {
			return b
		}
	}
	t.Fatalf("no breaker for source %q in %+v", source, h.Breakers)
	return BreakerView{}
}

// TestDegradedModeEndToEnd walks the full failure drill on the simulated
// clock: controller dies mid-run, warm widgets fall back to last-known-good
// (200 + degraded marker), cold widgets fail fast (503 + Retry-After), the
// breaker opens and is visible on /api/admin/health and /metrics, and after
// recovery the half-open probe restores fresh, non-degraded service.
func TestDegradedModeEndToEnd(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "drill", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})

	// Warm alice's recent-jobs cache while everything is healthy.
	status, header, _ := e.getFull("alice", "/api/recent_jobs")
	if status != 200 || header.Get("X-OODDash-Degraded") != "" {
		t.Fatalf("healthy fetch: status %d, degraded %q", status, header.Get("X-OODDash-Degraded"))
	}

	// The controller dies mid-run.
	e.cluster.Ctl.SetHealth(slurm.HealthDown, "failure drill")

	// Inside the TTL the cache still serves the fresh entry, not degraded.
	status, header, _ = e.getFull("alice", "/api/recent_jobs")
	if status != 200 || header.Get("X-OODDash-Degraded") != "" {
		t.Fatalf("within-TTL fetch: status %d, degraded %q", status, header.Get("X-OODDash-Degraded"))
	}

	// Past the TTL, the warm widget degrades instead of failing: 200 with
	// the stale header and the injected JSON markers.
	e.clock.Advance(31 * time.Second)
	status, header, body := e.getFull("alice", "/api/recent_jobs")
	if status != 200 {
		t.Fatalf("degraded fetch: status %d: %s", status, body)
	}
	if got := header.Get("X-OODDash-Degraded"); got != "stale" {
		t.Fatalf("X-OODDash-Degraded = %q, want %q", got, "stale")
	}
	if !bytes.Contains(body, []byte(`"degraded":true`)) || !bytes.Contains(body, []byte(`"age_seconds":31`)) {
		t.Fatalf("degraded body missing markers: %s", body)
	}
	if !bytes.Contains(body, []byte(`"drill"`)) {
		t.Fatalf("degraded body lost last-known-good data: %s", body)
	}

	// A cold key (bob never loaded this widget) has no fallback: 503 with a
	// Retry-After hint.
	status, header, body = e.getFull("bob", "/api/recent_jobs")
	if status != 503 {
		t.Fatalf("cold fetch during outage: status %d: %s", status, body)
	}
	if ra, err := strconv.Atoi(header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", header.Get("Retry-After"))
	}

	// Two request-level failures so far (alice degraded, bob cold). One more
	// trips the default threshold of 3 and opens the slurmctld breaker.
	e.wantStatus("bob", "/api/recent_jobs", 503)
	var health HealthResponse
	e.getJSON("staff", "/api/admin/health", &health)
	ctld := breakerState(t, &health, "slurmctld")
	if ctld.State != "open" {
		t.Fatalf("slurmctld breaker = %q, want open: %+v", ctld.State, ctld)
	}
	if ctld.Retries == 0 || ctld.Failures < 3 || ctld.Opens != 1 {
		t.Fatalf("breaker counters = %+v", ctld)
	}
	if health.CacheStaleServed == 0 {
		t.Fatalf("cache_stale_served = 0, want > 0")
	}

	// While open: cold requests short-circuit without touching the backend,
	// warm requests keep serving stale.
	e.wantStatus("bob", "/api/recent_jobs", 503)
	status, header, _ = e.getFull("alice", "/api/recent_jobs")
	if status != 200 || header.Get("X-OODDash-Degraded") != "stale" {
		t.Fatalf("warm fetch with open breaker: status %d, degraded %q", status, header.Get("X-OODDash-Degraded"))
	}
	e.getJSON("staff", "/api/admin/health", &health)
	ctld = breakerState(t, &health, "slurmctld")
	if ctld.ShortCircuits < 2 {
		t.Fatalf("short_circuits = %d, want >= 2", ctld.ShortCircuits)
	}
	if health.CacheBreakerOpen == 0 {
		t.Fatalf("cache_breaker_open = 0, want > 0")
	}

	// The breaker state is scrapeable in Prometheus exposition format.
	status, _, metrics := e.getFull("staff", "/metrics")
	if status != 200 {
		t.Fatalf("/metrics status = %d", status)
	}
	if !strings.Contains(string(metrics), `ooddash_breaker_state{source="slurmctld"} 2`) {
		t.Fatalf("/metrics missing open breaker gauge:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), `ooddash_breaker_opens_total{source="slurmctld"} 1`) {
		t.Fatalf("/metrics missing opens counter:\n%s", metrics)
	}

	// Recovery: the controller comes back, the open window (30s) elapses,
	// and the next request is admitted as a half-open probe. It succeeds,
	// closes the circuit, and serves fresh non-degraded data.
	e.cluster.Ctl.SetHealth(slurm.HealthUp, "")
	e.advance(31 * time.Second)
	status, header, body = e.getFull("alice", "/api/recent_jobs")
	if status != 200 {
		t.Fatalf("post-recovery fetch: status %d: %s", status, body)
	}
	if got := header.Get("X-OODDash-Degraded"); got != "" {
		t.Fatalf("post-recovery degraded header = %q, want empty", got)
	}
	if bytes.Contains(body, []byte(`"degraded"`)) {
		t.Fatalf("post-recovery body still marked degraded: %s", body)
	}
	e.getJSON("staff", "/api/admin/health", &health)
	ctld = breakerState(t, &health, "slurmctld")
	if ctld.State != "closed" {
		t.Fatalf("post-recovery breaker = %q, want closed: %+v", ctld.State, ctld)
	}
}
