package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/trace"
)

// tracedEnv builds an env with deterministic tracing: every request head-
// sampled, every finished trace retained (baseline probability 1), so tests
// can assert on exact store contents.
func tracedEnv(t *testing.T) *env {
	return newEnvWith(t, func(c *Config) {
		c.Trace = TraceConfig{Sample: 1, Baseline: 1}
	}, nil)
}

// findSpan walks a span tree depth-first for the first span whose name has
// the given prefix.
func findSpan(sp *trace.SpanJSON, prefix string) *trace.SpanJSON {
	if sp == nil {
		return nil
	}
	if strings.HasPrefix(sp.Name, prefix) {
		return sp
	}
	for _, c := range sp.Children {
		if got := findSpan(c, prefix); got != nil {
			return got
		}
	}
	return nil
}

// treeDepth returns the deepest nesting level of the span tree (root = 1).
func treeDepth(sp *trace.SpanJSON) int {
	if sp == nil {
		return 0
	}
	max := 0
	for _, c := range sp.Children {
		if d := treeDepth(c); d > max {
			max = d
		}
	}
	return 1 + max
}

// TestTraceSpanDepthEndToEnd is the acceptance check for the tentpole: one
// widget request's exported trace nests HTTP root → cache fill → resilience
// attempt → slurmcli command → daemon handler, with the daemon-side span
// attributed to the right daemon.
func TestTraceSpanDepthEndToEnd(t *testing.T) {
	e := tracedEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 512},
	})
	e.wantStatus("alice", "/api/recent_jobs", 200)

	var list TraceListResponse
	e.getJSON("staff", "/api/admin/traces?widget=recent_jobs", &list)
	if len(list.Traces) != 1 {
		t.Fatalf("retained %d recent_jobs traces, want 1: %+v", len(list.Traces), list.Traces)
	}
	sum := list.Traces[0]
	if sum.Origin != "http" {
		t.Errorf("trace origin = %q, want http", sum.Origin)
	}

	var tj trace.TraceJSON
	e.getJSON("staff", "/api/admin/traces/"+sum.ID, &tj)
	if tj.Root == nil || tj.Root.Name != "http" {
		t.Fatalf("root span = %+v, want name http", tj.Root)
	}
	if d := treeDepth(tj.Root); d < 4 {
		t.Errorf("span tree depth = %d, want >= 4", d)
	}
	// The full chain, layer by layer: each deeper span must sit inside the
	// previous one's subtree.
	chain := tj.Root
	for _, prefix := range []string{"cache.fill", "resilience.attempt", "slurmcli.squeue", "slurmctld.handle"} {
		next := findSpan(chain, prefix)
		if next == nil {
			t.Fatalf("span %q not found under %q; trace: %+v", prefix, chain.Name, tj)
		}
		chain = next
	}
	cmd := findSpan(tj.Root, "slurmcli.squeue")
	if got := cmd.Attrs["daemon"]; got != "slurmctld" {
		t.Errorf("slurmcli.squeue daemon attr = %q, want slurmctld", got)
	}
}

// TestSreportSlowdownTraceAttribution is the deterministic failure-drill
// E2E: a FaultRunner slows sreport (the rollup query command) on the
// simulated clock, the resulting trace is retained as slow with its latency
// concentrated in the slurmdbd child span, the slow-request log line fires
// with the trace ID, and a fast request made alongside is NOT retained.
func TestSreportSlowdownTraceAttribution(t *testing.T) {
	var clk *slurm.SimClock
	var fr *slurmcli.FaultRunner
	e := newEnvWith(t, func(c *Config) {
		// Baseline off: only the slow/error tail classes retain, so the
		// fast request's fate is deterministic.
		c.Trace = TraceConfig{Sample: 1, Baseline: -1, Slow: 500 * time.Millisecond}
	}, func(r slurmcli.Runner) slurmcli.Runner {
		fr = slurmcli.NewFaultRunner(r, 1, func(d time.Duration) { clk.Advance(d) })
		return fr
	})
	clk = e.clock
	fr.SetRules(slurmcli.FaultRule{Command: "sreport", Latency: 800 * time.Millisecond})

	var mu sync.Mutex
	var logLines []string
	e.server.SetAccessLog(func(line string) {
		mu.Lock()
		logLines = append(logLines, line)
		mu.Unlock()
	})

	e.wantStatus("alice", "/api/jobperf", 200)     // sreport: slowed by 800ms
	e.wantStatus("alice", "/api/recent_jobs", 200) // squeue: fast

	var list TraceListResponse
	e.getJSON("staff", "/api/admin/traces", &list)
	if len(list.Traces) != 1 {
		t.Fatalf("retained %d traces, want only the slow one: %+v", len(list.Traces), list.Traces)
	}
	sum := list.Traces[0]
	if sum.Widget != "job_perf" || sum.RetainedAs != "slow" {
		t.Errorf("retained trace = widget %q as %q, want job_perf as slow", sum.Widget, sum.RetainedAs)
	}
	if sum.DurationMS < 800 {
		t.Errorf("slow trace duration = %.1fms, want >= 800", sum.DurationMS)
	}

	var tj trace.TraceJSON
	e.getJSON("staff", "/api/admin/traces/"+sum.ID, &tj)
	fault := findSpan(tj.Root, "slurmdbd.fault")
	if fault == nil {
		t.Fatalf("no slurmdbd.fault span in trace: %+v", tj)
	}
	if fault.DurationUS < 800_000 {
		t.Errorf("slurmdbd.fault duration = %dus, want >= 800000", fault.DurationUS)
	}
	// The injected latency must dominate the root: that is what points an
	// operator reading the waterfall at slurmdbd.
	if tj.DurationUS <= 0 || float64(fault.DurationUS) < 0.8*float64(tj.DurationUS) {
		t.Errorf("slurmdbd.fault %dus is not the bulk of the %dus trace", fault.DurationUS, tj.DurationUS)
	}

	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, line := range logLines {
		if strings.Contains(line, "slow-request trace="+sum.ID) {
			found = true
		}
	}
	if !found {
		t.Errorf("no slow-request log line for trace %s in %q", sum.ID, logLines)
	}
}

// TestSelfObservingEndpointsNotTraced is the recursion guard: /metrics and
// the trace-admin endpoints must neither mint traces of themselves nor be
// served from the rendered-response cache.
func TestSelfObservingEndpointsNotTraced(t *testing.T) {
	e := tracedEnv(t)
	e.wantStatus("alice", "/api/recent_jobs", 200) // one real trace as a sentinel

	st := e.server.tracer.Store()
	lenBefore, decBefore := st.Len(), st.Snapshot()

	var list TraceListResponse
	e.getJSON("staff", "/api/admin/traces", &list)
	e.getJSON("staff", "/api/admin/traces", &list)
	e.wantStatus("staff", "/api/admin/traces/deadbeefdeadbeef", 404)
	// The events feed shares a route with the SSE stream; a span there
	// would measure connection lifetime, so it must stay untraced too.
	e.wantStatus("alice", "/api/events", 200)
	status1, body1 := e.get("staff", "/metrics")
	status2, body2 := e.get("staff", "/metrics")
	if status1 != 200 || status2 != 200 {
		t.Fatalf("/metrics status = %d, %d", status1, status2)
	}

	if got := st.Len(); got != lenBefore {
		t.Errorf("observability endpoints grew the trace store: %d -> %d", lenBefore, got)
	}
	if dec := st.Snapshot(); dec != decBefore {
		t.Errorf("observability endpoints changed sampling decisions: %+v -> %+v", decBefore, dec)
	}
	for _, sum := range list.Traces {
		if selfObserving(sum.Widget) {
			t.Errorf("self-observing widget %q has a retained trace", sum.Widget)
		}
	}

	// Cache bypass: consecutive /metrics bodies must differ (the first
	// request increments counters the second reports), and the trace list
	// must reflect traces retained after its first rendering.
	if bytes.Equal(body1, body2) {
		t.Error("/metrics served identical bodies back-to-back; rendered cache not bypassed")
	}
	e.wantStatus("alice", "/api/system_status", 200)
	var after TraceListResponse
	e.getJSON("staff", "/api/admin/traces", &after)
	if after.Retained != lenBefore+1 {
		t.Errorf("trace list retained = %d after new trace, want %d; stale cached response?",
			after.Retained, lenBefore+1)
	}

	// Acceptance: the retained-bytes gauge and the sentinel trace's
	// histogram exemplar are both on /metrics.
	if !bytes.Contains(body2, []byte("ooddash_trace_retained_bytes")) {
		t.Error("/metrics missing ooddash_trace_retained_bytes gauge")
	}
	if !bytes.Contains(body2, []byte(`# {trace_id="`)) {
		t.Error("/metrics missing histogram exemplar annotation")
	}
	if !bytes.Contains(body2, []byte("ooddash_trace_span_seconds")) {
		t.Error("/metrics missing ooddash_trace_span_seconds histogram")
	}
}

// TestPushRefreshTraceOrigin covers the push loopback path: a scheduler-
// driven refresh roots its own trace with origin "push", and the loopback
// request's middleware span joins that trace as a child instead of minting
// an orphaned http root.
func TestPushRefreshTraceOrigin(t *testing.T) {
	e := tracedEnv(t)
	s := e.server

	route, ok := s.pushRoutes["recent_jobs"]
	if !ok {
		t.Fatal("recent_jobs is not push-enabled")
	}
	if _, _, err := s.pushFetch(route, "alice")(context.Background()); err != nil {
		t.Fatalf("push refresh: %v", err)
	}

	var list TraceListResponse
	e.getJSON("staff", "/api/admin/traces", &list)
	if len(list.Traces) != 1 {
		t.Fatalf("retained %d traces after one push refresh, want 1: %+v", len(list.Traces), list.Traces)
	}
	sum := list.Traces[0]
	if sum.Origin != "push" || sum.Widget != "recent_jobs" {
		t.Errorf("push trace = widget %q origin %q, want recent_jobs/push", sum.Widget, sum.Origin)
	}

	var tj trace.TraceJSON
	e.getJSON("staff", "/api/admin/traces/"+sum.ID, &tj)
	if tj.Root == nil || tj.Root.Name != "push.refresh" {
		t.Fatalf("push trace root = %+v, want push.refresh", tj.Root)
	}
	httpSpan := findSpan(tj.Root, "http")
	if httpSpan == nil || httpSpan == tj.Root {
		t.Fatalf("loopback http span did not join the push trace: %+v", tj)
	}
	if findSpan(httpSpan, "slurmcli.squeue") == nil {
		t.Errorf("push trace missing the slurmcli.squeue span: %+v", tj)
	}
}
