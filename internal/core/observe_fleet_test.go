// Exposition validity for the fleet registry. This lives in package
// core_test (not core) because it imports internal/fleet, which itself
// imports core; the in-package observability tests cover the single-server
// /metrics document, and this file extends the same full-document check to
// the fleet's /metrics/fleet registry and to a replica's /metrics served
// through the load balancer.
package core_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/core"
	"ooddash/internal/fleet"
	"ooddash/internal/obs/obstest"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// TestSLOFleetExpositionValidity drives traffic through a two-replica fleet
// and machine-parses both exposition documents: the fleet registry
// (/metrics/fleet) and one replica's own /metrics routed via the load
// balancer. Every family must be well-formed — HELP/TYPE pairing,
// histogram monotonicity, exemplar syntax — and the fleet SLO families
// must be present.
func TestSLOFleetExpositionValidity(t *testing.T) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	env.Users.AddUser(auth.User{Name: "fleetadmin", Admin: true})
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	fl, err := fleet.New(fleet.Options{
		Replicas: 2,
		Clock:    env.Clock,
		Runner:   env.Runner,
		Build: func(id string, r slurmcli.Runner) (*core.Server, error) {
			return env.NewServerRunner(newsSrv.URL, core.Config{
				Push: core.PushConfig{DisableIdlePause: true, Jitter: -1},
			}, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)

	get := func(user, path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set(auth.UserHeader, user)
		rec := httptest.NewRecorder()
		fl.ServeHTTP(rec, req)
		return rec
	}

	// Traffic through the LB populates replica SLIs; ticks evaluate both
	// the per-replica engines and the fleet aggregator.
	user := env.UserNames[0]
	for i := 0; i < 4; i++ {
		if rec := get(user, "/api/system_status"); rec.Code != http.StatusOK {
			t.Fatalf("system_status = %d", rec.Code)
		}
		env.Clock.Advance(30 * time.Second)
		fl.Tick()
	}

	// The fleet's own registry document.
	rec := httptest.NewRecorder()
	if err := fl.Metrics().WritePrometheus(rec); err != nil {
		t.Fatal(err)
	}
	fleetDoc := rec.Body.String()
	obstest.Validate(t, fleetDoc)
	for _, fam := range []string{
		"ooddash_fleet_slo_burn_rate",
		"ooddash_fleet_slo_alert_state",
		"ooddash_fleet_slo_budget_spent_ratio",
		"ooddash_fleet_slo_alerts_fired_total",
	} {
		if !strings.Contains(fleetDoc, "# TYPE "+fam) {
			t.Errorf("fleet exposition missing family %s", fam)
		}
	}

	// A replica's /metrics, reached through the load balancer like an
	// operator scrape would be.
	mrec := get("fleetadmin", "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics through LB = %d", mrec.Code)
	}
	replicaDoc := mrec.Body.String()
	obstest.Validate(t, replicaDoc)
	if !strings.Contains(replicaDoc, "# TYPE ooddash_slo_burn_rate") {
		t.Error("replica exposition missing ooddash_slo_burn_rate")
	}
}
