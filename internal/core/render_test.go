package core

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/slurm"
)

// TestRenderedHitNoReencode is the encode-once regression gate: once a
// widget's payload has been materialized, serving it again must not call
// json.Marshal (or touch the view-model build) at all.
func TestRenderedHitNoReencode(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})

	paths := []string{"/api/announcements", "/api/system_status", "/api/cluster_status",
		"/api/recent_jobs", "/api/storage", "/api/myjobs"}
	for _, path := range paths {
		e.wantStatus("alice", path, http.StatusOK)
	}
	encodesAfterWarm := e.server.RenderEncodes()
	hitsBefore, _ := e.server.RenderStats()

	for _, path := range paths {
		status, body := e.get("alice", path)
		if status != http.StatusOK || len(body) == 0 {
			t.Fatalf("GET %s: status %d, %d bytes", path, status, len(body))
		}
	}
	if got := e.server.RenderEncodes(); got != encodesAfterWarm {
		t.Fatalf("warm requests re-encoded: %d encodes after warm, %d after re-serve",
			encodesAfterWarm, got)
	}
	hitsAfter, _ := e.server.RenderStats()
	if hitsAfter-hitsBefore != int64(len(paths)) {
		t.Fatalf("render hits = %d, want %d", hitsAfter-hitsBefore, len(paths))
	}
}

// TestRenderedBytesStableAcrossHits asserts a hit serves byte-identical
// output to the miss that filled it (the materialized bytes ARE the
// response, not a re-rendering of it).
func TestRenderedBytesStableAcrossHits(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})

	_, h1, b1 := e.getFull("alice", "/api/myjobs")
	_, h2, b2 := e.getFull("alice", "/api/myjobs")
	if !bytes.Equal(b1, b2) {
		t.Fatalf("hit bytes differ from miss bytes:\n%s\n---\n%s", b1, b2)
	}
	if h1.Get("ETag") == "" || h1.Get("ETag") != h2.Get("ETag") {
		t.Fatalf("ETags differ: %q vs %q", h1.Get("ETag"), h2.Get("ETag"))
	}
}

// TestRenderedVariantIsolation asserts per-user routes key their rendered
// bytes by user: one user's materialized payload must never serve another.
func TestRenderedVariantIsolation(t *testing.T) {
	e := newEnv(t)
	// alice is only in lab-a, carol only in lab-b: neither's My Jobs group
	// scope covers the other, so any crossover is a rendered-cache leak.
	e.submit(slurm.SubmitRequest{Name: "alice-job", User: "alice", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})
	e.submit(slurm.SubmitRequest{Name: "carol-job", User: "carol", Account: "lab-b",
		Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})

	for _, path := range []string{"/api/myjobs", "/api/storage", "/api/recent_jobs"} {
		// Warm alice's rendered entry, then serve it again (a hit), then
		// request the same path as carol: carol must get carol's payload.
		_, aliceBody := e.get("alice", path)
		_, aliceBody2 := e.get("alice", path)
		if !bytes.Equal(aliceBody, aliceBody2) {
			t.Fatalf("GET %s: alice's two responses differ", path)
		}
		_, carolBody := e.get("carol", path)
		if bytes.Equal(aliceBody, carolBody) {
			t.Fatalf("GET %s: carol received alice's bytes:\n%s", path, carolBody)
		}
		if bytes.Contains(carolBody, []byte(`"alice`)) {
			t.Fatalf("GET %s: carol's payload leaks alice's data:\n%s", path, carolBody)
		}
	}
}

// TestRenderedRevGuardInvalidation asserts a source-cache refill (new data
// after TTL expiry) invalidates the materialized bytes via the revision
// guard rather than serving stale output.
func TestRenderedRevGuardInvalidation(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{Name: "first", User: "alice", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})

	_, before := e.get("alice", "/api/myjobs")
	if !bytes.Contains(before, []byte(`"first"`)) {
		t.Fatalf("payload missing first job: %s", before)
	}

	// New job + TTL expiry: the source cache refills with a new revision.
	e.advance(2 * time.Hour)
	e.submit(slurm.SubmitRequest{Name: "second", User: "alice", Account: "lab-a",
		Partition: "cpu", ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})

	_, after := e.get("alice", "/api/myjobs")
	if !bytes.Contains(after, []byte(`"second"`)) {
		t.Fatalf("rendered cache served stale bytes after source refill: %s", after)
	}
}

// TestRenderCacheDisabledFallback asserts the benchmark baseline toggle
// really forces a fresh encode per request.
func TestRenderCacheDisabledFallback(t *testing.T) {
	e := newEnv(t)
	e.server.SetRenderCacheDisabled(true)
	defer e.server.SetRenderCacheDisabled(false)

	e.wantStatus("alice", "/api/system_status", http.StatusOK)
	n := e.server.RenderEncodes()
	e.wantStatus("alice", "/api/system_status", http.StatusOK)
	if got := e.server.RenderEncodes(); got != n+1 {
		t.Fatalf("disabled layer: encodes went %d -> %d, want +1", n, got)
	}
}

// TestRenderedETagRevalidation asserts the materialized hit path still
// honors If-None-Match with a 304 and sends no body.
func TestRenderedETagRevalidation(t *testing.T) {
	e := newEnv(t)
	_, h, _ := e.getFull("alice", "/api/system_status")
	tag := h.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag on rendered response")
	}

	req, err := http.NewRequest("GET", e.web.URL+"/api/system_status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(auth.UserHeader, "alice")
	req.Header.Set("If-None-Match", tag)
	resp, err := e.web.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
}

// TestAnnotateDegradedBytes pins the degraded annotation's exact bytes: the
// splice must preserve the original field order and append the two marker
// fields at the end, matching what the old Marshal-round-trip produced for
// ordered keys — but without re-encoding.
func TestAnnotateDegradedBytes(t *testing.T) {
	cases := []struct {
		in   string
		age  int64
		want string
		ok   bool
	}{
		{`{"b":2,"a":1}`, 42, `{"b":2,"a":1,"degraded":true,"age_seconds":42}`, true},
		{`{}`, 0, `{"degraded":true,"age_seconds":0}`, true},
		{`{"nested":{"x":[1,2]}}`, 7, `{"nested":{"x":[1,2]},"degraded":true,"age_seconds":7}`, true},
		{`[1,2,3]`, 5, `[1,2,3]`, false},
		{`"str"`, 5, `"str"`, false},
		{``, 5, ``, false},
	}
	for _, c := range cases {
		got, ok := annotateDegraded([]byte(c.in), c.age)
		if string(got) != c.want || ok != c.ok {
			t.Errorf("annotateDegraded(%q, %d) = %q, %v; want %q, %v",
				c.in, c.age, got, ok, c.want, c.ok)
		}
	}
}
