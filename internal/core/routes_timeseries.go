package core

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// TimeBucket is one point of the usage time series: jobs and consumption
// that *ended* within the bucket (Slurm usage reports bucket by end time).
type TimeBucket struct {
	Start     time.Time `json:"start"`
	Jobs      int       `json:"jobs"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	CPUHours  float64   `json:"cpu_hours"`
	GPUHours  float64   `json:"gpu_hours"`
	WallHours float64   `json:"wall_hours"`
}

// TimeseriesResponse is the jobperf chart payload: evenly bucketed usage
// over the selected range, the data behind a Chart.js line/bar chart.
type TimeseriesResponse struct {
	User       string       `json:"user"`
	BucketSecs int64        `json:"bucket_seconds"`
	Buckets    []TimeBucket `json:"buckets"`
}

// handleJobPerfTimeseries serves /api/jobperf/timeseries?range=&bucket=
// (bucket: hour|day, default day). Scope is the user's own jobs, matching
// the Job Performance Metrics app.
func (s *Server) handleJobPerfTimeseries(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	var bucket time.Duration
	switch b := r.URL.Query().Get("bucket"); b {
	case "", "day":
		bucket = 24 * time.Hour
	case "hour":
		bucket = time.Hour
	default:
		writeError(w, fmt.Errorf("%w: unknown bucket %q", errBadRequest, b))
		return
	}
	if start.IsZero() {
		// "all" range: anchor at the earliest record rather than the epoch.
		// Uncached, so the call still goes through the slurmdbd policy.
		v, err := s.runResilient(r, srcDBD, func(ctx context.Context) (any, error) {
			return s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{User: user.Name, Limit: 0})
		})
		if err != nil {
			writeFetchError(w, err)
			return
		}
		rows := v.([]slurmcli.SacctRow)
		if len(rows) == 0 {
			writeJSON(w, http.StatusOK, TimeseriesResponse{
				User: user.Name, BucketSecs: int64(bucket / time.Second),
			})
			return
		}
		start = rows[0].SubmitTime.Truncate(bucket)
	}

	key := fmt.Sprintf("jobperf_ts:%s:%d:%d:%d", user.Name, start.Unix(), end.Unix(), bucket/time.Second)
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		rows, err := s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			User: user.Name, Start: start, End: end,
		})
		if err != nil {
			return nil, err
		}
		return buildTimeseries(user.Name, rows, start, end, bucket), nil
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		return v.(*TimeseriesResponse), nil
	})
}

// buildTimeseries folds accounting rows into evenly spaced buckets keyed by
// job end time; running/pending jobs are excluded (no end yet).
func buildTimeseries(user string, rows []slurmcli.SacctRow, start, end time.Time, bucket time.Duration) *TimeseriesResponse {
	resp := &TimeseriesResponse{User: user, BucketSecs: int64(bucket / time.Second)}
	if !end.After(start) {
		return resp
	}
	byStart := make(map[int64]*TimeBucket)
	for i := range rows {
		row := &rows[i]
		if row.EndTime.IsZero() || row.EndTime.Before(start) || row.EndTime.After(end) {
			continue
		}
		bs := row.EndTime.Sub(start) / bucket
		key := start.Add(bs * bucket).Unix()
		b := byStart[key]
		if b == nil {
			b = &TimeBucket{Start: time.Unix(key, 0).UTC()}
			byStart[key] = b
		}
		b.Jobs++
		switch row.State {
		case slurm.StateCompleted:
			b.Completed++
		case slurm.StateFailed, slurm.StateNodeFail, slurm.StateOutOfMemory, slurm.StateTimeout:
			b.Failed++
		}
		b.CPUHours += row.TotalCPU.Hours()
		b.GPUHours += row.GPUHours()
		b.WallHours += row.Elapsed.Hours()
	}
	resp.Buckets = make([]TimeBucket, 0, len(byStart))
	for _, b := range byStart {
		resp.Buckets = append(resp.Buckets, *b)
	}
	sort.Slice(resp.Buckets, func(i, j int) bool {
		return resp.Buckets[i].Start.Before(resp.Buckets[j].Start)
	})
	return resp
}

// --- Admin health / observability -------------------------------------------------

// BreakerView is one data source's circuit state in the health payload.
type BreakerView struct {
	Source              string `json:"source"`
	State               string `json:"state"` // "closed", "half-open", "open"
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Attempts            int64  `json:"attempts"`
	Retries             int64  `json:"retries"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	ShortCircuits       int64  `json:"short_circuits"`
	Opens               int64  `json:"opens"`
}

// HealthResponse is the admin-only backend observability snapshot: cache
// effectiveness, degraded-mode counters, per-source breaker states, and
// per-daemon RPC counters — the quantities the paper's performance argument
// is about, exposed where operators can watch them.
type HealthResponse struct {
	Time time.Time `json:"time"`

	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheCollapsed   int64   `json:"cache_collapsed"`
	CacheErrors      int64   `json:"cache_errors"`
	CacheEntries     int     `json:"cache_entries"`
	CacheStaleServed int64   `json:"cache_stale_served"`
	CacheBreakerOpen int64   `json:"cache_breaker_open"`

	Breakers []BreakerView `json:"breakers"`

	CtldRPCs map[string]int64 `json:"slurmctld_rpcs,omitempty"`
	DBDRPCs  map[string]int64 `json:"slurmdbd_rpcs,omitempty"`
}

// breakerViews maps the resilience snapshot into the API shape.
func (s *Server) breakerViews() []BreakerView {
	snap := s.res.Snapshot()
	out := make([]BreakerView, 0, len(snap))
	for _, b := range snap {
		out = append(out, BreakerView{
			Source:              b.Source,
			State:               b.State.String(),
			ConsecutiveFailures: b.ConsecutiveFailures,
			Attempts:            b.Attempts,
			Retries:             b.Retries,
			Successes:           b.Successes,
			Failures:            b.Failures,
			ShortCircuits:       b.ShortCircuits,
			Opens:               b.Opens,
		})
	}
	return out
}

func (s *Server) handleAdminHealth(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	st := s.cache.Stats()
	resp := HealthResponse{
		Time:             s.clock.Now(),
		CacheHits:        st.Hits,
		CacheMisses:      st.Misses,
		CacheHitRate:     st.HitRate(),
		CacheCollapsed:   st.Collapsed,
		CacheErrors:      st.Errors,
		CacheEntries:     s.cache.Len(),
		CacheStaleServed: st.StaleServed,
		CacheBreakerOpen: st.BreakerOpen,
		Breakers:         s.breakerViews(),
	}
	// Daemon counters come through the command surface (sdiag), so the
	// health view works against a real cluster too. During an outage sdiag
	// fails like everything else; the health view must still render.
	if ctld, dbd, err := s.ctldBk.Sdiag(context.Background()); err == nil {
		resp.CtldRPCs = ctld.RPCCounts
		resp.DBDRPCs = dbd.RPCCounts
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the backend metrics in Prometheus exposition format,
// so a center's existing monitoring can scrape the dashboard the way it
// scrapes everything else. The whole document renders from the obs registry
// — cache effectiveness, per-widget latency histograms, per-source upstream
// attribution, per-command Slurm cost, breaker states, and the simulator's
// sdiag RPC counters — with exposition-correct label escaping (the old
// hand-rolled %q formatting emitted \u escapes that are invalid in the text
// format). Admin-only, like /api/admin/health.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.obsm.reg.WritePrometheus(w); err != nil {
		log.Printf("core: rendering /metrics: %v", err)
	}
}
