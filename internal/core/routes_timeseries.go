package core

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"time"

	"ooddash/internal/slurm"
)

// TimeBucket is one point of the usage time series: jobs and consumption
// that *ended* within the bucket (Slurm usage reports bucket by end time).
type TimeBucket struct {
	Start     time.Time `json:"start"`
	Jobs      int       `json:"jobs"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	CPUHours  float64   `json:"cpu_hours"`
	GPUHours  float64   `json:"gpu_hours"`
	WallHours float64   `json:"wall_hours"`
}

// TimeseriesResponse is the jobperf chart payload: bucketed usage over the
// selected range, the data behind a Chart.js line/bar chart. Resolution
// names the bucket width actually served (auto selection may differ from
// the request); PartialStart/PartialEnd flag edge buckets that extend past
// the requested window rather than silently scaling them.
type TimeseriesResponse struct {
	User         string       `json:"user"`
	BucketSecs   int64        `json:"bucket_seconds"`
	Resolution   string       `json:"resolution,omitempty"`
	PartialStart bool         `json:"partial_start,omitempty"`
	PartialEnd   bool         `json:"partial_end,omitempty"`
	Buckets      []TimeBucket `json:"buckets"`
}

// handleJobPerfTimeseries serves /api/jobperf/timeseries?range=&bucket=
// (bucket: minute|hour|day; default picks the finest resolution that keeps
// the chart under ~400 points). Scope is the user's own jobs, matching the
// Job Performance Metrics app. The series reads slurmdbd's incremental
// rollups, so cost is O(buckets in the window), not O(jobs in accounting).
func (s *Server) handleJobPerfTimeseries(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	if start.IsZero() {
		// "all" range: anchor at the earliest terminal record rather than
		// the epoch.
		minEnd, _, ok, err := s.rollupBounds(r, slurm.RollupScopeUser, user.Name)
		if err != nil {
			writeFetchError(w, err)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, TimeseriesResponse{User: user.Name})
			return
		}
		start = time.Unix(minEnd, 0).UTC()
	}
	series, meta, err := s.fetchRollup(r, rollupQuery{
		scope: slurm.RollupScopeUser, name: user.Name,
		start: start, end: end, bucket: r.URL.Query().Get("bucket"),
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		return buildTimeseries(user.Name, series), nil
	})
}

// buildTimeseries shapes a rollup window into the chart payload. Buckets
// are sparse — only buckets with activity appear — and arrive ordered by
// start time.
func buildTimeseries(user string, sr rollupSeries) *TimeseriesResponse {
	resp := &TimeseriesResponse{
		User: user, BucketSecs: sr.Res, Resolution: resolutionName(sr.Res),
		PartialStart: sr.PartialStart, PartialEnd: sr.PartialEnd,
	}
	for i := range sr.Rows {
		row := &sr.Rows[i]
		resp.Buckets = append(resp.Buckets, TimeBucket{
			Start:     time.Unix(row.BucketStart, 0).UTC(),
			Jobs:      int(row.Jobs),
			Completed: int(row.Completed),
			Failed:    int(row.Failed),
			CPUHours:  float64(row.CPUSec) / 3600,
			GPUHours:  float64(row.GPUSec) / 3600,
			WallHours: float64(row.WallSec) / 3600,
		})
	}
	return resp
}

// --- Admin health / observability -------------------------------------------------

// BreakerView is one data source's circuit state in the health payload.
type BreakerView struct {
	Source              string `json:"source"`
	State               string `json:"state"` // "closed", "half-open", "open"
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Attempts            int64  `json:"attempts"`
	Retries             int64  `json:"retries"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	ShortCircuits       int64  `json:"short_circuits"`
	Opens               int64  `json:"opens"`
}

// HealthResponse is the admin-only backend observability snapshot: cache
// effectiveness, degraded-mode counters, per-source breaker states, and
// per-daemon RPC counters — the quantities the paper's performance argument
// is about, exposed where operators can watch them.
type HealthResponse struct {
	Time time.Time `json:"time"`

	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheCollapsed   int64   `json:"cache_collapsed"`
	CacheErrors      int64   `json:"cache_errors"`
	CacheEntries     int     `json:"cache_entries"`
	CacheStaleServed int64   `json:"cache_stale_served"`
	CacheBreakerOpen int64   `json:"cache_breaker_open"`

	Breakers []BreakerView `json:"breakers"`

	CtldRPCs map[string]int64 `json:"slurmctld_rpcs,omitempty"`
	DBDRPCs  map[string]int64 `json:"slurmdbd_rpcs,omitempty"`
}

// breakerViews maps the resilience snapshot into the API shape.
func (s *Server) breakerViews() []BreakerView {
	snap := s.res.Snapshot()
	out := make([]BreakerView, 0, len(snap))
	for _, b := range snap {
		out = append(out, BreakerView{
			Source:              b.Source,
			State:               b.State.String(),
			ConsecutiveFailures: b.ConsecutiveFailures,
			Attempts:            b.Attempts,
			Retries:             b.Retries,
			Successes:           b.Successes,
			Failures:            b.Failures,
			ShortCircuits:       b.ShortCircuits,
			Opens:               b.Opens,
		})
	}
	return out
}

func (s *Server) handleAdminHealth(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	st := s.cache.Stats()
	resp := HealthResponse{
		Time:             s.clock.Now(),
		CacheHits:        st.Hits,
		CacheMisses:      st.Misses,
		CacheHitRate:     st.HitRate(),
		CacheCollapsed:   st.Collapsed,
		CacheErrors:      st.Errors,
		CacheEntries:     s.cache.Len(),
		CacheStaleServed: st.StaleServed,
		CacheBreakerOpen: st.BreakerOpen,
		Breakers:         s.breakerViews(),
	}
	// Daemon counters come through the command surface (sdiag), so the
	// health view works against a real cluster too. During an outage sdiag
	// fails like everything else; the health view must still render.
	if ctld, dbd, err := s.ctldBk.Sdiag(context.Background()); err == nil {
		resp.CtldRPCs = ctld.RPCCounts
		resp.DBDRPCs = dbd.RPCCounts
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the backend metrics in Prometheus exposition format,
// so a center's existing monitoring can scrape the dashboard the way it
// scrapes everything else. The whole document renders from the obs registry
// — cache effectiveness, per-widget latency histograms, per-source upstream
// attribution, per-command Slurm cost, breaker states, and the simulator's
// sdiag RPC counters — with exposition-correct label escaping (the old
// hand-rolled %q formatting emitted \u escapes that are invalid in the text
// format). Admin-only, like /api/admin/health.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.obsm.reg.WritePrometheus(w); err != nil {
		log.Printf("core: rendering /metrics: %v", err)
	}
}
