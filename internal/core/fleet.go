package core

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"ooddash/internal/push"
)

// This file is the core side of the scale-out fleet tier (internal/fleet):
// the delegate interface a fleet controller installs on each replica, the
// snapshot form rendered widget responses propagate in, and the request
// interception that lets a non-owner replica answer a push-enabled widget
// poll from peer-propagated bytes instead of fetching upstream.
//
// Ownership is per source key (widget, or "widget:user"): the fleet's
// consistent-hash ring assigns each key to exactly one replica, whose
// background scheduler polls the upstream once per TTL. Every other replica
// serves the owner's rendered bytes — with the exact ETag the owner would
// have produced, so a client revalidating against any replica still gets
// its 304s — and falls back to a synchronous owner refresh (Ensure) when
// the propagated copy has aged out, or to a degraded stale serve when the
// owner is unreachable.

// FleetSource identifies one push-enabled refresh source to the fleet:
// everything a replica needs to register and re-fetch it locally.
type FleetSource struct {
	Widget  string        // event/widget name ("system_status", ...)
	Key     string        // scheduler/hub key (Widget, or "widget:user")
	Path    string        // polling route the loopback refresh fetches
	User    string        // identity the refresh runs as
	PerUser bool          // payload varies by user (private cache class)
	TTL     time.Duration // refresh cadence = the widget's cache TTL
}

// FleetSnapshot is one rendered widget response in propagation form: the
// exact HTTP body (trailing newline included) plus the strong ETag computed
// over it, so a peer-served response is byte- and tag-identical to what the
// owner's own rendered path would have written.
type FleetSnapshot struct {
	Widget   string
	Key      string
	Body     []byte // exact response body, including the trailing newline
	ETag     string
	Degraded bool
	Version  int64     // hub version on the owning replica
	At       time.Time // when the owner last refreshed (freshness clock)
}

// Payload returns the hub/SSE form of the body (trailing newline trimmed),
// suitable for republishing into a peer replica's hub.
func (f FleetSnapshot) Payload() []byte {
	if n := len(f.Body); n > 0 && f.Body[n-1] == '\n' {
		return f.Body[:n-1]
	}
	return f.Body
}

// NewFleetSnapshot converts a hub snapshot into propagation form, stamping
// the refresh time the freshness window is measured from.
func NewFleetSnapshot(snap push.Snapshot, at time.Time) FleetSnapshot {
	body := make([]byte, 0, len(snap.Payload)+1)
	body = append(append(body, snap.Payload...), '\n')
	return FleetSnapshot{
		Widget:   snap.Widget,
		Key:      snap.Key,
		Body:     body,
		ETag:     etagFor(body),
		Degraded: snap.Degraded,
		Version:  snap.Version,
		At:       at,
	}
}

// FleetDelegate is what a fleet controller installs on a replica via
// SetFleet. All methods are called on request paths and must be safe for
// concurrent use.
type FleetDelegate interface {
	// Owns reports whether this replica is the current refresh owner of key.
	Owns(key string) bool
	// Snapshot returns the newest peer-propagated snapshot for key, if any.
	Snapshot(key string) (FleetSnapshot, bool)
	// Ensure makes the key's owner produce a current snapshot (registering
	// the source there first if needed) and returns it. ok is false when no
	// live owner could serve — the caller then degrades or serves locally.
	Ensure(ctx context.Context, src FleetSource) (FleetSnapshot, bool)
	// Touch records client interest in src (bookkeeping for idle reaping)
	// and registers it with the current owner's scheduler if it is new.
	Touch(src FleetSource)
}

// fleetHolder wraps the delegate so it can live in an atomic.Pointer.
type fleetHolder struct{ d FleetDelegate }

// SetFleet installs (or, with nil, removes) the fleet delegate. Safe to
// call while the server is serving; requests observe the change atomically.
func (s *Server) SetFleet(d FleetDelegate) {
	if d == nil {
		s.fleet.Store(nil)
		return
	}
	s.fleet.Store(&fleetHolder{d: d})
}

// fleetDelegate returns the installed delegate, or nil outside a fleet.
func (s *Server) fleetDelegate() FleetDelegate {
	if h := s.fleet.Load(); h != nil {
		return h.d
	}
	return nil
}

// fleetSource builds the FleetSource for a push route and user.
func fleetSource(route pushRoute, user string) FleetSource {
	return FleetSource{
		Widget:  route.widget,
		Key:     route.key(user),
		Path:    route.path,
		User:    user,
		PerUser: route.perUser,
		TTL:     route.ttl,
	}
}

// RegisterPushSource registers src with the background refresh scheduler
// (idempotent). The fleet controller calls this on the replica that owns
// src's key.
func (s *Server) RegisterPushSource(src FleetSource) error {
	route := pushRoute{widget: src.Widget, path: src.Path, perUser: src.PerUser, ttl: src.TTL}
	_, err := s.pushSched.Register(push.Source{
		Widget: src.Widget,
		Key:    src.Key,
		TTL:    src.TTL,
		Fetch:  s.pushFetch(route, src.User),
	})
	return err
}

// RefreshPushSource re-fetches a registered source immediately and returns
// the result in propagation form. The source must have been registered.
func (s *Server) RefreshPushSource(ctx context.Context, key string) (FleetSnapshot, error) {
	snap, err := s.pushSched.Refresh(ctx, key)
	if err != nil {
		return FleetSnapshot{}, err
	}
	return NewFleetSnapshot(snap, s.clock.Now()), nil
}

// UnregisterPushSource removes a source from the refresh scheduler and
// reports whether it was registered (ownership moved away, or idle reap).
func (s *Server) UnregisterPushSource(key string) bool {
	return s.pushSched.Unregister(key)
}

// PushSourceKeys lists the keys the background scheduler currently polls.
func (s *Server) PushSourceKeys() []string { return s.pushSched.Keys() }

// fleetFreshFor is the peer-serve freshness window: one TTL for the data
// itself plus half a TTL of slack for scheduler jitter and propagation
// batching. Beyond it the peer synchronously re-ensures via the owner.
func fleetFreshFor(ttl time.Duration) time.Duration { return ttl + ttl/2 }

// fleetHeaderKey labels responses served from peer-propagated bytes, in
// canonical MIME form for direct map assignment (wire: X-Ooddash-Fleet).
const fleetHeaderKey = "X-Ooddash-Fleet"

var fleetPeerValue = []string{"peer"}

// fleetIntercept wraps a push-enabled widget handler with the fleet serving
// policy. Outside a fleet (no delegate installed) it is a transparent
// pass-through; inside one:
//
//   - the key's owner serves locally as always (its cache is the source of
//     truth) after recording client interest via Touch;
//   - a non-owner serves the peer-propagated bytes while they are fresh,
//     synchronously ensures a current snapshot via the owner when they are
//     not, serves the stale copy marked degraded when the owner is
//     unreachable, and only falls through to a local upstream fetch when it
//     has nothing at all to serve (cold key during an owner outage —
//     availability beats strict ownership).
//
// Only plain widget polls are intercepted: GET, no query string, the
// route's exact path, and not a scheduler loopback refresh (those must
// reach the real fetch path — they are how owners produce snapshots).
func (s *Server) fleetIntercept(widget string, next http.HandlerFunc) http.HandlerFunc {
	route, pushable := s.pushRoutes[widget]
	if !pushable {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		fd := s.fleetDelegate()
		if fd == nil || r.Method != http.MethodGet || r.URL.RawQuery != "" ||
			r.URL.Path != route.path || len(r.Header[pushRefreshHeaderKey]) != 0 {
			next(w, r)
			return
		}
		user, err := s.currentUser(r)
		if err != nil {
			next(w, r) // let the route produce its own auth error
			return
		}
		src := fleetSource(route, user.Name)
		if fd.Owns(src.Key) {
			fd.Touch(src)
			next(w, r)
			return
		}
		snap, ok := fd.Snapshot(src.Key)
		if ok && s.clock.Now().Sub(snap.At) <= fleetFreshFor(route.ttl) {
			// A degraded copy inside the window still serves directly (with
			// the degraded header): the owner is already stale-serving, and
			// re-ensuring on every peer request would only multiply loopbacks.
			s.writeFleetSnapshot(w, r, route, snap, false)
			s.obsm.fleetPeerServes.With(widget, "fresh").Inc()
			return
		}
		if es, eok := fd.Ensure(r.Context(), src); eok {
			s.writeFleetSnapshot(w, r, route, es, false)
			s.obsm.fleetPeerServes.With(widget, "ensured").Inc()
			return
		}
		if ok {
			s.writeFleetSnapshot(w, r, route, snap, true)
			s.obsm.fleetPeerServes.With(widget, "stale").Inc()
			return
		}
		// No owner and no propagated copy: serve locally rather than fail.
		s.obsm.fleetPeerServes.With(widget, "local").Inc()
		next(w, r)
	}
}

// writeFleetSnapshot writes a propagated snapshot as the widget response,
// with the same conditional-request and cache-class semantics as the
// owner's rendered path: strong ETag plus If-None-Match 304s for current
// payloads, the degraded header (and no ETag) for degraded or aged-out
// ones, and the private/Vary cache class on per-user routes.
func (s *Server) writeFleetSnapshot(w http.ResponseWriter, r *http.Request, route pushRoute, snap FleetSnapshot, stale bool) {
	h := w.Header()
	if route.perUser {
		setPrivateCache(h)
	}
	h[fleetHeaderKey] = fleetPeerValue
	if snap.Degraded || stale {
		h.Set(degradedHeader, "stale")
	} else {
		setETag(h, snap.ETag)
		if etagMatch(r.Header.Get("If-None-Match"), snap.ETag) {
			w.WriteHeader(http.StatusNotModified)
			s.obsm.notModified.With(route.widget).Inc()
			return
		}
	}
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.Body)
}

// fleetPtr is the concrete atomic holder type (declared here, next to its
// accessors; the field lives on Server).
type fleetPtr = atomic.Pointer[fleetHolder]
