package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Fill admission bounds how many upstream fills one data source runs
// concurrently. The server cache's singleflight already collapses a stampede
// onto one key, but per-user keys (recent_jobs:<user>, myjobs:<user>) defeat
// that: a login rush of N cold-cache users is N distinct keys, and every one
// of them starts its own upstream call. The gate caps that cold-fill
// concurrency: a fill beyond the cap fails fast with a retriable
// FillSaturatedError instead of queueing on the upstream, which a request
// with a retained stale value absorbs as a degraded response and a cold
// request surfaces as 503 + Retry-After. The breaker never sees a rejected
// fill — saturation is dashboard-side backpressure, not upstream failure.

// fillRetryAfter is the nominal Retry-After hint for a saturated fill: long
// enough for the in-flight burst to drain, short enough that clients come
// back while their browser cache is still warm. writeFetchError adds random
// jitter on top so a synchronized cohort does not re-stampede.
const fillRetryAfter = 2 * time.Second

// FillSaturatedError reports a cache fill rejected because the source's
// concurrent-fill cap was reached.
type FillSaturatedError struct {
	Source     string
	RetryAfter time.Duration
}

func (e *FillSaturatedError) Error() string {
	return fmt.Sprintf("core: %s: concurrent upstream fills at cap, retry in %v",
		e.Source, e.RetryAfter)
}

// fillGate is one source's admission counter. cap <= 0 means unlimited (the
// gate still tracks in-flight and peak for /metrics).
type fillGate struct {
	source   string
	cap      int64
	inflight atomic.Int64
	peak     atomic.Int64
	rejected atomic.Int64
}

// tryAcquire claims a fill slot, returning false (and counting the
// rejection) when the source is at its cap.
func (g *fillGate) tryAcquire() bool {
	n := g.inflight.Add(1)
	if g.cap > 0 && n > g.cap {
		g.inflight.Add(-1)
		g.rejected.Add(1)
		return false
	}
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

// release returns a slot claimed by tryAcquire.
func (g *fillGate) release() { g.inflight.Add(-1) }

// FillStat is one source's fill-admission snapshot.
type FillStat struct {
	Source   string `json:"source"`
	Cap      int    `json:"cap"` // 0 = unlimited
	InFlight int    `json:"in_flight"`
	Peak     int    `json:"peak"`
	Rejected int64  `json:"rejected"`
}

// FillStats returns the per-source admission counters in source-name order.
func (s *Server) FillStats() []FillStat {
	out := make([]FillStat, 0, len(fillSources))
	for _, src := range fillSources {
		g := s.fills[src]
		out = append(out, FillStat{
			Source:   g.source,
			Cap:      int(g.cap),
			InFlight: int(g.inflight.Load()),
			Peak:     int(g.peak.Load()),
			Rejected: g.rejected.Load(),
		})
	}
	return out
}

// fillSources lists the gated sources in deterministic order.
var fillSources = []string{srcCtld, srcDBD, srcNews, srcStorage}

// newFillGates builds one gate per data source with the configured cap.
func newFillGates(cap int) map[string]*fillGate {
	gates := make(map[string]*fillGate, len(fillSources))
	for _, src := range fillSources {
		gates[src] = &fillGate{source: src, cap: int64(cap)}
	}
	return gates
}
