package core

import (
	"net/http"
	"strings"
	"testing"

	"ooddash/internal/auth"
)

// TestPerUserCacheScopingHeaders asserts that identity-variant responses
// declare Vary: X-Remote-User + Cache-Control: private so a shared cache
// in front of the dashboard can never mix users — and that global widgets
// stay cacheable (no such headers), on both the first build and the
// materialized hit path.
func TestPerUserCacheScopingHeaders(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()
	seedMixedHistory(e)

	assertPrivate := func(path string) {
		t.Helper()
		for pass := 0; pass < 2; pass++ { // miss then rendered hit
			status, h, _ := e.getFull("alice", path)
			if status != http.StatusOK {
				t.Fatalf("%s pass %d: status %d", path, pass, status)
			}
			if got := h.Get("Vary"); got != auth.UserHeader {
				t.Errorf("%s pass %d: Vary = %q, want %q", path, pass, got, auth.UserHeader)
			}
			if got := h.Get("Cache-Control"); got != "private" {
				t.Errorf("%s pass %d: Cache-Control = %q, want private", path, pass, got)
			}
		}
	}
	assertShared := func(path string) {
		t.Helper()
		status, h, _ := e.getFull("alice", path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", path, status)
		}
		if got := h.Get("Vary"); strings.Contains(got, auth.UserHeader) {
			t.Errorf("%s: global widget declares Vary = %q", path, got)
		}
		if got := h.Get("Cache-Control"); got != "" {
			t.Errorf("%s: global widget declares Cache-Control = %q", path, got)
		}
	}

	// Per-user JSON variants (rendered-cache routes).
	assertPrivate("/api/myjobs?range=24h")
	assertPrivate("/api/myjobs/charts?range=24h")
	assertPrivate("/api/jobperf?range=24h")
	assertPrivate("/api/recent_jobs")
	// Per-user non-JSON exports.
	assertPrivate("/api/myjobs/export.csv?range=24h")
	// Global, identity-independent widgets must stay shared-cacheable.
	assertShared("/api/system_status")
	assertShared("/api/cluster_status")
	assertShared("/api/announcements")
}

// varyAwareCache is a minimal correct shared HTTP cache: it stores one
// response per (URL, values of the headers the response named in Vary) and
// only serves or revalidates within the same key. The test drives it with
// two identities to prove the dashboard's headers are sufficient for such
// a cache to never cross user boundaries — and that even a Vary-blind
// cache cannot get a cross-user 304 out of the origin.
type varyAwareCache struct {
	entries map[string]varyEntry
}

type varyEntry struct {
	etag string
	body string
}

func (c *varyAwareCache) key(path string, vary string, r http.Header) string {
	k := path
	for _, h := range strings.Split(vary, ",") {
		h = strings.TrimSpace(h)
		if h != "" {
			k += "\x00" + h + "=" + r.Get(h)
		}
	}
	return k
}

// TestUsersNeverShareCachedBodyOr304 is the regression test for the
// shared-cache privacy bug: with two different X-Remote-User values, no
// cached body is ever reused across users and no 304 validates one user's
// ETag for the other on a per-user route.
func TestUsersNeverShareCachedBodyOr304(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()
	seedMixedHistory(e) // alice and bob have different My Jobs tables

	const path = "/api/myjobs?range=24h"
	aStatus, aHdr, aBody := e.getFull("alice", path)
	bStatus, bHdr, bBody := e.getFull("bob", path)
	if aStatus != http.StatusOK || bStatus != http.StatusOK {
		t.Fatalf("status alice=%d bob=%d", aStatus, bStatus)
	}
	aTag, bTag := aHdr.Get("ETag"), bHdr.Get("ETag")
	if aTag == "" || bTag == "" {
		t.Fatal("missing ETags on per-user route")
	}
	if string(aBody) == string(bBody) || aTag == bTag {
		t.Fatal("test premise broken: alice and bob see identical payloads")
	}

	// A Vary-blind cache's worst move: revalidate alice's stored ETag on
	// behalf of bob. The origin must serve bob's own 200 body, never a 304
	// that would freshen alice's entry for bob.
	req, _ := http.NewRequest("GET", e.web.URL+path, nil)
	req.Header.Set(auth.UserHeader, "bob")
	req.Header.Set("If-None-Match", aTag)
	resp, err := e.web.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		t.Fatal("origin validated alice's ETag for bob (cross-user 304)")
	}
	if got := resp.Header.Get("ETag"); got != bTag {
		t.Fatalf("bob's revalidation got ETag %q, want bob's own %q", got, bTag)
	}

	// A correct Vary-honoring shared cache stores the two identities under
	// different keys, so bob can never hit alice's entry at all.
	cache := &varyAwareCache{entries: make(map[string]varyEntry)}
	aReq := http.Header{}
	aReq.Set(auth.UserHeader, "alice")
	bReq := http.Header{}
	bReq.Set(auth.UserHeader, "bob")
	aKey := cache.key(path, aHdr.Get("Vary"), aReq)
	cache.entries[aKey] = varyEntry{etag: aTag, body: string(aBody)}
	bKey := cache.key(path, bHdr.Get("Vary"), bReq)
	if bKey == aKey {
		t.Fatalf("Vary headers insufficient: both users map to cache key %q", aKey)
	}
	if _, hit := cache.entries[bKey]; hit {
		t.Fatal("bob hit alice's cache entry")
	}
	// And Cache-Control: private forbids the shared cache from storing the
	// response in the first place.
	if cc := aHdr.Get("Cache-Control"); !strings.Contains(cc, "private") {
		t.Fatalf("Cache-Control = %q, want private", cc)
	}
}
