package core

import "time"

// Cache purging. cache.Purge drops entries past their stale grace window,
// but nothing called it in the long-running server, so the server cache (and
// now the rendered-response cache, whose keys include per-user variants and
// query strings) grew without bound over weeks of uptime. The server sweeps
// both caches every Config.PurgeInterval: production servers get a
// wall-clock ticker from StartPush, simulated-clock runs get the same sweep
// from TickPush, and both paths share purgeNow so the /metrics counters
// agree.

// purgeNow sweeps both caches immediately and returns how many entries were
// dropped. Safe to call from any goroutine.
func (s *Server) purgeNow() int {
	n := s.cache.Purge() + s.rendered.Purge()
	if n > 0 {
		s.purgedTotal.Add(int64(n))
	}
	s.purgeMu.Lock()
	s.lastPurge = s.clock.Now()
	s.purgeMu.Unlock()
	return n
}

// maybePurge sweeps when at least PurgeInterval has elapsed on the shared
// clock since the last sweep — the simulated-clock path, driven from
// TickPush.
func (s *Server) maybePurge() {
	if s.cfg.PurgeInterval <= 0 {
		return
	}
	now := s.clock.Now()
	s.purgeMu.Lock()
	due := now.Sub(s.lastPurge) >= s.cfg.PurgeInterval
	if due {
		// Claim the sweep before unlocking so concurrent callers don't stack.
		s.lastPurge = now
	}
	s.purgeMu.Unlock()
	if !due {
		return
	}
	if n := s.cache.Purge() + s.rendered.Purge(); n > 0 {
		s.purgedTotal.Add(int64(n))
	}
}

// startPurgeLoop runs the wall-clock sweep until Close. The interval is the
// configured PurgeInterval (it bounds how long a dead entry can linger, so
// the data clock is irrelevant here); a non-positive interval disables the
// loop.
func (s *Server) startPurgeLoop() {
	if s.cfg.PurgeInterval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(s.cfg.PurgeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.pushDone:
				return
			case <-t.C:
				s.purgeNow()
			}
		}
	}()
}
