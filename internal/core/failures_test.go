package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// flakyRunner wraps a Runner and fails selected commands a configurable
// number of times — the failure-injection harness for backend resilience.
type flakyRunner struct {
	inner slurmcli.Runner

	mu        sync.Mutex
	failures  map[string]int // remaining failures per sabotaged command
	callCount map[string]int
}

func newFlakyRunner(inner slurmcli.Runner) *flakyRunner {
	return &flakyRunner{
		inner:     inner,
		failures:  make(map[string]int),
		callCount: make(map[string]int),
	}
}

func (f *flakyRunner) failNext(cmd string, times int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failures[cmd] = times
}

func (f *flakyRunner) Run(name string, args ...string) (string, error) {
	f.mu.Lock()
	f.callCount[name]++
	shouldFail := f.failures[name] > 0
	if shouldFail {
		f.failures[name]--
	}
	f.mu.Unlock()
	if shouldFail {
		// Wrap the availability sentinel so the resilience layer treats this
		// as an outage (retry + breaker + 503), not a semantic error.
		return "", fmt.Errorf("slurm_load_jobs error: Unable to contact slurm controller (connect failure): %w", slurm.ErrUnavailable)
	}
	return f.inner.Run(name, args...)
}

func (f *flakyRunner) calls(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.callCount[name]
}

// newFlakyEnv builds the standard env with a flaky runner spliced in.
func newFlakyEnv(t *testing.T) (*env, *flakyRunner) {
	t.Helper()
	e := newEnv(t)
	flaky := newFlakyRunner(slurmcli.NewSimRunner(e.cluster))
	server, err := NewServer(Config{ClusterName: "testcluster"}, Deps{
		Runner:  flaky,
		Storage: e.storage,
		Users:   e.users,
		Logs:    e.logs,
		Clock:   e.clock,
		Events:  e.cluster.Ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.server = server
	// Re-point the test web server at the flaky-backed server.
	e.web.Config.Handler = server
	return e, flaky
}

func TestSlurmOutageDegradesOneWidget(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	// squeue is down: recent jobs fails (503, cold cache, no stale copy);
	// sinfo- and storage-backed widgets keep serving (§2.4 modularity under
	// partial Slurm outage).
	flaky.failNext("squeue", 100)
	e.wantStatus("alice", "/api/recent_jobs", 503)
	e.wantStatus("alice", "/api/system_status", 200)
	e.wantStatus("alice", "/api/storage", 200)
	e.wantStatus("alice", "/api/myjobs?range=24h", 200) // sacct unaffected
}

func TestErrorsAreNotCached(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "recovers", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	// Two failures: the retry budget is two attempts per request, so the
	// first request exhausts both and surfaces the outage.
	flaky.failNext("squeue", 2)
	e.wantStatus("alice", "/api/recent_jobs", 503)
	// The failure must not poison the cache: the very next request retries
	// the command and succeeds without waiting for any TTL.
	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 1 || resp.Jobs[0].Name != "recovers" {
		t.Fatalf("post-recovery jobs = %+v", resp.Jobs)
	}
}

// TestSingleTransientFailureIsRetriedInline: one blip is absorbed by the
// in-request retry — the user never sees it.
func TestSingleTransientFailureIsRetriedInline(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	flaky.failNext("squeue", 1)
	e.wantStatus("alice", "/api/recent_jobs", 200)
	if got := flaky.calls("squeue"); got != 2 {
		t.Fatalf("squeue calls = %d, want 2 (failed attempt + retry)", got)
	}
}

func TestRecoveredResultIsCachedAgain(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	flaky.failNext("squeue", 2)
	e.wantStatus("alice", "/api/recent_jobs", 503)
	e.wantStatus("alice", "/api/recent_jobs", 200)
	before := flaky.calls("squeue")
	for i := 0; i < 5; i++ {
		e.wantStatus("alice", "/api/recent_jobs", 200)
	}
	if got := flaky.calls("squeue") - before; got != 0 {
		t.Fatalf("squeue calls after recovery = %d, want 0 (cached)", got)
	}
}

func TestSacctOutageBreaksHistoryRoutesOnly(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	// Both accounting commands ride slurmdbd: sacct feeds the job tables,
	// sreport feeds the rollup widgets. A daemon outage fails them together.
	flaky.failNext("sacct", 100)
	flaky.failNext("sreport", 100)
	// Three consecutive failed requests trip the slurmdbd breaker (threshold
	// 3); whether short-circuited or not, each surfaces as 503.
	e.wantStatus("alice", "/api/myjobs?range=24h", 503)
	e.wantStatus("alice", "/api/jobperf?range=24h", 503)
	e.wantStatus("alice", "/api/insights?range=24h", 503)
	e.wantStatus("alice", "/api/recent_jobs", 200)
	e.wantStatus("alice", "/api/cluster_status", 200)
}

func TestScontrolOutageWithWarmCacheKeepsServing(t *testing.T) {
	e, flaky := newFlakyEnv(t)
	// Warm the cluster-status cache, then take scontrol down: the widget
	// keeps serving the cached snapshot until the TTL expires.
	e.wantStatus("alice", "/api/cluster_status", 200)
	flaky.failNext("scontrol", 100)
	e.wantStatus("alice", "/api/cluster_status", 200)
	// Past the TTL the cache falls back to the last-known-good snapshot and
	// marks the response degraded instead of failing the widget.
	e.advance(2 * time.Minute)
	status, header, body := e.getFull("alice", "/api/cluster_status")
	if status != 200 {
		t.Fatalf("degraded cluster_status = %d: %s", status, body)
	}
	if got := header.Get("X-OODDash-Degraded"); got != "stale" {
		t.Fatalf("X-OODDash-Degraded = %q, want %q", got, "stale")
	}
	if !bytes.Contains(body, []byte(`"degraded":true`)) {
		t.Fatalf("degraded body missing marker: %s", body)
	}
	if !bytes.Contains(body, []byte(`"age_seconds":`)) {
		t.Fatalf("degraded body missing age_seconds: %s", body)
	}
}

// TestConcurrentRouteAccess hammers mixed routes from many goroutines;
// meaningful under -race, which the CI-style full run uses.
func TestConcurrentRouteAccess(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	paths := []string{
		"/api/recent_jobs", "/api/system_status", "/api/accounts",
		"/api/storage", "/api/myjobs?range=24h", "/api/cluster_status",
		"/api/jobperf?range=24h", "/api/events",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			users := []string{"alice", "bob", "carol"}
			for i := 0; i < 25; i++ {
				user := users[(g+i)%3]
				status, _ := e.get(user, paths[(g+i)%len(paths)])
				if status != 200 {
					t.Errorf("GET as %s: %d", user, status)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
