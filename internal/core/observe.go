package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/obs"
	"ooddash/internal/push"
	"ooddash/internal/resilience"
	"ooddash/internal/slo"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/trace"
)

// traceHeader carries the request-scoped trace ID on every API response.
// A well-formed inbound value is adopted (so an upstream proxy can stitch
// its own IDs through); otherwise the middleware mints one.
const traceHeader = "X-OODDash-Trace"

// traceHeaderKey is traceHeader in net/textproto's canonical MIME form.
// The middleware reads and writes the header by direct map access with this
// key: the mixed-case spelling above is not canonical, so Header.Get/Set
// would re-canonicalize (and allocate) it on every request.
const traceHeaderKey = "X-Ooddash-Trace"

// serverObs bundles the dashboard's metric families. Everything renders
// from one obs.Registry, so /metrics is a single WritePrometheus call and
// adding a metric cannot desynchronize HELP/TYPE from its samples the way
// the old hand-rolled Fprintf block could.
type serverObs struct {
	reg *obs.Registry

	// Per-widget request metrics, recorded by the instrument middleware.
	widgetLatency  *obs.HistogramVec // ooddash_widget_request_seconds{widget}
	widgetRequests *obs.CounterVec   // ooddash_widget_requests_total{widget,status}

	// Per-source fetch results as widgets see them (cache included):
	// ok, degraded (stale-while-error), error.
	fetchResults *obs.CounterVec // ooddash_fetch_results_total{source,result}

	// Per-source upstream attribution from the resilience layer: what the
	// dashboard actually did to each data source, cache misses only.
	upstreamLatency  *obs.HistogramVec // ooddash_upstream_latency_seconds{source}
	upstreamOutcomes *obs.CounterVec   // ooddash_upstream_outcomes_total{source,outcome}

	// Per-command attribution from the metered runner: dashboard-side RPC
	// cost by daemon, comparable with the simulator's sdiag counters.
	slurmCommands *obs.CounterVec   // ooddash_slurm_commands_total{command,daemon,outcome}
	slurmLatency  *obs.HistogramVec // ooddash_slurm_command_seconds{daemon}

	// annotationsDropped counts degraded responses whose JSON payload could
	// not carry the degraded/age_seconds annotation (non-object payloads);
	// the header still marks them, but the JSON does not.
	annotationsDropped *obs.Counter // ooddash_degraded_annotations_dropped_total

	// notModified counts conditional polling requests answered 304 from the
	// client's ETag — bytes the cache saved without an upstream call.
	notModified *obs.CounterVec // ooddash_not_modified_total{widget}

	// pushRefresh times the background scheduler's per-widget refreshes.
	pushRefresh *obs.HistogramVec // ooddash_push_refresh_seconds{widget}
	// pushRefreshes counts refresh attempts by widget and result
	// (published, unchanged, error).
	pushRefreshes *obs.CounterVec // ooddash_push_refreshes_total{widget,result}

	// traceSpans receives every finished trace's span timings by layer (the
	// span name up to the first '.') — the aggregate that survives even for
	// traces the tail sampler drops.
	traceSpans *obs.HistogramVec // ooddash_trace_span_seconds{layer}

	// fleetPeerServes counts widget polls this replica answered as a
	// non-owner, by how (fresh propagated copy, synchronous owner ensure,
	// degraded stale copy, or local fallthrough with no owner reachable).
	fleetPeerServes *obs.CounterVec // ooddash_fleet_peer_serves_total{widget,mode}

	// rollupQueries counts historical rollup reads by the resolution served
	// and how it was chosen (auto selection vs an explicit bucket request).
	rollupQueries *obs.CounterVec // ooddash_rollup_queries_total{resolution,selection}

	// fetchOutcome holds the per-source result counters pre-resolved at
	// construction: fetchVia bumps one on every widget request, and
	// CounterVec.With allocates its variadic slice and joined key per call —
	// measurable churn on the cache-hit serve path.
	fetchOutcome map[string]*fetchOutcomeCounters
}

// fetchOutcomeCounters are one source's resolved fetch-result counters.
type fetchOutcomeCounters struct {
	ok       *obs.Counter
	degraded *obs.Counter
	err      *obs.Counter
	rejected *obs.Counter // fill admission gate said no (cold key, gate at cap)
}

// newServerObs builds the registry and registers every family, including
// the render-time collectors that bridge cache stats, breaker snapshots,
// and the simulator's sdiag RPC counters.
func newServerObs(s *Server) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg: reg,
		widgetLatency: reg.HistogramVec("ooddash_widget_request_seconds",
			"Widget API request latency by widget.", nil, "widget"),
		widgetRequests: reg.CounterVec("ooddash_widget_requests_total",
			"Widget API requests by widget and HTTP status.", "widget", "status"),
		fetchResults: reg.CounterVec("ooddash_fetch_results_total",
			"Widget data fetches by source and result (ok, degraded, error); cache hits count as ok.",
			"source", "result"),
		upstreamLatency: reg.HistogramVec("ooddash_upstream_latency_seconds",
			"Upstream call latency by data source (resilience layer, cache misses only).", nil, "source"),
		upstreamOutcomes: reg.CounterVec("ooddash_upstream_outcomes_total",
			"Upstream call outcomes by data source (ok, retried, semantic_error, error, short_circuit, canceled).",
			"source", "outcome"),
		slurmCommands: reg.CounterVec("ooddash_slurm_commands_total",
			"Slurm commands issued by the dashboard, by command, daemon, and outcome.",
			"command", "daemon", "outcome"),
		slurmLatency: reg.HistogramVec("ooddash_slurm_command_seconds",
			"Slurm command latency by daemon.", nil, "daemon"),
		annotationsDropped: reg.Counter("ooddash_degraded_annotations_dropped_total",
			"Degraded responses whose non-object JSON payload could not carry the degraded/age_seconds annotation."),
		notModified: reg.CounterVec("ooddash_not_modified_total",
			"Conditional widget requests answered 304 Not Modified from the client's ETag.", "widget"),
		pushRefresh: reg.HistogramVec("ooddash_push_refresh_seconds",
			"Background push refresh latency by widget.", nil, "widget"),
		pushRefreshes: reg.CounterVec("ooddash_push_refreshes_total",
			"Background push refresh attempts by widget and result (published, unchanged, error).",
			"widget", "result"),
		traceSpans: reg.HistogramVec("ooddash_trace_span_seconds",
			"Span durations by layer, extracted from every finished trace (retained or dropped).",
			nil, "layer"),
		fleetPeerServes: reg.CounterVec("ooddash_fleet_peer_serves_total",
			"Widget polls answered from peer-propagated fleet snapshots, by widget and mode (fresh, ensured, stale, local).",
			"widget", "mode"),
		rollupQueries: reg.CounterVec("ooddash_rollup_queries_total",
			"Historical rollup queries by resolution served and selection mode (auto, explicit).",
			"resolution", "selection"),
	}
	o.fetchOutcome = make(map[string]*fetchOutcomeCounters, 4)
	for _, src := range []string{srcCtld, srcDBD, srcNews, srcStorage} {
		o.fetchOutcome[src] = &fetchOutcomeCounters{
			ok:       o.fetchResults.With(src, "ok"),
			degraded: o.fetchResults.With(src, "degraded"),
			err:      o.fetchResults.With(src, "error"),
			rejected: o.fetchResults.With(src, "rejected"),
		}
	}

	// Fill admission gates: concurrent-fill pressure per source, the high
	// water mark, and how many fills the cap turned away.
	fillCollector := func(name, help string, kind obs.Kind, read func(*fillGate) float64) {
		reg.CollectorFunc(name, kind, help, func() []obs.Sample {
			out := make([]obs.Sample, 0, len(fillSources))
			for _, src := range fillSources {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "source", Value: src}},
					Value:  read(s.fills[src]),
				})
			}
			return out
		})
	}
	fillCollector("ooddash_fill_inflight",
		"Upstream cache fills currently in flight, per data source.", obs.KindGauge,
		func(g *fillGate) float64 { return float64(g.inflight.Load()) })
	fillCollector("ooddash_fill_inflight_peak",
		"High-water mark of concurrent upstream fills, per data source.", obs.KindGauge,
		func(g *fillGate) float64 { return float64(g.peak.Load()) })
	fillCollector("ooddash_fill_rejected_total",
		"Cache fills rejected by the per-source concurrency cap.", obs.KindCounter,
		func(g *fillGate) float64 { return float64(g.rejected.Load()) })

	// Push fan-out health: connected clients, event flow, and the newest
	// version per widget source (a stalled gauge means refreshes stopped).
	reg.GaugeFunc("ooddash_push_connected_clients", "Open SSE subscriptions.",
		func() float64 { return float64(s.pushHub.SubscriberCount()) })
	pushCounter := func(name, help string, read func(push.HubStats) int64) {
		reg.CollectorFunc(name, obs.KindCounter, help, func() []obs.Sample {
			return []obs.Sample{{Value: float64(read(s.pushHub.Stats()))}}
		})
	}
	pushCounter("ooddash_push_events_published_total",
		"Snapshots that minted a new hub version.",
		func(st push.HubStats) int64 { return st.Published })
	pushCounter("ooddash_push_events_suppressed_total",
		"Refreshes suppressed because the content hash was unchanged.",
		func(st push.HubStats) int64 { return st.Suppressed })
	pushCounter("ooddash_push_events_delivered_total",
		"Snapshots handed to SSE client buffers.",
		func(st push.HubStats) int64 { return st.Delivered })
	pushCounter("ooddash_push_events_dropped_total",
		"Snapshots coalesced away because an SSE client lagged (drop-oldest).",
		func(st push.HubStats) int64 { return st.Dropped })
	reg.CollectorFunc("ooddash_push_widget_version", obs.KindGauge,
		"Newest published hub version per widget source.", func() []obs.Sample {
			snaps := s.pushHub.Snapshots()
			out := make([]obs.Sample, 0, len(snaps))
			for _, snap := range snaps {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "source", Value: snap.Key}},
					Value:  float64(snap.Version),
				})
			}
			return out
		})

	// Cache effectiveness: the quantities behind the paper's §2.4 argument.
	cacheCounter := func(name, help string, read func() int64) {
		reg.CollectorFunc(name, obs.KindCounter, help, func() []obs.Sample {
			return []obs.Sample{{Value: float64(read())}}
		})
	}
	cacheCounter("ooddash_cache_hits_total", "Server cache hits.",
		func() int64 { return s.cache.Stats().Hits })
	cacheCounter("ooddash_cache_misses_total", "Server cache misses.",
		func() int64 { return s.cache.Stats().Misses })
	cacheCounter("ooddash_cache_collapsed_total", "Requests collapsed onto an in-flight compute.",
		func() int64 { return s.cache.Stats().Collapsed })
	cacheCounter("ooddash_cache_errors_total", "Cache compute functions that returned an error.",
		func() int64 { return s.cache.Stats().Errors })
	cacheCounter("ooddash_cache_stale_served_total", "Degraded responses served from expired entries.",
		func() int64 { return s.cache.Stats().StaleServed })
	cacheCounter("ooddash_cache_breaker_open_total", "Compute errors that were breaker short-circuits.",
		func() int64 { return s.cache.Stats().BreakerOpen })
	reg.GaugeFunc("ooddash_cache_entries", "Current server cache entries.",
		func() float64 { return float64(s.cache.Len()) })

	// Rendered-response layer: materialized-bytes traffic and the purge sweep
	// that bounds both caches on a long-running server.
	cacheCounter("ooddash_render_hits_total", "Widget responses served from materialized bytes (no re-encode).",
		func() int64 { return s.renderHits.Load() })
	cacheCounter("ooddash_render_misses_total", "Widget responses that built and materialized their bytes.",
		func() int64 { return s.renderMisses.Load() })
	cacheCounter("ooddash_render_encodes_total", "Payload encodes (json.Marshal of widget bodies) performed.",
		func() int64 { return s.renderEncodes.Load() })
	reg.GaugeFunc("ooddash_rendered_entries", "Current rendered-response cache entries.",
		func() float64 { return float64(s.rendered.Len()) })
	cacheCounter("ooddash_cache_purged_total", "Entries dropped from both caches by the periodic purge sweep.",
		func() int64 { return s.purgedTotal.Load() })

	// Rollup store health: how much pre-aggregated state the accounting
	// daemon holds and how the compaction cascade is keeping up. Only wired
	// when Deps.RollupStats is set (the in-process simulator).
	if s.rollupStats != nil {
		reg.CollectorFunc("ooddash_rollup_buckets", obs.KindGauge,
			"Rollup store buckets held per resolution.", func() []obs.Sample {
				st := s.rollupStats()
				return []obs.Sample{
					{Labels: []obs.Label{{Name: "resolution", Value: "minute"}}, Value: float64(st.MinuteBuckets)},
					{Labels: []obs.Label{{Name: "resolution", Value: "hour"}}, Value: float64(st.HourBuckets)},
					{Labels: []obs.Label{{Name: "resolution", Value: "day"}}, Value: float64(st.DayBuckets)},
				}
			})
		reg.CollectorFunc("ooddash_rollup_compactions_total", obs.KindCounter,
			"Rollup buckets sealed by the compaction cascade, per destination level.", func() []obs.Sample {
				st := s.rollupStats()
				return []obs.Sample{
					{Labels: []obs.Label{{Name: "level", Value: "hour"}}, Value: float64(st.CompactionsHour)},
					{Labels: []obs.Label{{Name: "level", Value: "day"}}, Value: float64(st.CompactionsDay)},
				}
			})
		rollupCounter := func(name, help string, read func(slurm.RollupStats) int64) {
			reg.CollectorFunc(name, obs.KindCounter, help, func() []obs.Sample {
				return []obs.Sample{{Value: float64(read(s.rollupStats()))}}
			})
		}
		rollupCounter("ooddash_rollup_ingested_total",
			"Terminal jobs folded into the rollup store.",
			func(st slurm.RollupStats) int64 { return st.Ingested })
		rollupCounter("ooddash_rollup_late_direct_total",
			"Rollup ingests that landed in already-sealed buckets (backfill writes).",
			func(st slurm.RollupStats) int64 { return st.LateDirect })
		rollupCounter("ooddash_rollup_evicted_buckets_total",
			"Rollup buckets dropped past their resolution's retention.",
			func(st slurm.RollupStats) int64 { return st.EvictedBuckets })
	}

	// Breaker state and counters, one sample per data source.
	breakerCollector := func(name, help string, kind obs.Kind, read func(resilience.Stats) float64) {
		reg.CollectorFunc(name, kind, help, func() []obs.Sample {
			snap := s.res.Snapshot()
			out := make([]obs.Sample, 0, len(snap))
			for _, b := range snap {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "source", Value: b.Source}},
					Value:  read(b),
				})
			}
			return out
		})
	}
	breakerCollector("ooddash_breaker_state",
		"Circuit state per data source (0 closed, 1 half-open, 2 open).", obs.KindGauge,
		func(b resilience.Stats) float64 { return float64(b.State) })
	breakerCollector("ooddash_breaker_opens_total",
		"Breaker transitions into open, per data source.", obs.KindCounter,
		func(b resilience.Stats) float64 { return float64(b.Opens) })
	breakerCollector("ooddash_retries_total",
		"Retry attempts beyond the first, per data source.", obs.KindCounter,
		func(b resilience.Stats) float64 { return float64(b.Retries) })
	breakerCollector("ooddash_short_circuits_total",
		"Calls rejected by an open breaker, per data source.", obs.KindCounter,
		func(b resilience.Stats) float64 { return float64(b.ShortCircuits) })

	// Trace store: the retained-bytes gauge is the proof the tail sampler
	// bounds memory regardless of traffic; the decisions counter shows how
	// retention classes are exercised.
	reg.GaugeFunc("ooddash_trace_retained_bytes",
		"Estimated bytes held by the tail-sampled trace store.",
		func() float64 { return float64(s.tracer.Store().RetainedBytes()) })
	reg.GaugeFunc("ooddash_trace_store_traces", "Traces retained in the store.",
		func() float64 { return float64(s.tracer.Store().Len()) })
	reg.CollectorFunc("ooddash_traces_total", obs.KindCounter,
		"Tail-retention decisions by outcome (kept_error, kept_slow, kept_baseline, dropped, rejected, evicted).",
		func() []obs.Sample {
			d := s.tracer.Store().Snapshot()
			mk := func(decision string, v int64) obs.Sample {
				return obs.Sample{Labels: []obs.Label{{Name: "decision", Value: decision}}, Value: float64(v)}
			}
			return []obs.Sample{
				mk("kept_error", d.KeptError), mk("kept_slow", d.KeptSlow),
				mk("kept_baseline", d.KeptBaseline), mk("dropped", d.Dropped),
				mk("rejected", d.Rejected), mk("evicted", d.Evicted),
			}
		})

	// Live SLO engine: the event stream, current burn rates, the 28-day
	// error-budget ledger, and alert states per objective/rule. The
	// bad-event series and any firing alert carry an OpenMetrics exemplar
	// linking to the most recent bad request's trace, so a page alert on
	// the scrape points straight at a culpable retained flame trace.
	sloLabel := func(pairs ...string) []obs.Label {
		out := make([]obs.Label, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			out = append(out, obs.Label{Name: pairs[i], Value: pairs[i+1]})
		}
		return out
	}
	sloExemplar := func(objective string) *obs.Exemplar {
		if id, v, ts, ok := s.sloEng.LastBadExemplar(objective); ok {
			return &obs.Exemplar{TraceID: id, Value: v, Ts: ts}
		}
		return nil
	}
	reg.CollectorFunc("ooddash_slo_events_total", obs.KindCounter,
		"SLI events recorded by objective and result (good, bad); the bad series carries the last bad event's trace exemplar.",
		func() []obs.Sample {
			st := s.sloEng.Status()
			out := make([]obs.Sample, 0, 2*len(st.Objectives))
			for _, o := range st.Objectives {
				good, bad := s.sloEng.EventTotals(o.Name)
				out = append(out,
					obs.Sample{Labels: sloLabel("objective", o.Name, "result", "good"), Value: float64(good)},
					obs.Sample{Labels: sloLabel("objective", o.Name, "result", "bad"),
						Value: float64(bad), Exemplar: sloExemplar(o.Name)})
			}
			return out
		})
	reg.CollectorFunc("ooddash_slo_burn_rate", obs.KindGauge,
		"Current burn rate in multiples of the budgeted error rate, by objective, rule, and window (short, long).",
		func() []obs.Sample {
			st := s.sloEng.Status()
			var out []obs.Sample
			for _, o := range st.Objectives {
				for _, a := range o.Alerts {
					out = append(out,
						obs.Sample{Labels: sloLabel("objective", o.Name, "rule", a.Rule, "window", "short"), Value: a.ShortBurn},
						obs.Sample{Labels: sloLabel("objective", o.Name, "rule", a.Rule, "window", "long"), Value: a.LongBurn})
				}
			}
			return out
		})
	sloBudgetGauge := func(name, help string, read func(slo.BudgetStatus) float64) {
		reg.CollectorFunc(name, obs.KindGauge, help, func() []obs.Sample {
			st := s.sloEng.Status()
			out := make([]obs.Sample, 0, len(st.Objectives))
			for _, o := range st.Objectives {
				out = append(out, obs.Sample{
					Labels: sloLabel("objective", o.Name), Value: read(o.Budget)})
			}
			return out
		})
	}
	sloBudgetGauge("ooddash_slo_budget_spent_ratio",
		"Share of the 28d error budget consumed, per objective (may exceed 1).",
		func(b slo.BudgetStatus) float64 { return b.SpentRatio })
	sloBudgetGauge("ooddash_slo_budget_remaining_ratio",
		"Share of the 28d error budget remaining, per objective (may go negative).",
		func(b slo.BudgetStatus) float64 { return b.RemainingRatio })
	sloBudgetGauge("ooddash_slo_budget_exhaustion_seconds",
		"Projected seconds until budget exhaustion at the current 1h burn rate (0 when not burning).",
		func(b slo.BudgetStatus) float64 { return b.ExhaustionSeconds })
	reg.CollectorFunc("ooddash_slo_alert_state", obs.KindGauge,
		"Alert state by objective and rule (0 inactive, 1 pending, 2 firing); firing alerts carry the last bad event's trace exemplar.",
		func() []obs.Sample {
			st := s.sloEng.Status()
			var out []obs.Sample
			for _, o := range st.Objectives {
				for _, a := range o.Alerts {
					sample := obs.Sample{Labels: sloLabel("objective", o.Name, "rule", a.Rule)}
					switch a.State {
					case "pending":
						sample.Value = 1
					case "firing":
						sample.Value = 2
						sample.Exemplar = sloExemplar(o.Name)
					}
					out = append(out, sample)
				}
			}
			return out
		})
	sloAlertCounter := func(name, help string, read func(slo.AlertStatus) uint64) {
		reg.CollectorFunc(name, obs.KindCounter, help, func() []obs.Sample {
			st := s.sloEng.Status()
			var out []obs.Sample
			for _, o := range st.Objectives {
				for _, a := range o.Alerts {
					out = append(out, obs.Sample{
						Labels: sloLabel("objective", o.Name, "rule", a.Rule), Value: float64(read(a))})
				}
			}
			return out
		})
	}
	sloAlertCounter("ooddash_slo_alerts_fired_total",
		"Alerts that reached firing, per objective and rule.",
		func(a slo.AlertStatus) uint64 { return a.Fired })
	sloAlertCounter("ooddash_slo_alerts_resolved_total",
		"Firing alerts that resolved, per objective and rule.",
		func(a slo.AlertStatus) uint64 { return a.Resolved })

	// The simulator's own RPC counters via sdiag, so the dashboard's command
	// cost (ooddash_slurm_commands_total) can be read next to what the
	// daemons served in total. During an outage sdiag fails like everything
	// else and the family simply renders no samples.
	reg.CollectorFunc("ooddash_slurm_rpcs_total", obs.KindCounter,
		"Slurm RPCs served, by daemon and message type (sdiag).", func() []obs.Sample {
			ctld, dbd, err := s.ctldBk.Sdiag(context.Background())
			if err != nil {
				return nil
			}
			var out []obs.Sample
			for _, d := range []slurmcli.DaemonDiag{ctld, dbd} {
				kinds := make([]string, 0, len(d.RPCCounts))
				for k := range d.RPCCounts {
					kinds = append(kinds, k)
				}
				sort.Strings(kinds)
				for _, k := range kinds {
					out = append(out, obs.Sample{
						Labels: []obs.Label{{Name: "daemon", Value: d.Name}, {Name: "rpc", Value: k}},
						Value:  float64(d.RPCCounts[k]),
					})
				}
			}
			return out
		})
	return o
}

// observeUpstream is the resilience OnResult hook: per-source latency and
// outcome attribution, plus a structured line for failures so an operator
// can tie an upstream error back to the request trace that saw it.
func (s *Server) observeUpstream(ctx context.Context, r resilience.OpResult) {
	s.obsm.upstreamLatency.With(r.Source).Observe(r.Duration.Seconds())
	s.obsm.upstreamOutcomes.With(r.Source, string(r.Outcome)).Inc()
	if s.accessLog != nil && r.Err != nil {
		s.accessLog(fmt.Sprintf("upstream trace=%s source=%s outcome=%s attempts=%d dur=%s err=%q",
			logField(obs.TraceID(ctx)), r.Source, r.Outcome, r.Attempts,
			r.Duration.Round(time.Microsecond), r.Err))
	}
}

// observeRefresh is the push scheduler's hook: per-widget refresh latency
// and result attribution.
func (s *Server) observeRefresh(widget string, d time.Duration, published bool, err error) {
	result := "unchanged"
	switch {
	case err != nil:
		result = "error"
	case published:
		result = "published"
	}
	s.obsm.pushRefresh.With(widget).Observe(d.Seconds())
	s.obsm.pushRefreshes.With(widget, result).Inc()
}

// observeCommand is the metered runner's hook: per-command, per-daemon
// attribution of every Slurm invocation the dashboard makes.
func (s *Server) observeCommand(command, daemon string, d time.Duration, err error) {
	outcome := "ok"
	switch {
	case err == nil:
	case slurmcli.IsUnavailable(err):
		outcome = "unavailable"
	default:
		outcome = "error"
	}
	s.obsm.slurmCommands.With(command, daemon, outcome).Inc()
	s.obsm.slurmLatency.With(daemon).Observe(d.Seconds())
}

// widgetCtxKey carries the instrumented widget name through the request
// context, so shared helpers (the 304 counter) can label by widget.
type widgetCtxKey struct{}

// widgetFromContext returns the widget name the instrument middleware
// attached, or "unknown" outside an instrumented request.
func widgetFromContext(ctx context.Context) string {
	if w, ok := ctx.Value(widgetCtxKey{}).(string); ok {
		return w
	}
	return "unknown"
}

// statusLabel returns the metric label for a status code without the
// per-request strconv.Itoa allocation for the codes every request hits.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusNotModified:
		return "304"
	case http.StatusBadRequest:
		return "400"
	case http.StatusUnauthorized:
		return "401"
	case http.StatusForbidden:
		return "403"
	case http.StatusNotFound:
		return "404"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}

// logField keeps empty values grep-able in access lines.
func logField(v string) string {
	if v == "" {
		return "-"
	}
	return v
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush passes through so streaming handlers keep working when wrapped.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// pushRefreshHeaderKey is pushRefreshHeader in canonical MIME form, for
// allocation-free direct map reads in the middleware.
const pushRefreshHeaderKey = "X-Ooddash-Push"

// degradedHeaderKey is degradedHeader in canonical MIME form: the
// middleware reads degradation on every response by direct map access, and
// Header.Get would re-canonicalize (and allocate) the mixed-case spelling
// per request.
const degradedHeaderKey = "X-Ooddash-Degraded"

// selfObserving marks the widgets the middleware never opens spans for:
// the observability surface itself ("metrics" and the admin trace
// endpoints, where tracing would make every trace-store read mint its
// own trace — self-tracing recursion) and the "events" feed, whose SSE
// variant holds the connection open so a span would measure stream
// lifetime rather than work and retain every disconnect as a bogus
// slow trace. Upstream work triggered by push stays traced: the
// scheduler's loopback refreshes own their push.refresh roots.
// The SLO admin view joins the list for the same reason: reading alert
// state must not perturb the SLIs it reports (or mint traces about
// reading traces of itself).
func selfObserving(widget string) bool {
	switch widget {
	case "metrics", "admin_traces", "admin_trace", "admin_slo", "events":
		return true
	}
	return false
}

// instrument wraps a widget handler with the request-scoped observability
// envelope: a trace ID (assigned or adopted, returned as X-OODDash-Trace,
// and propagated via context), a root span feeding the tail-sampled trace
// store, a per-widget latency histogram sample, a status-labelled request
// counter, and a structured access log line.
func (s *Server) instrument(widget string, h http.HandlerFunc) http.HandlerFunc {
	// Metric handles for this widget resolve once at mount time; the With
	// calls they replace allocated per request. 200 and 304 cover every
	// serve on the hot path; other statuses resolve lazily below.
	lat := s.obsm.widgetLatency.With(widget)
	req200 := s.obsm.widgetRequests.With(widget, "200")
	req304 := s.obsm.widgetRequests.With(widget, "304")
	spannable := !selfObserving(widget)
	return func(w http.ResponseWriter, r *http.Request) {
		var traceID string
		if vs := r.Header[traceHeaderKey]; len(vs) > 0 {
			traceID = vs[0]
		}
		if !obs.ValidTraceID(traceID) {
			traceID = obs.NewTraceID()
		}
		w.Header()[traceHeaderKey] = []string{traceID}
		ctx := context.WithValue(obs.WithTrace(r.Context(), traceID), widgetCtxKey{}, widget)

		var sp *trace.Span
		if spannable {
			if trace.SpanFromContext(ctx) != nil {
				// A push loopback whose refresh trace is being recorded: join
				// it as the HTTP edge's child rather than founding a new root.
				ctx, sp = trace.StartSpan(ctx, "http")
			} else if len(r.Header[pushRefreshHeaderKey]) == 0 {
				// A client request: open the trace's root span (subject to head
				// sampling). Unsampled push loopbacks never mint misattributed
				// "http" roots — the push path owns its root.
				ctx, sp = s.tracer.StartRoot(ctx, traceID, "http", widget, "http")
			}
			if sp != nil {
				if user := r.Header.Get(auth.UserHeader); user != "" {
					sp.SetAttr("user", user)
				}
			}
		}
		r = r.WithContext(ctx)

		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		seconds := elapsed.Seconds()
		degraded := len(w.Header()[degradedHeaderKey]) > 0

		lat.Observe(seconds)
		if spannable && !s.sloOff.Load() {
			// SLI recording: latency uses the wall-clock elapsed (stalls are
			// real time even when the scenario script runs on the simulated
			// clock); window bucketing and alert evaluation happen on the
			// shared clock inside the engine. Zero allocs — the hit path's
			// budget is gated in the slo bench.
			s.sloEng.Record(seconds, rec.status, degraded, traceID)
		}
		switch rec.status {
		case http.StatusOK:
			req200.Inc()
		case http.StatusNotModified:
			req304.Inc()
		default:
			s.obsm.widgetRequests.With(widget, statusLabel(rec.status)).Inc()
		}
		if sp != nil {
			sp.SetAttr("status", statusLabel(rec.status))
			if degraded {
				sp.SetAttr("degraded", "true")
			}
			if sp.Root() {
				if _, kept := s.tracer.Finish(sp, rec.status >= 500, degraded); kept {
					// A retained trace becomes the histogram exemplar: the
					// /metrics scrape links the latest interesting request's
					// latency sample back to its stored flame trace.
					lat.SetExemplar(traceID, seconds,
						float64(s.clock.Now().UnixMilli())/1e3)
				}
			} else {
				sp.End()
			}
		}
		if s.accessLog != nil {
			s.accessLog(fmt.Sprintf("access trace=%s widget=%s path=%s status=%d dur=%s degraded=%t user=%s",
				traceID, widget, r.URL.Path, rec.status, elapsed.Round(time.Microsecond),
				w.Header().Get(degradedHeader) != "", logField(r.Header.Get(auth.UserHeader))))
		}
	}
}

// Metrics exposes the server's metrics registry, so an embedding program
// (cmd/dashboard's ops listener, tests, experiments) can render or extend
// the same exposition the /metrics widget serves.
func (s *Server) Metrics() *obs.Registry { return s.obsm.reg }

// SetAccessLog installs fn as the structured access/upstream log sink (one
// line per call). Install before serving traffic; nil (the default)
// disables access logging.
func (s *Server) SetAccessLog(fn func(line string)) { s.accessLog = fn }
