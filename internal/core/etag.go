package core

import (
	"net/http"

	"ooddash/internal/auth"
	"ooddash/internal/etag"
)

// Widget routes answer conditional polling requests with 304 Not Modified:
// the ETag is a content hash of the exact JSON body, so a client (the
// browser model, or any generic HTTP cache) revalidating an unchanged
// payload costs headers instead of a body. Degraded responses carry no
// ETag — their age_seconds annotation changes every second, and a client
// should not cache a stale fallback as if it were current.
//
// The tag construction and If-None-Match matching live in internal/etag
// so the Slurm REST surface (internal/slurmrest) shares the exact same
// semantics; the wrappers here keep core's call sites unchanged.

// etagHeaderKey is the ETag header name in the pre-canonicalized MIME form
// net/textproto produces. Setting it by direct map assignment skips the
// per-call canonicalization pass ("ETag" is not canonical, so Header.Set
// allocates a rewritten key every time); the wire bytes are identical.
const etagHeaderKey = "Etag"

// setETag attaches tag as the response ETag.
func setETag(h http.Header, tag string) {
	h[etagHeaderKey] = []string{tag}
}

// Per-user responses carry strong ETags, so without cache-scoping headers
// a shared intermediary cache (a fronting proxy keyed only on the URL)
// could store user A's body — or validate A's ETag with a 304 — and hand
// it to user B, violating the §2.4 privacy model. Every identity-variant
// response therefore declares:
//
//   - Vary: X-Remote-User — the response depends on the identity header,
//     so a cache that stores it must key on that header too;
//   - Cache-Control: private — only the end client's own cache may store
//     it at all, for caches that don't implement Vary faithfully.
//
// "private" rather than "no-store" deliberately: the browser keeping its
// own copy is exactly what makes the If-None-Match/304 hot path work, and
// no-store would disable client revalidation for zero privacy gain (the
// client is the user the payload belongs to).
//
// "Vary" and "Cache-Control" are already in canonical MIME form, and the
// values are shared package-level slices, so the direct map assignments
// below add zero allocations to the rendered hit path (net/http only
// reads the slices).
const (
	varyHeaderKey         = "Vary"
	cacheControlHeaderKey = "Cache-Control"
)

var (
	varyUserValue     = []string{auth.UserHeader}
	cachePrivateValue = []string{"private"}
)

// setPrivateCache marks a response as per-identity for any cache in front
// of the dashboard.
func setPrivateCache(h http.Header) {
	h[varyHeaderKey] = varyUserValue
	h[cacheControlHeaderKey] = cachePrivateValue
}

// etagFor returns the strong entity tag for a response body.
func etagFor(body []byte) string {
	return etag.For(body)
}

// etagMatch implements If-None-Match against a single strong tag.
func etagMatch(header, tag string) bool {
	return etag.Match(header, tag)
}
