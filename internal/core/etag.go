package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Widget routes answer conditional polling requests with 304 Not Modified:
// the ETag is a content hash of the exact JSON body, so a client (the
// browser model, or any generic HTTP cache) revalidating an unchanged
// payload costs headers instead of a body. Degraded responses carry no
// ETag — their age_seconds annotation changes every second, and a client
// should not cache a stale fallback as if it were current.

// etagFor returns the strong entity tag for a response body.
func etagFor(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// etagMatch implements If-None-Match: a comma-separated candidate list or
// "*", with weak-comparison semantics (a W/ prefix is ignored, per RFC
// 9110 §13.1.2 — If-None-Match uses weak comparison).
func etagMatch(header, tag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
		if cand == tag {
			return true
		}
	}
	return false
}
