package core

import (
	"net/http"
	"strings"
)

// Widget routes answer conditional polling requests with 304 Not Modified:
// the ETag is a content hash of the exact JSON body, so a client (the
// browser model, or any generic HTTP cache) revalidating an unchanged
// payload costs headers instead of a body. Degraded responses carry no
// ETag — their age_seconds annotation changes every second, and a client
// should not cache a stale fallback as if it were current.

const hexDigits = "0123456789abcdef"

// etagHeaderKey is the ETag header name in the pre-canonicalized MIME form
// net/textproto produces. Setting it by direct map assignment skips the
// per-call canonicalization pass ("ETag" is not canonical, so Header.Set
// allocates a rewritten key every time); the wire bytes are identical.
const etagHeaderKey = "Etag"

// setETag attaches tag as the response ETag.
func setETag(h http.Header, tag string) {
	h[etagHeaderKey] = []string{tag}
}

// etagFor returns the strong entity tag for a response body: an FNV-64a
// content hash as 16 zero-padded hex digits in quotes. The hash loop is
// inlined and the tag built directly into a fixed buffer — the previous
// fmt.Sprintf("%q", fmt.Sprintf("%016x", ...)) pair allocated three strings
// per tag on a path that runs for every fresh 200; this allocates one.
func etagFor(body []byte) string {
	h := uint64(14695981039346656037)
	for _, b := range body {
		h = (h ^ uint64(b)) * 1099511628211
	}
	var buf [18]byte
	buf[0], buf[17] = '"', '"'
	for i := 16; i >= 1; i-- {
		buf[i] = hexDigits[h&0xf]
		h >>= 4
	}
	return string(buf[:])
}

// etagMatch implements If-None-Match: a comma-separated candidate list or
// "*", with weak-comparison semantics (a W/ prefix is ignored, per RFC
// 9110 §13.1.2 — If-None-Match uses weak comparison).
func etagMatch(header, tag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	// Walk the candidate list in place; Split would allocate the slice on
	// every revalidation (the single-tag common case included).
	for len(header) > 0 {
		cand := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			cand, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
		if cand == tag {
			return true
		}
	}
	return false
}
